// Plan-reuse SpMV: how the one-time merge-path partition (SpmvPlan)
// amortizes across iterative workloads — the MERBIT-style precomputed
// execution metadata setting.  For each iterative-suite matrix the table
// reports the one-shot modeled cost, the plan build cost, the
// steady-state execute cost, and the per-iteration cost of the plan path
// at increasing iteration counts (the amortization curve).
//
// This bench also enforces the two zero-overhead contracts on the hot
// path: disabled integrity guards charge no modeled time, and the
// telemetry tracer — enabled or not — never perturbs modeled kernel time
// (spans run on the host side only; docs/observability.md).
#include <cstdio>
#include <vector>

#include "analysis/bench_json.hpp"
#include "analysis/experiment.hpp"
#include "baselines/seq.hpp"
#include "core/spmv.hpp"
#include "resilience/integrity.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/span.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "BENCH VALIDATION FAILED: %s\n", what);
    std::exit(2);
  }
}

}  // namespace

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  util::Table t("Plan-reuse SpMV: per-iteration modeled ms vs apply count");
  t.set_header({"Matrix", "driver", "one-shot", "plan", "plan KiB", "exec",
                "n=1", "n=10", "n=100", "n=1000", "steady-state x"});
  analysis::BenchJson report("plan_reuse_spmv");
  report.add_stat("scale", cfg.scale);
  for (const auto& it : workloads::iterative_suite(cfg.scale)) {
    const auto& a = it.entry.matrix;
    vgpu::Device dev;
    util::Rng rng(17);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols));
    for (auto& v : x) v = rng.uniform_double(-1, 1);
    std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows));
    baselines::seq::spmv(a, x, y_ref);

    std::vector<double> y(y_ref.size());
    const double oneshot_ms = core::merge::spmv(dev, a, x, y).modeled_ms();
    double err = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      err = std::max(err, std::abs(y[i] - y_ref[i]));
    require(err < 1e-8, "one-shot spmv mismatch");

    const auto plan = core::merge::spmv_plan(dev, a);
    std::vector<double> y_exec(y.size());
    const auto exec_stats = core::merge::spmv_execute(dev, a, x, y_exec, plan);
    const double exec_ms = exec_stats.modeled_ms();
    require(y_exec == y, "planned spmv not bit-identical to one-shot");
    // The zero-overhead contract: with guards disabled the integrity
    // machinery must not charge a single modeled microsecond to the
    // steady-state hot path.
    if (!resilience::integrity_checks_enabled()) {
      require(exec_stats.integrity_ms == 0.0,
              "integrity guards charged modeled time while disabled");
    }
    // Same contract for telemetry: the modeled execute time must be
    // bit-identical with the tracer off (the default above) and on, and
    // no spans may have been recorded while it was off.
    {
      const std::size_t spans_before = telemetry::tracer().size();
      telemetry::tracer().enable();
      std::vector<double> y_traced(y.size());
      const double traced_ms =
          core::merge::spmv_execute(dev, a, x, y_traced, plan).modeled_ms();
      telemetry::tracer().disable();
      require(spans_before == 0,
              "spans were recorded while the tracer was disabled");
      require(traced_ms == exec_ms,
              "enabling the tracer changed modeled kernel time");
      require(y_traced == y_exec, "tracing changed spmv results");
      require(telemetry::tracer().size() > spans_before,
              "tracer enabled but no spans recorded");
      telemetry::tracer().clear();
    }
    // And for the roofline profiler: attribution reads kernel counters
    // the launch already produced, so modeled time and results must be
    // bit-identical with it on, and nothing may be recorded while off.
    {
      require(telemetry::profiler().report().by_op.empty(),
              "profiler recorded launches while disabled");
      telemetry::profiler().enable();
      std::vector<double> y_prof(y.size());
      const double prof_ms =
          core::merge::spmv_execute(dev, a, x, y_prof, plan).modeled_ms();
      telemetry::profiler().disable();
      require(prof_ms == exec_ms,
              "enabling the profiler changed modeled kernel time");
      require(y_prof == y_exec, "profiling changed spmv results");
      const auto prof_report = telemetry::profiler().report();
      require(!prof_report.by_op.empty(),
              "profiler enabled but no launches attributed");
      telemetry::profiler().clear();
    }

    // Modeled time is deterministic, so the amortization curve is exact
    // arithmetic — no need to actually run n applications.
    const auto per_iter = [&](double n) {
      return (plan.plan_ms() + n * exec_ms) / n;
    };
    // The heap bytes a cached plan keeps resident (what the serving
    // engine's plan cache charges, docs/serving.md).
    require(plan.bytes() > 0, "plan reports a zero heap footprint");
    std::vector<std::string> row{it.entry.name, it.driver,
                                 util::fmt(oneshot_ms, 4),
                                 util::fmt(plan.plan_ms(), 4),
                                 util::fmt(static_cast<double>(plan.bytes()) / 1024.0, 2),
                                 util::fmt(exec_ms, 4)};
    for (const double n : {1.0, 10.0, 100.0, 1000.0})
      row.push_back(util::fmt(per_iter(n), 4));
    row.push_back(util::fmt(oneshot_ms / exec_ms, 2) + "x");
    t.add_row(row);
    report.add_case(it.entry.name,
                    {{"nnz", static_cast<double>(a.nnz())},
                     {"oneshot_ms", oneshot_ms},
                     {"plan_ms", plan.plan_ms()},
                     {"exec_ms", exec_ms},
                     {"plan_bytes", static_cast<double>(plan.bytes())}});
  }
  analysis::emit(t, "plan_reuse_spmv");
  report.write();
  std::puts("\nExpected shape: n=1 matches one-shot (the plan IS the setup);"
            " by n=10 the per-iteration cost is strictly below one-shot and"
            " converges to the execute-only steady state.");
  std::puts("telemetry zero-overhead contract: PASS (tracer and profiler"
            " on/off modeled deltas all zero)");
  return 0;
}
