#include "suite_runners.hpp"

#include <cmath>
#include <cstdio>

#include "autotune/autotune.hpp"
#include "baselines/cusplike.hpp"
#include "baselines/rowwise.hpp"
#include "baselines/seq.hpp"
#include "core/spadd.hpp"
#include "core/spmv.hpp"
#include "resilience/integrity.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"

namespace mps::bench {

using sparse::CooD;
using sparse::CsrD;

namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform_double(-1.0, 1.0);
  return x;
}

void require(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "BENCH VALIDATION FAILED: %s\n", what.c_str());
    std::exit(2);
  }
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace

std::vector<SpmvRow> run_spmv_suite(const std::vector<workloads::SuiteEntry>& suite) {
  std::vector<SpmvRow> rows;
  for (const auto& e : suite) {
    const CsrD& a = e.matrix;
    const auto x = random_vector(static_cast<std::size_t>(a.num_cols), 99);
    std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows));
    std::vector<double> y(static_cast<std::size_t>(a.num_rows));
    baselines::seq::spmv(a, x, y_ref);

    SpmvRow row;
    row.name = e.name;
    row.nnz = a.nnz();

    vgpu::Device dev;
    row.cusp_ms = baselines::cusplike::spmv(dev, a, x, y).modeled_ms;
    require(max_abs_diff(y, y_ref) < 1e-8, e.name + " cusp spmv mismatch");
    row.rowwise_ms = baselines::rowwise::spmv(dev, a, x, y).modeled_ms;
    require(max_abs_diff(y, y_ref) < 1e-8, e.name + " rowwise spmv mismatch");
    row.merge_ms = core::merge::spmv(dev, a, x, y).modeled_ms();
    require(max_abs_diff(y, y_ref) < 1e-8, e.name + " merge spmv mismatch");

    // Repeated-apply path: plan once, execute once, and require the
    // result to be bit-identical to the one-shot merge kernel.
    const auto counters_before = resilience::counters();
    const auto plan = core::merge::spmv_plan(dev, a);
    std::vector<double> y_exec(y.size());
    const auto exec = core::merge::spmv_execute(dev, a, x, y_exec, plan);
    require(y_exec == y, e.name + " planned spmv not bit-identical");
    row.merge_plan_ms = plan.plan_ms();
    row.merge_exec_ms = exec.modeled_ms();
    row.integrity_ms = exec.integrity_ms;
    const auto& counters_after = resilience::counters();
    row.integrity_failures =
        counters_after.integrity_failures - counters_before.integrity_failures;
    row.restores =
        counters_after.checkpoint_restores - counters_before.checkpoint_restores;

    if (autotune::enabled()) {
      const autotune::TunedPlan tuned(dev, a);
      std::vector<double> y_auto(y.size(), -999.0);
      row.auto_ms = tuned.execute(dev, a, x, y_auto).modeled_ms();
      require(y_auto == y_exec, e.name + " autotuned spmv not bit-identical");
      require(row.auto_ms <= row.merge_exec_ms * (1.0 + 1e-12),
              e.name + " autotuner slower than static merge default");
      row.auto_choice = tuned.choice().name;
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<SpaddRow> run_spadd_suite(const std::vector<workloads::SuiteEntry>& suite) {
  std::vector<SpaddRow> rows;
  for (const auto& e : suite) {
    const CsrD& a = e.matrix;
    const CooD a_coo = sparse::csr_to_coo(a);

    SpaddRow row;
    row.name = e.name;
    row.work = 2LL * a.nnz();

    vgpu::CpuCost cpu;
    const CsrD ref = baselines::seq::spadd(a, a, &cpu);
    row.cpu_ms = cpu.modeled_ms();

    vgpu::Device dev;
    CooD c_coo;
    row.cusp_ms = baselines::cusplike::spadd(dev, a_coo, a_coo, c_coo).modeled_ms;
    require(c_coo.nnz() == ref.nnz(), e.name + " cusp spadd nnz mismatch");
    CsrD c;
    row.rowwise_ms = baselines::rowwise::spadd(dev, a, a, c).modeled_ms;
    require(sparse::compare_csr(c, ref).equal, e.name + " rowwise spadd mismatch");
    row.merge_ms = core::merge::spadd(dev, a_coo, a_coo, c_coo).modeled_ms;
    require(c_coo.nnz() == ref.nnz(), e.name + " merge spadd nnz mismatch");
    rows.push_back(row);
  }
  return rows;
}

std::vector<SpgemmRow> run_spgemm_suite(
    const std::vector<workloads::SuiteEntry>& suite) {
  // Native-scale footprint per intermediate product (bytes): the merge
  // scheme stores a 16-bit permutation, head bits and the block-reduced
  // tuple subset; batched ESC streams keys+values through the global sort.
  constexpr double kMergeBytesPerProduct = 4.5;
  constexpr double kEscBytesPerProduct = 8.0;
  constexpr double kDeviceBytes = 6.0 * 1024 * 1024 * 1024;

  std::vector<SpgemmRow> rows;
  for (const auto& e : suite) {
    const CsrD& a = e.matrix;
    const CsrD b = e.spgemm_transpose ? sparse::transpose(a) : a;

    SpgemmRow row;
    row.name = e.name;
    row.products = baselines::seq::spgemm_num_products(a, b);
    row.merge_oom =
        e.native_products_estimate * kMergeBytesPerProduct > kDeviceBytes;
    row.cusp_oom = e.native_products_estimate * kEscBytesPerProduct > kDeviceBytes;

    vgpu::CpuCost cpu;
    const CsrD ref = baselines::seq::spgemm(a, b, &cpu);
    row.cpu_ms = cpu.modeled_ms();

    vgpu::Device dev;
    CsrD c;
    if (row.cusp_oom) {
      row.cusp_ms = -1.0;
    } else {
      row.cusp_ms = baselines::cusplike::spgemm(dev, a, b, c).modeled_ms;
      require(c.nnz() == ref.nnz(), e.name + " cusp spgemm nnz mismatch");
    }
    row.rowwise_ms = baselines::rowwise::spgemm(dev, a, b, c).modeled_ms;
    require(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal,
            e.name + " rowwise spgemm mismatch");
    if (row.merge_oom) {
      row.merge_ms = -1.0;
    } else {
      const auto stats = core::merge::spgemm(dev, a, b, c);
      row.merge_ms = stats.modeled_ms();
      row.merge_phases = stats.phases;
      require(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal,
              e.name + " merge spgemm mismatch");
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace mps::bench
