// Merge SpMV ablations: CTA tile size and the empty-row compaction path.
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "baselines/cusplike.hpp"
#include "core/spmv.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  {
    util::Table t("Ablation: merge SpMV tile size (modeled ms)");
    std::vector<std::string> header{"items/thread"};
    const std::vector<std::string> names{"Wind Tunnel", "Webbase", "LP"};
    for (const auto& n : names) header.push_back(n);
    t.set_header(header);
    std::vector<workloads::SuiteEntry> entries;
    for (const auto& n : names) entries.push_back(workloads::suite_entry(n, cfg.scale));
    for (int items : {1, 3, 7, 11, 15}) {
      std::vector<std::string> row{util::fmt_int(items)};
      for (const auto& e : entries) {
        vgpu::Device dev;
        util::Rng rng(5);
        std::vector<double> x(static_cast<std::size_t>(e.matrix.num_cols));
        for (auto& v : x) v = rng.uniform_double(-1, 1);
        std::vector<double> y(static_cast<std::size_t>(e.matrix.num_rows));
        core::merge::SpmvConfig sc;
        sc.items_per_thread = items;
        row.push_back(util::fmt(core::merge::spmv(dev, e.matrix, x, y, sc).modeled_ms(), 3));
      }
      t.add_row(row);
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("");
  }

  {
    // Paper Section III-A: "Processing the matrices in COO format is one
    // alternative but requires the additional storage and movement of one
    // row entry per nonzero."
    util::Table t("Ablation: CSR merge SpMV vs COO flat SpMV (modeled ms)");
    t.set_header({"Matrix", "CSR merge", "COO flat", "COO/CSR"});
    for (const auto* name : {"Protein", "Wind Tunnel", "Webbase"}) {
      const auto e = workloads::suite_entry(name, cfg.scale);
      vgpu::Device dev;
      util::Rng rng(11);
      std::vector<double> x(static_cast<std::size_t>(e.matrix.num_cols));
      for (auto& v : x) v = rng.uniform_double(-1, 1);
      std::vector<double> y(static_cast<std::size_t>(e.matrix.num_rows));
      const auto coo = sparse::csr_to_coo(e.matrix);
      const double t_csr = core::merge::spmv(dev, e.matrix, x, y).modeled_ms();
      const double t_coo = baselines::cusplike::spmv_coo(dev, coo, x, y).modeled_ms;
      t.add_row({name, util::fmt(t_csr, 3), util::fmt(t_coo, 3),
                 util::fmt(t_coo / t_csr, 2) + "x"});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("");
  }

  {
    util::Table t("Ablation: empty-row handling (fast path vs compaction)");
    t.set_header({"Matrix", "empty rows", "fast-path ms", "compaction ms"});
    for (const auto* name : {"Webbase", "Economics", "QCD"}) {
      const auto e = workloads::suite_entry(name, cfg.scale);
      vgpu::Device dev;
      util::Rng rng(7);
      std::vector<double> x(static_cast<std::size_t>(e.matrix.num_cols));
      for (auto& v : x) v = rng.uniform_double(-1, 1);
      std::vector<double> y(static_cast<std::size_t>(e.matrix.num_rows));
      core::merge::SpmvConfig fast;  // auto-detects; these surrogates have none
      core::merge::SpmvConfig compact;
      compact.force_compaction = true;
      const auto sf = core::merge::spmv(dev, e.matrix, x, y, fast);
      const auto sc = core::merge::spmv(dev, e.matrix, x, y, compact);
      t.add_row({name, sf.used_compaction ? "yes" : "no",
                 util::fmt(sf.modeled_ms(), 3), util::fmt(sc.modeled_ms(), 3)});
    }
    std::fputs(t.render().c_str(), stdout);
  }
  return 0;
}
