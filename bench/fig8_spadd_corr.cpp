// Figure 8: SpAdd time versus total work (|A| + |B|) with rho
// (paper: rho_Merge = 1.0, rho_Cusparse = 0.68).
#include <cstdio>

#include "analysis/experiment.hpp"
#include "suite_runners.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  const auto rows = bench::run_spadd_suite(workloads::paper_suite(cfg.scale));
  analysis::CorrelationSeries merge{"Merge", {}, {}};
  analysis::CorrelationSeries cusparse{"Cusparse", {}, {}};
  std::vector<std::string> labels;
  for (const auto& r : rows) {
    labels.push_back(r.name);
    merge.work.push_back(static_cast<double>(r.work));
    merge.time_ms.push_back(r.merge_ms);
    cusparse.work.push_back(static_cast<double>(r.work));
    cusparse.time_ms.push_back(r.rowwise_ms);
  }
  std::fputs(analysis::render_correlation_figure(
                 "Figure 8: SpAdd time vs 2 x nonzeros", "tuples", labels,
                 {merge, cusparse}, "fig8_spadd_corr")
                 .c_str(),
             stdout);
  std::puts("\nExpected shape (paper): rho_Merge ~= 1.0; Cusparse erratic "
            "(rho ~= 0.68) with a dramatic outlier on one large instance.");
  return 0;
}
