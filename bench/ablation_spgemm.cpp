// Ablations of the merge SpGEMM design choices called out in DESIGN.md:
//   (a) keys-only permutation embedding vs key-value pair block sort,
//   (b) bit-limited vs full 32-bit block sort,
//   (c) CTA tile size sweep,
//   (d) the adaptive (future-work) driver on a dense-like instance.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "baselines/seq.hpp"
#include "core/spgemm.hpp"
#include "core/spgemm_adaptive.hpp"
#include "core/spgemm_batched.hpp"
#include "sparse/convert.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/0.01);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  // (a) + (b): sort-strategy ablation on a regular and an irregular matrix.
  {
    util::Table t("Ablation: block-sort strategy (modeled ms, merge SpGEMM)");
    t.set_header({"Matrix", "embedded+bit-limited", "pairs+bit-limited",
                  "pairs+full-32bit", "block sort share"});
    for (const auto* name : {"Protein", "Webbase"}) {
      const auto e = workloads::suite_entry(name, cfg.scale);
      vgpu::Device dev;
      sparse::CsrD c;
      core::merge::SpgemmConfig base;
      auto s0 = core::merge::spgemm(dev, e.matrix, e.matrix, c, base);
      core::merge::SpgemmConfig pairs = base;
      pairs.force_pair_sort = true;
      auto s1 = core::merge::spgemm(dev, e.matrix, e.matrix, c, pairs);
      core::merge::SpgemmConfig full = base;
      full.force_full_bits = true;
      auto s2 = core::merge::spgemm(dev, e.matrix, e.matrix, c, full);
      t.add_row({name, util::fmt(s0.modeled_ms(), 3), util::fmt(s1.modeled_ms(), 3),
                 util::fmt(s2.modeled_ms(), 3),
                 util::fmt(100.0 * s0.phases.block_sort_ms / s0.modeled_ms(), 1) + "%"});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("");
  }

  // (c): tile-size sweep.
  {
    util::Table t("Ablation: CTA tile size (items per thread, 128 threads)");
    t.set_header({"items/thread", "tile", "modeled ms", "block uniques"});
    const auto e = workloads::suite_entry("Cantilever", cfg.scale);
    for (int items : {3, 7, 11, 15, 19}) {
      vgpu::Device dev;
      sparse::CsrD c;
      core::merge::SpgemmConfig sc;
      sc.items_per_thread = items;
      const auto s = core::merge::spgemm(dev, e.matrix, e.matrix, c, sc);
      t.add_row({util::fmt_int(items), util::fmt_int(sc.tile()),
                 util::fmt(s.modeled_ms(), 3),
                 util::fmt_sep(static_cast<unsigned long long>(s.block_unique))});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("");
  }

  // (c'): batching — the alternative answer to the paper's Dense OOM:
  // process the intermediate in memory-bounded product batches and union
  // the partial outputs.
  {
    util::Table t("Ablation: batched SpGEMM (memory-ceiling lift)");
    t.set_header({"Matrix", "batches", "spgemm ms", "combine ms", "vs monolithic"});
    for (const auto* name : {"Dense", "Cantilever"}) {
      const auto e = workloads::suite_entry(name, cfg.scale);
      vgpu::Device dev;
      sparse::CsrD c;
      const auto mono = core::merge::spgemm(dev, e.matrix, e.matrix, c);
      sparse::CsrD c2;
      const auto bat = core::merge::spgemm_batched(
          dev, e.matrix, e.matrix, c2,
          std::max<long long>(mono.num_products / 8, 1));
      t.add_row({name, util::fmt_int(bat.num_batches), util::fmt(bat.spgemm_ms, 3),
                 util::fmt(bat.combine_ms, 3),
                 util::fmt(bat.modeled_ms() / mono.modeled_ms(), 2) + "x"});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("");
  }

  // (d): adaptive driver — dense-like instance goes segmented and beats
  // the flat path; a sparse instance stays flat.
  {
    util::Table t("Ablation: adaptive SpGEMM (paper Section V future work)");
    t.set_header({"Matrix", "path", "reason", "adaptive ms", "flat ms"});
    for (const auto* name : {"Dense", "Cantilever", "Webbase"}) {
      const auto e = workloads::suite_entry(name, cfg.scale);
      vgpu::Device dev;
      sparse::CsrD c;
      const auto s = core::merge::spgemm_adaptive(dev, e.matrix, e.matrix, c);
      double flat_ms = -1.0;
      if (std::string(name) != "Dense") {
        sparse::CsrD c2;
        flat_ms = core::merge::spgemm(dev, e.matrix, e.matrix, c2).modeled_ms();
      } else {
        // Flat Dense at native scale is the paper's OOM case; at bench
        // scale we can still time it for comparison.
        sparse::CsrD c2;
        flat_ms = core::merge::spgemm(dev, e.matrix, e.matrix, c2).modeled_ms();
      }
      t.add_row({name, s.used_segmented ? "segmented" : "flat", s.reason,
                 util::fmt(s.modeled_ms, 3), util::fmt(flat_ms, 3)});
    }
    std::fputs(t.render().c_str(), stdout);
  }
  return 0;
}
