// Regenerates the paper's Table II: the 14-matrix test suite, printing
// the paper's native statistics next to the synthetic surrogate's
// realized statistics at the current scale.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "sparse/stats.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  util::Table t("Table II: unstructured matrices (paper native vs surrogate @ scale " +
                util::fmt(cfg.scale, 4) + ")");
  t.set_header({"Matrix", "rows", "columns", "nonzeros", "avg/row", "std",
                "rows'", "nonzeros'", "avg/row'", "std'"});
  for (const auto& e : workloads::paper_suite(cfg.scale)) {
    const auto s = sparse::compute_stats(e.matrix);
    t.add_row({e.name, util::fmt_sep(static_cast<unsigned long long>(e.paper_rows)),
               util::fmt_sep(static_cast<unsigned long long>(e.paper_cols)),
               util::fmt_sep(static_cast<unsigned long long>(e.paper_nnz)),
               util::fmt(e.paper_avg, 2), util::fmt(e.paper_std, 2),
               util::fmt_sep(static_cast<unsigned long long>(s.rows)),
               util::fmt_sep(static_cast<unsigned long long>(s.nnz)),
               util::fmt(s.avg_row, 2), util::fmt(s.std_row, 2)});
  }
  analysis::emit(t, "table2");
  std::puts("\nPrimed columns are the realized surrogate statistics; degree "
            "distributions are scale-invariant so avg/std track the paper.");
  return 0;
}
