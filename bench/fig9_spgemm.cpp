// Figure 9: SpGEMM (A x A; LP: A x A^T) speedup versus the sequential CPU
// baseline.  Schemes whose native-scale intermediate exceeds the 6 GiB
// device report OOM (the paper's missing Dense bars for Cusp and Merge).
#include <cstdio>

#include "analysis/bench_json.hpp"
#include "analysis/experiment.hpp"
#include "suite_runners.hpp"
#include "util/table.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/0.015);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  const auto rows = bench::run_spgemm_suite(workloads::paper_suite(cfg.scale));
  util::Table t("Figure 9: SpGEMM speedup vs sequential CPU (modeled)");
  t.set_header({"Matrix", "products", "Cusp", "Cusparse", "Merge"});
  analysis::BenchJson report("fig9_spgemm");
  report.add_stat("scale", cfg.scale);
  for (const auto& r : rows) {
    t.add_row({r.name, util::fmt_sep(static_cast<unsigned long long>(r.products)),
               r.cusp_oom ? "OOM" : util::fmt(r.cpu_ms / r.cusp_ms, 2),
               util::fmt(r.cpu_ms / r.rowwise_ms, 2),
               r.merge_oom ? "OOM" : util::fmt(r.cpu_ms / r.merge_ms, 2)});
    // OOM rows report merge_ms/cusp_ms < 0; the baseline diff treats the
    // sentinel like any other value.
    report.add_case(r.name,
                    {{"products", static_cast<double>(r.products)},
                     {"cpu_ms", r.cpu_ms},
                     {"cusp_ms", r.cusp_oom ? -1.0 : r.cusp_ms},
                     {"rowwise_ms", r.rowwise_ms},
                     {"merge_ms", r.merge_oom ? -1.0 : r.merge_ms}});
  }
  analysis::emit(t, "fig9_spgemm");
  report.write();
  std::puts("\nExpected shape (paper): Merge sustains speedup on every "
            "instance it fits; Cusparse degrades on Economics/Circuit/"
            "Webbase/LP; Cusp and Merge OOM on Dense.");
  return 0;
}
