// Figure 10: SpGEMM time versus the number of intermediate products
// (paper: rho_Merge = 0.98, rho_Cusparse = -0.02).
#include <cstdio>

#include "analysis/experiment.hpp"
#include "suite_runners.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/0.015);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  const auto rows = bench::run_spgemm_suite(workloads::paper_suite(cfg.scale));
  analysis::CorrelationSeries merge{"Merge", {}, {}};
  analysis::CorrelationSeries cusparse{"Cusparse", {}, {}};
  std::vector<std::string> labels;
  for (const auto& r : rows) {
    if (r.merge_oom) continue;  // the paper's panels exclude OOM instances
    labels.push_back(r.name);
    merge.work.push_back(static_cast<double>(r.products));
    merge.time_ms.push_back(r.merge_ms);
    cusparse.work.push_back(static_cast<double>(r.products));
    cusparse.time_ms.push_back(r.rowwise_ms);
  }
  std::fputs(analysis::render_correlation_figure(
                 "Figure 10: SpGEMM time vs number of products", "products",
                 labels, {merge, cusparse}, "fig10_spgemm_corr")
                 .c_str(),
             stdout);
  std::puts("\nExpected shape (paper): rho_Merge ~= 0.98 while the row-wise "
            "scheme is uncorrelated with the product count (rho ~= 0).");
  return 0;
}
