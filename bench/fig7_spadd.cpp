// Figure 7: SpAdd (A + A) speedup versus the sequential CPU baseline for
// Cusp (global sort, COO), Cusparse (row-wise, CSR) and Merge (balanced
// path, COO).
#include <cstdio>

#include "analysis/bench_json.hpp"
#include "analysis/experiment.hpp"
#include "suite_runners.hpp"
#include "util/table.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  const auto rows = bench::run_spadd_suite(workloads::paper_suite(cfg.scale));
  util::Table t("Figure 7: SpAdd speedup vs sequential CPU (modeled)");
  t.set_header({"Matrix", "|A|+|B|", "Cusp", "Cusparse", "Merge"});
  analysis::BenchJson report("fig7_spadd");
  report.add_stat("scale", cfg.scale);
  for (const auto& r : rows) {
    t.add_row({r.name, util::fmt_sep(static_cast<unsigned long long>(r.work)),
               util::fmt(r.cpu_ms / r.cusp_ms, 2),
               util::fmt(r.cpu_ms / r.rowwise_ms, 2),
               util::fmt(r.cpu_ms / r.merge_ms, 2)});
    report.add_case(r.name, {{"work", static_cast<double>(r.work)},
                             {"cpu_ms", r.cpu_ms},
                             {"cusp_ms", r.cusp_ms},
                             {"rowwise_ms", r.rowwise_ms},
                             {"merge_ms", r.merge_ms}});
  }
  analysis::emit(t, "fig7_spadd");
  report.write();
  std::puts("\nExpected shape (paper): Cusparse and Merge both far ahead of "
            "Cusp; Cusparse ahead on Dense/Protein/Wind, comparable "
            "elsewhere, far behind on Webbase/LP-style irregularity.");
  return 0;
}
