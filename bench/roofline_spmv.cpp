// Roofline attribution for SpMV over the paper (Figure 5) suite: for
// each matrix, run the merge-path kernel and the two baseline schemes
// with the profiler enabled and report two bandwidth fractions
// (telemetry::Profiler, docs/observability.md):
//
//   util   — charged bytes / peak-capacity bytes, the profiler's
//            achieved_frac(): how busy the memory system was.
//   useful — ALGORITHMIC bytes / peak-capacity bytes: the fraction of
//            peak bandwidth spent moving data the computation actually
//            needed (CSR arrays once, x gathers, y writes).
//
// The two split the schemes exactly the way the paper's Figure 5 does.
// Merge-path SpMV moves ~the algorithmic bytes and streams them at near
// peak, so BOTH fractions are high on every regime — that is the
// bandwidth-bound claim, machine-checked.  The row-wise vendor-style
// kernel keeps its memory system busy too (high util), but on skewed
// matrices most of that traffic is waste — transaction padding on short
// rows and the serialization of CTAs pinned behind their longest row —
// so its USEFUL fraction collapses below the roofline threshold.
//
// Validation (the bench exits non-zero on violation; enforced at scale
// >= 0.2 — below that the matrices are too small to fill the modeled
// device and every scheme's absolute fraction collapses, so the table
// is reported without enforcement):
//   * merge useful fraction >= 0.30 on EVERY matrix;
//   * the dominant merge.spmv_reduce kernel never enters the profiler's
//     below-roofline list;
//   * on every skewed matrix (row-length CV >= 1) the rowwise useful
//     fraction falls below 0.75x merge's — the waste criterion;
//   * every scheme's launches were attributed (phase axis).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/bench_json.hpp"
#include "analysis/experiment.hpp"
#include "baselines/cusplike.hpp"
#include "baselines/rowwise.hpp"
#include "baselines/seq.hpp"
#include "core/spmv.hpp"
#include "telemetry/profile.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace mps;

/// Coefficient of variation of the row lengths — the skew axis the
/// row-wise scheme is sensitive to (Table II's "std" column, recomputed
/// on the scaled matrix actually run).
double row_cv(const sparse::CsrD& a) {
  if (a.num_rows == 0) return 0.0;
  const double n = static_cast<double>(a.num_rows);
  const double mean = static_cast<double>(a.nnz()) / n;
  if (mean <= 0.0) return 0.0;
  double ss = 0.0;
  for (index_t r = 0; r < a.num_rows; ++r) {
    const double len =
        static_cast<double>(a.row_offsets[static_cast<std::size_t>(r) + 1] -
                            a.row_offsets[static_cast<std::size_t>(r)]);
    ss += (len - mean) * (len - mean);
  }
  return std::sqrt(ss / n) / mean;
}

/// The bytes a CSR fp64 SpMV must move regardless of schedule: val+col
/// once, the offsets array, one gathered x element per nonzero, one y
/// write per row.  The roofline numerator for the "useful" fraction.
double useful_spmv_bytes(const sparse::CsrD& a) {
  const double nnz = static_cast<double>(a.nnz());
  const double rows = static_cast<double>(a.num_rows);
  return nnz * static_cast<double>(sizeof(double) + sizeof(index_t)) +
         (rows + 1.0) * static_cast<double>(sizeof(index_t)) +
         nnz * static_cast<double>(sizeof(double)) +  // x gathers
         rows * static_cast<double>(sizeof(double));  // y writes
}

}  // namespace

int main() {
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);
  auto& prof = telemetry::profiler();
  const double threshold = prof.roofline_frac();
  const double kSkewCv = 1.0;
  // Calibrated at scale 0.2 (merge useful minimum 0.34, on Dense) and
  // 1.0 (minimum 0.61); skewed rowwise/merge useful ratios are <= 0.65
  // at both scales while every non-skewed ratio stays >= 0.73.
  const double kMergeUsefulFloor = 0.30;
  const double kWasteRatio = 0.75;
  const bool enforce = cfg.scale >= 0.2;

  util::Table t("Roofline: SpMV bandwidth fractions, useful (util), "
                "threshold " + util::fmt(threshold, 2) + " on useful");
  t.set_header({"Matrix", "nnz", "row CV", "merge", "rowwise", "cusp",
                "merge f/B", "verdict"});
  analysis::BenchJson report("roofline_spmv");
  report.add_stat("scale", cfg.scale);
  report.add_stat("roofline_frac", threshold);

  std::vector<std::string> violations;
  const auto check = [&violations](bool ok, std::string what) {
    if (!ok) violations.push_back(std::move(what));
  };

  int skewed = 0, rowwise_flagged = 0;
  for (const auto& e : workloads::paper_suite(cfg.scale)) {
    const auto& a = e.matrix;
    vgpu::Device dev;
    util::Rng rng(17);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols));
    for (auto& v : x) v = rng.uniform_double(-1, 1);
    std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows));
    baselines::seq::spmv(a, x, y_ref);
    std::vector<double> y(y_ref.size());

    prof.clear();
    prof.enable();
    {
      telemetry::ProfAttr attr;
      attr.phase = "merge";
      telemetry::ProfAttrScope scope(attr);
      core::merge::spmv(dev, a, x, y);
    }
    double err = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      err = std::max(err, std::abs(y[i] - y_ref[i]));
    check(err < 1e-8, e.name + ": merge spmv mismatch");
    {
      telemetry::ProfAttr attr;
      attr.phase = "rowwise";
      telemetry::ProfAttrScope scope(attr);
      baselines::rowwise::spmv(dev, a, x, y);
    }
    {
      telemetry::ProfAttr attr;
      attr.phase = "cusp";
      telemetry::ProfAttrScope scope(attr);
      baselines::cusplike::spmv(dev, a, x, y);
    }
    prof.disable();

    const auto rep = prof.report();
    const auto merge_it = rep.by_phase.find("merge");
    const auto row_it = rep.by_phase.find("rowwise");
    const auto cusp_it = rep.by_phase.find("cusp");
    if (merge_it == rep.by_phase.end() || row_it == rep.by_phase.end() ||
        cusp_it == rep.by_phase.end()) {
      std::fprintf(stderr, "BENCH VALIDATION FAILED: %s: profiler missed a "
                   "scheme's launches\n", e.name.c_str());
      return 2;
    }
    const double useful = useful_spmv_bytes(a);
    const auto fracs = [useful](const telemetry::RooflineAgg& agg) {
      return std::pair<double, double>(
          agg.capacity_bytes > 0.0 ? useful / agg.capacity_bytes : 0.0,
          agg.achieved_frac());
    };
    const auto [merge_useful, merge_util] = fracs(merge_it->second);
    const auto [row_useful, row_util] = fracs(row_it->second);
    const auto [cusp_useful, cusp_util] = fracs(cusp_it->second);
    const double cv = row_cv(a);

    // The dominant reduce kernel may never sit below the roofline in
    // charged-traffic terms either.  (Setup kernels like spmv_partition
    // are binary-search bound and tiny; the phase-level useful fraction
    // is what the paper's claim covers.)
    const bool is_skewed = cv >= kSkewCv;
    const bool row_wasteful = row_useful < kWasteRatio * merge_useful;
    if (enforce) {
      for (const auto& op : rep.below_roofline) {
        check(op != "merge.spmv_reduce",
              e.name + ": merge reduce kernel fell below the roofline");
      }
      check(merge_useful >= kMergeUsefulFloor,
            e.name + ": merge useful fraction " + util::fmt(merge_useful, 3) +
                " below floor " + util::fmt(kMergeUsefulFloor, 2));
      if (is_skewed) {
        // The paper's Figure 5 story, quantified: on skewed matrices the
        // row-wise kernel burns its bandwidth on transaction padding and
        // longest-row serialization, so the fraction it spends on USEFUL
        // bytes collapses well below merge's.
        check(row_wasteful,
              e.name + ": rowwise useful fraction " +
                  util::fmt(row_useful, 3) + " not below " +
                  util::fmt(kWasteRatio, 2) + "x merge's " +
                  util::fmt(merge_useful, 3) + " despite row CV " +
                  util::fmt(cv, 2));
      }
    }
    if (is_skewed) ++skewed;
    if (row_wasteful) ++rowwise_flagged;

    const auto cell = [](double u, double b) {
      return util::fmt(u, 3) + " (" + util::fmt(b, 2) + ")";
    };
    const char* verdict = row_wasteful
                              ? (is_skewed ? "rowwise wastes bw (skew)"
                                           : "rowwise wastes bw")
                              : "all bandwidth-bound";
    t.add_row({e.name, util::fmt_sep(static_cast<unsigned long long>(a.nnz())),
               util::fmt(cv, 2), cell(merge_useful, merge_util),
               cell(row_useful, row_util), cell(cusp_useful, cusp_util),
               util::fmt(merge_it->second.intensity(), 3), verdict});
    report.add_case(e.name,
                    {{"nnz", static_cast<double>(a.nnz())},
                     {"row_cv", cv},
                     {"merge_useful_frac", merge_useful},
                     {"merge_util_frac", merge_util},
                     {"rowwise_useful_frac", row_useful},
                     {"rowwise_util_frac", row_util},
                     {"cusp_useful_frac", cusp_useful},
                     {"merge_intensity", merge_it->second.intensity()}});
  }
  prof.clear();
  check(skewed > 0, "suite has no skewed matrices — skew leg never ran");
  report.add_stat("skewed_matrices", static_cast<double>(skewed));
  report.add_stat("rowwise_flagged", static_cast<double>(rowwise_flagged));
  report.add_stat("enforced", enforce ? 1.0 : 0.0);

  analysis::emit(t, "roofline_spmv");
  report.write();
  if (!enforce) {
    std::printf("\n(scale %.3g < 0.2: matrices too small to fill the device;"
                " roofline thresholds reported but not enforced)\n",
                cfg.scale);
  }
  std::printf("\nroofline: merge useful fraction >= %.2f on every matrix; "
              "rowwise flagged wasteful on %d (all %d skewed ones among "
              "them)\n", kMergeUsefulFloor, rowwise_flagged, skewed);
  std::puts("Expected shape (paper): merge-path SpMV is bandwidth-bound on "
            "every regime; the row-wise kernel degrades exactly on the "
            "high-variance (Webbase/LP-like) matrices.");
  if (!violations.empty()) {
    for (const auto& v : violations)
      std::fprintf(stderr, "BENCH VALIDATION FAILED: %s\n", v.c_str());
    return 2;
  }
  return 0;
}
