// Extended evaluation beyond the paper's Table II: the predictability
// claim (time tracks work, structure-independent) checked on generic
// workload families the paper never saw — 2D/3D stencils, R-MAT graphs,
// power-law webs, hypersparse and near-dense random matrices.  If the
// merge kernels' correlation holds here too, the paper's conclusion
// generalizes past its own test suite.
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "baselines/rowwise.hpp"
#include "baselines/seq.hpp"
#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "sparse/convert.hpp"
#include "sparse/stats.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace mps;

struct Entry {
  std::string name;
  sparse::CsrD matrix;
};

std::vector<Entry> extended_suite(double scale) {
  const auto s = [&](index_t v) {
    return std::max<index_t>(8, static_cast<index_t>(v * scale));
  };
  std::vector<Entry> out;
  out.push_back({"poisson2d", workloads::poisson2d(s(512), s(512))});
  out.push_back({"poisson3d27", workloads::poisson3d27(s(48))});
  out.push_back({"rmat", workloads::rmat(
                             std::max(8, static_cast<int>(17 + std::log2(scale))),
                             16, 0.57, 0.19, 0.19, 21)});
  out.push_back({"powerlaw", workloads::powerlaw_web(s(300'000), 0.02, 1.4, 3, 22)});
  out.push_back({"banded-wide", workloads::fem_banded(s(40'000), 150.0, 40.0, 23)});
  out.push_back({"banded-thin", workloads::fem_banded(s(400'000), 9.0, 2.0, 24)});
  {
    util::Rng rng(25);
    sparse::CooD hyper(s(1'000'000), s(1'000'000));
    for (index_t i = 0; i < s(1'500'000); ++i) {
      hyper.push_back(
          static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(hyper.num_rows))),
          static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(hyper.num_cols))),
          rng.uniform_double(-1, 1));
    }
    hyper.canonicalize();
    out.push_back({"hypersparse", sparse::coo_to_csr(hyper)});
  }
  return out;
}

}  // namespace

int main() {
  const auto cfg = analysis::bench_config(/*default_scale=*/0.1);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  const auto suite = extended_suite(cfg.scale);
  util::Table t("Extended suite: merge kernels on out-of-sample families");
  t.set_header({"Workload", "rows", "nnz", "SpMV ms", "SpAdd ms", "SpGEMM ms",
                "products"});
  analysis::CorrelationSeries spmv_series{"spmv", {}, {}};
  analysis::CorrelationSeries spadd_series{"spadd", {}, {}};
  analysis::CorrelationSeries spgemm_series{"spgemm", {}, {}};
  for (const auto& e : suite) {
    vgpu::Device dev;
    util::Rng rng(9);
    const auto& a = e.matrix;
    std::vector<double> x(static_cast<std::size_t>(a.num_cols));
    for (auto& v : x) v = rng.uniform_double(-1, 1);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows));
    const double spmv_ms = core::merge::spmv(dev, a, x, y).modeled_ms();

    const auto coo = sparse::csr_to_coo(a);
    sparse::CooD c_add;
    const double spadd_ms = core::merge::spadd(dev, coo, coo, c_add).modeled_ms;

    // SpGEMM on a capped slice for the heavy entries (work measured, so
    // the correlation is still over true per-instance work).
    sparse::CsrD c;
    double spgemm_ms = 0.0;
    long long products = baselines::seq::spgemm_num_products(a, a);
    const long long cap = static_cast<long long>(4e7);
    if (products <= cap) {
      spgemm_ms = core::merge::spgemm(dev, a, a, c).modeled_ms();
      spgemm_series.work.push_back(static_cast<double>(products));
      spgemm_series.time_ms.push_back(spgemm_ms);
    }
    spmv_series.work.push_back(static_cast<double>(a.nnz()));
    spmv_series.time_ms.push_back(spmv_ms);
    spadd_series.work.push_back(2.0 * static_cast<double>(a.nnz()));
    spadd_series.time_ms.push_back(spadd_ms);

    t.add_row({e.name, util::fmt_sep(static_cast<unsigned long long>(a.num_rows)),
               util::fmt_sep(static_cast<unsigned long long>(a.nnz())),
               util::fmt(spmv_ms, 3), util::fmt(spadd_ms, 3),
               products <= cap ? util::fmt(spgemm_ms, 3) : "(skipped)",
               util::fmt_sep(static_cast<unsigned long long>(products))});
  }
  analysis::emit(t, "extended_suite");
  std::printf("\nwork-correlations on out-of-sample families: rho_spmv = %.3f, "
              "rho_spadd = %.3f, rho_spgemm = %.3f\n",
              analysis::correlate(spmv_series).rho,
              analysis::correlate(spadd_series).rho,
              analysis::correlate(spgemm_series).rho);
  std::puts("Expected: all three stay ~1.0 — predictability is not an "
            "artifact of the Table II selection.");
  return 0;
}
