// google-benchmark microbenchmarks for the primitive layer (host wall
// time; the figure benches use the analytic model instead).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "primitives/balanced_path.hpp"
#include "primitives/device_merge.hpp"
#include "primitives/device_radix_sort.hpp"
#include "primitives/merge_path.hpp"
#include "primitives/reduce_by_key.hpp"
#include "primitives/segmented_reduce.hpp"
#include "primitives/sorted_search.hpp"
#include "primitives/set_ops.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"

namespace {

std::vector<std::uint32_t> sorted_u32(std::size_t n, std::uint64_t seed,
                                      std::uint64_t range) {
  mps::util::Rng rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.uniform(range));
  std::sort(v.begin(), v.end());
  return v;
}

void BM_MergePathSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = sorted_u32(n, 1, 1u << 30);
  const auto b = sorted_u32(n, 2, 1u << 30);
  std::size_t diag = 1;
  for (auto _ : state) {
    diag = (diag * 2654435761u) % (2 * n);
    benchmark::DoNotOptimize(mps::primitives::merge_path<std::uint32_t>(a, b, diag));
  }
}
BENCHMARK(BM_MergePathSearch)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BalancedPathSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = sorted_u32(n, 3, 64);  // heavy duplication
  const auto b = sorted_u32(n, 4, 64);
  std::size_t diag = 1;
  for (auto _ : state) {
    diag = (diag * 2654435761u) % (2 * n);
    benchmark::DoNotOptimize(
        mps::primitives::balanced_path<std::uint32_t>(a, b, diag));
  }
}
BENCHMARK(BM_BalancedPathSearch)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_DeviceSetUnion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = sorted_u32(n, 5, n);
  const auto b = sorted_u32(n, 6, n);
  mps::vgpu::Device dev;
  for (auto _ : state) {
    auto res = mps::primitives::device_set_op_keys<std::uint32_t>(
        dev, a, b, mps::primitives::SetOp::kUnion);
    benchmark::DoNotOptimize(res.keys.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_DeviceSetUnion)->Arg(1 << 14)->Arg(1 << 18);

void BM_DeviceRadixSortPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mps::util::Rng rng(7);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> payload(n);
  for (auto& k : keys) k = rng.next_u64();
  std::iota(payload.begin(), payload.end(), 0u);
  mps::vgpu::Device dev;
  for (auto _ : state) {
    state.PauseTiming();
    auto k = keys;
    auto p = payload;
    state.ResumeTiming();
    mps::primitives::device_radix_sort_pairs(dev, "bm", std::span<std::uint64_t>(k),
                                             std::span<std::uint32_t>(p), 64);
    benchmark::DoNotOptimize(k.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DeviceRadixSortPairs)->Arg(1 << 14)->Arg(1 << 18);

void BM_ReduceByKey(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto keys64 = sorted_u32(n, 8, n / 8 + 1);
  std::vector<std::uint64_t> keys(keys64.begin(), keys64.end());
  std::vector<double> vals(n, 1.0);
  mps::vgpu::Device dev;
  for (auto _ : state) {
    auto res = mps::primitives::device_reduce_by_key<std::uint64_t, double>(
        dev, "bm", keys, vals);
    benchmark::DoNotOptimize(res.vals.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReduceByKey)->Arg(1 << 14)->Arg(1 << 18);

void BM_DeviceMergeSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mps::util::Rng rng(11);
  std::vector<std::uint32_t> base(n);
  for (auto& x : base) x = rng.next_u32();
  mps::vgpu::Device dev;
  for (auto _ : state) {
    state.PauseTiming();
    auto v = base;
    state.ResumeTiming();
    mps::primitives::device_merge_sort<std::uint32_t>(dev, v);
    benchmark::DoNotOptimize(v.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DeviceMergeSort)->Arg(1 << 14)->Arg(1 << 18);

void BM_SegmentedReduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t segments = n / 64;
  std::vector<mps::index_t> offsets(segments + 1);
  for (std::size_t s = 0; s <= segments; ++s) {
    offsets[s] = static_cast<mps::index_t>(s * n / segments);
  }
  std::vector<double> values(n, 1.0), out(segments);
  mps::vgpu::Device dev;
  for (auto _ : state) {
    mps::primitives::device_segmented_reduce<double>(dev, offsets, values,
                                                     std::span<double>(out));
    benchmark::DoNotOptimize(out.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SegmentedReduce)->Arg(1 << 14)->Arg(1 << 18);

void BM_SortedSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = sorted_u32(n, 12, 1u << 28);
  const auto b = sorted_u32(n, 13, 1u << 28);
  std::vector<mps::index_t> idx(n);
  mps::vgpu::Device dev;
  for (auto _ : state) {
    mps::primitives::device_sorted_search<std::uint32_t>(
        dev, a, b, std::span<mps::index_t>(idx));
    benchmark::DoNotOptimize(idx.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SortedSearch)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
