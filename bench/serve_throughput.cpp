// Serving-engine throughput: threads x batch-window sweep over a
// Zipf-skewed multi-tenant SpMV trace on the iterative-suite (Table II)
// matrices.  For each configuration the table reports wall throughput,
// tail latency, the modeled kernel cost (batched SpMM amortizes the
// merge-path partition across coalesced requests, so the summed modeled
// cost falls as the window opens), and plan-cache effectiveness.
//
// Validation: the engine's determinism contract — every configuration
// must produce bitwise-identical answers for every request, regardless
// of thread count, batch window, or arrival interleaving.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <vector>

#include "analysis/bench_json.hpp"
#include "analysis/experiment.hpp"
#include "serve/engine.hpp"
#include "serve/trace.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/span.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace mps;

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "BENCH VALIDATION FAILED: %s\n", what);
    std::exit(2);
  }
}

std::vector<double> make_x(const sparse::CsrD& a, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  return x;
}

// FNV-1a over the result bits: cheap bitwise-equality witness across
// configurations without storing every vector 16 times.
std::uint64_t hash_bits(const std::vector<double>& y) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double v : y) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 64; b += 8) {
      h ^= (bits >> b) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

int main() {
  const auto cfg = analysis::bench_config(/*default_scale=*/0.3);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  // Tenants: the iterative-suite matrices (the repeated-SpMV regime the
  // plan cache exists for).
  std::vector<sparse::CsrD> tenants;
  std::vector<std::string> tenant_names;
  for (const auto& it : workloads::iterative_suite(cfg.scale)) {
    tenants.push_back(it.entry.matrix);
    tenant_names.push_back(it.entry.name);
  }
  require(!tenants.empty(), "iterative suite is empty");

  serve::TraceConfig tcfg;
  tcfg.requests = 400;
  tcfg.spadd_percent = 0;   // pure SpMV: isolate the batching effect
  tcfg.spgemm_percent = 0;
  const auto trace = serve::synthetic_trace(tcfg, tenants.size());

  std::printf("tenants:");
  for (const auto& n : tenant_names) std::printf(" %s", n.c_str());
  std::printf("  |  %zu SpMV requests, zipf %.2f\n\n", trace.size(), tcfg.zipf_s);

  util::Table t("Serving throughput: threads x batch window, "
                + std::to_string(trace.size()) + " SpMV requests");
  t.set_header({"threads", "window", "req/s", "p50 ms", "p99 ms",
                "modeled ms", "batched%", "max", "cache hit%"});

  analysis::BenchJson report("serve_throughput");
  report.add_stat("scale", cfg.scale);
  report.add_stat("requests", static_cast<double>(trace.size()));
  std::vector<std::uint64_t> reference_hashes;  // from the first config
  double modeled_unbatched = 0.0;               // window=1 baseline per thread count
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (const int window : {1, 4, 8, 16}) {
      serve::EngineConfig ecfg;
      ecfg.threads = threads;
      ecfg.batch_window = window;
      ecfg.queue_capacity = 2048;
      ecfg.plan_cache_bytes = 64u << 20;
      serve::Engine engine(ecfg);
      std::vector<serve::MatrixHandle> handles;
      for (const auto& a : tenants) handles.push_back(engine.register_matrix(a));

      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::future<serve::SpmvResult>> futures;
      futures.reserve(trace.size());
      for (const auto& op : trace) {
        futures.push_back(engine.submit_spmv(
            handles[op.matrix], make_x(tenants[op.matrix], op.x_seed)));
      }
      double modeled_ms = 0.0;
      long long batched = 0;
      long long max_batch = 1;
      std::vector<std::uint64_t> hashes;
      hashes.reserve(futures.size());
      for (auto& f : futures) {
        serve::SpmvResult r = f.get();
        modeled_ms += r.modeled_ms;
        if (r.batch_size > 1) ++batched;
        max_batch = std::max(max_batch, static_cast<long long>(r.batch_size));
        hashes.push_back(hash_bits(r.y));
      }
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      engine.shutdown();
      const auto s = engine.stats();

      // Determinism across every configuration: bitwise-identical
      // answers request-for-request (the differential guarantee of
      // tests/serve_test.cpp, re-checked at bench scale).
      if (reference_hashes.empty()) {
        reference_hashes = hashes;
      } else {
        require(hashes == reference_hashes,
                "answers changed across thread/window configurations");
      }
      require(s.completed == static_cast<long long>(trace.size()),
              "not every request completed");
      require(s.peak_queue_depth <= s.queue_capacity,
              "queue exceeded its cap");
      if (window == 1) {
        modeled_unbatched = modeled_ms;
        require(s.batches == 0, "window=1 must never batch");
      }

      const auto& pc = s.plan_cache;
      const double lookups = static_cast<double>(pc.hits + pc.misses);
      t.add_row({std::to_string(threads), std::to_string(window),
                 util::fmt(static_cast<double>(trace.size()) / wall_s, 1),
                 util::fmt(s.latency_p50_ms, 3), util::fmt(s.latency_p99_ms, 3),
                 util::fmt(modeled_ms, 2),
                 util::fmt(100.0 * static_cast<double>(batched) /
                               static_cast<double>(trace.size()), 1),
                 std::to_string(max_batch),
                 lookups > 0
                     ? util::fmt(100.0 * static_cast<double>(pc.hits) / lookups, 1)
                     : "-"});
      // Wall-clock metrics (req/s, latency) vary run to run; modeled ms
      // and cache behavior are the deterministic regression signals.
      report.add_case("t" + std::to_string(threads) + "_w" +
                          std::to_string(window),
                      {{"threads", static_cast<double>(threads)},
                       {"window", static_cast<double>(window)},
                       {"modeled_ms", modeled_ms},
                       {"batched", static_cast<double>(batched)},
                       {"max_batch", static_cast<double>(max_batch)},
                       {"cache_hits", static_cast<double>(pc.hits)},
                       {"cache_misses", static_cast<double>(pc.misses)}});
      // Coalescing must not cost modeled time: a batched dispatch runs
      // ONE merge-path partition where unbatched dispatch runs N.
      if (window > 1) {
        require(modeled_ms <= modeled_unbatched * 1.0001,
                "batched modeled cost exceeds unbatched");
      }
    }
  }
  // Zero-overhead-when-off contract: constructing the engine with the
  // chaos layer force-disabled vs armed-with-an-empty-schedule must give
  // bitwise-identical summed modeled time and answers.  The disarmed
  // fast path in vgpu::Device::launch is one predicted branch; if the
  // fault-tolerance machinery (retry policy, breaker, supervision) ever
  // leaks modeled cost into the fault-free path, this trips.
  ::unsetenv("MPS_CHAOS_SCRIPT");  // the contract assumes no real faults
  ::unsetenv("MPS_CHAOS_SEED");
  double chaos_modeled[2] = {0.0, 0.0};
  std::vector<std::uint64_t> chaos_hashes[2];
  for (const int chaos_enabled : {0, 1}) {
    serve::EngineConfig ecfg;
    ecfg.threads = 1;
    ecfg.batch_window = 1;
    ecfg.queue_capacity = 2048;
    ecfg.plan_cache_bytes = 64u << 20;
    ecfg.chaos_enabled = chaos_enabled;
    serve::Engine engine(ecfg);
    std::vector<serve::MatrixHandle> handles;
    for (const auto& a : tenants) handles.push_back(engine.register_matrix(a));
    std::vector<std::future<serve::SpmvResult>> futures;
    futures.reserve(trace.size());
    for (const auto& op : trace) {
      futures.push_back(engine.submit_spmv(
          handles[op.matrix], make_x(tenants[op.matrix], op.x_seed)));
    }
    for (auto& f : futures) {
      serve::SpmvResult r = f.get();
      chaos_modeled[chaos_enabled] += r.modeled_ms;
      chaos_hashes[chaos_enabled].push_back(hash_bits(r.y));
    }
    engine.shutdown();
    require(engine.stats().retries == 0,
            "fault-free run must not spend retry budget");
  }
  require(std::memcmp(&chaos_modeled[0], &chaos_modeled[1],
                      sizeof(chaos_modeled[0])) == 0,
          "arming an empty chaos schedule changed modeled time");
  require(chaos_hashes[0] == chaos_hashes[1],
          "arming an empty chaos schedule changed answers");
  require(chaos_hashes[0] == reference_hashes,
          "chaos-layer check diverged from the sweep's answers");
  report.add_stat("chaos_zero_overhead_ok", 1.0);

  // Same contract for the durability layer: WAL appends and snapshots
  // happen on the host wall clock, never on the modeled device timeline,
  // so running with a durable directory must give bitwise-identical
  // modeled time and answers to running with durability off entirely.
  ::unsetenv("MPS_DURABLE_DIR");
  ::unsetenv("MPS_DURABLE_SNAPSHOT_EVERY");
  ::unsetenv("MPS_DURABLE_WARM");
  ::unsetenv("MPS_DURABLE_FSYNC");
  char durable_dir[] = "/tmp/mps_serve_bench_durable.XXXXXX";
  require(::mkdtemp(durable_dir) != nullptr, "mkdtemp failed");
  double durable_modeled[2] = {0.0, 0.0};
  std::vector<std::uint64_t> durable_hashes[2];
  for (const int durable : {0, 1}) {
    serve::EngineConfig ecfg;
    ecfg.threads = 1;
    ecfg.batch_window = 1;
    ecfg.queue_capacity = 2048;
    ecfg.plan_cache_bytes = 64u << 20;
    if (durable) {
      ecfg.durable_dir = durable_dir;
      ecfg.durable_enabled = 1;
    }
    serve::Engine engine(ecfg);
    require(engine.stats().durability.enabled == (durable != 0),
            "durability armed state does not match the config");
    std::vector<serve::MatrixHandle> handles;
    for (const auto& a : tenants) handles.push_back(engine.register_matrix(a));
    std::vector<std::future<serve::SpmvResult>> futures;
    futures.reserve(trace.size());
    for (const auto& op : trace) {
      futures.push_back(engine.submit_spmv(
          handles[op.matrix], make_x(tenants[op.matrix], op.x_seed)));
    }
    for (auto& f : futures) {
      serve::SpmvResult r = f.get();
      durable_modeled[durable] += r.modeled_ms;
      durable_hashes[durable].push_back(hash_bits(r.y));
    }
    engine.shutdown();
    if (durable) {
      require(engine.stats().durability.wal_appends ==
                  static_cast<long long>(tenants.size()),
              "every registration must hit the WAL exactly once");
    }
  }
  std::filesystem::remove_all(durable_dir);
  require(std::memcmp(&durable_modeled[0], &durable_modeled[1],
                      sizeof(durable_modeled[0])) == 0,
          "durable logging changed modeled time");
  require(durable_hashes[0] == durable_hashes[1],
          "durable logging changed answers");
  require(durable_hashes[0] == reference_hashes,
          "durability check diverged from the sweep's answers");
  report.add_stat("durable_zero_overhead_ok", 1.0);

  // Same contract for the observability stack as a whole: the tracer,
  // the roofline profiler, and the per-tenant SLO engine all read what
  // the hot path already produced (span timestamps on the host clock,
  // kernel counters the launch computed anyway, settle-time latency).
  // Turning ALL of them on must leave summed modeled time and every
  // answer bit-identical to running with all of them off.
  double observed_modeled[2] = {0.0, 0.0};
  std::vector<std::uint64_t> observed_hashes[2];
  for (const int observed : {0, 1}) {
    if (observed) {
      telemetry::tracer().enable();
      telemetry::profiler().enable();
    }
    serve::EngineConfig ecfg;
    ecfg.threads = 1;
    ecfg.batch_window = 1;
    ecfg.queue_capacity = 2048;
    ecfg.plan_cache_bytes = 64u << 20;
    ecfg.slo_enabled = observed;
    serve::Engine engine(ecfg);
    std::vector<serve::MatrixHandle> handles;
    for (const auto& a : tenants) handles.push_back(engine.register_matrix(a));
    std::vector<std::future<serve::SpmvResult>> futures;
    futures.reserve(trace.size());
    for (const auto& op : trace) {
      futures.push_back(engine.submit_spmv(
          handles[op.matrix], make_x(tenants[op.matrix], op.x_seed)));
    }
    for (auto& f : futures) {
      serve::SpmvResult r = f.get();
      observed_modeled[observed] += r.modeled_ms;
      observed_hashes[observed].push_back(hash_bits(r.y));
    }
    engine.shutdown();
    if (observed) {
      require(telemetry::tracer().size() > 0,
              "tracer enabled but recorded nothing");
      require(!telemetry::profiler().report().by_op.empty(),
              "profiler enabled but attributed nothing");
      require(!engine.stats().slo.tenants.empty(),
              "SLO engine enabled but tracked no tenants");
      telemetry::tracer().disable();
      telemetry::tracer().clear();
      telemetry::profiler().disable();
      telemetry::profiler().clear();
    } else {
      require(telemetry::profiler().report().by_op.empty(),
              "profiler attributed launches while disabled");
      require(engine.stats().slo.tenants.empty(),
              "SLO engine tracked tenants while disabled");
    }
  }
  require(std::memcmp(&observed_modeled[0], &observed_modeled[1],
                      sizeof(observed_modeled[0])) == 0,
          "enabling tracer+profiler+SLO changed modeled time");
  require(observed_hashes[0] == observed_hashes[1],
          "enabling tracer+profiler+SLO changed answers");
  require(observed_hashes[0] == reference_hashes,
          "observability check diverged from the sweep's answers");
  report.add_stat("observability_zero_overhead_ok", 1.0);

  analysis::emit(t, "serve_throughput");
  report.write();
  std::puts("\nExpected shape: req/s grows with threads; opening the batch"
            " window lowers the summed modeled kernel cost (one partition"
            " per coalesced spmm instead of one per request) and the"
            " answers stay bitwise-identical in every cell.");
  return 0;
}
