// Format ablation (beyond the paper's figures, supporting its
// introduction): SpMV across CSR-merge, ELL, HYB and DIA on the Table II
// suite — the specialized formats win inside their envelopes and fail
// (inapplicable or padding-bound) outside them, which is the paper's
// motivation for a segmentation-oblivious CSR scheme.
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "baselines/formats.hpp"
#include "core/spmv.hpp"
#include "sparse/ell.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/0.25);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  util::Table t("Format ablation: SpMV GFLOPs/s (modeled; '-' = inapplicable)");
  t.set_header({"Matrix", "Merge CSR", "ELL", "ELL padding", "HYB", "DIA"});
  for (const auto& e : workloads::paper_suite(cfg.scale)) {
    const auto& a = e.matrix;
    util::Rng rng(13);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols));
    for (auto& v : x) v = rng.uniform_double(-1, 1);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows));
    const double flops = 2.0 * static_cast<double>(a.nnz());

    vgpu::Device dev;
    const double merge_gf =
        analysis::gflops(flops, core::merge::spmv(dev, a, x, y).modeled_ms());

    std::string ell_cell = "-", pad_cell = "-", hyb_cell = "-", dia_cell = "-";
    // ELL is "applicable" while the padded rectangle stays within a sane
    // multiple of nnz (and host/device memory); LP/Webbase blow it up, so
    // the padding factor is computed from row stats BEFORE materializing.
    index_t max_row = 0;
    for (index_t r = 0; r < a.num_rows; ++r) {
      max_row = std::max(max_row, a.row_length(r));
    }
    const double padding =
        static_cast<double>(a.num_rows) * static_cast<double>(max_row) /
        static_cast<double>(std::max<index_t>(a.nnz(), 1));
    pad_cell = util::fmt(padding, 1) + "x";
    if (padding < 16.0) {
      const auto ell = sparse::csr_to_ell(a);
      ell_cell = util::fmt(
          analysis::gflops(flops,
                           baselines::formats::spmv_ell(dev, ell, x, y).modeled_ms),
          2);
    }
    hyb_cell = util::fmt(
        analysis::gflops(
            flops,
            baselines::formats::spmv_hyb(dev, sparse::csr_to_hyb(a), x, y).modeled_ms),
        2);
    try {
      const auto dia = sparse::csr_to_dia(a, 128);
      dia_cell = util::fmt(
          analysis::gflops(flops,
                           baselines::formats::spmv_dia(dev, dia, x, y).modeled_ms),
          2);
    } catch (const mps::InvalidInputError&) {
      // too many diagonals: the format does not apply
    }
    t.add_row({e.name, util::fmt(merge_gf, 2), ell_cell, pad_cell, hyb_cell,
               dia_cell});
  }
  analysis::emit(t, "ablation_formats");
  std::puts("\nExpected shape: ELL/HYB ahead on uniform rows (QCD, "
            "Epidemiology); ELL inapplicable under power-law padding "
            "(Webbase, LP); DIA applies only to banded/stencil structure; "
            "Merge CSR is the only scheme defined and stable everywhere.");
  return 0;
}
