// Cost-model sensitivity analysis: the reproduction's conclusions should
// not hinge on any single calibration constant.  This bench re-runs the
// SpMV comparison under perturbed device models (gather sector size,
// bandwidth, launch overhead at 0.5x / 1x / 2x) and reports, for each
// setting, merge's time-vs-nnz correlation and its ratio to the best
// comparator on the two irregular matrices — the two headline claims.
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "baselines/cusplike.hpp"
#include "baselines/rowwise.hpp"
#include "core/spmv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace mps;

struct Claims {
  double rho_merge = 0.0;
  double rho_rowwise = 0.0;
  double webbase_ratio = 0.0;  ///< best comparator / merge (>1 = merge wins)
  double lp_ratio = 0.0;
};

Claims evaluate(const vgpu::DeviceProperties& props,
                const std::vector<workloads::SuiteEntry>& suite) {
  Claims c;
  analysis::CorrelationSeries merge{"merge", {}, {}}, rowwise{"rowwise", {}, {}};
  for (const auto& e : suite) {
    vgpu::Device dev(props);
    util::Rng rng(3);
    std::vector<double> x(static_cast<std::size_t>(e.matrix.num_cols));
    for (auto& v : x) v = rng.uniform_double(-1, 1);
    std::vector<double> y(static_cast<std::size_t>(e.matrix.num_rows));
    const double t_merge = core::merge::spmv(dev, e.matrix, x, y).modeled_ms();
    const double t_cusp = baselines::cusplike::spmv(dev, e.matrix, x, y).modeled_ms;
    const double t_row = baselines::rowwise::spmv(dev, e.matrix, x, y).modeled_ms;
    merge.work.push_back(static_cast<double>(e.matrix.nnz()));
    merge.time_ms.push_back(t_merge);
    rowwise.work.push_back(static_cast<double>(e.matrix.nnz()));
    rowwise.time_ms.push_back(t_row);
    if (e.name == "Webbase") c.webbase_ratio = std::min(t_cusp, t_row) / t_merge;
    if (e.name == "LP") c.lp_ratio = std::min(t_cusp, t_row) / t_merge;
  }
  c.rho_merge = analysis::correlate(merge).rho;
  c.rho_rowwise = analysis::correlate(rowwise).rho;
  return c;
}

}  // namespace

int main() {
  const auto cfg = analysis::bench_config(/*default_scale=*/0.1);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);
  const auto suite = workloads::paper_suite(cfg.scale);

  util::Table t("Sensitivity: SpMV headline claims under perturbed cost models");
  t.set_header({"perturbation", "rho merge", "rho rowwise", "Webbase best/merge",
                "LP best/merge"});
  auto add = [&](const std::string& name, const vgpu::DeviceProperties& p) {
    const auto c = evaluate(p, suite);
    t.add_row({name, util::fmt(c.rho_merge, 3), util::fmt(c.rho_rowwise, 3),
               util::fmt(c.webbase_ratio, 2) + "x", util::fmt(c.lp_ratio, 2) + "x"});
  };

  add("baseline", vgpu::gtx_titan());
  for (const double f : {0.5, 2.0}) {
    auto p = vgpu::gtx_titan();
    p.gather_sector_bytes = static_cast<std::size_t>(16 * f);
    add("gather sector x" + util::fmt(f, 1), p);
    p = vgpu::gtx_titan();
    p.global_bytes_per_cycle_per_sm *= f;
    add("bandwidth x" + util::fmt(f, 1), p);
    p = vgpu::gtx_titan();
    p.kernel_launch_cycles *= f;
    add("launch overhead x" + util::fmt(f, 1), p);
    p = vgpu::gtx_titan();
    p.alu_warp_iter_cycles *= f;
    add("warp-iteration cost x" + util::fmt(f, 1), p);
  }
  analysis::emit(t, "sensitivity");
  std::puts("\nExpected: rho_merge stays ~1.0 and merge keeps winning Webbase "
            "(ratio > 1) under every perturbation — the conclusions are "
            "properties of the decomposition, not of one constant.");
  return 0;
}
