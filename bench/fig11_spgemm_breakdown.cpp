// Figure 11: per-phase breakdown of merge SpGEMM (percent of total per
// matrix plus the total time on the right axis).  Dense is excluded, as
// in the paper (it does not fit).
#include <cstdio>

#include "analysis/experiment.hpp"
#include "suite_runners.hpp"
#include "util/table.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/0.015);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  const auto rows = bench::run_spgemm_suite(workloads::paper_suite(cfg.scale));
  util::Table t("Figure 11: merge SpGEMM phase breakdown (% of modeled time)");
  t.set_header({"Matrix", "Setup", "Block Sort", "Product Compute",
                "Global Sort", "Product Reduce", "Other", "Total ms"});
  for (const auto& r : rows) {
    if (r.merge_oom) continue;
    const auto& p = r.merge_phases;
    const double total = p.total_ms();
    auto pct = [&](double ms) { return util::fmt(100.0 * ms / total, 1); };
    t.add_row({r.name, pct(p.setup_ms), pct(p.block_sort_ms),
               pct(p.product_compute_ms), pct(p.global_sort_ms),
               pct(p.product_reduce_ms), pct(p.other_ms), util::fmt(total, 2)});
  }
  analysis::emit(t, "fig11_breakdown");
  std::puts("\nExpected shape (paper): the two sorting passes plus product "
            "compute dominate every matrix's processing time.");
  return 0;
}
