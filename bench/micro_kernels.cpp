// google-benchmark microbenchmarks of the three core kernels' host-side
// throughput (functional execution speed; modeled time is separate and
// deterministic).  Useful for tracking the simulator's own performance.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace mps;

sparse::CsrD test_matrix(index_t rows, double avg) {
  return workloads::fem_banded(rows, avg, avg / 5.0, 99);
}

void BM_MergeSpmv(benchmark::State& state) {
  const auto a = test_matrix(static_cast<index_t>(state.range(0)), 40);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows));
  vgpu::Device dev;
  for (auto _ : state) {
    core::merge::spmv(dev, a, x, y);
    benchmark::DoNotOptimize(y.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * a.nnz());
}
BENCHMARK(BM_MergeSpmv)->Arg(1 << 12)->Arg(1 << 15);

void BM_MergeSpadd(benchmark::State& state) {
  const auto a = test_matrix(static_cast<index_t>(state.range(0)), 30);
  const auto coo = sparse::csr_to_coo(a);
  vgpu::Device dev;
  for (auto _ : state) {
    sparse::CooD c;
    core::merge::spadd(dev, coo, coo, c);
    benchmark::DoNotOptimize(c.val.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          a.nnz());
}
BENCHMARK(BM_MergeSpadd)->Arg(1 << 12)->Arg(1 << 15);

void BM_MergeSpgemm(benchmark::State& state) {
  const auto a = test_matrix(static_cast<index_t>(state.range(0)), 16);
  vgpu::Device dev;
  long long products = 0;
  for (auto _ : state) {
    sparse::CsrD c;
    const auto s = core::merge::spgemm(dev, a, a, c);
    products = s.num_products;
    benchmark::DoNotOptimize(c.val.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * products);
}
BENCHMARK(BM_MergeSpgemm)->Arg(1 << 10)->Arg(1 << 13);

void BM_SpgemmNumericReuse(benchmark::State& state) {
  const auto a = test_matrix(static_cast<index_t>(state.range(0)), 16);
  vgpu::Device dev;
  core::merge::SpgemmPlan plan;
  core::merge::spgemm_symbolic(dev, a, a, plan);
  for (auto _ : state) {
    sparse::CsrD c;
    core::merge::spgemm_numeric(dev, a, a, plan, c);
    benchmark::DoNotOptimize(c.val.data());
    dev.clear_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          plan.num_products());
}
BENCHMARK(BM_SpgemmNumericReuse)->Arg(1 << 10)->Arg(1 << 13);

}  // namespace

BENCHMARK_MAIN();
