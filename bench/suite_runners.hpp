#pragma once
// Shared runners that execute one kernel family (SpMV / SpAdd / SpGEMM)
// across the Table II suite with all three schemes, returning raw rows
// for the figure binaries to format.

#include <string>
#include <vector>

#include "core/spgemm.hpp"
#include "workloads/suite.hpp"

namespace mps::bench {

struct SpmvRow {
  std::string name;
  long long nnz = 0;
  double cusp_ms = 0.0;
  double rowwise_ms = 0.0;
  double merge_ms = 0.0;
  /// Plan-reuse split of merge_ms: one-time partition/compaction cost and
  /// the steady-state per-apply cost (merge_plan_ms + merge_exec_ms ==
  /// merge_ms up to rounding).
  double merge_plan_ms = 0.0;
  double merge_exec_ms = 0.0;
  /// Resilience accounting for the merge exec run: modeled guard time
  /// (exactly 0.0 unless MPS_INTEGRITY_CHECK is set) and the process-wide
  /// recovery-counter deltas observed while this row ran.
  double integrity_ms = 0.0;
  long long integrity_failures = 0;
  long long restores = 0;
  /// Autotuned steady-state apply (MPS_AUTOTUNE=1 only; -1 when the tuner
  /// is off).  The runner requires the tuned result bitwise-identical to
  /// the planned merge run and never slower than it (candidate 0 of the
  /// trial protocol IS the static merge default, so this holds by
  /// construction — the require guards against cost-model regressions).
  double auto_ms = -1.0;
  std::string auto_choice;
};

/// y = A x per matrix; results are verified against the sequential
/// reference before timing is reported.  The merge scheme additionally
/// runs through the SpmvPlan path, which must be bit-identical.
std::vector<SpmvRow> run_spmv_suite(const std::vector<workloads::SuiteEntry>& suite);

struct SpaddRow {
  std::string name;
  long long work = 0;  ///< |A| + |B| (the paper's Fig 8 x-axis)
  double cpu_ms = 0.0;
  double cusp_ms = 0.0;
  double rowwise_ms = 0.0;
  double merge_ms = 0.0;
};

/// C = A + A per matrix (the paper's Fig 7 workload).
std::vector<SpaddRow> run_spadd_suite(const std::vector<workloads::SuiteEntry>& suite);

struct SpgemmRow {
  std::string name;
  long long products = 0;  ///< Fig 10's x-axis
  double cpu_ms = 0.0;
  double cusp_ms = 0.0;     ///< < 0 when OOM
  double rowwise_ms = 0.0;
  double merge_ms = 0.0;    ///< < 0 when OOM
  bool cusp_oom = false;
  bool merge_oom = false;
  core::merge::SpgemmPhases merge_phases;
};

/// C = A x A per matrix (A x A^T for LP).  Schemes whose *native-scale*
/// intermediate would exceed the 6 GiB device are reported OOM, matching
/// the paper's missing Dense bars (see DESIGN.md).
std::vector<SpgemmRow> run_spgemm_suite(const std::vector<workloads::SuiteEntry>& suite);

}  // namespace mps::bench
