// Figure 5: SpMV throughput (GFLOPs/s, CSR, fp64) for the Cusp-style
// vectorized kernel, the row-wise vendor-style kernel, and Merge.
#include <cstdio>

#include "analysis/bench_json.hpp"
#include "analysis/experiment.hpp"
#include "autotune/autotune.hpp"
#include "resilience/integrity.hpp"
#include "suite_runners.hpp"
#include "util/table.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);
  const bool tuned = autotune::enabled();

  const auto rows = bench::run_spmv_suite(workloads::paper_suite(cfg.scale));
  util::Table t("Figure 5: SpMV performance, GFLOPs/s (modeled; 2 flops/nnz)");
  if (tuned) {
    t.set_header({"Matrix", "nnz", "Cusp", "Cusparse", "Merge", "Auto",
                  "tuned choice", "best"});
  } else {
    t.set_header({"Matrix", "nnz", "Cusp", "Cusparse", "Merge", "best"});
  }
  analysis::BenchJson report("fig5_spmv");
  report.add_stat("scale", cfg.scale);
  report.add_stat("autotune", tuned ? 1.0 : 0.0);
  int nondefault_wins = 0;
  for (const auto& r : rows) {
    const double flops = 2.0 * static_cast<double>(r.nnz);
    const double cusp = analysis::gflops(flops, r.cusp_ms);
    const double row = analysis::gflops(flops, r.rowwise_ms);
    const double merge = analysis::gflops(flops, r.merge_ms);
    const char* best = merge >= cusp && merge >= row ? "Merge"
                       : cusp >= row                 ? "Cusp"
                                                     : "Cusparse";
    std::vector<std::pair<std::string, double>> metrics{
        {"nnz", static_cast<double>(r.nnz)},
        {"cusp_ms", r.cusp_ms},
        {"rowwise_ms", r.rowwise_ms},
        {"merge_ms", r.merge_ms},
        {"merge_gflops", merge}};
    if (tuned) {
      const double auto_gf = analysis::gflops(flops, r.auto_ms);
      metrics.emplace_back("auto_ms", r.auto_ms);
      metrics.emplace_back("auto_gflops", auto_gf);
      // "merge-128x7" is the static default; anything else is a win the
      // tuner found over the one-size-fits-all dispatch.
      const bool nondefault = r.auto_choice != "merge-128x7";
      nondefault_wins += nondefault ? 1 : 0;
      t.add_row({r.name, util::fmt_sep(static_cast<unsigned long long>(r.nnz)),
                 util::fmt(cusp, 2), util::fmt(row, 2), util::fmt(merge, 2),
                 util::fmt(auto_gf, 2), r.auto_choice, best});
    } else {
      t.add_row({r.name, util::fmt_sep(static_cast<unsigned long long>(r.nnz)),
                 util::fmt(cusp, 2), util::fmt(row, 2), util::fmt(merge, 2),
                 best});
    }
    report.add_case(r.name, std::move(metrics));
  }
  if (tuned) report.add_stat("nondefault_wins", nondefault_wins);
  analysis::emit(t, "fig5_spmv");
  report.write();
  if (tuned) {
    std::printf("\nautotune: %d of %zu matrices tuned away from the static "
                "merge default (never slower by construction; the suite "
                "runner enforces bitwise identity and the cost bound).\n",
                nondefault_wins, rows.size());
  }
  std::puts("\nExpected shape (paper): Merge competitive everywhere except "
            "Dense; markedly better on the irregular Webbase and LP.");

  // Resilience accounting: with guards off this is the zero-overhead
  // baseline (all columns 0); with MPS_INTEGRITY_CHECK=1 it shows what the
  // guard scans cost on the hot path.
  double guard_ms = 0.0;
  long long failures = 0, restores = 0;
  for (const auto& r : rows) {
    guard_ms += r.integrity_ms;
    failures += r.integrity_failures;
    restores += r.restores;
  }
  if (resilience::integrity_checks_enabled() || failures > 0 || restores > 0) {
    std::printf("integrity guards: %.4f ms modeled across the suite; "
                "%lld failure(s), %lld restore(s)\n",
                guard_ms, failures, restores);
  }
  return 0;
}
