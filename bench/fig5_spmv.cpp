// Figure 5: SpMV throughput (GFLOPs/s, CSR, fp64) for the Cusp-style
// vectorized kernel, the row-wise vendor-style kernel, and Merge.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "suite_runners.hpp"
#include "util/table.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  const auto rows = bench::run_spmv_suite(workloads::paper_suite(cfg.scale));
  util::Table t("Figure 5: SpMV performance, GFLOPs/s (modeled; 2 flops/nnz)");
  t.set_header({"Matrix", "nnz", "Cusp", "Cusparse", "Merge", "best"});
  for (const auto& r : rows) {
    const double flops = 2.0 * static_cast<double>(r.nnz);
    const double cusp = analysis::gflops(flops, r.cusp_ms);
    const double row = analysis::gflops(flops, r.rowwise_ms);
    const double merge = analysis::gflops(flops, r.merge_ms);
    const char* best = merge >= cusp && merge >= row ? "Merge"
                       : cusp >= row                 ? "Cusp"
                                                     : "Cusparse";
    t.add_row({r.name, util::fmt_sep(static_cast<unsigned long long>(r.nnz)),
               util::fmt(cusp, 2), util::fmt(row, 2), util::fmt(merge, 2), best});
  }
  analysis::emit(t, "fig5_spmv");
  std::puts("\nExpected shape (paper): Merge competitive everywhere except "
            "Dense; markedly better on the irregular Webbase and LP.");
  return 0;
}
