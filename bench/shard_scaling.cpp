// Multi-device shard scaling: replay one Zipf-skewed SpMV trace through
// the serving engine at 1/2/4/8 modeled devices and report how the
// summed modeled kernel cost falls as the fleet grows (docs/sharding.md).
//
// The tenants are deliberately LARGE (tens of thousands of rows, ~2M
// nnz): sharding splits the nnz-proportional kernel time across the
// fleet but the per-launch fixed overhead and the halo gather do not
// shrink, so small matrices would flatter nothing.  With ~500K nnz per
// shard the fixed costs are noise and modeled scaling approaches the
// fleet width.
//
// Validation:
//   * answers are bitwise-identical at every fleet size (row-block
//     sharding preserves each row's accumulation order exactly);
//   * modeled scaling 1 -> 4 homogeneous devices is at least 3x;
//   * on a heterogeneous "fast*2,slow*2" fleet, bandwidth-weighted
//     placement beats uniform placement (the slow devices get
//     proportionally fewer rows, so the fleet-concurrent makespan drops).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "analysis/bench_json.hpp"
#include "analysis/experiment.hpp"
#include "serve/engine.hpp"
#include "serve/trace.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace mps;

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "BENCH VALIDATION FAILED: %s\n", what);
    std::exit(2);
  }
}

std::vector<double> make_x(const sparse::CsrD& a, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  return x;
}

std::uint64_t hash_bits(const std::vector<double>& y) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double v : y) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 64; b += 8) {
      h ^= (bits >> b) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// A large uniform-random square CSR tenant (~nnz_per_row per row).
sparse::CsrD make_tenant(index_t n, index_t nnz_per_row, std::uint64_t seed) {
  util::Rng rng(seed);
  sparse::CsrD a;
  a.num_rows = n;
  a.num_cols = n;
  a.row_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> cols;
  cols.reserve(static_cast<std::size_t>(nnz_per_row));
  for (index_t r = 0; r < n; ++r) {
    cols.clear();
    for (index_t k = 0; k < nnz_per_row; ++k) {
      cols.push_back(
          static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(n))));
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    for (const index_t c : cols) {
      a.col.push_back(c);
      a.val.push_back(rng.uniform_double(-1, 1));
    }
    a.row_offsets[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(a.col.size());
  }
  return a;
}

struct RunResult {
  double modeled_ms = 0.0;
  double wall_s = 0.0;
  std::vector<std::uint64_t> hashes;
  serve::EngineStats stats;
};

RunResult run(const std::vector<sparse::CsrD>& tenants,
              const std::vector<serve::TraceOp>& trace, int devices,
              const std::string& spec, const std::string& placement) {
  serve::EngineConfig cfg;
  cfg.threads = 4;
  cfg.batch_window = 1;  // isolate the sharded spmv path
  cfg.queue_capacity = 2048;
  cfg.plan_cache_bytes = 256u << 20;
  cfg.devices = devices;
  cfg.device_spec = spec;
  if (!placement.empty()) cfg.shard_placement = placement;
  serve::Engine engine(cfg);
  std::vector<serve::MatrixHandle> handles;
  for (const auto& a : tenants) handles.push_back(engine.register_matrix(a));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<serve::SpmvResult>> futures;
  futures.reserve(trace.size());
  for (const auto& op : trace) {
    futures.push_back(engine.submit_spmv(
        handles[op.matrix], make_x(tenants[op.matrix], op.x_seed)));
  }
  RunResult out;
  out.hashes.reserve(futures.size());
  for (auto& f : futures) {
    serve::SpmvResult r = f.get();
    out.modeled_ms += r.modeled_ms;
    out.hashes.push_back(hash_bits(r.y));
  }
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  engine.shutdown();
  out.stats = engine.stats();
  require(out.stats.completed == static_cast<long long>(trace.size()),
          "not every request completed");
  return out;
}

}  // namespace

int main() {
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  // Three ~2M-nnz tenants; the Zipf trace skews traffic onto the first.
  const index_t n = static_cast<index_t>(40000.0 * cfg.scale);
  std::vector<sparse::CsrD> tenants;
  for (std::uint64_t s = 0; s < 3; ++s) {
    tenants.push_back(make_tenant(std::max<index_t>(n, 1024), 50, 1000 + s));
  }
  serve::TraceConfig tcfg;
  tcfg.requests = 96;
  tcfg.spadd_percent = 0;
  tcfg.spgemm_percent = 0;
  const auto trace = serve::synthetic_trace(tcfg, tenants.size());
  std::printf("tenants: 3 x %d rows, ~%lld nnz each  |  %zu SpMV requests, "
              "zipf %.2f\n\n",
              tenants[0].num_rows, static_cast<long long>(tenants[0].nnz()),
              trace.size(), tcfg.zipf_s);

  util::Table t("Shard scaling: modeled SpMV cost vs fleet size");
  t.set_header({"devices", "spec", "placement", "modeled ms", "scaling",
                "req/s", "shards"});
  analysis::BenchJson report("shard_scaling");
  report.add_stat("requests", static_cast<double>(trace.size()));
  report.add_stat("tenant_nnz", static_cast<double>(tenants[0].nnz()));

  // Homogeneous sweep: all-titan fleets of 1/2/4/8.  devices=1 serves
  // unsharded (one shard would be pointless) and is the baseline.
  double modeled_1 = 0.0;
  double scaling_4 = 0.0;
  std::vector<std::uint64_t> reference_hashes;
  for (const int devices : {1, 2, 4, 8}) {
    const RunResult r = run(tenants, trace, devices, "", "");
    if (devices == 1) {
      modeled_1 = r.modeled_ms;
      reference_hashes = r.hashes;
    } else {
      require(r.hashes == reference_hashes,
              "sharded answers diverged bitwise from single-device");
    }
    const double scaling = modeled_1 / r.modeled_ms;
    if (devices == 4) scaling_4 = scaling;
    long long shards = 0;
    for (const auto& d : r.stats.devices) shards += d.shards_hosted;
    t.add_row({std::to_string(devices), "titan", "weighted",
               util::fmt(r.modeled_ms, 2), util::fmt(scaling, 2) + "x",
               util::fmt(static_cast<double>(trace.size()) / r.wall_s, 1),
               std::to_string(shards)});
    report.add_case("titan_x" + std::to_string(devices),
                    {{"devices", static_cast<double>(devices)},
                     {"modeled_ms", r.modeled_ms},
                     {"scaling", scaling},
                     {"shards", static_cast<double>(shards)}});
  }
  require(scaling_4 >= 3.0,
          "modeled SpMV scaling 1 -> 4 homogeneous devices is below 3x");
  report.add_stat("scaling_1_to_4", scaling_4);

  // Heterogeneous fleet: 2 fast + 2 slow devices.  Weighted placement
  // cuts the merge-path staircase proportionally to modeled bandwidth;
  // uniform placement gives every device the same share, so the slow
  // pair dominates the makespan.
  double hetero_modeled[2] = {0.0, 0.0};
  int idx = 0;
  for (const std::string placement : {"weighted", "uniform"}) {
    const RunResult r = run(tenants, trace, 4, "fast*2,slow*2", placement);
    require(r.hashes == reference_hashes,
            "heterogeneous sharding changed answers bitwise");
    hetero_modeled[idx] = r.modeled_ms;
    t.add_row({"4", "fast*2,slow*2", placement, util::fmt(r.modeled_ms, 2),
               util::fmt(modeled_1 / r.modeled_ms, 2) + "x",
               util::fmt(static_cast<double>(trace.size()) / r.wall_s, 1),
               "-"});
    report.add_case("hetero_" + placement,
                    {{"devices", 4.0},
                     {"modeled_ms", r.modeled_ms},
                     {"scaling", modeled_1 / r.modeled_ms}});
    ++idx;
  }
  require(hetero_modeled[0] < hetero_modeled[1],
          "weighted placement does not beat uniform on the hetero fleet");
  report.add_stat("hetero_weighted_vs_uniform",
                  hetero_modeled[1] / hetero_modeled[0]);

  analysis::emit(t, "shard_scaling");
  report.write();
  std::puts("\nExpected shape: modeled cost falls near-linearly with fleet"
            " size (halo + launch overhead bound the tail), answers are"
            " bitwise-identical in every row, and bandwidth-weighted"
            " placement beats uniform on the mixed fleet.");
  return 0;
}
