// Figure 4: clock cycles per CTA radix-sort operation for two-pass (2P)
// key-value pairs, one-pass (1P) pairs, one-pass keys-only, and one-pass
// keys-only at reduced bit counts (28 -> 12).  128 threads x 11 entries
// per CTA, 32-bit data — the paper's exact configuration.
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "primitives/cta_radix_sort.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vgpu/device.hpp"

namespace {

double cta_sort_cycles(mps::vgpu::Device& dev, int bits, bool pairs,
                       int invocations) {
  using namespace mps;
  util::Rng rng(static_cast<std::uint64_t>(bits * 10 + pairs));
  auto stats = dev.launch("fig4.sort", 1, 128, [&](vgpu::Cta& cta) {
    std::vector<std::uint32_t> keys(1408), vals(1408);
    const std::uint32_t mask =
        bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1u);
    for (auto& k : keys) k = rng.next_u32() & mask;
    for (std::size_t i = 0; i < vals.size(); ++i)
      vals[i] = static_cast<std::uint32_t>(i);
    for (int r = 0; r < invocations; ++r) {
      if (pairs) {
        primitives::cta_radix_sort<std::uint32_t>(cta, keys, vals, 0, bits);
      } else {
        primitives::cta_radix_sort_keys<std::uint32_t>(cta, keys, 0, bits);
      }
    }
  });
  return stats.totals.cycles(dev.props());
}

}  // namespace

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  vgpu::Device dev;
  util::Table t("Figure 4: CTA radix-sort cost (modeled cycles per CTA, 128x11 u32)");
  t.set_header({"Sorting method", "cycles", "vs 2P-Pairs"});
  const double base = cta_sort_cycles(dev, 32, true, 2);
  auto add = [&](const std::string& name, double cycles) {
    t.add_row({name, util::fmt(cycles, 0), util::fmt(cycles / base, 2) + "x"});
  };
  add("2P-Pairs", base);
  add("1P-Pairs", cta_sort_cycles(dev, 32, true, 1));
  add("1P-Keys", cta_sort_cycles(dev, 32, false, 1));
  for (int bits : {28, 24, 20, 16, 12}) {
    add("1P(" + util::fmt_int(bits) + "-bits)", cta_sort_cycles(dev, bits, false, 1));
  }
  analysis::emit(t, "fig4_blocksort");
  std::puts("\nExpected shape (paper): one pass halves the cycles of 2P-Pairs;"
            " keys-only beats pairs; cycles fall stepwise with sorted bits.");
  return 0;
}
