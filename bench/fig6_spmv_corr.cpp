// Figure 6: SpMV time versus |A| with the correlation coefficient rho as
// the predictability measure (paper: rho_Merge = 0.97, rho_Cusparse = 0.84).
#include <cstdio>

#include "analysis/experiment.hpp"
#include "suite_runners.hpp"

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  const auto rows = bench::run_spmv_suite(workloads::paper_suite(cfg.scale));
  analysis::CorrelationSeries merge{"Merge", {}, {}};
  analysis::CorrelationSeries cusparse{"Cusparse", {}, {}};
  std::vector<std::string> labels;
  for (const auto& r : rows) {
    labels.push_back(r.name);
    merge.work.push_back(static_cast<double>(r.nnz));
    merge.time_ms.push_back(r.merge_ms);
    cusparse.work.push_back(static_cast<double>(r.nnz));
    cusparse.time_ms.push_back(r.rowwise_ms);
  }
  std::fputs(analysis::render_correlation_figure(
                 "Figure 6: SpMV time vs nonzeros", "nnz", labels,
                 {merge, cusparse}, "fig6_spmv_corr")
                 .c_str(),
             stdout);
  std::puts("\nExpected shape (paper): rho_Merge ~= 0.97 >> rho_Cusparse ~= 0.84.");
  return 0;
}
