// Figure 2: throughput of the balanced-path set union on sorted sets, for
// 32/64-bit keys and key-value pairs, across input sizes.  Entries per
// input array are divided evenly (as in the paper).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "primitives/set_ops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vgpu/device.hpp"

namespace {

template <typename K>
std::vector<K> sorted_random(mps::util::Rng& rng, std::size_t n) {
  std::vector<K> v(n);
  for (auto& x : v) x = static_cast<K>(rng.next_u64() >> (64 - sizeof(K) * 8 + 2));
  std::sort(v.begin(), v.end());
  return v;
}

template <typename K>
double union_rate(mps::vgpu::Device& dev, std::size_t total, bool pairs,
                  mps::util::Rng& rng) {
  using namespace mps;
  const auto a = sorted_random<K>(rng, total / 2);
  const auto b = sorted_random<K>(rng, total - total / 2);
  double ms = 0.0;
  if (pairs) {
    std::vector<K> va(a.size(), K{1}), vb(b.size(), K{2});
    ms = primitives::device_set_op<K, K>(
             dev, a, va, b, vb, primitives::SetOp::kUnion,
             [](K x, K) { return x; })
             .modeled_ms;
  } else {
    ms = primitives::device_set_op_keys<K>(dev, a, b, primitives::SetOp::kUnion)
             .modeled_ms;
  }
  // Inputs processed per second, in millions (the figure's y-axis).
  return static_cast<double>(total) / (ms * 1e-3) / 1e6;
}

}  // namespace

int main() {
  using namespace mps;
  const auto cfg = analysis::bench_config(/*default_scale=*/1.0);
  analysis::print_system_config(vgpu::gtx_titan(), cfg);

  vgpu::Device dev;
  util::Rng rng(2025);
  util::Table t("Figure 2: set-union throughput (10^6 inputs/s, modeled)");
  t.set_header({"inputs", "keys-32", "keys-64", "pairs-32", "pairs-64"});
  for (double n = 1e4; n <= 1e7 + 1; n *= 10) {
    const auto total = static_cast<std::size_t>(n * cfg.scale);
    if (total < 16) continue;
    t.add_row({util::fmt(static_cast<double>(total), 0),
               util::fmt(union_rate<std::uint32_t>(dev, total, false, rng), 0),
               util::fmt(union_rate<std::uint64_t>(dev, total, false, rng), 0),
               util::fmt(union_rate<std::uint32_t>(dev, total, true, rng), 0),
               util::fmt(union_rate<std::uint64_t>(dev, total, true, rng), 0)});
  }
  analysis::emit(t, "fig2_union");
  std::puts("\nExpected shape (paper): throughput grows with size then "
            "saturates; 32-bit keys fastest, 64-bit pairs slowest.");
  return 0;
}
