# One binary per paper table/figure plus ablations and microbenches.
# The helper library must NOT land in build/bench (that directory is
# executed wholesale by the repro driver), so it archives elsewhere.
add_library(mps_benchlib STATIC ${CMAKE_SOURCE_DIR}/bench/suite_runners.cpp)
target_include_directories(mps_benchlib PUBLIC ${CMAKE_SOURCE_DIR}/bench)
target_link_libraries(mps_benchlib
  PUBLIC mps_core mps_baselines mps_workloads mps_analysis mps_autotune
  PRIVATE mps_warnings)
set_target_properties(mps_benchlib PROPERTIES
  ARCHIVE_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/lib)

# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench holds ONLY runnable binaries: the repro driver executes
# every file in that directory.
function(mps_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE mps_benchlib mps_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

mps_add_bench(table2_matrices)
mps_add_bench(fig2_union)
mps_add_bench(fig4_blocksort)
mps_add_bench(fig5_spmv)
mps_add_bench(fig6_spmv_corr)
mps_add_bench(fig7_spadd)
mps_add_bench(fig8_spadd_corr)
mps_add_bench(fig9_spgemm)
mps_add_bench(fig10_spgemm_corr)
mps_add_bench(fig11_spgemm_breakdown)
mps_add_bench(ablation_spgemm)
mps_add_bench(ablation_spmv)
mps_add_bench(plan_reuse_spmv)
mps_add_bench(roofline_spmv)
mps_add_bench(ablation_formats)
mps_add_bench(sensitivity)
mps_add_bench(extended_suite)

# Links the serving engine on top of the bench helpers, so it gets an
# explicit target like the microbenches.
add_executable(serve_throughput ${CMAKE_SOURCE_DIR}/bench/serve_throughput.cpp)
target_link_libraries(serve_throughput PRIVATE
  mps_serve mps_workloads mps_analysis mps_sparse mps_vgpu mps_util
  mps_warnings)
set_target_properties(serve_throughput PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Multi-device shard scaling: serving engine at fleet sizes 1/2/4/8 plus
# a heterogeneous weighted-vs-uniform placement leg (docs/sharding.md).
add_executable(shard_scaling ${CMAKE_SOURCE_DIR}/bench/shard_scaling.cpp)
target_link_libraries(shard_scaling PRIVATE
  mps_serve mps_analysis mps_sparse mps_vgpu mps_util mps_warnings)
set_target_properties(shard_scaling PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(micro_primitives ${CMAKE_SOURCE_DIR}/bench/micro_primitives.cpp)
target_link_libraries(micro_primitives PRIVATE
  mps_primitives mps_vgpu mps_util benchmark::benchmark mps_warnings)
set_target_properties(micro_primitives PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(micro_kernels ${CMAKE_SOURCE_DIR}/bench/micro_kernels.cpp)
target_link_libraries(micro_kernels PRIVATE
  mps_core mps_workloads mps_sparse mps_vgpu mps_util
  benchmark::benchmark mps_warnings)
set_target_properties(micro_kernels PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
