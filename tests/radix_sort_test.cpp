// Tests for CTA-level and device-wide radix sorts.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "primitives/cta_radix_sort.hpp"
#include "primitives/device_radix_sort.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {
namespace {

TEST(CtaRadixSort, SortsFullKeys) {
  vgpu::Device dev;
  util::Rng rng(3);
  dev.launch("sort", 1, 128, [&](vgpu::Cta& cta) {
    std::vector<std::uint32_t> keys(1408);
    for (auto& k : keys) k = rng.next_u32();
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    cta_radix_sort_keys<std::uint32_t>(cta, keys, 0, 32);
    EXPECT_EQ(keys, expect);
  });
}

TEST(CtaRadixSort, BitLimitedSortIsStable) {
  // Sorting only the low 8 bits must stable-preserve the order of equal
  // low bytes — the property the SpGEMM block sort relies on.
  vgpu::Device dev;
  util::Rng rng(5);
  dev.launch("sort", 1, 128, [&](vgpu::Cta& cta) {
    std::vector<std::uint32_t> keys(1000);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = (static_cast<std::uint32_t>(i) << 8) |
                static_cast<std::uint32_t>(rng.uniform(256));
    }
    auto expect = keys;
    std::stable_sort(expect.begin(), expect.end(),
                     [](std::uint32_t a, std::uint32_t b) {
                       return (a & 0xFF) < (b & 0xFF);
                     });
    cta_radix_sort_keys<std::uint32_t>(cta, keys, 0, 8);
    EXPECT_EQ(keys, expect);
  });
}

TEST(CtaRadixSort, PairsFollowKeys) {
  vgpu::Device dev;
  util::Rng rng(7);
  dev.launch("sort", 1, 128, [&](vgpu::Cta& cta) {
    std::vector<std::uint32_t> keys(512), vals(512);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<std::uint32_t>(rng.uniform(64));
      vals[i] = static_cast<std::uint32_t>(i);
    }
    auto ref = keys;
    cta_radix_sort<std::uint32_t>(cta, keys, vals, 0, 6);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(ref[vals[i]], keys[i]);  // value still labels its key
      if (i) EXPECT_LE(keys[i - 1], keys[i]);
    }
    // Stability: equal keys keep ascending original indices.
    for (std::size_t i = 1; i < keys.size(); ++i) {
      if (keys[i - 1] == keys[i]) EXPECT_LT(vals[i - 1], vals[i]);
    }
  });
}

TEST(CtaRadixSort, CostScalesWithBitsAndPairs) {
  vgpu::Device dev;
  util::Rng rng(11);
  auto cycles_for = [&](int bits, bool pairs, int invocations) {
    auto stats = dev.launch("sort", 1, 128, [&](vgpu::Cta& cta) {
      std::vector<std::uint32_t> keys(1408), vals(1408);
      for (auto& k : keys) k = rng.next_u32() & ((bits == 32) ? 0xFFFFFFFFu : ((1u << bits) - 1));
      for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<std::uint32_t>(i);
      for (int r = 0; r < invocations; ++r) {
        if (pairs) {
          cta_radix_sort<std::uint32_t>(cta, keys, vals, 0, bits);
        } else {
          cta_radix_sort_keys<std::uint32_t>(cta, keys, 0, bits);
        }
      }
    });
    // Per-CTA cost: exclude the fixed kernel-launch overhead.
    return stats.totals.cycles(dev.props());
  };
  // Fig 4's orderings: 2P-pairs > 1P-pairs > 1P-keys > bit-limited keys.
  const double two_pass_pairs = cycles_for(32, true, 2);
  const double one_pass_pairs = cycles_for(32, true, 1);
  const double one_pass_keys = cycles_for(32, false, 1);
  const double keys_20 = cycles_for(20, false, 1);
  const double keys_12 = cycles_for(12, false, 1);
  EXPECT_GT(two_pass_pairs, 1.8 * one_pass_pairs);
  EXPECT_GT(one_pass_pairs, one_pass_keys);
  EXPECT_GT(one_pass_keys, keys_20);
  EXPECT_GT(keys_20, keys_12);
}

TEST(CtaRadixSort, FinalPassMaskDoesNotSpillPastBitEnd) {
  // Regression: sorting bits [0, 9) of keys whose bits >= 9 hold live
  // payload (embedded ranks) must ignore those bits even though the last
  // 4-bit digit pass straddles bit 9.  Before the fix the pass read bits
  // 8..11 and scrambled the stable order.
  vgpu::Device dev;
  util::Rng rng(17);
  dev.launch("sort", 1, 128, [&](vgpu::Cta& cta) {
    const int low_bits = 9;
    std::vector<std::uint32_t> keys(1408);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<std::uint32_t>(rng.uniform(1u << low_bits)) |
                (static_cast<std::uint32_t>(i) << low_bits);
    }
    auto expect = keys;
    std::stable_sort(expect.begin(), expect.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return (a & 0x1FFu) < (b & 0x1FFu);
                     });
    cta_radix_sort_keys<std::uint32_t>(cta, keys, 0, low_bits);
    EXPECT_EQ(keys, expect);
  });
}

TEST(DeviceSort, FinalPassMaskDoesNotSpillPastBitEnd) {
  vgpu::Device dev;
  util::Rng rng(19);
  const int low_bits = 9;  // 8-bit digits: second pass straddles bit 9
  std::vector<std::uint32_t> keys(30000);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::uint32_t>(rng.uniform(1u << low_bits)) |
              (static_cast<std::uint32_t>(i % 1024) << low_bits);
  }
  auto expect = keys;
  std::stable_sort(expect.begin(), expect.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return (a & 0x1FFu) < (b & 0x1FFu);
                   });
  device_radix_sort_keys(dev, "t", keys, low_bits);
  EXPECT_EQ(keys, expect);
}

TEST(CtaRadixSort, EmbedRankRoundTrip) {
  const int key_bits = 20;
  for (std::uint32_t key : {0u, 1u, 777u, (1u << 20) - 1}) {
    for (std::size_t rank : {std::size_t{0}, std::size_t{5}, std::size_t{2047}}) {
      const auto packed = embed_rank<std::uint32_t>(key, rank, key_bits);
      EXPECT_EQ(extract_key(packed, key_bits), key);
      EXPECT_EQ(extract_rank(packed, key_bits), rank);
    }
  }
}

TEST(CtaRadixSort, RejectsOversizedTile) {
  vgpu::Device dev;
  dev.launch("sort", 1, 128, [&](vgpu::Cta& cta) {
    std::vector<std::uint32_t> keys(2000);  // > 128*11
    EXPECT_THROW(cta_radix_sort_keys<std::uint32_t>(cta, keys, 0, 32),
                 mps::InvalidInputError);
  });
}

class DeviceSortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeviceSortTest, SortsKeys32) {
  vgpu::Device dev;
  util::Rng rng(GetParam());
  std::vector<std::uint32_t> keys(GetParam());
  for (auto& k : keys) k = rng.next_u32();
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  const auto stats = device_radix_sort_keys(dev, "t", keys);
  EXPECT_EQ(keys, expect);
  if (!keys.empty()) {
    EXPECT_EQ(stats.passes, 4);
    EXPECT_GT(stats.modeled_ms, 0.0);
  }
}

TEST_P(DeviceSortTest, SortsPairs64Stable) {
  vgpu::Device dev;
  util::Rng rng(GetParam() + 1);
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.uniform(50);  // heavy duplication to stress stability
    payload[i] = static_cast<std::uint32_t>(i);
  }
  auto ref = keys;
  device_radix_sort_pairs(dev, "t", std::span<std::uint64_t>(keys),
                          std::span<std::uint32_t>(payload), 6);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ref[payload[i]], keys[i]);
    if (i) {
      EXPECT_LE(keys[i - 1], keys[i]);
      if (keys[i - 1] == keys[i]) EXPECT_LT(payload[i - 1], payload[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeviceSortTest,
                         ::testing::Values(0, 1, 2, 100, 2048, 2049, 100000));

TEST(DeviceSort, BitLimitingCutsPasses) {
  vgpu::Device dev;
  std::vector<std::uint32_t> keys(10000, 3);
  const auto full = device_radix_sort_keys(dev, "t", keys, 32);
  const auto limited = device_radix_sort_keys(dev, "t", keys, 8);
  EXPECT_EQ(full.passes, 4);
  EXPECT_EQ(limited.passes, 1);
  EXPECT_LT(limited.modeled_ms, full.modeled_ms);
}

TEST(DeviceSort, AccountsDeviceMemory) {
  vgpu::DeviceProperties tiny = vgpu::gtx_titan();
  tiny.global_mem_bytes = 1 << 16;  // 64 KiB device
  vgpu::Device dev(tiny);
  std::vector<std::uint64_t> keys(100000);
  std::vector<std::uint32_t> payload(100000);
  EXPECT_THROW(device_radix_sort_pairs(dev, "t", std::span<std::uint64_t>(keys),
                                       std::span<std::uint32_t>(payload)),
               vgpu::DeviceOomError);
}

}  // namespace
}  // namespace mps::primitives
