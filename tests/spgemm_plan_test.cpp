// Tests for the SpGEMM symbolic/numeric split (pattern-reuse API).
#include <gtest/gtest.h>

#include "baselines/seq.hpp"
#include "core/spgemm.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"

namespace mps {
namespace {

using core::merge::spgemm_numeric;
using core::merge::spgemm_symbolic;
using core::merge::SpgemmPlan;
using sparse::coo_to_csr;
using testing::random_coo;

TEST(SpgemmPlan, SymbolicThenNumericMatchesReference) {
  vgpu::Device dev;
  util::Rng rng(201);
  const auto a = coo_to_csr(random_coo(rng, 400, 350, 4000));
  const auto b = coo_to_csr(random_coo(rng, 350, 300, 3500));
  SpgemmPlan plan;
  const auto stats = spgemm_symbolic(dev, a, b, plan);
  EXPECT_TRUE(plan.valid());
  EXPECT_EQ(stats.num_products, baselines::seq::spgemm_num_products(a, b));
  sparse::CsrD c;
  spgemm_numeric(dev, a, b, plan, c);
  const auto ref = baselines::seq::spgemm(a, b);
  const auto cmp = sparse::compare_csr(c, ref, 1e-9, 1e-11);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
  EXPECT_EQ(plan.output_nnz(), ref.nnz());
}

TEST(SpgemmPlan, NumericReusesPlanForNewValues) {
  // Same pattern, new values: the symbolic work must not be repeated and
  // the numbers must still be right.
  vgpu::Device dev;
  util::Rng rng(203);
  auto a = coo_to_csr(random_coo(rng, 300, 300, 3000));
  SpgemmPlan plan;
  spgemm_symbolic(dev, a, a, plan);

  for (int iter = 0; iter < 3; ++iter) {
    // Perturb values only.
    auto a2 = a;
    for (auto& v : a2.val) v = rng.uniform_double(-3, 3);
    sparse::CsrD c;
    const double ms = spgemm_numeric(dev, a2, a2, plan, c);
    EXPECT_GT(ms, 0.0);
    const auto ref = baselines::seq::spgemm(a2, a2);
    const auto cmp = sparse::compare_csr(c, ref, 1e-9, 1e-11);
    ASSERT_TRUE(cmp.equal) << "iter " << iter << ": " << cmp.detail;
  }
}

TEST(SpgemmPlan, NumericIsCheaperThanFull) {
  vgpu::Device dev;
  util::Rng rng(207);
  const auto a = coo_to_csr(random_coo(rng, 1500, 1500, 25000));
  SpgemmPlan plan;
  const auto symbolic_stats = spgemm_symbolic(dev, a, a, plan);
  sparse::CsrD c;
  const double numeric_ms = spgemm_numeric(dev, a, a, plan, c);
  sparse::CsrD c2;
  const auto full = core::merge::spgemm(dev, a, a, c2);
  EXPECT_LT(numeric_ms, 0.7 * full.modeled_ms());
  EXPECT_NEAR(numeric_ms + symbolic_stats.phases.total_ms(), full.modeled_ms(),
              0.05 * full.modeled_ms());
}

TEST(SpgemmPlan, EmptyProductsYieldEmptyOutput) {
  vgpu::Device dev;
  sparse::CooD left(10, 10);
  left.push_back(0, 5, 1.0);  // column 5 of A...
  sparse::CooD right(10, 10);
  right.push_back(3, 3, 1.0);  // ...but B row 5 is empty
  SpgemmPlan plan;
  const auto a = coo_to_csr(left);
  const auto b = coo_to_csr(right);
  const auto stats = spgemm_symbolic(dev, a, b, plan);
  EXPECT_EQ(stats.num_products, 0);
  sparse::CsrD c;
  spgemm_numeric(dev, a, b, plan, c);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_TRUE(c.is_valid());
}

TEST(SpgemmPlan, RejectsUnbuiltPlan) {
  vgpu::Device dev;
  const auto a = coo_to_csr(testing::paper_a());
  SpgemmPlan plan;
  sparse::CsrD c;
  EXPECT_THROW(spgemm_numeric(dev, a, a, plan, c), mps::PlanMismatchError);
}

TEST(SpgemmPlan, RejectsMismatchedStructure) {
  vgpu::Device dev;
  util::Rng rng(211);
  const auto a = coo_to_csr(random_coo(rng, 100, 100, 700));
  const auto other = coo_to_csr(random_coo(rng, 100, 100, 900));
  SpgemmPlan plan;
  spgemm_symbolic(dev, a, a, plan);
  sparse::CsrD c;
  EXPECT_THROW(spgemm_numeric(dev, other, other, plan, c), mps::PlanMismatchError);
}

TEST(SpgemmPlan, PlanHoldsDeviceMemoryUntilDestroyed) {
  vgpu::Device dev;
  util::Rng rng(213);
  const auto a = coo_to_csr(random_coo(rng, 500, 500, 6000));
  const std::size_t before = dev.memory().in_use();
  {
    SpgemmPlan plan;
    spgemm_symbolic(dev, a, a, plan);
    EXPECT_GT(dev.memory().in_use(), before);
  }
  EXPECT_EQ(dev.memory().in_use(), before);
}

TEST(SpgemmPlan, PaperExampleThroughPlanApi) {
  vgpu::Device dev;
  const auto a = coo_to_csr(testing::paper_a());
  const auto b = coo_to_csr(testing::paper_b());
  SpgemmPlan plan;
  const auto stats = spgemm_symbolic(dev, a, b, plan);
  EXPECT_EQ(stats.num_products, 11);
  EXPECT_EQ(plan.output_nnz(), 8);
  sparse::CsrD c;
  spgemm_numeric(dev, a, b, plan, c);
  const std::vector<double> expect{10,  0,   0, 0,    //
                                   120, 430, 0, 340,  //
                                   0,   300, 0, 350,  //
                                   0,   120, 0, 180};
  EXPECT_EQ(testing::dense_of(c), expect);
}

}  // namespace
}  // namespace mps
