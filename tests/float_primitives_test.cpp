// The primitive layer is value-type generic; exercise the float and
// integer instantiations that the double-based core kernels do not.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "primitives/device_merge.hpp"
#include "primitives/reduce_by_key.hpp"
#include "primitives/segmented_reduce.hpp"
#include "primitives/set_ops.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {
namespace {

TEST(FloatPrimitives, SetOpUnionWithFloatValues) {
  vgpu::Device dev;
  const std::vector<std::uint32_t> ka{1, 4, 9};
  const std::vector<float> va{1.5f, 4.5f, 9.5f};
  const std::vector<std::uint32_t> kb{4, 9, 16};
  const std::vector<float> vb{0.25f, 0.5f, 1.0f};
  auto res = device_set_op<std::uint32_t, float>(
      dev, ka, va, kb, vb, SetOp::kUnion, [](float x, float y) { return x + y; });
  EXPECT_EQ(res.keys, (std::vector<std::uint32_t>{1, 4, 9, 16}));
  EXPECT_EQ(res.vals, (std::vector<float>{1.5f, 4.75f, 10.0f, 1.0f}));
}

TEST(FloatPrimitives, ReduceByKeyFloat) {
  vgpu::Device dev;
  std::vector<std::uint64_t> keys(9000);
  std::vector<float> vals(keys.size(), 0.5f);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i / 9;
  auto res = device_reduce_by_key<std::uint64_t, float>(dev, "rbk", keys, vals);
  ASSERT_EQ(res.keys.size(), 1000u);
  for (const float v : res.vals) EXPECT_FLOAT_EQ(v, 4.5f);
}

TEST(FloatPrimitives, SegmentedReduceIntAndFloat) {
  vgpu::Device dev;
  const std::vector<index_t> offsets{0, 2, 2, 5};
  const std::vector<long long> vi{10, 20, 1, 2, 3};
  std::vector<long long> oi(3);
  device_segmented_reduce<long long>(dev, offsets, vi, std::span<long long>(oi));
  EXPECT_EQ(oi, (std::vector<long long>{30, 0, 6}));

  const std::vector<float> vf{0.5f, 0.25f, 1.0f, 2.0f, 4.0f};
  std::vector<float> of(3);
  device_segmented_reduce<float>(dev, offsets, vf, std::span<float>(of));
  EXPECT_EQ(of, (std::vector<float>{0.75f, 0.0f, 7.0f}));
}

TEST(FloatPrimitives, MergePairsWithDoubleValues) {
  vgpu::Device dev;
  util::Rng rng(5);
  std::vector<std::uint64_t> ka(5000), kb(4000);
  for (auto& k : ka) k = rng.uniform(10000);
  for (auto& k : kb) k = rng.uniform(10000);
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  std::vector<double> va(ka.size()), vb(kb.size());
  for (std::size_t i = 0; i < va.size(); ++i) va[i] = static_cast<double>(ka[i]) + 0.25;
  for (std::size_t i = 0; i < vb.size(); ++i) vb[i] = static_cast<double>(kb[i]) + 0.75;
  std::vector<std::uint64_t> kout(ka.size() + kb.size());
  std::vector<double> vout(kout.size());
  device_merge_pairs<std::uint64_t, double>(dev, ka, va, kb, vb, kout, vout);
  for (std::size_t i = 0; i < kout.size(); ++i) {
    // Value encodes its key plus the source tag.
    EXPECT_EQ(static_cast<std::uint64_t>(vout[i]), kout[i]);
    const double frac = vout[i] - static_cast<double>(kout[i]);
    EXPECT_TRUE(frac == 0.25 || frac == 0.75);
  }
  EXPECT_TRUE(std::is_sorted(kout.begin(), kout.end()));
}

TEST(FloatPrimitives, MergeSortStrings) {
  // The comparison-based paths are fully generic: sort strings.
  vgpu::Device dev;
  util::Rng rng(7);
  std::vector<std::string> v;
  for (int i = 0; i < 5000; ++i) {
    v.push_back("key-" + std::to_string(rng.uniform(100000)));
  }
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  device_merge_sort<std::string>(dev, v);
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace mps::primitives
