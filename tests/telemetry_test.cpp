// Tests for mps::telemetry — spans, context propagation, the metrics
// registry and its exporters, and the correlated Perfetto timeline
// (docs/observability.md).
//
// The tracer and registry are process-wide singletons, so every test
// leaves them in the default state (tracer disabled + cleared, registry
// values reset).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "vgpu/device.hpp"
#include "vgpu/trace.hpp"

namespace mps {
namespace {

/// Reset the global tracer/registry on entry and exit so tests compose.
struct TelemetryReset {
  TelemetryReset() { reset(); }
  ~TelemetryReset() { reset(); }
  static void reset() {
    telemetry::tracer().disable();
    telemetry::tracer().clear();
    telemetry::metrics().reset();
  }
};

TEST(Tracer, DisabledByDefaultAndRecordsNothing) {
  TelemetryReset guard;
  EXPECT_FALSE(telemetry::tracer().enabled());
  {
    telemetry::ScopedSpan span("should.not.record");
    EXPECT_FALSE(span.context().active());
  }
  telemetry::SpanRecord rec;
  rec.trace_id = rec.span_id = 1;
  rec.name = "manual";
  telemetry::tracer().record(rec);  // no-op while disabled
  EXPECT_EQ(telemetry::tracer().size(), 0u);
  EXPECT_FALSE(telemetry::current_context().active());
}

TEST(Tracer, ScopedSpanRecordsWithFreshTrace) {
  TelemetryReset guard;
  telemetry::tracer().enable();
  {
    telemetry::ScopedSpan span("unit.phase", "host");
    EXPECT_TRUE(span.context().active());
    EXPECT_EQ(telemetry::current_context().span_id, span.context().span_id);
  }
  EXPECT_FALSE(telemetry::current_context().active());
  const auto spans = telemetry::tracer().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit.phase");
  EXPECT_EQ(spans[0].track, "host");
  EXPECT_NE(spans[0].trace_id, 0u);
  EXPECT_NE(spans[0].span_id, 0u);
  EXPECT_EQ(spans[0].parent_id, 0u);  // no enclosing context: fresh trace
  EXPECT_GE(spans[0].dur_us, 0.0);
}

TEST(Tracer, NestedSpansShareTraceAndParent) {
  TelemetryReset guard;
  telemetry::tracer().enable();
  telemetry::TraceId trace = 0;
  telemetry::SpanId outer_id = 0;
  {
    telemetry::ScopedSpan outer("outer");
    trace = outer.context().trace_id;
    outer_id = outer.context().span_id;
    telemetry::ScopedSpan inner("inner");
    EXPECT_EQ(inner.context().trace_id, trace);
    EXPECT_NE(inner.context().span_id, outer_id);
  }
  const auto spans = telemetry::tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);  // inner finishes (and records) first
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].trace_id, trace);
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
}

TEST(Tracer, EndIsIdempotentAndTagsStatus) {
  TelemetryReset guard;
  telemetry::tracer().enable();
  {
    telemetry::ScopedSpan span("tagged");
    span.end("error");
    span.end("ok");  // ignored: already finished
  }
  const auto spans = telemetry::tracer().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].status, "error");
}

TEST(Tracer, ContextScopePropagatesAcrossThreads) {
  // The serving engine's pattern: the request context is captured on the
  // admitting thread and re-established on the worker via ContextScope,
  // so worker-side spans join the request's trace.
  TelemetryReset guard;
  telemetry::tracer().enable();
  telemetry::SpanContext req;
  req.trace_id = telemetry::tracer().next_trace_id();
  req.span_id = telemetry::tracer().next_span_id();
  std::thread worker([req] {
    telemetry::ContextScope scope(req);
    telemetry::ScopedSpan span("worker.phase");
    EXPECT_EQ(span.context().trace_id, req.trace_id);
  });
  worker.join();
  const auto spans = telemetry::tracer().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, req.trace_id);
  EXPECT_EQ(spans[0].parent_id, req.span_id);
  EXPECT_NE(spans[0].tid, telemetry::current_tid());
}

TEST(Tracer, KernelLaunchStampsActiveContext) {
  TelemetryReset guard;
  vgpu::Device dev;
  // Disabled: launches carry the zero context and no start time.
  dev.launch("untraced", 1, 32, [](vgpu::Cta&) {});
  EXPECT_EQ(dev.log().back().trace_id, 0u);
  EXPECT_LT(dev.log().back().start_us, 0.0);

  telemetry::tracer().enable();
  telemetry::ScopedSpan span("launcher");
  dev.launch("traced", 1, 32, [](vgpu::Cta&) {});
  EXPECT_EQ(dev.log().back().trace_id, span.context().trace_id);
  EXPECT_EQ(dev.log().back().span_id, span.context().span_id);
  EXPECT_GE(dev.log().back().start_us, 0.0);
}

TEST(Metrics, CounterGaugeHistogramBasics) {
  TelemetryReset guard;
  auto& c = telemetry::metrics().counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Re-registration returns the same instrument.
  EXPECT_EQ(&telemetry::metrics().counter("test.counter"), &c);

  auto& g = telemetry::metrics().gauge("test.gauge");
  g.set(2.5);
  g.update_max(1.0);  // below current: kept
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.update_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);

  auto& h = telemetry::metrics().histogram("test.histo", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);  // two bounds + the +inf bucket
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 1);
  // First registration's buckets win.
  EXPECT_EQ(&telemetry::metrics().histogram("test.histo", {99.0}), &h);
  EXPECT_EQ(h.upper_bounds().size(), 2u);
}

TEST(Metrics, JsonAndPrometheusExports) {
  TelemetryReset guard;
  telemetry::metrics().counter("export.hits").add(3);
  telemetry::metrics().gauge("export.depth").set(1.5);
  telemetry::metrics().histogram("export.lat_ms", {1.0}).observe(0.25);
  std::ostringstream js;
  telemetry::metrics().write_json(js);
  const std::string j = js.str();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"export.hits\":3"), std::string::npos);
  EXPECT_NE(j.find("\"export.depth\""), std::string::npos);
  EXPECT_NE(j.find("\"export.lat_ms\""), std::string::npos);
  EXPECT_EQ(j.front(), '{');

  std::ostringstream prom;
  telemetry::metrics().write_prometheus(prom);
  const std::string p = prom.str();
  EXPECT_NE(p.find("# TYPE mps_export_hits counter"), std::string::npos);
  EXPECT_NE(p.find("mps_export_hits 3"), std::string::npos);
  EXPECT_NE(p.find("# TYPE mps_export_depth gauge"), std::string::npos);
  EXPECT_NE(p.find("# TYPE mps_export_lat_ms histogram"), std::string::npos);
  EXPECT_NE(p.find("mps_export_lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(p.find("mps_export_lat_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(p.find("mps_export_lat_ms_count 1"), std::string::npos);
}

TEST(Metrics, HistogramExportEdgeCases) {
  TelemetryReset guard;
  // Empty histogram: zero counts everywhere, including +Inf, and a
  // well-formed exposition (Prometheus requires the series even at 0).
  telemetry::metrics().histogram("edge.empty_ms", {1.0, 10.0});
  // Boundary sample: le semantics put a value exactly AT a bound in that
  // bound's bucket, not the next one.
  auto& at_bound = telemetry::metrics().histogram("edge.bound_ms", {1.0, 10.0});
  at_bound.observe(1.0);
  // Out-of-range samples: below every bound lands in the first bucket,
  // above every bound in the implicit +Inf overflow bucket.
  auto& overflow = telemetry::metrics().histogram("edge.over_ms", {1.0});
  overflow.observe(-5.0);
  overflow.observe(1e300);

  const auto empty_counts =
      telemetry::metrics().histogram("edge.empty_ms", {}).bucket_counts();
  ASSERT_EQ(empty_counts.size(), 3u);
  EXPECT_EQ(empty_counts[0] + empty_counts[1] + empty_counts[2], 0);
  const auto bound_counts = at_bound.bucket_counts();
  EXPECT_EQ(bound_counts[0], 1);  // 1.0 <= le="1"
  EXPECT_EQ(bound_counts[1], 0);
  const auto over_counts = overflow.bucket_counts();
  EXPECT_EQ(over_counts[0], 1);  // -5 in the first finite bucket
  EXPECT_EQ(over_counts[1], 1);  // 1e300 only in +Inf

  std::ostringstream prom;
  telemetry::metrics().write_prometheus(prom);
  const std::string p = prom.str();
  EXPECT_NE(p.find("mps_edge_empty_ms_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(p.find("mps_edge_empty_ms_count 0"), std::string::npos);
  EXPECT_NE(p.find("mps_edge_bound_ms_bucket{le=\"1\"} 1"), std::string::npos);
  // Cumulative exposition: the +Inf bucket always equals the count.
  EXPECT_NE(p.find("mps_edge_over_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(p.find("mps_edge_over_ms_count 2"), std::string::npos);
}

TEST(Metrics, ConcurrentUpdatesAndExports) {
  // The registry's contract under the TSan leg: concurrent registration,
  // counter adds, gauge high-water updates, histogram observes, and
  // exporter snapshots race without data races or lost updates.
  TelemetryReset guard;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  auto& total = telemetry::metrics().counter("conc.total");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &total] {
      // Per-thread registration of the SAME names exercises the
      // registry lock; the returned references must all alias.
      auto& c = telemetry::metrics().counter("conc.total");
      auto& g = telemetry::metrics().gauge("conc.peak");
      auto& h = telemetry::metrics().histogram("conc.lat_ms", {1.0, 10.0});
      EXPECT_EQ(&c, &total);
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.update_max(static_cast<double>(t * kIters + i));
        h.observe(static_cast<double>(i % 20));
      }
    });
  }
  // Exporters snapshot concurrently with the writers.
  for (int round = 0; round < 20; ++round) {
    std::ostringstream js, prom;
    telemetry::metrics().write_json(js);
    telemetry::metrics().write_prometheus(prom);
    EXPECT_FALSE(js.str().empty());
    EXPECT_FALSE(prom.str().empty());
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(total.value(), static_cast<long long>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(telemetry::metrics().gauge("conc.peak").value(),
                   static_cast<double>(kThreads * kIters - 1));
  auto& h = telemetry::metrics().histogram("conc.lat_ms", {});
  EXPECT_EQ(h.count(), static_cast<long long>(kThreads) * kIters);
  long long bucket_sum = 0;
  for (const long long b : h.bucket_counts()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, h.count());  // no sample lost between buckets
}

TEST(Metrics, PeriodicDumperInertWithoutKnob) {
  TelemetryReset guard;
  ::unsetenv("MPS_METRICS_DUMP_MS");
  telemetry::PeriodicDumper dumper;
  EXPECT_FALSE(dumper.running());
}

TEST(Metrics, PeriodicDumperWritesSnapshots) {
  TelemetryReset guard;
  telemetry::metrics().counter("dumper.ticks").add(5);
  const std::string path = ::testing::TempDir() + "/mps_dump_test.json";
  std::remove(path.c_str());
  ::setenv("MPS_METRICS_DUMP_MS", "10", 1);
  ::setenv("MPS_METRICS_DUMP_PATH", path.c_str(), 1);
  {
    telemetry::PeriodicDumper dumper;
    EXPECT_TRUE(dumper.running());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  ::unsetenv("MPS_METRICS_DUMP_MS");
  ::unsetenv("MPS_METRICS_DUMP_PATH");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line).good() || !line.empty());
  EXPECT_NE(line.find("\"dumper.ticks\":5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Perfetto, ExportCorrelatesSpansAndKernels) {
  // The end-to-end acceptance shape at unit scale: a request-style span
  // with a child host phase and a device kernel launched underneath it,
  // all sharing one trace id in the exported timeline.
  TelemetryReset guard;
  telemetry::tracer().enable();
  vgpu::Device dev;
  telemetry::TraceId trace = 0;
  {
    telemetry::ScopedSpan request("unit.request", "serve");
    trace = request.context().trace_id;
    telemetry::ScopedSpan phase("unit.phase");
    dev.launch("unit.kernel", 2, 64,
               [](vgpu::Cta& cta) { cta.charge_global(128); });
  }
  std::ostringstream os;
  const vgpu::TraceTrack tracks[] = {{"unit device", &dev}};
  vgpu::write_perfetto_trace(os, tracks);
  const std::string s = os.str();

  // Track metadata for both span tracks and the device track.
  EXPECT_NE(s.find("\"process_name\""), std::string::npos);
  EXPECT_NE(s.find("\"serve\""), std::string::npos);
  EXPECT_NE(s.find("\"host\""), std::string::npos);
  EXPECT_NE(s.find("\"unit device\""), std::string::npos);
  // All three events carry the one trace id.
  const std::string tag = "\"trace_id\":" + std::to_string(trace);
  std::size_t hits = 0;
  for (std::size_t pos = s.find(tag); pos != std::string::npos;
       pos = s.find(tag, pos + tag.size())) {
    ++hits;
  }
  EXPECT_EQ(hits, 3u);
  EXPECT_NE(s.find("unit.request"), std::string::npos);
  EXPECT_NE(s.find("unit.phase"), std::string::npos);
  EXPECT_NE(s.find("unit.kernel"), std::string::npos);
}

TEST(Perfetto, UntracedKernelsStillExportBackToBack) {
  // Kernels launched with the tracer off have no wall placement; the
  // exporter lays them back-to-back from the timeline cursor instead of
  // dropping them.
  TelemetryReset guard;
  vgpu::Device dev;
  dev.launch("cold.a", 1, 32, [](vgpu::Cta&) {});
  dev.launch("cold.b", 1, 32, [](vgpu::Cta&) {});
  std::ostringstream os;
  const vgpu::TraceTrack tracks[] = {{"cold device", &dev}};
  vgpu::write_perfetto_trace(os, tracks);
  const std::string s = os.str();
  EXPECT_NE(s.find("cold.a"), std::string::npos);
  EXPECT_NE(s.find("cold.b"), std::string::npos);
  EXPECT_NE(s.find("\"kernels\":2"), std::string::npos);
  EXPECT_NE(s.find("\"spans\":0"), std::string::npos);
}

}  // namespace
}  // namespace mps
