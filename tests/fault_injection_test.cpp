// Fault-injection and exception-safety tests.
//
// The central harness is the allocation-failure sweep: run a kernel once
// on a clean device to learn how many device allocations it makes, then
// re-run it N times with allocation i = 1..N forced to fail, asserting
// the strong guarantee after every injected failure — DeviceOomError
// propagates, MemoryModel accounting returns to zero, and the caller's
// outputs are untouched.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "autotune/autotune.hpp"
#include "baselines/formats.hpp"
#include "baselines/rowwise.hpp"
#include "baselines/seq.hpp"
#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spgemm_adaptive.hpp"
#include "core/spgemm_batched.hpp"
#include "core/spgemm_chunked.hpp"
#include "core/spmm.hpp"
#include "core/spmv.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "sparse/validate.hpp"
#include "test_matrices.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"

namespace {

using namespace mps;
using sparse::CooD;
using sparse::CsrD;
using sparse::coo_to_csr;

constexpr double kSentinel = -777.25;

/// A device whose injector is guaranteed disarmed even when the process
/// runs under an MPS_FAULT_* sweep (the CI fault job) — deterministic
/// tests arm it explicitly themselves.
vgpu::Device make_clean_device() {
  vgpu::Device dev;
  dev.fault_injector().disarm();
  dev.fault_injector().reset_counters();
  return dev;
}

/// Restores (or re-clears) an environment variable on scope exit.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvVarGuard(const EnvVarGuard&) = delete;
  EnvVarGuard& operator=(const EnvVarGuard&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

/// The sweep harness.  `run` performs the kernel on the given device;
/// `reset_outputs` re-initializes the caller-visible outputs to sentinel
/// state; `verify_untouched` asserts they still hold it after a throw.
void sweep_alloc_failures(const std::function<void(vgpu::Device&)>& run,
                          const std::function<void()>& reset_outputs,
                          const std::function<void()>& verify_untouched) {
  auto clean = make_clean_device();
  reset_outputs();
  run(clean);
  EXPECT_EQ(clean.memory().in_use(), 0u);
  const long long n = clean.fault_injector().allocations_observed();
  ASSERT_GT(n, 0) << "kernel made no device allocations; sweep is vacuous";

  for (long long i = 1; i <= n; ++i) {
    SCOPED_TRACE("failing allocation " + std::to_string(i) + " of " +
                 std::to_string(n));
    auto dev = make_clean_device();
    dev.fault_injector().fail_at_allocation(i);
    reset_outputs();
    bool threw = false;
    try {
      run(dev);
    } catch (const vgpu::DeviceOomError& e) {
      threw = true;
      EXPECT_TRUE(e.injected());
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(dev.memory().in_use(), 0u);
    EXPECT_EQ(dev.fault_injector().faults_injected(), 1);
    verify_untouched();
  }
}

CsrD medium_matrix(unsigned seed, index_t rows = 200, index_t cols = 200,
                   index_t nnz = 1400) {
  util::Rng rng(seed);
  return coo_to_csr(mps::testing::random_coo(rng, rows, cols, nnz));
}

// ---------------------------------------------------------------------------
// Injector unit behavior.

TEST(FaultInjector, FailsExactlyTheNthAllocation) {
  auto dev = make_clean_device();
  dev.fault_injector().fail_at_allocation(2);
  vgpu::ScopedDeviceAlloc a(dev.memory(), 100);  // 1st: fine
  EXPECT_THROW(vgpu::ScopedDeviceAlloc(dev.memory(), 100), vgpu::DeviceOomError);
  // Fired once, now disarmed: later allocations succeed without rearming.
  vgpu::ScopedDeviceAlloc c(dev.memory(), 100);
  EXPECT_EQ(dev.fault_injector().faults_injected(), 1);
  EXPECT_FALSE(dev.fault_injector().armed());
}

TEST(FaultInjector, FailsAtByteThreshold) {
  auto dev = make_clean_device();
  dev.fault_injector().fail_at_byte_threshold(1000);
  vgpu::ScopedDeviceAlloc a(dev.memory(), 600);  // cumulative 600: fine
  EXPECT_THROW(vgpu::ScopedDeviceAlloc(dev.memory(), 600),  // 1200 > 1000
               vgpu::DeviceOomError);
  EXPECT_EQ(dev.fault_injector().faults_injected(), 1);
  EXPECT_EQ(dev.memory().in_use(), 600u);  // only the live RAII alloc
}

TEST(FaultInjector, InjectedErrorIsDistinguishable) {
  auto dev = make_clean_device();
  dev.fault_injector().fail_at_allocation(1);
  try {
    vgpu::ScopedDeviceAlloc a(dev.memory(), 64);
    FAIL() << "expected DeviceOomError";
  } catch (const vgpu::DeviceOomError& e) {
    EXPECT_TRUE(e.injected());
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Allocation-failure sweeps: one per kernel family.

TEST(FaultSweep, SpmvOneShot) {
  const CsrD a = medium_matrix(11);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y;
  sweep_alloc_failures(
      [&](vgpu::Device& dev) { core::merge::spmv(dev, a, x, y); },
      [&] { y.assign(static_cast<std::size_t>(a.num_rows), kSentinel); },
      [&] {
        for (double v : y) ASSERT_EQ(v, kSentinel);
      });
}

TEST(FaultSweep, SpmvPlanBuildThenExecute) {
  // Empty rows force the compaction path, giving the build an extra
  // device-visible structure to cover.
  util::Rng rng(13);
  auto coo = mps::testing::random_coo(rng, 150, 150, 300);
  const CsrD a = coo_to_csr(coo);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y;
  sweep_alloc_failures(
      [&](vgpu::Device& dev) {
        const auto plan = core::merge::spmv_plan(dev, a);
        core::merge::spmv_execute(dev, a, x, y, plan);
      },
      [&] { y.assign(static_cast<std::size_t>(a.num_rows), kSentinel); },
      [&] {
        for (double v : y) ASSERT_EQ(v, kSentinel);
      });
}

TEST(FaultSweep, Spadd) {
  util::Rng rng(17);
  const CooD a = mps::testing::random_coo(rng, 120, 120, 800);
  const CooD b = mps::testing::random_coo(rng, 120, 120, 700);
  CooD c;
  const auto make_sentinel = [] {
    CooD s(1, 1);
    s.push_back(0, 0, 3.5);
    return s;
  };
  sweep_alloc_failures(
      [&](vgpu::Device& dev) { core::merge::spadd(dev, a, b, c); },
      [&] { c = make_sentinel(); },
      [&] {
        ASSERT_EQ(c.num_rows, 1);
        ASSERT_EQ(c.nnz(), 1);
        ASSERT_EQ(c.val[0], 3.5);
      });
}

TEST(FaultSweep, SpgemmFlat) {
  const CsrD a = medium_matrix(19);
  const CsrD b = medium_matrix(23);
  CsrD c;
  sweep_alloc_failures(
      [&](vgpu::Device& dev) { core::merge::spgemm(dev, a, b, c); },
      [&] {
        c = CsrD(1, 1);
        c.row_offsets = {0, 1};
        c.col = {0};
        c.val = {kSentinel};
      },
      [&] {
        ASSERT_EQ(c.num_rows, 1);
        ASSERT_EQ(c.nnz(), 1);
        ASSERT_EQ(c.val[0], kSentinel);
      });
}

TEST(FaultSweep, SpgemmSymbolicLeavesPlanUntouched) {
  const CsrD a = medium_matrix(29);
  const CsrD b = medium_matrix(31);
  core::merge::SpgemmPlan plan;
  sweep_alloc_failures(
      [&](vgpu::Device& dev) {
        core::merge::spgemm_symbolic(dev, a, b, plan);
        // A successful build pins the plan's pattern on the device; drop
        // it before the harness asserts zero residency.  On the injected
        // failures the throw skips this, leaving `plan` for the verify.
        plan = core::merge::SpgemmPlan();
      },
      [&] { plan = core::merge::SpgemmPlan(); },
      [&] { ASSERT_FALSE(plan.valid()); });
}

TEST(FaultSweep, SpgemmNumericAfterCleanSymbolic) {
  const CsrD a = medium_matrix(37);
  const CsrD b = medium_matrix(41);

  // Learn the allocation counts of the two phases separately.
  auto clean = make_clean_device();
  core::merge::SpgemmPlan plan;
  core::merge::spgemm_symbolic(clean, a, b, plan);
  const long long symbolic_n = clean.fault_injector().allocations_observed();
  CsrD c;
  core::merge::spgemm_numeric(clean, a, b, plan, c);
  const long long total_n = clean.fault_injector().allocations_observed();
  ASSERT_GT(total_n, symbolic_n) << "numeric made no allocations to sweep";

  for (long long i = symbolic_n + 1; i <= total_n; ++i) {
    SCOPED_TRACE("failing allocation " + std::to_string(i));
    auto dev = make_clean_device();
    core::merge::SpgemmPlan p;
    core::merge::spgemm_symbolic(dev, a, b, p);
    const std::size_t pinned = dev.memory().in_use();  // held by the plan
    dev.fault_injector().fail_at_allocation(i);
    CsrD out(1, 1);
    out.row_offsets = {0, 1};
    out.col = {0};
    out.val = {kSentinel};
    EXPECT_THROW(core::merge::spgemm_numeric(dev, a, b, p, out),
                 vgpu::DeviceOomError);
    EXPECT_EQ(dev.memory().in_use(), pinned);  // only the plan's pin remains
    ASSERT_EQ(out.nnz(), 1);
    ASSERT_EQ(out.val[0], kSentinel);
  }
}

TEST(FaultSweep, SpgemmChunked) {
  const CsrD a = medium_matrix(43);
  const CsrD b = medium_matrix(47);
  CsrD c;
  core::merge::ChunkedConfig cfg;
  cfg.chunk_bytes = 64 * 1024;  // force several chunks
  sweep_alloc_failures(
      [&](vgpu::Device& dev) { core::merge::spgemm_chunked(dev, a, b, c, cfg); },
      [&] {
        c = CsrD(1, 1);
        c.row_offsets = {0, 1};
        c.col = {0};
        c.val = {kSentinel};
      },
      [&] {
        ASSERT_EQ(c.nnz(), 1);
        ASSERT_EQ(c.val[0], kSentinel);
      });
}

TEST(FaultSweep, Spmm) {
  const CsrD a = medium_matrix(61);
  const index_t nv = 4;
  std::vector<double> x(static_cast<std::size_t>(a.num_cols) * nv, 1.0);
  std::vector<double> y;
  sweep_alloc_failures(
      [&](vgpu::Device& dev) {
        core::merge::spmm(dev, a, x, nv, y);
      },
      [&] {
        y.assign(static_cast<std::size_t>(a.num_rows) * nv, kSentinel);
      },
      [&] {
        for (double v : y) ASSERT_EQ(v, kSentinel);
      });
}

TEST(FaultSweep, SpgemmBatched) {
  const CsrD a = medium_matrix(67);
  const CsrD b = medium_matrix(71);
  CsrD c;
  sweep_alloc_failures(
      [&](vgpu::Device& dev) {
        // Small batch cap forces several batches plus combine passes, so
        // the sweep covers the partial-output union machinery too.
        core::merge::spgemm_batched(dev, a, b, c, /*max_products_per_batch=*/2000);
      },
      [&] {
        c = CsrD(1, 1);
        c.row_offsets = {0, 1};
        c.col = {0};
        c.val = {kSentinel};
      },
      [&] {
        ASSERT_EQ(c.nnz(), 1);
        ASSERT_EQ(c.val[0], kSentinel);
      });
}

TEST(FaultSweep, AutotuneTrialProtocol) {
  // The tuner runs EVERY candidate once (merge tiles, ELL, CMRS), so the
  // sweep walks the allocation sites inside the trial protocol itself —
  // including the format conversions — then the winner's execute.  The
  // TunedPlan is scoped inside the run so its resident footprint is
  // released before the harness asserts zero residency.
  const CsrD a = medium_matrix(107, 120, 120, 900);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y;
  sweep_alloc_failures(
      [&](vgpu::Device& dev) {
        const autotune::TunedPlan tuned = autotune::tune(dev, a);
        tuned.execute(dev, a, x, y);
      },
      [&] { y.assign(static_cast<std::size_t>(a.num_rows), kSentinel); },
      [&] {
        for (double v : y) ASSERT_EQ(v, kSentinel);
      });
}

TEST(FaultSweep, CmrsConvertAndSpmv) {
  // The CMRS conversion is host-side and the kernel itself is functional,
  // so the device allocations under test are the format's resident
  // arrays, accounted the way the autotuner's trial protocol residents
  // them.  A failure at any site must release every byte and leave the
  // converted matrix reusable and the output untouched.
  const CsrD a = medium_matrix(109, 150, 150, 1100);
  const sparse::CmrsD cmrs = sparse::csr_to_cmrs(a);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y;
  const auto bytes_of = [](const auto& v) { return v.size() * sizeof(v[0]); };
  sweep_alloc_failures(
      [&](vgpu::Device& dev) {
        vgpu::ScopedDeviceAlloc strips(dev.memory(), bytes_of(cmrs.strip_ptr));
        vgpu::ScopedDeviceAlloc rows(dev.memory(),
                                     bytes_of(cmrs.row_in_strip));
        vgpu::ScopedDeviceAlloc cols(dev.memory(), bytes_of(cmrs.col));
        vgpu::ScopedDeviceAlloc vals(dev.memory(), bytes_of(cmrs.val));
        baselines::formats::spmv_cmrs(dev, cmrs, x, y);
      },
      [&] { y.assign(static_cast<std::size_t>(a.num_rows), kSentinel); },
      [&] {
        for (double v : y) ASSERT_EQ(v, kSentinel);
      });
  // The swept matrix still produces the right answer on a clean device.
  auto dev = make_clean_device();
  y.assign(static_cast<std::size_t>(a.num_rows), 0.0);
  baselines::formats::spmv_cmrs(dev, cmrs, x, y);
  std::vector<double> ref(static_cast<std::size_t>(a.num_rows), 0.0);
  baselines::seq::spmv(a, x, ref);
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(y[i], ref[i]);
}

// ---------------------------------------------------------------------------
// Chunked SpGEMM correctness.

TEST(ChunkedSpgemm, BitwiseIdenticalToFlat) {
  const CsrD a = medium_matrix(53, 300, 300, 2500);
  const CsrD b = medium_matrix(59, 300, 300, 2500);
  auto dev = make_clean_device();

  CsrD flat;
  core::merge::spgemm(dev, a, b, flat);

  core::merge::ChunkedConfig cfg;
  cfg.chunk_bytes = 48 * 1024;  // far below the flat footprint
  CsrD chunked;
  const auto stats = core::merge::spgemm_chunked(dev, a, b, chunked, cfg);
  ASSERT_GT(stats.num_chunks, 1) << "budget did not force chunking";

  ASSERT_EQ(chunked.num_rows, flat.num_rows);
  ASSERT_EQ(chunked.num_cols, flat.num_cols);
  ASSERT_EQ(chunked.row_offsets, flat.row_offsets);
  ASSERT_EQ(chunked.col, flat.col);
  ASSERT_EQ(chunked.val.size(), flat.val.size());
  // Bitwise, not tolerance: the phase-aligned tiling must reproduce the
  // flat path's floating-point association order exactly.
  ASSERT_EQ(std::memcmp(chunked.val.data(), flat.val.data(),
                        flat.val.size() * sizeof(double)),
            0);
}

TEST(ChunkedSpgemm, SingleChunkDegeneratesToFlat) {
  const CsrD a = medium_matrix(61);
  const CsrD b = medium_matrix(67);
  auto dev = make_clean_device();
  CsrD flat, chunked;
  core::merge::spgemm(dev, a, b, flat);
  const auto stats = core::merge::spgemm_chunked(dev, a, b, chunked);
  EXPECT_EQ(stats.num_chunks, 1);
  ASSERT_EQ(chunked.row_offsets, flat.row_offsets);
  ASSERT_EQ(chunked.col, flat.col);
  ASSERT_EQ(std::memcmp(chunked.val.data(), flat.val.data(),
                        flat.val.size() * sizeof(double)),
            0);
}

TEST(ChunkedSpgemm, CompletesWhereFlatOverflowsAndMatchesFlatBitwise) {
  const CsrD a = medium_matrix(71, 400, 400, 6000);
  const CsrD b = medium_matrix(73, 400, 400, 6000);

  // Flat result on an unconstrained device (the ground truth).
  auto big = make_clean_device();
  CsrD flat;
  core::merge::spgemm(big, a, b, flat);

  // A device too small for the flat intermediate: flat throws, chunked
  // (sized to half the free capacity) completes.
  auto props = vgpu::gtx_titan();
  props.global_mem_bytes = 192 * 1024;
  vgpu::Device small(props);
  small.fault_injector().disarm();
  EXPECT_EQ(small.memory().capacity(), 192u * 1024u)
      << "explicit capacities must survive MPS_FAULT_CAPACITY";

  CsrD c;
  EXPECT_THROW(core::merge::spgemm(small, a, b, c), vgpu::DeviceOomError);
  EXPECT_EQ(small.memory().in_use(), 0u);

  const auto stats = core::merge::spgemm_chunked(small, a, b, c);
  EXPECT_GT(stats.num_chunks, 1);
  EXPECT_EQ(small.memory().in_use(), 0u);
  ASSERT_EQ(c.row_offsets, flat.row_offsets);
  ASSERT_EQ(c.col, flat.col);
  ASSERT_EQ(std::memcmp(c.val.data(), flat.val.data(),
                        flat.val.size() * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// Adaptive oom-retry tier.

TEST(AdaptiveSpgemm, RetriesChunkedOnActualOom) {
  const CsrD a = medium_matrix(79, 400, 400, 6000);
  const CsrD b = medium_matrix(83, 400, 400, 6000);

  auto props = vgpu::gtx_titan();
  props.global_mem_bytes = 192 * 1024;
  vgpu::Device small(props);
  small.fault_injector().disarm();

  // Defeat the up-front estimate tiers so the flat attempt really runs
  // and really overflows; the driver must catch and retry chunked.
  core::merge::AdaptiveConfig cfg;
  cfg.memory_fraction = 1e9;
  cfg.density_threshold = 1e9;
  CsrD c;
  const auto stats = core::merge::spgemm_adaptive(small, a, b, c, cfg);
  EXPECT_TRUE(stats.used_chunked);
  EXPECT_FALSE(stats.used_segmented);
  EXPECT_STREQ(stats.reason, "oom-retry");
  EXPECT_GT(stats.chunked_stats.num_chunks, 1);
  EXPECT_EQ(small.memory().in_use(), 0u);

  const CsrD ref = baselines::seq::spgemm(a, b);
  const auto cmp = sparse::compare_csr(c, ref, 1e-9);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

TEST(AdaptiveSpgemm, InjectedOomAlsoRetriesChunked) {
  const CsrD a = medium_matrix(89);
  const CsrD b = medium_matrix(97);
  auto dev = make_clean_device();
  dev.fault_injector().fail_at_allocation(1);  // fires once, then disarms

  core::merge::AdaptiveConfig cfg;
  cfg.memory_fraction = 1e9;
  cfg.density_threshold = 1e9;
  CsrD c;
  const auto stats = core::merge::spgemm_adaptive(dev, a, b, c, cfg);
  EXPECT_STREQ(stats.reason, "oom-retry");
  EXPECT_EQ(dev.memory().in_use(), 0u);
  const CsrD ref = baselines::seq::spgemm(a, b);
  const auto cmp = sparse::compare_csr(c, ref, 1e-9);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

// ---------------------------------------------------------------------------
// Environment configuration.

TEST(FaultEnv, AllocNArmssDeviceAtConstruction) {
  EnvVarGuard n("MPS_FAULT_ALLOC_N", "1");
  EnvVarGuard b("MPS_FAULT_BYTE_LIMIT", nullptr);
  vgpu::Device dev;
  EXPECT_TRUE(dev.fault_injector().armed());
  EXPECT_THROW(vgpu::ScopedDeviceAlloc(dev.memory(), 64), vgpu::DeviceOomError);
}

TEST(FaultEnv, ByteLimitArmsDeviceAtConstruction) {
  EnvVarGuard n("MPS_FAULT_ALLOC_N", nullptr);
  EnvVarGuard b("MPS_FAULT_BYTE_LIMIT", "1024");
  vgpu::Device dev;
  EXPECT_TRUE(dev.fault_injector().armed());
  vgpu::ScopedDeviceAlloc ok(dev.memory(), 512);
  EXPECT_THROW(vgpu::ScopedDeviceAlloc(dev.memory(), 1024), vgpu::DeviceOomError);
}

TEST(FaultEnv, CapacityCapIsAMinimumNotAnOverride) {
  EnvVarGuard cap("MPS_FAULT_CAPACITY", "65536");
  vgpu::Device capped;
  EXPECT_EQ(capped.memory().capacity(), 65536u);
  // An explicitly tiny device keeps its own (smaller) capacity.
  auto props = vgpu::gtx_titan();
  props.global_mem_bytes = 4096;
  vgpu::Device tiny(props);
  EXPECT_EQ(tiny.memory().capacity(), 4096u);
}

TEST(FaultEnv, KernelsSurviveAnyEnvInjection) {
  // Runs with whatever MPS_FAULT_* the environment carries (the CI sweep
  // sets them process-wide): whether or not a fault fires, accounting
  // must return to zero and any error must be the typed DeviceOomError.
  vgpu::Device dev;  // deliberately NOT disarmed
  const CsrD a = medium_matrix(101);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows), 0.0);
  try {
    core::merge::spmv(dev, a, x, y);
  } catch (const vgpu::DeviceOomError&) {
  }
  CsrD c;
  try {
    core::merge::spgemm(dev, a, a, c);
  } catch (const vgpu::DeviceOomError&) {
  }
  EXPECT_EQ(dev.memory().in_use(), 0u);
}

TEST(FaultEnv, MalformedValuesAreRejectedNamingTheVariable) {
  // Misconfigured injection must fail loudly at device construction, not
  // silently run fault-free: a chaos job with a typo'd knob would
  // otherwise report a green soak that tested nothing.
  const auto expect_rejected = [](const char* var, const char* value) {
    SCOPED_TRACE(std::string(var) + "=" + value);
    EnvVarGuard g(var, value);
    try {
      vgpu::Device dev;
      FAIL() << "expected InvalidInputError for " << var << "=" << value;
    } catch (const InvalidInputError& e) {
      EXPECT_NE(std::string(e.what()).find(var), std::string::npos)
          << "error must name the offending variable: " << e.what();
    }
  };
  expect_rejected("MPS_FAULT_ALLOC_N", "banana");
  expect_rejected("MPS_FAULT_ALLOC_N", "12x");
  expect_rejected("MPS_FAULT_ALLOC_N", "-3");
  expect_rejected("MPS_FAULT_BYTE_LIMIT", "1e6");  // integers only
  expect_rejected("MPS_FAULT_BITFLIP_ALLOC", "abc");
  // The mask is validated even with no flip armed — a typo'd satellite
  // knob must not wait for MPS_FAULT_BITFLIP_ALLOC to be discovered.
  expect_rejected("MPS_FAULT_BITFLIP_MASK", "0x100");  // above 0xFF
  expect_rejected("MPS_FAULT_BITFLIP_MASK", "zz");
  expect_rejected("MPS_FAULT_CAPACITY", "99999999999999999999999");  // overflow
}

TEST(FaultEnv, WellFormedValuesStillParse) {
  EnvVarGuard mask("MPS_FAULT_BITFLIP_MASK", "0x80");
  EnvVarGuard flip("MPS_FAULT_BITFLIP_ALLOC", "0");
  vgpu::Device dev;  // hex mask in range: accepted
  EnvVarGuard mask2("MPS_FAULT_BITFLIP_MASK", "128");
  vgpu::Device dev2;  // decimal form of the same mask: accepted
  EnvVarGuard empty("MPS_FAULT_BITFLIP_ALLOC", "");
  vgpu::Device dev3;  // empty string counts as unset, not malformed
}

// ---------------------------------------------------------------------------
// Strict validation mode.

TEST(StrictValidation, EnvTogglesPerCall) {
  {
    EnvVarGuard off("MPS_STRICT_VALIDATE", nullptr);
    EXPECT_FALSE(sparse::strict_validation());
  }
  {
    EnvVarGuard on("MPS_STRICT_VALIDATE", "1");
    EXPECT_TRUE(sparse::strict_validation());
  }
}

TEST(StrictValidation, RejectsCorruptCsrAtKernelEntry) {
  EnvVarGuard on("MPS_STRICT_VALIDATE", "1");
  auto dev = make_clean_device();
  CsrD bad = medium_matrix(103);
  bad.col[0] = bad.num_cols + 5;  // out of range
  std::vector<double> x(static_cast<std::size_t>(bad.num_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(bad.num_rows), 0.0);
  EXPECT_THROW(core::merge::spmv(dev, bad, x, y), InvalidInputError);
  CsrD c;
  EXPECT_THROW(core::merge::spgemm(dev, bad, bad, c), InvalidInputError);
  EXPECT_THROW(core::merge::spgemm_chunked(dev, bad, bad, c), InvalidInputError);
  EXPECT_EQ(dev.memory().in_use(), 0u);
}

TEST(StrictValidation, ValidatorsNameTheFirstViolation) {
  CsrD bad(2, 2);
  bad.row_offsets = {0, 2, 1};  // decreasing
  bad.col = {0, 1};
  bad.val = {1.0, 2.0};
  try {
    sparse::validate_csr(bad, "test: A");
    FAIL() << "expected InvalidInputError";
  } catch (const InvalidInputError& e) {
    EXPECT_NE(std::string(e.what()).find("test: A"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("decreases"), std::string::npos);
  }

  CooD dup(2, 2);
  dup.push_back(0, 0, 1.0);
  dup.push_back(0, 0, 2.0);
  try {
    sparse::validate_coo(dup, "test: B");
    FAIL() << "expected InvalidInputError";
  } catch (const InvalidInputError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

}  // namespace
