// Matrix Market round-trip: write → read → bitwise compare.  The writer
// uses enough digits that doubles survive the text round trip exactly, so
// the comparison is memcmp-strict, not tolerance-based.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/io.hpp"
#include "test_matrices.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace mps;
using sparse::CooD;

void expect_bitwise_equal(const CooD& got, const CooD& want) {
  ASSERT_EQ(got.num_rows, want.num_rows);
  ASSERT_EQ(got.num_cols, want.num_cols);
  ASSERT_EQ(got.nnz(), want.nnz());
  EXPECT_EQ(got.row, want.row);
  EXPECT_EQ(got.col, want.col);
  ASSERT_EQ(got.val.size(), want.val.size());
  EXPECT_EQ(std::memcmp(got.val.data(), want.val.data(),
                        want.val.size() * sizeof(double)),
            0)
      << "values drifted through the text round trip";
}

CooD roundtrip(const CooD& a, sparse::MmSymmetry symmetry) {
  std::ostringstream out;
  sparse::write_matrix_market(out, a, symmetry);
  std::istringstream in(out.str());
  return sparse::read_matrix_market(in);
}

TEST(MatrixMarketRoundTrip, GeneralBitwiseExact) {
  util::Rng rng(21);
  // Awkward values on purpose: denormal-ish magnitudes, negatives, and
  // values with no short decimal representation.
  CooD a = mps::testing::random_coo(rng, 37, 53, 400);
  a.val[0] = 0.1;
  a.val[1] = -1.0 / 3.0;
  a.val[2] = 1e-300;
  a.val[3] = -7.25e250;
  const CooD back = roundtrip(a, sparse::MmSymmetry::kGeneral);
  expect_bitwise_equal(back, a);
}

TEST(MatrixMarketRoundTrip, GeneralEmptyMatrix) {
  const CooD a(5, 9);
  const CooD back = roundtrip(a, sparse::MmSymmetry::kGeneral);
  expect_bitwise_equal(back, a);
}

TEST(MatrixMarketRoundTrip, SymmetricExpandsToFullMatrix) {
  // Build a genuinely symmetric matrix: S = L + L^T with a diagonal.
  util::Rng rng(23);
  CooD s(40, 40);
  for (int i = 0; i < 150; ++i) {
    const auto r = static_cast<index_t>(rng.uniform(40));
    const auto c = static_cast<index_t>(rng.uniform(40));
    const double v = rng.uniform_double(-2.0, 2.0);
    s.push_back(r, c, v);
    if (r != c) s.push_back(c, r, v);
  }
  s.canonicalize();

  std::ostringstream out;
  sparse::write_matrix_market(out, s, sparse::MmSymmetry::kSymmetric);
  const std::string text = out.str();
  EXPECT_NE(text.find("coordinate real symmetric"), std::string::npos);

  // The stored entry count is the lower triangle only — strictly less
  // than nnz whenever off-diagonal entries exist (the 2x expansion case).
  index_t lower = 0;
  for (index_t i = 0; i < s.nnz(); ++i) {
    if (s.row[static_cast<std::size_t>(i)] >= s.col[static_cast<std::size_t>(i)])
      ++lower;
  }
  ASSERT_LT(lower, s.nnz()) << "test matrix has no off-diagonal entries";

  std::istringstream in(text);
  const CooD back = sparse::read_matrix_market(in);
  expect_bitwise_equal(back, s);
}

TEST(MatrixMarketRoundTrip, SymmetricDiagonalOnlyDoesNotExpand) {
  CooD d(6, 6);
  for (index_t i = 0; i < 6; ++i) d.push_back(i, i, 1.5 * i + 0.1);
  const CooD back = roundtrip(d, sparse::MmSymmetry::kSymmetric);
  expect_bitwise_equal(back, d);
}

TEST(MatrixMarketRoundTrip, SymmetricWriteRejectsAsymmetricMatrix) {
  CooD a(4, 4);
  a.push_back(0, 1, 2.0);  // no (1, 0) mirror
  EXPECT_THROW(
      sparse::write_matrix_market_file("/dev/null", a,
                                       sparse::MmSymmetry::kSymmetric),
      InvalidInputError);

  CooD b(4, 4);
  b.push_back(0, 1, 2.0);
  b.push_back(1, 0, std::nextafter(2.0, 3.0));  // mirror off by one ulp
  EXPECT_THROW(
      sparse::write_matrix_market_file("/dev/null", b,
                                       sparse::MmSymmetry::kSymmetric),
      InvalidInputError);
}

TEST(MatrixMarketRoundTrip, SymmetricWriteRejectsRectangular) {
  const CooD a(3, 5);
  std::ostringstream out;
  EXPECT_THROW(sparse::write_matrix_market(out, a, sparse::MmSymmetry::kSymmetric),
               InvalidInputError);
}

TEST(MatrixMarketRoundTrip, FileRoundTrip) {
  util::Rng rng(29);
  const CooD a = mps::testing::random_coo(rng, 25, 25, 120);
  const std::string path = ::testing::TempDir() + "mps_io_roundtrip.mtx";
  sparse::write_matrix_market_file(path, a);
  const CooD back = sparse::read_matrix_market_file(path);
  std::remove(path.c_str());
  expect_bitwise_equal(back, a);
}

}  // namespace
