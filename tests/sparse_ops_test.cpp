// Tests for sparse utility operations and the scaled/CSR SpAdd variants.
#include <gtest/gtest.h>

#include "baselines/seq.hpp"
#include "core/spadd.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "sparse/ops.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps {
namespace {

using sparse::coo_to_csr;
using testing::paper_a;
using testing::random_coo;

TEST(SparseOps, ExtractDiagonal) {
  const auto a = coo_to_csr(paper_a());
  const auto d = sparse::extract_diagonal(a);
  EXPECT_EQ(d, (std::vector<double>{10, 20, 0, 0}));
}

TEST(SparseOps, ExtractDiagonalRectangular) {
  sparse::CooD r(2, 5);
  r.push_back(0, 0, 3.0);
  r.push_back(1, 4, 9.0);
  const auto d = sparse::extract_diagonal(coo_to_csr(r));
  EXPECT_EQ(d, (std::vector<double>{3, 0}));
}

TEST(SparseOps, ScaleAndNorm) {
  auto a = coo_to_csr(paper_a());
  const double n0 = sparse::frobenius_norm(a);
  EXPECT_NEAR(n0 * n0, 100 + 400 + 900 + 1600 + 2500 + 3600, 1e-9);
  sparse::scale(a, -2.0);
  EXPECT_NEAR(sparse::frobenius_norm(a), 2 * n0, 1e-12);
  EXPECT_DOUBLE_EQ(a.val[0], -20.0);
}

TEST(SparseOps, DropSmall) {
  auto a = coo_to_csr(paper_a());  // values 10..60
  const index_t dropped = sparse::drop_small(a, 35.0);
  EXPECT_EQ(dropped, 3);  // 10, 20, 30 removed
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_TRUE(a.is_valid());
  for (double v : a.val) EXPECT_GT(v, 35.0);
  EXPECT_EQ(sparse::drop_small(a, -1.0), 0);  // keeps everything incl. zeros
}

TEST(SparseOps, IsSymmetric) {
  const auto p = workloads::poisson2d(8, 8);
  EXPECT_TRUE(sparse::is_symmetric(p));
  EXPECT_FALSE(sparse::is_symmetric(coo_to_csr(paper_a())));
  // Numerically asymmetric within tolerance.
  auto q = p;
  q.val[1] += 1e-13;
  EXPECT_TRUE(sparse::is_symmetric(q, 1e-12));
  q.val[1] += 1.0;
  EXPECT_FALSE(sparse::is_symmetric(q, 1e-12));
}

TEST(SpaddScaled, LinearCombination) {
  vgpu::Device dev;
  util::Rng rng(5);
  const auto a = random_coo(rng, 200, 200, 1500);
  const auto b = random_coo(rng, 200, 200, 1500);
  sparse::CooD c;
  core::merge::spadd_scaled(dev, 2.0, a, -0.5, b, c);
  // Reference via dense arithmetic.
  const auto da = testing::dense_of(coo_to_csr(a));
  const auto db = testing::dense_of(coo_to_csr(b));
  const auto dc = testing::dense_of(coo_to_csr(c));
  for (std::size_t i = 0; i < dc.size(); ++i) {
    ASSERT_NEAR(dc[i], 2.0 * da[i] - 0.5 * db[i], 1e-12);
  }
}

TEST(SpaddScaled, UnitScalarsMatchPlainSpadd) {
  vgpu::Device dev;
  util::Rng rng(6);
  const auto a = random_coo(rng, 100, 100, 700);
  const auto b = random_coo(rng, 100, 100, 600);
  sparse::CooD c1, c2;
  core::merge::spadd(dev, a, b, c1);
  core::merge::spadd_scaled(dev, 1.0, a, 1.0, b, c2);
  ASSERT_EQ(c1.nnz(), c2.nnz());
  for (index_t i = 0; i < c1.nnz(); ++i) {
    ASSERT_DOUBLE_EQ(c1.val[static_cast<std::size_t>(i)],
                     c2.val[static_cast<std::size_t>(i)]);
  }
}

TEST(SpaddScaled, SubtractionKeepsUnionPattern) {
  // csrgeam semantics: A - A has A's pattern with zero values.
  vgpu::Device dev;
  util::Rng rng(7);
  const auto a = random_coo(rng, 80, 80, 400);
  sparse::CooD c;
  core::merge::spadd_scaled(dev, 1.0, a, -1.0, a, c);
  ASSERT_EQ(c.nnz(), a.nnz());
  for (double v : c.val) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SpaddCsr, RoundTripsThroughCoo) {
  vgpu::Device dev;
  util::Rng rng(8);
  const auto a = coo_to_csr(random_coo(rng, 300, 250, 2000));
  const auto b = coo_to_csr(random_coo(rng, 300, 250, 1500));
  sparse::CsrD c;
  core::merge::spadd_csr(dev, a, b, c);
  const auto ref = baselines::seq::spadd(a, b);
  const auto cmp = sparse::compare_csr(c, ref);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

}  // namespace
}  // namespace mps
