// Differential oracle suite for the format/kernel autotuner
// (docs/autotuning.md): every tuned configuration is bitwise-identical
// to the sequential baseline, tuning is deterministic, the trial cost is
// charged once (never leaking into steady-state modeled time), the
// tuned choice is never slower than the static merge default, and the
// serving engine's tuned path behaves identically to the untuned one.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "autotune/autotune.hpp"
#include "baselines/seq.hpp"
#include "core/spmv.hpp"
#include "oracle.hpp"
#include "serve/engine.hpp"
#include "sparse/convert.hpp"
#include "sparse/stats.hpp"
#include "test_matrices.hpp"
#include "util/error.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps {
namespace {

using autotune::Features;
using autotune::Format;
using autotune::TunedPlan;
using sparse::coo_to_csr;
using testing::bitwise_equal;
using testing::kAllRegimes;
using testing::kFuzzSeeds;
using testing::make_regime_matrix;
using testing::oracle_x;
using testing::Regime;
using testing::regime_name;

std::vector<double> seq_reference(const sparse::CsrD& a,
                                  const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(a.num_rows), -999.0);
  baselines::seq::spmv(a, x, y);
  return y;
}

// ---------------------------------------------------------------------------
// Canonical accumulation: merge output is bitwise-identical to the
// sequential reference for EVERY tile configuration.  This is the
// property that makes "tuned == untuned" well-defined at all — without
// it the tile choice would perturb rounding on rows that span CTAs.

TEST(MergeCanonical, SingleGiantRowExactForAllTiles) {
  vgpu::Device dev;
  sparse::CooD coo(3, 50000);
  util::Rng rng(13);
  for (index_t c = 0; c < 50000; c += 2) {
    coo.push_back(1, c, rng.uniform_double(-1, 1));
  }
  coo.canonicalize();
  const auto a = coo_to_csr(coo);
  const auto x = oracle_x(a);
  const auto y_ref = seq_reference(a, x);
  for (const int ipt : {1, 3, 7, 16}) {
    SCOPED_TRACE(ipt);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows), -999.0);
    core::merge::spmv(dev, a, x, y, {128, ipt});
    EXPECT_TRUE(bitwise_equal(y, y_ref));
  }
}

class CanonicalGridTest
    : public ::testing::TestWithParam<std::tuple<Regime, std::uint64_t>> {
 protected:
  vgpu::Device dev_;
};

TEST_P(CanonicalGridTest, MergeBitIdenticalToSeqForAllTiles) {
  const auto [regime, seed] = GetParam();
  const auto a = make_regime_matrix(regime, seed);
  const auto x = oracle_x(a);
  const auto y_ref = seq_reference(a, x);
  for (const int ipt : {3, 7, 16}) {
    SCOPED_TRACE(ipt);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows), -999.0);
    core::merge::spmv(dev_, a, x, y, {128, ipt});
    EXPECT_TRUE(bitwise_equal(y, y_ref));
  }
}

// ---------------------------------------------------------------------------
// Tuned execution: bitwise-identical to the sequential baseline AND to
// the untuned merge path, across every fuzz regime.

TEST_P(CanonicalGridTest, TunedBitIdenticalToSeqAndUntuned) {
  const auto [regime, seed] = GetParam();
  const auto a = make_regime_matrix(regime, seed);
  const auto x = oracle_x(a);
  const auto y_ref = seq_reference(a, x);

  const TunedPlan tuned(dev_, a);
  std::vector<double> y_tuned(static_cast<std::size_t>(a.num_rows), -999.0);
  const auto st = tuned.execute(dev_, a, x, y_tuned);
  EXPECT_TRUE(bitwise_equal(y_tuned, y_ref)) << tuned.choice().name;

  std::vector<double> y_merge(static_cast<std::size_t>(a.num_rows), -999.0);
  core::merge::spmv(dev_, a, x, y_merge);
  EXPECT_TRUE(bitwise_equal(y_tuned, y_merge)) << tuned.choice().name;

  // Never slower than the static default (candidate 0) in modeled time.
  ASSERT_FALSE(tuned.trials().empty());
  EXPECT_LE(tuned.steady_ms(), tuned.trials()[0].modeled_ms);
  EXPECT_DOUBLE_EQ(st.modeled_ms(), tuned.steady_ms());
}

std::string grid_name(
    const ::testing::TestParamInfo<std::tuple<Regime, std::uint64_t>>& info) {
  return regime_name(std::get<0>(info.param)) +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CanonicalGridTest,
    ::testing::Combine(::testing::ValuesIn(testing::kAllRegimes),
                       ::testing::ValuesIn(testing::kFuzzSeeds)),
    grid_name);

// ---------------------------------------------------------------------------
// Tuning protocol properties.

TEST(Autotune, DeterministicGivenAMatrix) {
  vgpu::Device dev;
  const auto a = make_regime_matrix(Regime::kPowerLaw, 2);
  const TunedPlan t1(dev, a);
  const TunedPlan t2(dev, a);
  EXPECT_STREQ(t1.choice().name, t2.choice().name);
  EXPECT_DOUBLE_EQ(t1.steady_ms(), t2.steady_ms());
  EXPECT_DOUBLE_EQ(t1.tune_ms(), t2.tune_ms());
  ASSERT_EQ(t1.trials().size(), t2.trials().size());
  for (std::size_t i = 0; i < t1.trials().size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.trials()[i].modeled_ms, t2.trials()[i].modeled_ms);
  }
}

TEST(Autotune, TrialCostChargedOnceNotInSteadyState) {
  vgpu::Device dev;
  const auto a = make_regime_matrix(Regime::kBanded, 1);
  const TunedPlan tuned(dev, a);
  // The trial protocol ran every candidate once: its cost strictly
  // exceeds any single steady-state apply.
  EXPECT_GT(tuned.tune_ms(), tuned.steady_ms());
  const auto x = oracle_x(a);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows));
  // Repeated executes each report exactly the steady-state cost — the
  // tune-time charge never leaks in.
  for (int i = 0; i < 3; ++i) {
    const auto st = tuned.execute(dev, a, x, y);
    // modeled_ms() is reduce+update only — plan/tune cost excluded.
    EXPECT_DOUBLE_EQ(st.modeled_ms(), tuned.steady_ms());
    EXPECT_EQ(st.partition_ms, 0.0);
    EXPECT_EQ(st.compact_ms, 0.0);
  }
}

TEST(Autotune, NonDefaultWinsOnUniformShortRows) {
  // A 2D Poisson stencil: near-uniform 5-point rows.  Merge pays its
  // per-row offsets window and segmented-scan traffic; a format kernel
  // (CMRS or ELL) streams the same bytes without them and must win.
  vgpu::Device dev;
  const auto a = workloads::poisson2d(64, 64);
  const TunedPlan tuned(dev, a);
  EXPECT_NE(tuned.choice().format, Format::kCsr) << tuned.choice().name;
  EXPECT_LT(tuned.steady_ms(), tuned.trials()[0].modeled_ms);
}

TEST(Autotune, DefaultKeepsSkewedMatrix) {
  // Webbase-style hub-dominated rows (std >> avg): ELL's padding gate
  // rejects it, and CMRS strips are pinned behind their heaviest warp;
  // the flat merge decomposition is the paper's answer and must survive.
  vgpu::Device dev;
  const auto a = workloads::powerlaw_web(20000, 0.015, 1.5, 2, /*seed=*/2025);
  const TunedPlan tuned(dev, a);
  EXPECT_EQ(tuned.choice().kernel, autotune::Kernel::kMergePath)
      << tuned.choice().name;
}

TEST(Autotune, CandidateSpaceAlwaysLeadsWithMergeDefault) {
  for (const Regime r : kAllRegimes) {
    const auto a = make_regime_matrix(r, 1);
    const auto f = Features::extract(a);
    const auto c = autotune::candidate_space(f, 64);
    ASSERT_FALSE(c.empty());
    EXPECT_EQ(c[0].kernel, autotune::Kernel::kMergePath);
    EXPECT_EQ(c[0].cfg.block_threads, 128);
    EXPECT_EQ(c[0].cfg.items_per_thread, 7);
    // A trials cap of 1 degenerates to the static default.
    EXPECT_EQ(autotune::candidate_space(f, 1).size(), 1u);
  }
}

TEST(Autotune, FingerprintGuardRejectsDifferentPattern) {
  vgpu::Device dev;
  const auto a = make_regime_matrix(Regime::kUniform, 1);
  const auto b = make_regime_matrix(Regime::kUniform, 2);  // same dims
  const TunedPlan tuned(dev, a);
  std::vector<double> x(static_cast<std::size_t>(b.num_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(b.num_rows));
  EXPECT_THROW(tuned.execute(dev, b, x, y), PlanMismatchError);
}

TEST(Autotune, ValueBufferGuardForConvertedFormats) {
  // A format-converted winner snapshots the value buffer; executing
  // against an identical-pattern COPY (values live elsewhere) must be
  // rejected, not silently served from the snapshot.
  vgpu::Device dev;
  const auto a = workloads::poisson2d(48, 48);
  const TunedPlan tuned(dev, a);
  ASSERT_NE(tuned.choice().format, Format::kCsr) << tuned.choice().name;
  const sparse::CsrD copy = a;
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows));
  EXPECT_THROW(tuned.execute(dev, copy, x, y), PlanMismatchError);
  EXPECT_NO_THROW(tuned.execute(dev, a, x, y));
}

// ---------------------------------------------------------------------------
// Feature extraction regression: one pass over row_offsets, histogram
// cached on the stats struct.

TEST(Autotune, FeatureExtractionSinglePassOverMillionRows) {
  // 1M-row synthetic matrix, 2 nnz per row, built directly in CSR.
  const index_t rows = 1'000'000;
  sparse::CsrD a(rows, 64);
  a.row_offsets.resize(static_cast<std::size_t>(rows) + 1);
  a.col.resize(2u * static_cast<std::size_t>(rows));
  a.val.assign(2u * static_cast<std::size_t>(rows), 1.0);
  for (index_t r = 0; r <= rows; ++r) {
    a.row_offsets[static_cast<std::size_t>(r)] = 2 * r;
  }
  for (std::size_t k = 0; k < a.col.size(); ++k) {
    a.col[k] = static_cast<index_t>(k % 64);
  }

  const long long before = sparse::stats_scan_count();
  const auto f = Features::extract(a);
  // Exactly ONE row-offset scan: moments, extremes, bandwidth and the
  // nnz/row histogram all come out of the same fused pass, and feature
  // extraction reads the cached histogram instead of rescanning.
  EXPECT_EQ(sparse::stats_scan_count(), before + 1);

  EXPECT_EQ(f.rows, rows);
  EXPECT_EQ(f.nnz, 2ll * rows);
  EXPECT_DOUBLE_EQ(f.avg_row, 2.0);
  EXPECT_DOUBLE_EQ(f.cv_row, 0.0);
  EXPECT_DOUBLE_EQ(f.empty_frac, 0.0);
  long long hist_total = 0;
  for (const long long h : f.row_hist) hist_total += h;
  EXPECT_EQ(hist_total, static_cast<long long>(rows));
  EXPECT_EQ(f.row_hist[2], static_cast<long long>(rows));  // len 2 bucket

  // Candidate enumeration and tuning reuse the struct; no extra scan.
  const auto c = autotune::candidate_space(f, 64);
  EXPECT_EQ(sparse::stats_scan_count(), before + 1);
  EXPECT_FALSE(c.empty());
}

// ---------------------------------------------------------------------------
// Serving engine: the autotuned path is bitwise-identical to the
// untuned path, cache hits amortize the trial protocol, and
// re-registration invalidates value-bound tuned entries.

serve::EngineConfig tuned_engine_config() {
  serve::EngineConfig cfg;
  cfg.threads = 2;
  cfg.queue_capacity = 64;
  cfg.batch_window = 1;  // keep requests on the unbatched (tuned) path
  cfg.plan_cache_bytes = 8u << 20;
  cfg.autotune = 1;
  return cfg;
}

TEST(AutotuneServe, TunedPathBitIdenticalToUntunedAcrossRegimes) {
  for (const Regime r : kAllRegimes) {
    SCOPED_TRACE(regime_name(r));
    const auto a = make_regime_matrix(r, 1);
    const auto x = oracle_x(a);
    const auto y_ref = seq_reference(a, x);

    auto run = [&](int autotune_flag) {
      auto cfg = tuned_engine_config();
      cfg.autotune = autotune_flag;
      serve::Engine engine(cfg);
      const auto h = engine.register_matrix(a);
      return engine.submit_spmv(h, x).get().y;
    };
    const auto y_tuned = run(1);
    const auto y_plain = run(0);
    EXPECT_TRUE(bitwise_equal(y_tuned, y_ref));
    EXPECT_TRUE(bitwise_equal(y_tuned, y_plain));
  }
}

TEST(AutotuneServe, TunedPlanCachedAcrossRequests) {
  const auto a = workloads::poisson2d(32, 32);
  const auto x = oracle_x(a);
  serve::Engine engine(tuned_engine_config());
  const auto h = engine.register_matrix(a);
  const auto r1 = engine.submit_spmv(h, x).get();
  EXPECT_FALSE(r1.plan_cache_hit);  // miss: trial protocol ran
  const auto r2 = engine.submit_spmv(h, x).get();
  EXPECT_TRUE(r2.plan_cache_hit);  // hit: tuned entry reused
  EXPECT_TRUE(bitwise_equal(r1.y, r2.y));
  // Steady-state cost only, both times: the trial charge is not
  // re-reported by later requests.
  EXPECT_DOUBLE_EQ(r1.modeled_ms, r2.modeled_ms);
}

TEST(AutotuneServe, ReRegistrationInvalidatesValueBoundTunedEntry) {
  // poisson2d tunes to a format-converted winner whose storage snapshots
  // the registered values; re-registering the same pattern with new
  // values must invalidate it, and the next result must reflect the NEW
  // values (a stale snapshot would reproduce the old ones).
  auto a = workloads::poisson2d(32, 32);
  const auto x = oracle_x(a);
  serve::Engine engine(tuned_engine_config());
  const auto h1 = engine.register_matrix(a);
  const auto y_old = engine.submit_spmv(h1, x).get().y;

  for (auto& v : a.val) v *= 2.0;
  const auto h2 = engine.register_matrix(a);
  EXPECT_EQ(h1, h2);  // same pattern => same handle, refreshed values
  const auto r = engine.submit_spmv(h2, x).get();
  EXPECT_FALSE(r.plan_cache_hit);  // tuned entry was invalidated
  EXPECT_TRUE(bitwise_equal(r.y, seq_reference(a, x)));
  // Doubling every value exactly doubles every (finite) output.
  ASSERT_EQ(r.y.size(), y_old.size());
  for (std::size_t i = 0; i < r.y.size(); ++i) {
    ASSERT_DOUBLE_EQ(r.y[i], 2.0 * y_old[i]);
  }
}

}  // namespace
}  // namespace mps
