// Tests for the durability subsystem (docs/robustness.md, "Process crash
// & recovery"): the CSR binary codec, WAL framing and torn-tail policy,
// atomic snapshots, and snapshot+WAL recovery folding.
//
// The load-bearing sweep is TornWriteToleranceAtEveryByteBoundary:
// truncating the log at EVERY byte boundary of the final record must
// recover exactly the complete prefix (a torn final record was never
// acknowledged, so dropping it is correct), while the same damage to a
// non-final record must raise RecoveryError — never a silently partial
// registry.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "durability/durable_store.hpp"
#include "durability/snapshot.hpp"
#include "durability/wal.hpp"
#include "resilience/integrity.hpp"
#include "sparse/binary.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mps::durability {
namespace {

using sparse::coo_to_csr;
using sparse::CsrD;

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/mps_durability_test.XXXXXX";
    if (::mkdtemp(buf) == nullptr) throw std::runtime_error("mkdtemp failed");
    path_ = buf;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const char* name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

CsrD make_matrix(std::uint64_t seed, index_t n = 60, index_t nnz = 400) {
  util::Rng rng(seed);
  return coo_to_csr(testing::random_coo(rng, n, n, nnz));
}

bool same_matrix(const CsrD& a, const CsrD& b) {
  return a.num_rows == b.num_rows && a.num_cols == b.num_cols &&
         a.row_offsets == b.row_offsets && a.col == b.col && a.val == b.val;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// CSR binary codec.

TEST(CsrBinary, RoundTripsBitwise) {
  const CsrD a = make_matrix(7);
  std::string buf;
  sparse::append_csr_binary(buf, a);
  EXPECT_EQ(buf.size(), sparse::csr_binary_bytes(a));
  std::size_t consumed = 0;
  const CsrD back = sparse::read_csr_binary(buf.data(), buf.size(), &consumed);
  EXPECT_EQ(consumed, buf.size());
  EXPECT_TRUE(same_matrix(a, back));
}

TEST(CsrBinary, RoundTripsEmptyMatrix) {
  CsrD a;
  a.num_rows = 0;
  a.num_cols = 0;
  a.row_offsets = {0};
  std::string buf;
  sparse::append_csr_binary(buf, a);
  std::size_t consumed = 0;
  const CsrD back = sparse::read_csr_binary(buf.data(), buf.size(), &consumed);
  EXPECT_TRUE(same_matrix(a, back));
}

TEST(CsrBinary, EveryTruncationIsATypedError) {
  const CsrD a = make_matrix(8, 20, 60);
  std::string buf;
  sparse::append_csr_binary(buf, a);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_THROW(sparse::read_csr_binary(buf.data(), len, nullptr), ParseError)
        << "truncation to " << len << " bytes parsed";
  }
}

// ---------------------------------------------------------------------------
// WAL framing.

TEST(Wal, MissingFileIsAnEmptyLog) {
  TempDir dir;
  const auto r = read_wal(dir.file(kWalFileName));
  EXPECT_TRUE(r.records.empty());
  EXPECT_FALSE(r.torn_tail_dropped);
}

TEST(Wal, AppendsRoundTripInOrder) {
  TempDir dir;
  const std::string path = dir.file(kWalFileName);
  const CsrD a = make_matrix(1), b = make_matrix(2);
  {
    WalWriter w(path, /*fsync=*/false, /*valid_bytes=*/0, /*last_seq=*/0);
    EXPECT_EQ(w.append_register(10, 1, a), 1u);
    EXPECT_EQ(w.append_register(11, 1, b), 2u);
    EXPECT_EQ(w.append_register(10, 2, a), 3u);
  }
  const auto r = read_wal(path);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_FALSE(r.torn_tail_dropped);
  EXPECT_EQ(r.records[0].seq, 1u);
  EXPECT_EQ(r.records[0].handle, 10u);
  EXPECT_EQ(r.records[0].version, 1u);
  EXPECT_TRUE(same_matrix(r.records[0].matrix, a));
  EXPECT_EQ(r.records[1].handle, 11u);
  EXPECT_TRUE(same_matrix(r.records[1].matrix, b));
  EXPECT_EQ(r.records[2].version, 2u);
  EXPECT_EQ(r.valid_bytes, slurp(path).size());
}

TEST(Wal, BadMagicIsRecoveryError) {
  TempDir dir;
  const std::string path = dir.file(kWalFileName);
  dump(path, "NOTAWAL!somebytes");
  EXPECT_THROW(read_wal(path), RecoveryError);
}

TEST(Wal, SubMagicPrefixIsATornFirstWrite) {
  // A file shorter than the magic is the torn very-first write: nothing
  // was ever acknowledged from it, so recovery succeeds empty.
  TempDir dir;
  const std::string path = dir.file(kWalFileName);
  dump(path, std::string(kWalMagic, 3));
  const auto r = read_wal(path);
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(r.torn_tail_dropped);
}

TEST(Wal, TruncateRecordsKeepsMagicAndSequence) {
  TempDir dir;
  const std::string path = dir.file(kWalFileName);
  const CsrD a = make_matrix(3);
  WalWriter w(path, false, 0, 0);
  w.append_register(1, 1, a);
  w.append_register(2, 1, a);
  w.truncate_records();
  EXPECT_EQ(slurp(path).size(), kWalMagicBytes);
  // Sequence numbers survive truncation — that is what makes replay
  // after a snapshot idempotent.
  EXPECT_EQ(w.append_register(3, 1, a), 3u);
  const auto r = read_wal(path);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].seq, 3u);
}

TEST(Wal, ReopenCutsTornTailBeforeAppending) {
  TempDir dir;
  const std::string path = dir.file(kWalFileName);
  const CsrD a = make_matrix(4);
  {
    WalWriter w(path, false, 0, 0);
    w.append_register(1, 1, a);
    w.append_register(2, 1, a);
  }
  // Tear the final record, then reopen the writer with the reader's
  // valid_bytes (the recovery handshake) and append: the torn bytes must
  // be gone, not buried mid-log.
  const std::string whole = slurp(path);
  dump(path, whole.substr(0, whole.size() - 5));
  const auto torn = read_wal(path);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_TRUE(torn.torn_tail_dropped);
  {
    WalWriter w(path, false, torn.valid_bytes, torn.records.back().seq);
    w.append_register(3, 1, a);
  }
  const auto r = read_wal(path);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_FALSE(r.torn_tail_dropped);
  EXPECT_EQ(r.records[0].handle, 1u);
  EXPECT_EQ(r.records[1].handle, 3u);
  // The torn record's sequence number is reused: it was never
  // acknowledged and its bytes were cut, so no snapshot can cover it.
  EXPECT_EQ(r.records[1].seq, 2u);
}

// The headline sweep: tear the log at EVERY byte boundary of the final
// record.  Each prefix must recover exactly the complete records before
// the tear — no failure, no partial record, no silent extra state.
TEST(Wal, TornWriteToleranceAtEveryByteBoundary) {
  TempDir dir;
  const std::string path = dir.file(kWalFileName);
  const CsrD a = make_matrix(5, 12, 40), b = make_matrix(6, 12, 40);
  std::size_t after_two = 0;
  {
    WalWriter w(path, false, 0, 0);
    w.append_register(1, 1, a);
    w.append_register(2, 1, b);
    after_two = static_cast<std::size_t>(slurp(path).size());
    w.append_register(3, 2, a);
  }
  const std::string whole = slurp(path);
  ASSERT_GT(whole.size(), after_two);
  for (std::size_t len = after_two; len < whole.size(); ++len) {
    dump(path, whole.substr(0, len));
    WalReadResult r;
    ASSERT_NO_THROW(r = read_wal(path)) << "tear at byte " << len;
    ASSERT_EQ(r.records.size(), 2u) << "tear at byte " << len;
    EXPECT_EQ(r.torn_tail_dropped, len != after_two) << "tear at byte " << len;
    EXPECT_EQ(r.valid_bytes, after_two) << "tear at byte " << len;
    EXPECT_EQ(r.records[1].seq, 2u);
    EXPECT_TRUE(same_matrix(r.records[1].matrix, b));
  }
}

// Corrupting (not tearing) each byte of the final record: either the
// damage is caught as a torn tail (success, record dropped) or it raises
// RecoveryError — it must NEVER round-trip a record different from the
// one that was written.
TEST(Wal, FinalRecordCorruptionNeverYieldsAWrongRecord) {
  TempDir dir;
  const std::string path = dir.file(kWalFileName);
  const CsrD a = make_matrix(7, 12, 40), b = make_matrix(8, 12, 40);
  std::size_t after_one = 0;
  {
    WalWriter w(path, false, 0, 0);
    w.append_register(1, 1, a);
    after_one = static_cast<std::size_t>(slurp(path).size());
    w.append_register(2, 1, b);
  }
  const std::string whole = slurp(path);
  for (std::size_t pos = after_one; pos < whole.size(); ++pos) {
    std::string damaged = whole;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    dump(path, damaged);
    try {
      const auto r = read_wal(path);
      // Accepted: then record 1 must be intact and any surviving record 2
      // must be byte-identical to what was written.
      ASSERT_GE(r.records.size(), 1u) << "corrupt byte " << pos;
      ASSERT_LE(r.records.size(), 2u) << "corrupt byte " << pos;
      EXPECT_EQ(r.records[0].handle, 1u);
      EXPECT_TRUE(same_matrix(r.records[0].matrix, a));
      if (r.records.size() == 2) {
        EXPECT_EQ(r.records[1].handle, 2u) << "corrupt byte " << pos;
        EXPECT_EQ(r.records[1].version, 1u) << "corrupt byte " << pos;
        EXPECT_TRUE(same_matrix(r.records[1].matrix, b))
            << "corrupt byte " << pos;
      }
    } catch (const RecoveryError&) {
      // Equally acceptable: damage detected and refused.
    }
  }
}

// The same corruption applied to a NON-final record is not a torn write
// of the fatal crash — it is log damage, and must be refused.
TEST(Wal, NonFinalRecordCorruptionIsRecoveryError) {
  TempDir dir;
  const std::string path = dir.file(kWalFileName);
  const CsrD a = make_matrix(9, 12, 40), b = make_matrix(10, 12, 40);
  std::size_t after_one = 0;
  {
    WalWriter w(path, false, 0, 0);
    w.append_register(1, 1, a);
    after_one = static_cast<std::size_t>(slurp(path).size());
    w.append_register(2, 1, b);
  }
  const std::string whole = slurp(path);
  // Corrupt the checksum and payload bytes of record 1 (skip the length
  // field: a corrupted length reframes the log so the damage can land at
  // EOF, which is indistinguishable from a genuine torn final write).
  for (std::size_t pos = kWalMagicBytes + 4; pos < after_one; ++pos) {
    std::string damaged = whole;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    dump(path, damaged);
    EXPECT_THROW(read_wal(path), RecoveryError) << "corrupt byte " << pos;
  }
}

TEST(Wal, NonMonotoneSequenceIsRecoveryError) {
  TempDir dir;
  const std::string path = dir.file(kWalFileName);
  const CsrD a = make_matrix(11, 12, 40);
  {
    WalWriter w(path, false, 0, 0);
    w.append_register(1, 1, a);
  }
  // Duplicate the first record's bytes: same seq twice is not a log the
  // writer can produce, so replay must refuse it.
  const std::string whole = slurp(path);
  dump(path, whole + whole.substr(kWalMagicBytes));
  EXPECT_THROW(read_wal(path), RecoveryError);
}

// ---------------------------------------------------------------------------
// Snapshots.

SnapshotData make_snapshot_data() {
  SnapshotData d;
  d.last_seq = 5;
  d.matrices.push_back(
      {20, 2, std::make_shared<const CsrD>(make_matrix(20))});
  d.matrices.push_back(
      {21, 1, std::make_shared<const CsrD>(make_matrix(21))});
  d.warm.push_back({20, false});
  d.warm.push_back({21, true});
  return d;
}

TEST(Snapshot, RoundTripsMatricesVersionsAndWarmSet) {
  TempDir dir;
  const auto d = make_snapshot_data();
  write_snapshot(dir.path(), d);
  const auto back = read_snapshot(dir.file(kSnapshotFileName));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->last_seq, 5u);
  ASSERT_EQ(back->matrices.size(), 2u);
  EXPECT_EQ(back->matrices[0].handle, 20u);
  EXPECT_EQ(back->matrices[0].version, 2u);
  EXPECT_TRUE(same_matrix(*back->matrices[0].matrix, *d.matrices[0].matrix));
  ASSERT_EQ(back->warm.size(), 2u);
  EXPECT_FALSE(back->warm[0].tuned);
  EXPECT_TRUE(back->warm[1].tuned);
  // No stray tmp file after the atomic rename.
  EXPECT_FALSE(std::filesystem::exists(dir.file("snapshot.bin.tmp")));
}

TEST(Snapshot, RoundTripsShardLayoutsAndFleetShape) {
  TempDir dir;
  auto d = make_snapshot_data();
  d.fleet_devices = 4;
  ShardLayoutRecord primary;
  primary.handle = 20;
  primary.replica = false;
  primary.blocks.push_back({0, 31, 0});
  primary.blocks.push_back({31, 60, 3});
  ShardLayoutRecord replica = primary;
  replica.replica = true;
  replica.blocks[0].device = 1;
  replica.blocks[1].device = 2;
  d.shard_layouts.push_back(primary);
  d.shard_layouts.push_back(replica);
  write_snapshot(dir.path(), d);
  const auto back = read_snapshot(dir.file(kSnapshotFileName));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->fleet_devices, 4u);
  ASSERT_EQ(back->shard_layouts.size(), 2u);
  EXPECT_FALSE(back->shard_layouts[0].replica);
  EXPECT_TRUE(back->shard_layouts[1].replica);
  ASSERT_EQ(back->shard_layouts[0].blocks.size(), 2u);
  EXPECT_EQ(back->shard_layouts[0].blocks[1].row_begin, 31);
  EXPECT_EQ(back->shard_layouts[0].blocks[1].row_end, 60);
  EXPECT_EQ(back->shard_layouts[0].blocks[1].device, 3);
  EXPECT_EQ(back->shard_layouts[1].blocks[0].device, 1);
}

template <typename T>
void put_bytes(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

TEST(Snapshot, ReadsLegacyV1FilesWithoutShardSection) {
  // A pre-sharding snapshot (MPSSNAP1) has no fleet/layout section;
  // recovery must accept it and report an empty shard state rather than
  // demand a re-snapshot on upgrade.
  TempDir dir;
  const CsrD m = make_matrix(33);
  std::string body;
  body.append("MPSSNAP1", 8);
  put_bytes<std::uint64_t>(body, 9);  // last_seq
  put_bytes<std::uint32_t>(body, 1);  // one matrix
  put_bytes<std::uint64_t>(body, 77);  // handle
  put_bytes<std::uint64_t>(body, 3);   // version
  sparse::append_csr_binary(body, m);
  put_bytes<std::uint32_t>(body, 1);  // one warm entry
  put_bytes<std::uint64_t>(body, 77);
  body.push_back(1);  // tuned
  put_bytes<std::uint64_t>(body,
                           resilience::checksum_bytes(body.data(), body.size()));
  dump(dir.file(kSnapshotFileName), body);

  const auto back = read_snapshot(dir.file(kSnapshotFileName));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->last_seq, 9u);
  ASSERT_EQ(back->matrices.size(), 1u);
  EXPECT_EQ(back->matrices[0].handle, 77u);
  EXPECT_TRUE(same_matrix(*back->matrices[0].matrix, m));
  ASSERT_EQ(back->warm.size(), 1u);
  EXPECT_TRUE(back->warm[0].tuned);
  EXPECT_EQ(back->fleet_devices, 0u);
  EXPECT_TRUE(back->shard_layouts.empty());
}

TEST(Snapshot, MissingFileIsNullopt) {
  TempDir dir;
  EXPECT_FALSE(read_snapshot(dir.file(kSnapshotFileName)).has_value());
}

TEST(Snapshot, AnyDamageIsRecoveryError) {
  // Unlike the WAL there is no torn tolerance: the rename is atomic, so a
  // visible snapshot was written completely — damage means refuse.
  TempDir dir;
  write_snapshot(dir.path(), make_snapshot_data());
  const std::string path = dir.file(kSnapshotFileName);
  const std::string whole = slurp(path);
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{4}, whole.size() / 2, whole.size() - 1}) {
    dump(path, whole.substr(0, len));
    EXPECT_THROW(read_snapshot(path), RecoveryError) << "truncated to " << len;
  }
  for (std::size_t pos = 0; pos < whole.size(); pos += 7) {
    std::string damaged = whole;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x01);
    dump(path, damaged);
    EXPECT_THROW(read_snapshot(path), RecoveryError) << "corrupt byte " << pos;
  }
  dump(path, whole + "x");  // trailing garbage
  EXPECT_THROW(read_snapshot(path), RecoveryError);
}

// ---------------------------------------------------------------------------
// recover_dir: folding the WAL tail onto the snapshot.

TEST(Recovery, EmptyDirIsFirstBoot) {
  TempDir dir;
  const auto r = recover_dir(dir.path());
  EXPECT_TRUE(r.matrices.empty());
  EXPECT_FALSE(r.info.snapshot_loaded);
  EXPECT_EQ(r.info.last_seq, 0u);
}

TEST(Recovery, ReplaySkipsRecordsTheSnapshotCovers) {
  TempDir dir;
  const CsrD a = make_matrix(30), b = make_matrix(31);
  // WAL: seqs 1..4 (handle 30 then 31, then re-register both).
  {
    WalWriter w(dir.file(kWalFileName), false, 0, 0);
    w.append_register(30, 1, a);
    w.append_register(31, 1, b);
    w.append_register(30, 2, a);
    w.append_register(31, 2, b);
  }
  // Snapshot covering seq <= 2: replay must apply only seqs 3 and 4.
  SnapshotData d;
  d.last_seq = 2;
  d.matrices.push_back({30, 1, std::make_shared<const CsrD>(a)});
  d.matrices.push_back({31, 1, std::make_shared<const CsrD>(b)});
  write_snapshot(dir.path(), d);

  const auto r = recover_dir(dir.path());
  EXPECT_TRUE(r.info.snapshot_loaded);
  EXPECT_EQ(r.info.snapshot_matrices, 2);
  EXPECT_EQ(r.info.wal_records_replayed, 2);
  EXPECT_EQ(r.info.stale_skipped, 2);
  EXPECT_EQ(r.info.last_seq, 4u);
  ASSERT_EQ(r.matrices.size(), 2u);
  for (const auto& m : r.matrices) EXPECT_EQ(m.version, 2u);
}

TEST(Recovery, LatestVersionWinsAndTornTailIsDropped) {
  TempDir dir;
  const CsrD a = make_matrix(32);
  {
    WalWriter w(dir.file(kWalFileName), false, 0, 0);
    w.append_register(40, 1, a);
    w.append_register(40, 2, a);
    w.append_register(40, 3, a);
  }
  const std::string whole = slurp(dir.file(kWalFileName));
  dump(dir.file(kWalFileName), whole.substr(0, whole.size() - 3));
  const auto r = recover_dir(dir.path());
  EXPECT_TRUE(r.info.torn_tail_dropped);
  EXPECT_EQ(r.info.wal_records_replayed, 2);
  ASSERT_EQ(r.matrices.size(), 1u);
  EXPECT_EQ(r.matrices[0].version, 2u);  // seq 3 (version 3) was torn
  EXPECT_EQ(r.info.last_seq, 2u);
}

// ---------------------------------------------------------------------------
// DurableStore: append/snapshot/truncate plumbing.

TEST(DurableStore, SnapshotNowTruncatesTheCoveredLog) {
  TempDir dir;
  const CsrD a = make_matrix(33);
  DurableConfig cfg;
  cfg.dir = dir.path();
  cfg.snapshot_every = 0;  // no background thread — deterministic test
  RecoveredState empty;
  SnapshotData captured;
  captured.matrices.push_back({50, 1, std::make_shared<const CsrD>(a)});
  DurableStore store(cfg, empty, [&] {
    SnapshotData d = captured;
    d.last_seq = store.last_seq();
    return d;
  });
  store.append_register(50, 1, a);
  store.append_register(50, 2, a);
  EXPECT_EQ(store.last_seq(), 2u);
  store.snapshot_now();
  // The WAL is truncated back to its magic; the snapshot covers seq 2.
  EXPECT_EQ(slurp(dir.file(kWalFileName)).size(), kWalMagicBytes);
  const auto s = store.stats();
  EXPECT_EQ(s.wal_appends, 2);
  EXPECT_EQ(s.snapshots, 1);
  const auto snap = read_snapshot(dir.file(kSnapshotFileName));
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->last_seq, 2u);
  // Appends continue the sequence after truncation.
  EXPECT_EQ(store.append_register(50, 3, a), 3u);
}

TEST(DurableStore, ReopenContinuesWhereTheCrashLeftOff) {
  TempDir dir;
  const CsrD a = make_matrix(34);
  DurableConfig cfg;
  cfg.dir = dir.path();
  cfg.snapshot_every = 0;
  {
    RecoveredState empty;
    DurableStore store(cfg, empty, [] { return SnapshotData{}; });
    store.append_register(60, 1, a);
    store.append_register(61, 1, a);
    // No snapshot, no graceful anything — simulate the crash by just
    // dropping the store.
  }
  const auto recovered = recover_dir(dir.path());
  ASSERT_EQ(recovered.matrices.size(), 2u);
  DurableStore store(cfg, recovered, [] { return SnapshotData{}; });
  EXPECT_EQ(store.append_register(62, 1, a), 3u);
  const auto r = recover_dir(dir.path());
  EXPECT_EQ(r.matrices.size(), 3u);
  EXPECT_EQ(r.info.last_seq, 3u);
}

}  // namespace
}  // namespace mps::durability
