// Tests for device-wide merge, merge sort, and vectorized sorted search.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "primitives/device_merge.hpp"
#include "primitives/sorted_search.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {
namespace {

std::vector<int> sorted_random(util::Rng& rng, std::size_t n, int range) {
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(range)));
  std::sort(v.begin(), v.end());
  return v;
}

class DeviceMergeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DeviceMergeTest, MatchesStdMerge) {
  const auto [na, nb] = GetParam();
  vgpu::Device dev;
  util::Rng rng(static_cast<std::uint64_t>(na * 31 + nb));
  const auto a = sorted_random(rng, static_cast<std::size_t>(na), 1000);
  const auto b = sorted_random(rng, static_cast<std::size_t>(nb), 1000);
  std::vector<int> out(a.size() + b.size());
  device_merge<int>(dev, a, b, out);
  std::vector<int> expect;
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(expect));
  EXPECT_EQ(out, expect);
}

TEST_P(DeviceMergeTest, PairsAreStable) {
  const auto [na, nb] = GetParam();
  vgpu::Device dev;
  util::Rng rng(static_cast<std::uint64_t>(na * 7 + nb));
  const auto ka = sorted_random(rng, static_cast<std::size_t>(na), 20);
  const auto kb = sorted_random(rng, static_cast<std::size_t>(nb), 20);
  std::vector<int> va(ka.size()), vb(kb.size());
  std::iota(va.begin(), va.end(), 0);
  std::iota(vb.begin(), vb.end(), 100000);
  std::vector<int> kout(ka.size() + kb.size()), vout(kout.size());
  device_merge_pairs<int, int>(dev, ka, va, kb, vb, kout, vout);
  // A-first tie order, values track their key.
  for (std::size_t i = 0; i < kout.size(); ++i) {
    if (vout[i] < 100000) {
      EXPECT_EQ(ka[static_cast<std::size_t>(vout[i])], kout[i]);
    } else {
      EXPECT_EQ(kb[static_cast<std::size_t>(vout[i] - 100000)], kout[i]);
    }
    if (i) EXPECT_LE(kout[i - 1], kout[i]);
  }
  // Stability within each source.
  for (std::size_t i = 1; i < kout.size(); ++i) {
    if (kout[i - 1] == kout[i] && (vout[i - 1] < 100000) == (vout[i] < 100000)) {
      EXPECT_LT(vout[i - 1], vout[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DeviceMergeTest,
                         ::testing::Values(std::make_tuple(0, 0),
                                           std::make_tuple(0, 100),
                                           std::make_tuple(100, 0),
                                           std::make_tuple(1, 1),
                                           std::make_tuple(1000, 1000),
                                           std::make_tuple(10000, 137),
                                           std::make_tuple(137, 10000)));

class MergeSortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergeSortTest, SortsRandom) {
  vgpu::Device dev;
  util::Rng rng(GetParam() + 3);
  std::vector<int> v(GetParam());
  for (auto& x : v) x = static_cast<int>(rng.uniform(1u << 20)) - (1 << 19);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  const auto stats = device_merge_sort<int>(dev, v);
  EXPECT_EQ(v, expect);
  if (v.size() > 1408 * 2) EXPECT_GT(stats.rounds, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MergeSortTest,
                         ::testing::Values(0, 1, 2, 1407, 1408, 1409, 10000,
                                           100000));

TEST(MergeSort, AlreadySortedAndReversed) {
  vgpu::Device dev;
  std::vector<int> asc(20000), desc(20000);
  std::iota(asc.begin(), asc.end(), 0);
  for (std::size_t i = 0; i < desc.size(); ++i)
    desc[i] = static_cast<int>(desc.size() - i);
  auto expect_asc = asc;
  device_merge_sort<int>(dev, asc);
  EXPECT_EQ(asc, expect_asc);
  device_merge_sort<int>(dev, desc);
  EXPECT_TRUE(std::is_sorted(desc.begin(), desc.end()));
}

TEST(MergeSort, CustomComparator) {
  vgpu::Device dev;
  util::Rng rng(9);
  std::vector<int> v(5000);
  for (auto& x : v) x = static_cast<int>(rng.uniform(1000));
  device_merge_sort<int>(dev, v, std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

TEST(MergeSort, ChargesDeviceMemoryForPingPong) {
  vgpu::DeviceProperties tiny = vgpu::gtx_titan();
  tiny.global_mem_bytes = 1024;
  vgpu::Device dev(tiny);
  std::vector<int> v(10000, 1);
  EXPECT_THROW(device_merge_sort<int>(dev, v), vgpu::DeviceOomError);
}

class SortedSearchTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SortedSearchTest, MatchesLowerBound) {
  const auto [na, nb, range] = GetParam();
  vgpu::Device dev;
  util::Rng rng(static_cast<std::uint64_t>(na + nb * 3 + range));
  const auto a = sorted_random(rng, static_cast<std::size_t>(na), range);
  const auto b = sorted_random(rng, static_cast<std::size_t>(nb), range);
  std::vector<index_t> idx(a.size(), -1);
  device_sorted_search<int>(dev, a, b, idx);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto expect = std::lower_bound(b.begin(), b.end(), a[i]) - b.begin();
    ASSERT_EQ(idx[i], static_cast<index_t>(expect)) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SortedSearchTest,
    ::testing::Values(std::make_tuple(0, 100, 50), std::make_tuple(100, 0, 50),
                      std::make_tuple(1000, 1000, 10),  // heavy duplicates
                      std::make_tuple(1000, 1000, 1000000),
                      std::make_tuple(10000, 500, 300),
                      std::make_tuple(500, 10000, 300)));

}  // namespace
}  // namespace mps::primitives
