// Unit tests for sparse formats, conversions, stats and Matrix Market I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/io.hpp"
#include "sparse/stats.hpp"
#include "util/rng.hpp"

namespace mps::sparse {
namespace {

/// The paper's Section III example matrix A.
CooMatrix<double> paper_matrix_a() {
  CooMatrix<double> a(4, 4);
  a.push_back(0, 0, 10);
  a.push_back(1, 1, 20);
  a.push_back(1, 2, 30);
  a.push_back(1, 3, 40);
  a.push_back(2, 3, 50);
  a.push_back(3, 1, 60);
  return a;
}

/// The paper's Section III example matrix B.
CooMatrix<double> paper_matrix_b() {
  CooMatrix<double> b(4, 4);
  b.push_back(0, 0, 1);
  b.push_back(1, 1, 2);
  b.push_back(1, 3, 3);
  b.push_back(2, 0, 4);
  b.push_back(2, 1, 5);
  b.push_back(3, 1, 6);
  b.push_back(3, 3, 7);
  return b;
}

CooMatrix<double> random_coo(util::Rng& rng, index_t rows, index_t cols, int nnz,
                             bool with_dups) {
  CooMatrix<double> a(rows, cols);
  for (int i = 0; i < nnz; ++i) {
    a.push_back(static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(rows))),
                static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(cols))),
                rng.uniform_double(-1, 1));
  }
  if (!with_dups) a.canonicalize();
  return a;
}

TEST(Coo, SortAndCanonical) {
  CooMatrix<double> a(3, 3);
  a.push_back(2, 1, 1.0);
  a.push_back(0, 2, 2.0);
  a.push_back(2, 1, 3.0);
  a.push_back(0, 0, 4.0);
  EXPECT_FALSE(a.is_sorted());
  a.sort();
  EXPECT_TRUE(a.is_sorted());
  EXPECT_FALSE(a.is_canonical());  // duplicate (2,1)
  a.canonicalize();
  EXPECT_TRUE(a.is_canonical());
  EXPECT_EQ(a.nnz(), 3);
  // duplicate summed
  EXPECT_DOUBLE_EQ(a.val.back(), 4.0);
}

TEST(Coo, BoundsCheck) {
  CooMatrix<double> a(2, 2);
  a.push_back(1, 1, 1.0);
  EXPECT_TRUE(a.indices_in_bounds());
  a.push_back(2, 0, 1.0);
  EXPECT_FALSE(a.indices_in_bounds());
}

TEST(Coo, PaperExampleTupleForm) {
  auto a = paper_matrix_a();
  EXPECT_EQ(a.nnz(), 6);
  EXPECT_TRUE(a.is_canonical());
  auto b = paper_matrix_b();
  EXPECT_EQ(b.nnz(), 7);
  EXPECT_TRUE(b.is_canonical());
}

TEST(Convert, CooCsrRoundTrip) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    auto a = random_coo(rng, 50, 70, 300, /*with_dups=*/false);
    auto csr = coo_to_csr(a);
    EXPECT_TRUE(csr.is_valid());
    auto back = csr_to_coo(csr);
    ASSERT_EQ(back.nnz(), a.nnz());
    for (index_t i = 0; i < a.nnz(); ++i) {
      EXPECT_EQ(back.row[static_cast<std::size_t>(i)], a.row[static_cast<std::size_t>(i)]);
      EXPECT_EQ(back.col[static_cast<std::size_t>(i)], a.col[static_cast<std::size_t>(i)]);
      EXPECT_DOUBLE_EQ(back.val[static_cast<std::size_t>(i)], a.val[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Convert, CsrFromUnsortedCoo) {
  CooMatrix<double> a(3, 3);
  a.push_back(2, 0, 1.0);
  a.push_back(0, 1, 2.0);
  a.push_back(1, 2, 3.0);
  a.push_back(0, 0, 4.0);
  auto csr = coo_to_csr(a);
  EXPECT_TRUE(csr.is_valid());
  EXPECT_EQ(csr.row_length(0), 2);
  EXPECT_EQ(csr.row_length(1), 1);
  EXPECT_EQ(csr.row_length(2), 1);
  EXPECT_DOUBLE_EQ(csr.val[0], 4.0);  // (0,0) sorted before (0,1)
}

TEST(Convert, EmptyRowsPreserved) {
  CooMatrix<double> a(5, 5);
  a.push_back(0, 0, 1.0);
  a.push_back(4, 4, 2.0);
  auto csr = coo_to_csr(a);
  EXPECT_TRUE(csr.is_valid());
  EXPECT_TRUE(csr.has_empty_rows());
  EXPECT_EQ(csr.row_length(2), 0);
}

TEST(Convert, TransposeTwiceIsIdentity) {
  util::Rng rng(7);
  auto a = coo_to_csr(random_coo(rng, 40, 60, 500, false));
  auto att = transpose(transpose(a));
  const auto cmp = compare_csr(a, att);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

TEST(Convert, TransposeMovesEntries) {
  auto a = coo_to_csr(paper_matrix_a());
  auto at = transpose(a);
  EXPECT_TRUE(at.is_valid());
  EXPECT_EQ(at.num_rows, 4);
  // A(1,3)=40 must appear as AT(3,1)=40.
  bool found = false;
  for (index_t k = at.row_offsets[3]; k < at.row_offsets[4]; ++k) {
    if (at.col[static_cast<std::size_t>(k)] == 1 &&
        at.val[static_cast<std::size_t>(k)] == 40.0)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Convert, ExpandRowIndices) {
  auto a = coo_to_csr(paper_matrix_a());
  auto rows = expand_row_indices(a);
  const std::vector<index_t> expect{0, 1, 1, 1, 2, 3};
  EXPECT_EQ(rows, expect);
}

TEST(Compare, DetectsValueMismatch) {
  auto a = coo_to_csr(paper_matrix_a());
  auto b = a;
  b.val[2] += 1e-3;
  EXPECT_FALSE(compare_csr(a, b).equal);
  b.val[2] = a.val[2] * (1 + 1e-13);
  EXPECT_TRUE(compare_csr(a, b).equal);
}

TEST(Compare, DetectsStructureMismatch) {
  auto a = coo_to_csr(paper_matrix_a());
  auto b = coo_to_csr(paper_matrix_b());
  EXPECT_FALSE(compare_csr(a, b).equal);
}

TEST(Stats, PaperExample) {
  auto a = coo_to_csr(paper_matrix_a());
  const auto s = compute_stats(a);
  EXPECT_EQ(s.rows, 4);
  EXPECT_EQ(s.nnz, 6);
  EXPECT_DOUBLE_EQ(s.avg_row, 1.5);
  EXPECT_EQ(s.max_row, 3);
  EXPECT_EQ(s.empty_rows, 0);
}

TEST(Stats, DenseMatrixHasZeroStd) {
  CooMatrix<double> d(10, 10);
  for (index_t r = 0; r < 10; ++r)
    for (index_t c = 0; c < 10; ++c) d.push_back(r, c, 1.0);
  const auto s = compute_stats(coo_to_csr(d));
  EXPECT_DOUBLE_EQ(s.avg_row, 10.0);
  EXPECT_DOUBLE_EQ(s.std_row, 0.0);
}

TEST(Io, RoundTrip) {
  auto a = paper_matrix_a();
  std::stringstream ss;
  write_matrix_market(ss, a);
  auto b = read_matrix_market(ss);
  ASSERT_EQ(b.nnz(), a.nnz());
  EXPECT_EQ(b.num_rows, a.num_rows);
  for (index_t i = 0; i < a.nnz(); ++i) {
    EXPECT_EQ(b.row[static_cast<std::size_t>(i)], a.row[static_cast<std::size_t>(i)]);
    EXPECT_EQ(b.col[static_cast<std::size_t>(i)], a.col[static_cast<std::size_t>(i)]);
    EXPECT_DOUBLE_EQ(b.val[static_cast<std::size_t>(i)], a.val[static_cast<std::size_t>(i)]);
  }
}

TEST(Io, SymmetricExpansion) {
  std::stringstream ss("%%MatrixMarket matrix coordinate real symmetric\n"
                       "3 3 2\n"
                       "2 1 5.0\n"
                       "3 3 1.0\n");
  auto a = read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 3);  // off-diagonal mirrored, diagonal not
}

TEST(Io, PatternField) {
  std::stringstream ss("%%MatrixMarket matrix coordinate pattern general\n"
                       "2 2 2\n"
                       "1 1\n"
                       "2 2\n");
  auto a = read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.val[0], 1.0);
}

TEST(Io, RejectsGarbage) {
  std::stringstream ss("not a matrix\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
  std::stringstream oob("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(oob), std::runtime_error);
}

}  // namespace
}  // namespace mps::sparse
