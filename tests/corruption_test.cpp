// Silent-data-corruption tests: deterministic bit-flip injection, the
// integrity-guard module, and the self-healing solver driver.
//
// The contract under test (docs/robustness.md): with bit flips armed and
// MPS_INTEGRITY_CHECK=1, every covered path either produces the same
// bitwise result as an uncorrupted run (after recovery) or raises
// IntegrityError — it never returns silently wrong data.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/spmv.hpp"
#include "resilience/integrity.hpp"
#include "solver/resilient.hpp"
#include "sparse/convert.hpp"
#include "sparse/validate.hpp"
#include "test_matrices.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace mps;
using sparse::CsrD;
using sparse::coo_to_csr;

/// A device whose injector is guaranteed disarmed even when the process
/// runs under an MPS_FAULT_* sweep — deterministic tests arm it
/// explicitly themselves.
vgpu::Device make_clean_device() {
  vgpu::Device dev;
  dev.fault_injector().disarm();
  dev.fault_injector().reset_counters();
  return dev;
}

/// Restores (or re-clears) an environment variable on scope exit.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvVarGuard(const EnvVarGuard&) = delete;
  EnvVarGuard& operator=(const EnvVarGuard&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

CsrD medium_matrix(unsigned seed, index_t rows = 200, index_t cols = 200,
                   index_t nnz = 1400) {
  util::Rng rng(seed);
  return coo_to_csr(mps::testing::random_coo(rng, rows, cols, nnz));
}

// ---------------------------------------------------------------------------
// Bit-flip injector unit behavior.

TEST(BitFlip, FlipsExactByteAtArmedAllocation) {
  auto dev = make_clean_device();
  dev.fault_injector().flip_bit_at_allocation(2, /*offset=*/3, /*mask=*/0x10);
  std::vector<std::uint8_t> buf(16, 0xAA);
  vgpu::ScopedDeviceAlloc first(dev.memory(), 64);  // ordinal 1: not armed
  EXPECT_EQ(buf[3], 0xAA);
  vgpu::ScopedDeviceAlloc second(dev.memory(), buf.size(), buf.data(),
                                 buf.size());  // ordinal 2: flip lands
  EXPECT_EQ(buf[3], 0xAA ^ 0x10);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (i != 3) {
      EXPECT_EQ(buf[i], 0xAA) << "collateral damage at byte " << i;
    }
  }
  EXPECT_EQ(dev.fault_injector().bitflips_injected(), 1);
  EXPECT_EQ(dev.fault_injector().bitflips_missed(), 0);
}

TEST(BitFlip, OffsetWrapsAroundTheWindow) {
  auto dev = make_clean_device();
  dev.fault_injector().flip_bit_at_allocation(1, /*offset=*/10, /*mask=*/0x01);
  std::vector<std::uint8_t> buf(4, 0x00);
  vgpu::ScopedDeviceAlloc a(dev.memory(), buf.size(), buf.data(), buf.size());
  EXPECT_EQ(buf[10 % 4], 0x01);  // offset reduced modulo the window
}

TEST(BitFlip, MissedWhenNoWindowRegistered) {
  auto dev = make_clean_device();
  dev.fault_injector().flip_bit_at_allocation(1, 0, 0x01);
  vgpu::ScopedDeviceAlloc a(dev.memory(), 64);  // plain accounting, no window
  EXPECT_EQ(dev.fault_injector().bitflips_injected(), 0);
  EXPECT_EQ(dev.fault_injector().bitflips_missed(), 1);
}

TEST(BitFlip, TransientModeRepeatsEveryN) {
  auto dev = make_clean_device();
  dev.fault_injector().flip_bit_at_allocation(1, 0, 0x01, /*every=*/2);
  std::vector<std::uint8_t> buf(8, 0x00);
  for (int i = 0; i < 5; ++i) {
    vgpu::ScopedDeviceAlloc a(dev.memory(), buf.size(), buf.data(), buf.size());
  }
  // Ordinals 1, 3, 5 flip; 2 and 4 do not.
  EXPECT_EQ(dev.fault_injector().bitflips_injected(), 3);
  EXPECT_EQ(buf[0], 0x01);  // three XORs of the same bit
}

TEST(BitFlip, EnvKnobsArmDeviceAtConstruction) {
  EnvVarGuard a("MPS_FAULT_BITFLIP_ALLOC", "1");
  EnvVarGuard o("MPS_FAULT_BITFLIP_OFFSET", "2");
  EnvVarGuard m("MPS_FAULT_BITFLIP_MASK", "0x80");
  EnvVarGuard n("MPS_FAULT_ALLOC_N", nullptr);
  EnvVarGuard b("MPS_FAULT_BYTE_LIMIT", nullptr);
  vgpu::Device dev;
  EXPECT_TRUE(dev.fault_injector().armed());
  std::vector<std::uint8_t> buf(4, 0x00);
  vgpu::ScopedDeviceAlloc alloc(dev.memory(), buf.size(), buf.data(), buf.size());
  EXPECT_EQ(buf[2], 0x80);
  EXPECT_EQ(dev.fault_injector().bitflips_injected(), 1);
}

// ---------------------------------------------------------------------------
// Integrity-guard module.

TEST(Integrity, ChecksumSeesEveryBit) {
  std::vector<double> v(64, 1.25);
  const auto base = resilience::checksum_span(std::span<const double>(v));
  auto* bytes = reinterpret_cast<std::uint8_t*>(v.data());
  bytes[100] ^= 0x01;  // a single-bit mantissa flip
  EXPECT_NE(resilience::checksum_span(std::span<const double>(v)), base);
  bytes[100] ^= 0x01;
  EXPECT_EQ(resilience::checksum_span(std::span<const double>(v)), base);
}

TEST(Integrity, BufferGuardNamesTheDriftedBuffer) {
  std::vector<double> healthy(32, 1.0), victim(32, 2.0);
  resilience::BufferGuard guard;
  guard.add("healthy", std::span<const double>(healthy));
  guard.add("victim", std::span<const double>(victim));
  guard.verify();  // no drift yet
  reinterpret_cast<std::uint8_t*>(victim.data())[5] ^= 0x40;
  try {
    guard.verify();
    FAIL() << "expected IntegrityError";
  } catch (const IntegrityError& e) {
    EXPECT_NE(std::string(e.what()).find("victim"), std::string::npos);
  }
}

TEST(Integrity, ScrubExposesTheBufferWithoutAccounting) {
  auto dev = make_clean_device();
  dev.fault_injector().flip_bit_at_allocation(1, /*offset=*/9, /*mask=*/0x04);
  std::vector<double> v(16, 3.0);
  const auto before = resilience::checksum_span(std::span<const double>(v));
  const long long scrubs_before = resilience::counters().scrubs;
  const double ms = resilience::scrub(dev, std::span<double>(v));
  EXPECT_GT(ms, 0.0);                       // the read pass is charged
  EXPECT_EQ(dev.memory().in_use(), 0u);     // but nothing is accounted
  EXPECT_EQ(dev.fault_injector().bitflips_injected(), 1);
  EXPECT_NE(resilience::checksum_span(std::span<const double>(v)), before);
  EXPECT_EQ(resilience::counters().scrubs, scrubs_before + 1);
}

TEST(Integrity, CheckCsrFlagsStructureColumnsAndValues) {
  auto dev = make_clean_device();
  const CsrD good = medium_matrix(7);
  EXPECT_GT(resilience::check_csr(dev, good, "test"), 0.0);

  CsrD bad_off = good;
  bad_off.row_offsets[5] = bad_off.row_offsets[4] - 1;
  EXPECT_THROW(resilience::check_csr(dev, bad_off, "test"), IntegrityError);

  CsrD bad_col = good;
  bad_col.col[3] = good.num_cols + 7;
  EXPECT_THROW(resilience::check_csr(dev, bad_col, "test"), IntegrityError);

  CsrD bad_val = good;
  bad_val.val[2] = std::nan("");
  EXPECT_THROW(resilience::check_csr(dev, bad_val, "test"), IntegrityError);
}

TEST(Integrity, CheckFiniteReportsFirstIndex) {
  auto dev = make_clean_device();
  std::vector<double> v(10, 1.0);
  v[6] = std::numeric_limits<double>::infinity();
  try {
    resilience::check_finite(dev, std::span<const double>(v), "test: y");
    FAIL() << "expected IntegrityError";
  } catch (const IntegrityError& e) {
    EXPECT_NE(std::string(e.what()).find("index 6"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// SpmvPlan state integrity: a flip in pinned plan state is detected.

TEST(SpmvPlanGuard, DetectsFlipLandingInPinnedPlanState) {
  EnvVarGuard on("MPS_INTEGRITY_CHECK", "1");
  const CsrD a = medium_matrix(11);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows), 0.0);

  // The plan's only device reservation is the build-time pin, whose live
  // window is the partition-fence array — so a flip armed at that ordinal
  // deterministically corrupts real plan state.
  auto dev = make_clean_device();
  dev.fault_injector().flip_bit_at_allocation(1, /*offset=*/6, /*mask=*/0x20);
  const auto plan = core::merge::spmv_plan(dev, a);
  EXPECT_EQ(dev.fault_injector().bitflips_injected(), 1);
  EXPECT_THROW(core::merge::spmv_execute(dev, a, x, y, plan), IntegrityError);
}

TEST(SpmvPlanGuard, NeverSilentlyWrongAcrossFlipSweep) {
  EnvVarGuard on("MPS_INTEGRITY_CHECK", "1");
  const CsrD a = medium_matrix(13);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 0.5);

  std::vector<double> ref(static_cast<std::size_t>(a.num_rows), 0.0);
  {
    auto dev = make_clean_device();
    const auto plan = core::merge::spmv_plan(dev, a);
    core::merge::spmv_execute(dev, a, x, ref, plan);
  }

  for (const std::size_t offset : {0u, 1u, 7u, 40u, 123u, 4096u}) {
    for (const int mask : {0x01, 0x80}) {
      SCOPED_TRACE("offset " + std::to_string(offset) + " mask " +
                   std::to_string(mask));
      auto dev = make_clean_device();
      dev.fault_injector().flip_bit_at_allocation(
          1, offset, static_cast<std::uint8_t>(mask));
      const auto plan = core::merge::spmv_plan(dev, a);
      std::vector<double> y(static_cast<std::size_t>(a.num_rows), 0.0);
      bool threw = false;
      try {
        core::merge::spmv_execute(dev, a, x, y, plan);
      } catch (const IntegrityError&) {
        threw = true;
      }
      if (!threw) {
        // Only acceptable alternative: the answer is bitwise correct
        // (possible only if the flip was not actually injected).
        ASSERT_EQ(std::memcmp(y.data(), ref.data(), ref.size() * sizeof(double)),
                  0)
            << "silently wrong result";
      }
    }
  }
}

TEST(SpmvPlanGuard, CleanPlanPassesVerificationAndMatchesUnguardedRun) {
  const CsrD a = medium_matrix(17);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 2.0);
  std::vector<double> y_off(static_cast<std::size_t>(a.num_rows), 0.0);
  std::vector<double> y_on(y_off);

  auto dev = make_clean_device();
  const auto plan = core::merge::spmv_plan(dev, a);
  {
    EnvVarGuard off("MPS_INTEGRITY_CHECK", nullptr);
    const auto s = core::merge::spmv_execute(dev, a, x, y_off, plan);
    EXPECT_EQ(s.integrity_ms, 0.0);  // guards off: zero modeled overhead
  }
  {
    EnvVarGuard on("MPS_INTEGRITY_CHECK", "1");
    const auto s = core::merge::spmv_execute(dev, a, x, y_on, plan);
    EXPECT_GT(s.integrity_ms, 0.0);  // guards on: the checks are charged
    EXPECT_EQ(s.modeled_ms(),
              s.partition_ms + s.reduce_ms + s.update_ms + s.compact_ms +
                  s.integrity_ms);
  }
  EXPECT_EQ(std::memcmp(y_off.data(), y_on.data(), y_on.size() * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// Strict validation level 2: non-finite inputs rejected at kernel entry.

TEST(StrictValidationL2, RejectsNonFiniteNamingRowAndCol) {
  // Entry validation is the subject here, not the output guards — those
  // would also (correctly) flag the NaN propagating into y at level 1.
  EnvVarGuard guards_off("MPS_INTEGRITY_CHECK", nullptr);
  CsrD a = medium_matrix(19);
  // Poison a known coordinate.
  const index_t row = 3;
  const index_t k = a.row_offsets[static_cast<std::size_t>(row)];
  ASSERT_LT(k, a.row_offsets[static_cast<std::size_t>(row) + 1])
      << "row 3 unexpectedly empty";
  a.val[static_cast<std::size_t>(k)] = std::nan("");
  const index_t col = a.col[static_cast<std::size_t>(k)];

  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows), 0.0);
  {
    // Level 1: structural only — NaN passes entry validation.
    EnvVarGuard lvl("MPS_STRICT_VALIDATE", "1");
    auto dev = make_clean_device();
    EXPECT_NO_THROW(core::merge::spmv(dev, a, x, y));
  }
  {
    EnvVarGuard lvl("MPS_STRICT_VALIDATE", "2");
    EXPECT_EQ(sparse::strict_validation_level(), 2);
    auto dev = make_clean_device();
    try {
      core::merge::spmv(dev, a, x, y);
      FAIL() << "expected InvalidInputError";
    } catch (const InvalidInputError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("non-finite"), std::string::npos);
      EXPECT_NE(what.find("(" + std::to_string(row) + ", " +
                          std::to_string(col) + ")"),
                std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// Self-healing solver driver.

TEST(ResilientSolver, CleanRunConvergesWithoutRecoveryActivity) {
  auto dev = make_clean_device();
  std::vector<double> x(64, 0.0);
  solver::ResilientConfig cfg;
  cfg.max_iterations = 500;
  cfg.tolerance = 1e-12;
  solver::ResilientSolver driver(dev, cfg);
  driver.track("x", x);
  const auto report = driver.run([&](int) {
    double err = 0.0;
    for (auto& v : x) {
      v = 0.9 * v + 0.1;
      err = std::max(err, std::abs(v - 1.0));
    }
    return solver::StepResult{err, 0.0};
  });
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.detections, 0);
  EXPECT_EQ(report.restores, 0);
  EXPECT_GT(report.guard_ms, 0.0);  // scans still ran
}

TEST(ResilientSolver, DetectsFlipRollsBackAndMatchesCleanRunBitwise) {
  const auto run_solve = [](vgpu::Device& dev) {
    std::vector<double> x(64, 0.0);
    solver::ResilientConfig cfg;
    cfg.max_iterations = 500;
    cfg.tolerance = 1e-12;
    solver::ResilientSolver driver(dev, cfg);
    driver.track("x", x);
    const auto report = driver.run([&](int) {
      double err = 0.0;
      for (auto& v : x) {
        v = 0.9 * v + 0.1;
        err = std::max(err, std::abs(v - 1.0));
      }
      return solver::StepResult{err, 0.0};
    });
    return std::make_pair(x, report);
  };

  auto clean_dev = make_clean_device();
  const auto [clean_x, clean_report] = run_solve(clean_dev);
  ASSERT_TRUE(clean_report.converged);

  // Arm a flip to land in the tracked vector during a mid-solve scrub
  // (the scrubs are the only windowed reservations this loop makes).
  auto faulty_dev = make_clean_device();
  faulty_dev.fault_injector().flip_bit_at_allocation(5, /*offset=*/101,
                                                     /*mask=*/0x08);
  const auto [healed_x, report] = run_solve(faulty_dev);
  EXPECT_EQ(faulty_dev.fault_injector().bitflips_injected(), 1);
  EXPECT_GE(report.detections, 1);
  EXPECT_GE(report.restores, 1);
  EXPECT_TRUE(report.converged);
  ASSERT_EQ(healed_x.size(), clean_x.size());
  EXPECT_EQ(std::memcmp(healed_x.data(), clean_x.data(),
                        clean_x.size() * sizeof(double)),
            0)
      << "recovered solve drifted from the uncorrupted answer";
}

TEST(ResilientSolver, ExhaustedRestoreBudgetIsLoud) {
  auto dev = make_clean_device();
  std::vector<double> x(32, 0.0);
  solver::ResilientConfig cfg;
  cfg.max_iterations = 100;
  cfg.tolerance = 0.0;  // fixed-step
  cfg.scan_interval = 1;
  cfg.max_restores = 2;
  // Initial scan scrubs once (ordinal 1); arm a transient fault that hits
  // every scrub from ordinal 2 on, so no checkpoint interval can outrun it.
  dev.fault_injector().flip_bit_at_allocation(2, /*offset=*/3, /*mask=*/0x01,
                                              /*every=*/1);
  solver::ResilientSolver driver(dev, cfg);
  driver.track("x", x);
  try {
    driver.run([&](int) {
      for (auto& v : x) v = 0.9 * v + 0.1;
      return solver::StepResult{1.0, 0.0};
    });
    FAIL() << "expected IntegrityError";
  } catch (const IntegrityError& e) {
    EXPECT_NE(std::string(e.what()).find("restore budget"), std::string::npos);
  }
}

TEST(ResilientSolver, RealCgRecoversWithPlanRebuild) {
  EnvVarGuard on("MPS_INTEGRITY_CHECK", "1");
  const CsrD a = workloads::poisson2d(16, 16);
  const std::size_t rows = static_cast<std::size_t>(a.num_rows);

  const auto solve = [&](vgpu::Device& dev) {
    auto plan = core::merge::spmv_plan(dev, a);
    std::vector<double> ones(rows, 1.0), rhs(rows);
    core::merge::spmv_execute(dev, a, ones, rhs, plan);
    std::vector<double> sol(rows, 0.0), r = rhs, p = r, ap(rows);
    double rr = 0.0;
    for (double v : r) rr += v * v;
    solver::ResilientConfig cfg;
    cfg.max_iterations = 400;
    cfg.tolerance = 1e-10 * std::sqrt(rr);
    solver::ResilientSolver driver(dev, cfg);
    driver.track("x", sol);
    driver.track("r", r);
    driver.track("p", p);
    driver.track("Ap", ap);
    driver.track_scalar("r.r", rr);
    const auto report = driver.run(
        [&](int) {
          core::merge::spmv_execute(dev, a, p, ap, plan);
          double pap = 0.0;
          for (std::size_t i = 0; i < rows; ++i) pap += p[i] * ap[i];
          const double alpha = rr / pap;
          for (std::size_t i = 0; i < rows; ++i) {
            sol[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
          }
          double rr_new = 0.0;
          for (double v : r) rr_new += v * v;
          const double beta = rr_new / rr;
          rr = rr_new;
          for (std::size_t i = 0; i < rows; ++i) p[i] = r[i] + beta * p[i];
          return solver::StepResult{std::sqrt(rr), 0.0};
        },
        [&] { plan = core::merge::spmv_plan(dev, a); });
    return std::make_pair(sol, report);
  };

  auto clean_dev = make_clean_device();
  const auto [clean_sol, clean_report] = solve(clean_dev);

  // Arm a flip deep enough into the ordinal stream to land mid-solve (the
  // scrub cadence makes windowed reservations every scan).
  auto faulty_dev = make_clean_device();
  faulty_dev.fault_injector().flip_bit_at_allocation(30, /*offset=*/77,
                                                     /*mask=*/0x80);
  const auto [healed_sol, report] = solve(faulty_dev);
  EXPECT_EQ(faulty_dev.fault_injector().bitflips_injected(), 1);
  EXPECT_GE(report.detections, 1);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(std::memcmp(healed_sol.data(), clean_sol.data(),
                        clean_sol.size() * sizeof(double)),
            0)
      << "recovered CG drifted from the uncorrupted solution";
  EXPECT_TRUE(clean_report.converged);
}

}  // namespace
