// Tests for crash-consistent serving (docs/robustness.md, "Process crash
// & recovery"): Engine-level WAL + snapshot integration.
//
// The invariants mirror the kill-and-recover harness
// (scripts/crash_matrix.sh), exercised here in-process:
//   - every acknowledged registration survives recovery, at a version at
//     least as new as the one acknowledged;
//   - replayed SpMV answers are bitwise identical to the pre-crash run;
//   - recovery composes with the chaos layer (a snapshot taken while
//     faults fly still recovers to bitwise-correct answers);
//   - the MPS_SERVE_* / MPS_DURABLE_* knobs parse strictly (garbage or
//     out-of-range values raise InvalidInputError, never a silent
//     fallback).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/spmv.hpp"
#include "durability/crash.hpp"
#include "durability/wal.hpp"
#include "serve/engine.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "vgpu/chaos.hpp"
#include "vgpu/device.hpp"

namespace mps::serve {
namespace {

using sparse::coo_to_csr;
using sparse::CsrD;

// Scoped setenv/unsetenv that restores the previous value (same idiom as
// tests/serve_chaos_test.cpp).
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvVarGuard(const EnvVarGuard&) = delete;
  EnvVarGuard& operator=(const EnvVarGuard&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

class CleanDurableEnv {
 public:
  CleanDurableEnv() {
    static const char* const kVars[] = {
        "MPS_DURABLE_DIR",   "MPS_DURABLE_SNAPSHOT_EVERY",
        "MPS_DURABLE_WARM",  "MPS_DURABLE_FSYNC",
        "MPS_DURABLE_CRASH", "MPS_CHAOS_SCRIPT",
        "MPS_CHAOS_SEED",    "MPS_AUTOTUNE",
    };
    for (const char* v : kVars) {
      guards_.push_back(std::make_unique<EnvVarGuard>(v, nullptr));
    }
  }

 private:
  std::vector<std::unique_ptr<EnvVarGuard>> guards_;
};

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/mps_serve_durable_test.XXXXXX";
    if (::mkdtemp(buf) == nullptr) throw std::runtime_error("mkdtemp failed");
    path_ = buf;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CsrD make_matrix(std::uint64_t seed) {
  util::Rng rng(seed);
  return coo_to_csr(testing::random_coo(rng, 300, 300, 3600));
}

std::vector<double> random_x(const CsrD& a, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  return x;
}

EngineConfig test_config(const std::string& durable_dir = "") {
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.batch_window = 1;
  cfg.queue_capacity = 1024;
  cfg.plan_cache_bytes = 64u << 20;
  cfg.autotune = 0;
  cfg.retry.max_attempts = 2;
  cfg.retry.backoff_base_ms = 0.5;
  cfg.retry.backoff_max_ms = 8.0;
  cfg.breaker.failure_threshold = 0;
  cfg.breaker.cooldown_ms = 250.0;
  cfg.shed_watermark = 0.0;
  cfg.max_failovers = 8;
  cfg.degrade_cache_frac = 0.25;
  cfg.degrade_recovery = 0;
  cfg.chaos_enabled = 0;
  cfg.durable_snapshot_every = 0;  // snapshots only where the test asks
  cfg.durable_warm = 0;
  cfg.durable_fsync = 0;
  if (!durable_dir.empty()) {
    cfg.durable_dir = durable_dir;
    cfg.durable_enabled = 1;
  } else {
    cfg.durable_enabled = 0;
  }
  return cfg;
}

std::vector<double> direct_spmv(const CsrD& a, const std::vector<double>& x) {
  vgpu::Device dev;
  std::vector<double> y(static_cast<std::size_t>(a.num_rows));
  core::merge::spmv(dev, a, x, y);
  return y;
}

// ---------------------------------------------------------------------------
// Registration recovery + bitwise replay.

TEST(ServeDurable, RecoverReplaysRegistrationsWithBitwiseAnswers) {
  CleanDurableEnv env;
  TempDir dir;
  const auto a = make_matrix(1), b = make_matrix(2);
  std::vector<std::vector<double>> before;
  MatrixHandle ha{}, hb{};
  {
    Engine engine(test_config(dir.path()));
    ha = engine.register_matrix(a);
    hb = engine.register_matrix(b);
    for (int j = 0; j < 4; ++j) {
      const auto& m = (j % 2) ? b : a;
      const auto h = (j % 2) ? hb : ha;
      before.push_back(engine.submit_spmv(h, random_x(m, 50 + j)).get().y);
    }
    // No shutdown snapshot: drop the engine after shutdown() so recovery
    // exercises pure WAL replay.
    engine.shutdown();
  }
  auto recovered = Engine::recover(dir.path(), test_config(dir.path()));
  const auto& ri = recovered->recovery_info();
  EXPECT_TRUE(ri.attempted);
  EXPECT_GE(ri.wal_records_replayed + ri.snapshot_matrices, 2ll);
  EXPECT_TRUE(recovered->has_matrix(ha));
  EXPECT_TRUE(recovered->has_matrix(hb));
  EXPECT_GE(recovered->matrix_version(ha), 1u);
  for (int j = 0; j < 4; ++j) {
    const auto& m = (j % 2) ? b : a;
    const auto h = (j % 2) ? hb : ha;
    EXPECT_EQ(recovered->submit_spmv(h, random_x(m, 50 + j)).get().y,
              before[static_cast<std::size_t>(j)])
        << "request " << j << " diverged across recovery";
  }
  recovered->shutdown();
}

TEST(ServeDurable, ReregistrationVersionsSurviveRecovery) {
  CleanDurableEnv env;
  TempDir dir;
  const auto a = make_matrix(3);
  MatrixHandle h{};
  {
    Engine engine(test_config(dir.path()));
    h = engine.register_matrix(a);
    EXPECT_EQ(engine.matrix_version(h), 1u);
    EXPECT_EQ(engine.register_matrix(a), h) << "same structure, same handle";
    EXPECT_EQ(engine.register_matrix(a), h);
    EXPECT_EQ(engine.matrix_version(h), 3u);
    engine.shutdown();
  }
  auto recovered = Engine::recover(dir.path(), test_config(dir.path()));
  EXPECT_TRUE(recovered->has_matrix(h));
  EXPECT_EQ(recovered->matrix_version(h), 3u)
      << "the acked version must survive, not just the matrix";
  recovered->shutdown();
}

TEST(ServeDurable, GracefulShutdownSnapshotCoversTheLog) {
  CleanDurableEnv env;
  TempDir dir;
  const auto a = make_matrix(4);
  {
    Engine engine(test_config(dir.path()));
    engine.register_matrix(a);
    engine.shutdown();  // writes the final snapshot
  }
  auto recovered = Engine::recover(dir.path(), test_config(dir.path()));
  const auto& ri = recovered->recovery_info();
  EXPECT_TRUE(ri.snapshot_loaded);
  EXPECT_EQ(ri.snapshot_matrices, 1);
  EXPECT_EQ(ri.wal_records_replayed, 0)
      << "a graceful shutdown leaves nothing to replay";
  recovered->shutdown();
}

TEST(ServeDurable, WarmRecoveryPrebuildsPlans) {
  CleanDurableEnv env;
  TempDir dir;
  const auto a = make_matrix(5);
  std::vector<double> before;
  {
    auto cfg = test_config(dir.path());
    Engine engine(cfg);
    const auto h = engine.register_matrix(a);
    before = engine.submit_spmv(h, random_x(a, 9)).get().y;  // warms the plan
    engine.shutdown();  // snapshot records the warm set
  }
  auto cfg = test_config(dir.path());
  cfg.durable_warm = 1;
  auto recovered = Engine::recover(dir.path(), cfg);
  // The eager rebuild itself shows up as the cache's only miss; the
  // first post-restart request must then hit.
  const auto s0 = recovered->stats();
  EXPECT_GT(s0.plan_cache.misses, 0)
      << "warm recovery must rebuild the plan before the first request";
  const auto h = recovered->register_matrix(a);  // same handle, version bump
  EXPECT_EQ(recovered->submit_spmv(h, random_x(a, 9)).get().y, before);
  recovered->shutdown();
  const auto s1 = recovered->stats();
  EXPECT_GT(s1.plan_cache.hits, s0.plan_cache.hits)
      << "the first post-recovery request must hit the rebuilt plan";
  EXPECT_EQ(s1.plan_cache.misses, s0.plan_cache.misses)
      << "the first post-recovery request must not pay a cache miss";
}

// ---------------------------------------------------------------------------
// Torn-tail tolerance at the engine level.

TEST(ServeDurable, TornFinalWalRecordRecoversThePrefix) {
  CleanDurableEnv env;
  TempDir dir;
  const auto a = make_matrix(6), b = make_matrix(7);
  // Build the pre-crash state directly with the WAL writer: a graceful
  // engine shutdown would snapshot and truncate the log, and this test
  // needs a log with records and a torn tail (i.e., a genuine crash).
  const MatrixHandle ha = pattern_fingerprint(a);
  const MatrixHandle hb = pattern_fingerprint(b);
  {
    durability::WalWriter w(dir.path() + "/wal.bin", /*fsync=*/false,
                            /*valid_bytes=*/0, /*last_seq=*/0);
    w.append_register(ha, 1, a);
    w.append_register(hb, 1, b);
  }
  {  // Tear the final WAL record.
    const std::string wal = dir.path() + "/wal.bin";
    const auto size = std::filesystem::file_size(wal);
    std::filesystem::resize_file(wal, size - 7);
  }
  auto recovered = Engine::recover(dir.path(), test_config(dir.path()));
  const auto& ri = recovered->recovery_info();
  EXPECT_TRUE(ri.torn_tail_dropped);
  EXPECT_EQ(ri.wal_records_replayed, 1);
  EXPECT_TRUE(recovered->has_matrix(ha));
  EXPECT_FALSE(recovered->has_matrix(hb))
      << "the torn (never-acknowledged) registration must not resurrect";
  // The surviving tenant still answers, bitwise.
  EXPECT_EQ(recovered->submit_spmv(ha, random_x(a, 3)).get().y,
            direct_spmv(a, random_x(a, 3)));
  recovered->shutdown();
}

TEST(ServeDurable, MidLogCorruptionRefusesToServe) {
  CleanDurableEnv env;
  TempDir dir;
  const auto a = make_matrix(8), b = make_matrix(9);
  {
    durability::WalWriter w(dir.path() + "/wal.bin", false, 0, 0);
    w.append_register(pattern_fingerprint(a), 1, a);
    w.append_register(pattern_fingerprint(b), 1, b);
  }
  {  // Flip a payload byte of the FIRST record: not a torn tail.
    const std::string wal = dir.path() + "/wal.bin";
    std::fstream f(wal, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char c = 0;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(static_cast<char>(c ^ 0x20));
  }
  EXPECT_THROW(Engine::recover(dir.path(), test_config(dir.path())),
               RecoveryError);
}

// ---------------------------------------------------------------------------
// Snapshot during chaos: durability composes with the fault layer.

TEST(ServeDurable, SnapshotDuringChaosRecoversBitwise) {
  CleanDurableEnv env;
  TempDir dir;
  const auto a = make_matrix(10);
  std::vector<std::vector<double>> before;
  MatrixHandle h{};
  {
    auto cfg = test_config(dir.path());
    cfg.chaos = vgpu::ChaosSchedule::parse("lose:dev=0@launch=2");
    cfg.chaos_enabled = 1;
    Engine engine(cfg);
    h = engine.register_matrix(a);
    std::vector<std::future<SpmvResult>> futures;
    for (int j = 0; j < 6; ++j) {
      futures.push_back(engine.submit_spmv(h, random_x(a, 70 + j)));
      if (j == 2) engine.snapshot_now();  // snapshot while faults fly
    }
    for (auto& f : futures) before.push_back(f.get().y);
    const auto s_before_shutdown = engine.stats();
    engine.shutdown();
    EXPECT_GE(s_before_shutdown.failovers, 0);  // chaos may or may not land
  }
  auto recovered = Engine::recover(dir.path(), test_config(dir.path()));
  EXPECT_TRUE(recovered->has_matrix(h));
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(recovered->submit_spmv(h, random_x(a, 70 + j)).get().y,
              before[static_cast<std::size_t>(j)])
        << "chaos-era answer " << j << " diverged across recovery";
  }
  recovered->shutdown();
}

// ---------------------------------------------------------------------------
// Strict knob parsing.

TEST(ServeDurable, ServeKnobsRejectGarbageAndOutOfRange) {
  CleanDurableEnv env;
  {
    EnvVarGuard g("MPS_SERVE_THREADS", "banana");
    EXPECT_THROW(EngineConfig::from_env(), InvalidInputError);
  }
  {
    EnvVarGuard g("MPS_SERVE_THREADS", "-3");
    EXPECT_THROW(EngineConfig::from_env(), InvalidInputError);
  }
  {
    EnvVarGuard g("MPS_SERVE_QUEUE_CAP", "0");
    EXPECT_THROW(EngineConfig::from_env(), InvalidInputError);
  }
  {
    EnvVarGuard g("MPS_SERVE_BATCH_WINDOW", "1e9");
    EXPECT_THROW(EngineConfig::from_env(), InvalidInputError);
  }
  {
    EnvVarGuard g("MPS_SERVE_SHED_WATERMARK", "half");
    EXPECT_THROW(EngineConfig::from_env(), InvalidInputError);
  }
  {
    EnvVarGuard g("MPS_SERVE_PLAN_CACHE_MB", "  ");
    EXPECT_THROW(EngineConfig::from_env(), InvalidInputError);
  }
}

TEST(ServeDurable, DurableKnobsRejectGarbageAndContradiction) {
  CleanDurableEnv env;
  {
    EnvVarGuard g("MPS_DURABLE_SNAPSHOT_EVERY", "-1");
    EXPECT_THROW(EngineConfig::from_env(), InvalidInputError);
  }
  {
    EnvVarGuard g("MPS_DURABLE_WARM", "yes");
    EXPECT_THROW(EngineConfig::from_env(), InvalidInputError);
  }
  {  // durability demanded but no directory anywhere
    auto cfg = EngineConfig::from_env();
    cfg.durable_enabled = 1;
    cfg.durable_dir.clear();
    EXPECT_THROW(Engine{cfg}, InvalidInputError);
  }
  {
    EnvVarGuard g("MPS_DURABLE_CRASH", "wal-mid");  // missing :n
    EXPECT_THROW(durability::arm_crash_from_env(), InvalidInputError);
  }
  {
    EnvVarGuard g("MPS_DURABLE_CRASH", "nowhere:3");
    EXPECT_THROW(durability::arm_crash_from_env(), InvalidInputError);
  }
  {
    EnvVarGuard g("MPS_DURABLE_CRASH", "wal-mid:0");
    EXPECT_THROW(durability::arm_crash_from_env(), InvalidInputError);
  }
}

TEST(ServeDurable, DurabilityOffByDefaultAndStatsSaySo) {
  CleanDurableEnv env;
  const auto a = make_matrix(11);
  Engine engine(test_config());
  const auto h = engine.register_matrix(a);
  EXPECT_EQ(engine.submit_spmv(h, random_x(a, 1)).get().y,
            direct_spmv(a, random_x(a, 1)));
  engine.shutdown();
  const auto s = engine.stats();
  EXPECT_FALSE(s.durability.enabled);
  EXPECT_FALSE(engine.recovery_info().attempted);
  EXPECT_EQ(s.durability.wal_appends, 0);
}

}  // namespace
}  // namespace mps::serve
