// Unit tests for src/util.
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/common.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mps {
namespace {

TEST(Common, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div<std::size_t>(1'000'000'007, 128), 7812501u);
}

TEST(Common, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
}

TEST(Common, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(2), 1);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(4), 2);
  EXPECT_EQ(log2_ceil(5), 3);
  EXPECT_EQ(log2_ceil(1u << 20), 20);
  EXPECT_EQ(log2_ceil((1u << 20) + 1), 21);
}

TEST(Common, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0);
  EXPECT_EQ(log2_floor(2), 1);
  EXPECT_EQ(log2_floor(3), 1);
  EXPECT_EQ(log2_floor(1024), 10);
}

TEST(Common, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(Common, CheckThrows) {
  EXPECT_THROW(MPS_CHECK(false), mps::InvalidInputError);
  EXPECT_NO_THROW(MPS_CHECK(true));
  EXPECT_THROW(MPS_CHECK_MSG(1 == 2, "context"), mps::InvalidInputError);
}

TEST(Rng, Deterministic) {
  util::Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange) {
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  util::Rng rng(7);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(10)];
  for (int b : buckets) {
    EXPECT_GT(b, n / 10 - 1000);
    EXPECT_LT(b, n / 10 + 1000);
  }
}

TEST(Rng, ZipfRangeAndSkew) {
  util::Rng rng(11);
  long long ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto z = rng.zipf(1000, 1.2);
    ASSERT_GE(z, 1u);
    ASSERT_LE(z, 1000u);
    if (z == 1) ++ones;
  }
  // Zipf(1.2) puts a large mass on rank 1.
  EXPECT_GT(ones, n / 10);
}

TEST(Rng, NormalMoments) {
  util::Rng rng(3);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mu = sum / n;
  const double var = sum2 / n - mu * mu;
  EXPECT_NEAR(mu, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, SampleDistinctSorted) {
  util::Rng rng(5);
  for (std::uint32_t n : {10u, 100u, 5000u}) {
    for (std::uint32_t k : {0u, 1u, n / 2, n}) {
      auto s = util::sample_distinct_sorted(rng, n, k);
      ASSERT_EQ(s.size(), k);
      for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_LT(s[i], n);
        if (i) EXPECT_LT(s[i - 1], s[i]);
      }
    }
  }
}

TEST(Stats, MeanStd) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(util::mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(util::stddev(xs), 2.0);  // classic population-std example
}

TEST(Stats, PearsonPerfect) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{3, 5, 7, 9, 11};
  EXPECT_NEAR(util::pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(util::pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_EQ(util::pearson(xs, ys), 0.0);
  EXPECT_EQ(util::pearson(std::vector<double>{1.0}, std::vector<double>{2.0}), 0.0);
}

TEST(Stats, LeastSquares) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{1, 3, 5, 7};
  const auto fit = util::least_squares(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r, 1.0, 1e-12);
}

TEST(Stats, Summarize) {
  const std::vector<double> xs{3, 1, 2};
  const auto s = util::summarize(xs);
  EXPECT_EQ(s.n, 3u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(Stats, PercentileEmptyIsZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(util::percentile(empty, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(util::percentile(empty, 99.0), 0.0);
}

TEST(Stats, PercentileSingleSample) {
  // One sample IS every percentile — including the clamped extremes.
  const std::vector<double> one{3.5};
  for (const double p : {-10.0, 0.0, 50.0, 99.0, 100.0, 250.0}) {
    EXPECT_DOUBLE_EQ(util::percentile(one, p), 3.5);
  }
}

TEST(Stats, PercentileInterpolatesAndClamps) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 150.0), 4.0);  // p clamped to 100
  EXPECT_DOUBLE_EQ(util::percentile(xs, -5.0), 1.0);   // p clamped to 0
}

TEST(Stats, PercentileDuplicateHeavy) {
  // The serving-latency regime: ties dominate, a few outliers at the top.
  // Percentiles must stay on real sample values (no interpolation drift
  // across the flat region) and p99 must reach into the outlier tail.
  std::vector<double> xs(1000, 1.0);
  xs[997] = xs[998] = xs[999] = 100.0;
  EXPECT_DOUBLE_EQ(util::percentile(xs, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 99.0), 1.0);  // rank 989.01: flat
  EXPECT_DOUBLE_EQ(util::percentile(xs, 99.8), 100.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100.0), 100.0);
  const std::vector<double> all_same(4096, 7.0);
  EXPECT_DOUBLE_EQ(util::percentile(all_same, 99.0), 7.0);
}

TEST(Table, RenderAligns) {
  util::Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1.50"});
  t.add_row({"b", "22.25"});
  const std::string out = t.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, Csv) {
  util::Table t;
  t.set_header({"a", "b"});
  t.add_row({"x,y", "2"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
}

TEST(Table, Fmt) {
  EXPECT_EQ(util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(util::fmt_int(-42), "-42");
  EXPECT_EQ(util::fmt_sep(4344765), "4 344 765");
  EXPECT_EQ(util::fmt_sep(123), "123");
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("MPS_TEST_ENV_D", "2.5", 1);
  ::setenv("MPS_TEST_ENV_I", "17", 1);
  ::setenv("MPS_TEST_ENV_BAD", "zzz", 1);
  EXPECT_DOUBLE_EQ(util::env_double("MPS_TEST_ENV_D", 1.0), 2.5);
  EXPECT_EQ(util::env_int("MPS_TEST_ENV_I", 3), 17);
  EXPECT_DOUBLE_EQ(util::env_double("MPS_TEST_ENV_BAD", 1.5), 1.5);
  EXPECT_EQ(util::env_int("MPS_TEST_ENV_MISSING", 9), 9);
  EXPECT_EQ(util::env_string("MPS_TEST_ENV_MISSING", "dflt"), "dflt");
}

}  // namespace
}  // namespace mps
