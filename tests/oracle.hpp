#pragma once
// Shared differential-oracle helpers: every "run op, compare against the
// sequential baseline" assertion the merge suites (and the autotune /
// CMRS suites) make, in one place.
//
// The oracle contract: for a given matrix the sequential reference
// defines THE answer; a parallel scheme passes by matching it —
// elementwise within 1e-11 for SpMV (expect_spmv_matches), structurally
// canonical + value-compared for SpAdd/SpGEMM.  The fuzz regimes
// enumerate the structural extremes (uniform, banded, power-law,
// hypersparse, near-dense, rectangular) every sweep in this repo probes.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/seq.hpp"
#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps::testing {

/// Merge SpMV vs. the sequential reference on a deterministic random x
/// (seeded from the matrix): elementwise within 1e-11.
inline void expect_spmv_matches(vgpu::Device& dev, const sparse::CsrD& a,
                                const core::merge::SpmvConfig& cfg = {}) {
  util::Rng rng(static_cast<std::uint64_t>(a.nnz()) + 7);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows), -999.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows), -999.0);
  baselines::seq::spmv(a, x, y_ref);
  const auto stats = core::merge::spmv(dev, a, x, y, cfg);
  EXPECT_GE(stats.modeled_ms(), 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], y_ref[i], 1e-11) << "row " << i;
  }
}

/// Merge SpAdd vs. the sequential reference: canonical output, equal
/// structure and values.
inline void expect_spadd_matches(vgpu::Device& dev, const sparse::CooD& a,
                                 const sparse::CooD& b) {
  const auto ref =
      baselines::seq::spadd(sparse::coo_to_csr(a), sparse::coo_to_csr(b));
  sparse::CooD c;
  const auto stats = core::merge::spadd(dev, a, b, c);
  EXPECT_GE(stats.modeled_ms, 0.0);
  EXPECT_TRUE(c.is_canonical());
  const auto cmp = sparse::compare_csr(sparse::coo_to_csr(c), ref);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

/// Merge SpGEMM vs. Gustavson: valid structure, the paper's product
/// count, values within (1e-9 rel, 1e-11 abs).
inline void expect_spgemm_matches(vgpu::Device& dev, const sparse::CsrD& a,
                                  const sparse::CsrD& b,
                                  const core::merge::SpgemmConfig& cfg = {}) {
  const auto ref = baselines::seq::spgemm(a, b);
  sparse::CsrD c;
  const auto stats = core::merge::spgemm(dev, a, b, c, cfg);
  EXPECT_TRUE(c.is_valid());
  EXPECT_EQ(stats.num_products, baselines::seq::spgemm_num_products(a, b));
  const auto cmp = sparse::compare_csr(c, ref, 1e-9, 1e-11);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

/// The structural regimes of tests/fuzz_ops_test.cpp.
enum class Regime {
  kUniform,
  kBanded,
  kPowerLaw,
  kHypersparse,
  kNearDense,
  kRectWide,
  kRectTall,
};

inline constexpr Regime kAllRegimes[] = {
    Regime::kUniform,   Regime::kBanded,    Regime::kPowerLaw,
    Regime::kHypersparse, Regime::kNearDense, Regime::kRectWide,
    Regime::kRectTall,
};

inline constexpr std::uint64_t kFuzzSeeds[] = {1, 2, 3};

inline std::string regime_name(Regime r) {
  switch (r) {
    case Regime::kUniform: return "uniform";
    case Regime::kBanded: return "banded";
    case Regime::kPowerLaw: return "powerlaw";
    case Regime::kHypersparse: return "hypersparse";
    case Regime::kNearDense: return "neardense";
    case Regime::kRectWide: return "rectwide";
    case Regime::kRectTall: return "recttall";
  }
  return "?";
}

inline sparse::CsrD make_regime_matrix(Regime r, std::uint64_t seed) {
  util::Rng rng(seed);
  switch (r) {
    case Regime::kUniform:
      return sparse::coo_to_csr(testing::random_coo(rng, 400, 400, 4800));
    case Regime::kBanded:
      return workloads::fem_banded(500, 18.0, 4.0, seed);
    case Regime::kPowerLaw:
      return testing::random_powerlaw_csr(rng, 500, 500, 6.0);
    case Regime::kHypersparse:
      return sparse::coo_to_csr(testing::random_coo(rng, 2000, 2000, 300));
    case Regime::kNearDense:
      return sparse::coo_to_csr(testing::random_coo(rng, 60, 60, 2800));
    case Regime::kRectWide:
      return sparse::coo_to_csr(testing::random_coo(rng, 64, 3000, 2500));
    case Regime::kRectTall:
      return sparse::coo_to_csr(testing::random_coo(rng, 3000, 64, 2500));
  }
  return {};
}

/// Deterministic probe vector for bitwise sweeps (seeded like
/// expect_spmv_matches so regimes exercise varied values).
inline std::vector<double> oracle_x(const sparse::CsrD& a) {
  util::Rng rng(static_cast<std::uint64_t>(a.nnz()) + 7);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  return x;
}

/// Bitwise equality of two double vectors (NaN-safe, sign-of-zero
/// sensitive) — the assertion behind every "schemes agree exactly"
/// claim.
inline ::testing::AssertionResult bitwise_equal(
    const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "first divergence at [" << i << "]: " << a[i] << " vs "
               << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace mps::testing
