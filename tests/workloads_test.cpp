// Statistical fidelity of the Table II surrogate generators.
#include <gtest/gtest.h>

#include "sparse/stats.hpp"
#include "workloads/generators.hpp"
#include "workloads/suite.hpp"

namespace mps::workloads {
namespace {

TEST(Generators, DenseBlock) {
  const auto a = dense_block(50, 40);
  EXPECT_TRUE(a.is_valid());
  EXPECT_EQ(a.nnz(), 2000);
  const auto s = sparse::compute_stats(a);
  EXPECT_DOUBLE_EQ(s.avg_row, 40.0);
  EXPECT_DOUBLE_EQ(s.std_row, 0.0);
}

TEST(Generators, FemBandedMomentsAndBand) {
  const auto a = fem_banded(20000, 60.0, 12.0, 7);
  EXPECT_TRUE(a.is_valid());
  const auto s = sparse::compute_stats(a);
  EXPECT_NEAR(s.avg_row, 60.0, 3.0);
  EXPECT_NEAR(s.std_row, 12.0, 4.0);
  // Band structure: columns stay near the diagonal.
  long long far = 0;
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      if (std::abs(a.col[static_cast<std::size_t>(k)] - r) > 2000) ++far;
    }
  }
  EXPECT_LT(static_cast<double>(far) / static_cast<double>(a.nnz()), 0.01);
}

TEST(Generators, FixedStencilZeroVariance) {
  const auto a = fixed_stencil(5000, 39, 3);
  const auto s = sparse::compute_stats(a);
  EXPECT_DOUBLE_EQ(s.avg_row, 39.0);
  EXPECT_DOUBLE_EQ(s.std_row, 0.0);
  EXPECT_TRUE(a.is_valid());
}

TEST(Generators, PowerlawHasHeavyTail) {
  const auto a = powerlaw_web(30000, 0.015, 1.5, 2, 11);
  EXPECT_TRUE(a.is_valid());
  const auto s = sparse::compute_stats(a);
  EXPECT_GT(s.std_row, 2.0 * s.avg_row);  // Webbase: std 25 vs avg 3
  EXPECT_LT(s.avg_row, 8.0);
  EXPECT_GT(s.max_row, 50);
}

TEST(Generators, LpRectHeavyRows) {
  const auto a = lp_rect(400, 100000, 2633.0, 4209.0, 13);
  EXPECT_TRUE(a.is_valid());
  const auto s = sparse::compute_stats(a);
  EXPECT_NEAR(s.avg_row, 2633.0, 800.0);
  EXPECT_GT(s.std_row, s.avg_row * 0.8);  // std exceeds the mean
}

TEST(Generators, Poisson2d) {
  const auto a = poisson2d(10, 10);
  EXPECT_TRUE(a.is_valid());
  EXPECT_EQ(a.num_rows, 100);
  EXPECT_EQ(a.nnz(), 5 * 100 - 4 * 10);  // 460: boundary rows lose neighbours
  // Diagonally dominant M-matrix structure.
  for (index_t r = 0; r < a.num_rows; ++r) {
    double diag = 0, off = 0;
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      if (a.col[static_cast<std::size_t>(k)] == r)
        diag = a.val[static_cast<std::size_t>(k)];
      else
        off += std::abs(a.val[static_cast<std::size_t>(k)]);
    }
    EXPECT_GE(diag, off);
  }
}

TEST(Generators, Poisson3d27) {
  const auto a = poisson3d27(6);
  EXPECT_TRUE(a.is_valid());
  EXPECT_EQ(a.num_rows, 216);
  const auto s = sparse::compute_stats(a);
  EXPECT_EQ(s.max_row, 27);
}

TEST(Generators, Deterministic) {
  const auto a = fem_banded(2000, 40, 10, 42);
  const auto b = fem_banded(2000, 40, 10, 42);
  EXPECT_EQ(a.col, b.col);
  EXPECT_EQ(a.val, b.val);
  const auto c = fem_banded(2000, 40, 10, 43);
  EXPECT_NE(a.val, c.val);
}

TEST(Suite, FourteenEntriesInPaperOrder) {
  const auto names = suite_names();
  ASSERT_EQ(names.size(), 14u);
  EXPECT_EQ(names.front(), "Dense");
  EXPECT_EQ(names[6], "QCD");
  EXPECT_EQ(names.back(), "LP");
}

TEST(Suite, ScaledEntriesMatchTargets) {
  const double scale = 0.02;
  for (const auto& name : {"Protein", "Economics", "QCD"}) {
    const auto e = suite_entry(name, scale);
    EXPECT_TRUE(e.matrix.is_valid()) << name;
    const auto s = sparse::compute_stats(e.matrix);
    EXPECT_NEAR(static_cast<double>(s.rows),
                static_cast<double>(e.paper_rows) * scale,
                static_cast<double>(e.paper_rows) * scale * 0.01 + 9.0)
        << name;
    EXPECT_NEAR(s.avg_row, e.paper_avg, e.paper_avg * 0.12 + 0.5) << name;
  }
}

TEST(Suite, LpIsTransposedForSpgemm) {
  const auto e = suite_entry("LP", 0.01);
  EXPECT_TRUE(e.spgemm_transpose);
  EXPECT_GT(e.matrix.num_cols, e.matrix.num_rows);
  const auto d = suite_entry("Dense", 0.01);
  EXPECT_FALSE(d.spgemm_transpose);
}

TEST(Suite, NativeProductEstimates) {
  const auto e = suite_entry("Dense", 0.01);
  EXPECT_DOUBLE_EQ(e.native_products_estimate, 8e9);  // 2000 * 2000^2
  const auto p = suite_entry("Protein", 0.01);
  EXPECT_NEAR(p.native_products_estimate, 4'344'765.0 * 119.31, 1e6);
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(suite_entry("NotAMatrix", 1.0), mps::InvalidInputError);
}

}  // namespace
}  // namespace mps::workloads
