// Figure-level smoke tests: run the bench suite runners at a tiny scale
// and assert the paper's HEADLINE claims hold — so a regression in any
// kernel's cost model or correctness that would change the reproduction's
// conclusions fails CI, not just the eyeball check of bench output.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "suite_runners.hpp"
#include "workloads/suite.hpp"

namespace mps {
namespace {

constexpr double kScale = 0.01;

TEST(FigureSmoke, Fig5And6SpmvClaims) {
  // SpMV needs a bigger instance than the other figures: at tiny scales
  // fixed launch overheads mask the irregularity effects the claim is
  // about (exactly as they would on real hardware).
  const auto rows = bench::run_spmv_suite(workloads::paper_suite(0.1));
  ASSERT_EQ(rows.size(), 14u);

  analysis::CorrelationSeries merge{"merge", {}, {}};
  analysis::CorrelationSeries rowwise{"rowwise", {}, {}};
  double merge_webbase = 0, best_other_webbase = 0, merge_lp = 0, best_other_lp = 0;
  for (const auto& r : rows) {
    merge.work.push_back(static_cast<double>(r.nnz));
    merge.time_ms.push_back(r.merge_ms);
    rowwise.work.push_back(static_cast<double>(r.nnz));
    rowwise.time_ms.push_back(r.rowwise_ms);
    if (r.name == "Webbase") {
      merge_webbase = r.merge_ms;
      best_other_webbase = std::min(r.cusp_ms, r.rowwise_ms);
    }
    if (r.name == "LP") {
      merge_lp = r.merge_ms;
      best_other_lp = std::min(r.cusp_ms, r.rowwise_ms);
    }
  }
  // Fig 5: merge markedly better on the irregular Webbase and LP.
  EXPECT_LT(merge_webbase, best_other_webbase);
  EXPECT_LT(merge_lp, best_other_lp * 1.05);
  // Fig 6: merge's time-vs-nnz correlation is near-perfect and at least
  // as high as the row-wise scheme's.
  const double rho_merge = analysis::correlate(merge).rho;
  const double rho_rowwise = analysis::correlate(rowwise).rho;
  EXPECT_GT(rho_merge, 0.97);
  EXPECT_GE(rho_merge, rho_rowwise - 1e-9);
}

TEST(FigureSmoke, Fig7And8SpaddClaims) {
  const auto rows = bench::run_spadd_suite(workloads::paper_suite(kScale));
  analysis::CorrelationSeries merge{"merge", {}, {}};
  for (const auto& r : rows) {
    merge.work.push_back(static_cast<double>(r.work));
    merge.time_ms.push_back(r.merge_ms);
    // Fig 7: the global-sort scheme is the slowest everywhere.
    EXPECT_GT(r.cusp_ms, r.merge_ms) << r.name;
    EXPECT_GT(r.cusp_ms, r.rowwise_ms) << r.name;
  }
  // Fig 8: rho_merge ~= 1.
  EXPECT_GT(analysis::correlate(merge).rho, 0.99);
}

TEST(FigureSmoke, Fig9And10SpgemmClaims) {
  const auto rows = bench::run_spgemm_suite(workloads::paper_suite(kScale));
  analysis::CorrelationSeries merge{"merge", {}, {}};
  for (const auto& r : rows) {
    if (r.name == "Dense") {
      // Fig 9: the sort-based schemes exceed device memory on Dense.
      EXPECT_TRUE(r.merge_oom);
      EXPECT_TRUE(r.cusp_oom);
      continue;
    }
    EXPECT_FALSE(r.merge_oom) << r.name;
    merge.work.push_back(static_cast<double>(r.products));
    merge.time_ms.push_back(r.merge_ms);
    // Fig 9: merge sustains its advantage over Cusp on every instance.
    EXPECT_LT(r.merge_ms, r.cusp_ms * 1.05) << r.name;
  }
  // Fig 10: rho_merge ~= 0.98.
  EXPECT_GT(analysis::correlate(merge).rho, 0.9);
}

TEST(FigureSmoke, SuiteRunnersValidateResults) {
  // The runners cross-check every scheme against the sequential reference
  // internally (they exit on mismatch); reaching here means all three
  // kernels produced correct results on all 14 matrices.
  const auto suite = workloads::paper_suite(kScale);
  EXPECT_EQ(bench::run_spmv_suite(suite).size(), suite.size());
}

}  // namespace
}  // namespace mps
