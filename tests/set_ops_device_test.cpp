// Tests for the device-wide balanced-path set operations (paper Fig 2's
// union and the other multiset ops).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "primitives/set_ops.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {
namespace {

template <typename K>
std::vector<K> sorted_random(util::Rng& rng, std::size_t n, std::uint64_t range) {
  std::vector<K> v(n);
  for (auto& x : v) x = static_cast<K>(rng.uniform(range));
  std::sort(v.begin(), v.end());
  return v;
}

template <typename K>
std::vector<K> std_op(const std::vector<K>& a, const std::vector<K>& b, SetOp op) {
  std::vector<K> out;
  switch (op) {
    case SetOp::kUnion:
      std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
      break;
    case SetOp::kIntersection:
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(out));
      break;
    case SetOp::kDifference:
      std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
      break;
    case SetOp::kSymmetricDifference:
      std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                    std::back_inserter(out));
      break;
  }
  return out;
}

class DeviceSetOpTest
    : public ::testing::TestWithParam<std::tuple<SetOp, std::size_t, std::uint64_t>> {};

TEST_P(DeviceSetOpTest, Keys32MatchesStd) {
  const auto [op, n, range] = GetParam();
  vgpu::Device dev;
  util::Rng rng(n * 3 + range);
  const auto a = sorted_random<std::uint32_t>(rng, n, range);
  const auto b = sorted_random<std::uint32_t>(rng, n / 2 + 1, range);
  auto res = device_set_op_keys<std::uint32_t>(dev, a, b, op);
  EXPECT_EQ(res.keys, std_op(a, b, op));
  EXPECT_TRUE(res.vals.empty());
  EXPECT_GT(res.modeled_ms, 0.0);
}

TEST_P(DeviceSetOpTest, Keys64MatchesStd) {
  const auto [op, n, range] = GetParam();
  vgpu::Device dev;
  util::Rng rng(n * 7 + range);
  const auto a = sorted_random<std::uint64_t>(rng, n, range << 20);
  const auto b = sorted_random<std::uint64_t>(rng, n, range << 20);
  auto res = device_set_op_keys<std::uint64_t>(dev, a, b, op);
  EXPECT_EQ(res.keys, std_op(a, b, op));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeviceSetOpTest,
    ::testing::Combine(::testing::Values(SetOp::kUnion, SetOp::kIntersection,
                                         SetOp::kDifference,
                                         SetOp::kSymmetricDifference),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{1000}, std::size_t{20000}),
                       ::testing::Values(std::uint64_t{4}, std::uint64_t{1000})));

TEST(DeviceSetOp, PairsCombineValues) {
  vgpu::Device dev;
  const std::vector<std::uint64_t> ka{1, 3, 5};
  const std::vector<double> va{10, 30, 50};
  const std::vector<std::uint64_t> kb{3, 5, 7};
  const std::vector<double> vb{1, 2, 3};
  auto res = device_set_op<std::uint64_t, double>(
      dev, ka, va, kb, vb, SetOp::kUnion,
      [](double x, double y) { return x + y; });
  EXPECT_EQ(res.keys, (std::vector<std::uint64_t>{1, 3, 5, 7}));
  EXPECT_EQ(res.vals, (std::vector<double>{10, 31, 52, 3}));
}

TEST(DeviceSetOp, PairsIntersectionCombines) {
  vgpu::Device dev;
  const std::vector<std::uint64_t> ka{1, 3, 5};
  const std::vector<double> va{10, 30, 50};
  const std::vector<std::uint64_t> kb{3, 5, 7};
  const std::vector<double> vb{1, 2, 3};
  auto res = device_set_op<std::uint64_t, double>(
      dev, ka, va, kb, vb, SetOp::kIntersection,
      [](double x, double y) { return x * y; });
  EXPECT_EQ(res.keys, (std::vector<std::uint64_t>{3, 5}));
  EXPECT_EQ(res.vals, (std::vector<double>{30, 100}));
}

TEST(DeviceSetOp, LargeUnionWithManyDuplicates) {
  vgpu::Device dev;
  util::Rng rng(21);
  const auto a = sorted_random<std::uint32_t>(rng, 100000, 500);  // ~200 dups/key
  const auto b = sorted_random<std::uint32_t>(rng, 80000, 500);
  auto res = device_set_op_keys<std::uint32_t>(dev, a, b, SetOp::kUnion);
  EXPECT_EQ(res.keys, std_op(a, b, SetOp::kUnion));
}

TEST(DeviceSetOp, BalancedWorkYieldsFlatCost) {
  // The modeled cost of a union must track |A|+|B|, not duplication
  // structure: same totals with wildly different key ranges should cost
  // within a few percent of each other (the paper's predictability claim).
  vgpu::Device dev;
  util::Rng rng(22);
  auto cost = [&](std::uint64_t range) {
    const auto a = sorted_random<std::uint32_t>(rng, 200000, range);
    const auto b = sorted_random<std::uint32_t>(rng, 200000, range);
    return device_set_op_keys<std::uint32_t>(dev, a, b, SetOp::kUnion).modeled_ms;
  };
  const double spread_out = cost(1u << 30);  // nearly no duplicates
  const double clumped = cost(16);           // enormous duplicate runs
  EXPECT_LT(std::abs(spread_out - clumped) / spread_out, 0.15);
}

}  // namespace
}  // namespace mps::primitives
