// Tests for the shard subsystem (docs/sharding.md): merge-staircase row
// partitioning, strict device-spec parsing, and the differential oracle
// for distributed execution — sharded SpMV/SpMM/SpAdd/SpGEMM must be
// BITWISE identical to the single-device merge kernels across every
// structural regime, fleet width, and heterogeneous weighting, because
// row-block sharding with a monotone halo remap never regroups a
// floating-point sum.  The one deliberate exception, the 2D dense-row
// split, is pinned to "deterministic but not bitwise".
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmm.hpp"
#include "core/spmv.hpp"
#include "oracle.hpp"
#include "serve/engine.hpp"
#include "shard/exec.hpp"
#include "shard/partition.hpp"
#include "shard/sharded_matrix.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "util/error.hpp"
#include "vgpu/device.hpp"
#include "vgpu/device_set.hpp"

namespace mps::shard {
namespace {

using mps::testing::bitwise_equal;
using mps::testing::kAllRegimes;
using mps::testing::kFuzzSeeds;
using mps::testing::make_regime_matrix;
using mps::testing::oracle_x;
using mps::testing::regime_name;
using mps::testing::Regime;

// A small homogeneous fleet the oracle sweeps run on.  Raw pointers into
// the set match shard::spmv's `devices` span (fleet slot ordinals).
struct Fleet {
  explicit Fleet(const std::string& spec, int n)
      : set(vgpu::parse_device_spec(spec, n)) {
    for (std::size_t i = 0; i < set.size(); ++i) ptrs.push_back(&set.device(i));
    for (std::size_t i = 0; i < set.size(); ++i) {
      ordinals.push_back(static_cast<int>(i));
      weights.push_back(set.weight(i));
    }
  }
  vgpu::DeviceSet set;
  std::vector<vgpu::Device*> ptrs;
  std::vector<int> ordinals;
  std::vector<double> weights;
};

std::vector<double> uniform_weights(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

/// Bitwise CSR equality: identical structure AND identical value bits.
::testing::AssertionResult csr_bitwise_equal(const sparse::CsrD& a,
                                             const sparse::CsrD& b) {
  if (a.num_rows != b.num_rows || a.num_cols != b.num_cols) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (a.row_offsets != b.row_offsets) {
    return ::testing::AssertionFailure() << "row_offsets differ";
  }
  if (a.col != b.col) return ::testing::AssertionFailure() << "cols differ";
  if (a.val.size() != b.val.size()) {
    return ::testing::AssertionFailure() << "nnz mismatch";
  }
  if (!a.val.empty() &&
      std::memcmp(a.val.data(), b.val.data(),
                  a.val.size() * sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "value bits differ";
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// partition_rows: merge-staircase cuts.

TEST(Partition, CoversAllRowsContiguously) {
  const auto a = make_regime_matrix(Regime::kUniform, 1);
  const auto blocks = partition_rows(a.row_offsets, 4);
  ASSERT_EQ(blocks.size(), 4u);
  index_t next = 0;
  long long nnz = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.row_begin, next);
    EXPECT_LE(b.row_begin, b.row_end);
    next = b.row_end;
    nnz += b.nnz;
    EXPECT_EQ(b.nnz, a.row_offsets[static_cast<std::size_t>(b.row_end)] -
                         a.row_offsets[static_cast<std::size_t>(b.row_begin)]);
  }
  EXPECT_EQ(next, a.num_rows);
  EXPECT_EQ(nnz, static_cast<long long>(a.nnz()));
}

TEST(Partition, BalancesDiagonalSpansOnSkewedMatrices) {
  // Power-law rows are exactly the case equal-row-count splitting loses:
  // the staircase cut must keep (rows + nnz) spans balanced to within
  // one row's worth of work.
  const auto a = make_regime_matrix(Regime::kPowerLaw, 2);
  long long max_row = 0;
  for (index_t r = 0; r < a.num_rows; ++r) {
    max_row = std::max(max_row, static_cast<long long>(a.row_length(r)));
  }
  const auto blocks = partition_rows(a.row_offsets, 4);
  const long long total = a.num_rows + static_cast<long long>(a.nnz());
  for (const auto& b : blocks) {
    const long long span = (b.row_end - b.row_begin) + b.nnz;
    EXPECT_LE(span, total / 4 + max_row + 2)
        << "block [" << b.row_begin << "," << b.row_end << ") is a straggler";
  }
}

TEST(Partition, WeightedCutsScaleSpans) {
  const auto a = make_regime_matrix(Regime::kUniform, 3);
  const double weights[] = {3.0, 1.0};
  const auto blocks = partition_rows(a.row_offsets, weights);
  ASSERT_EQ(blocks.size(), 2u);
  const double span0 =
      static_cast<double>((blocks[0].row_end - blocks[0].row_begin) +
                          blocks[0].nnz);
  const double span1 =
      static_cast<double>((blocks[1].row_end - blocks[1].row_begin) +
                          blocks[1].nnz);
  // 3:1 split within row-granularity slack.
  EXPECT_NEAR(span0 / (span0 + span1), 0.75, 0.02);
}

TEST(Partition, MoreBlocksThanRowsYieldsEmptyBlocks) {
  sparse::CsrD eye(3, 3);
  for (int r = 0; r < 3; ++r) {
    eye.col.push_back(r);
    eye.val.push_back(1.0);
    eye.row_offsets[static_cast<std::size_t>(r) + 1] = r + 1;
  }
  const auto blocks = partition_rows(eye.row_offsets, 8);
  ASSERT_EQ(blocks.size(), 8u);
  index_t next = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.row_begin, next);
    next = b.row_end;
  }
  EXPECT_EQ(next, eye.num_rows);
}

// ---------------------------------------------------------------------------
// parse_device_spec: strict grammar.

TEST(DeviceSpec, EmptyDefaultsToTitanAndBareProfileBroadcasts) {
  const auto all_titan = vgpu::parse_device_spec("", 3);
  ASSERT_EQ(all_titan.size(), 3u);
  for (const auto& e : all_titan) EXPECT_EQ(e.profile, "titan");
  const auto broadcast = vgpu::parse_device_spec("fast", 4);
  ASSERT_EQ(broadcast.size(), 4u);
  for (const auto& e : broadcast) EXPECT_EQ(e.profile, "fast");
}

TEST(DeviceSpec, CountedEntriesExpandInOrder) {
  const auto fleet = vgpu::parse_device_spec("fast*2,slow,titan", 4);
  ASSERT_EQ(fleet.size(), 4u);
  EXPECT_EQ(fleet[0].profile, "fast");
  EXPECT_EQ(fleet[1].profile, "fast");
  EXPECT_EQ(fleet[2].profile, "slow");
  EXPECT_EQ(fleet[3].profile, "titan");
  EXPECT_GT(vgpu::throughput_weight(fleet[0].props),
            vgpu::throughput_weight(fleet[2].props));
}

TEST(DeviceSpec, StrictParsingNamesTheSource) {
  EXPECT_THROW(vgpu::parse_device_spec("warp*2", 2, "MPS_SERVE_DEVICE_SPEC"),
               InvalidInputError);
  EXPECT_THROW(vgpu::parse_device_spec("fast*2,slow", 4), InvalidInputError);
  EXPECT_THROW(vgpu::parse_device_spec("fast*x", 2), InvalidInputError);
  EXPECT_THROW(vgpu::parse_device_spec("fast*0", 2), InvalidInputError);
  try {
    vgpu::parse_device_spec("warp", 1, "MPS_SERVE_DEVICE_SPEC");
    FAIL() << "expected InvalidInputError";
  } catch (const InvalidInputError& e) {
    EXPECT_NE(std::string(e.what()).find("MPS_SERVE_DEVICE_SPEC"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// ShardedMatrix structure.

TEST(ShardedMatrix, ShardsPartitionRowsWithMonotoneHalos) {
  for (const Regime r : kAllRegimes) {
    const auto a = make_regime_matrix(r, 1);
    Fleet fleet("", 3);
    const ShardedMatrix sm(a, fleet.ordinals, uniform_weights(3));
    index_t next = 0;
    for (const auto& s : sm.shards()) {
      EXPECT_EQ(s.row_begin, next) << regime_name(r);
      next = s.row_end;
      EXPECT_TRUE(s.local.is_valid()) << regime_name(r);
      EXPECT_EQ(s.local.num_rows, s.row_end - s.row_begin);
      EXPECT_EQ(s.local.num_cols, static_cast<index_t>(s.xmap.size()));
      for (std::size_t l = 1; l < s.xmap.size(); ++l) {
        ASSERT_LT(s.xmap[l - 1], s.xmap[l])
            << regime_name(r) << ": halo map must be strictly ascending";
      }
      if (!s.xmap.empty()) {
        EXPECT_GE(s.xmap.front(), 0);
        EXPECT_LT(s.xmap.back(), a.num_cols);
      }
    }
    EXPECT_EQ(next, a.num_rows) << regime_name(r);
    EXPECT_GT(sm.halo_bytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Differential oracle: sharded execution vs the flat merge kernels.

TEST(ShardExecOracle, SpmvBitwiseAcrossRegimesAndSeeds) {
  for (const Regime r : kAllRegimes) {
    for (const std::uint64_t seed : kFuzzSeeds) {
      const auto a = make_regime_matrix(r, seed);
      const auto x = oracle_x(a);
      vgpu::Device flat_dev;
      std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows), -1.0);
      core::merge::spmv(flat_dev, a, x, y_ref);
      for (const int width : {2, 3}) {
        Fleet fleet("", width);
        const ShardedMatrix sm(a, fleet.ordinals,
                               uniform_weights(fleet.ordinals.size()));
        std::vector<double> y(static_cast<std::size_t>(a.num_rows), -2.0);
        const auto stats = spmv(sm, fleet.ptrs, x, y);
        EXPECT_TRUE(bitwise_equal(y, y_ref))
            << regime_name(r) << " seed " << seed << " width " << width;
        EXPECT_GT(stats.modeled_ms, 0.0);
        EXPECT_GE(stats.sum_ms, stats.modeled_ms);
      }
    }
  }
}

TEST(ShardExecOracle, SpmvBitwiseOnHeterogeneousFleet) {
  // Weighted cuts move the row boundaries, never the per-row sums.
  for (const Regime r : kAllRegimes) {
    const auto a = make_regime_matrix(r, 2);
    const auto x = oracle_x(a);
    vgpu::Device flat_dev;
    std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows), -1.0);
    core::merge::spmv(flat_dev, a, x, y_ref);
    Fleet fleet("fast,slow,titan", 3);
    const ShardedMatrix sm(a, fleet.ordinals, fleet.weights);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows), -2.0);
    spmv(sm, fleet.ptrs, x, y);
    EXPECT_TRUE(bitwise_equal(y, y_ref)) << regime_name(r);
  }
}

TEST(ShardExecOracle, SpmvPlanReuseBitwise) {
  const auto a = make_regime_matrix(Regime::kPowerLaw, 1);
  const auto x = oracle_x(a);
  Fleet fleet("", 3);
  const ShardedMatrix sm(a, fleet.ordinals, uniform_weights(3));
  std::vector<double> y_oneshot(static_cast<std::size_t>(a.num_rows), -1.0);
  spmv(sm, fleet.ptrs, x, y_oneshot);
  std::vector<std::shared_ptr<const core::merge::SpmvPlan>> plans;
  for (std::size_t i = 0; i < sm.shards().size(); ++i) {
    const auto& s = sm.shards()[i];
    if (s.local.num_rows == 0) {
      plans.push_back(nullptr);
      continue;
    }
    plans.push_back(std::make_shared<const core::merge::SpmvPlan>(
        core::merge::spmv_plan(*fleet.ptrs[static_cast<std::size_t>(s.device)],
                               s.local)));
  }
  std::vector<double> y_planned(static_cast<std::size_t>(a.num_rows), -2.0);
  spmv_execute(sm, fleet.ptrs, plans, x, y_planned);
  EXPECT_TRUE(bitwise_equal(y_planned, y_oneshot));
}

TEST(ShardExecOracle, SpmmBitwise) {
  const index_t num_vectors = 3;
  for (const Regime r : {Regime::kUniform, Regime::kPowerLaw,
                         Regime::kRectWide, Regime::kRectTall}) {
    const auto a = make_regime_matrix(r, 1);
    util::Rng rng(99);
    std::vector<double> x_block(
        static_cast<std::size_t>(a.num_cols) * num_vectors);
    for (auto& v : x_block) v = rng.uniform_double(-1, 1);
    vgpu::Device flat_dev;
    std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows) *
                              num_vectors);
    core::merge::spmm(flat_dev, a, x_block, num_vectors, y_ref);
    Fleet fleet("", 3);
    const ShardedMatrix sm(a, fleet.ordinals, uniform_weights(3));
    std::vector<double> y(static_cast<std::size_t>(a.num_rows) * num_vectors,
                          -2.0);
    spmm(sm, fleet.ptrs, x_block, num_vectors, y);
    EXPECT_TRUE(bitwise_equal(y, y_ref)) << regime_name(r);
  }
}

TEST(ShardExecOracle, SpaddBitwiseAcrossRegimes) {
  for (const Regime r : kAllRegimes) {
    for (const std::uint64_t seed : kFuzzSeeds) {
      const auto a = make_regime_matrix(r, seed);
      const auto b = make_regime_matrix(r, seed + 17);
      ASSERT_EQ(a.num_rows, b.num_rows);
      ASSERT_EQ(a.num_cols, b.num_cols);
      vgpu::Device flat_dev;
      sparse::CsrD c_ref;
      core::merge::spadd_csr(flat_dev, a, b, c_ref);
      Fleet fleet("", 2);
      sparse::CsrD c;
      const auto stats =
          spadd(a, b, fleet.ptrs, fleet.ordinals, fleet.weights, c);
      EXPECT_TRUE(csr_bitwise_equal(c, c_ref))
          << regime_name(r) << " seed " << seed;
      EXPECT_EQ(stats.shards, 2);
    }
  }
}

TEST(ShardExecOracle, SpgemmBitwiseAcrossRegimes) {
  for (const Regime r : {Regime::kUniform, Regime::kBanded, Regime::kPowerLaw,
                         Regime::kHypersparse, Regime::kNearDense}) {
    for (const std::uint64_t seed : kFuzzSeeds) {
      const auto a = make_regime_matrix(r, seed);
      const auto b = make_regime_matrix(r, seed + 31);
      vgpu::Device flat_dev;
      sparse::CsrD c_ref;
      core::merge::spgemm(flat_dev, a, b, c_ref);
      Fleet fleet("", 3);
      sparse::CsrD c;
      spgemm(a, b, fleet.ptrs, fleet.ordinals, fleet.weights, c);
      EXPECT_TRUE(csr_bitwise_equal(c, c_ref))
          << regime_name(r) << " seed " << seed;
    }
  }
}

TEST(ShardExecOracle, RectangularSpgemmBitwise) {
  const auto a = make_regime_matrix(Regime::kRectWide, 1);   // 64 x 3000
  const auto b = make_regime_matrix(Regime::kRectTall, 1);   // 3000 x 64
  vgpu::Device flat_dev;
  sparse::CsrD c_ref;
  core::merge::spgemm(flat_dev, a, b, c_ref);
  Fleet fleet("", 2);
  sparse::CsrD c;
  spgemm(a, b, fleet.ptrs, fleet.ordinals, fleet.weights, c);
  EXPECT_TRUE(csr_bitwise_equal(c, c_ref));
}

// ---------------------------------------------------------------------------
// Degenerate shapes.

TEST(ShardExecOracle, MoreDevicesThanRowsLeavesEmptyShardsHarmless) {
  sparse::CsrD eye(3, 3);
  for (int r = 0; r < 3; ++r) {
    eye.col.push_back(r);
    eye.val.push_back(2.0 + r);
    eye.row_offsets[static_cast<std::size_t>(r) + 1] = r + 1;
  }
  Fleet fleet("", 8);
  const ShardedMatrix sm(eye, fleet.ordinals, uniform_weights(8));
  ASSERT_EQ(sm.shards().size(), 8u);
  const std::vector<double> x = {1.0, 10.0, 100.0};
  std::vector<double> y(3, -1.0);
  spmv(sm, fleet.ptrs, x, y);
  EXPECT_EQ(y[0], 2.0);
  EXPECT_EQ(y[1], 30.0);
  EXPECT_EQ(y[2], 400.0);
}

TEST(ShardExecOracle, SingleRowAndSingleColumnMatrices) {
  util::Rng rng(5);
  // 1 x N: one row, every shard but one empty.
  sparse::CsrD wide(1, 500);
  for (index_t c = 0; c < 500; c += 3) {
    wide.col.push_back(c);
    wide.val.push_back(rng.uniform_double(-1, 1));
  }
  wide.row_offsets[1] = static_cast<index_t>(wide.col.size());
  // N x 1: every row length <= 1.
  sparse::CsrD tall(500, 1);
  for (index_t r = 0; r < 500; ++r) {
    if (r % 2 == 0) {
      tall.col.push_back(0);
      tall.val.push_back(rng.uniform_double(-1, 1));
    }
    tall.row_offsets[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(tall.col.size());
  }
  Fleet fleet("", 4);
  for (const sparse::CsrD* m : {&wide, &tall}) {
    const auto x = oracle_x(*m);
    vgpu::Device flat_dev;
    std::vector<double> y_ref(static_cast<std::size_t>(m->num_rows), -1.0);
    core::merge::spmv(flat_dev, *m, x, y_ref);
    const ShardedMatrix sm(*m, fleet.ordinals, uniform_weights(4));
    std::vector<double> y(static_cast<std::size_t>(m->num_rows), -2.0);
    spmv(sm, fleet.ptrs, x, y);
    EXPECT_TRUE(bitwise_equal(y, y_ref)) << m->num_rows << "x" << m->num_cols;
  }
}

// ---------------------------------------------------------------------------
// 2D dense-row split: deterministic, close, NOT bitwise-guaranteed.

TEST(ShardExec2D, DenseRowSplitIsDeterministicAndAccurate) {
  util::Rng rng(11);
  auto coo = testing::random_coo(rng, 300, 300, 2000);
  // One pathological dense row on top of the uniform background.
  for (index_t c = 0; c < 300; ++c) {
    coo.row.push_back(7);
    coo.col.push_back(c);
    coo.val.push_back(rng.uniform_double(-1, 1));
  }
  coo.canonicalize();
  const auto a = sparse::coo_to_csr(coo);
  const auto x = oracle_x(a);
  vgpu::Device flat_dev;
  std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows), -1.0);
  core::merge::spmv(flat_dev, a, x, y_ref);

  Fleet fleet("", 3);
  ShardOptions opt;
  opt.split_2d_nnz = 128;
  const ShardedMatrix sm(a, fleet.ordinals, uniform_weights(3), opt);
  ASSERT_FALSE(sm.dense_rows().empty());
  EXPECT_EQ(sm.dense_rows()[0].row, 7);

  std::vector<double> y1(static_cast<std::size_t>(a.num_rows), -2.0);
  std::vector<double> y2(static_cast<std::size_t>(a.num_rows), -3.0);
  spmv(sm, fleet.ptrs, x, y1);
  spmv(sm, fleet.ptrs, x, y2);
  EXPECT_TRUE(bitwise_equal(y1, y2)) << "2D split must be run-to-run stable";
  for (std::size_t i = 0; i < y1.size(); ++i) {
    ASSERT_NEAR(y1[i], y_ref[i], 1e-9) << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Engine integration: sharded serving stats and strict env knobs.

// Scoped setenv/unsetenv (same idiom as tests/serve_chaos_test.cpp).
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvVarGuard(const EnvVarGuard&) = delete;
  EnvVarGuard& operator=(const EnvVarGuard&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

serve::EngineConfig sharded_config(int devices) {
  serve::EngineConfig cfg;
  cfg.threads = 2;
  cfg.batch_window = 1;
  cfg.queue_capacity = 256;
  cfg.plan_cache_bytes = 64u << 20;
  cfg.autotune = 0;
  cfg.devices = devices;
  cfg.shard_min_nnz = 1024;
  return cfg;
}

TEST(EngineSharded, ServesBitwiseAnswersAndPerDeviceStats) {
  EnvVarGuard no_chaos("MPS_CHAOS_SCRIPT", nullptr);
  const auto a = make_regime_matrix(Regime::kUniform, 1);  // 4800 nnz
  const auto x = oracle_x(a);
  vgpu::Device flat_dev;
  std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows), -1.0);
  core::merge::spmv(flat_dev, a, x, y_ref);

  serve::Engine engine(sharded_config(2));
  const auto h = engine.register_matrix(a);
  for (int i = 0; i < 4; ++i) {
    auto y = engine.submit_spmv(h, x).get().y;
    EXPECT_TRUE(bitwise_equal(y, y_ref)) << "request " << i;
  }
  engine.shutdown();

  const auto stats = engine.stats();
  ASSERT_EQ(stats.devices.size(), 2u);
  EXPECT_EQ(stats.sharded_matrices, 1);
  long long dispatched = 0;
  long long shards = 0;
  for (const auto& d : stats.devices) {
    EXPECT_EQ(d.profile, "titan");
    EXPECT_GT(d.weight, 0.0);
    dispatched += d.dispatched;
    shards += d.shards_hosted;
  }
  EXPECT_GE(dispatched, 4);  // every request leases all shard devices
  EXPECT_EQ(shards, 2);
}

TEST(EngineSharded, LegacyModeReportsOneSlotPerWorker) {
  EnvVarGuard no_chaos("MPS_CHAOS_SCRIPT", nullptr);
  serve::EngineConfig cfg = sharded_config(0);  // legacy: no fleet knob
  cfg.threads = 3;
  serve::Engine engine(cfg);
  const auto a = make_regime_matrix(Regime::kUniform, 2);
  const auto h = engine.register_matrix(a);
  engine.submit_spmv(h, oracle_x(a)).get();
  engine.shutdown();
  const auto stats = engine.stats();
  ASSERT_EQ(stats.devices.size(), 3u);
  EXPECT_EQ(stats.sharded_matrices, 0);
  for (const auto& d : stats.devices) EXPECT_EQ(d.profile, "titan");
}

TEST(EngineSharded, StrictEnvKnobsRejectMalformedValues) {
  const auto expect_ctor_throws = [] {
    serve::EngineConfig cfg;  // sentinels: resolve everything from env
    cfg.threads = 1;
    EXPECT_THROW(serve::Engine engine(cfg), InvalidInputError);
  };
  {
    EnvVarGuard placement("MPS_SHARD_PLACEMENT", "sideways");
    expect_ctor_throws();
  }
  {
    EnvVarGuard hot("MPS_SHARD_REPLICATE_HOT", "1.5");
    expect_ctor_throws();
  }
  {
    EnvVarGuard devices("MPS_SERVE_DEVICES", "2");
    EnvVarGuard spec("MPS_SERVE_DEVICE_SPEC", "warp*2");
    expect_ctor_throws();
  }
  {
    EnvVarGuard devices("MPS_SERVE_DEVICES", "4");
    EnvVarGuard spec("MPS_SERVE_DEVICE_SPEC", "fast*2,slow");  // expands to 3
    expect_ctor_throws();
  }
  {
    EnvVarGuard devices("MPS_SERVE_DEVICES", "999");  // above the 256 cap
    expect_ctor_throws();
  }
}

}  // namespace
}  // namespace mps::shard
