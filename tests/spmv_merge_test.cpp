// Merge-path SpMV: correctness against the sequential reference across
// structural extremes, plus the flat-decomposition cost property.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/seq.hpp"
#include "core/spmv.hpp"
#include "oracle.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"

namespace mps {
namespace {

using core::merge::spmv;
using core::merge::SpmvConfig;
using sparse::coo_to_csr;
using testing::expect_spmv_matches;
using testing::random_coo;

TEST(MergeSpmv, PaperExample) {
  vgpu::Device dev;
  const auto a = coo_to_csr(testing::paper_a());
  std::vector<double> x{1, 2, 3, 4}, y(4);
  spmv(dev, a, x, y);
  EXPECT_EQ(y, (std::vector<double>{10, 290, 200, 120}));
}

TEST(MergeSpmv, RandomShapes) {
  vgpu::Device dev;
  util::Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    const auto rows = static_cast<index_t>(1 + rng.uniform(3000));
    const auto cols = static_cast<index_t>(1 + rng.uniform(3000));
    const int nnz = static_cast<int>(rng.uniform(20000));
    expect_spmv_matches(dev, coo_to_csr(random_coo(rng, rows, cols, nnz)));
  }
}

TEST(MergeSpmv, SingleGiantRow) {
  // One row spanning many CTAs exercises the carry chain.
  vgpu::Device dev;
  sparse::CooD a(3, 50000);
  util::Rng rng(13);
  for (index_t c = 0; c < 50000; c += 2) a.push_back(1, c, rng.uniform_double(-1, 1));
  a.canonicalize();
  expect_spmv_matches(dev, coo_to_csr(a));
}

TEST(MergeSpmv, EmptyRowsUseCompaction) {
  vgpu::Device dev;
  sparse::CooD a(1000, 100);
  util::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    // Only even rows populated: 50% empty rows.
    a.push_back(static_cast<index_t>(rng.uniform(500) * 2),
                static_cast<index_t>(rng.uniform(100)), rng.uniform_double(-1, 1));
  }
  a.canonicalize();
  const auto csr = coo_to_csr(a);
  ASSERT_TRUE(csr.has_empty_rows());
  util::Rng xr(1);
  std::vector<double> x(100), y_ref(1000), y(1000);
  for (auto& v : x) v = xr.uniform_double(-1, 1);
  baselines::seq::spmv(csr, x, y_ref);
  const auto stats = spmv(dev, csr, x, y);
  EXPECT_TRUE(stats.used_compaction);
  EXPECT_GT(stats.compact_ms, 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(MergeSpmv, ForcedCompactionOnDenseRows) {
  vgpu::Device dev;
  util::Rng rng(19);
  SpmvConfig cfg;
  cfg.force_compaction = true;
  expect_spmv_matches(dev, coo_to_csr(random_coo(rng, 300, 300, 5000)), cfg);
}

TEST(MergeSpmv, AllRowsEmptyAndEmptyMatrix) {
  vgpu::Device dev;
  sparse::CsrD zero(100, 50);
  std::vector<double> x(50, 1.0), y(100, 7.0);
  spmv(dev, zero, x, y);
  for (double v : y) EXPECT_EQ(v, 0.0);
  sparse::CsrD none(0, 0);
  std::vector<double> e;
  EXPECT_NO_THROW(spmv(dev, none, e, e));
}

TEST(MergeSpmv, TileSizeSweep) {
  vgpu::Device dev;
  util::Rng rng(23);
  const auto a = coo_to_csr(random_coo(rng, 500, 500, 8000));
  for (int items : {1, 3, 7, 16}) {
    SpmvConfig cfg;
    cfg.items_per_thread = items;
    expect_spmv_matches(dev, a, cfg);
  }
}

TEST(MergeSpmv, PartitionCountsMatchTile) {
  vgpu::Device dev;
  util::Rng rng(29);
  const auto a = coo_to_csr(random_coo(rng, 2000, 2000, 50000));
  std::vector<double> x(2000, 1.0), y(2000);
  SpmvConfig cfg;
  const auto stats = spmv(dev, a, x, y, cfg);
  EXPECT_EQ(stats.num_ctas,
            static_cast<int>(ceil_div<std::size_t>(
                static_cast<std::size_t>(a.nnz()),
                static_cast<std::size_t>(cfg.tile()))));
}

TEST(MergeSpmv, FlatCostTracksWorkNotStructure) {
  // The headline property: cost per nonzero is (nearly) independent of the
  // row-length distribution.
  vgpu::Device dev;
  util::Rng rng(31);
  const index_t rows = 4000;
  const auto uniform = coo_to_csr(random_coo(rng, rows, rows, 60000));
  const auto skewed = testing::random_powerlaw_csr(rng, rows, rows, 15.0);
  std::vector<double> x(static_cast<std::size_t>(rows), 1.0);
  std::vector<double> y(static_cast<std::size_t>(rows));
  const double per_nnz_uniform =
      spmv(dev, uniform, x, y).modeled_ms() / static_cast<double>(uniform.nnz());
  const double per_nnz_skewed =
      spmv(dev, skewed, x, y).modeled_ms() / static_cast<double>(skewed.nnz());
  const double ratio = per_nnz_skewed / per_nnz_uniform;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

}  // namespace
}  // namespace mps
