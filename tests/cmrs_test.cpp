// CMRS (Compressed Multirow Storage): converter round-trips are bitwise,
// degenerate shapes survive, and warp-per-strip SpMV is bitwise-identical
// to the sequential reference across every fuzz regime — CMRS keeps
// elements in CSR order, so it shares the canonical accumulation order.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baselines/formats.hpp"
#include "baselines/seq.hpp"
#include "oracle.hpp"
#include "sparse/cmrs.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "util/error.hpp"
#include "vgpu/device.hpp"

namespace mps {
namespace {

using sparse::cmrs_to_csr;
using sparse::coo_to_csr;
using sparse::csr_to_cmrs;
using testing::bitwise_equal;
using testing::kAllRegimes;
using testing::kFuzzSeeds;
using testing::make_regime_matrix;
using testing::oracle_x;
using testing::Regime;
using testing::regime_name;

void expect_roundtrip_bitwise(const sparse::CsrD& a, index_t strip_height = -1) {
  const auto c = csr_to_cmrs(a, strip_height);
  EXPECT_EQ(c.num_rows, a.num_rows);
  EXPECT_EQ(c.num_cols, a.num_cols);
  // col/val are carried in CSR element order — bitwise identity, not
  // just numerical equality.
  EXPECT_EQ(c.col, a.col);
  ASSERT_EQ(c.val.size(), a.val.size());
  if (!a.val.empty()) {
    EXPECT_EQ(0, std::memcmp(c.val.data(), a.val.data(),
                             a.val.size() * sizeof(double)));
  }
  const auto back = cmrs_to_csr(c);
  EXPECT_EQ(back.num_rows, a.num_rows);
  EXPECT_EQ(back.num_cols, a.num_cols);
  EXPECT_EQ(back.row_offsets, a.row_offsets);
  EXPECT_EQ(back.col, a.col);
  if (!a.val.empty()) {
    EXPECT_EQ(0, std::memcmp(back.val.data(), a.val.data(),
                             a.val.size() * sizeof(double)));
  }
}

TEST(Cmrs, RoundTripAcrossRegimes) {
  for (const Regime r : kAllRegimes) {
    for (const std::uint64_t seed : kFuzzSeeds) {
      SCOPED_TRACE(regime_name(r) + "/" + std::to_string(seed));
      expect_roundtrip_bitwise(make_regime_matrix(r, seed));
    }
  }
}

TEST(Cmrs, RoundTripExplicitStripHeights) {
  const auto a = make_regime_matrix(Regime::kPowerLaw, 1);
  for (const index_t h : {index_t{1}, index_t{2}, index_t{7}, index_t{256}}) {
    SCOPED_TRACE(h);
    expect_roundtrip_bitwise(a, h);
  }
}

TEST(Cmrs, EmptyMatrix) {
  sparse::CsrD a(0, 0);
  a.row_offsets = {0};
  const auto c = csr_to_cmrs(a);
  EXPECT_EQ(c.num_strips(), 0);
  EXPECT_TRUE(c.col.empty());
  const auto back = cmrs_to_csr(c);
  EXPECT_EQ(back.num_rows, 0);
  EXPECT_EQ(back.nnz(), 0);
}

TEST(Cmrs, AllEmptyRows) {
  sparse::CsrD a(1000, 50);
  a.row_offsets.assign(1001, 0);
  expect_roundtrip_bitwise(a);
  const auto c = csr_to_cmrs(a);
  EXPECT_GT(c.num_strips(), 0);
  vgpu::Device dev;
  std::vector<double> x(50, 1.0), y(1000, -999.0);
  baselines::formats::spmv_cmrs(dev, c, x, y);
  for (double v : y) EXPECT_EQ(v, 0.0);  // every row written (zeroed)
}

TEST(Cmrs, SingleDenseRow) {
  sparse::CooD coo(3, 50000);
  util::Rng rng(13);
  for (index_t col = 0; col < 50000; col += 2) {
    coo.push_back(1, col, rng.uniform_double(-1, 1));
  }
  coo.canonicalize();
  const auto a = coo_to_csr(coo);
  expect_roundtrip_bitwise(a);

  // The dense row vastly exceeds any strip height: one warp streams the
  // whole row, still in ascending-k order.
  vgpu::Device dev;
  const auto c = csr_to_cmrs(a);
  const auto x = oracle_x(a);
  std::vector<double> y_ref(3, -999.0), y(3, -999.0);
  baselines::seq::spmv(a, x, y_ref);
  baselines::formats::spmv_cmrs(dev, c, x, y);
  EXPECT_TRUE(bitwise_equal(y, y_ref));
}

TEST(Cmrs, StripHeightTagRangeGuard) {
  sparse::CsrD a(2, 2);
  a.row_offsets = {0, 1, 2};
  a.col = {0, 1};
  a.val = {1.0, 2.0};
  EXPECT_THROW(csr_to_cmrs(a, 70000), Error);
}

TEST(Cmrs, DefaultStripHeightIsClamped) {
  EXPECT_EQ(sparse::cmrs_default_strip_height(0.0), 128);
  EXPECT_EQ(sparse::cmrs_default_strip_height(1.0), 128);
  EXPECT_EQ(sparse::cmrs_default_strip_height(1e9), 1);
  EXPECT_LE(sparse::cmrs_default_strip_height(0.1), 256);
}

class CmrsSpmvTest
    : public ::testing::TestWithParam<std::tuple<Regime, std::uint64_t>> {
 protected:
  vgpu::Device dev_;
};

TEST_P(CmrsSpmvTest, BitIdenticalToSequential) {
  const auto [regime, seed] = GetParam();
  const auto a = make_regime_matrix(regime, seed);
  const auto x = oracle_x(a);
  std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows), -999.0);
  baselines::seq::spmv(a, x, y_ref);
  // Default strip height plus extremes: the result may never depend on
  // the strip geometry, only the cost model does.
  for (const index_t h : {index_t{-1}, index_t{1}, index_t{256}}) {
    SCOPED_TRACE(h);
    const auto c = csr_to_cmrs(a, h);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows), -999.0);
    const auto s = baselines::formats::spmv_cmrs(dev_, c, x, y);
    EXPECT_GE(s.modeled_ms, 0.0);
    EXPECT_TRUE(bitwise_equal(y, y_ref));
  }
}

std::string cmrs_param_name(
    const ::testing::TestParamInfo<std::tuple<Regime, std::uint64_t>>& info) {
  return regime_name(std::get<0>(info.param)) +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CmrsSpmvTest,
    ::testing::Combine(::testing::ValuesIn(testing::kAllRegimes),
                       ::testing::ValuesIn(testing::kFuzzSeeds)),
    cmrs_param_name);

}  // namespace
}  // namespace mps
