// Merge-path SpMM (blocked SpMV) tests.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/seq.hpp"
#include "core/spmm.hpp"
#include "core/spmv.hpp"
#include "sparse/convert.hpp"
#include "sparse/stats.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps {
namespace {

using sparse::coo_to_csr;
using testing::random_coo;

void expect_spmm_matches(vgpu::Device& dev, const sparse::CsrD& a, index_t nv,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t nvs = static_cast<std::size_t>(nv);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols) * nvs);
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows) * nvs, -7.0);
  core::merge::spmm(dev, a, x, nv, y);
  // Column j of Y must equal A times column j of X.
  std::vector<double> xj(static_cast<std::size_t>(a.num_cols));
  std::vector<double> yj(static_cast<std::size_t>(a.num_rows));
  for (index_t j = 0; j < nv; ++j) {
    for (index_t c = 0; c < a.num_cols; ++c) {
      xj[static_cast<std::size_t>(c)] =
          x[static_cast<std::size_t>(c) * nvs + static_cast<std::size_t>(j)];
    }
    baselines::seq::spmv(a, xj, yj);
    for (index_t r = 0; r < a.num_rows; ++r) {
      ASSERT_NEAR(y[static_cast<std::size_t>(r) * nvs + static_cast<std::size_t>(j)],
                  yj[static_cast<std::size_t>(r)], 1e-11)
          << "r=" << r << " j=" << j;
    }
  }
}

class SpmmTest : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SpmmTest, MatchesColumnwiseSpmv) {
  const auto [rows, cols, nnz, nv] = GetParam();
  vgpu::Device dev;
  util::Rng rng(static_cast<std::uint64_t>(rows + cols * 3 + nnz + nv));
  const auto a = coo_to_csr(random_coo(rng, static_cast<index_t>(rows),
                                       static_cast<index_t>(cols), nnz));
  expect_spmm_matches(dev, a, static_cast<index_t>(nv),
                      static_cast<std::uint64_t>(nnz + nv));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmmTest,
    ::testing::Values(std::make_tuple(1, 1, 1, 1), std::make_tuple(100, 80, 600, 1),
                      std::make_tuple(100, 80, 600, 4),
                      std::make_tuple(1000, 500, 8000, 8),
                      std::make_tuple(50, 50, 100, 17),
                      std::make_tuple(2000, 2000, 30000, 3)));

TEST(Spmm, SingleVectorMatchesSpmv) {
  vgpu::Device dev;
  util::Rng rng(41);
  const auto a = coo_to_csr(random_coo(rng, 800, 700, 9000));
  std::vector<double> x(700);
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  std::vector<double> y1(800), y2(800);
  core::merge::spmv(dev, a, x, y1);
  core::merge::spmm(dev, a, x, 1, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) ASSERT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Spmm, GiantRowCarry) {
  vgpu::Device dev;
  sparse::CooD a(3, 20000);
  util::Rng rng(43);
  for (index_t c = 0; c < 20000; ++c) a.push_back(1, c, rng.uniform_double(-1, 1));
  a.canonicalize();
  expect_spmm_matches(dev, coo_to_csr(a), 4, 44);
}

TEST(Spmm, EmptyRowsAndEmptyMatrix) {
  vgpu::Device dev;
  sparse::CooD a(100, 50);
  a.push_back(0, 0, 2.0);
  a.push_back(99, 49, 3.0);
  expect_spmm_matches(dev, coo_to_csr(a), 5, 45);
  sparse::CsrD zero(10, 10);
  std::vector<double> x(20, 1.0), y(20, 9.0);
  core::merge::spmm(dev, zero, x, 2, y);
  for (double v : y) EXPECT_EQ(v, 0.0);
}

TEST(Spmm, CheaperThanRepeatedSpmv) {
  // The point of SpMM: one pass over A for all vectors.
  vgpu::Device dev;
  util::Rng rng(47);
  const auto a = coo_to_csr(random_coo(rng, 5000, 5000, 100000));
  const index_t nv = 8;
  std::vector<double> x(static_cast<std::size_t>(a.num_cols) * nv, 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows) * nv);
  const double t_spmm = core::merge::spmm(dev, a, x, nv, y).modeled_ms;
  std::vector<double> x1(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y1(static_cast<std::size_t>(a.num_rows));
  const double t_spmv = core::merge::spmv(dev, a, x1, y1).modeled_ms();
  EXPECT_LT(t_spmm, 0.8 * static_cast<double>(nv) * t_spmv);
}

TEST(Workloads, RmatGraph) {
  const auto g = workloads::rmat(12, 8, 0.57, 0.19, 0.19, 7);
  EXPECT_TRUE(g.is_valid());
  EXPECT_EQ(g.num_rows, 4096);
  // Dedup keeps nnz below the raw edge count but in its vicinity.
  EXPECT_GT(g.nnz(), 20000);
  EXPECT_LE(g.nnz(), 8 * 4096);
  // Skew: the max degree far exceeds the mean (power-law-ish).
  const auto s = sparse::compute_stats(g);
  EXPECT_GT(s.max_row, 5 * s.avg_row);
  // Deterministic in the seed.
  const auto g2 = workloads::rmat(12, 8, 0.57, 0.19, 0.19, 7);
  EXPECT_EQ(g.col, g2.col);
  const auto g3 = workloads::rmat(12, 8, 0.57, 0.19, 0.19, 8);
  EXPECT_NE(g.val, g3.val);
}

TEST(Workloads, RmatRejectsBadParams) {
  EXPECT_THROW(workloads::rmat(0, 8, 0.5, 0.2, 0.2, 1), mps::InvalidInputError);
  EXPECT_THROW(workloads::rmat(10, 8, 0.5, 0.3, 0.3, 1), mps::InvalidInputError);
}

}  // namespace
}  // namespace mps
