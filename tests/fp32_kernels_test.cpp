// Single-precision variants of the merge kernels: correctness against
// double-precision references within fp32 tolerance, and the bandwidth
// advantage of the narrower value type.
#include <gtest/gtest.h>

#include <vector>

#include "core/spadd.hpp"
#include "core/spmm.hpp"
#include "core/spmv.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"

namespace mps {
namespace {

using sparse::coo_to_csr;
using testing::random_coo;

sparse::CooMatrix<float> to_float(const sparse::CooD& a) {
  sparse::CooMatrix<float> f(a.num_rows, a.num_cols);
  f.row = a.row;
  f.col = a.col;
  f.val.assign(a.val.begin(), a.val.end());
  return f;
}

sparse::CsrMatrix<float> to_float(const sparse::CsrD& a) {
  sparse::CsrMatrix<float> f(a.num_rows, a.num_cols);
  f.row_offsets = a.row_offsets;
  f.col = a.col;
  f.val.assign(a.val.begin(), a.val.end());
  return f;
}

TEST(Fp32, SpmvMatchesDoubleWithinTolerance) {
  vgpu::Device dev;
  util::Rng rng(601);
  for (int trial = 0; trial < 8; ++trial) {
    const auto coo = random_coo(rng, 600, 500, 6000);
    const auto a = coo_to_csr(coo);
    const auto af = to_float(a);
    std::vector<double> x(500), y(600);
    std::vector<float> xf(500), yf(600);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = rng.uniform_double(-1, 1);
      xf[i] = static_cast<float>(x[i]);
    }
    core::merge::spmv(dev, a, x, y);
    core::merge::spmv(dev, af, xf, yf);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_NEAR(static_cast<double>(yf[i]), y[i], 1e-3) << i;
    }
  }
}

TEST(Fp32, SpmvIsCheaperThanFp64) {
  // Half the value bytes move: the bandwidth-bound kernel gets faster.
  vgpu::Device dev;
  util::Rng rng(603);
  const auto a = coo_to_csr(random_coo(rng, 8000, 8000, 200000));
  const auto af = to_float(a);
  std::vector<double> x(8000, 1.0), y(8000);
  std::vector<float> xf(8000, 1.0f), yf(8000);
  const double t64 = core::merge::spmv(dev, a, x, y).modeled_ms();
  const double t32 = core::merge::spmv(dev, af, xf, yf).modeled_ms();
  // The saving is bounded: only the streamed value bytes halve, while the
  // x-gather sectors are type-independent (a cache line is a cache line).
  EXPECT_LT(t32, 0.98 * t64);
  EXPECT_GT(t32, 0.4 * t64);
}

TEST(Fp32, SpaddMatchesDouble) {
  vgpu::Device dev;
  util::Rng rng(605);
  const auto a = random_coo(rng, 300, 300, 2500);
  const auto b = random_coo(rng, 300, 300, 2000);
  sparse::CooD c;
  core::merge::spadd(dev, a, b, c);
  sparse::CooMatrix<float> cf;
  core::merge::spadd(dev, to_float(a), to_float(b), cf);
  ASSERT_EQ(cf.nnz(), c.nnz());
  for (index_t i = 0; i < c.nnz(); ++i) {
    ASSERT_EQ(cf.row[static_cast<std::size_t>(i)], c.row[static_cast<std::size_t>(i)]);
    ASSERT_EQ(cf.col[static_cast<std::size_t>(i)], c.col[static_cast<std::size_t>(i)]);
    ASSERT_NEAR(static_cast<double>(cf.val[static_cast<std::size_t>(i)]),
                c.val[static_cast<std::size_t>(i)], 1e-4);
  }
}

TEST(Fp32, SpmmMatchesDouble) {
  vgpu::Device dev;
  util::Rng rng(607);
  const auto a = coo_to_csr(random_coo(rng, 400, 300, 4000));
  const auto af = to_float(a);
  const index_t nv = 4;
  std::vector<double> x(300 * nv), y(400 * nv);
  std::vector<float> xf(x.size()), yf(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform_double(-1, 1);
    xf[i] = static_cast<float>(x[i]);
  }
  core::merge::spmm(dev, a, x, nv, y);
  core::merge::spmm(dev, af, xf, nv, yf);
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(static_cast<double>(yf[i]), y[i], 1e-3);
  }
}

TEST(Fp32, FloatCsrValidity) {
  util::Rng rng(609);
  const auto af = to_float(coo_to_csr(random_coo(rng, 100, 100, 700)));
  EXPECT_TRUE(af.is_valid());
  EXPECT_EQ(af.device_bytes(),
            af.row_offsets.size() * sizeof(index_t) +
                af.col.size() * (sizeof(index_t) + sizeof(float)));
}

}  // namespace
}  // namespace mps
