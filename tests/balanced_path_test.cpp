// Property tests for balanced-path partitioning and the serial multiset
// kernels, including the paper's Figure 1 example verbatim.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "primitives/balanced_path.hpp"
#include "util/rng.hpp"

namespace mps::primitives {
namespace {

/// Reference set operation via the standard library.
std::vector<int> std_set_op(const std::vector<int>& a, const std::vector<int>& b,
                            SetOp op) {
  std::vector<int> out;
  switch (op) {
    case SetOp::kUnion:
      std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
      break;
    case SetOp::kIntersection:
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(out));
      break;
    case SetOp::kDifference:
      std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
      break;
    case SetOp::kSymmetricDifference:
      std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                    std::back_inserter(out));
      break;
  }
  return out;
}

/// Partitioned set operation: apply the serial kernel within each
/// balanced-path partition and concatenate.
std::vector<int> partitioned_set_op(const std::vector<int>& a,
                                    const std::vector<int>& b, std::size_t chunk,
                                    SetOp op) {
  const auto cuts = balanced_path_partitions<int>(a, b, chunk);
  std::vector<int> out;
  for (std::size_t p = 0; p + 1 < cuts.size(); ++p) {
    set_op_serial<int>(
        a, b, cuts[p].a_index, cuts[p + 1].a_index, cuts[p].b_index,
        cuts[p + 1].b_index, op, [&](std::size_t i) { out.push_back(a[i]); },
        [&](std::size_t j) { out.push_back(b[j]); },
        [&](std::size_t i, std::size_t) { out.push_back(a[i]); });
  }
  return out;
}

std::vector<int> sorted_random(util::Rng& rng, std::size_t n, int key_range) {
  std::vector<int> v(n);
  for (auto& x : v)
    x = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(key_range)));
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------
// The paper's Figure 1: A = {a b c c c e}, B = {c c c c d f}, 4 threads.
// ---------------------------------------------------------------------
TEST(BalancedPath, PaperFigure1Example) {
  // Encode a..f as 0..5.
  const std::vector<int> a{0, 1, 2, 2, 2, 4};
  const std::vector<int> b{2, 2, 2, 2, 3, 5};

  // Fence between t0 and t1 (diagonal 3) is starred: t0's partition is
  // extended to include the matching c from B (Figure 1b's starred cut).
  const auto cut1 = balanced_path<int>(a, b, 3);
  EXPECT_EQ(cut1.a_index, 3u);
  EXPECT_EQ(cut1.b_index, 1u);
  EXPECT_TRUE(cut1.starred);

  const auto cut2 = balanced_path<int>(a, b, 6);
  EXPECT_EQ(cut2.a_index, 4u);
  EXPECT_EQ(cut2.b_index, 2u);
  EXPECT_FALSE(cut2.starred);

  const auto cut3 = balanced_path<int>(a, b, 9);
  EXPECT_EQ(cut3.a_index, 5u);
  EXPECT_EQ(cut3.b_index, 4u);
  EXPECT_FALSE(cut3.starred);

  // The union through 4 partitions of chunk 3 equals std::set_union:
  // {a b c c c c d e f}.
  const auto got = partitioned_set_op(a, b, 3, SetOp::kUnion);
  const auto expect = std_set_op(a, b, SetOp::kUnion);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(expect, (std::vector<int>{0, 1, 2, 2, 2, 2, 3, 4, 5}));
}

TEST(BalancedPath, CutsAreMonotoneAndSized) {
  util::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = sorted_random(rng, rng.uniform(200), 8);  // heavy duplication
    const auto b = sorted_random(rng, rng.uniform(200), 8);
    for (std::size_t chunk : {1u, 2u, 7u, 64u}) {
      const auto cuts = balanced_path_partitions<int>(a, b, chunk);
      for (std::size_t p = 0; p + 1 < cuts.size(); ++p) {
        ASSERT_LE(cuts[p].a_index, cuts[p + 1].a_index);
        ASSERT_LE(cuts[p].b_index, cuts[p + 1].b_index);
        const std::size_t size = (cuts[p + 1].a_index - cuts[p].a_index) +
                                 (cuts[p + 1].b_index - cuts[p].b_index);
        // chunk +/- 1 from star adjustments (final partition may be short).
        if (p + 2 < cuts.size()) {
          ASSERT_GE(size + 1, chunk);
          ASSERT_LE(size, chunk + 1);
        } else {
          ASSERT_LE(size, chunk + 1);
        }
      }
    }
  }
}

TEST(BalancedPath, NeverSplitsMatchedPair) {
  // For every fence, the number of equal keys consumed on each side must
  // pair up: cutting between A(x,r) and B(x,r) is forbidden.
  util::Rng rng(37);
  for (int trial = 0; trial < 40; ++trial) {
    const auto a = sorted_random(rng, 50 + rng.uniform(100), 6);
    const auto b = sorted_random(rng, 50 + rng.uniform(100), 6);
    for (std::size_t diag = 0; diag <= a.size() + b.size(); ++diag) {
      const auto cut = balanced_path<int>(a, b, diag);
      // Count consumed copies of every key on each side of the cut.
      std::map<int, long> consumed;
      for (std::size_t i = 0; i < cut.a_index; ++i) consumed[a[i]] += 1;
      for (std::size_t j = 0; j < cut.b_index; ++j) consumed[b[j]] -= 1;
      for (const auto& [key, imbalance] : consumed) {
        // Imbalance within a run is only allowed once a side's run is
        // fully consumed (unmatched leftovers); a matched pair must never
        // straddle the cut.
        const long a_total = std::count(a.begin(), a.end(), key);
        const long b_total = std::count(b.begin(), b.end(), key);
        const long a_used = std::count(a.begin(), a.begin() + static_cast<long>(cut.a_index), key);
        const long b_used = std::count(b.begin(), b.begin() + static_cast<long>(cut.b_index), key);
        if (imbalance > 0) {
          // More taken from A: every unmatched surplus must be beyond B's
          // total run (B side exhausted), i.e. a_used > b_total is the
          // only legal source of surplus.
          EXPECT_TRUE(b_used == b_total || a_used <= b_used + 1)
              << "key " << key << " diag " << diag;
          if (b_used < b_total) {
            // B still has copies: at most the star's one-element slack.
            EXPECT_LE(a_used - b_used, 1) << "key " << key << " diag " << diag;
            EXPECT_FALSE(cut.starred && a_used != b_used);
          }
        } else if (imbalance < 0) {
          EXPECT_TRUE(a_used == a_total) << "key " << key << " diag " << diag;
        }
        (void)a_total;
      }
    }
  }
}

class SetOpPropertyTest
    : public ::testing::TestWithParam<std::tuple<SetOp, int, std::size_t>> {};

TEST_P(SetOpPropertyTest, MatchesStdAlgorithms) {
  const auto [op, key_range, chunk] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(key_range) * 131 +
                static_cast<std::uint64_t>(chunk));
  for (int trial = 0; trial < 25; ++trial) {
    const auto a = sorted_random(rng, rng.uniform(300), key_range);
    const auto b = sorted_random(rng, rng.uniform(300), key_range);
    const auto got = partitioned_set_op(a, b, chunk, op);
    const auto expect = std_set_op(a, b, op);
    ASSERT_EQ(got, expect) << "trial " << trial << " |a|=" << a.size()
                           << " |b|=" << b.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SetOpPropertyTest,
    ::testing::Combine(::testing::Values(SetOp::kUnion, SetOp::kIntersection,
                                         SetOp::kDifference,
                                         SetOp::kSymmetricDifference),
                       ::testing::Values(2, 5, 50, 100000),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{16}, std::size_t{257})));

TEST(BalancedPath, EmptyInputs) {
  const std::vector<int> empty;
  const std::vector<int> a{1, 1, 2};
  EXPECT_EQ(partitioned_set_op(empty, empty, 4, SetOp::kUnion), empty);
  EXPECT_EQ(partitioned_set_op(a, empty, 2, SetOp::kUnion), a);
  EXPECT_EQ(partitioned_set_op(empty, a, 2, SetOp::kUnion), a);
  EXPECT_EQ(partitioned_set_op(a, empty, 2, SetOp::kIntersection), empty);
}

TEST(BalancedPath, AllEqualKeys) {
  // Worst case for duplicate handling: one giant run.
  const std::vector<int> a(100, 7);
  const std::vector<int> b(63, 7);
  for (std::size_t chunk : {1u, 5u, 32u, 1000u}) {
    EXPECT_EQ(partitioned_set_op(a, b, chunk, SetOp::kUnion).size(), 100u);
    EXPECT_EQ(partitioned_set_op(a, b, chunk, SetOp::kIntersection).size(), 63u);
    EXPECT_EQ(partitioned_set_op(a, b, chunk, SetOp::kDifference).size(), 37u);
    EXPECT_EQ(partitioned_set_op(a, b, chunk, SetOp::kSymmetricDifference).size(),
              37u);
  }
}

TEST(SetOpSerial, EmitsSourceIndices) {
  const std::vector<int> a{1, 3};
  const std::vector<int> b{3, 4};
  std::vector<std::pair<char, std::size_t>> log;
  set_op_serial<int>(
      a, b, 0, a.size(), 0, b.size(), SetOp::kUnion,
      [&](std::size_t i) { log.emplace_back('a', i); },
      [&](std::size_t j) { log.emplace_back('b', j); },
      [&](std::size_t i, std::size_t j) { log.emplace_back('m', i * 10 + j); });
  const std::vector<std::pair<char, std::size_t>> expect{
      {'a', 0}, {'m', 10}, {'b', 1}};
  EXPECT_EQ(log, expect);
}

}  // namespace
}  // namespace mps::primitives
