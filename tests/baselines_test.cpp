// Sequential reference kernels validated against dense arithmetic, then
// the cusp-like and row-wise device schemes validated against seq.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/cusplike.hpp"
#include "baselines/rowwise.hpp"
#include "baselines/seq.hpp"
#include "sparse/compare.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"

namespace mps {
namespace {

using baselines::seq::spadd;
using baselines::seq::spgemm;
using baselines::seq::spmv;
using sparse::coo_to_csr;
using testing::dense_of;
using testing::paper_a;
using testing::paper_b;
using testing::random_coo;

TEST(SeqSpmv, MatchesDense) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = coo_to_csr(random_coo(rng, 30, 40, 200));
    std::vector<double> x(40), y(30);
    for (auto& v : x) v = rng.uniform_double(-1, 1);
    spmv(a, x, y);
    const auto d = dense_of(a);
    for (index_t r = 0; r < 30; ++r) {
      double acc = 0;
      for (index_t c = 0; c < 40; ++c) acc += d[static_cast<std::size_t>(r) * 40 + c] * x[static_cast<std::size_t>(c)];
      ASSERT_NEAR(y[static_cast<std::size_t>(r)], acc, 1e-12);
    }
  }
}

TEST(SeqSpmv, ChargesCost) {
  util::Rng rng(2);
  const auto a = coo_to_csr(random_coo(rng, 100, 100, 1000));
  std::vector<double> x(100, 1.0), y(100);
  vgpu::CpuCost cost;
  spmv(a, x, y, &cost);
  EXPECT_GT(cost.modeled_ms(), 0.0);
  EXPECT_GT(cost.ops(), 2ull * static_cast<unsigned long long>(a.nnz()) - 1);
}

TEST(SeqSpadd, MatchesDense) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = coo_to_csr(random_coo(rng, 25, 35, 150));
    const auto b = coo_to_csr(random_coo(rng, 25, 35, 170));
    const auto c = spadd(a, b);
    EXPECT_TRUE(c.is_valid());
    const auto da = dense_of(a);
    const auto db = dense_of(b);
    const auto dc = dense_of(c);
    for (std::size_t i = 0; i < dc.size(); ++i) ASSERT_NEAR(dc[i], da[i] + db[i], 1e-12);
  }
}

TEST(SeqSpgemm, PaperWorkedExample) {
  const auto a = coo_to_csr(paper_a());
  const auto b = coo_to_csr(paper_b());
  const auto c = spgemm(a, b);
  // C = A x B from Section III-C of the paper.
  const std::vector<double> expect{10, 0,   0, 0,    //
                                   120, 430, 0, 340,  //
                                   0,   300, 0, 350,  //
                                   0,   120, 0, 180};
  EXPECT_EQ(dense_of(c), expect);
  EXPECT_EQ(c.nnz(), 8);
  EXPECT_EQ(baselines::seq::spgemm_num_products(a, b), 11);  // Fig 3(a)
}

TEST(SeqSpgemm, MatchesDense) {
  util::Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const auto a = coo_to_csr(random_coo(rng, 20, 30, 120));
    const auto b = coo_to_csr(random_coo(rng, 30, 25, 150));
    const auto c = spgemm(a, b);
    EXPECT_TRUE(c.is_valid());
    const auto da = dense_of(a);
    const auto db = dense_of(b);
    const auto dc = dense_of(c);
    for (index_t r = 0; r < 20; ++r) {
      for (index_t cc = 0; cc < 25; ++cc) {
        double acc = 0;
        for (index_t k = 0; k < 30; ++k)
          acc += da[static_cast<std::size_t>(r) * 30 + k] * db[static_cast<std::size_t>(k) * 25 + cc];
        ASSERT_NEAR(dc[static_cast<std::size_t>(r) * 25 + cc], acc, 1e-10);
      }
    }
  }
}

class DeviceBaselineTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  vgpu::Device dev_;
};

TEST_P(DeviceBaselineTest, CuspSpmvMatchesSeq) {
  const auto [rows, cols, nnz] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(rows + cols + nnz));
  const auto a = coo_to_csr(random_coo(rng, static_cast<index_t>(rows),
                                       static_cast<index_t>(cols), nnz));
  std::vector<double> x(static_cast<std::size_t>(cols)), y_ref(static_cast<std::size_t>(rows)),
      y(static_cast<std::size_t>(rows));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  spmv(a, x, y_ref);
  const auto stats = baselines::cusplike::spmv(dev_, a, x, y);
  EXPECT_GE(stats.modeled_ms, 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-11);
}

TEST_P(DeviceBaselineTest, RowwiseSpmvMatchesSeq) {
  const auto [rows, cols, nnz] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(rows * 3 + cols + nnz));
  const auto a = coo_to_csr(random_coo(rng, static_cast<index_t>(rows),
                                       static_cast<index_t>(cols), nnz));
  std::vector<double> x(static_cast<std::size_t>(cols)), y_ref(static_cast<std::size_t>(rows)),
      y(static_cast<std::size_t>(rows));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  spmv(a, x, y_ref);
  baselines::rowwise::spmv(dev_, a, x, y);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-11);
}

TEST_P(DeviceBaselineTest, CuspSpaddMatchesSeq) {
  const auto [rows, cols, nnz] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(rows * 7 + nnz));
  const auto a = random_coo(rng, static_cast<index_t>(rows), static_cast<index_t>(cols), nnz);
  const auto b = random_coo(rng, static_cast<index_t>(rows), static_cast<index_t>(cols), nnz / 2 + 1);
  const auto ref = spadd(coo_to_csr(a), coo_to_csr(b));
  sparse::CooD c;
  baselines::cusplike::spadd(dev_, a, b, c);
  const auto cmp = sparse::compare_csr(coo_to_csr(c), ref);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

TEST_P(DeviceBaselineTest, RowwiseSpaddMatchesSeq) {
  const auto [rows, cols, nnz] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(rows * 11 + nnz));
  const auto a = coo_to_csr(random_coo(rng, static_cast<index_t>(rows), static_cast<index_t>(cols), nnz));
  const auto b = coo_to_csr(random_coo(rng, static_cast<index_t>(rows), static_cast<index_t>(cols), nnz / 3 + 1));
  const auto ref = spadd(a, b);
  sparse::CsrD c;
  baselines::rowwise::spadd(dev_, a, b, c);
  const auto cmp = sparse::compare_csr(c, ref);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

TEST_P(DeviceBaselineTest, CuspSpgemmMatchesSeq) {
  const auto [rows, cols, nnz] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(rows * 13 + nnz));
  const auto a = coo_to_csr(random_coo(rng, static_cast<index_t>(rows), static_cast<index_t>(cols), nnz));
  const auto b = coo_to_csr(random_coo(rng, static_cast<index_t>(cols), static_cast<index_t>(rows), nnz));
  const auto ref = spgemm(a, b);
  sparse::CsrD c;
  baselines::cusplike::spgemm(dev_, a, b, c);
  const auto cmp = sparse::compare_csr(c, ref, 1e-9, 1e-11);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

TEST_P(DeviceBaselineTest, RowwiseSpgemmMatchesSeq) {
  const auto [rows, cols, nnz] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(rows * 17 + nnz));
  const auto a = coo_to_csr(random_coo(rng, static_cast<index_t>(rows), static_cast<index_t>(cols), nnz));
  const auto b = coo_to_csr(random_coo(rng, static_cast<index_t>(cols), static_cast<index_t>(rows), nnz));
  const auto ref = spgemm(a, b);
  sparse::CsrD c;
  baselines::rowwise::spgemm(dev_, a, b, c);
  const auto cmp = sparse::compare_csr(c, ref, 1e-9, 1e-11);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DeviceBaselineTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(10, 10, 30),
                      std::make_tuple(100, 80, 500),
                      std::make_tuple(500, 500, 4000),
                      std::make_tuple(64, 2000, 3000),
                      std::make_tuple(2000, 64, 3000)));

TEST(DeviceBaseline, EscSpgemmOomOnTinyDevice) {
  vgpu::DeviceProperties tiny = vgpu::gtx_titan();
  tiny.global_mem_bytes = 1 << 20;  // 1 MiB
  vgpu::Device dev(tiny);
  util::Rng rng(5);
  const auto a = coo_to_csr(random_coo(rng, 200, 200, 8000));
  sparse::CsrD c;
  EXPECT_THROW(baselines::cusplike::spgemm(dev, a, a, c), vgpu::DeviceOomError);
}

TEST(DeviceBaseline, RowwiseImbalanceCostsMoreThanWork) {
  // Same total nnz, uniform rows vs one giant row: the row-wise scheme's
  // modeled time per nonzero must degrade on the skewed instance (the
  // merge scheme's must not — that is asserted in the core tests).
  vgpu::Device dev;
  util::Rng rng(6);
  const index_t rows = 3000;
  sparse::CooD uni(rows, rows), skew(rows, rows);
  for (index_t r = 0; r < rows; ++r) {
    for (int i = 0; i < 20; ++i) {
      uni.push_back(r, static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(rows))),
                    1.0);
      // Skewed: half the nonzeros pile into row 0.
      const index_t rr = (i < 10) ? 0 : r;
      skew.push_back(rr, static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(rows))),
                     1.0);
    }
  }
  uni.canonicalize();
  skew.canonicalize();
  const auto uniform = coo_to_csr(uni);
  const auto skewed = coo_to_csr(skew);
  std::vector<double> x(static_cast<std::size_t>(rows), 1.0), y(static_cast<std::size_t>(rows));
  const double t_uniform = baselines::rowwise::spmv(dev, uniform, x, y).modeled_ms /
                           static_cast<double>(uniform.nnz());
  const double t_skewed = baselines::rowwise::spmv(dev, skewed, x, y).modeled_ms /
                          static_cast<double>(skewed.nnz());
  EXPECT_GT(t_skewed, 1.2 * t_uniform);
}

}  // namespace
}  // namespace mps
