// Tests for the performance-explainability surface: the roofline
// attribution profiler, the flight recorder and its debug bundles, the
// per-tenant SLO burn-rate tracker, and Engine::explain
// (docs/observability.md).
//
// The profiler is a process-wide singleton like the tracer, so every
// test restores the default state (disabled, cleared, default
// thresholds).  Flight-recorder ring tests construct LOCAL
// FlightRecorder instances and note from a fresh thread each — the
// per-thread ring cache is thread-local, so a dedicated thread binds its
// ring to the instance under test instead of whichever recorder the main
// thread touched first.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/slo.hpp"
#include "sparse/convert.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/span.hpp"
#include "test_matrices.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "vgpu/device.hpp"

namespace mps {
namespace {

/// Restore the profiler's default state (and scrub the knob variables)
/// on entry and exit so tests compose in any order.
struct ProfilerReset {
  ProfilerReset() { reset(); }
  ~ProfilerReset() { reset(); }
  static void reset() {
    telemetry::profiler().disable();
    telemetry::profiler().clear();
    telemetry::profiler().set_imbalance_threshold_pct(50.0);
    telemetry::profiler().set_roofline_frac(0.35);
    telemetry::metrics().reset();
    for (const char* knob :
         {"MPS_PROFILE", "MPS_PROFILE_IMBALANCE_PCT",
          "MPS_PROFILE_ROOFLINE_FRAC", "MPS_FLIGHT_RING", "MPS_FLIGHT_DIR",
          "MPS_SLO_LATENCY_MS", "MPS_SLO_OBJECTIVE", "MPS_SLO_SHORT_WINDOW",
          "MPS_SLO_LONG_WINDOW", "MPS_SLO_BURN_ALERT"}) {
      ::unsetenv(knob);
    }
  }
};

/// Minimal JSON well-formedness check: braces/brackets balance outside
/// string literals and the document is one object.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !s.empty() && s.front() == '{';
}

sparse::CsrD small_matrix(std::uint64_t seed = 7) {
  util::Rng rng(seed);
  return sparse::coo_to_csr(testing::random_coo(rng, 300, 300, 4000));
}

std::vector<double> ones_x(const sparse::CsrD& a) {
  return std::vector<double>(static_cast<std::size_t>(a.num_cols), 1.0);
}

serve::EngineConfig engine_config(unsigned threads = 1, int window = 1) {
  serve::EngineConfig cfg;
  cfg.threads = threads;
  cfg.batch_window = window;
  cfg.queue_capacity = 256;
  cfg.plan_cache_bytes = 64u << 20;
  cfg.autotune = 0;
  cfg.chaos_enabled = 0;
  cfg.durable_enabled = 0;
  cfg.slo_enabled = 0;
  cfg.devices = 0;  // legacy single-device mode unless a test opts in
  return cfg;
}

// ---------------------------------------------------------------------------
// RooflineAgg arithmetic

TEST(Roofline, AggregateArithmetic) {
  telemetry::RooflineAgg a;
  EXPECT_DOUBLE_EQ(a.achieved_frac(), 0.0);  // no capacity: defined as 0
  EXPECT_DOUBLE_EQ(a.intensity(), 0.0);      // no bytes: defined as 0
  a.launches = 1;
  a.bytes = 300.0;
  a.flops = 600.0;
  a.modeled_ms = 2.0;
  a.capacity_bytes = 1000.0;
  EXPECT_DOUBLE_EQ(a.achieved_frac(), 0.3);
  EXPECT_DOUBLE_EQ(a.intensity(), 2.0);

  telemetry::RooflineAgg b;
  b.launches = 2;
  b.bytes = 700.0;
  b.flops = 400.0;
  b.modeled_ms = 3.0;
  b.capacity_bytes = 1000.0;
  a += b;
  EXPECT_EQ(a.launches, 3);
  EXPECT_DOUBLE_EQ(a.bytes, 1000.0);
  EXPECT_DOUBLE_EQ(a.modeled_ms, 5.0);
  EXPECT_DOUBLE_EQ(a.achieved_frac(), 0.5);
  EXPECT_DOUBLE_EQ(a.intensity(), 1.0);
}

// ---------------------------------------------------------------------------
// Profiler: recording, attribution axes, roofline classification

TEST(Profiler, DisabledRecordsNothing) {
  ProfilerReset guard;
  vgpu::Device dev;
  dev.launch("untracked.kernel", 2, 64,
             [](vgpu::Cta& cta) { cta.charge_global(4096); });
  const auto rep = telemetry::profiler().report();
  EXPECT_TRUE(rep.by_op.empty());
  EXPECT_TRUE(rep.by_phase.empty());
  EXPECT_TRUE(rep.by_device.empty());
  EXPECT_EQ(rep.shard_batches, 0);
}

TEST(Profiler, RecordKernelAggregatesAlongAllAxes) {
  ProfilerReset guard;
  auto& prof = telemetry::profiler();
  prof.enable();

  {
    telemetry::ProfAttr attr;
    attr.tenant = 0xabc;
    attr.shard = 2;
    attr.device = 1;
    attr.phase = "unit.merge";
    telemetry::ProfAttrScope scope(attr);
    // peak 100 bytes/ns, 1e-3 ms = 1e3 ns -> capacity 1e5 bytes.
    prof.record_kernel("op.a", 5e4, 1e3, 1e-3, 100.0);
    prof.record_kernel("op.a", 3e4, 0.0, 1e-3, 100.0);
  }
  // Unattributed launch: default axes (tenant 0, device -1, no phase).
  prof.record_kernel("op.b", 1e4, 0.0, 1e-3, 100.0);
  prof.disable();

  const auto rep = prof.report();
  ASSERT_EQ(rep.by_op.count("op.a"), 1u);
  const auto& a = rep.by_op.at("op.a");
  EXPECT_EQ(a.launches, 2);
  EXPECT_DOUBLE_EQ(a.bytes, 8e4);
  EXPECT_DOUBLE_EQ(a.capacity_bytes, 2e5);
  EXPECT_DOUBLE_EQ(a.achieved_frac(), 0.4);

  ASSERT_EQ(rep.by_phase.count("unit.merge"), 1u);
  EXPECT_EQ(rep.by_phase.at("unit.merge").launches, 2);
  ASSERT_EQ(rep.by_phase.count("(none)"), 1u);  // unattributed bucket
  EXPECT_EQ(rep.by_phase.at("(none)").launches, 1);

  ASSERT_EQ(rep.by_device.count(1), 1u);
  EXPECT_EQ(rep.by_device.at(1).launches, 2);
  ASSERT_EQ(rep.by_device.count(-1), 1u);

  ASSERT_EQ(rep.by_tenant.count(0xabc), 1u);
  EXPECT_EQ(rep.by_tenant.at(0xabc).launches, 2);
  EXPECT_EQ(rep.by_tenant.count(0), 0u);  // tenant 0 is "no tenant"

  const auto shard_key = std::make_pair(std::uint64_t{0xabc}, 2);
  ASSERT_EQ(rep.by_shard.count(shard_key), 1u);
  EXPECT_EQ(rep.by_shard.at(shard_key).launches, 2);
}

TEST(Profiler, AttrScopeRestoresOnExit) {
  ProfilerReset guard;
  telemetry::current_prof_attr() = telemetry::ProfAttr{};
  {
    telemetry::ProfAttr attr;
    attr.tenant = 9;
    attr.phase = "scoped";
    telemetry::ProfAttrScope scope(attr);
    EXPECT_EQ(telemetry::current_prof_attr().tenant, 9u);
    {
      telemetry::ProfAttr inner;
      inner.tenant = 11;
      telemetry::ProfAttrScope nested(inner);
      EXPECT_EQ(telemetry::current_prof_attr().tenant, 11u);
    }
    EXPECT_EQ(telemetry::current_prof_attr().tenant, 9u);
    EXPECT_STREQ(telemetry::current_prof_attr().phase, "scoped");
  }
  EXPECT_EQ(telemetry::current_prof_attr().tenant, 0u);
}

TEST(Profiler, LaunchIntegrationChargesDeviceTraffic) {
  ProfilerReset guard;
  telemetry::profiler().enable();
  vgpu::Device dev;
  const auto stats = dev.launch("unit.traffic", 4, 128, [](vgpu::Cta& cta) {
    cta.charge_global(1 << 16);
  });
  telemetry::profiler().disable();

  const auto rep = telemetry::profiler().report();
  ASSERT_EQ(rep.by_op.count("unit.traffic"), 1u);
  const auto& agg = rep.by_op.at("unit.traffic");
  EXPECT_EQ(agg.launches, 1);
  EXPECT_DOUBLE_EQ(agg.bytes,
                   static_cast<double>(stats.totals.global_bytes +
                                       stats.totals.gather_bytes));
  EXPECT_DOUBLE_EQ(agg.modeled_ms, stats.modeled_ms);
  // Capacity is modeled time at the launching device's peak bandwidth,
  // so the achieved fraction can never exceed 1 for a pure-traffic kernel.
  EXPECT_GT(agg.capacity_bytes, 0.0);
  EXPECT_GT(agg.achieved_frac(), 0.0);
  EXPECT_LE(agg.achieved_frac(), 1.0 + 1e-9);
}

TEST(Profiler, BelowRooflineListsOnlyLowFractionOps) {
  ProfilerReset guard;
  auto& prof = telemetry::profiler();
  prof.enable();
  prof.record_kernel("op.bound", 9e4, 0.0, 1e-3, 100.0);    // frac 0.9
  prof.record_kernel("op.latency", 1e4, 0.0, 1e-3, 100.0);  // frac 0.1
  prof.disable();
  const auto rep = prof.report();
  ASSERT_EQ(rep.below_roofline.size(), 1u);
  EXPECT_EQ(rep.below_roofline[0], "op.latency");
  // The threshold is live: raising it reclassifies the bound op too.
  prof.set_roofline_frac(0.95);
  EXPECT_EQ(prof.report().below_roofline.size(), 2u);
}

// ---------------------------------------------------------------------------
// Profiler: shard imbalance detection

std::vector<telemetry::ShardSample> four_device_batch(double slow_ms) {
  // Shards 0..3 on devices 0..3; device 3 is the straggler.
  return {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {3, 3, slow_ms}};
}

TEST(Profiler, ImbalanceFlagsNameTheStraggler) {
  ProfilerReset guard;
  auto& prof = telemetry::profiler();
  // Busy 1,1,1,3: mean 1.5, critical path 3.0 -> 100% above, flagged.
  const auto samples = four_device_batch(3.0);
  EXPECT_TRUE(prof.note_shard_batch(0x51, samples));
  const auto rep = prof.report();
  EXPECT_EQ(rep.shard_batches, 1);
  EXPECT_EQ(rep.imbalance_total, 1);
  ASSERT_EQ(rep.imbalance_flags.size(), 1u);
  const auto& flag = rep.imbalance_flags[0];
  EXPECT_EQ(flag.tenant, 0x51u);
  EXPECT_EQ(flag.straggler_device, 3);
  EXPECT_EQ(flag.straggler_shard, 3u);
  EXPECT_DOUBLE_EQ(flag.straggler_ms, 3.0);
  EXPECT_DOUBLE_EQ(flag.mean_ms, 1.5);
  EXPECT_DOUBLE_EQ(flag.ratio, 2.0);
}

TEST(Profiler, ImbalanceBelowThresholdNotFlagged) {
  ProfilerReset guard;
  auto& prof = telemetry::profiler();
  // Busy 1,1,1,1.6: mean 1.15, critical 1.6 -> 39% above, under the 50%
  // default threshold.
  EXPECT_FALSE(prof.note_shard_batch(1, four_device_batch(1.6)));
  // The same batch trips a tightened threshold.
  prof.set_imbalance_threshold_pct(25.0);
  EXPECT_TRUE(prof.note_shard_batch(1, four_device_batch(1.6)));
  const auto rep = prof.report();
  EXPECT_EQ(rep.shard_batches, 2);
  EXPECT_EQ(rep.imbalance_total, 1);
}

TEST(Profiler, ImbalanceNeedsTwoActiveDevices) {
  ProfilerReset guard;
  auto& prof = telemetry::profiler();
  // Two shards on ONE device: there is no fleet to be imbalanced against.
  const std::vector<telemetry::ShardSample> one_dev{{0, 0, 1.0}, {1, 0, 9.0}};
  EXPECT_FALSE(prof.note_shard_batch(1, one_dev));
  EXPECT_FALSE(
      prof.note_shard_batch(1, std::vector<telemetry::ShardSample>{}));
  const auto rep = prof.report();
  EXPECT_EQ(rep.shard_batches, 1);  // empty batches are not examined
  EXPECT_EQ(rep.imbalance_total, 0);
}

TEST(Profiler, ImbalanceFlagRingIsBounded) {
  ProfilerReset guard;
  auto& prof = telemetry::profiler();
  const auto samples = four_device_batch(4.0);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(prof.note_shard_batch(static_cast<std::uint64_t>(i + 1),
                                      samples));
  }
  const auto rep = prof.report();
  EXPECT_EQ(rep.imbalance_total, 300);
  EXPECT_EQ(rep.imbalance_flags.size(), 256u);  // kMaxFlags, recent kept
}

TEST(Profiler, WriteJsonIsWellFormed) {
  ProfilerReset guard;
  auto& prof = telemetry::profiler();
  prof.enable();
  {
    telemetry::ProfAttr attr;
    attr.tenant = 3;
    attr.shard = 0;
    attr.device = 0;
    attr.phase = "json.phase";
    telemetry::ProfAttrScope scope(attr);
    prof.record_kernel("json.op", 1e4, 2e3, 1e-3, 100.0);
  }
  prof.note_shard_batch(3, four_device_batch(3.0));
  prof.disable();
  std::ostringstream os;
  prof.write_json(os);
  const std::string s = os.str();
  EXPECT_TRUE(json_balanced(s)) << s;
  EXPECT_NE(s.find("\"by_op\""), std::string::npos);
  EXPECT_NE(s.find("\"json.op\""), std::string::npos);
  EXPECT_NE(s.find("\"imbalance_flags\""), std::string::npos);
  EXPECT_NE(s.find("\"straggler_device\":3"), std::string::npos);
}

TEST(Profiler, EnvKnobsStrictParse) {
  ProfilerReset guard;
  ::setenv("MPS_PROFILE", "1", 1);
  ::setenv("MPS_PROFILE_IMBALANCE_PCT", "75", 1);
  ::setenv("MPS_PROFILE_ROOFLINE_FRAC", "0.5", 1);
  EXPECT_TRUE(telemetry::profiler().configure_from_env());
  EXPECT_DOUBLE_EQ(telemetry::profiler().imbalance_threshold_pct(), 75.0);
  EXPECT_DOUBLE_EQ(telemetry::profiler().roofline_frac(), 0.5);
  ProfilerReset::reset();

  ::setenv("MPS_PROFILE", "2", 1);  // out of [0, 1]
  EXPECT_THROW(telemetry::profiler().configure_from_env(), InvalidInputError);
  ::unsetenv("MPS_PROFILE");
  ::setenv("MPS_PROFILE_IMBALANCE_PCT", "lots", 1);
  EXPECT_THROW(telemetry::profiler().configure_from_env(), InvalidInputError);
  ::unsetenv("MPS_PROFILE_IMBALANCE_PCT");
  ::setenv("MPS_PROFILE_ROOFLINE_FRAC", "-0.2", 1);
  EXPECT_THROW(telemetry::profiler().configure_from_env(), InvalidInputError);
}

// ---------------------------------------------------------------------------
// Strict path knobs (MPS_TRACE_OUT / MPS_FLIGHT_DIR both go through this)

TEST(EnvPath, UnsetEmptyAndSetSemantics) {
  ::unsetenv("MPS_TEST_PATH_KNOB");
  EXPECT_EQ(util::env_path_checked("MPS_TEST_PATH_KNOB"), "");
  ::setenv("MPS_TEST_PATH_KNOB", "/tmp/somewhere.json", 1);
  EXPECT_EQ(util::env_path_checked("MPS_TEST_PATH_KNOB"),
            "/tmp/somewhere.json");
  // Set-but-empty is a shell quoting accident, not "disable": it throws
  // instead of silently dropping the artifact the caller asked for.
  ::setenv("MPS_TEST_PATH_KNOB", "", 1);
  EXPECT_THROW(util::env_path_checked("MPS_TEST_PATH_KNOB"),
               InvalidInputError);
  ::unsetenv("MPS_TEST_PATH_KNOB");
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(Flight, RingIsBoundedAndKeepsTheMostRecent) {
  ProfilerReset guard;
  ::setenv("MPS_FLIGHT_RING", "16", 1);
  telemetry::FlightRecorder fr;
  ::unsetenv("MPS_FLIGHT_RING");
  EXPECT_EQ(fr.ring_capacity(), 16u);
  // Note from a fresh thread so the thread-local ring binds to THIS
  // recorder (the main thread's ring may belong to the global one).
  std::thread writer([&fr] {
    for (int i = 0; i < 40; ++i) {
      fr.note("unit", "event" + std::to_string(i));
    }
  });
  writer.join();
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 16u);  // bounded: only the ring survives
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);  // global order kept
  }
  bool saw_last = false, saw_first = false;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.kind, "unit");
    if (ev.name == "event39") saw_last = true;
    if (ev.name == "event0") saw_first = true;
  }
  EXPECT_TRUE(saw_last);    // the most recent event is retained
  EXPECT_FALSE(saw_first);  // the oldest was overwritten
  fr.clear();
  EXPECT_TRUE(fr.snapshot().empty());
}

TEST(Flight, KnobsStrictParse) {
  ProfilerReset guard;
  ::setenv("MPS_FLIGHT_RING", "many", 1);
  EXPECT_THROW(telemetry::FlightRecorder{}, InvalidInputError);
  ::setenv("MPS_FLIGHT_RING", "8", 1);  // below the [16, 1M] floor
  EXPECT_THROW(telemetry::FlightRecorder{}, InvalidInputError);
  ::unsetenv("MPS_FLIGHT_RING");
  ::setenv("MPS_FLIGHT_DIR", "", 1);  // set-but-empty path
  EXPECT_THROW(telemetry::FlightRecorder{}, InvalidInputError);
  ::unsetenv("MPS_FLIGHT_DIR");
}

TEST(Flight, BundleJsonEmbedsEventsMetricsProfileAndState) {
  ProfilerReset guard;
  telemetry::FlightRecorder fr;
  std::thread writer([&fr] {
    fr.note("request", "unit.settle", "latency=1.5ms");
    fr.note("failover", "quote\"back\\slash\nnewline");  // must be escaped
  });
  writer.join();
  telemetry::metrics().counter("flight.test.counter").add(5);
  const int ok_id = fr.register_state_provider(
      "unit.engine", [](std::ostream& os) { os << "{\"live\":true}"; });
  fr.register_state_provider("unit.broken", [](std::ostream&) {
    throw std::runtime_error("provider died");
  });

  std::ostringstream os;
  fr.write_bundle(os, "unit \"reason\"");
  const std::string s = os.str();
  EXPECT_TRUE(json_balanced(s)) << s;
  EXPECT_NE(s.find("\"bundle\":\"mps-flight\""), std::string::npos);
  EXPECT_NE(s.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(s.find("\"reason\":\"unit \\\"reason\\\"\""), std::string::npos);
  EXPECT_NE(s.find("\"unit.settle\""), std::string::npos);
  EXPECT_NE(s.find("latency=1.5ms"), std::string::npos);
  EXPECT_NE(s.find("quote\\\"back\\\\slash\\nnewline"), std::string::npos);
  EXPECT_NE(s.find("\"flight.test.counter\":5"), std::string::npos);
  EXPECT_NE(s.find("\"profile\":{"), std::string::npos);
  EXPECT_NE(s.find("\"unit.engine\":{\"live\":true}"), std::string::npos);
  // A throwing provider degrades to null without losing the bundle.
  EXPECT_NE(s.find("\"unit.broken\":null"), std::string::npos);

  fr.unregister_state_provider(ok_id);
  std::ostringstream os2;
  fr.write_bundle(os2, "after-unregister");
  EXPECT_EQ(os2.str().find("\"unit.engine\""), std::string::npos);
  EXPECT_TRUE(json_balanced(os2.str()));
}

TEST(Flight, DumpBundleIsGatedOnFlightDir) {
  ProfilerReset guard;
  {
    telemetry::FlightRecorder fr;  // MPS_FLIGHT_DIR unset
    EXPECT_EQ(fr.dump_dir(), "");
    EXPECT_EQ(fr.dump_bundle("no-dir"), "");  // no uninvited files
  }
  const std::string dir = ::testing::TempDir();
  ::setenv("MPS_FLIGHT_DIR", dir.c_str(), 1);
  telemetry::FlightRecorder fr;
  ::unsetenv("MPS_FLIGHT_DIR");
  const std::string path = fr.dump_bundle("unit test!");
  ASSERT_FALSE(path.empty());
  // The reason is sanitized into the filename.
  EXPECT_NE(path.find("flight_bundle_unit-test-.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"reason\":\"unit test!\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// SLO tracker: burn-rate math, window retirement, alert edges

serve::SloConfig slo_config(double latency = 1.0, double objective = 0.9,
                            int short_w = 2, int long_w = 4,
                            double burn = 2.0) {
  serve::SloConfig cfg;
  cfg.latency_ms = latency;
  cfg.objective = objective;
  cfg.short_window = short_w;
  cfg.long_window = long_w;
  cfg.burn_alert = burn;
  return cfg;
}

TEST(Slo, GoodRequestsBurnNothing) {
  serve::SloTracker t(slo_config());
  serve::TenantSlo snap;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(t.observe(1, 0.5, true, &snap));
  }
  EXPECT_EQ(snap.total, 10);
  EXPECT_EQ(snap.bad, 0);
  EXPECT_DOUBLE_EQ(snap.burn_short, 0.0);
  EXPECT_DOUBLE_EQ(snap.burn_long, 0.0);
  EXPECT_DOUBLE_EQ(snap.budget_remaining, 1.0);
  EXPECT_FALSE(snap.alerting);
  EXPECT_TRUE(t.alerting().empty());
}

TEST(Slo, SlowAndFailedRequestsAreBothBad) {
  serve::SloTracker t(slo_config(/*latency=*/1.0));
  serve::TenantSlo snap;
  t.observe(1, 5.0, true, &snap);   // slow but successful
  EXPECT_EQ(snap.bad, 1);
  t.observe(1, 0.1, false, &snap);  // fast but failed
  EXPECT_EQ(snap.bad, 2);
  t.observe(1, 1.0, true, &snap);   // exactly at threshold: good
  EXPECT_EQ(snap.bad, 2);
}

TEST(Slo, BurnRateMathOnPartialWindows) {
  // objective 0.9 -> budget 0.1; short 2, long 4.
  serve::SloTracker t(slo_config());
  serve::TenantSlo snap;
  t.observe(7, 0.1, true, &snap);
  t.observe(7, 9.0, true, &snap);  // bad
  // Window contents: long [good, bad] -> bad_frac 1/2, burn 5; short
  // (trailing 2) identical.
  EXPECT_DOUBLE_EQ(snap.burn_long, 5.0);
  EXPECT_DOUBLE_EQ(snap.burn_short, 5.0);
  EXPECT_DOUBLE_EQ(snap.budget_remaining, 1.0 - 5.0);
  t.observe(7, 0.1, true, &snap);
  t.observe(7, 0.1, true, &snap);
  // long [g,b,g,g] -> burn 2.5; short [g,g] -> burn 0.
  EXPECT_DOUBLE_EQ(snap.burn_long, 2.5);
  EXPECT_DOUBLE_EQ(snap.burn_short, 0.0);
}

TEST(Slo, LongWindowRetiresOldMarks) {
  serve::SloTracker t(slo_config());
  serve::TenantSlo snap;
  t.observe(1, 9.0, false, &snap);  // bad, will be retired
  for (int i = 0; i < 4; ++i) t.observe(1, 0.1, true, &snap);
  // The bad mark left the long ring (capacity 4): burn is clean again.
  EXPECT_DOUBLE_EQ(snap.burn_long, 0.0);
  EXPECT_DOUBLE_EQ(snap.budget_remaining, 1.0);
  EXPECT_EQ(snap.bad, 1);    // lifetime counter keeps it
  EXPECT_EQ(snap.total, 5);
}

TEST(Slo, AlertIsAnEdgeAndNeedsBothWindows) {
  // burn_alert 2.0 with budget 0.1: a single bad mark in both windows
  // exceeds it, so the first bad observation is the transition.
  serve::SloTracker t(slo_config());
  serve::TenantSlo snap;
  EXPECT_FALSE(t.observe(1, 0.1, true, &snap));
  EXPECT_TRUE(t.observe(1, 9.0, true, &snap));  // enters alerting: edge
  EXPECT_TRUE(snap.alerting);
  EXPECT_EQ(snap.alerts, 1);
  // Still alerting: observe returns false (level, not edge).
  EXPECT_FALSE(t.observe(1, 9.0, true, &snap));
  EXPECT_TRUE(snap.alerting);
  EXPECT_EQ(snap.alerts, 1);
  EXPECT_EQ(t.alerting(), std::vector<std::uint64_t>{1});

  // Two goods clear the SHORT window; the long window still holds both
  // bad marks, but the alert needs BOTH windows above the rate.
  t.observe(1, 0.1, true, &snap);
  EXPECT_FALSE(t.observe(1, 0.1, true, &snap));
  EXPECT_FALSE(snap.alerting);
  EXPECT_GT(snap.burn_long, 2.0);  // long alone does not page

  // A fresh bad puts BOTH windows back above the rate (short [g,b] and
  // long [b,b,g,...,b] both burn 5): a second alert edge is counted.
  EXPECT_TRUE(t.observe(1, 9.0, true, &snap));
  EXPECT_TRUE(snap.alerting);
  EXPECT_EQ(snap.alerts, 2);
}

TEST(Slo, TenantsAreIndependentAndUnknownIsZero) {
  serve::SloTracker t(slo_config());
  t.observe(1, 9.0, false);
  t.observe(2, 0.1, true);
  EXPECT_EQ(t.tenant(1).bad, 1);
  EXPECT_EQ(t.tenant(2).bad, 0);
  EXPECT_EQ(t.tenant(42).total, 0);  // unknown: zero-value snapshot
  EXPECT_EQ(t.report().size(), 2u);
  EXPECT_EQ(t.report()[0].tenant, 1u);  // keyed order
  EXPECT_EQ(t.report()[1].tenant, 2u);
}

TEST(Slo, FromEnvDefaultsAndStrictParse) {
  ProfilerReset guard;
  const auto cfg = serve::SloConfig::from_env();
  EXPECT_DOUBLE_EQ(cfg.latency_ms, 50.0);
  EXPECT_DOUBLE_EQ(cfg.objective, 0.999);
  EXPECT_EQ(cfg.short_window, 256);
  EXPECT_EQ(cfg.long_window, 4096);
  EXPECT_DOUBLE_EQ(cfg.burn_alert, 2.0);

  ::setenv("MPS_SLO_OBJECTIVE", "1.5", 1);  // outside (0, 1)
  EXPECT_THROW(serve::SloConfig::from_env(), InvalidInputError);
  ::setenv("MPS_SLO_OBJECTIVE", "nine-nines", 1);
  EXPECT_THROW(serve::SloConfig::from_env(), InvalidInputError);
  ::unsetenv("MPS_SLO_OBJECTIVE");
  ::setenv("MPS_SLO_LATENCY_MS", "-5", 1);
  EXPECT_THROW(serve::SloConfig::from_env(), InvalidInputError);
  ::unsetenv("MPS_SLO_LATENCY_MS");
  ::setenv("MPS_SLO_SHORT_WINDOW", "0", 1);  // below the floor of 1
  EXPECT_THROW(serve::SloConfig::from_env(), InvalidInputError);
  ::unsetenv("MPS_SLO_SHORT_WINDOW");
  ::setenv("MPS_SLO_SHORT_WINDOW", "64", 1);
  ::setenv("MPS_SLO_LONG_WINDOW", "32", 1);  // long < short
  EXPECT_THROW(serve::SloConfig::from_env(), InvalidInputError);
  ::unsetenv("MPS_SLO_SHORT_WINDOW");
  ::unsetenv("MPS_SLO_LONG_WINDOW");
  ::setenv("MPS_SLO_BURN_ALERT", "fast", 1);
  EXPECT_THROW(serve::SloConfig::from_env(), InvalidInputError);
}

// ---------------------------------------------------------------------------
// Engine integration: explain(), SLO stats, sharded imbalance attribution

TEST(EngineExplain, ColdResidentAndUnknownHandles) {
  ProfilerReset guard;
  serve::Engine engine(engine_config());
  EXPECT_FALSE(engine.explain(0xdead).registered);

  const auto a = small_matrix();
  const auto h = engine.register_matrix(a);
  auto ex = engine.explain(h);
  EXPECT_TRUE(ex.registered);
  EXPECT_EQ(ex.handle, h);
  EXPECT_FALSE(ex.plan_resident);  // nothing submitted yet
  EXPECT_FALSE(ex.tuned_resident);
  EXPECT_FALSE(ex.sharded);

  engine.submit_spmv(h, ones_x(a)).get();
  ex = engine.explain(h);
  EXPECT_TRUE(ex.plan_resident);
  EXPECT_GT(ex.plan_bytes, 0u);
  EXPECT_FALSE(ex.tuned_resident);  // autotune off: static merge path
  EXPECT_TRUE(ex.choice.empty());
  EXPECT_TRUE(ex.trials.empty());
}

TEST(EngineExplain, TunedDispatchRecordsTrialsAndChoice) {
  ProfilerReset guard;
  auto cfg = engine_config();
  cfg.autotune = 1;
  serve::Engine engine(cfg);
  const auto a = small_matrix();
  const auto h = engine.register_matrix(a);
  engine.submit_spmv(h, ones_x(a)).get();

  const auto ex = engine.explain(h);
  EXPECT_TRUE(ex.tuned_resident);
  EXPECT_FALSE(ex.choice.empty());
  EXPECT_FALSE(ex.trials.empty());  // the full decision record
  EXPECT_GT(ex.steady_ms, 0.0);
  EXPECT_GT(ex.tune_ms, 0.0);
  EXPECT_EQ(ex.features.nnz, a.nnz());
  EXPECT_EQ(ex.features.rows, a.num_rows);
  // The winner's steady cost is the minimum over the trials it beat.
  double best = 1e300;
  for (const auto& trial : ex.trials) best = std::min(best, trial.modeled_ms);
  EXPECT_DOUBLE_EQ(ex.steady_ms, best);
}

TEST(EngineExplain, ShardedLayoutIsReported) {
  ProfilerReset guard;
  auto cfg = engine_config();
  cfg.devices = 4;
  cfg.shard_max = 4;
  cfg.shard_min_nnz = 1;
  cfg.shard_placement = "uniform";
  serve::Engine engine(cfg);
  const auto a = small_matrix();
  const auto h = engine.register_matrix(a);

  auto ex = engine.explain(h);
  ASSERT_TRUE(ex.sharded);
  EXPECT_GE(ex.shards, 2);
  EXPECT_EQ(ex.shard_devices.size(), static_cast<std::size_t>(ex.shards));
  ASSERT_EQ(ex.shard_plans.size(), static_cast<std::size_t>(ex.shards));
  for (const auto& plan : ex.shard_plans) EXPECT_EQ(plan, "cold");

  engine.submit_spmv(h, ones_x(a)).get();
  engine.drain();
  ex = engine.explain(h);
  bool any_resident = false;
  for (const auto& plan : ex.shard_plans) {
    if (plan != "cold") any_resident = true;
  }
  EXPECT_TRUE(any_resident);
}

TEST(EngineSlo, StatsTrackTenantsAndAlerts) {
  ProfilerReset guard;
  // Generous threshold: every request is good.
  ::setenv("MPS_SLO_LATENCY_MS", "1000000", 1);
  auto cfg = engine_config();
  cfg.slo_enabled = 1;
  {
    serve::Engine engine(cfg);
    const auto a = small_matrix();
    const auto h = engine.register_matrix(a);
    for (int i = 0; i < 5; ++i) engine.submit_spmv(h, ones_x(a)).get();
    const auto stats = engine.stats();
    ASSERT_TRUE(stats.slo.enabled);
    EXPECT_DOUBLE_EQ(stats.slo.latency_ms, 1000000.0);
    ASSERT_EQ(stats.slo.tenants.size(), 1u);
    EXPECT_EQ(stats.slo.tenants[0].tenant, h);
    EXPECT_EQ(stats.slo.tenants[0].total, 5);
    EXPECT_EQ(stats.slo.tenants[0].bad, 0);
    EXPECT_EQ(stats.slo.alerting_now, 0);
  }
  // Zero threshold: every request (wall latency > 0) violates, and the
  // default 0.999 objective pages on the first violation in both windows.
  ::setenv("MPS_SLO_LATENCY_MS", "0", 1);
  {
    serve::Engine engine(cfg);
    const auto a = small_matrix();
    const auto h = engine.register_matrix(a);
    for (int i = 0; i < 5; ++i) engine.submit_spmv(h, ones_x(a)).get();
    const auto stats = engine.stats();
    ASSERT_TRUE(stats.slo.enabled);
    ASSERT_EQ(stats.slo.tenants.size(), 1u);
    EXPECT_EQ(stats.slo.tenants[0].bad, 5);
    EXPECT_TRUE(stats.slo.tenants[0].alerting);
    EXPECT_GE(stats.slo.tenants[0].alerts, 1);
    EXPECT_EQ(stats.slo.alerting_now, 1);
  }
  ::unsetenv("MPS_SLO_LATENCY_MS");
}

TEST(EngineSlo, DisabledLeavesStatsEmpty) {
  ProfilerReset guard;
  serve::Engine engine(engine_config());
  const auto a = small_matrix();
  const auto h = engine.register_matrix(a);
  engine.submit_spmv(h, ones_x(a)).get();
  const auto stats = engine.stats();
  EXPECT_FALSE(stats.slo.enabled);
  EXPECT_TRUE(stats.slo.tenants.empty());
}

TEST(EngineImbalance, HeterogeneousFleetFlagsTheSlowDevice) {
  // The acceptance scenario: a 4-device fleet with one slow part and
  // UNIFORM placement (equal diagonal spans) must produce an imbalance
  // flag naming the slow device as the straggler — its ~0.39x bandwidth
  // puts its busy time far above the fleet mean.  The matrix must be
  // large enough that per-shard kernel time is bandwidth-dominated: on a
  // small one the fixed launch overhead dominates and the slow device
  // only trails by the clock ratio (~1.46x), under the 50% threshold.
  ProfilerReset guard;
  telemetry::profiler().enable();
  auto cfg = engine_config();
  cfg.devices = 4;
  cfg.device_spec = "titan*3,slow*1";
  cfg.shard_max = 4;
  cfg.shard_min_nnz = 1;
  cfg.shard_placement = "uniform";
  serve::Engine engine(cfg);
  util::Rng rng(7);
  const auto a =
      sparse::coo_to_csr(testing::random_coo(rng, 2000, 2000, 1000000));
  const auto h = engine.register_matrix(a);
  for (int i = 0; i < 3; ++i) engine.submit_spmv(h, ones_x(a)).get();
  engine.drain();
  telemetry::profiler().disable();

  const auto rep = telemetry::profiler().report();
  EXPECT_GE(rep.shard_batches, 3);
  ASSERT_GT(rep.imbalance_total, 0);
  ASSERT_FALSE(rep.imbalance_flags.empty());
  const auto& flag = rep.imbalance_flags.back();
  EXPECT_EQ(flag.tenant, h);
  EXPECT_EQ(flag.straggler_device, 3);  // the slow slot in the spec
  EXPECT_GT(flag.ratio, 1.5);

  // The launches were attributed along the serve axes too.
  EXPECT_EQ(rep.by_phase.count("serve.spmv"), 1u);
  EXPECT_EQ(rep.by_tenant.count(h), 1u);
  bool shard_buckets = false;
  for (const auto& [key, agg] : rep.by_shard) {
    if (key.first == h && agg.launches > 0) shard_buckets = true;
  }
  EXPECT_TRUE(shard_buckets);
}

}  // namespace
}  // namespace mps
