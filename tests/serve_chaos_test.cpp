// Tests for the serving engine's fault-tolerance layer (docs/robustness.md):
// device-loss failover, bounded retry budgets with modeled backoff, the
// per-matrix circuit breaker, load shedding, and degraded mode.
//
// The load-bearing invariant everywhere is the chaos harness's: faults may
// delay or fail individual requests, but every admitted request settles
// (value or typed error, never abandoned) and every SUCCESS is bitwise
// identical to the fault-free run — the fault layer is allowed to cost
// modeled time, never answers.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/spmv.hpp"
#include "serve/engine.hpp"
#include "serve/trace.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "util/rng.hpp"
#include "vgpu/chaos.hpp"
#include "vgpu/device.hpp"
#include "vgpu/memory_model.hpp"

namespace mps::serve {
namespace {

using sparse::coo_to_csr;
using sparse::CsrD;

// Scoped setenv/unsetenv that restores the previous value (same idiom as
// tests/fault_injection_test.cpp).
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvVarGuard(const EnvVarGuard&) = delete;
  EnvVarGuard& operator=(const EnvVarGuard&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// Engines resolve fault and tuning knobs from the environment; these tests
// need a clean slate regardless of what the invoking shell exported.
class CleanFaultEnv {
 public:
  CleanFaultEnv() {
    static const char* const kVars[] = {
        "MPS_CHAOS_SCRIPT",        "MPS_CHAOS_SEED",
        "MPS_FAULT_ALLOC_N",       "MPS_FAULT_BYTE_LIMIT",
        "MPS_FAULT_BITFLIP_ALLOC", "MPS_FAULT_BITFLIP_MASK",
        "MPS_FAULT_CAPACITY",      "MPS_INTEGRITY_CHECK",
        "MPS_SERVE_RETRIES",       "MPS_SERVE_BACKOFF_MS",
        "MPS_SERVE_BACKOFF_MAX_MS", "MPS_SERVE_BREAKER_THRESHOLD",
        "MPS_SERVE_BREAKER_COOLDOWN_MS", "MPS_SERVE_SHED_WATERMARK",
        "MPS_SERVE_MAX_FAILOVERS", "MPS_SERVE_DEGRADE_CACHE_FRAC",
        "MPS_SERVE_DEGRADE_RECOVERY", "MPS_AUTOTUNE",
        "MPS_SERVE_DEVICES",       "MPS_SERVE_DEVICE_SPEC",
        "MPS_SHARD_MAX",           "MPS_SHARD_MIN_NNZ",
        "MPS_SHARD_PLACEMENT",     "MPS_SHARD_REPLICATE_HOT",
        "MPS_SHARD_2D_NNZ",
    };
    for (const char* v : kVars) {
      guards_.push_back(std::make_unique<EnvVarGuard>(v, nullptr));
    }
  }

 private:
  std::vector<std::unique_ptr<EnvVarGuard>> guards_;
};

CsrD make_matrix(std::uint64_t seed) {
  util::Rng rng(seed);
  return coo_to_csr(testing::random_coo(rng, 400, 400, 4800));
}

std::vector<double> random_x(const CsrD& a, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  return x;
}

EngineConfig test_config(unsigned threads, int batch_window,
                         std::size_t queue_cap = 1024) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.batch_window = batch_window;
  cfg.queue_capacity = queue_cap;
  cfg.plan_cache_bytes = 64u << 20;
  cfg.autotune = 0;
  // Explicit fault-layer defaults so nothing resolves from the (already
  // sanitized) environment mid-test.
  cfg.retry.max_attempts = 2;
  cfg.retry.backoff_base_ms = 0.5;
  cfg.retry.backoff_max_ms = 8.0;
  cfg.breaker.failure_threshold = 0;  // off unless the test arms it
  cfg.breaker.cooldown_ms = 250.0;
  cfg.shed_watermark = 0.0;           // off unless the test arms it
  cfg.max_failovers = 8;
  cfg.degrade_cache_frac = 0.25;
  cfg.degrade_recovery = 0;           // off unless the test arms it
  cfg.chaos_enabled = 0;
  return cfg;
}

template <typename T>
std::uint64_t hash_span(const std::vector<T>& v,
                        std::uint64_t h = 1469598103934665603ull) {
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(T); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Direct one-shot reference on a fresh fault-free device.
std::vector<double> direct_spmv(const CsrD& a, const std::vector<double>& x) {
  vgpu::Device dev;
  std::vector<double> y(static_cast<std::size_t>(a.num_rows));
  core::merge::spmv(dev, a, x, y);
  return y;
}

// ---------------------------------------------------------------------------
// Device-loss failover.

TEST(ServeChaos, DeviceLossFailoverPreservesAnswersBitwise) {
  CleanFaultEnv env;
  const auto a = make_matrix(5);
  auto cfg = test_config(/*threads=*/1, /*batch_window=*/1);
  cfg.chaos = vgpu::ChaosSchedule::parse("lose:dev=0@launch=1");
  cfg.chaos_enabled = 1;
  Engine engine(cfg);
  const MatrixHandle h = engine.register_matrix(a);

  constexpr std::size_t kRequests = 6;
  std::vector<std::future<SpmvResult>> futures;
  for (std::size_t j = 0; j < kRequests; ++j) {
    futures.push_back(engine.submit_spmv(h, random_x(a, 100 + j)));
  }
  for (std::size_t j = 0; j < kRequests; ++j) {
    const SpmvResult r = futures[j].get();  // must not throw: failover covers
    EXPECT_EQ(r.y, direct_spmv(a, random_x(a, 100 + j)))
        << "request " << j << " diverged after failover";
  }
  engine.shutdown();
  const auto s = engine.stats();
  EXPECT_EQ(s.completed, static_cast<long long>(kRequests));
  EXPECT_EQ(s.failed, 0);
  EXPECT_EQ(s.failovers, 1) << "the lone armed loss quarantines one device";
}

TEST(ServeChaos, FailoverBudgetExhaustionSettlesTheBatchAndRecovers) {
  CleanFaultEnv env;
  const auto a = make_matrix(6);
  auto cfg = test_config(1, 1);
  cfg.chaos = vgpu::ChaosSchedule::parse("lose@launch=1");  // every device
  cfg.chaos_enabled = 1;
  cfg.max_failovers = 0;  // first loss exhausts the budget
  Engine engine(cfg);
  const MatrixHandle h = engine.register_matrix(a);

  auto f1 = engine.submit_spmv(h, random_x(a, 1));
  EXPECT_THROW(f1.get(), vgpu::DeviceLostError)
      << "with no failover budget the loss settles the batch";

  // The worker was still re-provisioned: service recovers for later
  // requests (replacements are never re-armed with the schedule).
  auto f2 = engine.submit_spmv(h, random_x(a, 2));
  EXPECT_EQ(f2.get().y, direct_spmv(a, random_x(a, 2)));

  engine.shutdown();
  const auto s = engine.stats();
  EXPECT_EQ(s.failed, 1);
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.failovers, 1);
}

TEST(ServeChaos, ShardedFleetSurvivesPermanentDeviceLoss) {
  // 4-device fleet, every device armed to die permanently at its 4th
  // kernel launch.  Shards are re-placed by slot replacement, so every
  // admitted request must still settle with the bitwise fault-free
  // answer and zero drops — the chaos harness invariant, now across a
  // fleet instead of one worker pool.
  CleanFaultEnv env;
  const auto a = make_matrix(21);
  const auto b = make_matrix(22);
  auto cfg = test_config(2, 1);
  cfg.devices = 4;
  cfg.shard_min_nnz = 1024;  // 4800 nnz shards 2-wide
  cfg.max_failovers = 8;
  cfg.chaos = vgpu::ChaosSchedule::parse("lose@launch=4");
  cfg.chaos_enabled = 1;
  Engine engine(cfg);
  const MatrixHandle ha = engine.register_matrix(a);
  const MatrixHandle hb = engine.register_matrix(b);
  {
    const auto s = engine.stats();
    ASSERT_EQ(s.devices.size(), 4u);
    EXPECT_EQ(s.sharded_matrices, 2);
  }

  constexpr std::size_t kRequests = 24;
  std::vector<std::future<SpmvResult>> futures;
  for (std::size_t j = 0; j < kRequests; ++j) {
    const bool first = (j % 2 == 0);
    futures.push_back(engine.submit_spmv(first ? ha : hb,
                                         random_x(first ? a : b, 300 + j)));
  }
  for (std::size_t j = 0; j < kRequests; ++j) {
    const bool first = (j % 2 == 0);
    const SpmvResult r = futures[j].get();  // failover must cover the loss
    EXPECT_EQ(r.y, direct_spmv(first ? a : b, random_x(first ? a : b, 300 + j)))
        << "request " << j << " diverged after sharded failover";
  }
  engine.shutdown();

  const auto s = engine.stats();
  EXPECT_EQ(s.completed, static_cast<long long>(kRequests));
  EXPECT_EQ(s.failed, 0) << "every admitted request settles with a value";
  EXPECT_GE(s.failovers, 1) << "the armed losses must actually fire";
  EXPECT_LE(s.failovers, 8);
  long long lost = 0;
  for (const auto& d : s.devices) lost += d.lost;
  EXPECT_EQ(lost, s.failovers) << "per-device loss counters track failovers";
}

// ---------------------------------------------------------------------------
// Retry budgets + modeled backoff.

TEST(ServeChaos, RetryBudgetBoundsTransientFaults) {
  CleanFaultEnv env;
  const auto a = make_matrix(7);

  {  // Budget of one attempt: the injected OOM settles the request.
    auto cfg = test_config(1, 1);
    cfg.chaos = vgpu::ChaosSchedule::parse("oom@alloc=1");
    cfg.chaos_enabled = 1;
    cfg.retry.max_attempts = 1;
    Engine engine(cfg);
    const MatrixHandle h = engine.register_matrix(a);
    auto f = engine.submit_spmv(h, random_x(a, 3));
    EXPECT_THROW(f.get(), vgpu::DeviceOomError);
    engine.shutdown();
    const auto s = engine.stats();
    EXPECT_EQ(s.retries, 0);
    EXPECT_EQ(s.failed, 1);
  }
  {  // One retry in the budget: the same fault is absorbed transparently.
    auto cfg = test_config(1, 1);
    cfg.chaos = vgpu::ChaosSchedule::parse("oom@alloc=1");
    cfg.chaos_enabled = 1;
    cfg.retry.max_attempts = 2;
    Engine engine(cfg);
    const MatrixHandle h = engine.register_matrix(a);
    auto f = engine.submit_spmv(h, random_x(a, 3));
    EXPECT_EQ(f.get().y, direct_spmv(a, random_x(a, 3)));
    engine.shutdown();
    const auto s = engine.stats();
    EXPECT_EQ(s.retries, 1);
    EXPECT_EQ(s.completed, 1);
    EXPECT_EQ(s.failed, 0);
  }
}

TEST(ServeChaos, BackoffIsChargedIntoModeledTimeExactly) {
  CleanFaultEnv env;
  const auto a = make_matrix(8);
  auto cfg = test_config(1, 1);
  cfg.retry.max_attempts = 4;
  cfg.retry.backoff_base_ms = 0.5;
  cfg.retry.backoff_multiplier = 2.0;
  cfg.retry.backoff_max_ms = 8.0;
  cfg.retry.jitter_frac = 0.25;

  auto ref_cfg = cfg;  // fault-free twin
  Engine ref(ref_cfg);
  const MatrixHandle h = ref.register_matrix(a);
  const SpmvResult r_ref = ref.submit_spmv(h, random_x(a, 4)).get();
  ref.shutdown();

  cfg.chaos = vgpu::ChaosSchedule::parse("oom@alloc=1");
  cfg.chaos_enabled = 1;
  Engine engine(cfg);
  ASSERT_EQ(engine.register_matrix(a), h) << "handles are content-addressed";
  const SpmvResult r = engine.submit_spmv(h, random_x(a, 4)).get();
  engine.shutdown();

  EXPECT_EQ(r.y, r_ref.y);
  // The first admitted request's jitter salt is its handle (admit_seq 0),
  // so the exact modeled surcharge is reproducible from the policy alone.
  const double expected_backoff = cfg.retry.backoff_ms(1, h);
  EXPECT_GT(expected_backoff, 0.0);
  EXPECT_EQ(r.modeled_ms, r_ref.modeled_ms + expected_backoff)
      << "backoff must be charged into modeled time, bit for bit";
  EXPECT_EQ(engine.stats().retries, 1);
}

TEST(ServeChaos, DeadlineIsRecheckedBeforeEachRetry) {
  CleanFaultEnv env;
  // Integrity guards on: a repeating bit flip corrupts every allocation's
  // window, so every attempt fails verification and the retry loop spins
  // until the request's deadline — the re-check must convert it to
  // RequestTimeoutError instead of burning the (huge) remaining budget.
  EnvVarGuard integrity("MPS_INTEGRITY_CHECK", "1");
  const auto a = make_matrix(9);
  auto cfg = test_config(1, 1);
  cfg.chaos = vgpu::ChaosSchedule::parse("flip@alloc=1,every=1");
  cfg.chaos_enabled = 1;
  cfg.retry.max_attempts = 1000000;  // deadline, not budget, must stop it
  cfg.retry.backoff_base_ms = 0.001;
  cfg.retry.backoff_max_ms = 0.001;
  Engine engine(cfg);
  const MatrixHandle h = engine.register_matrix(a);

  SubmitOptions opts;
  opts.request_timeout = std::chrono::milliseconds(25);
  auto f = engine.submit_spmv(h, random_x(a, 5), opts);
  EXPECT_THROW(f.get(), RequestTimeoutError);
  engine.shutdown();
  const auto s = engine.stats();
  EXPECT_EQ(s.timed_out, 1);
  EXPECT_EQ(s.completed, 0);
  EXPECT_EQ(s.failed, 0) << "a deadline conversion is a timeout, not a failure";
  EXPECT_GE(s.retries, 1) << "the fault was retried before the deadline hit";
}

TEST(ServeChaos, OneShotCorruptionIsRetriedToABitwiseCleanAnswer) {
  CleanFaultEnv env;
  EnvVarGuard integrity("MPS_INTEGRITY_CHECK", "1");
  const auto a = make_matrix(10);
  auto cfg = test_config(1, 1);
  cfg.chaos = vgpu::ChaosSchedule::parse("flip@alloc=1");
  cfg.chaos_enabled = 1;
  cfg.retry.max_attempts = 4;
  Engine engine(cfg);
  const MatrixHandle h = engine.register_matrix(a);
  auto f = engine.submit_spmv(h, random_x(a, 6));
  EXPECT_EQ(f.get().y, direct_spmv(a, random_x(a, 6)))
      << "a retried corruption must never leak into the answer";
  engine.shutdown();
  EXPECT_EQ(engine.stats().completed, 1);
  EXPECT_EQ(engine.stats().failed, 0);
}

// ---------------------------------------------------------------------------
// Circuit breaker.

TEST(CircuitBreakerUnit, StateMachineTripsProbesAndRecloses) {
  CleanFaultEnv env;
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.cooldown_ms = 100.0;
  CircuitBreaker b(cfg);
  ASSERT_TRUE(b.enabled());
  const std::uint64_t key = 7;

  EXPECT_NO_THROW(b.admit(key, 0.0));
  EXPECT_FALSE(b.on_failure(key, 0.0));  // 1 of 2
  EXPECT_TRUE(b.on_failure(key, 0.0));   // trips open
  EXPECT_EQ(b.state(key), CircuitBreaker::State::kOpen);
  EXPECT_THROW(b.admit(key, 50.0), CircuitOpenError);
  EXPECT_THROW(b.admit(key, 99.9), CircuitOpenError);

  EXPECT_NO_THROW(b.admit(key, 100.0));  // cooldown elapsed: the probe
  EXPECT_EQ(b.state(key), CircuitBreaker::State::kHalfOpen);
  EXPECT_THROW(b.admit(key, 150.0), CircuitOpenError)
      << "only one probe is in flight";
  EXPECT_TRUE(b.on_failure(key, 150.0)) << "a failed probe reopens";
  EXPECT_EQ(b.state(key), CircuitBreaker::State::kOpen);
  EXPECT_THROW(b.admit(key, 249.9), CircuitOpenError);

  EXPECT_NO_THROW(b.admit(key, 250.0));  // second probe
  EXPECT_TRUE(b.on_success(key)) << "a healthy probe recloses";
  EXPECT_EQ(b.state(key), CircuitBreaker::State::kClosed);
  EXPECT_NO_THROW(b.admit(key, 250.0));

  const auto s = b.stats();
  EXPECT_EQ(s.opened, 2);
  EXPECT_EQ(s.probes, 2);
  EXPECT_EQ(s.reclosed, 1);
  EXPECT_EQ(s.fail_fast, 4);
}

TEST(ServeChaos, BreakerFailsFastAtAdmissionWhileOpen) {
  CleanFaultEnv env;
  const auto a = make_matrix(11);
  auto cfg = test_config(1, 1);
  cfg.chaos = vgpu::ChaosSchedule::parse("oom@alloc=1");
  cfg.chaos_enabled = 1;
  cfg.retry.max_attempts = 1;        // the OOM settles the first request
  cfg.breaker.failure_threshold = 1;  // ... and trips the breaker
  cfg.breaker.cooldown_ms = 1e9;      // modeled clock will never reach it
  Engine engine(cfg);
  const MatrixHandle h = engine.register_matrix(a);

  auto f = engine.submit_spmv(h, random_x(a, 7));
  EXPECT_THROW(f.get(), vgpu::DeviceOomError);
  // Settlement is asynchronous only up to the future: once it resolved,
  // the breaker has been fed.
  EXPECT_THROW(engine.submit_spmv(h, random_x(a, 8)), CircuitOpenError)
      << "an open breaker rejects synchronously at admission";
  engine.shutdown();
  const auto s = engine.stats();
  EXPECT_EQ(s.breaker.opened, 1);
  EXPECT_GE(s.breaker.fail_fast, 1);
}

TEST(ServeChaos, BreakerProbeReclosesAfterCooldown) {
  CleanFaultEnv env;
  const auto a = make_matrix(12);
  auto cfg = test_config(1, 1);
  cfg.chaos = vgpu::ChaosSchedule::parse("oom@alloc=1");
  cfg.chaos_enabled = 1;
  cfg.retry.max_attempts = 1;
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.cooldown_ms = 0.0;  // instantly eligible for the probe
  Engine engine(cfg);
  const MatrixHandle h = engine.register_matrix(a);

  auto f = engine.submit_spmv(h, random_x(a, 9));
  EXPECT_THROW(f.get(), vgpu::DeviceOomError);
  // The injected fault was one-shot, so the probe comes back healthy and
  // recloses the breaker.
  auto probe = engine.submit_spmv(h, random_x(a, 10));
  EXPECT_EQ(probe.get().y, direct_spmv(a, random_x(a, 10)));
  engine.shutdown();
  const auto s = engine.stats();
  EXPECT_EQ(s.breaker.opened, 1);
  EXPECT_EQ(s.breaker.probes, 1);
  EXPECT_EQ(s.breaker.reclosed, 1);
}

// ---------------------------------------------------------------------------
// Load shedding.

TEST(ServeChaos, LowPriorityShedsPastTheWatermark) {
  CleanFaultEnv env;
  const auto a = make_matrix(13);
  auto cfg = test_config(2, 1, /*queue_cap=*/8);
  cfg.shed_watermark = 0.5;  // shed threshold: depth 4
  cfg.start_paused = true;   // build the queue state deterministically
  Engine engine(cfg);
  const MatrixHandle h = engine.register_matrix(a);

  SubmitOptions low;
  low.priority = Priority::kLow;
  SubmitOptions high;
  high.priority = Priority::kHigh;

  std::vector<std::future<SpmvResult>> futures;
  // Below the watermark kLow admits like anyone else.
  futures.push_back(engine.submit_spmv(h, random_x(a, 0), low));
  for (std::uint64_t j = 1; j <= 3; ++j) {
    futures.push_back(engine.submit_spmv(h, random_x(a, j)));
  }
  // Depth 4 == watermark: kLow sheds, kNormal and kHigh still admit.
  EXPECT_THROW(engine.submit_spmv(h, random_x(a, 4), low), LoadShedError);
  futures.push_back(engine.submit_spmv(h, random_x(a, 5)));
  futures.push_back(engine.submit_spmv(h, random_x(a, 6), high));

  engine.resume();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  engine.shutdown();
  const auto s = engine.stats();
  EXPECT_EQ(s.shed, 1);
  EXPECT_EQ(s.completed, static_cast<long long>(futures.size()));
}

// ---------------------------------------------------------------------------
// Degraded mode under memory pressure.

TEST(ServeChaos, MemoryPressureEntersDegradedMode) {
  CleanFaultEnv env;
  const auto a = make_matrix(14);
  auto cfg = test_config(1, 1);
  cfg.chaos = vgpu::ChaosSchedule::parse("oom@alloc=1");
  cfg.chaos_enabled = 1;
  cfg.degrade_recovery = 100;  // won't recover within this test
  Engine engine(cfg);
  const MatrixHandle h = engine.register_matrix(a);

  auto f = engine.submit_spmv(h, random_x(a, 11));
  EXPECT_EQ(f.get().y, direct_spmv(a, random_x(a, 11)))
      << "the degraded plan-less path must stay bitwise-identical";
  const auto s = engine.stats();
  EXPECT_TRUE(s.degraded);
  EXPECT_EQ(s.degraded_entered, 1);
  EXPECT_EQ(s.plan_cache.capacity_bytes, (64u << 20) / 4)
      << "degraded mode shrinks the plan cache to degrade_cache_frac";
  engine.shutdown();
}

TEST(ServeChaos, DegradedModeRecoversAfterConsecutiveSuccesses) {
  CleanFaultEnv env;
  const auto a = make_matrix(15);
  auto cfg = test_config(1, 1);
  cfg.chaos = vgpu::ChaosSchedule::parse("oom@alloc=1");
  cfg.chaos_enabled = 1;
  cfg.degrade_recovery = 2;
  Engine engine(cfg);
  const MatrixHandle h = engine.register_matrix(a);

  for (std::uint64_t j = 0; j < 3; ++j) {
    auto f = engine.submit_spmv(h, random_x(a, 20 + j));
    EXPECT_EQ(f.get().y, direct_spmv(a, random_x(a, 20 + j)));
  }
  engine.shutdown();
  const auto s = engine.stats();
  EXPECT_FALSE(s.degraded) << "recovery streak must exit degraded mode";
  EXPECT_EQ(s.degraded_entered, 1);
  EXPECT_EQ(s.plan_cache.capacity_bytes, 64u << 20)
      << "recovery restores the full plan-cache budget";
  EXPECT_EQ(s.completed, 3);
}

// ---------------------------------------------------------------------------
// Trace determinism (serve/trace): identically-seeded synthetic traces are
// bitwise-stable across runs and across generating threads, and replaying
// one through differently-shaped engines yields bitwise-identical results.

bool traces_equal(const std::vector<TraceOp>& a, const std::vector<TraceOp>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].matrix != b[i].matrix ||
        a[i].matrix_b != b[i].matrix_b || a[i].x_seed != b[i].x_seed) {
      return false;
    }
  }
  return true;
}

TEST(TraceDeterminism, SyntheticTraceIsStableAcrossRunsAndThreads) {
  TraceConfig cfg;
  cfg.requests = 300;
  cfg.spadd_percent = 6;
  cfg.spgemm_percent = 2;
  cfg.seed = 123;
  const auto reference = synthetic_trace(cfg, 5);
  ASSERT_EQ(reference.size(), cfg.requests);

  EXPECT_TRUE(traces_equal(reference, synthetic_trace(cfg, 5)))
      << "same seed, same trace — repeated calls";

  std::vector<std::vector<TraceOp>> from_threads(4);
  {
    std::vector<std::thread> threads;
    for (auto& out : from_threads) {
      threads.emplace_back([&cfg, &out] { out = synthetic_trace(cfg, 5); });
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& trace : from_threads) {
    EXPECT_TRUE(traces_equal(reference, trace))
        << "trace generation must not depend on the generating thread";
  }

  auto other = cfg;
  other.seed = 124;
  EXPECT_FALSE(traces_equal(reference, synthetic_trace(other, 5)))
      << "a different seed must actually change the trace";
}

TEST(TraceDeterminism, ReplayIsBitwiseStableAcrossEngineShapes) {
  CleanFaultEnv env;
  std::vector<CsrD> tenants;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    tenants.push_back(make_matrix(seed));
  }
  TraceConfig tcfg;
  tcfg.requests = 120;
  tcfg.spadd_percent = 6;
  tcfg.spgemm_percent = 2;
  tcfg.seed = 9;
  const auto trace = synthetic_trace(tcfg, tenants.size());

  std::vector<std::uint64_t> reference;
  for (const auto& [threads, window] :
       std::vector<std::pair<unsigned, int>>{{1, 1}, {4, 8}}) {
    Engine engine(test_config(threads, window));
    std::vector<MatrixHandle> handles;
    for (const auto& a : tenants) handles.push_back(engine.register_matrix(a));

    std::vector<std::future<SpmvResult>> spmv_futs;
    std::vector<std::future<MatrixResult>> mat_futs;
    for (const auto& op : trace) {
      switch (op.kind) {
        case OpKind::kSpmv:
          spmv_futs.push_back(engine.submit_spmv(
              handles[op.matrix], random_x(tenants[op.matrix], op.x_seed)));
          break;
        case OpKind::kSpadd:
          mat_futs.push_back(
              engine.submit_spadd(handles[op.matrix], handles[op.matrix_b]));
          break;
        case OpKind::kSpgemm:
          mat_futs.push_back(
              engine.submit_spgemm(handles[op.matrix], handles[op.matrix_b]));
          break;
      }
    }
    std::vector<std::uint64_t> hashes;
    std::size_t si = 0, mi = 0;
    for (const auto& op : trace) {
      if (op.kind == OpKind::kSpmv) {
        hashes.push_back(hash_span(spmv_futs[si++].get().y));
      } else {
        const MatrixResult r = mat_futs[mi++].get();
        std::uint64_t h = hash_span(r.c.row_offsets);
        h = hash_span(r.c.col, h);
        hashes.push_back(hash_span(r.c.val, h));
      }
    }
    engine.shutdown();
    if (reference.empty()) {
      reference = std::move(hashes);
    } else {
      EXPECT_EQ(hashes, reference)
          << "threads=" << threads << " window=" << window
          << " diverged from the single-threaded replay";
    }
  }
}

}  // namespace
}  // namespace mps::serve
