// Merge-path SpGEMM: the paper's Fig 3 worked example, randomized
// validation against Gustavson, configuration ablations, the adaptive
// driver, and the work-proportional cost property.
#include <gtest/gtest.h>

#include "baselines/seq.hpp"
#include "core/spgemm.hpp"
#include "core/spgemm_adaptive.hpp"
#include "oracle.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"

namespace mps {
namespace {

using core::merge::spgemm;
using core::merge::spgemm_adaptive;
using core::merge::SpgemmConfig;
using sparse::coo_to_csr;
using testing::expect_spgemm_matches;
using testing::random_coo;

TEST(MergeSpgemm, PaperFig3WorkedExample) {
  vgpu::Device dev;
  const auto a = coo_to_csr(testing::paper_a());
  const auto b = coo_to_csr(testing::paper_b());
  sparse::CsrD c;
  const auto stats = spgemm(dev, a, b, c);
  EXPECT_EQ(stats.num_products, 11);  // Fig 3(a): 11 intermediate entries
  const std::vector<double> expect{10,  0,   0, 0,    //
                                   120, 430, 0, 340,  //
                                   0,   300, 0, 350,  //
                                   0,   120, 0, 180};
  EXPECT_EQ(testing::dense_of(c), expect);
}

TEST(MergeSpgemm, Fig3PartitioningAtTinyTiles) {
  // Forcing a tile of 6 products reproduces Fig 3(b)'s split of the 11
  // intermediate entries into two subsets; the result must be unchanged.
  vgpu::Device dev;
  const auto a = coo_to_csr(testing::paper_a());
  const auto b = coo_to_csr(testing::paper_b());
  SpgemmConfig cfg;
  cfg.block_threads = 2;
  cfg.items_per_thread = 3;  // tile = 6 as in Fig 3(b)
  sparse::CsrD c;
  const auto stats = spgemm(dev, a, b, c, cfg);
  EXPECT_EQ(stats.num_products, 11);
  expect_spgemm_matches(dev, a, b, cfg);
}

class MergeSpgemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MergeSpgemmShapes, MatchesGustavson) {
  const auto [m, k, n, nnz] = GetParam();
  vgpu::Device dev;
  util::Rng rng(static_cast<std::uint64_t>(m * 5 + k * 3 + n + nnz));
  const auto a = coo_to_csr(random_coo(rng, static_cast<index_t>(m), static_cast<index_t>(k), nnz));
  const auto b = coo_to_csr(random_coo(rng, static_cast<index_t>(k), static_cast<index_t>(n), nnz));
  expect_spgemm_matches(dev, a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeSpgemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1, 1), std::make_tuple(5, 5, 5, 10),
                      std::make_tuple(50, 60, 70, 400),
                      std::make_tuple(300, 300, 300, 3000),
                      std::make_tuple(1000, 50, 1000, 5000),
                      std::make_tuple(16, 4000, 16, 2000),
                      std::make_tuple(2000, 2000, 2000, 20000)));

TEST(MergeSpgemm, EmptyCases) {
  vgpu::Device dev;
  sparse::CsrD a(10, 10), c;
  const auto stats = spgemm(dev, a, a, c);
  EXPECT_EQ(stats.num_products, 0);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_TRUE(c.is_valid());
  // A nonzero times an empty B row contributes nothing.
  util::Rng rng(51);
  const auto x = coo_to_csr(random_coo(rng, 20, 20, 50));
  sparse::CsrD zero(20, 20);
  spgemm(dev, x, zero, c);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(MergeSpgemm, PairSortFallbackMatches) {
  // Huge column count forces col_bits + rank_bits > 32 -> pair sort.
  vgpu::Device dev;
  util::Rng rng(53);
  const auto a = coo_to_csr(random_coo(rng, 100, 1 << 22, 2000));
  const auto b = coo_to_csr(random_coo(rng, 1 << 22, 100, 2000));
  // b has 4M rows: keep it light — products still form correctly.
  const auto ref = baselines::seq::spgemm(a, b);
  sparse::CsrD c;
  const auto stats = spgemm(dev, a, b, c);
  EXPECT_FALSE(stats.used_pair_sort);  // cols(B)=100 -> embedding fits
  // Now multiply the other way: cols(B)=4M forces the fallback.
  sparse::CsrD c2;
  const auto stats2 = spgemm(dev, b, a, c2);
  EXPECT_TRUE(stats2.used_pair_sort);
  EXPECT_TRUE(c2.is_valid());
  const auto ref2 = baselines::seq::spgemm(b, a);
  const auto cmp = sparse::compare_csr(c2, ref2, 1e-9, 1e-11);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
  const auto cmp1 = sparse::compare_csr(c, ref, 1e-9, 1e-11);
  EXPECT_TRUE(cmp1.equal) << cmp1.detail;
}

TEST(MergeSpgemm, AblationConfigsMatch) {
  vgpu::Device dev;
  util::Rng rng(57);
  const auto a = coo_to_csr(random_coo(rng, 400, 400, 4000));
  for (const bool pair : {false, true}) {
    for (const bool full : {false, true}) {
      SpgemmConfig cfg;
      cfg.force_pair_sort = pair;
      cfg.force_full_bits = full;
      expect_spgemm_matches(dev, a, a, cfg);
    }
  }
}

TEST(MergeSpgemm, BitLimitingReducesBlockSortCost) {
  vgpu::Device dev;
  util::Rng rng(59);
  const auto a = coo_to_csr(random_coo(rng, 2000, 2000, 40000));
  sparse::CsrD c;
  SpgemmConfig limited;      // default: sorts log2(2000) = 11 bits, keys-only
  SpgemmConfig full;
  full.force_full_bits = true;  // 32 bits, pair sort (the 2P/28-bit regime)
  const auto s_lim = spgemm(dev, a, a, c, limited);
  const auto s_full = spgemm(dev, a, a, c, full);
  // The phase includes the expansion's memory traffic, so the sort saving
  // shows up diluted here; the raw 2x-per-pass property is asserted at the
  // primitive level (CtaRadixSort.CostScalesWithBitsAndPairs).
  EXPECT_LT(s_lim.phases.block_sort_ms, 0.85 * s_full.phases.block_sort_ms);
}

TEST(MergeSpgemm, PhaseBreakdownIsComplete) {
  vgpu::Device dev;
  util::Rng rng(61);
  const auto a = coo_to_csr(random_coo(rng, 1000, 1000, 20000));
  sparse::CsrD c;
  const auto stats = spgemm(dev, a, a, c);
  EXPECT_GT(stats.phases.setup_ms, 0.0);
  EXPECT_GT(stats.phases.block_sort_ms, 0.0);
  EXPECT_GT(stats.phases.global_sort_ms, 0.0);
  EXPECT_GT(stats.phases.product_compute_ms, 0.0);
  EXPECT_GT(stats.phases.product_reduce_ms, 0.0);
  EXPECT_GT(stats.phases.other_ms, 0.0);
  EXPECT_GT(stats.block_unique, 0);
  EXPECT_LE(stats.block_unique, stats.num_products);
}

TEST(MergeSpgemm, OomOnTinyDevice) {
  vgpu::DeviceProperties tiny = vgpu::gtx_titan();
  tiny.global_mem_bytes = 1 << 18;  // 256 KiB
  vgpu::Device dev(tiny);
  util::Rng rng(63);
  const auto a = coo_to_csr(random_coo(rng, 300, 300, 9000));
  sparse::CsrD c;
  EXPECT_THROW(spgemm(dev, a, a, c), vgpu::DeviceOomError);
}

TEST(MergeSpgemm, CostTracksProductsNotStructure) {
  // Fig 10's ρ ≈ 0.98: modeled ms per product should be nearly structure
  // independent.
  vgpu::Device dev;
  util::Rng rng(67);
  const auto uniform = coo_to_csr(random_coo(rng, 2000, 2000, 30000));
  const auto skewed = testing::random_powerlaw_csr(rng, 2000, 2000, 12.0);
  sparse::CsrD c;
  const auto su = spgemm(dev, uniform, uniform, c);
  const auto ss = spgemm(dev, skewed, skewed, c);
  const double per_u = su.modeled_ms() / static_cast<double>(su.num_products);
  const double per_s = ss.modeled_ms() / static_cast<double>(ss.num_products);
  const double ratio = per_s / per_u;
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

TEST(AdaptiveSpgemm, PicksFlatForSparse) {
  vgpu::Device dev;
  // The subject is the scheme heuristic; an ambient MPS_FAULT_* sweep
  // would flip the reported reason to "oom-retry".
  dev.fault_injector().disarm();
  util::Rng rng(71);
  const auto a = coo_to_csr(random_coo(rng, 1000, 1000, 10000));
  sparse::CsrD c;
  const auto stats = spgemm_adaptive(dev, a, a, c);
  EXPECT_FALSE(stats.used_segmented);
  EXPECT_STREQ(stats.reason, "flat");
  const auto ref = baselines::seq::spgemm(a, a);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal);
}

TEST(AdaptiveSpgemm, PicksSegmentedForDense) {
  vgpu::Device dev;
  dev.fault_injector().disarm();
  // A fully dense 64x64 block: products/row = 64*64 = num_cols * 64.
  sparse::CooD d(64, 64);
  util::Rng rng(73);
  for (index_t r = 0; r < 64; ++r)
    for (index_t cc = 0; cc < 64; ++cc) d.push_back(r, cc, rng.uniform_double(-1, 1));
  const auto a = coo_to_csr(d);
  sparse::CsrD c;
  const auto stats = spgemm_adaptive(dev, a, a, c);
  EXPECT_TRUE(stats.used_segmented);
  EXPECT_STREQ(stats.reason, "dense-like");
  const auto ref = baselines::seq::spgemm(a, a);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal);
}

TEST(AdaptiveSpgemm, PicksSegmentedUnderMemoryPressure) {
  vgpu::DeviceProperties tiny = vgpu::gtx_titan();
  tiny.global_mem_bytes = 1 << 18;
  vgpu::Device dev(tiny);
  dev.fault_injector().disarm();
  util::Rng rng(79);
  const auto a = coo_to_csr(random_coo(rng, 300, 300, 9000));
  sparse::CsrD c;
  const auto stats = spgemm_adaptive(dev, a, a, c);
  EXPECT_TRUE(stats.used_segmented);
  EXPECT_STREQ(stats.reason, "memory");
  const auto ref = baselines::seq::spgemm(a, a);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal);
}

}  // namespace
}  // namespace mps
