// Differential tests for the SpMV plan/execute split: spmv_plan +
// spmv_execute must produce BIT-identical output to one-shot spmv on
// every structural regime the fuzz suite covers, in both precisions,
// with and without the forced empty-row compaction path.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "baselines/seq.hpp"
#include "core/spmv.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps {
namespace {

using core::merge::SpmvConfig;
using core::merge::SpmvPlan;
using core::merge::spmv;
using core::merge::spmv_execute;
using core::merge::spmv_plan;
using sparse::coo_to_csr;
using sparse::CsrD;

// The structural regimes of tests/fuzz_ops_test.cpp.
enum class Regime {
  kUniform,
  kBanded,
  kPowerLaw,
  kHypersparse,
  kNearDense,
  kRectWide,
  kRectTall,
};

std::string regime_name(Regime r) {
  switch (r) {
    case Regime::kUniform: return "uniform";
    case Regime::kBanded: return "banded";
    case Regime::kPowerLaw: return "powerlaw";
    case Regime::kHypersparse: return "hypersparse";
    case Regime::kNearDense: return "neardense";
    case Regime::kRectWide: return "rectwide";
    case Regime::kRectTall: return "recttall";
  }
  return "?";
}

CsrD make_matrix(Regime r, std::uint64_t seed) {
  util::Rng rng(seed);
  switch (r) {
    case Regime::kUniform:
      return coo_to_csr(testing::random_coo(rng, 400, 400, 4800));
    case Regime::kBanded:
      return workloads::fem_banded(500, 18.0, 4.0, seed);
    case Regime::kPowerLaw:
      return testing::random_powerlaw_csr(rng, 500, 500, 6.0);
    case Regime::kHypersparse:
      return coo_to_csr(testing::random_coo(rng, 2000, 2000, 300));
    case Regime::kNearDense:
      return coo_to_csr(testing::random_coo(rng, 60, 60, 2800));
    case Regime::kRectWide:
      return coo_to_csr(testing::random_coo(rng, 64, 3000, 2500));
    case Regime::kRectTall:
      return coo_to_csr(testing::random_coo(rng, 3000, 64, 2500));
  }
  return {};
}

sparse::CsrMatrix<float> to_float(const CsrD& a) {
  sparse::CsrMatrix<float> f(a.num_rows, a.num_cols);
  f.row_offsets = a.row_offsets;
  f.col = a.col;
  f.val.reserve(a.val.size());
  for (const double v : a.val) f.val.push_back(static_cast<float>(v));
  return f;
}

class SpmvPlanDifferentialTest
    : public ::testing::TestWithParam<std::tuple<Regime, bool>> {
 protected:
  vgpu::Device dev_;
};

TEST_P(SpmvPlanDifferentialTest, ExecuteBitIdenticalToOneShotFp64) {
  const auto [regime, force_compaction] = GetParam();
  SpmvConfig cfg;
  cfg.force_compaction = force_compaction;
  for (const std::uint64_t seed : {1, 2, 3}) {
    const auto a = make_matrix(regime, seed);
    util::Rng rng(seed * 7 + 1);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols));
    for (auto& v : x) v = rng.uniform_double(-1, 1);
    std::vector<double> y_oneshot(static_cast<std::size_t>(a.num_rows));
    const auto oneshot = spmv(dev_, a, x, y_oneshot, cfg);

    const auto plan = spmv_plan(dev_, a, cfg);
    ASSERT_TRUE(plan.valid());
    EXPECT_EQ(plan.used_compaction(), oneshot.used_compaction);
    std::vector<double> y_exec(y_oneshot.size(), -1.0);
    const auto exec = spmv_execute(dev_, a, x, y_exec, plan);

    // Bit-identical: EXPECT_EQ on doubles, not NEAR.
    ASSERT_EQ(y_exec, y_oneshot) << regime_name(regime) << " seed " << seed;

    // And anchored to the sequential reference, so both paths being
    // wrong the same way is ruled out.
    std::vector<double> ref(y_oneshot.size());
    baselines::seq::spmv(a, x, ref);
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(y_exec[i], ref[i], 1e-10)
          << regime_name(regime) << " row " << i;

    EXPECT_TRUE(exec.setup_amortized);
    EXPECT_FALSE(oneshot.setup_amortized);
    EXPECT_EQ(exec.num_ctas, oneshot.num_ctas);
  }
}

TEST_P(SpmvPlanDifferentialTest, ExecuteBitIdenticalToOneShotFp32) {
  const auto [regime, force_compaction] = GetParam();
  SpmvConfig cfg;
  cfg.force_compaction = force_compaction;
  const auto a = to_float(make_matrix(regime, 11));
  util::Rng rng(23);
  std::vector<float> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = static_cast<float>(rng.uniform_double(-1, 1));
  std::vector<float> y_oneshot(static_cast<std::size_t>(a.num_rows));
  spmv(dev_, a, x, y_oneshot, cfg);

  const auto plan = spmv_plan(dev_, a, cfg);
  EXPECT_EQ(plan.value_bytes(), sizeof(float));
  std::vector<float> y_exec(y_oneshot.size(), -1.0f);
  spmv_execute(dev_, a, x, y_exec, plan);
  ASSERT_EQ(y_exec, y_oneshot) << regime_name(regime);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpmvPlanDifferentialTest,
    ::testing::Combine(::testing::Values(Regime::kUniform, Regime::kBanded,
                                         Regime::kPowerLaw, Regime::kHypersparse,
                                         Regime::kNearDense, Regime::kRectWide,
                                         Regime::kRectTall),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<Regime, bool>>& pinfo) {
      return regime_name(std::get<0>(pinfo.param)) +
             (std::get<1>(pinfo.param) ? "Compacted" : "Fast");
    });

TEST(SpmvPlan, ReusesAcrossValueChanges) {
  // The whole point of the plan: the pattern is fixed, the values are
  // not.  Re-executing after perturbing A's values must track the
  // sequential reference on the NEW values.
  vgpu::Device dev;
  util::Rng rng(301);
  auto a = coo_to_csr(testing::random_coo(rng, 300, 300, 3600));
  const auto plan = spmv_plan(dev, a);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows));
  std::vector<double> ref(y.size());
  for (int iter = 0; iter < 3; ++iter) {
    for (auto& v : a.val) v = rng.uniform_double(-3, 3);
    spmv_execute(dev, a, x, y, plan);
    baselines::seq::spmv(a, x, ref);
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(y[i], ref[i], 1e-10) << "iter " << iter << " row " << i;
  }
}

TEST(SpmvPlan, ExecuteIsCheaperThanOneShotAndAmortizes) {
  vgpu::Device dev;
  util::Rng rng(307);
  const auto a = coo_to_csr(testing::random_coo(rng, 2000, 2000, 30000));
  std::vector<double> x(2000, 1.0), y(2000);
  const double oneshot_ms = spmv(dev, a, x, y).modeled_ms();
  const auto plan = spmv_plan(dev, a);
  const auto exec = spmv_execute(dev, a, x, y, plan);
  // The steady-state per-iteration cost excludes partition entirely.
  EXPECT_LT(exec.modeled_ms(), oneshot_ms);
  EXPECT_DOUBLE_EQ(exec.partition_ms, 0.0);
  EXPECT_DOUBLE_EQ(exec.compact_ms, 0.0);
  // plan + execute recovers the one-shot total.
  EXPECT_NEAR(plan.plan_ms() + exec.modeled_ms(), oneshot_ms,
              0.01 * oneshot_ms);
  // Acceptance shape: amortized per-iteration cost strictly below
  // one-shot from 10 iterations on.
  for (const double n : {10.0, 100.0, 1000.0}) {
    EXPECT_LT((plan.plan_ms() + n * exec.modeled_ms()) / n, oneshot_ms)
        << "n=" << n;
  }
}

TEST(SpmvPlan, StatsBreakdown) {
  vgpu::Device dev;
  util::Rng rng(311);
  const auto a = coo_to_csr(testing::random_coo(rng, 500, 500, 6000));
  std::vector<double> x(500, 1.0), y(500);
  const auto oneshot = spmv(dev, a, x, y);
  EXPECT_DOUBLE_EQ(oneshot.plan_ms, oneshot.partition_ms + oneshot.compact_ms);
  EXPECT_GT(oneshot.partition_ms, 0.0);

  const auto plan = spmv_plan(dev, a);
  EXPECT_DOUBLE_EQ(plan.plan_ms(), plan.partition_ms() + plan.compact_ms());
  EXPECT_DOUBLE_EQ(plan.plan_ms(), oneshot.plan_ms);
  const auto exec = spmv_execute(dev, a, x, y, plan);
  EXPECT_DOUBLE_EQ(exec.plan_ms, plan.plan_ms());
  // integrity_ms is 0 unless the suite runs under MPS_INTEGRITY_CHECK=1.
  EXPECT_DOUBLE_EQ(exec.modeled_ms(),
                   exec.reduce_ms + exec.update_ms + exec.integrity_ms);
  EXPECT_DOUBLE_EQ(exec.reduce_ms + exec.update_ms,
                   oneshot.reduce_ms + oneshot.update_ms);
}

TEST(SpmvPlan, RejectsUnbuiltPlan) {
  vgpu::Device dev;
  const auto a = coo_to_csr(testing::paper_a());
  SpmvPlan plan;
  EXPECT_FALSE(plan.valid());
  std::vector<double> x(4, 1.0), y(4);
  EXPECT_THROW(spmv_execute(dev, a, x, y, plan), mps::PlanMismatchError);
}

TEST(SpmvPlan, RejectsPrecisionMismatch) {
  vgpu::Device dev;
  const auto a = coo_to_csr(testing::paper_a());
  const auto plan = spmv_plan(dev, a);  // fp64 plan...
  const auto af = to_float(a);
  std::vector<float> xf(4, 1.0f), yf(4);  // ...applied to fp32 data
  EXPECT_THROW(spmv_execute(dev, af, xf, yf, plan), mps::PlanMismatchError);
}

TEST(SpmvPlan, PlanHoldsDeviceMemoryUntilDestroyed) {
  vgpu::Device dev;
  util::Rng rng(313);
  const auto a = coo_to_csr(testing::random_coo(rng, 500, 500, 6000));
  const std::size_t before = dev.memory().in_use();
  {
    const auto plan = spmv_plan(dev, a);
    EXPECT_GT(plan.device_bytes(), 0u);
    EXPECT_EQ(dev.memory().in_use(), before + plan.device_bytes());
  }
  EXPECT_EQ(dev.memory().in_use(), before);
}

TEST(SpmvPlan, CompactionPathCarriesCompactedView) {
  // A matrix with empty rows takes the compaction path automatically and
  // the plan pins the compacted view (larger footprint than the fast path).
  vgpu::Device dev;
  sparse::CooD coo(100, 100);
  for (index_t r = 0; r < 100; r += 2) coo.push_back(r, r, 1.0 + r);
  const auto a = coo_to_csr(coo);
  ASSERT_TRUE(a.has_empty_rows());
  const auto plan = spmv_plan(dev, a);
  EXPECT_TRUE(plan.used_compaction());
  EXPECT_GT(plan.compact_ms(), 0.0);
  std::vector<double> x(100, 1.0), y(100), y_oneshot(100);
  spmv(dev, a, x, y_oneshot);
  spmv_execute(dev, a, x, y, plan);
  EXPECT_EQ(y, y_oneshot);
}

}  // namespace
}  // namespace mps
