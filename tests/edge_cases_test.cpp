// Final coverage sweep: configuration corners and edge conditions not
// exercised by the main suites.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/seq.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "primitives/set_ops.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "sparse/io.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"

namespace mps {
namespace {

using sparse::coo_to_csr;
using testing::random_coo;

TEST(EdgeCases, SetOpTileGeometrySweep) {
  // The set-op result must be invariant to CTA geometry.
  vgpu::Device dev;
  util::Rng rng(801);
  std::vector<std::uint32_t> a(5000), b(4000);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng.uniform(300));
  for (auto& x : b) x = static_cast<std::uint32_t>(rng.uniform(300));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::uint32_t> reference;
  for (const auto& cfg :
       {primitives::SetOpConfig{32, 1}, primitives::SetOpConfig{64, 3},
        primitives::SetOpConfig{128, 11}, primitives::SetOpConfig{256, 17}}) {
    auto res = primitives::device_set_op_keys<std::uint32_t>(
        dev, a, b, primitives::SetOp::kUnion, std::less<std::uint32_t>{}, cfg);
    if (reference.empty()) {
      reference = res.keys;
    } else {
      ASSERT_EQ(res.keys, reference)
          << cfg.block_threads << "x" << cfg.items_per_thread;
    }
  }
}

TEST(EdgeCases, SpmvSingleTileAndSingleNonzero) {
  vgpu::Device dev;
  sparse::CooD one(5, 5);
  one.push_back(3, 2, 4.5);
  const auto a = coo_to_csr(one);
  std::vector<double> x{1, 2, 3, 4, 5}, y(5, -1);
  const auto stats = core::merge::spmv(dev, a, x, y);
  EXPECT_EQ(stats.num_ctas, 1);
  EXPECT_EQ(y, (std::vector<double>{0, 0, 0, 13.5, 0}));
}

TEST(EdgeCases, SpmvTileLargerThanMatrix) {
  vgpu::Device dev;
  util::Rng rng(803);
  const auto a = coo_to_csr(random_coo(rng, 50, 50, 200));
  core::merge::SpmvConfig cfg;
  cfg.items_per_thread = 64;  // tile 8192 >> nnz
  std::vector<double> x(50, 1.0), y(50), ref(50);
  baselines::seq::spmv(a, x, ref);
  core::merge::spmv(dev, a, x, y, cfg);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], ref[i], 1e-12);
}

TEST(EdgeCases, SpgemmPlanWithForcedPairSort) {
  vgpu::Device dev;
  util::Rng rng(805);
  const auto a = coo_to_csr(random_coo(rng, 200, 200, 1600));
  core::merge::SpgemmConfig cfg;
  cfg.force_pair_sort = true;
  core::merge::SpgemmPlan plan;
  const auto stats = core::merge::spgemm_symbolic(dev, a, a, plan, cfg);
  EXPECT_TRUE(stats.used_pair_sort);
  sparse::CsrD c;
  core::merge::spgemm_numeric(dev, a, a, plan, c);
  const auto ref = baselines::seq::spgemm(a, a);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal);
}

TEST(EdgeCases, SpgemmTinyBlockGeometry) {
  // Degenerate CTA geometry (2 threads x 1 item) still correct.
  vgpu::Device dev;
  util::Rng rng(807);
  const auto a = coo_to_csr(random_coo(rng, 40, 40, 200));
  core::merge::SpgemmConfig cfg;
  cfg.block_threads = 2;
  cfg.items_per_thread = 1;
  sparse::CsrD c;
  core::merge::spgemm(dev, a, a, c, cfg);
  const auto ref = baselines::seq::spgemm(a, a);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal);
}

TEST(EdgeCases, SpmvPlanOnEmptyMatrix) {
  // Zero rows, zero nonzeros: the plan is valid and reusable, execute
  // just clears (the empty) y.
  vgpu::Device dev;
  const sparse::CsrD a(0, 5);
  const auto plan = core::merge::spmv_plan(dev, a);
  EXPECT_TRUE(plan.valid());
  EXPECT_EQ(plan.num_ctas(), 0);
  std::vector<double> x(5, 1.0), y;
  for (int i = 0; i < 3; ++i) core::merge::spmv_execute(dev, a, x, y, plan);
}

TEST(EdgeCases, SpmvPlanOnAllEmptyRows) {
  // nnz == 0 but rows > 0: every execute must fully overwrite y with 0.
  vgpu::Device dev;
  const sparse::CsrD a(7, 7);
  const auto plan = core::merge::spmv_plan(dev, a);
  EXPECT_TRUE(plan.valid());
  std::vector<double> x(7, 2.0), y(7, -1.0);
  for (int i = 0; i < 3; ++i) {
    std::fill(y.begin(), y.end(), -1.0);
    const auto stats = core::merge::spmv_execute(dev, a, x, y, plan);
    EXPECT_EQ(y, std::vector<double>(7, 0.0));
    EXPECT_TRUE(stats.setup_amortized);
  }
}

TEST(EdgeCases, SpmvPlanSingleRowAndSingleColumn) {
  vgpu::Device dev;
  util::Rng rng(809);
  // 1 x N row matrix: one long carry chain across every CTA.
  {
    sparse::CooD coo(1, 3000);
    for (index_t c = 0; c < 3000; c += 2) coo.push_back(0, c, rng.uniform_double(-1, 1));
    const auto a = coo_to_csr(coo);
    std::vector<double> x(3000, 1.0), y(1), y_oneshot(1), ref(1);
    baselines::seq::spmv(a, x, ref);
    core::merge::spmv(dev, a, x, y_oneshot);
    const auto plan = core::merge::spmv_plan(dev, a);
    core::merge::spmv_execute(dev, a, x, y, plan);
    EXPECT_EQ(y, y_oneshot);
    EXPECT_NEAR(y[0], ref[0], 1e-10);
  }
  // N x 1 column matrix: one nonzero (or none) per row.
  {
    sparse::CooD coo(3000, 1);
    for (index_t r = 0; r < 3000; r += 3) coo.push_back(r, 0, rng.uniform_double(-1, 1));
    const auto a = coo_to_csr(coo);
    ASSERT_TRUE(a.has_empty_rows());
    std::vector<double> x(1, 2.5), y(3000), y_oneshot(3000), ref(3000);
    baselines::seq::spmv(a, x, ref);
    core::merge::spmv(dev, a, x, y_oneshot);
    const auto plan = core::merge::spmv_plan(dev, a);
    EXPECT_TRUE(plan.used_compaction());
    core::merge::spmv_execute(dev, a, x, y, plan);
    EXPECT_EQ(y, y_oneshot);
    for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_NEAR(y[i], ref[i], 1e-12);
  }
}

TEST(EdgeCases, SpmvPlanFingerprintRejectsMismatchedPattern) {
  vgpu::Device dev;
  util::Rng rng(811);
  const auto a = coo_to_csr(random_coo(rng, 100, 100, 700));
  const auto plan = core::merge::spmv_plan(dev, a);
  std::vector<double> x(100, 1.0), y(100);

  // Different dimensions.
  const auto wider = coo_to_csr(random_coo(rng, 100, 120, 700));
  std::vector<double> xw(120, 1.0);
  EXPECT_THROW(core::merge::spmv_execute(dev, wider, xw, y, plan),
               mps::PlanMismatchError);
  // Different nnz.
  const auto denser = coo_to_csr(random_coo(rng, 100, 100, 900));
  EXPECT_THROW(core::merge::spmv_execute(dev, denser, x, y, plan),
               mps::PlanMismatchError);
  // Same dims and nnz, different row structure: caught by the row-offset
  // checksum, reported as an error instead of producing garbage.
  auto shifted = a;
  index_t moved = -1;
  for (index_t r = 0; r + 1 < shifted.num_rows; ++r) {
    const auto o = static_cast<std::size_t>(r) + 1;
    if (shifted.row_offsets[o] > shifted.row_offsets[o - 1] &&
        shifted.row_offsets[o] < shifted.nnz()) {
      shifted.row_offsets[o] -= 1;  // move one nonzero to the next row
      moved = r;
      break;
    }
  }
  ASSERT_GE(moved, 0);
  EXPECT_THROW(core::merge::spmv_execute(dev, shifted, x, y, plan),
               mps::PlanMismatchError);
  // The original still executes fine after the rejected attempts.
  core::merge::spmv_execute(dev, a, x, y, plan);
}

TEST(EdgeCases, MatrixMarketPrecisionRoundTrip) {
  // write -> read preserves doubles exactly (precision 17).
  sparse::CooD a(2, 2);
  a.push_back(0, 0, 1.0 / 3.0);
  a.push_back(1, 1, 1e-300);
  std::stringstream ss;
  sparse::write_matrix_market(ss, a);
  const auto b = sparse::read_matrix_market(ss);
  EXPECT_EQ(b.val[0], 1.0 / 3.0);
  EXPECT_EQ(b.val[1], 1e-300);
}

TEST(EdgeCases, DeviceLogClearAndAccumulate) {
  vgpu::Device dev;
  dev.launch("a", 1, 32, [](vgpu::Cta&) {});
  dev.launch("b", 2, 32, [](vgpu::Cta&) {});
  EXPECT_EQ(dev.log().size(), 2u);
  dev.clear_log();
  EXPECT_TRUE(dev.log().empty());
  dev.launch("c", 1, 32, [](vgpu::Cta&) {});
  EXPECT_EQ(dev.log().back().name, "c");
}

TEST(EdgeCases, KernelStatsAccumulate) {
  vgpu::Device dev;
  auto s1 = dev.launch("x", 2, 64, [](vgpu::Cta& c) { c.charge_global(100); });
  const auto s2 = dev.launch("y", 3, 64, [](vgpu::Cta& c) { c.charge_sync(); });
  const double total = s1.modeled_ms + s2.modeled_ms;
  s1 += s2;
  EXPECT_EQ(s1.num_ctas, 5);
  EXPECT_DOUBLE_EQ(s1.modeled_ms, total);
  EXPECT_EQ(s1.totals.global_bytes, 200u);
  EXPECT_EQ(s1.totals.syncs, 3u);
}

TEST(EdgeCases, MergePathMorePartsThanElements) {
  const std::vector<int> a{1, 2};
  const std::vector<int> b{3};
  const auto parts = primitives::merge_path_partitions<int>(a, b, 10);
  ASSERT_EQ(parts.size(), 10u);
  std::size_t total = 0;
  for (const auto& r : parts) total += r.size();
  EXPECT_EQ(total, 3u);
}

TEST(EdgeCases, CsrValidityCatchesCorruption) {
  auto a = coo_to_csr(testing::paper_a());
  EXPECT_TRUE(a.is_valid());
  auto bad_offsets = a;
  bad_offsets.row_offsets[2] = 99;
  EXPECT_FALSE(bad_offsets.is_valid());
  auto bad_col = a;
  bad_col.col[0] = -1;
  EXPECT_FALSE(bad_col.is_valid());
  auto unsorted_row = a;
  std::swap(unsorted_row.col[1], unsorted_row.col[2]);
  std::swap(unsorted_row.val[1], unsorted_row.val[2]);
  EXPECT_FALSE(unsorted_row.is_valid());
}

}  // namespace
}  // namespace mps
