// Tests for mps::serve — the concurrent batched serving engine.
//
// The load-bearing guarantee is differential: answers produced through
// the engine (any thread count, any batch window, any arrival order)
// must be BIT-identical to direct one-shot kernel calls, on every
// structural regime the fuzz suite covers.  Around that sit the
// operational contracts: the plan cache charges real bytes and evicts
// LRU, the bounded queue never exceeds its cap, timed-out requests fail
// without running, injected faults are retried once, and shutdown
// settles every admitted request with a value or a typed error.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/seq.hpp"
#include "telemetry/span.hpp"
#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "serve/engine.hpp"
#include "serve/plan_cache.hpp"
#include "serve/trace.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps::serve {
namespace {

using sparse::coo_to_csr;
using sparse::CsrD;

// The structural regimes of tests/fuzz_ops_test.cpp.
enum class Regime {
  kUniform,
  kBanded,
  kPowerLaw,
  kHypersparse,
  kNearDense,
  kRectWide,
  kRectTall,
};

const char* regime_name(Regime r) {
  switch (r) {
    case Regime::kUniform: return "uniform";
    case Regime::kBanded: return "banded";
    case Regime::kPowerLaw: return "powerlaw";
    case Regime::kHypersparse: return "hypersparse";
    case Regime::kNearDense: return "neardense";
    case Regime::kRectWide: return "rectwide";
    case Regime::kRectTall: return "recttall";
  }
  return "?";
}

CsrD make_matrix(Regime r, std::uint64_t seed) {
  util::Rng rng(seed);
  switch (r) {
    case Regime::kUniform:
      return coo_to_csr(testing::random_coo(rng, 400, 400, 4800));
    case Regime::kBanded:
      return workloads::fem_banded(500, 18.0, 4.0, seed);
    case Regime::kPowerLaw:
      return testing::random_powerlaw_csr(rng, 500, 500, 6.0);
    case Regime::kHypersparse:
      return coo_to_csr(testing::random_coo(rng, 2000, 2000, 300));
    case Regime::kNearDense:
      return coo_to_csr(testing::random_coo(rng, 60, 60, 2800));
    case Regime::kRectWide:
      return coo_to_csr(testing::random_coo(rng, 64, 3000, 2500));
    case Regime::kRectTall:
      return coo_to_csr(testing::random_coo(rng, 3000, 64, 2500));
  }
  return {};
}

std::vector<double> random_x(const CsrD& a, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  return x;
}

EngineConfig test_config(unsigned threads, int batch_window,
                         std::size_t queue_cap = 1024) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.batch_window = batch_window;
  cfg.queue_capacity = queue_cap;
  cfg.plan_cache_bytes = 64u << 20;
  cfg.autotune = 0;  // static merge path unless a test opts in
  return cfg;
}

// ---------------------------------------------------------------------------
// Differential: engine output vs direct kernel calls, bitwise.

class ServeDifferentialTest : public ::testing::TestWithParam<Regime> {};

TEST_P(ServeDifferentialTest, BatchedAndUnbatchedBitIdenticalToDirectSpmv) {
  const Regime regime = GetParam();
  const auto a = make_matrix(regime, 5);
  constexpr std::size_t kRequests = 11;  // one full window + a remainder

  // Direct one-shot references, one per distinct input vector.
  vgpu::Device ref_dev;
  std::vector<std::vector<double>> xs, refs;
  for (std::size_t j = 0; j < kRequests; ++j) {
    xs.push_back(random_x(a, 100 + j));
    std::vector<double> y(static_cast<std::size_t>(a.num_rows));
    core::merge::spmv(ref_dev, a, xs.back(), y);
    refs.push_back(std::move(y));
  }

  for (const int window : {1, 8}) {
    auto cfg = test_config(/*threads=*/2, window);
    cfg.start_paused = true;  // queue everything, then release: the
                              // dispatcher sees a full coalescing window
    Engine engine(cfg);
    const MatrixHandle h = engine.register_matrix(a);
    std::vector<std::future<SpmvResult>> futures;
    for (std::size_t j = 0; j < kRequests; ++j) {
      futures.push_back(engine.submit_spmv(h, xs[j]));
    }
    engine.resume();
    int max_batch_seen = 1;
    for (std::size_t j = 0; j < kRequests; ++j) {
      SpmvResult r = futures[j].get();
      // Bit-identical: EXPECT_EQ on doubles, not NEAR.  spmm shares
      // spmv's tile geometry and accumulation order, so batching must
      // not perturb a single bit.
      ASSERT_EQ(r.y, refs[j]) << regime_name(regime) << " window " << window
                              << " request " << j;
      max_batch_seen = std::max(max_batch_seen, r.batch_size);
      if (window == 1) {
        EXPECT_EQ(r.batch_size, 1);
      }
    }
    if (window > 1) {
      // All requests were queued before release, so coalescing must
      // actually have happened — this is the batched code path.
      EXPECT_GT(max_batch_seen, 1) << regime_name(regime);
      EXPECT_GE(engine.stats().batches, 1);
    }
  }

  // Anchor to the sequential reference so both paths being wrong the
  // same way is ruled out.
  std::vector<double> seq(refs[0].size());
  baselines::seq::spmv(a, xs[0], seq);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_NEAR(refs[0][i], seq[i], 1e-10) << regime_name(regime);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ServeDifferentialTest,
    ::testing::Values(Regime::kUniform, Regime::kBanded, Regime::kPowerLaw,
                      Regime::kHypersparse, Regime::kNearDense,
                      Regime::kRectWide, Regime::kRectTall),
    [](const ::testing::TestParamInfo<Regime>& pinfo) {
      return regime_name(pinfo.param);
    });

TEST(ServeEngine, SpaddAndSpgemmMatchDirectKernels) {
  util::Rng rng(71);
  const auto a = coo_to_csr(testing::random_coo(rng, 300, 300, 3600));
  const auto b = coo_to_csr(testing::random_coo(rng, 300, 300, 3000));

  vgpu::Device dev;
  CsrD add_ref, gemm_ref;
  core::merge::spadd_csr(dev, a, b, add_ref);
  core::merge::spgemm(dev, a, b, gemm_ref);

  Engine engine(test_config(2, 4));
  const auto ha = engine.register_matrix(a);
  const auto hb = engine.register_matrix(b);
  auto add_f = engine.submit_spadd(ha, hb);
  auto gemm_f = engine.submit_spgemm(ha, hb);
  const CsrD add = add_f.get().c;
  const CsrD gemm = gemm_f.get().c;

  EXPECT_EQ(add.row_offsets, add_ref.row_offsets);
  EXPECT_EQ(add.col, add_ref.col);
  EXPECT_EQ(add.val, add_ref.val);
  EXPECT_EQ(gemm.row_offsets, gemm_ref.row_offsets);
  EXPECT_EQ(gemm.col, gemm_ref.col);
  EXPECT_EQ(gemm.val, gemm_ref.val);
}

// ---------------------------------------------------------------------------
// Concurrent plan sharing (satellite): one SpmvPlan, N executing threads.

TEST(ServePlanSharing, ConcurrentExecutesBitIdenticalToSerial) {
  const auto a = make_matrix(Regime::kPowerLaw, 31);
  constexpr int kThreads = 8;

  vgpu::Device build_dev;
  const auto plan = core::merge::spmv_plan(build_dev, a);
  ASSERT_TRUE(plan.valid());

  // Serial references through the same plan.
  std::vector<std::vector<double>> xs, refs;
  for (int t = 0; t < kThreads; ++t) {
    xs.push_back(random_x(a, 500 + static_cast<std::uint64_t>(t)));
    std::vector<double> y(static_cast<std::size_t>(a.num_rows));
    core::merge::spmv_execute(build_dev, a, xs.back(), y, plan);
    refs.push_back(std::move(y));
  }

  // N threads share the plan read-only, each with its own Device (the
  // engine's workers do exactly this via the plan cache).
  std::vector<std::vector<double>> ys(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        vgpu::Device dev;
        ys[t].resize(static_cast<std::size_t>(a.num_rows));
        for (int rep = 0; rep < 5; ++rep) {
          core::merge::spmv_execute(dev, a, xs[t], ys[t], plan);
        }
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(ys[t], refs[t]) << "thread " << t;
  }
}

// ---------------------------------------------------------------------------
// Plan cache

TEST(PlanCache, HitsMissesEvictionsAndOversize) {
  vgpu::Device dev;
  util::Rng rng(91);
  const auto a = coo_to_csr(testing::random_coo(rng, 400, 400, 4000));
  const auto b = coo_to_csr(testing::random_coo(rng, 500, 500, 5000));

  const std::size_t a_bytes = core::merge::spmv_plan(dev, a).bytes();
  const std::size_t b_bytes = core::merge::spmv_plan(dev, b).bytes();

  // Capacity fits either plan alone but not both: B's insertion evicts A.
  PlanCache cache(std::max(a_bytes, b_bytes) + 16);
  bool hit = false;
  auto p1 = cache.get_or_build(dev, a, 1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().bytes_in_use, a_bytes);
  auto p2 = cache.get_or_build(dev, a, 1, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p2.get());  // the same cached plan, not a rebuild

  auto p3 = cache.get_or_build(dev, b, 2, &hit);
  EXPECT_FALSE(hit);
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes_in_use, b_bytes);
  // The evicted plan survives through the caller's shared_ptr.
  EXPECT_TRUE(p1->valid());

  // A plan larger than the whole capacity is served but never resident.
  PlanCache tiny(8);
  auto p4 = tiny.get_or_build(dev, a, 1, &hit);
  EXPECT_TRUE(p4->valid());
  EXPECT_EQ(tiny.stats().oversize, 1);
  EXPECT_EQ(tiny.stats().entries, 0u);

  // invalidate drops the entry; the next lookup rebuilds.
  cache.invalidate(2);
  EXPECT_EQ(cache.stats().entries, 0u);
  cache.get_or_build(dev, b, 2, &hit);
  EXPECT_FALSE(hit);
}

TEST(PlanCache, MixedEntriesExactByteAccountingUnderEviction) {
  // SpmvPlan and TunedPlan entries share ONE LRU and one byte budget;
  // the accounting must stay exact through insertions, evictions and
  // invalidations of either kind.
  vgpu::Device dev;
  util::Rng rng(93);
  const auto a = coo_to_csr(testing::random_coo(rng, 400, 400, 4000));
  const auto b = coo_to_csr(testing::random_coo(rng, 500, 500, 5000));

  const std::size_t plan_a_bytes = core::merge::spmv_plan(dev, a).bytes();
  const std::size_t tuned_a_bytes = autotune::TunedPlan(dev, a).bytes();
  const std::size_t tuned_b_bytes = autotune::TunedPlan(dev, b).bytes();
  // The deterministic-LRU scenario below needs the tuned entries (which
  // may hold converted storage) to dwarf the pattern-only merge plan.
  ASSERT_GT(tuned_a_bytes, plan_a_bytes);
  ASSERT_GT(tuned_b_bytes, plan_a_bytes);

  // Roomy cache: both kinds for one key coexist without collision.
  PlanCache cache(plan_a_bytes + tuned_a_bytes + tuned_b_bytes);
  bool hit = false;
  auto plan_a = cache.get_or_build(dev, a, 1, &hit);
  auto tuned_a = cache.get_or_build_tuned(dev, a, 1, &hit);
  EXPECT_FALSE(hit);
  auto tuned_b = cache.get_or_build_tuned(dev, b, 2, &hit);
  EXPECT_FALSE(hit);
  auto s = cache.stats();
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.bytes_in_use, plan_a_bytes + tuned_a_bytes + tuned_b_bytes);
  EXPECT_EQ(cache.get_or_build(dev, a, 1, &hit).get(), plan_a.get());
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.get_or_build_tuned(dev, a, 1, &hit).get(), tuned_a.get());
  EXPECT_TRUE(hit);

  // invalidate(key) drops BOTH kinds for that key, exactly.
  cache.invalidate(1);
  s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes_in_use, tuned_b_bytes);

  // Eviction pressure across kinds: capacity holds one tuned entry plus
  // the small plan.  Insert tuned_a, then plan_a (fits beside it), then
  // tuned_b — which must displace tuned_a (LRU) but keep plan_a.
  PlanCache small(tuned_b_bytes + plan_a_bytes);
  ASSERT_LE(tuned_a_bytes, small.stats().capacity_bytes);
  small.get_or_build_tuned(dev, a, 1, &hit);
  small.get_or_build(dev, a, 1, &hit);
  small.get_or_build_tuned(dev, b, 2, &hit);
  s = small.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes_in_use, plan_a_bytes + tuned_b_bytes);  // exact
  small.get_or_build(dev, a, 1, &hit);
  EXPECT_TRUE(hit);  // the merge plan survived the tuned eviction
  small.get_or_build_tuned(dev, a, 1, &hit);
  EXPECT_FALSE(hit);  // the tuned entry was the victim
}

TEST(ServeEngine, ChangedPatternReRegistrationNeverServesStaleTunedPlan) {
  // Registering a structurally different matrix yields a new handle; the
  // tuned entry built for the old pattern must never serve it (the
  // TunedPlan fingerprint guard backs the cache keying), and the new
  // handle's first request re-tunes from scratch.
  auto cfg = test_config(/*threads=*/1, /*batch_window=*/1);
  cfg.autotune = 1;
  Engine engine(cfg);

  const auto a = workloads::poisson2d(24, 24);
  const auto h1 = engine.register_matrix(a);
  const auto x = random_x(a, 5);
  const auto r1 = engine.submit_spmv(h1, x).get();
  EXPECT_FALSE(r1.plan_cache_hit);

  // Same dims, different pattern (so the same x vector applies).
  const auto b = workloads::fem_banded(a.num_rows, 5.0, 2.0, 7);
  ASSERT_EQ(b.num_cols, a.num_cols);
  const auto h2 = engine.register_matrix(b);
  EXPECT_NE(h1, h2);
  const auto r2 = engine.submit_spmv(h2, x).get();
  EXPECT_FALSE(r2.plan_cache_hit);  // re-tuned, not served from h1's entry

  std::vector<double> y_ref(static_cast<std::size_t>(b.num_rows), -999.0);
  baselines::seq::spmv(b, x, y_ref);
  ASSERT_EQ(r2.y.size(), y_ref.size());
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(r2.y[i], y_ref[i]) << i;
  }
  // The old registration still serves correctly from its own entry.
  EXPECT_TRUE(engine.submit_spmv(h1, x).get().plan_cache_hit);
}

TEST(ServeEngine, PlanCacheHitReportedThroughResults) {
  auto cfg = test_config(/*threads=*/1, /*batch_window=*/1);
  Engine engine(cfg);
  util::Rng rng(97);
  const auto a = coo_to_csr(testing::random_coo(rng, 300, 300, 3000));
  const auto h = engine.register_matrix(a);

  EXPECT_FALSE(engine.submit_spmv(h, random_x(a, 1)).get().plan_cache_hit);
  EXPECT_TRUE(engine.submit_spmv(h, random_x(a, 2)).get().plan_cache_hit);
  const auto s = engine.stats();
  EXPECT_EQ(s.plan_cache.misses, 1);
  EXPECT_EQ(s.plan_cache.hits, 1);
  EXPECT_GT(s.plan_cache.bytes_in_use, 0u);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(ServeEngine, BackpressureQueueNeverExceedsCap) {
  constexpr std::size_t kCap = 4;
  auto cfg = test_config(/*threads=*/1, /*batch_window=*/1, kCap);
  cfg.start_paused = true;
  Engine engine(cfg);
  util::Rng rng(101);
  const auto a = coo_to_csr(testing::random_coo(rng, 200, 200, 2000));
  const auto h = engine.register_matrix(a);
  const auto x = random_x(a, 3);

  std::vector<std::future<SpmvResult>> futures;
  for (std::size_t i = 0; i < kCap; ++i) {
    auto f = engine.try_submit_spmv(h, x);
    ASSERT_TRUE(f.has_value()) << i;
    futures.push_back(std::move(*f));
  }
  // Queue full: non-blocking admission refuses...
  EXPECT_FALSE(engine.try_submit_spmv(h, x).has_value());
  // ...and a bounded blocking submit times out with the typed error.
  SubmitOptions opts;
  opts.admission_timeout = std::chrono::milliseconds(20);
  EXPECT_THROW(engine.submit_spmv(h, x, opts), QueueFullError);

  auto s = engine.stats();
  EXPECT_EQ(s.queue_depth, kCap);
  EXPECT_EQ(s.peak_queue_depth, kCap);  // never exceeded the cap
  EXPECT_EQ(s.rejected_full, 2);

  engine.resume();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  s = engine.stats();
  EXPECT_EQ(s.completed, static_cast<long long>(kCap));
  EXPECT_LE(s.peak_queue_depth, kCap);
}

TEST(ServeEngine, OverloadTimesOutQueuedRequestsInsteadOfBuffering) {
  // One worker, no batching: the dispatcher may keep at most one batch
  // in flight, so a burst waits in the bounded queue where per-request
  // deadlines are enforced.  (Without capacity gating the dispatcher
  // would drain the queue straight into the pool's unbounded task
  // deque, and queue-wait timeouts could never fire under load.)
  auto cfg = test_config(/*threads=*/1, /*batch_window=*/1, /*queue_cap=*/1024);
  Engine engine(cfg);
  util::Rng rng(137);
  const auto a = coo_to_csr(testing::random_coo(rng, 1500, 1500, 60000));
  const auto h = engine.register_matrix(a);
  const auto x = random_x(a, 7);

  SubmitOptions opts;
  opts.request_timeout = std::chrono::milliseconds(5);
  constexpr int kRequests = 400;
  std::vector<std::future<SpmvResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(engine.submit_spmv(h, x, opts));
  }
  long long ok = 0, late = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++ok;
    } catch (const RequestTimeoutError&) {
      ++late;
    }
  }
  EXPECT_GT(ok, 0);    // the head of the burst ran before its deadline
  EXPECT_GT(late, 0);  // the tail expired while queued, never ran
  const auto s = engine.stats();
  EXPECT_EQ(s.timed_out, late);
  EXPECT_EQ(s.completed, ok);
  EXPECT_EQ(ok + late, static_cast<long long>(kRequests));
}

TEST(ServeEngine, RequestTimeoutFailsWithoutRunning) {
  auto cfg = test_config(/*threads=*/1, /*batch_window=*/4);
  cfg.start_paused = true;
  Engine engine(cfg);
  util::Rng rng(103);
  const auto a = coo_to_csr(testing::random_coo(rng, 200, 200, 2000));
  const auto h = engine.register_matrix(a);

  SubmitOptions opts;
  opts.request_timeout = std::chrono::milliseconds(5);
  auto doomed = engine.submit_spmv(h, random_x(a, 4), opts);
  auto healthy = engine.submit_spmv(h, random_x(a, 5));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.resume();

  EXPECT_THROW(doomed.get(), RequestTimeoutError);
  EXPECT_NO_THROW(healthy.get());
  const auto s = engine.stats();
  EXPECT_EQ(s.timed_out, 1);
  EXPECT_EQ(s.completed, 1);
}

// ---------------------------------------------------------------------------
// Fault handling

TEST(ServeEngine, RetriesOnceOnInjectedDeviceOom) {
  // The injector arms at Device construction, so the env must be set
  // while the engine builds its worker devices.
  ::setenv("MPS_FAULT_ALLOC_N", "1", 1);
  auto cfg = test_config(/*threads=*/1, /*batch_window=*/1);
  Engine engine(cfg);
  ::unsetenv("MPS_FAULT_ALLOC_N");

  util::Rng rng(107);
  const auto a = coo_to_csr(testing::random_coo(rng, 300, 300, 3000));
  const auto h = engine.register_matrix(a);
  // First submission hits the armed fault during plan build; the engine
  // retries transparently and the client sees only the value.
  SpmvResult r = engine.submit_spmv(h, random_x(a, 6)).get();
  std::vector<double> ref(static_cast<std::size_t>(a.num_rows));
  baselines::seq::spmv(a, random_x(a, 6), ref);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(r.y[i], ref[i], 1e-10);
  }
  const auto s = engine.stats();
  EXPECT_GE(s.retries, 1);
  EXPECT_EQ(s.failed, 0);
  EXPECT_EQ(s.completed, 1);
}

// ---------------------------------------------------------------------------
// Shutdown

TEST(ServeEngine, ShutdownDrainSettlesEveryAdmittedRequest) {
  auto cfg = test_config(/*threads=*/3, /*batch_window=*/4);
  Engine engine(cfg);
  util::Rng rng(109);
  const auto a = coo_to_csr(testing::random_coo(rng, 300, 300, 3000));
  const auto h = engine.register_matrix(a);

  constexpr int kRequests = 48;
  std::vector<std::future<SpmvResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(
        engine.submit_spmv(h, random_x(a, static_cast<std::uint64_t>(i))));
  }
  engine.shutdown(Engine::ShutdownMode::kDrain);

  for (auto& f : futures) EXPECT_NO_THROW(f.get());  // all ran to a value
  const auto s = engine.stats();
  EXPECT_EQ(s.completed, kRequests);
  EXPECT_EQ(s.accepted, kRequests);
  EXPECT_EQ(s.rejected_shutdown, 0);
  EXPECT_EQ(s.queue_depth, 0u);
  // Latency percentiles cover every completed request.
  EXPECT_EQ(s.latency_ms.n, static_cast<std::size_t>(kRequests));
  EXPECT_GE(s.latency_p99_ms, s.latency_p50_ms);

  // Admission is closed: blocking submit throws, try_submit declines.
  EXPECT_THROW(engine.submit_spmv(h, random_x(a, 1)), ShutdownError);
  EXPECT_FALSE(engine.try_submit_spmv(h, random_x(a, 1)).has_value());
  engine.shutdown();  // idempotent
}

TEST(ServeEngine, ShutdownRejectFailsQueuedRequestsWithTypedError) {
  auto cfg = test_config(/*threads=*/1, /*batch_window=*/1);
  cfg.start_paused = true;  // nothing dispatches: all 10 sit in the queue
  Engine engine(cfg);
  util::Rng rng(113);
  const auto a = coo_to_csr(testing::random_coo(rng, 200, 200, 2000));
  const auto h = engine.register_matrix(a);

  constexpr int kRequests = 10;
  std::vector<std::future<SpmvResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(
        engine.submit_spmv(h, random_x(a, static_cast<std::uint64_t>(i))));
  }
  engine.shutdown(Engine::ShutdownMode::kReject);

  // Settled, not abandoned: every future throws the typed error.
  for (auto& f : futures) EXPECT_THROW(f.get(), ShutdownError);
  const auto s = engine.stats();
  EXPECT_EQ(s.rejected_shutdown, kRequests);
  EXPECT_EQ(s.completed, 0);
  EXPECT_EQ(s.queue_depth, 0u);
}

// ---------------------------------------------------------------------------
// Registration + validation

TEST(ServeEngine, InvalidSubmissionsThrowSynchronously) {
  Engine engine(test_config(1, 1));
  util::Rng rng(127);
  const auto square = coo_to_csr(testing::random_coo(rng, 100, 100, 800));
  const auto wide = coo_to_csr(testing::random_coo(rng, 40, 200, 600));
  const auto h = engine.register_matrix(square);
  const auto hw = engine.register_matrix(wide);

  EXPECT_THROW(engine.submit_spmv(/*h=*/0xdead, random_x(square, 1)),
               InvalidInputError);
  EXPECT_THROW(engine.submit_spmv(h, std::vector<double>(7)),
               InvalidInputError);
  EXPECT_THROW(engine.submit_spadd(h, hw), InvalidInputError);   // shape
  EXPECT_THROW(engine.submit_spgemm(hw, hw), InvalidInputError); // dims
}

TEST(ServeEngine, SamePatternRegistersToSameHandle) {
  Engine engine(test_config(1, 1));
  util::Rng rng(131);
  auto a = coo_to_csr(testing::random_coo(rng, 100, 100, 800));
  const auto h1 = engine.register_matrix(a);
  EXPECT_EQ(pattern_fingerprint(a), h1);
  for (auto& v : a.val) v *= 2.0;  // same pattern, new values
  const auto h2 = engine.register_matrix(a);
  EXPECT_EQ(h1, h2);
  // The refreshed values are what requests see.
  std::vector<double> ref(static_cast<std::size_t>(a.num_rows));
  baselines::seq::spmv(a, std::vector<double>(100, 1.0), ref);
  const auto r = engine.submit_spmv(h1, std::vector<double>(100, 1.0)).get();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(r.y[i], ref[i], 1e-10);
  }
}

TEST(ServeEngine, DistinctColumnStructureGetsDistinctHandles) {
  // Same dims, same nnz, same row offsets — only the column indices
  // differ.  The handles must differ, or one registration would
  // silently replace the other and submits would compute against the
  // wrong matrix.
  Engine engine(test_config(1, 1));
  CsrD a(2, 2);
  a.row_offsets = {0, 1, 2};
  a.col = {0, 1};  // identity
  a.val = {1.0, 1.0};
  CsrD b = a;
  b.col = {1, 0};  // anti-diagonal
  ASSERT_TRUE(a.is_valid());
  ASSERT_TRUE(b.is_valid());

  const auto ha = engine.register_matrix(a);
  const auto hb = engine.register_matrix(b);
  EXPECT_NE(ha, hb);
  // Each tenant is served from its own matrix.
  const std::vector<double> x{2.0, 3.0};
  EXPECT_EQ(engine.submit_spmv(ha, x).get().y, (std::vector<double>{2.0, 3.0}));
  EXPECT_EQ(engine.submit_spmv(hb, x).get().y, (std::vector<double>{3.0, 2.0}));
}

// ---------------------------------------------------------------------------
// Trace generator

TEST(ServeTrace, DeterministicSkewedAndMixed) {
  TraceConfig cfg;
  cfg.requests = 4000;
  const auto t1 = synthetic_trace(cfg, 6);
  const auto t2 = synthetic_trace(cfg, 6);
  ASSERT_EQ(t1.size(), cfg.requests);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].matrix, t2[i].matrix);
    EXPECT_EQ(static_cast<int>(t1[i].kind), static_cast<int>(t2[i].kind));
    EXPECT_EQ(t1[i].x_seed, t2[i].x_seed);
  }
  std::vector<int> per_matrix(6, 0);
  int spmv = 0;
  for (const auto& op : t1) {
    ASSERT_LT(op.matrix, 6u);
    ++per_matrix[op.matrix];
    if (op.kind == OpKind::kSpmv) ++spmv;
  }
  // Zipf skew: the hottest tenant dominates the coldest.
  EXPECT_GT(per_matrix[0], per_matrix[5] * 2);
  // The op mix is mostly SpMV with a heavy-op sprinkle.
  EXPECT_GT(spmv, static_cast<int>(cfg.requests) * 8 / 10);
  EXPECT_LT(spmv, static_cast<int>(cfg.requests));
}

// ---------------------------------------------------------------------------
// Latency reservoir: a bounded ring of the most recent kLatencyWindow
// completions.

TEST(ServeStats, LatencyRingAtExactlyAndOverCapacity) {
  auto cfg = test_config(/*threads=*/4, /*batch_window=*/8,
                         /*queue_cap=*/Engine::kLatencyWindow + 128);
  Engine engine(cfg);
  util::Rng rng(211);
  const auto a = coo_to_csr(testing::random_coo(rng, 24, 24, 96));
  const auto h = engine.register_matrix(a);
  const auto x = random_x(a, 7);

  const auto submit_and_settle = [&](std::size_t n) {
    std::vector<std::future<SpmvResult>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(engine.submit_spmv(h, x));
    }
    for (auto& f : futures) f.get();
  };

  // Exactly at capacity: the ring holds every completion.
  submit_and_settle(Engine::kLatencyWindow);
  auto s = engine.stats();
  EXPECT_EQ(s.completed, static_cast<long long>(Engine::kLatencyWindow));
  EXPECT_EQ(s.latency_ms.n, Engine::kLatencyWindow);
  EXPECT_TRUE(std::isfinite(s.latency_p50_ms));
  EXPECT_TRUE(std::isfinite(s.latency_p99_ms));
  EXPECT_GE(s.latency_p99_ms, s.latency_p50_ms);

  // Over capacity: completions keep counting, the reservoir stays capped
  // at the window (oldest samples overwritten, not grown).
  submit_and_settle(64);
  s = engine.stats();
  EXPECT_EQ(s.completed, static_cast<long long>(Engine::kLatencyWindow + 64));
  EXPECT_EQ(s.latency_ms.n, Engine::kLatencyWindow);
  EXPECT_TRUE(std::isfinite(s.latency_p99_ms));
  engine.shutdown();
}

// ---------------------------------------------------------------------------
// Observability: the engine's correlated Perfetto timeline.

TEST(ServeTrace, WriteTraceCorrelatesRequestPhasesAndKernels) {
  telemetry::tracer().clear();
  telemetry::tracer().enable();
  auto cfg = test_config(/*threads=*/2, /*batch_window=*/4);
  Engine engine(cfg);
  util::Rng rng(223);
  const auto a = coo_to_csr(testing::random_coo(rng, 200, 200, 2000));
  const auto h = engine.register_matrix(a);
  std::vector<std::future<SpmvResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(
        engine.submit_spmv(h, random_x(a, static_cast<std::uint64_t>(i))));
  }
  for (auto& f : futures) f.get();
  engine.shutdown(Engine::ShutdownMode::kDrain);
  telemetry::tracer().disable();

  std::ostringstream os;
  engine.write_trace(os);
  const std::string s = os.str();
  const auto spans = telemetry::tracer().snapshot();
  telemetry::tracer().clear();

  // Request lanes, host phases, and device kernels are all present...
  EXPECT_NE(s.find("serve.request"), std::string::npos);
  EXPECT_NE(s.find("serve.execute"), std::string::npos);
  EXPECT_NE(s.find("\"process_name\""), std::string::npos);
  EXPECT_NE(s.find("vgpu worker"), std::string::npos);
  // ...and at least one request trace id reappears on a kernel event
  // (spmv kernels carry nnz-ish args; find a trace id that occurs with
  // both a span name and device_cycles nearby is overkill here — the
  // span snapshot gives us the ids directly).
  bool correlated = false;
  for (const auto& rec : spans) {
    if (rec.name != "serve.request") continue;
    const std::string tag = "\"trace_id\":" + std::to_string(rec.trace_id);
    std::size_t hits = 0;
    for (std::size_t pos = s.find(tag); pos != std::string::npos;
         pos = s.find(tag, pos + tag.size())) {
      ++hits;
    }
    if (hits >= 2) correlated = true;  // the request span + a child/kernel
  }
  EXPECT_TRUE(correlated);
}

}  // namespace
}  // namespace mps::serve
