// Property tests for merge-path partitioning.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "primitives/merge_path.hpp"
#include "util/rng.hpp"

namespace mps::primitives {
namespace {

std::vector<int> sorted_random(util::Rng& rng, std::size_t n, int key_range) {
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(key_range)));
  std::sort(v.begin(), v.end());
  return v;
}

TEST(MergePath, TrivialCases) {
  const std::vector<int> empty;
  const std::vector<int> a{1, 3, 5};
  EXPECT_EQ(merge_path<int>(a, empty, 0), 0u);
  EXPECT_EQ(merge_path<int>(a, empty, 2), 2u);
  EXPECT_EQ(merge_path<int>(a, empty, 3), 3u);
  EXPECT_EQ(merge_path<int>(empty, a, 2), 0u);
}

TEST(MergePath, AFirstTieBreaking) {
  const std::vector<int> a{5, 5};
  const std::vector<int> b{5, 5};
  // With A-first ties, the first two path steps consume all of A.
  EXPECT_EQ(merge_path<int>(a, b, 1), 1u);
  EXPECT_EQ(merge_path<int>(a, b, 2), 2u);
  EXPECT_EQ(merge_path<int>(a, b, 3), 2u);
}

TEST(MergePath, PrefixProperty) {
  // Merging the partition prefixes reproduces the prefix of the full merge.
  util::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = sorted_random(rng, rng.uniform(40), 10);
    const auto b = sorted_random(rng, rng.uniform(40), 10);
    std::vector<int> full;
    std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(full));
    for (std::size_t diag = 0; diag <= a.size() + b.size(); ++diag) {
      const std::size_t ai = merge_path<int>(a, b, diag);
      const std::size_t bi = diag - ai;
      ASSERT_LE(ai, a.size());
      ASSERT_LE(bi, b.size());
      std::vector<int> prefix;
      std::merge(a.begin(), a.begin() + static_cast<long>(ai), b.begin(),
                 b.begin() + static_cast<long>(bi), std::back_inserter(prefix));
      ASSERT_TRUE(std::equal(prefix.begin(), prefix.end(), full.begin()))
          << "diag=" << diag;
    }
  }
}

TEST(MergePath, MonotoneInDiagonal) {
  util::Rng rng(23);
  const auto a = sorted_random(rng, 500, 50);
  const auto b = sorted_random(rng, 300, 50);
  std::size_t prev = 0;
  for (std::size_t diag = 0; diag <= a.size() + b.size(); ++diag) {
    const std::size_t ai = merge_path<int>(a, b, diag);
    EXPECT_GE(ai, prev);
    EXPECT_LE(ai - prev, 1u);
    prev = ai;
  }
}

class MergePartitionTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MergePartitionTest, PartitionsAreExactAndBalanced) {
  const auto [na, nb, parts] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(na * 1000 + nb * 10 + parts));
  const auto a = sorted_random(rng, static_cast<std::size_t>(na), 20);
  const auto b = sorted_random(rng, static_cast<std::size_t>(nb), 20);
  const auto ranges =
      merge_path_partitions<int>(a, b, static_cast<std::size_t>(parts));
  ASSERT_EQ(ranges.size(), static_cast<std::size_t>(parts));

  const std::size_t total = a.size() + b.size();
  const std::size_t chunk = total == 0 ? 0 : ceil_div(total, static_cast<std::size_t>(parts));
  std::size_t covered_a = 0, covered_b = 0;
  std::vector<int> merged;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.a_begin, covered_a);
    EXPECT_EQ(r.b_begin, covered_b);
    EXPECT_LE(r.size(), chunk);
    covered_a = r.a_end;
    covered_b = r.b_end;
    merge_range<int>(a, b, r, std::back_inserter(merged));
  }
  EXPECT_EQ(covered_a, a.size());
  EXPECT_EQ(covered_b, b.size());

  std::vector<int> expect;
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(expect));
  EXPECT_EQ(merged, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergePartitionTest,
    ::testing::Values(std::make_tuple(0, 0, 1), std::make_tuple(0, 17, 4),
                      std::make_tuple(17, 0, 4), std::make_tuple(1, 1, 3),
                      std::make_tuple(100, 100, 7), std::make_tuple(1000, 10, 16),
                      std::make_tuple(10, 1000, 16), std::make_tuple(999, 998, 13),
                      std::make_tuple(4096, 4096, 64)));

}  // namespace
}  // namespace mps::primitives
