// ELL / DIA / HYB formats: conversions, applicability limits, SpMV
// kernels, and the cost trade-offs the paper's introduction describes.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/formats.hpp"
#include "baselines/seq.hpp"
#include "core/spmv.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "sparse/ell.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps {
namespace {

using sparse::coo_to_csr;
using sparse::csr_to_dia;
using sparse::csr_to_ell;
using sparse::csr_to_hyb;
using testing::random_coo;

void expect_format_spmv_matches(vgpu::Device& dev, const sparse::CsrD& a,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  std::vector<double> ref(static_cast<std::size_t>(a.num_rows));
  baselines::seq::spmv(a, x, ref);

  std::vector<double> y(ref.size(), -9);
  baselines::formats::spmv_ell(dev, csr_to_ell(a), x, y);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], ref[i], 1e-11) << i;

  std::fill(y.begin(), y.end(), -9.0);
  baselines::formats::spmv_hyb(dev, csr_to_hyb(a), x, y);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], ref[i], 1e-11) << i;
}

TEST(Formats, EllRoundTrip) {
  util::Rng rng(301);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = coo_to_csr(random_coo(rng, 80, 90, 500));
    const auto e = csr_to_ell(a);
    EXPECT_EQ(e.padded_cells(), 80LL * e.width);
    const auto cmp = sparse::compare_csr(sparse::ell_to_csr(e), a);
    ASSERT_TRUE(cmp.equal) << cmp.detail;
  }
}

TEST(Formats, EllRejectsTooNarrowWidth) {
  const auto a = coo_to_csr(testing::paper_a());  // longest row: 3
  EXPECT_NO_THROW(csr_to_ell(a, 3));
  EXPECT_THROW(csr_to_ell(a, 2), mps::InvalidInputError);
}

TEST(Formats, DiaRoundTripOnStencil) {
  const auto a = workloads::poisson2d(16, 16);
  const auto d = csr_to_dia(a);
  EXPECT_EQ(d.offsets.size(), 5u);  // 5-point stencil = 5 diagonals
  const auto cmp = sparse::compare_csr(sparse::dia_to_csr(d), a);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

TEST(Formats, DiaRejectsUnstructured) {
  util::Rng rng(303);
  const auto a = coo_to_csr(random_coo(rng, 300, 300, 3000));
  EXPECT_THROW(csr_to_dia(a, 64), mps::InvalidInputError);
}

TEST(Formats, HybSplitsHeavyTail) {
  // Power-law rows: HYB keeps a thin ELL and spills hubs to COO.
  util::Rng rng(305);
  const auto a = testing::random_powerlaw_csr(rng, 4000, 4000, 8.0);
  const auto h = csr_to_hyb(a);
  EXPECT_GT(h.coo.nnz(), 0);
  EXPECT_LT(h.ell.width, 64);
  const auto cmp = sparse::compare_csr(sparse::hyb_to_csr(h), a);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
  // Uniform rows: everything fits in ELL.
  const auto u = coo_to_csr(random_coo(rng, 500, 500, 5000));
  const auto hu = csr_to_hyb(u, /*occupancy_threshold=*/0.05);
  EXPECT_EQ(hu.coo.nnz() + static_cast<index_t>(hu.ell.width) * 0, hu.coo.nnz());
  EXPECT_TRUE(sparse::compare_csr(sparse::hyb_to_csr(hu), u).equal);
}

class FormatSpmvTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FormatSpmvTest, MatchesSeq) {
  const auto [rows, cols, nnz] = GetParam();
  vgpu::Device dev;
  util::Rng rng(static_cast<std::uint64_t>(rows * 3 + cols + nnz));
  expect_format_spmv_matches(
      dev, coo_to_csr(random_coo(rng, static_cast<index_t>(rows),
                                 static_cast<index_t>(cols), nnz)),
      static_cast<std::uint64_t>(nnz));
}

INSTANTIATE_TEST_SUITE_P(Shapes, FormatSpmvTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(100, 100, 800),
                                           std::make_tuple(1000, 700, 9000),
                                           std::make_tuple(64, 5000, 2000)));

TEST(Formats, DiaSpmvMatchesOnStencil) {
  vgpu::Device dev;
  const auto a = workloads::poisson2d(32, 32);
  util::Rng rng(307);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  std::vector<double> ref(static_cast<std::size_t>(a.num_rows)), y(ref.size());
  baselines::seq::spmv(a, x, ref);
  baselines::formats::spmv_dia(dev, csr_to_dia(a), x, y);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], ref[i], 1e-12);
}

TEST(Formats, PowerLawPaddingMakesEllSlow) {
  // The format trade-off in model terms: one hub row pads EVERY row to
  // the hub's width, so ELL's modeled time explodes while HYB (which
  // spills the hub to COO) and merge CSR stay proportional to nnz.
  vgpu::Device dev;
  util::Rng rng(309);
  sparse::CooD skew(4000, 4000);
  for (index_t r = 0; r < 4000; ++r) {
    for (int j = 0; j < 6; ++j) {
      skew.push_back(r, static_cast<index_t>(rng.uniform(4000)), 1.0);
    }
  }
  for (index_t c = 0; c < 2000; ++c) skew.push_back(0, 2 * c, 1.0);  // hub row
  skew.canonicalize();
  const auto a = coo_to_csr(skew);
  std::vector<double> x(4000, 1.0), y(4000);
  const double t_ell =
      baselines::formats::spmv_ell(dev, csr_to_ell(a), x, y).modeled_ms;
  const double t_hyb =
      baselines::formats::spmv_hyb(dev, csr_to_hyb(a), x, y).modeled_ms;
  const double t_merge = core::merge::spmv(dev, a, x, y).modeled_ms();
  EXPECT_GT(t_ell, 5.0 * t_hyb);
  EXPECT_GT(t_ell, 5.0 * t_merge);
}

TEST(Formats, DiaBeatsCsrOnStencils) {
  // Inside its envelope the specialized format wins — the paper's
  // "substantially higher using specialized storage formats" remark.
  vgpu::Device dev;
  const auto a = workloads::poisson2d(150, 150);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows));
  const double t_dia =
      baselines::formats::spmv_dia(dev, csr_to_dia(a), x, y).modeled_ms;
  const double t_merge = core::merge::spmv(dev, a, x, y).modeled_ms();
  EXPECT_LT(t_dia, t_merge);
}

}  // namespace
}  // namespace mps
