// Malformed Matrix Market inputs: every corruption class the hardened
// reader must reject with a typed ParseError carrying the offending
// 1-based line number.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sparse/io.hpp"
#include "util/error.hpp"

namespace {

using namespace mps;

struct MalformedCase {
  const char* name;
  const char* content;
  long long line;           ///< expected ParseError::line(); -1 = unknown
  const char* what_substr;  ///< must appear in the message
};

const MalformedCase kMalformedInputs[] = {
    {"empty_stream", "", -1, "empty stream"},
    {"missing_banner", "1 1 0\n", 1, "banner"},
    {"wrong_object",
     "%%MatrixMarket tensor coordinate real general\n1 1 0\n", 1,
     "matrix coordinate"},
    {"dense_array_format",
     "%%MatrixMarket matrix array real general\n1 1\n", 1,
     "matrix coordinate"},
    {"unsupported_field",
     "%%MatrixMarket matrix coordinate complex general\n1 1 0\n", 1,
     "unsupported field"},
    {"unsupported_symmetry",
     "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n", 1,
     "unsupported symmetry"},
    {"missing_size_line",
     "%%MatrixMarket matrix coordinate real general\n% only comments\n", 2,
     "missing size line"},
    {"malformed_size_line",
     "%%MatrixMarket matrix coordinate real general\nrows cols nnz\n", 2,
     "malformed size line"},
    {"size_line_trailing_garbage",
     "%%MatrixMarket matrix coordinate real general\n2 2 1 surplus\n1 1 1.0\n",
     2, "trailing characters"},
    {"negative_sizes",
     "%%MatrixMarket matrix coordinate real general\n-2 2 1\n1 1 1.0\n", 2,
     "bad size line"},
    {"dimension_overflow",
     "%%MatrixMarket matrix coordinate real general\n99999999999 1 0\n", 2,
     "dimension overflow"},
    {"nnz_overflow",
     "%%MatrixMarket matrix coordinate real general\n2 2 99999999999\n", 2,
     "nnz overflow"},
    {"symmetric_nnz_overflow",
     "%%MatrixMarket matrix coordinate real symmetric\n"
     "2000000000 2000000000 2000000000\n",
     2, "nnz overflow"},
    {"truncated_entries",
     "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", 3,
     "got 1 of 2"},
    {"non_numeric_index",
     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n", 3,
     "malformed entry"},
    {"non_numeric_value",
     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n", 3,
     "malformed value"},
    {"entry_trailing_garbage",
     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0 9\n", 3,
     "trailing characters"},
    {"row_index_too_large",
     "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n", 3,
     "out of range"},
    {"col_index_zero",
     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1.0\n", 3,
     "out of range"},
};

class MalformedMatrixMarket
    : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedMatrixMarket, RaisesParseErrorWithLine) {
  const MalformedCase& c = GetParam();
  std::istringstream in(c.content);
  try {
    sparse::read_matrix_market(in);
    FAIL() << "expected ParseError for case " << c.name;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), c.line) << e.what();
    EXPECT_NE(std::string(e.what()).find(c.what_substr), std::string::npos)
        << "message '" << e.what() << "' lacks '" << c.what_substr << "'";
    if (c.line >= 0) {
      // The rendered message carries the line too, for catch sites that
      // only log what().
      EXPECT_NE(std::string(e.what()).find("line " + std::to_string(c.line)),
                std::string::npos)
          << e.what();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Table, MalformedMatrixMarket,
                         ::testing::ValuesIn(kMalformedInputs),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(MatrixMarketErrors, ParseErrorIsCatchableAsTaxonomyRoot) {
  std::istringstream in("not matrix market");
  EXPECT_THROW(sparse::read_matrix_market(in), mps::Error);
}

TEST(MatrixMarketErrors, MissingFileRaisesIoError) {
  EXPECT_THROW(
      sparse::read_matrix_market_file("/nonexistent/dir/matrix.mtx"),
      IoError);
}

TEST(MatrixMarketErrors, UnwritablePathRaisesIoError) {
  sparse::CooMatrix<double> a(1, 1);
  a.push_back(0, 0, 1.0);
  EXPECT_THROW(
      sparse::write_matrix_market_file("/nonexistent/dir/matrix.mtx", a),
      IoError);
}

// Well-formed inputs keep parsing after the hardening.

TEST(MatrixMarketErrors, PatternAndSymmetricStillParse) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% comment line\n"
      "\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const auto a = sparse::read_matrix_market(in);
  EXPECT_EQ(a.num_rows, 3);
  EXPECT_EQ(a.num_cols, 3);
  // (2,1) mirrors to (1,2); the diagonal (3,3) does not.
  EXPECT_EQ(a.nnz(), 3);
  for (double v : a.val) EXPECT_EQ(v, 1.0);
}

TEST(MatrixMarketErrors, IntegerFieldAndCommentsBetweenEntriesParse) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "% interleaved comment\n"
      "1 1 4\n"
      "2 2 -7\n");
  const auto a = sparse::read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_EQ(a.val[0], 4.0);
  EXPECT_EQ(a.val[1], -7.0);
}

}  // namespace
