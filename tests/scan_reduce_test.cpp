// Tests for scans and device reduce-by-key.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "primitives/reduce_by_key.hpp"
#include "primitives/scan.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {
namespace {

TEST(Scan, ExclusiveInPlace) {
  std::vector<int> xs{3, 1, 4, 1, 5};
  const int total = exclusive_scan_inplace(std::span<int>(xs));
  EXPECT_EQ(total, 14);
  EXPECT_EQ(xs, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(Scan, ExclusiveEmpty) {
  std::vector<int> xs;
  EXPECT_EQ(exclusive_scan_inplace(std::span<int>(xs)), 0);
}

TEST(Scan, DeviceScanMatchesHostAndCharges) {
  vgpu::Device dev;
  util::Rng rng(2);
  std::vector<long long> in(50000);
  for (auto& x : in) x = static_cast<long long>(rng.uniform(100));
  std::vector<long long> out(in.size());
  const long long total = device_exclusive_scan(
      dev, "scan", std::span<const long long>(in), std::span<long long>(out));
  long long acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(out[i], acc);
    acc += in[i];
  }
  EXPECT_EQ(total, acc);
  ASSERT_FALSE(dev.log().empty());
  EXPECT_GT(dev.log().back().totals.global_bytes, 0u);
}

TEST(Scan, DeviceScanAliasedInOut) {
  vgpu::Device dev;
  std::vector<int> xs{5, 5, 5, 5};
  device_exclusive_scan(dev, "scan", std::span<const int>(xs), std::span<int>(xs));
  EXPECT_EQ(xs, (std::vector<int>{0, 5, 10, 15}));
}

TEST(ReduceByKey, Simple) {
  vgpu::Device dev;
  const std::vector<std::uint64_t> keys{1, 1, 2, 5, 5, 5};
  const std::vector<double> vals{1, 2, 3, 4, 5, 6};
  auto res = device_reduce_by_key<std::uint64_t, double>(dev, "rbk", keys, vals);
  EXPECT_EQ(res.keys, (std::vector<std::uint64_t>{1, 2, 5}));
  EXPECT_EQ(res.vals, (std::vector<double>{3, 3, 15}));
  EXPECT_GT(res.modeled_ms, 0.0);
}

TEST(ReduceByKey, Empty) {
  vgpu::Device dev;
  auto res = device_reduce_by_key<std::uint64_t, double>(dev, "rbk", {}, {});
  EXPECT_TRUE(res.keys.empty());
}

TEST(ReduceByKey, AllUniqueAndAllEqual) {
  vgpu::Device dev;
  std::vector<std::uint64_t> unique_keys(10000);
  std::iota(unique_keys.begin(), unique_keys.end(), 0);
  std::vector<double> ones(unique_keys.size(), 1.0);
  auto res = device_reduce_by_key<std::uint64_t, double>(dev, "rbk", unique_keys, ones);
  EXPECT_EQ(res.keys.size(), unique_keys.size());

  std::vector<std::uint64_t> same(10000, 9);
  auto res2 = device_reduce_by_key<std::uint64_t, double>(dev, "rbk", same, ones);
  ASSERT_EQ(res2.keys.size(), 1u);
  EXPECT_DOUBLE_EQ(res2.vals[0], 10000.0);
}

TEST(ReduceByKey, CrossesTileBoundaries) {
  // A segment spanning multiple 2048-element tiles must still reduce once.
  vgpu::Device dev;
  std::vector<std::uint64_t> keys;
  std::vector<double> vals;
  for (int seg = 0; seg < 5; ++seg) {
    for (int i = 0; i < 3000; ++i) {
      keys.push_back(static_cast<std::uint64_t>(seg));
      vals.push_back(1.0);
    }
  }
  auto res = device_reduce_by_key<std::uint64_t, double>(dev, "rbk", keys, vals);
  ASSERT_EQ(res.keys.size(), 5u);
  for (double v : res.vals) EXPECT_DOUBLE_EQ(v, 3000.0);
}

TEST(ReduceByKey, RandomAgainstReference) {
  vgpu::Device dev;
  util::Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 1 + rng.uniform(20000);
    std::vector<std::uint64_t> keys(n);
    std::vector<double> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = rng.uniform(200);
      vals[i] = static_cast<double>(rng.uniform(10));
    }
    std::sort(keys.begin(), keys.end());
    // Reference.
    std::vector<std::uint64_t> rk;
    std::vector<double> rv;
    for (std::size_t i = 0; i < n; ++i) {
      if (rk.empty() || rk.back() != keys[i]) {
        rk.push_back(keys[i]);
        rv.push_back(0.0);
      }
      rv.back() += vals[i];
    }
    auto res = device_reduce_by_key<std::uint64_t, double>(dev, "rbk", keys, vals);
    ASSERT_EQ(res.keys, rk);
    for (std::size_t i = 0; i < rv.size(); ++i) ASSERT_DOUBLE_EQ(res.vals[i], rv[i]);
  }
}

}  // namespace
}  // namespace mps::primitives
