// Chaos-schedule tests: the script grammar, the seeded generator, and
// the launch-side fault classes (device loss, stragglers) they drive.
//
// The determinism contract under test: a chaos schedule is data, not
// randomness at fire time — the same schedule armed on the same device
// produces the same faults at the same launch ordinals, and a disarmed
// (or empty) schedule leaves modeled results bitwise-identical to a
// device with no chaos layer at all.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/spmv.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "util/rng.hpp"
#include "vgpu/chaos.hpp"
#include "vgpu/device.hpp"

namespace {

using namespace mps;
using vgpu::ChaosEvent;
using vgpu::ChaosSchedule;

/// Restores (or re-clears) an environment variable on scope exit.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvVarGuard(const EnvVarGuard&) = delete;
  EnvVarGuard& operator=(const EnvVarGuard&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

vgpu::Device make_clean_device() {
  vgpu::Device dev;
  dev.fault_injector().disarm();
  dev.fault_injector().reset_counters();
  return dev;
}

/// A no-cost kernel launch: advances the launch ordinal without any
/// modeled time, so launch-triggered events can be stepped one by one.
void noop_launch(vgpu::Device& dev) {
  dev.launch("chaos_test_noop", 1, 32, [](vgpu::Cta&) {});
}

// ---------------------------------------------------------------------------
// Script grammar.

TEST(ChaosScript, ParsesEveryVerbAndRoundTrips) {
  const std::string script =
      "lose:dev=1@launch=40; straggle:dev=0@launch=4,x=8,every=16; "
      "oom@alloc=12; flip:dev=2@alloc=16,offset=3,mask=0x80,every=64";
  const ChaosSchedule sched = ChaosSchedule::parse(script);
  ASSERT_EQ(sched.events.size(), 4u);

  EXPECT_EQ(sched.events[0].kind, ChaosEvent::Kind::kDeviceLoss);
  EXPECT_EQ(sched.events[0].device, 1);
  EXPECT_EQ(sched.events[0].at_launch, 40);

  EXPECT_EQ(sched.events[1].kind, ChaosEvent::Kind::kStraggler);
  EXPECT_EQ(sched.events[1].device, 0);
  EXPECT_EQ(sched.events[1].factor, 8.0);
  EXPECT_EQ(sched.events[1].every, 16);

  EXPECT_EQ(sched.events[2].kind, ChaosEvent::Kind::kAllocFail);
  EXPECT_EQ(sched.events[2].device, -1);  // no :dev= → every device
  EXPECT_EQ(sched.events[2].at_alloc, 12);

  EXPECT_EQ(sched.events[3].kind, ChaosEvent::Kind::kBitFlip);
  EXPECT_EQ(sched.events[3].offset, 3u);
  EXPECT_EQ(sched.events[3].mask, 0x80);
  EXPECT_EQ(sched.events[3].every, 64);

  // to_script() → parse() is the identity on the canonical form.
  const std::string canonical = sched.to_script();
  EXPECT_EQ(ChaosSchedule::parse(canonical).to_script(), canonical);
}

TEST(ChaosScript, LossByModeledTimeParses) {
  const ChaosSchedule sched = ChaosSchedule::parse("lose@ms=2.5");
  ASSERT_EQ(sched.events.size(), 1u);
  EXPECT_EQ(sched.events[0].at_modeled_ms, 2.5);
  EXPECT_EQ(sched.events[0].at_launch, 0);
}

TEST(ChaosScript, MalformedScriptsAreRejectedNamingTheSource) {
  const char* bad[] = {
      "explode@launch=1",          // unknown verb
      "lose",                      // no trigger section
      "lose@",                     // empty trigger
      "lose@launch=zero",          // non-numeric
      "lose@launch=0",             // ordinals are 1-based
      "straggle@launch=4,x=0.5",   // factor must be >= 1
      "straggle@x=4",              // missing trigger
      "oom@launch=3",              // wrong trigger for the verb
      "flip@alloc=1,mask=0x1FF",   // mask exceeds one byte
      "flip@alloc=1,color=red",    // unknown parameter
  };
  for (const char* script : bad) {
    SCOPED_TRACE(script);
    try {
      ChaosSchedule::parse(script, "test source");
      FAIL() << "expected InvalidInputError for: " << script;
    } catch (const InvalidInputError& e) {
      EXPECT_NE(std::string(e.what()).find("test source"), std::string::npos)
          << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Environment resolution (strict parsing — satellite of the chaos layer).

TEST(ChaosEnv, ScriptWinsOverSeed) {
  EnvVarGuard script("MPS_CHAOS_SCRIPT", "lose@launch=5");
  EnvVarGuard seed("MPS_CHAOS_SEED", "9");
  const ChaosSchedule sched = ChaosSchedule::from_env(4);
  ASSERT_EQ(sched.events.size(), 1u);
  EXPECT_EQ(sched.events[0].kind, ChaosEvent::Kind::kDeviceLoss);
  EXPECT_EQ(sched.events[0].at_launch, 5);
}

TEST(ChaosEnv, SeedZeroOrUnsetDisables) {
  {
    EnvVarGuard script("MPS_CHAOS_SCRIPT", nullptr);
    EnvVarGuard seed("MPS_CHAOS_SEED", nullptr);
    EXPECT_TRUE(ChaosSchedule::from_env(4).empty());
  }
  {
    EnvVarGuard script("MPS_CHAOS_SCRIPT", nullptr);
    EnvVarGuard seed("MPS_CHAOS_SEED", "0");
    EXPECT_TRUE(ChaosSchedule::from_env(4).empty());
  }
}

TEST(ChaosEnv, MalformedValuesAreRejectedNamingTheVariable) {
  {
    EnvVarGuard script("MPS_CHAOS_SCRIPT", "lose@launch=banana");
    try {
      ChaosSchedule::from_env(2);
      FAIL() << "expected InvalidInputError";
    } catch (const InvalidInputError& e) {
      EXPECT_NE(std::string(e.what()).find("MPS_CHAOS_SCRIPT"),
                std::string::npos)
          << e.what();
    }
  }
  {
    EnvVarGuard script("MPS_CHAOS_SCRIPT", nullptr);
    EnvVarGuard seed("MPS_CHAOS_SEED", "not-a-number");
    try {
      ChaosSchedule::from_env(2);
      FAIL() << "expected InvalidInputError";
    } catch (const InvalidInputError& e) {
      EXPECT_NE(std::string(e.what()).find("MPS_CHAOS_SEED"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ChaosEnv, SeededScheduleIsDeterministic) {
  const ChaosSchedule a = ChaosSchedule::seeded(7, 4);
  const ChaosSchedule b = ChaosSchedule::seeded(7, 4);
  EXPECT_EQ(a.to_script(), b.to_script());
  // One loss + (straggler, oom, flip) per device.
  EXPECT_EQ(a.events.size(), 1u + 3u * 4u);
  const ChaosSchedule c = ChaosSchedule::seeded(8, 4);
  EXPECT_NE(a.to_script(), c.to_script());
}

// ---------------------------------------------------------------------------
// Device loss.

TEST(DeviceLoss, LaunchOrdinalTriggerIsPermanent) {
  auto dev = make_clean_device();
  dev.fault_injector().arm_chaos(ChaosSchedule::parse("lose@launch=3"), 0);
  noop_launch(dev);
  noop_launch(dev);
  EXPECT_THROW(noop_launch(dev), vgpu::DeviceLostError);
  // Permanence: every later launch AND every later allocation refuses.
  EXPECT_THROW(noop_launch(dev), vgpu::DeviceLostError);
  EXPECT_THROW(vgpu::ScopedDeviceAlloc(dev.memory(), 64),
               vgpu::DeviceLostError);
  EXPECT_TRUE(dev.fault_injector().lost());
  EXPECT_EQ(dev.fault_injector().losses_injected(), 1);
}

TEST(DeviceLoss, ModeledTimeTriggerFires) {
  // ms=0 trips on the first launch (cumulative modeled time 0 >= 0); a
  // real workload uses this to schedule losses by timeline position.
  auto dev = make_clean_device();
  dev.fault_injector().arm_chaos(ChaosSchedule::parse("lose@ms=0"), 0);
  EXPECT_THROW(noop_launch(dev), vgpu::DeviceLostError);
  EXPECT_TRUE(dev.fault_injector().lost());
}

TEST(DeviceLoss, DisarmRestoresService) {
  auto dev = make_clean_device();
  dev.fault_injector().lose_now();
  EXPECT_THROW(noop_launch(dev), vgpu::DeviceLostError);
  dev.fault_injector().disarm_chaos();
  noop_launch(dev);  // healthy again
  EXPECT_FALSE(dev.fault_injector().lost());
}

TEST(DeviceLoss, PerDeviceArmingFiltersByOrdinal) {
  const ChaosSchedule sched = ChaosSchedule::parse("lose:dev=1@launch=1");
  auto dev0 = make_clean_device();
  dev0.fault_injector().arm_chaos(sched, /*device_ordinal=*/0);
  EXPECT_FALSE(dev0.fault_injector().chaos_armed());
  noop_launch(dev0);  // unaffected

  auto dev1 = make_clean_device();
  dev1.fault_injector().arm_chaos(sched, /*device_ordinal=*/1);
  EXPECT_TRUE(dev1.fault_injector().chaos_armed());
  EXPECT_THROW(noop_launch(dev1), vgpu::DeviceLostError);
}

// ---------------------------------------------------------------------------
// Stragglers.

TEST(Straggler, InflatesModeledTimeByExactFactor) {
  util::Rng rng(31);
  const auto a = sparse::coo_to_csr(mps::testing::random_coo(rng, 120, 120, 900));
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);

  // Baseline: per-launch modeled times on a fault-free device.
  auto base = make_clean_device();
  std::vector<double> y_base(static_cast<std::size_t>(a.num_rows), 0.0);
  core::merge::spmv(base, a, x, y_base);
  ASSERT_FALSE(base.log().empty());

  // Same workload with EVERY launch slowed 2x (factor 2 scales doubles
  // exactly, so the comparison below is bitwise, not tolerance).
  auto slow = make_clean_device();
  slow.fault_injector().arm_chaos(
      ChaosSchedule::parse("straggle@launch=1,x=2,every=1"), 0);
  std::vector<double> y_slow(static_cast<std::size_t>(a.num_rows), 0.0);
  core::merge::spmv(slow, a, x, y_slow);

  // Results are untouched — stragglers bend the clock, never the data.
  EXPECT_EQ(y_base, y_slow);
  ASSERT_EQ(base.log().size(), slow.log().size());
  for (std::size_t i = 0; i < base.log().size(); ++i) {
    EXPECT_EQ(slow.log()[i].modeled_ms, 2.0 * base.log()[i].modeled_ms)
        << "launch " << i << " (" << base.log()[i].name << ")";
  }
  EXPECT_EQ(slow.modeled_total_ms(), 2.0 * base.modeled_total_ms());
  EXPECT_EQ(slow.fault_injector().stragglers_injected(),
            static_cast<long long>(slow.log().size()));
}

TEST(Straggler, EveryKRepeatsFromTheTriggerOrdinal) {
  auto dev = make_clean_device();
  dev.fault_injector().arm_chaos(
      ChaosSchedule::parse("straggle@launch=2,x=4,every=3"), 0);
  for (int i = 0; i < 8; ++i) noop_launch(dev);
  // Fires at launches 2, 5, 8.
  EXPECT_EQ(dev.fault_injector().stragglers_injected(), 3);
  EXPECT_EQ(dev.fault_injector().launches_observed(), 8);
}

TEST(Straggler, OneShotWithoutEvery) {
  auto dev = make_clean_device();
  dev.fault_injector().arm_chaos(ChaosSchedule::parse("straggle@launch=2,x=4"),
                                 0);
  for (int i = 0; i < 6; ++i) noop_launch(dev);
  EXPECT_EQ(dev.fault_injector().stragglers_injected(), 1);
}

TEST(Straggler, OverlappingFactorsMultiply) {
  util::Rng rng(37);
  const auto a = sparse::coo_to_csr(mps::testing::random_coo(rng, 80, 80, 500));
  std::vector<double> x(static_cast<std::size_t>(a.num_cols), 1.0);

  auto base = make_clean_device();
  std::vector<double> y(static_cast<std::size_t>(a.num_rows), 0.0);
  core::merge::spmv(base, a, x, y);

  auto slow = make_clean_device();
  slow.fault_injector().arm_chaos(
      ChaosSchedule::parse(
          "straggle@launch=1,x=2,every=1;straggle@launch=1,x=4,every=1"),
      0);
  core::merge::spmv(slow, a, x, y);
  // Both events match every launch: 2 * 4 = 8x, exactly.
  EXPECT_EQ(slow.modeled_total_ms(), 8.0 * base.modeled_total_ms());
}

// ---------------------------------------------------------------------------
// Reserve-side chaos events route onto the existing injector machinery.

TEST(ChaosReserveEvents, OomAndFlipArmTheInjector) {
  const ChaosSchedule sched =
      ChaosSchedule::parse("oom@alloc=2;flip@alloc=1,offset=0,mask=0x01");
  auto dev = make_clean_device();
  dev.fault_injector().arm_chaos(sched, 0);
  EXPECT_TRUE(dev.fault_injector().armed());

  // Allocation 1 succeeds but its window is corrupted; allocation 2 OOMs.
  std::vector<double> window(8, 1.0);
  vgpu::ScopedDeviceAlloc a1(dev.memory(), 64, window.data(), 64);
  EXPECT_EQ(dev.fault_injector().bitflips_injected(), 1);
  EXPECT_NE(window[0], 1.0);  // low byte of the first double XORed
  EXPECT_THROW(vgpu::ScopedDeviceAlloc(dev.memory(), 64),
               vgpu::DeviceOomError);
}

TEST(ChaosReserveEvents, ChaosAllocOrdinalsAreRelativeToArming) {
  // Arming after N allocations schedules the event N+at_alloc absolute —
  // "the 2nd allocation from now", matching how the serving engine arms
  // devices that already carry resident matrices.
  auto dev = make_clean_device();
  vgpu::ScopedDeviceAlloc pre(dev.memory(), 32);  // 1st absolute
  dev.fault_injector().arm_chaos(ChaosSchedule::parse("oom@alloc=2"), 0);
  vgpu::ScopedDeviceAlloc ok(dev.memory(), 32);  // 1st after arming
  EXPECT_THROW(vgpu::ScopedDeviceAlloc(dev.memory(), 32),
               vgpu::DeviceOomError);
}

}  // namespace
