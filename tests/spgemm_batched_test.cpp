// Batched SpGEMM: correctness across batch sizes and the memory-ceiling
// lift (completing instances whose monolithic intermediate cannot fit).
#include <gtest/gtest.h>

#include "baselines/seq.hpp"
#include "core/spgemm.hpp"
#include "core/spgemm_batched.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps {
namespace {

using core::merge::spgemm_batched;
using sparse::coo_to_csr;
using testing::random_coo;

class BatchedSpgemmTest : public ::testing::TestWithParam<long long> {};

TEST_P(BatchedSpgemmTest, MatchesMonolithicAtEveryBatchSize) {
  vgpu::Device dev;
  util::Rng rng(701);
  const auto a = coo_to_csr(random_coo(rng, 300, 300, 3000));
  const auto ref = baselines::seq::spgemm(a, a);
  sparse::CsrD c;
  const auto stats = spgemm_batched(dev, a, a, c, GetParam());
  const auto cmp = sparse::compare_csr(c, ref, 1e-9, 1e-11);
  EXPECT_TRUE(cmp.equal) << "cap=" << GetParam() << ": " << cmp.detail;
  if (GetParam() > 0 && GetParam() < stats.num_products) {
    EXPECT_GT(stats.num_batches, 1);
    EXPECT_GT(stats.combine_ms, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, BatchedSpgemmTest,
                         ::testing::Values(0 /* auto */, 1'000, 7'777, 100'000,
                                           1'000'000'000));

TEST(BatchedSpgemm, CompletesWhereMonolithicOoms) {
  // A device too small for the whole intermediate: the flat pipeline
  // throws; the batched pipeline completes correctly.  Batching lifts the
  // ceiling on instances whose intermediate dwarfs their OUTPUT (the
  // dense/duplicate-heavy regime the paper's Section IV-C describes) —
  // the combine temporaries still scale with |C|, which must fit.
  vgpu::DeviceProperties tiny = vgpu::gtx_titan();
  tiny.global_mem_bytes = 1 << 19;  // 512 KiB
  vgpu::Device dev(tiny);
  const auto a = workloads::dense_block(64, 64, 5);  // 262k products, |C| = 4k
  sparse::CsrD c;
  EXPECT_THROW(core::merge::spgemm(dev, a, a, c), vgpu::DeviceOomError);
  const auto stats = spgemm_batched(dev, a, a, c);
  EXPECT_GT(stats.num_batches, 1);
  const auto ref = baselines::seq::spgemm(a, a);
  const auto cmp = sparse::compare_csr(c, ref, 1e-8, 1e-10);
  EXPECT_TRUE(cmp.equal) << cmp.detail;
}

TEST(BatchedSpgemm, DenseBlockUnderMemoryPressure) {
  // The paper's Dense failure mode, resolved by batching.
  vgpu::DeviceProperties small = vgpu::gtx_titan();
  small.global_mem_bytes = 1 << 20;
  vgpu::Device dev(small);
  const auto a = workloads::dense_block(96, 96);
  sparse::CsrD c;
  EXPECT_THROW(core::merge::spgemm(dev, a, a, c), vgpu::DeviceOomError);
  const auto stats = spgemm_batched(dev, a, a, c);
  EXPECT_GT(stats.num_batches, 1);
  const auto ref = baselines::seq::spgemm(a, a);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-8, 1e-10).equal);
}

TEST(BatchedSpgemm, SingleBatchEqualsMonolithicCost) {
  vgpu::Device dev;
  util::Rng rng(707);
  const auto a = coo_to_csr(random_coo(rng, 400, 400, 4000));
  sparse::CsrD c1, c2;
  const auto mono = core::merge::spgemm(dev, a, a, c1);
  const auto batched = spgemm_batched(dev, a, a, c2, /*cap=*/1LL << 40);
  EXPECT_EQ(batched.num_batches, 1);
  EXPECT_DOUBLE_EQ(batched.combine_ms, 0.0);
  EXPECT_NEAR(batched.spgemm_ms, mono.modeled_ms(), 1e-9);
  EXPECT_TRUE(sparse::compare_csr(c1, c2).equal);
}

TEST(BatchedSpgemm, EmptyAndRectangular) {
  vgpu::Device dev;
  sparse::CsrD zero(20, 30), c;
  const auto stats = spgemm_batched(dev, zero, sparse::CsrD(30, 10), c, 100);
  EXPECT_EQ(stats.num_products, 0);
  EXPECT_EQ(c.num_rows, 20);
  EXPECT_EQ(c.num_cols, 10);
  EXPECT_EQ(c.nnz(), 0);

  util::Rng rng(709);
  const auto a = coo_to_csr(random_coo(rng, 100, 60, 800));
  const auto b = coo_to_csr(random_coo(rng, 60, 150, 900));
  const auto ref = baselines::seq::spgemm(a, b);
  sparse::CsrD cr;
  spgemm_batched(dev, a, b, cr, 500);
  EXPECT_TRUE(sparse::compare_csr(cr, ref, 1e-9, 1e-11).equal);
}

TEST(BatchedSpgemm, RowSplitAcrossBatchesRecombines) {
  // One dense row forces the batch boundary through its middle; the
  // combining union must stitch the partial rows back together.
  vgpu::Device dev;
  sparse::CooD m(4, 2000);
  util::Rng rng(711);
  for (index_t c0 = 0; c0 < 2000; ++c0) m.push_back(1, c0, rng.uniform_double(-1, 1));
  m.canonicalize();
  const auto a = coo_to_csr(m);
  const auto b = sparse::transpose(a);
  const auto ref = baselines::seq::spgemm(a, b);
  sparse::CsrD c;
  const auto stats = spgemm_batched(dev, a, b, c, /*cap=*/64);
  EXPECT_GT(stats.num_batches, 10);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal);
}

}  // namespace
}  // namespace mps
