// Tests for the Chrome-trace exporter and the analysis harness helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/experiment.hpp"
#include "core/spmv.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "vgpu/trace.hpp"

namespace mps {
namespace {

TEST(Trace, EmptyLogIsValidJson) {
  // An empty log still names its tracks (metadata events) but carries
  // zero kernel events.
  vgpu::Device dev;
  std::ostringstream os;
  vgpu::write_chrome_trace(os, dev);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(s.find("\"kernels\":0"), std::string::npos);
  EXPECT_EQ(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '}');
}

TEST(Trace, EventsCarryKernelData) {
  vgpu::Device dev;
  dev.launch("kernel.alpha", 4, 128, [](vgpu::Cta& cta) { cta.charge_global(256); });
  dev.launch("kernel.beta", 2, 64, [](vgpu::Cta& cta) { cta.charge_sync(); });
  std::ostringstream os;
  vgpu::write_chrome_trace(os, dev);
  const std::string s = os.str();
  EXPECT_NE(s.find("kernel.alpha"), std::string::npos);
  EXPECT_NE(s.find("kernel.beta"), std::string::npos);
  EXPECT_NE(s.find("\"num_ctas\":4"), std::string::npos);
  EXPECT_NE(s.find("\"global_bytes\":1024"), std::string::npos);
  EXPECT_NE(s.find("\"kernels\":2"), std::string::npos);
  // Events are laid back-to-back: second ts == first dur.
  EXPECT_NE(s.find("\"ts\":0"), std::string::npos);
}

TEST(Trace, EscapesSpecialCharacters) {
  vgpu::Device dev;
  dev.launch("weird\"name\\with\nstuff", 1, 32, [](vgpu::Cta&) {});
  std::ostringstream os;
  vgpu::write_chrome_trace(os, dev);
  const std::string s = os.str();
  EXPECT_NE(s.find("weird\\\"name\\\\with\\nstuff"), std::string::npos);
}

TEST(Trace, EmitsProcessAndThreadNameMetadata) {
  // Perfetto/chrome://tracing label tracks from "M" metadata events; a
  // trace without them renders as anonymous pid/tid numbers.
  vgpu::Device dev;
  dev.launch("k", 1, 32, [](vgpu::Cta&) {});
  std::ostringstream os;
  vgpu::write_chrome_trace(os, dev);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(s.find("\"process_name\""), std::string::npos);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(s.find("mps virtual GPU"), std::string::npos);
  // Metadata precedes the kernel events so viewers name tracks up front.
  EXPECT_LT(s.find("\"ph\":\"M\""), s.find("\"ph\":\"X\""));
}

TEST(Trace, MalformedKernelNameRoundTrips) {
  // Control bytes, DEL, high (non-UTF-8) bytes, quotes and backslashes
  // in a kernel name must all come out as valid JSON escapes — strict
  // parsers (python -m json.tool validates these artifacts in CI) reject
  // raw control bytes and invalid UTF-8.
  vgpu::Device dev;
  const std::string name = std::string("bad\x01\x1f\x7f") + "\xc3\x28" +
                           "\"q\"\\end\ttab";
  dev.launch(name, 1, 32, [](vgpu::Cta&) {});
  std::ostringstream os;
  vgpu::write_chrome_trace(os, dev);
  const std::string s = os.str();
  // Escaped forms present...
  EXPECT_NE(s.find("\\u0001"), std::string::npos);
  EXPECT_NE(s.find("\\u001f"), std::string::npos);
  EXPECT_NE(s.find("\\u007f"), std::string::npos);
  EXPECT_NE(s.find("\\u00c3"), std::string::npos);
  EXPECT_NE(s.find("\\\"q\\\""), std::string::npos);
  EXPECT_NE(s.find("\\\\end"), std::string::npos);
  EXPECT_NE(s.find("\\ttab"), std::string::npos);
  // ...and not a single raw byte outside printable ASCII in the output.
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    EXPECT_TRUE(u >= 0x20 && u < 0x7f) << "raw byte 0x" << std::hex
                                       << static_cast<int>(u) << " leaked";
  }
}

TEST(Trace, FileVariantWritesAndThrows) {
  vgpu::Device dev;
  dev.launch("k", 1, 32, [](vgpu::Cta&) {});
  const std::string path = ::testing::TempDir() + "/mps_trace_test.json";
  vgpu::write_chrome_trace_file(path, dev);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(vgpu::write_chrome_trace_file("/nonexistent/dir/x.json", dev),
               std::runtime_error);
}

TEST(Trace, SpmvPlanChargesPartitionOnceAcrossIterations) {
  // 100 spmv_execute calls on one plan: the output is bitwise-stable
  // across iterations and the kernel log shows partition (and zero
  // compaction) work charged exactly once, at plan build.
  vgpu::Device dev;
  util::Rng rng(401);
  const auto a = sparse::coo_to_csr(testing::random_coo(rng, 600, 600, 7200));
  std::vector<double> x(600);
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  std::vector<double> y(600), y0(600);

  const auto plan = core::merge::spmv_plan(dev, a);
  constexpr int kIters = 100;
  double exec_ms_first = 0.0;
  for (int i = 0; i < kIters; ++i) {
    const auto stats = core::merge::spmv_execute(dev, a, x, y, plan);
    EXPECT_TRUE(stats.setup_amortized);
    EXPECT_DOUBLE_EQ(stats.partition_ms, 0.0);
    if (i == 0) {
      y0 = y;
      exec_ms_first = stats.modeled_ms();
    } else {
      ASSERT_EQ(y, y0) << "iteration " << i << " not bitwise-stable";
      EXPECT_DOUBLE_EQ(stats.modeled_ms(), exec_ms_first);
    }
  }

  int partitions = 0, compacts = 0, reduces = 0, updates = 0;
  for (const auto& k : dev.log()) {
    if (k.name == "merge.spmv_partition") ++partitions;
    if (k.name == "merge.spmv_compact") ++compacts;
    if (k.name == "merge.spmv_reduce") ++reduces;
    if (k.name == "merge.spmv_update") ++updates;
  }
  EXPECT_EQ(partitions, 1);
  EXPECT_EQ(compacts, 0);  // no empty rows, fast path
  EXPECT_EQ(reduces, kIters);
  EXPECT_EQ(updates, kIters);
}

TEST(Analysis, BenchConfigDefaultsAndEnv) {
  ::unsetenv("MPS_SCALE");
  ::unsetenv("MPS_ITERS");
  auto cfg = analysis::bench_config(0.25, 3);
  EXPECT_DOUBLE_EQ(cfg.scale, 0.25);
  EXPECT_EQ(cfg.iters, 3);
  ::setenv("MPS_SCALE", "0.5", 1);
  ::setenv("MPS_ITERS", "0", 1);  // clamped to >= 1
  cfg = analysis::bench_config(0.25, 3);
  EXPECT_DOUBLE_EQ(cfg.scale, 0.5);
  EXPECT_EQ(cfg.iters, 1);
  ::unsetenv("MPS_SCALE");
  ::unsetenv("MPS_ITERS");
}

TEST(Analysis, Gflops) {
  EXPECT_DOUBLE_EQ(analysis::gflops(2e9, 1000.0), 2.0);
  EXPECT_EQ(analysis::gflops(1e9, 0.0), 0.0);
}

TEST(Analysis, CorrelationReportAndFigure) {
  analysis::CorrelationSeries s{"Test", {1e6, 2e6, 3e6}, {1.0, 2.0, 3.0}};
  const auto rep = analysis::correlate(s);
  EXPECT_EQ(rep.scheme, "Test");
  EXPECT_NEAR(rep.rho, 1.0, 1e-12);
  EXPECT_NEAR(rep.slope_ms_per_unit * 1e6, 1.0, 1e-9);
  const auto fig = analysis::render_correlation_figure(
      "demo", "nnz", {"a", "b", "c"}, {s});
  EXPECT_NE(fig.find("rho_Test = 1.00"), std::string::npos);
  EXPECT_NE(fig.find("demo"), std::string::npos);
}

TEST(Analysis, EmitWritesCsvWhenConfigured) {
  util::Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  const std::string dir = ::testing::TempDir();
  ::setenv("MPS_CSV_DIR", dir.c_str(), 1);
  analysis::emit(t, "emit_test");
  ::unsetenv("MPS_CSV_DIR");
  std::ifstream in(dir + "/emit_test.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::remove((dir + "/emit_test.csv").c_str());
}

}  // namespace
}  // namespace mps
