// Randomized cross-product fuzz: every (kernel family x scheme) pair over
// a seeded grid of structural regimes — uniform, banded, power-law,
// hypersparse, near-dense, rectangular — validated against the sequential
// references.  These sweeps are the broad safety net behind the targeted
// suites.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/cusplike.hpp"
#include "baselines/rowwise.hpp"
#include "baselines/seq.hpp"
#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spgemm_batched.hpp"
#include "core/spmv.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps {
namespace {

using sparse::coo_to_csr;
using sparse::CsrD;

enum class Regime {
  kUniform,
  kBanded,
  kPowerLaw,
  kHypersparse,
  kNearDense,
  kRectWide,
  kRectTall,
};

std::string regime_name(Regime r) {
  switch (r) {
    case Regime::kUniform: return "uniform";
    case Regime::kBanded: return "banded";
    case Regime::kPowerLaw: return "powerlaw";
    case Regime::kHypersparse: return "hypersparse";
    case Regime::kNearDense: return "neardense";
    case Regime::kRectWide: return "rectwide";
    case Regime::kRectTall: return "recttall";
  }
  return "?";
}

CsrD make_matrix(Regime r, std::uint64_t seed) {
  util::Rng rng(seed);
  switch (r) {
    case Regime::kUniform:
      return coo_to_csr(testing::random_coo(rng, 400, 400, 4800));
    case Regime::kBanded:
      return workloads::fem_banded(500, 18.0, 4.0, seed);
    case Regime::kPowerLaw:
      return testing::random_powerlaw_csr(rng, 500, 500, 6.0);
    case Regime::kHypersparse:
      return coo_to_csr(testing::random_coo(rng, 2000, 2000, 300));
    case Regime::kNearDense:
      return coo_to_csr(testing::random_coo(rng, 60, 60, 2800));
    case Regime::kRectWide:
      return coo_to_csr(testing::random_coo(rng, 64, 3000, 2500));
    case Regime::kRectTall:
      return coo_to_csr(testing::random_coo(rng, 3000, 64, 2500));
  }
  return {};
}

class FuzzTest
    : public ::testing::TestWithParam<std::tuple<Regime, std::uint64_t>> {
 protected:
  vgpu::Device dev_;
};

TEST_P(FuzzTest, AllSpmvSchemesAgree) {
  const auto [regime, seed] = GetParam();
  const auto a = make_matrix(regime, seed);
  util::Rng rng(seed * 7 + 1);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  std::vector<double> ref(static_cast<std::size_t>(a.num_rows));
  baselines::seq::spmv(a, x, ref);
  std::vector<double> y(ref.size());

  core::merge::spmv(dev_, a, x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], ref[i], 1e-10) << regime_name(regime) << " merge row " << i;
  baselines::cusplike::spmv(dev_, a, x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], ref[i], 1e-10) << regime_name(regime) << " cusp row " << i;
  baselines::rowwise::spmv(dev_, a, x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], ref[i], 1e-10) << regime_name(regime) << " rowwise row " << i;
  baselines::cusplike::spmv_coo(dev_, sparse::csr_to_coo(a), x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], ref[i], 1e-10) << regime_name(regime) << " coo row " << i;
}

TEST_P(FuzzTest, AllSpaddSchemesAgree) {
  const auto [regime, seed] = GetParam();
  const auto a = make_matrix(regime, seed);
  const auto b = make_matrix(regime, seed + 1000);
  const auto ref = baselines::seq::spadd(a, b);
  const auto a_coo = sparse::csr_to_coo(a);
  const auto b_coo = sparse::csr_to_coo(b);

  sparse::CooD c_merge;
  core::merge::spadd(dev_, a_coo, b_coo, c_merge);
  EXPECT_TRUE(sparse::compare_csr(coo_to_csr(c_merge), ref).equal)
      << regime_name(regime) << " merge";
  sparse::CooD c_cusp;
  baselines::cusplike::spadd(dev_, a_coo, b_coo, c_cusp);
  EXPECT_TRUE(sparse::compare_csr(coo_to_csr(c_cusp), ref).equal)
      << regime_name(regime) << " cusp";
  CsrD c_row;
  baselines::rowwise::spadd(dev_, a, b, c_row);
  EXPECT_TRUE(sparse::compare_csr(c_row, ref).equal)
      << regime_name(regime) << " rowwise";
}

TEST_P(FuzzTest, AllSpgemmSchemesAgree) {
  const auto [regime, seed] = GetParam();
  const auto a = make_matrix(regime, seed);
  const auto b = sparse::transpose(make_matrix(regime, seed + 2000));
  ASSERT_EQ(a.num_cols, b.num_rows);
  const auto ref = baselines::seq::spgemm(a, b);

  CsrD c;
  core::merge::spgemm(dev_, a, b, c);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal)
      << regime_name(regime) << " merge";
  baselines::cusplike::spgemm(dev_, a, b, c);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal)
      << regime_name(regime) << " cusp";
  baselines::rowwise::spgemm(dev_, a, b, c);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal)
      << regime_name(regime) << " rowwise";
  core::merge::spgemm_batched(dev_, a, b, c,
                              baselines::seq::spgemm_num_products(a, b) / 3 + 1);
  EXPECT_TRUE(sparse::compare_csr(c, ref, 1e-9, 1e-11).equal)
      << regime_name(regime) << " batched";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FuzzTest,
    ::testing::Combine(::testing::Values(Regime::kUniform, Regime::kBanded,
                                         Regime::kPowerLaw, Regime::kHypersparse,
                                         Regime::kNearDense, Regime::kRectWide,
                                         Regime::kRectTall),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const ::testing::TestParamInfo<std::tuple<Regime, std::uint64_t>>& info) {
      return regime_name(std::get<0>(info.param)) +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mps
