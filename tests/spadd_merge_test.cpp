// Balanced-path SpAdd: correctness and the work-proportional cost property.
#include <gtest/gtest.h>

#include "baselines/seq.hpp"
#include "core/spadd.hpp"
#include "oracle.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"

namespace mps {
namespace {

using core::merge::spadd;
using sparse::coo_to_csr;
using sparse::csr_to_coo;
using testing::expect_spadd_matches;
using testing::random_coo;

TEST(MergeSpadd, PaperExampleAPlusB) {
  vgpu::Device dev;
  expect_spadd_matches(dev, testing::paper_a(), testing::paper_b());
}

TEST(MergeSpadd, APlusAEqualsTwoA) {
  // The evaluation's workload (Fig 7 computes A + A).
  vgpu::Device dev;
  util::Rng rng(41);
  const auto a = random_coo(rng, 500, 500, 5000);
  sparse::CooD c;
  spadd(dev, a, a, c);
  ASSERT_EQ(c.nnz(), a.nnz());
  for (index_t i = 0; i < c.nnz(); ++i) {
    ASSERT_DOUBLE_EQ(c.val[static_cast<std::size_t>(i)],
                     2 * a.val[static_cast<std::size_t>(i)]);
  }
}

class MergeSpaddShapes : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MergeSpaddShapes, MatchesSeq) {
  const auto [rows, cols, nnz_a, nnz_b] = GetParam();
  vgpu::Device dev;
  util::Rng rng(static_cast<std::uint64_t>(rows * 3 + nnz_a + nnz_b));
  expect_spadd_matches(
      dev, random_coo(rng, static_cast<index_t>(rows), static_cast<index_t>(cols), nnz_a),
      random_coo(rng, static_cast<index_t>(rows), static_cast<index_t>(cols), nnz_b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeSpaddShapes,
    ::testing::Values(std::make_tuple(1, 1, 1, 1), std::make_tuple(10, 10, 0, 20),
                      std::make_tuple(10, 10, 20, 0),
                      std::make_tuple(100, 100, 700, 900),
                      std::make_tuple(4000, 4000, 30000, 30000),
                      std::make_tuple(7, 100000, 5000, 5000),
                      std::make_tuple(100000, 7, 5000, 5000)));

TEST(MergeSpadd, DisjointAndIdenticalPatterns) {
  vgpu::Device dev;
  // Disjoint: A on even columns, B on odd — no matched tuples anywhere.
  sparse::CooD a(100, 100), b(100, 100);
  for (index_t r = 0; r < 100; ++r) {
    a.push_back(r, (2 * r) % 100, 1.0);
    b.push_back(r, (2 * r + 1) % 100, 2.0);
  }
  a.canonicalize();
  b.canonicalize();
  sparse::CooD c;
  spadd(dev, a, b, c);
  EXPECT_EQ(c.nnz(), a.nnz() + b.nnz());
  expect_spadd_matches(dev, a, b);
  // Identical pattern: every tuple matched.
  expect_spadd_matches(dev, a, a);
}

TEST(MergeSpadd, CancellationKeepsExplicitZeros) {
  // A + (-A) produces explicit zero entries (standard sparse semantics:
  // the pattern is the union, numerics may be zero).
  vgpu::Device dev;
  util::Rng rng(43);
  const auto a = random_coo(rng, 50, 50, 300);
  auto neg = a;
  for (auto& v : neg.val) v = -v;
  sparse::CooD c;
  spadd(dev, a, neg, c);
  ASSERT_EQ(c.nnz(), a.nnz());
  for (double v : c.val) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MergeSpadd, RejectsNonCanonicalInput) {
  vgpu::Device dev;
  sparse::CooD bad(4, 4);
  bad.push_back(1, 1, 1.0);
  bad.push_back(0, 0, 1.0);  // unsorted
  sparse::CooD c;
  EXPECT_THROW(spadd(dev, bad, bad, c), mps::InvalidInputError);
}

TEST(MergeSpadd, CostTracksTotalWorkNotStructure) {
  // ρ ~ 1 claim (Fig 8): modeled ms per tuple is structure-independent.
  vgpu::Device dev;
  util::Rng rng(47);
  const auto uniform = random_coo(rng, 3000, 3000, 60000);
  const auto skewed = csr_to_coo(testing::random_powerlaw_csr(rng, 3000, 3000, 15.0));
  sparse::CooD c;
  const double t_uniform = spadd(dev, uniform, uniform, c).modeled_ms /
                           static_cast<double>(2 * uniform.nnz());
  const double t_skewed = spadd(dev, skewed, skewed, c).modeled_ms /
                          static_cast<double>(2 * skewed.nnz());
  const double ratio = t_skewed / t_uniform;
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

}  // namespace
}  // namespace mps
