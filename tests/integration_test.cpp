// Cross-kernel integration and algebraic-identity property tests: the
// kernels must agree with each other under the identities of linear
// algebra, not just each against the sequential reference.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/cusplike.hpp"
#include "baselines/seq.hpp"
#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "primitives/segmented_reduce.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "sparse/ops.hpp"
#include "test_matrices.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"

namespace mps {
namespace {

using sparse::coo_to_csr;
using sparse::csr_to_coo;
using testing::random_coo;

std::vector<double> random_vec(util::Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform_double(-1, 1);
  return v;
}

TEST(Integration, DistributivityOfSpmvOverSpadd) {
  // (A + B) x == A x + B x, all through merge kernels.
  vgpu::Device dev;
  util::Rng rng(101);
  const auto a = random_coo(rng, 400, 300, 3000);
  const auto b = random_coo(rng, 400, 300, 2500);
  const auto x = random_vec(rng, 300);

  sparse::CooD sum;
  core::merge::spadd(dev, a, b, sum);
  std::vector<double> lhs(400);
  core::merge::spmv(dev, coo_to_csr(sum), x, lhs);

  std::vector<double> ya(400), yb(400);
  core::merge::spmv(dev, coo_to_csr(a), x, ya);
  core::merge::spmv(dev, coo_to_csr(b), x, yb);
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_NEAR(lhs[i], ya[i] + yb[i], 1e-10);
  }
}

TEST(Integration, AssociativityOfSpgemmWithSpmv) {
  // (A B) x == A (B x), merge SpGEMM against two merge SpMVs.
  vgpu::Device dev;
  util::Rng rng(103);
  const auto a = coo_to_csr(random_coo(rng, 150, 200, 2000));
  const auto b = coo_to_csr(random_coo(rng, 200, 120, 1800));
  const auto x = random_vec(rng, 120);

  sparse::CsrD ab;
  core::merge::spgemm(dev, a, b, ab);
  std::vector<double> lhs(150);
  core::merge::spmv(dev, ab, x, lhs);

  std::vector<double> bx(200), rhs(150);
  core::merge::spmv(dev, b, x, bx);
  core::merge::spmv(dev, a, bx, rhs);
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_NEAR(lhs[i], rhs[i], 1e-9);
  }
}

TEST(Integration, SpgemmAssociativityAcrossSchemes) {
  // (A B) C == A (B C), mixing merge and cusp-like SpGEMM.
  vgpu::Device dev;
  util::Rng rng(107);
  const auto a = coo_to_csr(random_coo(rng, 60, 70, 600));
  const auto b = coo_to_csr(random_coo(rng, 70, 50, 500));
  const auto c = coo_to_csr(random_coo(rng, 50, 40, 400));

  sparse::CsrD ab, abc_left, bc, abc_right;
  core::merge::spgemm(dev, a, b, ab);
  baselines::cusplike::spgemm(dev, ab, c, abc_left);
  baselines::cusplike::spgemm(dev, b, c, bc);
  core::merge::spgemm(dev, a, bc, abc_right);

  // Patterns can differ by explicit zeros; compare densely.
  const auto dl = testing::dense_of(abc_left);
  const auto dr = testing::dense_of(abc_right);
  ASSERT_EQ(dl.size(), dr.size());
  for (std::size_t i = 0; i < dl.size(); ++i) ASSERT_NEAR(dl[i], dr[i], 1e-9);
}

TEST(Integration, TransposeSpmvIdentity) {
  // y^T (A x) == x^T (A^T y).
  vgpu::Device dev;
  util::Rng rng(109);
  const auto a = coo_to_csr(random_coo(rng, 250, 180, 2200));
  const auto at = sparse::transpose(a);
  const auto x = random_vec(rng, 180);
  const auto yv = random_vec(rng, 250);

  std::vector<double> ax(250), aty(180);
  core::merge::spmv(dev, a, x, ax);
  core::merge::spmv(dev, at, yv, aty);
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < ax.size(); ++i) lhs += yv[i] * ax[i];
  for (std::size_t i = 0; i < aty.size(); ++i) rhs += x[i] * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs) + 1e-10);
}

TEST(Integration, CooSpmvMatchesCsrMerge) {
  vgpu::Device dev;
  util::Rng rng(113);
  for (int trial = 0; trial < 10; ++trial) {
    const auto coo = random_coo(rng, 500, 400, static_cast<int>(rng.uniform(8000)) + 1);
    const auto csr = coo_to_csr(coo);
    const auto x = random_vec(rng, 400);
    std::vector<double> y1(500), y2(500);
    core::merge::spmv(dev, csr, x, y1);
    baselines::cusplike::spmv_coo(dev, coo, x, y2);
    for (std::size_t i = 0; i < y1.size(); ++i) ASSERT_NEAR(y1[i], y2[i], 1e-11);
  }
}

TEST(Integration, CooSpmvSingleGiantRowCarryChain) {
  vgpu::Device dev;
  sparse::CooD a(2, 40000);
  util::Rng rng(127);
  for (index_t c = 0; c < 40000; ++c) a.push_back(0, c, rng.uniform_double(-1, 1));
  a.canonicalize();
  const auto x = random_vec(rng, 40000);
  std::vector<double> y(2, -1), y_ref(2, -1);
  baselines::seq::spmv(coo_to_csr(a), x, y_ref);
  baselines::cusplike::spmv_coo(dev, a, x, y);
  EXPECT_NEAR(y[0], y_ref[0], 1e-9);
  EXPECT_EQ(y[1], 0.0);
}

TEST(Integration, CooSpmvPaysRowIndexTraffic) {
  // The paper's III-A storage argument: COO moves one extra row index per
  // nonzero, so its *marginal* modeled cost per nonzero strictly exceeds
  // CSR merge SpMV's (fixed launch overheads cancel in the slope).
  vgpu::Device dev;
  util::Rng rng(131);
  const auto small = random_coo(rng, 5000, 5000, 100000);
  const auto big = random_coo(rng, 20000, 5000, 800000);
  const auto x = random_vec(rng, 5000);
  auto slope = [&](auto&& run) {
    const double t0 = run(small);
    const double t1 = run(big);
    return (t1 - t0) /
           static_cast<double>(big.nnz() - small.nnz());
  };
  const double csr_slope = slope([&](const sparse::CooD& m) {
    std::vector<double> y(static_cast<std::size_t>(m.num_rows));
    return core::merge::spmv(dev, coo_to_csr(m), x, y).modeled_ms();
  });
  const double coo_slope = slope([&](const sparse::CooD& m) {
    std::vector<double> y(static_cast<std::size_t>(m.num_rows));
    return baselines::cusplike::spmv_coo(dev, m, x, y).modeled_ms;
  });
  EXPECT_GT(coo_slope, csr_slope);
}

TEST(Integration, SegmentedReduceMatchesRowSums) {
  // device_segmented_reduce over a CSR matrix's values = row sums = A * 1.
  vgpu::Device dev;
  util::Rng rng(137);
  const auto a = coo_to_csr(random_coo(rng, 3000, 100, 40000));
  std::vector<double> sums(3000), expect(3000);
  primitives::device_segmented_reduce<double>(
      dev, a.row_offsets, a.val, std::span<double>(sums));
  const std::vector<double> ones(100, 1.0);
  baselines::seq::spmv(a, ones, expect);
  for (std::size_t i = 0; i < sums.size(); ++i) {
    ASSERT_NEAR(sums[i], expect[i], 1e-10);
  }
}

TEST(Integration, SegmentedReduceEmptySegments) {
  vgpu::Device dev;
  const std::vector<index_t> offsets{0, 0, 3, 3, 5, 5};
  const std::vector<double> values{1, 2, 3, 4, 5};
  std::vector<double> out(5, -1);
  primitives::device_segmented_reduce<double>(dev, offsets, values, std::span<double>(out));
  EXPECT_EQ(out, (std::vector<double>{0, 6, 0, 9, 0}));
}

TEST(Integration, SegmentedReduceSingleSegmentSpanningManyTiles) {
  vgpu::Device dev;
  const std::size_t n = 50000;
  std::vector<index_t> offsets{0, static_cast<index_t>(n)};
  std::vector<double> values(n, 0.5);
  std::vector<double> out(1);
  primitives::device_segmented_reduce<double>(dev, offsets, values, std::span<double>(out));
  EXPECT_NEAR(out[0], 0.5 * static_cast<double>(n), 1e-9);
}

TEST(Integration, GalerkinTripleProductAllSchemesAgree) {
  // R*A*P through merge, cusp-like and the sequential reference.
  vgpu::Device dev;
  const auto a = workloads::poisson2d(24, 24);
  util::Rng rng(139);
  const auto p = coo_to_csr(random_coo(rng, 576, 80, 1200));
  const auto r = sparse::transpose(p);

  sparse::CsrD m1, m2, out_merge, out_cusp;
  core::merge::spgemm(dev, r, a, m1);
  core::merge::spgemm(dev, m1, p, out_merge);
  baselines::cusplike::spgemm(dev, r, a, m2);
  baselines::cusplike::spgemm(dev, m2, p, out_cusp);
  const auto ref = baselines::seq::spgemm(baselines::seq::spgemm(r, a), p);
  EXPECT_TRUE(sparse::compare_csr(out_merge, ref, 1e-8, 1e-10).equal);
  EXPECT_TRUE(sparse::compare_csr(out_cusp, ref, 1e-8, 1e-10).equal);
}

TEST(Integration, DeviceMemoryReturnsToBaselineAfterOps) {
  vgpu::Device dev;
  util::Rng rng(149);
  const auto a = coo_to_csr(random_coo(rng, 500, 500, 5000));
  const std::size_t baseline = dev.memory().in_use();
  sparse::CsrD c;
  core::merge::spgemm(dev, a, a, c);
  EXPECT_EQ(dev.memory().in_use(), baseline);
  EXPECT_GT(dev.memory().peak(), baseline);
  std::vector<double> x(500, 1.0), y(500);
  core::merge::spmv(dev, a, x, y);
  EXPECT_EQ(dev.memory().in_use(), baseline);
}

}  // namespace
}  // namespace mps
