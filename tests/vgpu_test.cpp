// Unit tests for the virtual-GPU substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "vgpu/cpu_model.hpp"
#include "vgpu/device.hpp"
#include "vgpu/memory_model.hpp"
#include "vgpu/thread_pool.hpp"
#include "vgpu/timing.hpp"

namespace mps::vgpu {
namespace {

TEST(ThreadPool, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneIterations) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<long long> sum{0};
    pool.parallel_for(257, [&](std::size_t i) { sum += static_cast<long long>(i); });
    EXPECT_EQ(sum.load(), 257LL * 256 / 2);
  }
}

TEST(ThreadPool, TryPostRunsTask) {
  ThreadPool pool(4);
  std::promise<int> done;
  ASSERT_TRUE(pool.try_post([&] { done.set_value(42); }));
  EXPECT_EQ(done.get_future().get(), 42);
}

TEST(ThreadPool, TryPostInlineWithoutWorkers) {
  ThreadPool pool(1);  // the caller is the only participant
  bool ran = false;
  ASSERT_TRUE(pool.try_post([&] { ran = true; }));
  EXPECT_TRUE(ran);  // ran inline, before try_post returned
}

TEST(ThreadPool, ShutdownDrainsAcceptedTasksThenRejects) {
  // The ordering contract: every task accepted before shutdown() runs to
  // completion; every try_post after shutdown() began is rejected
  // deterministically.  Nothing is dropped.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  int accepted = 0;
  for (int i = 0; i < kTasks; ++i) {
    if (pool.try_post([&] {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          ran.fetch_add(1);
        })) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, kTasks);
  EXPECT_FALSE(pool.stopping());
  pool.shutdown();
  EXPECT_EQ(ran.load(), kTasks);  // drained, not dropped
  EXPECT_TRUE(pool.stopping());
  EXPECT_FALSE(pool.try_post([&] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), kTasks);  // the rejected task never ran
  pool.shutdown();                // idempotent
}

TEST(ThreadPool, PostsRacingShutdownAreRunOrRejectedNeverDropped) {
  // Hammer try_post from several threads while shutdown runs: each post
  // either returns true (and the task runs) or false (and it does not).
  for (int rep = 0; rep < 10; ++rep) {
    ThreadPool pool(4);
    std::atomic<int> accepted{0}, ran{0};
    std::vector<std::thread> posters;
    std::atomic<bool> go{false};
    for (int t = 0; t < 4; ++t) {
      posters.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 50; ++i) {
          if (pool.try_post([&] { ran.fetch_add(1); })) accepted.fetch_add(1);
        }
      });
    }
    go.store(true);
    pool.shutdown();
    for (auto& p : posters) p.join();
    EXPECT_EQ(ran.load(), accepted.load()) << "rep " << rep;
  }
}

TEST(ThreadPool, ParallelForAfterShutdownRunsInline) {
  ThreadPool pool(4);
  pool.shutdown();
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Counters, CycleModelMonotone) {
  DeviceProperties p;
  CtaCounters a;
  a.global_bytes = 1000;
  CtaCounters b = a;
  b.warp_iters = 500;
  EXPECT_GT(b.cycles(p), a.cycles(p));
  CtaCounters c = b;
  c.syncs = 10;
  EXPECT_GT(c.cycles(p), b.cycles(p));
}

TEST(Counters, Accumulate) {
  CtaCounters a, b;
  a.global_bytes = 10;
  a.shared_ops = 2;
  b.global_bytes = 5;
  b.syncs = 1;
  a += b;
  EXPECT_EQ(a.global_bytes, 15u);
  EXPECT_EQ(a.shared_ops, 2u);
  EXPECT_EQ(a.syncs, 1u);
}

TEST(Timing, EmptyGridIsLaunchOverheadOnly) {
  DeviceProperties p;
  EXPECT_DOUBLE_EQ(schedule_cycles(p, {}), p.kernel_launch_cycles);
}

TEST(Timing, BalancedGridScalesWithWork) {
  DeviceProperties p;
  const int slots = p.num_sms * p.ctas_per_sm;
  std::vector<double> one_wave(static_cast<std::size_t>(slots), 100.0);
  std::vector<double> two_waves(static_cast<std::size_t>(2 * slots), 100.0);
  const double t1 = schedule_cycles(p, one_wave) - p.kernel_launch_cycles;
  const double t2 = schedule_cycles(p, two_waves) - p.kernel_launch_cycles;
  EXPECT_DOUBLE_EQ(t1, 100.0);
  EXPECT_DOUBLE_EQ(t2, 200.0);
}

TEST(Timing, ImbalancedCtaDominates) {
  DeviceProperties p;
  // One huge CTA among many small: makespan ~ the huge one.
  std::vector<double> cycles(200, 10.0);
  cycles[0] = 5000.0;
  const double t = schedule_cycles(p, cycles) - p.kernel_launch_cycles;
  EXPECT_GE(t, 5000.0);
  EXPECT_LT(t, 5100.0);  // backfilling keeps the rest off the critical path
}

TEST(Device, LaunchAggregatesCounters) {
  Device dev;
  auto stats = dev.launch("k", 10, 128, [&](Cta& cta) {
    cta.charge_global(100);
    cta.charge_sync();
  });
  EXPECT_EQ(stats.num_ctas, 10);
  EXPECT_EQ(stats.totals.global_bytes, 1000u);
  EXPECT_EQ(stats.totals.syncs, 10u);
  EXPECT_GT(stats.modeled_ms, 0.0);
  EXPECT_EQ(dev.log().size(), 1u);
  EXPECT_EQ(dev.log()[0].name, "k");
}

TEST(Device, LaunchRunsEveryCta) {
  Device dev;
  std::vector<int> touched(333, 0);
  dev.launch("touch", 333, 64, [&](Cta& cta) { touched[static_cast<std::size_t>(cta.cta_id())] = 1; });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 333);
}

TEST(Device, ModeledTimeIsDeterministic) {
  auto run = [] {
    Device dev;
    auto s = dev.launch("k", 100, 128, [&](Cta& cta) {
      cta.charge_global(static_cast<std::size_t>(cta.cta_id()) * 64);
      cta.charge_alu_uniform(1000);
    });
    return s.modeled_ms;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Device, RejectsBadBlockSize) {
  Device dev;
  EXPECT_THROW(dev.launch("k", 1, 0, [](Cta&) {}), mps::InvalidInputError);
  EXPECT_THROW(dev.launch("k", 1, 4096, [](Cta&) {}), mps::InvalidInputError);
}

TEST(Cta, WarpDivergentChargesMax) {
  Device dev;
  auto s = dev.launch("k", 1, 64, [&](Cta& cta) {
    // Two warps: lanes with trips 1..32 (max 32) and all-5 (max 5).
    std::vector<std::uint32_t> lanes(64, 5);
    for (int i = 0; i < 32; ++i) lanes[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i + 1);
    cta.charge_warp_divergent(lanes);
  });
  EXPECT_EQ(s.totals.warp_iters, 32u + 5u);
}

TEST(Cta, UniformChargePacksWarps) {
  Device dev;
  auto s = dev.launch("k", 1, 128, [&](Cta& cta) { cta.charge_alu_uniform(100); });
  EXPECT_EQ(s.totals.warp_iters, 4u);  // ceil(100/32)
}

TEST(SharedMemory, AllocAndOverflow) {
  SharedMemory shm(1024);
  auto a = shm.alloc<double>(64);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_THROW(shm.alloc<double>(128), mps::InvalidInputError);
  shm.reset();
  EXPECT_NO_THROW(shm.alloc<double>(128));
}

TEST(MemoryModel, TracksAndThrows) {
  MemoryModel m(1000);
  m.reserve(600);
  EXPECT_EQ(m.in_use(), 600u);
  EXPECT_THROW(m.reserve(500), DeviceOomError);
  m.release(600);
  EXPECT_EQ(m.in_use(), 0u);
  EXPECT_EQ(m.peak(), 600u);
}

TEST(MemoryModel, ScopedAllocReleases) {
  MemoryModel m(1000);
  {
    ScopedDeviceAlloc a(m, 400);
    EXPECT_EQ(m.in_use(), 400u);
  }
  EXPECT_EQ(m.in_use(), 0u);
}

TEST(CpuModel, RooflineBehaviour) {
  CpuCost cost;
  cost.charge_ops(1000);
  const double t_compute = cost.modeled_ms();
  cost.charge_stream(1 << 20);
  EXPECT_GT(cost.modeled_ms(), t_compute);
  CpuCost rnd;
  rnd.charge_random(100);
  EXPECT_EQ(rnd.bytes(), 100u * rnd.props().cache_line_bytes);
}

}  // namespace
}  // namespace mps::vgpu
