#pragma once
// Shared matrix builders for the kernel test suites.

#include <vector>

#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace mps::testing {

/// The paper's Section III example matrix A.
inline sparse::CooD paper_a() {
  sparse::CooD a(4, 4);
  a.push_back(0, 0, 10);
  a.push_back(1, 1, 20);
  a.push_back(1, 2, 30);
  a.push_back(1, 3, 40);
  a.push_back(2, 3, 50);
  a.push_back(3, 1, 60);
  return a;
}

/// The paper's Section III example matrix B.
inline sparse::CooD paper_b() {
  sparse::CooD b(4, 4);
  b.push_back(0, 0, 1);
  b.push_back(1, 1, 2);
  b.push_back(1, 3, 3);
  b.push_back(2, 0, 4);
  b.push_back(2, 1, 5);
  b.push_back(3, 1, 6);
  b.push_back(3, 3, 7);
  return b;
}

/// Random canonical COO with approximately `nnz` entries.
inline sparse::CooD random_coo(util::Rng& rng, index_t rows, index_t cols,
                               int nnz) {
  sparse::CooD a(rows, cols);
  for (int i = 0; i < nnz; ++i) {
    a.push_back(static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(rows))),
                static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(cols))),
                rng.uniform_double(-2.0, 2.0));
  }
  a.canonicalize();
  return a;
}

/// Random CSR with a power-law row-degree profile (stress for row-wise
/// schemes and for carry chains in merge SpMV).
inline sparse::CsrD random_powerlaw_csr(util::Rng& rng, index_t rows, index_t cols,
                                        double avg_degree) {
  sparse::CooD a(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    const auto deg = static_cast<index_t>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(cols),
                                rng.zipf(static_cast<std::uint64_t>(
                                             std::max(1.0, avg_degree * 20)),
                                         1.4)));
    for (index_t i = 0; i < deg; ++i) {
      a.push_back(r,
                  static_cast<index_t>(rng.uniform(static_cast<std::uint64_t>(cols))),
                  rng.uniform_double(-1.0, 1.0));
    }
  }
  a.canonicalize();
  return sparse::coo_to_csr(a);
}

/// Dense multiply reference (small shapes only).
inline std::vector<double> dense_of(const sparse::CsrD& a) {
  std::vector<double> d(static_cast<std::size_t>(a.num_rows) *
                            static_cast<std::size_t>(a.num_cols),
                        0.0);
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      d[static_cast<std::size_t>(r) * static_cast<std::size_t>(a.num_cols) +
        static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])] +=
          a.val[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

}  // namespace mps::testing
