// mps_run — command-line driver: run any kernel family on a Matrix Market
// file (or a named Table II surrogate) under any scheme, print modeled
// cost, and optionally dump a Chrome trace of the kernel pipeline.
//
//   mps_run --op spmv --matrix path/to/A.mtx
//   mps_run --op spgemm --suite Protein --scale 0.01 --scheme merge
//   mps_run --op spadd --suite Webbase --scheme all --trace out.json
//
// Options:
//   --op spmv|spadd|spgemm       kernel family (required)
//   --matrix FILE.mtx            input matrix (this or --suite)
//   --suite NAME                 Table II surrogate by name
//   --scale S                    suite scale factor (default 0.05)
//   --scheme merge|cusp|rowwise|all   (default merge)
//   --trace FILE.json            write chrome://tracing JSON
//   --verify                     check against the sequential reference
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "baselines/cusplike.hpp"
#include "baselines/rowwise.hpp"
#include "baselines/seq.hpp"
#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "sparse/io.hpp"
#include "sparse/stats.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vgpu/trace.hpp"
#include "workloads/suite.hpp"
#include "util/main_guard.hpp"

namespace {

using namespace mps;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --op spmv|spadd|spgemm (--matrix F.mtx | --suite NAME)\n"
               "          [--scale S] [--scheme merge|cusp|rowwise|all]\n"
               "          [--trace FILE.json] [--verify]\n",
               argv0);
  std::exit(2);
}

struct Options {
  std::string op;
  std::string matrix_file;
  std::string suite_name;
  std::string scheme = "merge";
  std::string trace_file;
  double scale = 0.05;
  bool verify = false;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--op") {
      o.op = value();
    } else if (arg == "--matrix") {
      o.matrix_file = value();
    } else if (arg == "--suite") {
      o.suite_name = value();
    } else if (arg == "--scale") {
      o.scale = std::stod(value());
    } else if (arg == "--scheme") {
      o.scheme = value();
    } else if (arg == "--trace") {
      o.trace_file = value();
    } else if (arg == "--verify") {
      o.verify = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (o.op.empty() || (o.matrix_file.empty() == o.suite_name.empty())) usage(argv[0]);
  return o;
}

sparse::CsrD load_matrix(const Options& o) {
  if (!o.matrix_file.empty()) {
    auto coo = sparse::read_matrix_market_file(o.matrix_file);
    coo.canonicalize();
    return sparse::coo_to_csr(coo);
  }
  return workloads::suite_entry(o.suite_name, o.scale).matrix;
}

struct Run {
  std::string scheme;
  double modeled_ms = 0.0;
  double wall_ms = 0.0;
  bool verified = false;
  bool verify_ok = true;
};

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const auto a = load_matrix(opt);
  const auto stats = sparse::compute_stats(a);
  std::printf("matrix: %d x %d, %lld nnz, %.2f avg/row (std %.2f, max %d, %d empty)\n",
              stats.rows, stats.cols, stats.nnz, stats.avg_row, stats.std_row,
              stats.max_row, stats.empty_rows);

  std::vector<std::string> schemes;
  if (opt.scheme == "all") {
    schemes = {"merge", "cusp", "rowwise"};
  } else if (opt.scheme == "merge" || opt.scheme == "cusp" ||
             opt.scheme == "rowwise") {
    schemes = {opt.scheme};
  } else {
    usage(argv[0]);
  }

  vgpu::Device device;
  util::Rng rng(1);
  std::vector<Run> runs;
  for (const auto& scheme : schemes) {
    Run run;
    run.scheme = scheme;
    if (opt.op == "spmv") {
      std::vector<double> x(static_cast<std::size_t>(a.num_cols));
      for (auto& v : x) v = rng.uniform_double(-1, 1);
      std::vector<double> y(static_cast<std::size_t>(a.num_rows));
      if (scheme == "merge") {
        const auto s = core::merge::spmv(device, a, x, y);
        run.modeled_ms = s.modeled_ms();
        run.wall_ms = s.wall_ms;
      } else if (scheme == "cusp") {
        const auto s = baselines::cusplike::spmv(device, a, x, y);
        run.modeled_ms = s.modeled_ms;
        run.wall_ms = s.wall_ms;
      } else {
        const auto s = baselines::rowwise::spmv(device, a, x, y);
        run.modeled_ms = s.modeled_ms;
        run.wall_ms = s.wall_ms;
      }
      if (opt.verify) {
        std::vector<double> ref(y.size());
        baselines::seq::spmv(a, x, ref);
        run.verified = true;
        for (std::size_t i = 0; i < y.size(); ++i) {
          if (std::abs(y[i] - ref[i]) > 1e-9) run.verify_ok = false;
        }
      }
    } else if (opt.op == "spadd") {
      const auto a_coo = sparse::csr_to_coo(a);
      if (scheme == "merge") {
        sparse::CooD c;
        const auto s = core::merge::spadd(device, a_coo, a_coo, c);
        run.modeled_ms = s.modeled_ms;
        run.wall_ms = s.wall_ms;
        if (opt.verify) {
          run.verified = true;
          run.verify_ok =
              sparse::compare_csr(sparse::coo_to_csr(c),
                                  baselines::seq::spadd(a, a))
                  .equal;
        }
      } else if (scheme == "cusp") {
        sparse::CooD c;
        const auto s = baselines::cusplike::spadd(device, a_coo, a_coo, c);
        run.modeled_ms = s.modeled_ms;
        run.wall_ms = s.wall_ms;
      } else {
        sparse::CsrD c;
        const auto s = baselines::rowwise::spadd(device, a, a, c);
        run.modeled_ms = s.modeled_ms;
        run.wall_ms = s.wall_ms;
      }
    } else if (opt.op == "spgemm") {
      sparse::CsrD c;
      try {
        if (scheme == "merge") {
          const auto s = core::merge::spgemm(device, a, a, c);
          run.modeled_ms = s.modeled_ms();
          run.wall_ms = s.wall_ms;
          std::printf("  [%s] %lld products -> %d nnz; phases (ms): setup %.3f, "
                      "block sort %.3f, global sort %.3f, products %.3f, reduce %.3f\n",
                      scheme.c_str(), s.num_products, c.nnz(), s.phases.setup_ms,
                      s.phases.block_sort_ms, s.phases.global_sort_ms,
                      s.phases.product_compute_ms, s.phases.product_reduce_ms);
        } else if (scheme == "cusp") {
          const auto s = baselines::cusplike::spgemm(device, a, a, c);
          run.modeled_ms = s.modeled_ms;
          run.wall_ms = s.wall_ms;
        } else {
          const auto s = baselines::rowwise::spgemm(device, a, a, c);
          run.modeled_ms = s.modeled_ms;
          run.wall_ms = s.wall_ms;
        }
      } catch (const vgpu::DeviceOomError& e) {
        std::printf("  [%s] OOM: %s\n", scheme.c_str(), e.what());
        continue;
      }
      if (opt.verify && c.nnz() > 0) {
        run.verified = true;
        run.verify_ok =
            sparse::compare_csr(c, baselines::seq::spgemm(a, a), 1e-9, 1e-11).equal;
      }
    } else {
      usage(argv[0]);
    }
    runs.push_back(run);
  }

  util::Table t(opt.op + " results");
  t.set_header({"scheme", "modeled ms", "host wall ms", "verified"});
  for (const auto& r : runs) {
    t.add_row({r.scheme, util::fmt(r.modeled_ms, 4), util::fmt(r.wall_ms, 2),
               r.verified ? (r.verify_ok ? "ok" : "FAILED") : "-"});
  }
  std::fputs(t.render().c_str(), stdout);

  if (!opt.trace_file.empty()) {
    vgpu::write_chrome_trace_file(opt.trace_file, device);
    std::printf("trace with %zu kernels written to %s\n", device.log().size(),
                opt.trace_file.c_str());
  }
  for (const auto& r : runs) {
    if (r.verified && !r.verify_ok) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("mps_run",
                                 [&] { return run_main(argc, argv); });
}
