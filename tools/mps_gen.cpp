// mps_gen — generate synthetic matrices (the Table II surrogates or the
// generic families) and write them as Matrix Market files, so external
// tools can consume the exact workloads the benches run.
//
//   mps_gen --suite Protein --scale 0.05 --out protein.mtx
//   mps_gen --kind poisson2d --n 256 --out poisson.mtx
//   mps_gen --kind rmat --n 14 --out graph.mtx
//   mps_gen --list
#include <cstdio>
#include <cstring>
#include <string>

#include "sparse/convert.hpp"
#include "sparse/io.hpp"
#include "sparse/stats.hpp"
#include "workloads/generators.hpp"
#include "workloads/suite.hpp"
#include "util/main_guard.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --suite NAME [--scale S] --out F.mtx\n"
               "       %s --kind poisson2d|poisson3d|rmat|powerlaw --n N --out F.mtx\n"
               "       %s --list\n",
               argv0, argv0, argv0);
  std::exit(2);
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  using namespace mps;
  std::string suite, kind, out;
  double scale = 0.05;
  long long n = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--suite") {
      suite = value();
    } else if (arg == "--kind") {
      kind = value();
    } else if (arg == "--scale") {
      scale = std::stod(value());
    } else if (arg == "--n") {
      n = std::stoll(value());
    } else if (arg == "--out") {
      out = value();
    } else if (arg == "--list") {
      std::puts("suite entries (Table II surrogates):");
      for (const auto& name : workloads::suite_names()) {
        std::printf("  %s\n", name.c_str());
      }
      std::puts("generic kinds: poisson2d poisson3d rmat powerlaw");
      return 0;
    } else {
      usage(argv[0]);
    }
  }
  if (out.empty() || (suite.empty() == kind.empty())) usage(argv[0]);

  sparse::CsrD a;
  if (!suite.empty()) {
    a = workloads::suite_entry(suite, scale).matrix;
  } else if (kind == "poisson2d") {
    a = workloads::poisson2d(static_cast<index_t>(n), static_cast<index_t>(n));
  } else if (kind == "poisson3d") {
    a = workloads::poisson3d27(static_cast<index_t>(n));
  } else if (kind == "rmat") {
    a = workloads::rmat(static_cast<int>(n), 8, 0.57, 0.19, 0.19, 42);
  } else if (kind == "powerlaw") {
    a = workloads::powerlaw_web(static_cast<index_t>(n), 0.015, 1.5, 2, 42);
  } else {
    usage(argv[0]);
  }

  const auto stats = sparse::compute_stats(a);
  sparse::write_matrix_market_file(out, sparse::csr_to_coo(a));
  std::printf("wrote %s: %d x %d, %lld nnz (avg/row %.2f, std %.2f)\n",
              out.c_str(), stats.rows, stats.cols, stats.nnz, stats.avg_row,
              stats.std_row);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("mps_gen",
                                 [&] { return run_main(argc, argv); });
}
