// mps_serve — replay a synthetic multi-tenant trace through the serving
// engine (src/serve) and print its operational statistics.
//
//   mps_serve --trace synthetic --requests 2000
//   mps_serve --requests 5000 --threads 8 --batch-window 16 --verify
//   mps_serve --requests 10000 --chaos-seed 7 --verify
//
// Options:
//   --trace synthetic            trace source (only synthetic for now)
//   --requests N                 number of requests to replay (default 2000)
//   --tenants M                  registered matrices (default 6)
//   --scale S                    suite scale factor (default 0.05)
//   --zipf S                     tenant-popularity skew (default 1.1)
//   --seed N                     trace seed (default 42)
//   --threads N                  worker threads (0 = MPS_SERVE_THREADS)
//   --queue-cap N                queue capacity (0 = MPS_SERVE_QUEUE_CAP)
//   --batch-window N             coalescing window (0 = MPS_SERVE_BATCH_WINDOW)
//   --cache-mb N                 plan-cache MiB (0 = MPS_SERVE_PLAN_CACHE_MB)
//   --devices N                  sharded serving on an N-device fleet
//                                (default: MPS_SERVE_DEVICES; 0 = legacy
//                                one-device-per-worker mode)
//   --device-spec S              fleet heterogeneity, e.g. "fast*2,slow*2"
//                                (default: MPS_SERVE_DEVICE_SPEC; see
//                                docs/sharding.md for the grammar)
//   --verify                     check every SpMV answer against the
//                                sequential reference
//   --chaos-seed N               arm a seeded fault schedule (device loss,
//                                stragglers, OOM, bit flips) and run the
//                                CHAOS HARNESS: the trace is replayed twice
//                                in-process — once fault-free for reference,
//                                once under chaos — and every chaos-run
//                                success must be bitwise-identical to the
//                                reference answer
//   --chaos-script S             same harness with an explicit schedule
//                                (see src/vgpu/chaos.hpp for the grammar);
//                                wins over --chaos-seed
//   --trace-out PATH             enable the telemetry tracer and write the
//                                correlated Perfetto timeline (request
//                                lanes + host spans + device kernels);
//                                MPS_TRACE_OUT sets the same thing
//   --metrics-out PATH           write the metrics registry as JSON on
//                                clean shutdown
//   --metrics-prom PATH          write Prometheus text exposition
//   --dump-bundle PATH           write the flight-recorder debug bundle
//                                (recent events + metrics + profile +
//                                engine state) on clean shutdown; "-"
//                                writes to stdout.  Independent of
//                                MPS_FLIGHT_DIR, which additionally arms
//                                automatic dumps on faults and crashes
//   --slo                        enable the per-tenant SLO engine
//                                (MPS_SLO=1 sets the same thing; tune
//                                with MPS_SLO_LATENCY_MS, _OBJECTIVE,
//                                _SHORT_WINDOW, _LONG_WINDOW,
//                                _BURN_ALERT) and print the burn-rate
//                                report table after the replay
//
// Durability / kill-and-recover harness (scripts/crash_matrix.sh drives
// the full sweep; docs/robustness.md):
//   --durable-dir PATH           arm the WAL + snapshot layer; on startup
//                                the engine recovers whatever the
//                                directory holds and prints a greppable
//                                "durable recovery:" line
//   --snapshot-every N           WAL appends between background snapshots
//                                (0 = shutdown snapshot only)
//   --durable-warm               eagerly rebuild the snapshot's warm
//                                plan-cache entries during recovery
//   --reregister-every K         re-register a tenant (identical values,
//                                version bump) every K submissions, so
//                                WAL appends land mid-trace where kills
//                                can tear them; answers are unchanged
//   --crash-after N              _exit(43) right after the N-th
//                                submission — a kill with futures in
//                                flight
//   --crash-point P:N            die at the N-th hit of durability crash
//                                point P (wal-mid, wal-post,
//                                snapshot-mid, snapshot-post, post-ack);
//                                same grammar as MPS_DURABLE_CRASH
//   --durable-manifest PATH      append "handle version" after every
//                                acknowledged registration (then hit the
//                                post-ack crash point); on recovery the
//                                manifest is verified line by line —
//                                every acked registration must have
//                                survived with version >= acked
//   --hash-out PATH              write per-position "index ok hash"
//                                result fingerprints (crash legs die
//                                before writing; recovery legs are
//                                compared bitwise against an
//                                uninterrupted run's file)
//
// MPS_METRICS_DUMP_MS=N additionally dumps the registry as JSON every
// N ms while the replay runs (to MPS_METRICS_DUMP_PATH or stderr).
//
// Exit status is non-zero if any admitted request is left unsettled —
// the zero-dropped-on-shutdown guarantee CI smokes against — if the
// engine completed requests but reports no finite p99 latency, or (under
// chaos) if any success diverged bitwise from the fault-free reference.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "baselines/seq.hpp"
#include "durability/crash.hpp"
#include "serve/engine.hpp"
#include "serve/trace.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/span.hpp"
#include "util/env.hpp"
#include "util/main_guard.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace mps;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trace synthetic] [--requests N] [--tenants M]\n"
               "          [--scale S] [--zipf S] [--seed N] [--threads N]\n"
               "          [--queue-cap N] [--batch-window N] [--cache-mb N]\n"
               "          [--devices N] [--device-spec S]\n"
               "          [--verify] [--chaos-seed N] [--chaos-script S]\n"
               "          [--trace-out PATH] [--metrics-out PATH]\n"
               "          [--metrics-prom PATH] [--dump-bundle PATH] [--slo]\n"
               "          [--durable-dir PATH] [--snapshot-every N]\n"
               "          [--durable-warm] [--reregister-every K]\n"
               "          [--crash-after N] [--crash-point P:N]\n"
               "          [--durable-manifest PATH] [--hash-out PATH]\n",
               argv0);
  std::exit(2);
}

struct Options {
  std::string trace = "synthetic";
  std::size_t requests = 2000;
  std::size_t tenants = 6;
  double scale = 0.05;
  double zipf = 1.1;
  std::uint64_t seed = 42;
  unsigned threads = 0;       // 0 = env default
  std::size_t queue_cap = 0;  // 0 = env default
  int batch_window = 0;       // 0 = env default
  std::size_t cache_mb = 0;   // 0 = env default
  int devices = -1;           // -1 = env default; 0 = legacy mode
  std::string device_spec;    // empty = env default
  bool verify = false;
  std::uint64_t chaos_seed = 0;  // > 0 = chaos harness, seeded schedule
  std::string chaos_script;      // chaos harness, explicit schedule
  std::string trace_out;      // empty = MPS_TRACE_OUT, else no trace
  std::string metrics_out;    // metrics registry JSON on shutdown
  std::string metrics_prom;   // Prometheus text exposition on shutdown
  std::string dump_bundle;    // flight-recorder debug bundle ("-" = stdout)
  bool slo = false;           // per-tenant SLO engine + report table
  std::string durable_dir;    // empty = durability off for this run
  long long snapshot_every = -1;   // -1 = MPS_DURABLE_SNAPSHOT_EVERY
  bool durable_warm = false;       // eager plan rebuild at recovery
  std::size_t reregister_every = 0;  // re-register a tenant every K submits
  std::size_t crash_after = 0;     // _exit(43) after the N-th submission
  std::string crash_point;         // MPS_DURABLE_CRASH grammar
  std::string manifest;            // acked-registration manifest path
  std::string hash_out;            // per-position result fingerprints
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--trace") {
      o.trace = value();
    } else if (arg == "--requests") {
      o.requests = std::stoull(value());
    } else if (arg == "--tenants") {
      o.tenants = std::stoull(value());
    } else if (arg == "--scale") {
      o.scale = std::stod(value());
    } else if (arg == "--zipf") {
      o.zipf = std::stod(value());
    } else if (arg == "--seed") {
      o.seed = std::stoull(value());
    } else if (arg == "--threads") {
      o.threads = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--queue-cap") {
      o.queue_cap = std::stoull(value());
    } else if (arg == "--batch-window") {
      o.batch_window = std::stoi(value());
    } else if (arg == "--cache-mb") {
      o.cache_mb = std::stoull(value());
    } else if (arg == "--devices") {
      o.devices = std::stoi(value());
    } else if (arg == "--device-spec") {
      o.device_spec = value();
    } else if (arg == "--verify") {
      o.verify = true;
    } else if (arg == "--chaos-seed") {
      o.chaos_seed = std::stoull(value());
    } else if (arg == "--chaos-script") {
      o.chaos_script = value();
    } else if (arg == "--trace-out") {
      o.trace_out = value();
    } else if (arg == "--metrics-out") {
      o.metrics_out = value();
    } else if (arg == "--metrics-prom") {
      o.metrics_prom = value();
    } else if (arg == "--dump-bundle") {
      o.dump_bundle = value();
    } else if (arg == "--slo") {
      o.slo = true;
    } else if (arg == "--durable-dir") {
      o.durable_dir = value();
    } else if (arg == "--snapshot-every") {
      o.snapshot_every = std::stoll(value());
    } else if (arg == "--durable-warm") {
      o.durable_warm = true;
    } else if (arg == "--reregister-every") {
      o.reregister_every = std::stoull(value());
    } else if (arg == "--crash-after") {
      o.crash_after = std::stoull(value());
    } else if (arg == "--crash-point") {
      o.crash_point = value();
    } else if (arg == "--durable-manifest") {
      o.manifest = value();
    } else if (arg == "--hash-out") {
      o.hash_out = value();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (o.trace != "synthetic") {
    std::fprintf(stderr, "unknown trace source: %s\n", o.trace.c_str());
    usage(argv[0]);
  }
  if (o.requests == 0 || o.tenants == 0) usage(argv[0]);
  return o;
}

std::vector<double> make_x(const sparse::CsrD& a, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols));
  for (auto& v : x) v = rng.uniform_double(-1, 1);
  return x;
}

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Appends one acknowledged registration to the manifest, flushed before
/// the post-ack crash point fires: if the process dies at kPostAck, the
/// line is on disk and the recovery leg will demand the registration back.
void manifest_append(const std::string& path, serve::MatrixHandle h,
                     std::uint64_t version) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) {
    throw mps::IoError("cannot append to manifest " + path);
  }
  std::fprintf(f, "%llu %llu\n", static_cast<unsigned long long>(h),
               static_cast<unsigned long long>(version));
  std::fflush(f);
  std::fclose(f);
  durability::maybe_crash(durability::CrashPoint::kPostAck);
}

/// Replays the manifest against a freshly recovered engine: every
/// acknowledged registration must be present with a version at least as
/// new as the one acknowledged.  Throws RecoveryError on any loss —
/// that's the headline invariant the kill matrix exists to test.
void verify_manifest(const serve::Engine& engine, const std::string& path) {
  std::ifstream in(path);
  long long total = 0, recovered = 0;
  if (!in) {
    // First run, or a crash before the first ack: nothing to verify, but
    // still print the line so the harness can tell "0 acked" from "forgot
    // to check".
    std::printf("manifest: 0/0 acked registrations recovered\n");
    return;
  }
  unsigned long long h = 0, v = 0;
  while (in >> h >> v) {
    ++total;
    if (engine.has_matrix(h) && engine.matrix_version(h) >= v) {
      ++recovered;
    } else {
      std::fprintf(stderr,
                   "LOST: acked registration handle=%llu version=%llu "
                   "(recovered version %llu)\n",
                   h, v,
                   static_cast<unsigned long long>(engine.matrix_version(h)));
    }
  }
  // crash_matrix.sh greps this exact line — keep the format stable.
  std::printf("manifest: %lld/%lld acked registrations recovered\n", recovered,
              total);
  if (recovered != total) {
    throw mps::RecoveryError(
        std::to_string(total - recovered) +
        " acknowledged registrations were lost across the crash");
  }
}

/// One pending request's bookkeeping for the settle/verify pass.
struct Pending {
  serve::OpKind kind = serve::OpKind::kSpmv;
  std::size_t matrix = 0;
  std::uint64_t x_seed = 0;
  std::future<serve::SpmvResult> spmv;
  std::future<serve::MatrixResult> matrix_op;
};

/// One full trace replay through a fresh engine.  `ok[i]` / `hash[i]`
/// record, per trace position, whether the request delivered a value and
/// the FNV-1a fingerprint of its result bits (modeled time excluded —
/// retries and backoff legitimately change the bill, never the answer).
struct ReplayOutcome {
  std::vector<char> ok;
  std::vector<std::uint64_t> hash;
  long long settled_ok = 0, errored = 0, verified = 0, mismatched = 0;
  double modeled_ms = 0.0;
  double wall_s = 0.0;
  serve::EngineStats stats;
  std::string perfetto;  ///< non-empty when a trace dump was requested
  std::string bundle;    ///< non-empty when a debug bundle was requested
};

ReplayOutcome replay(const Options& opt,
                     const std::vector<workloads::SuiteEntry>& tenants,
                     const std::vector<serve::TraceOp>& trace,
                     int chaos_enabled, bool print_tenants,
                     bool want_perfetto, bool want_bundle) {
  serve::EngineConfig cfg;
  cfg.threads = opt.threads;
  cfg.queue_capacity = opt.queue_cap;
  cfg.batch_window = opt.batch_window;
  cfg.plan_cache_bytes = opt.cache_mb << 20;
  if (opt.devices >= 0) cfg.devices = opt.devices;
  if (!opt.device_spec.empty()) cfg.device_spec = opt.device_spec;
  cfg.chaos_enabled = chaos_enabled;
  if (opt.slo) cfg.slo_enabled = 1;
  if (!opt.durable_dir.empty()) {
    cfg.durable_dir = opt.durable_dir;
    cfg.durable_enabled = 1;
    cfg.durable_snapshot_every = opt.snapshot_every;
    if (opt.durable_warm) cfg.durable_warm = 1;
  }
  serve::Engine engine(cfg);

  if (!opt.durable_dir.empty()) {
    // crash_matrix.sh greps this line — keep the format stable.
    const auto& ri = engine.recovery_info();
    std::printf(
        "durable recovery: snapshot=%d snap_matrices=%lld wal_replayed=%lld "
        "stale=%lld torn=%d last_seq=%llu\n",
        ri.snapshot_loaded ? 1 : 0, ri.snapshot_matrices,
        ri.wal_records_replayed, ri.stale_skipped,
        ri.torn_tail_dropped ? 1 : 0,
        static_cast<unsigned long long>(ri.last_seq));
    // Verify BEFORE this run registers anything: the manifest must be
    // satisfied by recovered state alone.
    if (!opt.manifest.empty()) verify_manifest(engine, opt.manifest);
  }

  std::vector<serve::MatrixHandle> handles;
  if (print_tenants) {
    std::printf("tenants (%zu, scale %.3g):\n", tenants.size(), opt.scale);
  }
  for (const auto& t : tenants) {
    handles.push_back(engine.register_matrix(t.matrix));
    if (!opt.manifest.empty()) {
      manifest_append(opt.manifest, handles.back(),
                      engine.matrix_version(handles.back()));
    }
    if (print_tenants) {
      std::printf("  %-10s %7d x %-7d %9lld nnz  handle %016llx\n",
                  t.name.c_str(), t.matrix.num_rows, t.matrix.num_cols,
                  static_cast<long long>(t.matrix.nnz()),
                  static_cast<unsigned long long>(handles.back()));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Pending> pending;
  pending.reserve(trace.size());
  std::size_t submitted = 0;
  for (const auto& op : trace) {
    if (opt.reregister_every > 0 && submitted > 0 &&
        submitted % opt.reregister_every == 0) {
      // Mid-trace re-registration with identical values: the WAL append
      // and version bump land while requests are in flight — exactly
      // where the kill matrix wants writes to tear — and answers are
      // unchanged (same matrix, same pattern, plans stay valid).
      const std::size_t tenant =
          (submitted / opt.reregister_every - 1) % tenants.size();
      const auto h = engine.register_matrix(tenants[tenant].matrix);
      if (!opt.manifest.empty()) {
        manifest_append(opt.manifest, h, engine.matrix_version(h));
      }
    }
    Pending p;
    p.kind = op.kind;
    p.matrix = op.matrix;
    p.x_seed = op.x_seed;
    switch (op.kind) {
      case serve::OpKind::kSpmv:
        p.spmv = engine.submit_spmv(
            handles[op.matrix], make_x(tenants[op.matrix].matrix, op.x_seed));
        break;
      case serve::OpKind::kSpadd:
        p.matrix_op = engine.submit_spadd(handles[op.matrix],
                                          handles[op.matrix_b]);
        break;
      case serve::OpKind::kSpgemm:
        p.matrix_op = engine.submit_spgemm(handles[op.matrix],
                                           handles[op.matrix_b]);
        break;
    }
    pending.push_back(std::move(p));
    ++submitted;
    if (opt.crash_after > 0 && submitted >= opt.crash_after) {
      // A kill with futures in flight: no drain, no shutdown snapshot,
      // no destructors — the recovery leg gets whatever the WAL holds.
      std::fprintf(stderr, "crashing after %zu submissions\n", submitted);
      std::fflush(nullptr);
      ::_exit(durability::kCrashExitCode);
    }
  }
  engine.shutdown(serve::Engine::ShutdownMode::kDrain);
  ReplayOutcome out;
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Settle every future; the drain guarantee means none may block or be
  // abandoned.  Fingerprint successes for cross-run comparison and
  // optionally verify answers against the sequential reference.
  out.ok.assign(pending.size(), 0);
  out.hash.assign(pending.size(), 0);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    Pending& p = pending[i];
    try {
      if (p.kind == serve::OpKind::kSpmv) {
        serve::SpmvResult r = p.spmv.get();
        out.modeled_ms += r.modeled_ms;
        out.hash[i] = fnv1a(r.y.data(), r.y.size() * sizeof(double));
        if (opt.verify) {
          const auto& a = tenants[p.matrix].matrix;
          std::vector<double> ref(static_cast<std::size_t>(a.num_rows));
          baselines::seq::spmv(a, make_x(a, p.x_seed), ref);
          bool good = r.y.size() == ref.size();
          for (std::size_t k = 0; good && k < ref.size(); ++k) {
            good = std::abs(r.y[k] - ref[k]) <= 1e-9;
          }
          ++out.verified;
          if (!good) ++out.mismatched;
        }
      } else {
        serve::MatrixResult r = p.matrix_op.get();
        out.modeled_ms += r.modeled_ms;
        std::uint64_t h = fnv1a(r.c.row_offsets.data(),
                                r.c.row_offsets.size() * sizeof(index_t));
        h = fnv1a(r.c.col.data(), r.c.col.size() * sizeof(index_t), h);
        out.hash[i] = fnv1a(r.c.val.data(), r.c.val.size() * sizeof(double), h);
      }
      out.ok[i] = 1;
      ++out.settled_ok;
    } catch (const mps::Error&) {
      ++out.errored;
    }
  }

  out.stats = engine.stats();
  if (want_perfetto) {
    std::ostringstream trace_stream;
    engine.write_trace(trace_stream);
    out.perfetto = trace_stream.str();
  }
  if (want_bundle) {
    // Captured while the engine is alive so its registered state
    // provider (config, queue, workers, devices, plan cache, SLO) is
    // still part of the bundle.
    std::ostringstream bundle_stream;
    telemetry::flight().write_bundle(bundle_stream, "mps_serve --dump-bundle");
    out.bundle = bundle_stream.str();
  }
  return out;
}

int run_main(int argc, char** argv) {
  Options opt = parse(argc, argv);
  if (opt.trace_out.empty()) {
    // Strict: MPS_TRACE_OUT set-but-empty is a quoting accident, not a
    // request for no trace — env_path_checked throws InvalidInputError.
    opt.trace_out = util::env_path_checked("MPS_TRACE_OUT");
  }
  // Crash-point injection: the flag publishes through the same knob the
  // env path uses, so either spelling arms the same machinery.
  if (!opt.crash_point.empty()) {
    ::setenv("MPS_DURABLE_CRASH", opt.crash_point.c_str(), 1);
  }
  durability::arm_crash_from_env();

  // The tracer must be live BEFORE any request is admitted so that the
  // serve.request spans, the host phase spans underneath them, and the
  // kernel launches they trigger all carry correlated trace ids.
  if (!opt.trace_out.empty()) telemetry::tracer().enable();
  // Same for the roofline profiler: MPS_PROFILE=1 must arm it before the
  // first launch or the early kernels are missing from the attribution.
  telemetry::profiler().configure_from_env();
  // Honors MPS_METRICS_DUMP_MS; inert (no thread) when the knob is unset.
  telemetry::PeriodicDumper dumper;

  // Tenant matrices: square Table II surrogates (the trace self-pairs
  // SpAdd/SpGEMM operands, which needs square dims).
  std::vector<workloads::SuiteEntry> tenants;
  for (const auto& name : workloads::suite_names()) {
    if (tenants.size() >= opt.tenants) break;
    auto entry = workloads::suite_entry(name, opt.scale);
    if (entry.matrix.num_rows == entry.matrix.num_cols) {
      tenants.push_back(std::move(entry));
    }
  }
  if (tenants.size() < opt.tenants) {
    std::fprintf(stderr, "only %zu square suite matrices available\n",
                 tenants.size());
    return 2;
  }

  serve::TraceConfig tcfg;
  tcfg.requests = opt.requests;
  tcfg.zipf_s = opt.zipf;
  tcfg.seed = opt.seed;
  const auto trace = serve::synthetic_trace(tcfg, tenants.size());

  const bool chaos_mode = opt.chaos_seed > 0 || !opt.chaos_script.empty();
  ReplayOutcome ref, out;
  if (chaos_mode) {
    // Publish the schedule through the same env knobs the engine's
    // config resolution reads (so the seeded expansion sees the real
    // worker count), and force integrity checking on unless the caller
    // chose otherwise — bit-flip chaos relies on it to convert silent
    // corruption into retryable IntegrityError.
    if (!opt.chaos_script.empty()) {
      ::setenv("MPS_CHAOS_SCRIPT", opt.chaos_script.c_str(), 1);
    } else {
      ::setenv("MPS_CHAOS_SEED", std::to_string(opt.chaos_seed).c_str(), 1);
      ::unsetenv("MPS_CHAOS_SCRIPT");
    }
    ::setenv("MPS_INTEGRITY_CHECK", "1", /*overwrite=*/0);
    if (!opt.chaos_script.empty()) {
      std::printf("chaos script: %s\n", opt.chaos_script.c_str());
    } else {
      std::printf("chaos seed: %llu\n",
                  static_cast<unsigned long long>(opt.chaos_seed));
    }
    // Reference leg: same trace, same engine configuration, chaos forced
    // off.  Every success in the chaos leg must reproduce these bits.
    ref = replay(opt, tenants, trace, /*chaos_enabled=*/0,
                 /*print_tenants=*/true, /*want_perfetto=*/false,
                 /*want_bundle=*/false);
    out = replay(opt, tenants, trace, /*chaos_enabled=*/1,
                 /*print_tenants=*/false, !opt.trace_out.empty(),
                 !opt.dump_bundle.empty());
  } else {
    out = replay(opt, tenants, trace, /*chaos_enabled=*/-1,
                 /*print_tenants=*/true, !opt.trace_out.empty(),
                 !opt.dump_bundle.empty());
  }
  const serve::EngineStats& s = out.stats;

  util::Table t(chaos_mode ? "mps_serve: chaos replay (faults armed)"
                           : "mps_serve: synthetic trace replay");
  t.set_header({"metric", "value"});
  const auto add = [&t](const std::string& k, const std::string& v) {
    t.add_row({k, v});
  };
  add("requests", std::to_string(opt.requests));
  add("accepted", std::to_string(s.accepted));
  add("completed", std::to_string(s.completed));
  add("failed", std::to_string(s.failed));
  add("timed out", std::to_string(s.timed_out));
  add("rejected (full)", std::to_string(s.rejected_full));
  add("rejected (shutdown)", std::to_string(s.rejected_shutdown));
  add("shed (low priority)", std::to_string(s.shed));
  add("retries", std::to_string(s.retries));
  add("failovers", std::to_string(s.failovers));
  add("breaker", std::to_string(s.breaker.opened) + " opened / " +
                     std::to_string(s.breaker.fail_fast) + " fail-fast / " +
                     std::to_string(s.breaker.reclosed) + " reclosed");
  add("degraded mode", std::to_string(s.degraded_entered) + " entered" +
                           (s.degraded ? " (still degraded)" : ""));
  add("throughput req/s", util::fmt(static_cast<double>(opt.requests) / out.wall_s, 1));
  add("modeled kernel ms", util::fmt(out.modeled_ms, 2));
  add("latency mean ms", util::fmt(s.latency_ms.mean, 3));
  add("latency p50 ms", util::fmt(s.latency_p50_ms, 3));
  add("latency p99 ms", util::fmt(s.latency_p99_ms, 3));
  add("peak queue depth", std::to_string(s.peak_queue_depth) + " / cap " +
                              std::to_string(s.queue_capacity));
  add("spmm batches", std::to_string(s.batches) + " (max " +
                          std::to_string(s.max_batch) + ")");
  std::string histo;
  for (std::size_t k = 1; k < s.batch_histogram.size(); ++k) {
    if (s.batch_histogram[k] == 0) continue;
    if (!histo.empty()) histo += " ";
    histo += std::to_string(k) + ":" + std::to_string(s.batch_histogram[k]);
  }
  add("batch histogram", histo.empty() ? "-" : histo);
  add("plan cache", std::to_string(s.plan_cache.hits) + " hits / " +
                        std::to_string(s.plan_cache.misses) + " misses / " +
                        std::to_string(s.plan_cache.evictions) + " evictions");
  add("plan cache bytes", std::to_string(s.plan_cache.bytes_in_use) + " / " +
                              std::to_string(s.plan_cache.capacity_bytes));
  if (opt.devices > 0) {
    add("sharded matrices", std::to_string(s.sharded_matrices) + " (" +
                                std::to_string(s.replicated_matrices) +
                                " hot-replicated)");
    for (std::size_t i = 0; i < s.devices.size(); ++i) {
      const auto& d = s.devices[i];
      add("device " + std::to_string(i) + " (" + d.profile + ")",
          std::to_string(d.dispatched) + " dispatched / " +
              std::to_string(d.shards_hosted) + " shards / " +
              std::to_string(d.lost) + " lost / w=" + util::fmt(d.weight, 0));
    }
  }
  if (s.durability.enabled) {
    add("wal appends", std::to_string(s.durability.wal_appends) + " (" +
                           std::to_string(s.durability.wal_bytes) + " bytes)");
    add("snapshots", std::to_string(s.durability.snapshots));
    add("recovered", std::to_string(s.durability.recovery.snapshot_matrices) +
                         " snap + " +
                         std::to_string(s.durability.recovery.wal_records_replayed) +
                         " wal replayed");
  }
  if (opt.verify) {
    add("verified", std::to_string(out.verified) + " (" +
                        std::to_string(out.mismatched) + " mismatched)");
  }
  std::fputs(t.render().c_str(), stdout);

  if (opt.slo && s.slo.enabled) {
    // Per-tenant burn-rate report: burn 1.0 = spending the error budget
    // exactly at the objective's sustainable rate; an alert requires
    // BOTH windows above the threshold (docs/observability.md).
    char title[128];
    std::snprintf(title, sizeof(title),
                  "SLO report (latency %.3g ms, objective %.6g, alert at "
                  "burn > %.3g)",
                  s.slo.latency_ms, s.slo.objective, s.slo.burn_alert);
    util::Table slo_t(title);
    slo_t.set_header({"tenant", "requests", "bad", "burn short", "burn long",
                      "budget left", "state", "alerts"});
    for (const auto& ts : s.slo.tenants) {
      char handle_hex[32];
      std::snprintf(handle_hex, sizeof(handle_hex), "%016llx",
                    static_cast<unsigned long long>(ts.tenant));
      slo_t.add_row({handle_hex, std::to_string(ts.total),
                     std::to_string(ts.bad), util::fmt(ts.burn_short, 2),
                     util::fmt(ts.burn_long, 2),
                     util::fmt(ts.budget_remaining, 2),
                     ts.alerting ? "ALERTING" : "ok",
                     std::to_string(ts.alerts)});
    }
    std::fputs(slo_t.render().c_str(), stdout);
    // CI greps this line — keep the format stable.
    std::printf("slo: %lld tenants alerting\n", s.slo.alerting_now);
  }

  // Observability artifacts: the correlated Perfetto timeline, the
  // flight-recorder debug bundle, and the final metrics-registry
  // snapshot (JSON and/or Prometheus text).
  if (!opt.trace_out.empty()) {
    std::ofstream fout(opt.trace_out);
    if (!fout) {
      std::fprintf(stderr, "FAILED: cannot write trace to %s\n",
                   opt.trace_out.c_str());
      return 1;
    }
    fout << out.perfetto;
    std::printf("(perfetto trace written to %s: %zu spans)\n",
                opt.trace_out.c_str(), telemetry::tracer().size());
    telemetry::tracer().disable();
  }
  if (!opt.dump_bundle.empty()) {
    if (opt.dump_bundle == "-") {
      std::fputs(out.bundle.c_str(), stdout);
    } else {
      std::ofstream fout(opt.dump_bundle);
      if (!fout) {
        std::fprintf(stderr, "FAILED: cannot write bundle to %s\n",
                     opt.dump_bundle.c_str());
        return 1;
      }
      fout << out.bundle;
      std::printf("(debug bundle written to %s: %zu bytes)\n",
                  opt.dump_bundle.c_str(), out.bundle.size());
    }
  }
  if (!opt.metrics_out.empty()) {
    std::ofstream fout(opt.metrics_out);
    if (!fout) {
      std::fprintf(stderr, "FAILED: cannot write metrics to %s\n",
                   opt.metrics_out.c_str());
      return 1;
    }
    telemetry::metrics().write_json(fout);
    std::printf("(metrics json written to %s)\n", opt.metrics_out.c_str());
  }
  if (!opt.hash_out.empty()) {
    // Per-position result fingerprints: the kill matrix compares a
    // recovery run's file bitwise (cmp) against an uninterrupted run's.
    std::ofstream fout(opt.hash_out);
    if (!fout) {
      std::fprintf(stderr, "FAILED: cannot write hashes to %s\n",
                   opt.hash_out.c_str());
      return 1;
    }
    for (std::size_t i = 0; i < out.ok.size(); ++i) {
      fout << i << ' ' << (out.ok[i] ? 1 : 0) << ' ' << out.hash[i] << '\n';
    }
    std::printf("(result hashes written to %s)\n", opt.hash_out.c_str());
  }
  if (!opt.metrics_prom.empty()) {
    std::ofstream fout(opt.metrics_prom);
    if (!fout) {
      std::fprintf(stderr, "FAILED: cannot write metrics to %s\n",
                   opt.metrics_prom.c_str());
      return 1;
    }
    telemetry::metrics().write_prometheus(fout);
    std::printf("(prometheus metrics written to %s)\n",
                opt.metrics_prom.c_str());
  }

  // The hard guarantees this binary smokes in CI:
  //  * every admitted request was settled (value or typed error) — in
  //    BOTH legs when the chaos harness ran;
  //  * the bounded queue never exceeded its cap;
  //  * under chaos, every request that succeeded in both legs returned
  //    bitwise-identical bits.
  const auto check_drops = [](const serve::EngineStats& st, const char* leg) {
    const long long settled =
        st.completed + st.failed + st.timed_out + st.rejected_shutdown;
    const long long dropped = st.accepted - settled;
    if (leg) {
      std::printf("dropped on shutdown (%s leg): %lld\n", leg, dropped);
    } else {
      // CI greps this exact line — keep the format stable.
      std::printf("\ndropped on shutdown: %lld\n", dropped);
    }
    if (dropped != 0) {
      std::fprintf(stderr, "FAILED: %lld admitted requests were never "
                   "settled%s%s\n", dropped, leg ? " in the " : "",
                   leg ? leg : "");
      return false;
    }
    return true;
  };
  if (chaos_mode && !check_drops(ref.stats, "reference")) return 1;
  if (!check_drops(out.stats, nullptr)) return 1;
  if (s.peak_queue_depth > s.queue_capacity) {
    std::fprintf(stderr, "FAILED: queue depth %zu exceeded cap %zu\n",
                 s.peak_queue_depth, s.queue_capacity);
    return 1;
  }
  if (out.settled_ok + out.errored != static_cast<long long>(trace.size())) {
    std::fprintf(stderr, "FAILED: settled futures do not cover the trace\n");
    return 1;
  }
  if (out.mismatched != 0) {
    std::fprintf(stderr, "FAILED: %lld SpMV answers diverged from the "
                 "sequential reference\n", out.mismatched);
    return 1;
  }
  // A run that completed work must report a usable tail latency — an
  // absent or NaN p99 means the latency ring broke, which would blind
  // any operator dashboard built on these stats.
  if (s.completed > 0 &&
      (s.latency_ms.n == 0 || !std::isfinite(s.latency_p99_ms))) {
    std::fprintf(stderr,
                 "FAILED: completed %lld requests but p99 latency is "
                 "absent/non-finite\n", s.completed);
    return 1;
  }

  if (chaos_mode) {
    long long both_ok = 0, divergent = 0, chaos_only = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (!out.ok[i]) continue;
      if (!ref.ok[i]) {
        ++chaos_only;  // reference leg rejected it (e.g. backpressure)
      } else {
        ++both_ok;
        if (ref.hash[i] != out.hash[i]) ++divergent;
      }
    }
    std::printf("chaos comparison: %lld succeeded in both legs, %lld "
                "divergent, %lld chaos-only\n", both_ok, divergent, chaos_only);
    if (divergent != 0) {
      std::fprintf(stderr,
                   "FAILED: %lld chaos-run answers diverged bitwise from the "
                   "fault-free reference\n", divergent);
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("mps_serve", [&] { return run_main(argc, argv); });
}
