# Empty compiler generated dependencies file for cg_poisson.
# This may be replaced when dependencies are built.
