# Empty dependencies file for markov_ensemble.
# This may be replaced when dependencies are built.
