file(REMOVE_RECURSE
  "CMakeFiles/markov_ensemble.dir/markov_ensemble.cpp.o"
  "CMakeFiles/markov_ensemble.dir/markov_ensemble.cpp.o.d"
  "markov_ensemble"
  "markov_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
