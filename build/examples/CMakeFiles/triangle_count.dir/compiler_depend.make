# Empty compiler generated dependencies file for triangle_count.
# This may be replaced when dependencies are built.
