# Empty compiler generated dependencies file for set_algebra.
# This may be replaced when dependencies are built.
