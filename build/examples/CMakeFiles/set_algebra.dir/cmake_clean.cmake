file(REMOVE_RECURSE
  "CMakeFiles/set_algebra.dir/set_algebra.cpp.o"
  "CMakeFiles/set_algebra.dir/set_algebra.cpp.o.d"
  "set_algebra"
  "set_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
