# Empty dependencies file for amg_vcycle.
# This may be replaced when dependencies are built.
