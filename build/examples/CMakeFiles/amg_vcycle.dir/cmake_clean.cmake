file(REMOVE_RECURSE
  "CMakeFiles/amg_vcycle.dir/amg_vcycle.cpp.o"
  "CMakeFiles/amg_vcycle.dir/amg_vcycle.cpp.o.d"
  "amg_vcycle"
  "amg_vcycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_vcycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
