file(REMOVE_RECURSE
  "CMakeFiles/set_ops_device_test.dir/set_ops_device_test.cpp.o"
  "CMakeFiles/set_ops_device_test.dir/set_ops_device_test.cpp.o.d"
  "set_ops_device_test"
  "set_ops_device_test.pdb"
  "set_ops_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_ops_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
