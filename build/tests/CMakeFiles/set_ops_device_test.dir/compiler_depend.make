# Empty compiler generated dependencies file for set_ops_device_test.
# This may be replaced when dependencies are built.
