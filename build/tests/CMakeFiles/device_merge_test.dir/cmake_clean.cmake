file(REMOVE_RECURSE
  "CMakeFiles/device_merge_test.dir/device_merge_test.cpp.o"
  "CMakeFiles/device_merge_test.dir/device_merge_test.cpp.o.d"
  "device_merge_test"
  "device_merge_test.pdb"
  "device_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
