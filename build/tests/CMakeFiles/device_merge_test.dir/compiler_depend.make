# Empty compiler generated dependencies file for device_merge_test.
# This may be replaced when dependencies are built.
