file(REMOVE_RECURSE
  "CMakeFiles/spmm_test.dir/spmm_test.cpp.o"
  "CMakeFiles/spmm_test.dir/spmm_test.cpp.o.d"
  "spmm_test"
  "spmm_test.pdb"
  "spmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
