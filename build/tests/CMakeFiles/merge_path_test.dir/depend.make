# Empty dependencies file for merge_path_test.
# This may be replaced when dependencies are built.
