file(REMOVE_RECURSE
  "CMakeFiles/merge_path_test.dir/merge_path_test.cpp.o"
  "CMakeFiles/merge_path_test.dir/merge_path_test.cpp.o.d"
  "merge_path_test"
  "merge_path_test.pdb"
  "merge_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
