file(REMOVE_RECURSE
  "CMakeFiles/scan_reduce_test.dir/scan_reduce_test.cpp.o"
  "CMakeFiles/scan_reduce_test.dir/scan_reduce_test.cpp.o.d"
  "scan_reduce_test"
  "scan_reduce_test.pdb"
  "scan_reduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
