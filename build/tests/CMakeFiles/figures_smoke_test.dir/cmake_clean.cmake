file(REMOVE_RECURSE
  "CMakeFiles/figures_smoke_test.dir/figures_smoke_test.cpp.o"
  "CMakeFiles/figures_smoke_test.dir/figures_smoke_test.cpp.o.d"
  "figures_smoke_test"
  "figures_smoke_test.pdb"
  "figures_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
