# Empty dependencies file for figures_smoke_test.
# This may be replaced when dependencies are built.
