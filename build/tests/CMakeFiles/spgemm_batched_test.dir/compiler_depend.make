# Empty compiler generated dependencies file for spgemm_batched_test.
# This may be replaced when dependencies are built.
