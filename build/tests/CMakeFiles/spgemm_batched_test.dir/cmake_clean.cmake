file(REMOVE_RECURSE
  "CMakeFiles/spgemm_batched_test.dir/spgemm_batched_test.cpp.o"
  "CMakeFiles/spgemm_batched_test.dir/spgemm_batched_test.cpp.o.d"
  "spgemm_batched_test"
  "spgemm_batched_test.pdb"
  "spgemm_batched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spgemm_batched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
