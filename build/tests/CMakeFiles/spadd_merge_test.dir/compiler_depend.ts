# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for spadd_merge_test.
