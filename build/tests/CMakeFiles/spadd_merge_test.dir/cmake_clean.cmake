file(REMOVE_RECURSE
  "CMakeFiles/spadd_merge_test.dir/spadd_merge_test.cpp.o"
  "CMakeFiles/spadd_merge_test.dir/spadd_merge_test.cpp.o.d"
  "spadd_merge_test"
  "spadd_merge_test.pdb"
  "spadd_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spadd_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
