# Empty dependencies file for spadd_merge_test.
# This may be replaced when dependencies are built.
