file(REMOVE_RECURSE
  "CMakeFiles/balanced_path_test.dir/balanced_path_test.cpp.o"
  "CMakeFiles/balanced_path_test.dir/balanced_path_test.cpp.o.d"
  "balanced_path_test"
  "balanced_path_test.pdb"
  "balanced_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balanced_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
