# Empty compiler generated dependencies file for balanced_path_test.
# This may be replaced when dependencies are built.
