file(REMOVE_RECURSE
  "CMakeFiles/float_primitives_test.dir/float_primitives_test.cpp.o"
  "CMakeFiles/float_primitives_test.dir/float_primitives_test.cpp.o.d"
  "float_primitives_test"
  "float_primitives_test.pdb"
  "float_primitives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/float_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
