# Empty dependencies file for float_primitives_test.
# This may be replaced when dependencies are built.
