# Empty compiler generated dependencies file for fp32_kernels_test.
# This may be replaced when dependencies are built.
