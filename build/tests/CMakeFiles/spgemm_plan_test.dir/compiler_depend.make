# Empty compiler generated dependencies file for spgemm_plan_test.
# This may be replaced when dependencies are built.
