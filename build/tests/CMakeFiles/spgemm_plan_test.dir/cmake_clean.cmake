file(REMOVE_RECURSE
  "CMakeFiles/spgemm_plan_test.dir/spgemm_plan_test.cpp.o"
  "CMakeFiles/spgemm_plan_test.dir/spgemm_plan_test.cpp.o.d"
  "spgemm_plan_test"
  "spgemm_plan_test.pdb"
  "spgemm_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spgemm_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
