file(REMOVE_RECURSE
  "CMakeFiles/spgemm_merge_test.dir/spgemm_merge_test.cpp.o"
  "CMakeFiles/spgemm_merge_test.dir/spgemm_merge_test.cpp.o.d"
  "spgemm_merge_test"
  "spgemm_merge_test.pdb"
  "spgemm_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spgemm_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
