# Empty dependencies file for spgemm_merge_test.
# This may be replaced when dependencies are built.
