# Empty dependencies file for spmv_merge_test.
# This may be replaced when dependencies are built.
