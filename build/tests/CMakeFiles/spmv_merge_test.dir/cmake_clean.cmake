file(REMOVE_RECURSE
  "CMakeFiles/spmv_merge_test.dir/spmv_merge_test.cpp.o"
  "CMakeFiles/spmv_merge_test.dir/spmv_merge_test.cpp.o.d"
  "spmv_merge_test"
  "spmv_merge_test.pdb"
  "spmv_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
