file(REMOVE_RECURSE
  "CMakeFiles/fig5_spmv.dir/bench/fig5_spmv.cpp.o"
  "CMakeFiles/fig5_spmv.dir/bench/fig5_spmv.cpp.o.d"
  "bench/fig5_spmv"
  "bench/fig5_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
