# Empty compiler generated dependencies file for fig5_spmv.
# This may be replaced when dependencies are built.
