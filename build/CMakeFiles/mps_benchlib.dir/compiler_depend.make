# Empty compiler generated dependencies file for mps_benchlib.
# This may be replaced when dependencies are built.
