file(REMOVE_RECURSE
  "lib/libmps_benchlib.a"
)
