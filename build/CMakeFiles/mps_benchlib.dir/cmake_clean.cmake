file(REMOVE_RECURSE
  "CMakeFiles/mps_benchlib.dir/bench/suite_runners.cpp.o"
  "CMakeFiles/mps_benchlib.dir/bench/suite_runners.cpp.o.d"
  "lib/libmps_benchlib.a"
  "lib/libmps_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
