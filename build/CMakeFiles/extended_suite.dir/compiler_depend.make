# Empty compiler generated dependencies file for extended_suite.
# This may be replaced when dependencies are built.
