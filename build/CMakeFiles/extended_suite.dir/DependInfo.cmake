
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extended_suite.cpp" "CMakeFiles/extended_suite.dir/bench/extended_suite.cpp.o" "gcc" "CMakeFiles/extended_suite.dir/bench/extended_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mps_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mps_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/mps_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/mps_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/mps_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
