file(REMOVE_RECURSE
  "CMakeFiles/extended_suite.dir/bench/extended_suite.cpp.o"
  "CMakeFiles/extended_suite.dir/bench/extended_suite.cpp.o.d"
  "bench/extended_suite"
  "bench/extended_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
