# Empty compiler generated dependencies file for ablation_spmv.
# This may be replaced when dependencies are built.
