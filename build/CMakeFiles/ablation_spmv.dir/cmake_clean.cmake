file(REMOVE_RECURSE
  "CMakeFiles/ablation_spmv.dir/bench/ablation_spmv.cpp.o"
  "CMakeFiles/ablation_spmv.dir/bench/ablation_spmv.cpp.o.d"
  "bench/ablation_spmv"
  "bench/ablation_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
