file(REMOVE_RECURSE
  "CMakeFiles/sensitivity.dir/bench/sensitivity.cpp.o"
  "CMakeFiles/sensitivity.dir/bench/sensitivity.cpp.o.d"
  "bench/sensitivity"
  "bench/sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
