file(REMOVE_RECURSE
  "CMakeFiles/fig4_blocksort.dir/bench/fig4_blocksort.cpp.o"
  "CMakeFiles/fig4_blocksort.dir/bench/fig4_blocksort.cpp.o.d"
  "bench/fig4_blocksort"
  "bench/fig4_blocksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_blocksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
