# Empty dependencies file for fig4_blocksort.
# This may be replaced when dependencies are built.
