file(REMOVE_RECURSE
  "CMakeFiles/fig6_spmv_corr.dir/bench/fig6_spmv_corr.cpp.o"
  "CMakeFiles/fig6_spmv_corr.dir/bench/fig6_spmv_corr.cpp.o.d"
  "bench/fig6_spmv_corr"
  "bench/fig6_spmv_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_spmv_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
