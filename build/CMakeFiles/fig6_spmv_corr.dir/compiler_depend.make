# Empty compiler generated dependencies file for fig6_spmv_corr.
# This may be replaced when dependencies are built.
