# Empty compiler generated dependencies file for ablation_spgemm.
# This may be replaced when dependencies are built.
