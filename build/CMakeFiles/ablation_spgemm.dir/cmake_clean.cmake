file(REMOVE_RECURSE
  "CMakeFiles/ablation_spgemm.dir/bench/ablation_spgemm.cpp.o"
  "CMakeFiles/ablation_spgemm.dir/bench/ablation_spgemm.cpp.o.d"
  "bench/ablation_spgemm"
  "bench/ablation_spgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
