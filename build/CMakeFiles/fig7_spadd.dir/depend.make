# Empty dependencies file for fig7_spadd.
# This may be replaced when dependencies are built.
