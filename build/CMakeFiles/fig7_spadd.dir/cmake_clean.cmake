file(REMOVE_RECURSE
  "CMakeFiles/fig7_spadd.dir/bench/fig7_spadd.cpp.o"
  "CMakeFiles/fig7_spadd.dir/bench/fig7_spadd.cpp.o.d"
  "bench/fig7_spadd"
  "bench/fig7_spadd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_spadd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
