# Empty dependencies file for fig8_spadd_corr.
# This may be replaced when dependencies are built.
