file(REMOVE_RECURSE
  "CMakeFiles/fig8_spadd_corr.dir/bench/fig8_spadd_corr.cpp.o"
  "CMakeFiles/fig8_spadd_corr.dir/bench/fig8_spadd_corr.cpp.o.d"
  "bench/fig8_spadd_corr"
  "bench/fig8_spadd_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_spadd_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
