file(REMOVE_RECURSE
  "CMakeFiles/fig11_spgemm_breakdown.dir/bench/fig11_spgemm_breakdown.cpp.o"
  "CMakeFiles/fig11_spgemm_breakdown.dir/bench/fig11_spgemm_breakdown.cpp.o.d"
  "bench/fig11_spgemm_breakdown"
  "bench/fig11_spgemm_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_spgemm_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
