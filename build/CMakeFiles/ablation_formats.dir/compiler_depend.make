# Empty compiler generated dependencies file for ablation_formats.
# This may be replaced when dependencies are built.
