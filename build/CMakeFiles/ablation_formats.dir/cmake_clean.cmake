file(REMOVE_RECURSE
  "CMakeFiles/ablation_formats.dir/bench/ablation_formats.cpp.o"
  "CMakeFiles/ablation_formats.dir/bench/ablation_formats.cpp.o.d"
  "bench/ablation_formats"
  "bench/ablation_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
