# Empty dependencies file for fig9_spgemm.
# This may be replaced when dependencies are built.
