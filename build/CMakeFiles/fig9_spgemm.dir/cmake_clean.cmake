file(REMOVE_RECURSE
  "CMakeFiles/fig9_spgemm.dir/bench/fig9_spgemm.cpp.o"
  "CMakeFiles/fig9_spgemm.dir/bench/fig9_spgemm.cpp.o.d"
  "bench/fig9_spgemm"
  "bench/fig9_spgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_spgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
