# Empty dependencies file for fig10_spgemm_corr.
# This may be replaced when dependencies are built.
