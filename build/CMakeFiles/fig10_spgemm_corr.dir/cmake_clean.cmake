file(REMOVE_RECURSE
  "CMakeFiles/fig10_spgemm_corr.dir/bench/fig10_spgemm_corr.cpp.o"
  "CMakeFiles/fig10_spgemm_corr.dir/bench/fig10_spgemm_corr.cpp.o.d"
  "bench/fig10_spgemm_corr"
  "bench/fig10_spgemm_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_spgemm_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
