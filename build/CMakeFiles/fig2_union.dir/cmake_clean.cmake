file(REMOVE_RECURSE
  "CMakeFiles/fig2_union.dir/bench/fig2_union.cpp.o"
  "CMakeFiles/fig2_union.dir/bench/fig2_union.cpp.o.d"
  "bench/fig2_union"
  "bench/fig2_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
