# Empty dependencies file for fig2_union.
# This may be replaced when dependencies are built.
