
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/mps_gen.cpp" "tools/CMakeFiles/mps_gen.dir/mps_gen.cpp.o" "gcc" "tools/CMakeFiles/mps_gen.dir/mps_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/mps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/mps_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
