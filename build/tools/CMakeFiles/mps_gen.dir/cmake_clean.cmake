file(REMOVE_RECURSE
  "CMakeFiles/mps_gen.dir/mps_gen.cpp.o"
  "CMakeFiles/mps_gen.dir/mps_gen.cpp.o.d"
  "mps_gen"
  "mps_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
