# Empty compiler generated dependencies file for mps_gen.
# This may be replaced when dependencies are built.
