# Empty dependencies file for mps_run.
# This may be replaced when dependencies are built.
