file(REMOVE_RECURSE
  "CMakeFiles/mps_run.dir/mps_run.cpp.o"
  "CMakeFiles/mps_run.dir/mps_run.cpp.o.d"
  "mps_run"
  "mps_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
