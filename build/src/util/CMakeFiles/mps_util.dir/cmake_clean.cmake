file(REMOVE_RECURSE
  "CMakeFiles/mps_util.dir/env.cpp.o"
  "CMakeFiles/mps_util.dir/env.cpp.o.d"
  "CMakeFiles/mps_util.dir/rng.cpp.o"
  "CMakeFiles/mps_util.dir/rng.cpp.o.d"
  "CMakeFiles/mps_util.dir/stats.cpp.o"
  "CMakeFiles/mps_util.dir/stats.cpp.o.d"
  "CMakeFiles/mps_util.dir/table.cpp.o"
  "CMakeFiles/mps_util.dir/table.cpp.o.d"
  "libmps_util.a"
  "libmps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
