file(REMOVE_RECURSE
  "libmps_util.a"
)
