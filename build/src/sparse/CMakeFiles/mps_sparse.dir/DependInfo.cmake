
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/ell.cpp" "src/sparse/CMakeFiles/mps_sparse.dir/ell.cpp.o" "gcc" "src/sparse/CMakeFiles/mps_sparse.dir/ell.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/sparse/CMakeFiles/mps_sparse.dir/io.cpp.o" "gcc" "src/sparse/CMakeFiles/mps_sparse.dir/io.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/sparse/CMakeFiles/mps_sparse.dir/stats.cpp.o" "gcc" "src/sparse/CMakeFiles/mps_sparse.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
