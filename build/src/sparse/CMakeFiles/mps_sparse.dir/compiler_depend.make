# Empty compiler generated dependencies file for mps_sparse.
# This may be replaced when dependencies are built.
