file(REMOVE_RECURSE
  "libmps_sparse.a"
)
