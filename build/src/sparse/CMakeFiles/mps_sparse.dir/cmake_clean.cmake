file(REMOVE_RECURSE
  "CMakeFiles/mps_sparse.dir/ell.cpp.o"
  "CMakeFiles/mps_sparse.dir/ell.cpp.o.d"
  "CMakeFiles/mps_sparse.dir/io.cpp.o"
  "CMakeFiles/mps_sparse.dir/io.cpp.o.d"
  "CMakeFiles/mps_sparse.dir/stats.cpp.o"
  "CMakeFiles/mps_sparse.dir/stats.cpp.o.d"
  "libmps_sparse.a"
  "libmps_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
