file(REMOVE_RECURSE
  "CMakeFiles/mps_primitives.dir/cta_radix_sort.cpp.o"
  "CMakeFiles/mps_primitives.dir/cta_radix_sort.cpp.o.d"
  "CMakeFiles/mps_primitives.dir/device_radix_sort.cpp.o"
  "CMakeFiles/mps_primitives.dir/device_radix_sort.cpp.o.d"
  "libmps_primitives.a"
  "libmps_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
