# Empty compiler generated dependencies file for mps_primitives.
# This may be replaced when dependencies are built.
