
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/primitives/cta_radix_sort.cpp" "src/primitives/CMakeFiles/mps_primitives.dir/cta_radix_sort.cpp.o" "gcc" "src/primitives/CMakeFiles/mps_primitives.dir/cta_radix_sort.cpp.o.d"
  "/root/repo/src/primitives/device_radix_sort.cpp" "src/primitives/CMakeFiles/mps_primitives.dir/device_radix_sort.cpp.o" "gcc" "src/primitives/CMakeFiles/mps_primitives.dir/device_radix_sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/mps_vgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
