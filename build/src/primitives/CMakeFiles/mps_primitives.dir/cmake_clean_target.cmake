file(REMOVE_RECURSE
  "libmps_primitives.a"
)
