file(REMOVE_RECURSE
  "CMakeFiles/mps_workloads.dir/generators.cpp.o"
  "CMakeFiles/mps_workloads.dir/generators.cpp.o.d"
  "CMakeFiles/mps_workloads.dir/suite.cpp.o"
  "CMakeFiles/mps_workloads.dir/suite.cpp.o.d"
  "libmps_workloads.a"
  "libmps_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
