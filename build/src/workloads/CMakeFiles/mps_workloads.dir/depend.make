# Empty dependencies file for mps_workloads.
# This may be replaced when dependencies are built.
