file(REMOVE_RECURSE
  "libmps_workloads.a"
)
