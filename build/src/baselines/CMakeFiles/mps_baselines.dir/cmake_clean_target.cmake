file(REMOVE_RECURSE
  "libmps_baselines.a"
)
