# Empty compiler generated dependencies file for mps_baselines.
# This may be replaced when dependencies are built.
