file(REMOVE_RECURSE
  "CMakeFiles/mps_baselines.dir/cusplike.cpp.o"
  "CMakeFiles/mps_baselines.dir/cusplike.cpp.o.d"
  "CMakeFiles/mps_baselines.dir/formats.cpp.o"
  "CMakeFiles/mps_baselines.dir/formats.cpp.o.d"
  "CMakeFiles/mps_baselines.dir/rowwise.cpp.o"
  "CMakeFiles/mps_baselines.dir/rowwise.cpp.o.d"
  "CMakeFiles/mps_baselines.dir/seq.cpp.o"
  "CMakeFiles/mps_baselines.dir/seq.cpp.o.d"
  "libmps_baselines.a"
  "libmps_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
