
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cusplike.cpp" "src/baselines/CMakeFiles/mps_baselines.dir/cusplike.cpp.o" "gcc" "src/baselines/CMakeFiles/mps_baselines.dir/cusplike.cpp.o.d"
  "/root/repo/src/baselines/formats.cpp" "src/baselines/CMakeFiles/mps_baselines.dir/formats.cpp.o" "gcc" "src/baselines/CMakeFiles/mps_baselines.dir/formats.cpp.o.d"
  "/root/repo/src/baselines/rowwise.cpp" "src/baselines/CMakeFiles/mps_baselines.dir/rowwise.cpp.o" "gcc" "src/baselines/CMakeFiles/mps_baselines.dir/rowwise.cpp.o.d"
  "/root/repo/src/baselines/seq.cpp" "src/baselines/CMakeFiles/mps_baselines.dir/seq.cpp.o" "gcc" "src/baselines/CMakeFiles/mps_baselines.dir/seq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/mps_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/mps_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/mps_primitives.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
