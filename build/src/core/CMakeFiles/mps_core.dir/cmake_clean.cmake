file(REMOVE_RECURSE
  "CMakeFiles/mps_core.dir/spadd.cpp.o"
  "CMakeFiles/mps_core.dir/spadd.cpp.o.d"
  "CMakeFiles/mps_core.dir/spgemm.cpp.o"
  "CMakeFiles/mps_core.dir/spgemm.cpp.o.d"
  "CMakeFiles/mps_core.dir/spgemm_adaptive.cpp.o"
  "CMakeFiles/mps_core.dir/spgemm_adaptive.cpp.o.d"
  "CMakeFiles/mps_core.dir/spgemm_batched.cpp.o"
  "CMakeFiles/mps_core.dir/spgemm_batched.cpp.o.d"
  "CMakeFiles/mps_core.dir/spmm.cpp.o"
  "CMakeFiles/mps_core.dir/spmm.cpp.o.d"
  "CMakeFiles/mps_core.dir/spmv.cpp.o"
  "CMakeFiles/mps_core.dir/spmv.cpp.o.d"
  "libmps_core.a"
  "libmps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
