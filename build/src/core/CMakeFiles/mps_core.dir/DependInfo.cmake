
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/spadd.cpp" "src/core/CMakeFiles/mps_core.dir/spadd.cpp.o" "gcc" "src/core/CMakeFiles/mps_core.dir/spadd.cpp.o.d"
  "/root/repo/src/core/spgemm.cpp" "src/core/CMakeFiles/mps_core.dir/spgemm.cpp.o" "gcc" "src/core/CMakeFiles/mps_core.dir/spgemm.cpp.o.d"
  "/root/repo/src/core/spgemm_adaptive.cpp" "src/core/CMakeFiles/mps_core.dir/spgemm_adaptive.cpp.o" "gcc" "src/core/CMakeFiles/mps_core.dir/spgemm_adaptive.cpp.o.d"
  "/root/repo/src/core/spgemm_batched.cpp" "src/core/CMakeFiles/mps_core.dir/spgemm_batched.cpp.o" "gcc" "src/core/CMakeFiles/mps_core.dir/spgemm_batched.cpp.o.d"
  "/root/repo/src/core/spmm.cpp" "src/core/CMakeFiles/mps_core.dir/spmm.cpp.o" "gcc" "src/core/CMakeFiles/mps_core.dir/spmm.cpp.o.d"
  "/root/repo/src/core/spmv.cpp" "src/core/CMakeFiles/mps_core.dir/spmv.cpp.o" "gcc" "src/core/CMakeFiles/mps_core.dir/spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/mps_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/mps_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/mps_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mps_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
