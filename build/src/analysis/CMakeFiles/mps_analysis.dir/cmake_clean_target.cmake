file(REMOVE_RECURSE
  "libmps_analysis.a"
)
