file(REMOVE_RECURSE
  "CMakeFiles/mps_analysis.dir/experiment.cpp.o"
  "CMakeFiles/mps_analysis.dir/experiment.cpp.o.d"
  "libmps_analysis.a"
  "libmps_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
