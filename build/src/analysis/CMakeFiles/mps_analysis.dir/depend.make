# Empty dependencies file for mps_analysis.
# This may be replaced when dependencies are built.
