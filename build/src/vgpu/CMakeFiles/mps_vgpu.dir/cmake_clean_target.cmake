file(REMOVE_RECURSE
  "libmps_vgpu.a"
)
