file(REMOVE_RECURSE
  "CMakeFiles/mps_vgpu.dir/cpu_model.cpp.o"
  "CMakeFiles/mps_vgpu.dir/cpu_model.cpp.o.d"
  "CMakeFiles/mps_vgpu.dir/device.cpp.o"
  "CMakeFiles/mps_vgpu.dir/device.cpp.o.d"
  "CMakeFiles/mps_vgpu.dir/memory_model.cpp.o"
  "CMakeFiles/mps_vgpu.dir/memory_model.cpp.o.d"
  "CMakeFiles/mps_vgpu.dir/thread_pool.cpp.o"
  "CMakeFiles/mps_vgpu.dir/thread_pool.cpp.o.d"
  "CMakeFiles/mps_vgpu.dir/timing.cpp.o"
  "CMakeFiles/mps_vgpu.dir/timing.cpp.o.d"
  "CMakeFiles/mps_vgpu.dir/trace.cpp.o"
  "CMakeFiles/mps_vgpu.dir/trace.cpp.o.d"
  "libmps_vgpu.a"
  "libmps_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
