# Empty compiler generated dependencies file for mps_vgpu.
# This may be replaced when dependencies are built.
