
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/cpu_model.cpp" "src/vgpu/CMakeFiles/mps_vgpu.dir/cpu_model.cpp.o" "gcc" "src/vgpu/CMakeFiles/mps_vgpu.dir/cpu_model.cpp.o.d"
  "/root/repo/src/vgpu/device.cpp" "src/vgpu/CMakeFiles/mps_vgpu.dir/device.cpp.o" "gcc" "src/vgpu/CMakeFiles/mps_vgpu.dir/device.cpp.o.d"
  "/root/repo/src/vgpu/memory_model.cpp" "src/vgpu/CMakeFiles/mps_vgpu.dir/memory_model.cpp.o" "gcc" "src/vgpu/CMakeFiles/mps_vgpu.dir/memory_model.cpp.o.d"
  "/root/repo/src/vgpu/thread_pool.cpp" "src/vgpu/CMakeFiles/mps_vgpu.dir/thread_pool.cpp.o" "gcc" "src/vgpu/CMakeFiles/mps_vgpu.dir/thread_pool.cpp.o.d"
  "/root/repo/src/vgpu/timing.cpp" "src/vgpu/CMakeFiles/mps_vgpu.dir/timing.cpp.o" "gcc" "src/vgpu/CMakeFiles/mps_vgpu.dir/timing.cpp.o.d"
  "/root/repo/src/vgpu/trace.cpp" "src/vgpu/CMakeFiles/mps_vgpu.dir/trace.cpp.o" "gcc" "src/vgpu/CMakeFiles/mps_vgpu.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
