#include "durability/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "durability/crash.hpp"
#include "resilience/integrity.hpp"
#include "sparse/binary.hpp"
#include "util/error.hpp"

namespace mps::durability {

namespace {

constexpr char kSnapMagicV1[8] = {'M', 'P', 'S', 'S', 'N', 'A', 'P', '1'};
constexpr char kSnapMagic[8] = {'M', 'P', 'S', 'S', 'N', 'A', 'P', '2'};

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T get(const std::string& data, std::size_t* pos, const std::string& path) {
  if (data.size() - *pos < sizeof(T)) {
    throw RecoveryError("snapshot: '" + path + "' truncated at byte " +
                        std::to_string(*pos));
  }
  T v;
  std::memcpy(&v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}

void write_all(int fd, const char* data, std::size_t len, const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("snapshot: write to '" + path + "' failed: " +
                    std::strerror(errno));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

void write_snapshot(const std::string& dir, const SnapshotData& data) {
  std::string body;
  body.append(kSnapMagic, sizeof(kSnapMagic));
  put<std::uint64_t>(body, data.last_seq);
  put<std::uint32_t>(body, static_cast<std::uint32_t>(data.matrices.size()));
  for (const MatrixRecord& m : data.matrices) {
    put<std::uint64_t>(body, m.handle);
    put<std::uint64_t>(body, m.version);
    sparse::append_csr_binary(body, *m.matrix);
  }
  put<std::uint32_t>(body, static_cast<std::uint32_t>(data.warm.size()));
  for (const WarmEntry& w : data.warm) {
    put<std::uint64_t>(body, w.handle);
    body.push_back(w.tuned ? 1 : 0);
  }
  put<std::uint32_t>(body, data.fleet_devices);
  put<std::uint32_t>(body, static_cast<std::uint32_t>(data.shard_layouts.size()));
  for (const ShardLayoutRecord& l : data.shard_layouts) {
    put<std::uint64_t>(body, l.handle);
    body.push_back(l.replica ? 1 : 0);
    put<std::uint32_t>(body, static_cast<std::uint32_t>(l.blocks.size()));
    for (const ShardLayoutRecord::Block& b : l.blocks) {
      put<std::int32_t>(body, b.row_begin);
      put<std::int32_t>(body, b.row_end);
      put<std::int32_t>(body, b.device);
    }
  }
  put<std::uint64_t>(body, resilience::checksum_bytes(body.data(), body.size()));

  const std::string final_path = dir + "/" + kSnapshotFileName;
  const std::string tmp_path = final_path + kSnapshotTmpSuffix;
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw IoError("snapshot: cannot open '" + tmp_path + "': " +
                  std::strerror(errno));
  }
  try {
    // Split write so kSnapshotMid leaves a genuinely partial temp file.
    const std::size_t half = body.size() / 2;
    write_all(fd, body.data(), half, tmp_path);
    maybe_crash(CrashPoint::kSnapshotMid);
    write_all(fd, body.data() + half, body.size() - half, tmp_path);
    ::fsync(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw IoError("snapshot: rename '" + tmp_path + "' -> '" + final_path +
                  "' failed: " + std::strerror(errno));
  }
  maybe_crash(CrashPoint::kSnapshotPost);
}

std::optional<SnapshotData> read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  if (data.size() < sizeof(kSnapMagic) + sizeof(std::uint64_t)) {
    throw RecoveryError("snapshot: '" + path +
                        "' is missing the snapshot magic (corrupt or foreign file)");
  }
  const bool v1 = std::memcmp(data.data(), kSnapMagicV1, sizeof(kSnapMagicV1)) == 0;
  if (!v1 && std::memcmp(data.data(), kSnapMagic, sizeof(kSnapMagic)) != 0) {
    throw RecoveryError("snapshot: '" + path +
                        "' is missing the snapshot magic (corrupt or foreign file)");
  }
  const std::size_t body_bytes = data.size() - sizeof(std::uint64_t);
  std::uint64_t recorded;
  std::memcpy(&recorded, data.data() + body_bytes, sizeof(recorded));
  if (resilience::checksum_bytes(data.data(), body_bytes) != recorded) {
    throw RecoveryError("snapshot: checksum mismatch in '" + path + "'");
  }

  SnapshotData snap;
  std::size_t pos = sizeof(kSnapMagic);
  snap.last_seq = get<std::uint64_t>(data, &pos, path);
  const auto n_matrices = get<std::uint32_t>(data, &pos, path);
  snap.matrices.reserve(n_matrices);
  for (std::uint32_t i = 0; i < n_matrices; ++i) {
    MatrixRecord m;
    m.handle = get<std::uint64_t>(data, &pos, path);
    m.version = get<std::uint64_t>(data, &pos, path);
    std::size_t consumed = 0;
    try {
      m.matrix = std::make_shared<const sparse::CsrD>(
          sparse::read_csr_binary(data.data() + pos, body_bytes - pos, &consumed));
    } catch (const ParseError& e) {
      throw RecoveryError("snapshot: matrix " + std::to_string(i) + " in '" +
                          path + "' is corrupt: " + e.what());
    }
    pos += consumed;
    snap.matrices.push_back(std::move(m));
  }
  const auto n_warm = get<std::uint32_t>(data, &pos, path);
  snap.warm.reserve(n_warm);
  for (std::uint32_t i = 0; i < n_warm; ++i) {
    WarmEntry w;
    w.handle = get<std::uint64_t>(data, &pos, path);
    w.tuned = get<std::uint8_t>(data, &pos, path) != 0;
    snap.warm.push_back(w);
  }
  if (!v1) {
    snap.fleet_devices = get<std::uint32_t>(data, &pos, path);
    const auto n_layouts = get<std::uint32_t>(data, &pos, path);
    snap.shard_layouts.reserve(n_layouts);
    for (std::uint32_t i = 0; i < n_layouts; ++i) {
      ShardLayoutRecord l;
      l.handle = get<std::uint64_t>(data, &pos, path);
      l.replica = get<std::uint8_t>(data, &pos, path) != 0;
      const auto n_blocks = get<std::uint32_t>(data, &pos, path);
      l.blocks.reserve(n_blocks);
      for (std::uint32_t k = 0; k < n_blocks; ++k) {
        ShardLayoutRecord::Block b;
        b.row_begin = get<std::int32_t>(data, &pos, path);
        b.row_end = get<std::int32_t>(data, &pos, path);
        b.device = get<std::int32_t>(data, &pos, path);
        l.blocks.push_back(b);
      }
      snap.shard_layouts.push_back(std::move(l));
    }
  }
  if (pos != body_bytes) {
    throw RecoveryError("snapshot: trailing bytes inside checksummed body of '" +
                        path + "'");
  }
  return snap;
}

}  // namespace mps::durability
