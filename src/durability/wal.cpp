#include "durability/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "durability/crash.hpp"
#include "resilience/integrity.hpp"
#include "sparse/binary.hpp"
#include "util/error.hpp"

namespace mps::durability {

namespace {

constexpr std::uint8_t kRecordRegister = 1;
// Frame header: u32 payload_len + u64 checksum.
constexpr std::size_t kFrameHeaderBytes = sizeof(std::uint32_t) + sizeof(std::uint64_t);
// type + seq + handle + version + minimal csr (header + one row offset).
constexpr std::size_t kMinPayloadBytes = 1 + 3 * sizeof(std::uint64_t) + 16 + 4;
// Framing sanity bound; a length field past this is corruption, not data.
constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 31;

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T get_raw(const std::string& data, std::size_t pos) {
  T v;
  std::memcpy(&v, data.data() + pos, sizeof(T));
  return v;
}

void write_all(int fd, const char* data, std::size_t len, const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("wal: write to '" + path + "' failed: " + std::strerror(errno));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Decodes one payload into a record; the frame checksum already passed,
/// so any failure here is real corruption, not a torn write.
WalRecord decode_payload(const char* data, std::size_t len, std::size_t offset) {
  const auto corrupt = [offset](const std::string& why) -> RecoveryError {
    return RecoveryError("wal: corrupt record at byte " + std::to_string(offset) +
                         ": " + why);
  };
  std::size_t pos = 0;
  std::uint8_t type;
  std::memcpy(&type, data, 1);
  pos += 1;
  if (type != kRecordRegister) {
    throw corrupt("unknown record type " + std::to_string(type));
  }
  WalRecord rec;
  std::memcpy(&rec.seq, data + pos, 8);
  pos += 8;
  std::memcpy(&rec.handle, data + pos, 8);
  pos += 8;
  std::memcpy(&rec.version, data + pos, 8);
  pos += 8;
  std::size_t consumed = 0;
  try {
    rec.matrix = sparse::read_csr_binary(data + pos, len - pos, &consumed);
  } catch (const ParseError& e) {
    throw corrupt(e.what());
  }
  if (pos + consumed != len) {
    throw corrupt("trailing bytes inside checksummed payload");
  }
  return rec;
}

}  // namespace

WalReadResult read_wal(const std::string& path) {
  WalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // no log yet — empty
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  if (data.size() < kWalMagicBytes) {
    // Crash during the very first write (the magic itself): nothing was
    // ever acknowledged from this file, so an empty-or-prefix file is a
    // torn tail, while mismatching bytes are corruption.
    if (std::memcmp(data.data(), kWalMagic, data.size()) != 0) {
      throw RecoveryError("wal: '" + path + "' does not start with the WAL magic");
    }
    result.torn_tail_dropped = !data.empty();
    return result;
  }
  if (std::memcmp(data.data(), kWalMagic, kWalMagicBytes) != 0) {
    throw RecoveryError("wal: '" + path + "' does not start with the WAL magic");
  }

  std::size_t pos = kWalMagicBytes;
  result.valid_bytes = pos;
  std::uint64_t prev_seq = 0;
  while (pos < data.size()) {
    // Frame header or payload running past EOF can only be the final
    // (torn) record — by definition nothing follows it.
    if (data.size() - pos < kFrameHeaderBytes) {
      result.torn_tail_dropped = true;
      break;
    }
    const auto len = get_raw<std::uint32_t>(data, pos);
    const auto checksum = get_raw<std::uint64_t>(data, pos + sizeof(std::uint32_t));
    if (len < kMinPayloadBytes || len > kMaxPayloadBytes ||
        data.size() - pos - kFrameHeaderBytes < len) {
      // An insane or past-EOF length field: at the tail this is the torn
      // final record (possibly with its length bytes themselves torn).
      // We cannot distinguish that from a corrupted mid-log length that
      // swallowed real records — but a corrupted length implies the
      // *final* acknowledged state is unreachable either way, so only
      // tail position is tolerable.  Anything whose frame would have fit
      // is handled below with a proper checksum verdict.
      result.torn_tail_dropped = true;
      break;
    }
    const char* payload = data.data() + pos + kFrameHeaderBytes;
    const std::size_t record_end = pos + kFrameHeaderBytes + len;
    if (resilience::checksum_bytes(payload, len) != checksum) {
      if (record_end == data.size()) {
        result.torn_tail_dropped = true;  // torn final record
        break;
      }
      throw RecoveryError("wal: checksum mismatch at byte " + std::to_string(pos) +
                          " of '" + path + "' (not the final record)");
    }
    WalRecord rec = decode_payload(payload, len, pos);
    if (rec.seq <= prev_seq) {
      throw RecoveryError("wal: non-monotone sequence " + std::to_string(rec.seq) +
                          " after " + std::to_string(prev_seq) + " in '" + path + "'");
    }
    prev_seq = rec.seq;
    result.records.push_back(std::move(rec));
    pos = record_end;
    result.valid_bytes = pos;
  }
  return result;
}

WalWriter::WalWriter(std::string path, bool fsync, std::size_t valid_bytes,
                     std::uint64_t last_seq)
    : path_(std::move(path)), fsync_(fsync), last_seq_(last_seq) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw IoError("wal: cannot open '" + path_ + "': " + std::strerror(errno));
  }
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end > 0 && valid_bytes < static_cast<std::size_t>(end)) {
    // Cut the torn tail recovery tolerated; O_APPEND writes then land at
    // the new, clean end.
    if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw IoError("wal: cannot truncate '" + path_ + "': " + std::strerror(err));
    }
  }
  if (end == 0 || valid_bytes == 0) {
    write_all(fd_, kWalMagic, kWalMagicBytes, path_);
    bytes_written_ += static_cast<long long>(kWalMagicBytes);
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t WalWriter::append_register(std::uint64_t handle,
                                         std::uint64_t version,
                                         const sparse::CsrD& matrix) {
  const std::uint64_t seq = last_seq_ + 1;
  std::string payload;
  payload.push_back(static_cast<char>(kRecordRegister));
  put<std::uint64_t>(payload, seq);
  put<std::uint64_t>(payload, handle);
  put<std::uint64_t>(payload, version);
  sparse::append_csr_binary(payload, matrix);

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  put<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
  put<std::uint64_t>(frame, resilience::checksum_bytes(payload.data(), payload.size()));
  frame += payload;

  // Two writes, split mid-payload: the kWalMid crash point must leave a
  // genuinely torn record on disk (header + partial payload), which is
  // exactly what a real crash inside one large write can leave.
  const std::size_t half = kFrameHeaderBytes + payload.size() / 2;
  write_all(fd_, frame.data(), half, path_);
  maybe_crash(CrashPoint::kWalMid);
  write_all(fd_, frame.data() + half, frame.size() - half, path_);
  if (fsync_) ::fsync(fd_);
  maybe_crash(CrashPoint::kWalPost);

  last_seq_ = seq;
  ++appends_;
  bytes_written_ += static_cast<long long>(frame.size());
  return seq;
}

void WalWriter::truncate_records() {
  if (::ftruncate(fd_, static_cast<off_t>(kWalMagicBytes)) != 0) {
    throw IoError("wal: cannot truncate '" + path_ + "': " + std::strerror(errno));
  }
}

}  // namespace mps::durability
