#include "durability/durable_store.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"

namespace mps::durability {

namespace {

/// Registry handles resolved once (the serve-engine metrics idiom).
struct DurabilityMetrics {
  telemetry::Counter& wal_appends =
      telemetry::metrics().counter("durability.wal.appends");
  telemetry::Counter& wal_bytes =
      telemetry::metrics().counter("durability.wal.bytes");
  telemetry::Counter& snapshots =
      telemetry::metrics().counter("durability.snapshots");
  telemetry::Counter& recovered_matrices =
      telemetry::metrics().counter("durability.recovered.matrices");
  telemetry::Counter& recovered_wal_records =
      telemetry::metrics().counter("durability.recovered.wal_records");
  telemetry::Counter& torn_tails =
      telemetry::metrics().counter("durability.recovered.torn_tails");
};

DurabilityMetrics& durability_metrics() {
  static DurabilityMetrics m;
  return m;
}

}  // namespace

RecoveredState recover_dir(const std::string& dir) {
  RecoveredState state;
  state.info.attempted = true;

  std::vector<WalRecord> tail;
  {
    auto snap = read_snapshot(dir + "/" + kSnapshotFileName);
    WalReadResult wal = read_wal(dir + "/" + kWalFileName);
    state.wal_valid_bytes = wal.valid_bytes;
    state.info.torn_tail_dropped = wal.torn_tail_dropped;

    std::uint64_t covered = 0;
    if (snap) {
      state.info.snapshot_loaded = true;
      state.info.snapshot_matrices = static_cast<long long>(snap->matrices.size());
      state.matrices = std::move(snap->matrices);
      state.warm = std::move(snap->warm);
      state.shard_layouts = std::move(snap->shard_layouts);
      state.fleet_devices = snap->fleet_devices;
      covered = snap->last_seq;
      state.info.last_seq = snap->last_seq;
    }
    for (WalRecord& rec : wal.records) {
      state.info.last_seq = std::max(state.info.last_seq, rec.seq);
      if (rec.seq <= covered) {
        // The snapshot already reflects this record — the crash landed
        // between the snapshot rename and the WAL truncation.
        ++state.info.stale_skipped;
        continue;
      }
      ++state.info.wal_records_replayed;
      tail.push_back(std::move(rec));
    }
  }

  // Fold the tail onto the snapshot: latest version per handle wins
  // (replay order == seq order == acknowledgement order).
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(state.matrices.size() + tail.size());
  for (std::size_t i = 0; i < state.matrices.size(); ++i) {
    index[state.matrices[i].handle] = i;
  }
  for (WalRecord& rec : tail) {
    MatrixRecord m;
    m.handle = rec.handle;
    m.version = rec.version;
    m.matrix = std::make_shared<const sparse::CsrD>(std::move(rec.matrix));
    if (auto it = index.find(rec.handle); it != index.end()) {
      state.matrices[it->second] = std::move(m);
    } else {
      index[rec.handle] = state.matrices.size();
      state.matrices.push_back(std::move(m));
    }
  }

  durability_metrics().recovered_matrices.add(
      static_cast<long long>(state.matrices.size()));
  durability_metrics().recovered_wal_records.add(state.info.wal_records_replayed);
  if (state.info.torn_tail_dropped) durability_metrics().torn_tails.add();
  return state;
}

DurableStore::DurableStore(DurableConfig cfg, const RecoveredState& recovered,
                           SnapshotSource source)
    : cfg_(std::move(cfg)),
      source_(std::move(source)),
      recovery_(recovered.info) {
  wal_ = std::make_unique<WalWriter>(cfg_.dir + "/" + kWalFileName, cfg_.fsync,
                                     recovered.wal_valid_bytes,
                                     recovered.info.last_seq);
  last_seq_.store(recovered.info.last_seq, std::memory_order_release);
  if (cfg_.snapshot_every > 0) {
    snapshotter_ = std::thread([this] { snapshotter_loop(); });
  }
}

DurableStore::~DurableStore() {
  if (snapshotter_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    snapshotter_.join();
  }
}

std::uint64_t DurableStore::append_register(std::uint64_t handle,
                                            std::uint64_t version,
                                            const sparse::CsrD& matrix) {
  std::uint64_t seq = 0;
  long long appended_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(append_mutex_);
    const long long before = wal_->bytes_written();
    seq = wal_->append_register(handle, version, matrix);
    appended_bytes = wal_->bytes_written() - before;
    last_seq_.store(seq, std::memory_order_release);
  }
  durability_metrics().wal_appends.add();
  durability_metrics().wal_bytes.add(appended_bytes);
  bool wake = false;
  if (cfg_.snapshot_every > 0) {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake = ++appends_since_snapshot_ >= cfg_.snapshot_every;
  }
  if (wake) wake_cv_.notify_one();
  return seq;
}

void DurableStore::snapshotter_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || appends_since_snapshot_ >= cfg_.snapshot_every;
      });
      if (stop_) return;
    }
    do_snapshot();
  }
}

void DurableStore::do_snapshot() {
  std::lock_guard<std::mutex> slock(snapshot_mutex_);
  // The capture runs under the owner's registry lock and reads last_seq
  // there, so `data` is consistent: it reflects exactly the appends up
  // to data.last_seq and none after.
  SnapshotData data = source_();
  write_snapshot(cfg_.dir, data);
  {
    std::lock_guard<std::mutex> alock(append_mutex_);
    if (last_seq_.load(std::memory_order_acquire) == data.last_seq) {
      wal_->truncate_records();
    }
    // else: appends raced the capture — keep the WAL; replay skips the
    // records the snapshot covers (seq <= last_seq), so nothing is lost
    // and nothing applies twice.
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    appends_since_snapshot_ = 0;
  }
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  durability_metrics().snapshots.add();
}

void DurableStore::snapshot_now() { do_snapshot(); }

DurableStore::Stats DurableStore::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(append_mutex_);
    s.wal_appends = wal_->appends();
    s.wal_bytes = wal_->bytes_written();
  }
  s.snapshots = snapshots_.load(std::memory_order_relaxed);
  s.recovery = recovery_;
  return s;
}

}  // namespace mps::durability
