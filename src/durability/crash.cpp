#include "durability/crash.hpp"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "telemetry/flight.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace mps::durability {

namespace detail {

std::atomic<bool> crash_armed{false};

namespace {
constexpr int kNumPoints = static_cast<int>(CrashPoint::kCount_);
std::array<std::atomic<long long>, kNumPoints> remaining{};  // 0 = disarmed

const char* point_name(CrashPoint p) {
  switch (p) {
    case CrashPoint::kWalMid: return "wal-mid";
    case CrashPoint::kWalPost: return "wal-post";
    case CrashPoint::kSnapshotMid: return "snapshot-mid";
    case CrashPoint::kSnapshotPost: return "snapshot-post";
    case CrashPoint::kPostAck: return "post-ack";
    default: return "?";
  }
}
}  // namespace

void crash_hit(CrashPoint point) {
  auto& counter = remaining[static_cast<int>(point)];
  long long cur = counter.load(std::memory_order_relaxed);
  while (cur > 0) {
    if (counter.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
      if (cur == 1) {
        // stderr, not stdout: the harness greps stdout for recovery lines
        // and must not confuse the death notice with engine output.
        std::fprintf(stderr, "durable crash injected at %s\n", point_name(point));
        std::fflush(stderr);
        // Last-gasp debug bundle (no-op unless MPS_FLIGHT_DIR is set).
        // crash_hit runs in ordinary thread context — not a signal
        // handler — so regular file IO is safe before _exit.
        telemetry::flight().dump_bundle(std::string("crash-") +
                                        point_name(point));
        ::_exit(kCrashExitCode);
      }
      return;
    }
  }
}

}  // namespace detail

void arm_crash(CrashPoint point, long long n) {
  if (n <= 0) {
    for (auto& c : detail::remaining) c.store(0, std::memory_order_relaxed);
    detail::crash_armed.store(false, std::memory_order_relaxed);
    return;
  }
  detail::remaining[static_cast<int>(point)].store(n, std::memory_order_relaxed);
  detail::crash_armed.store(true, std::memory_order_relaxed);
}

void arm_crash_from_env() {
  const std::string spec = util::env_string("MPS_DURABLE_CRASH", "");
  if (spec.empty()) return;
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw InvalidInputError("MPS_DURABLE_CRASH: expected \"<point>:<n>\", got \"" +
                            spec + "\"");
  }
  const std::string name = spec.substr(0, colon);
  CrashPoint point;
  if (name == "wal-mid") {
    point = CrashPoint::kWalMid;
  } else if (name == "wal-post") {
    point = CrashPoint::kWalPost;
  } else if (name == "snapshot-mid") {
    point = CrashPoint::kSnapshotMid;
  } else if (name == "snapshot-post") {
    point = CrashPoint::kSnapshotPost;
  } else if (name == "post-ack") {
    point = CrashPoint::kPostAck;
  } else {
    throw InvalidInputError("MPS_DURABLE_CRASH: unknown crash point \"" + name +
                            "\" (expected wal-mid, wal-post, snapshot-mid, "
                            "snapshot-post, or post-ack)");
  }
  const std::string count = spec.substr(colon + 1);
  long long n = 0;
  std::size_t used = 0;
  try {
    n = std::stoll(count, &used);
  } catch (const std::exception&) {
    throw InvalidInputError("MPS_DURABLE_CRASH: malformed count \"" + count + "\"");
  }
  if (used != count.size() || n < 1) {
    throw InvalidInputError("MPS_DURABLE_CRASH: count must be a positive integer, got \"" +
                            count + "\"");
  }
  arm_crash(point, n);
}

}  // namespace mps::durability
