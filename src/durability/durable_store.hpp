#pragma once
// DurableStore — the WAL + snapshot pair underneath serve::Engine
// (docs/robustness.md, "Process crash & recovery").
//
// Write path: the engine appends every matrix (re-)registration to the
// WAL *before* inserting it into its registry — the registration is
// acknowledged only once the record is on disk.  A background
// snapshotter wakes every `snapshot_every` appends, asks the engine for
// a consistent capture of its registry + warm plan-cache metadata,
// writes it atomically (snapshot.hpp), and truncates the WAL when no
// append raced the capture.
//
// Read path: `recover_dir` loads the snapshot (if any) and replays the
// WAL tail on top, skipping records the snapshot already covers and
// tolerating a torn final record.  The engine applies the result to its
// registry and re-opens the store to continue appending where the
// pre-crash process left off.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "durability/snapshot.hpp"
#include "durability/wal.hpp"

namespace mps::durability {

struct DurableConfig {
  std::string dir;
  /// WAL appends between background snapshots; 0 disables the
  /// snapshotter thread (snapshots then happen only via snapshot_now,
  /// e.g. the engine's shutdown path).
  long long snapshot_every = 64;
  /// fsync the WAL after every append.  Off by default: the kill harness
  /// models process death (_exit / SIGKILL), which the page cache
  /// survives; turn on when the threat model includes kernel or power
  /// failure.
  bool fsync = false;
};

/// What recovery found, surfaced through EngineStats and the serving
/// CLI's "durable recovery:" line.
struct RecoveryInfo {
  bool attempted = false;          ///< durability was enabled at startup
  bool snapshot_loaded = false;
  long long snapshot_matrices = 0;
  long long wal_records_replayed = 0;
  long long stale_skipped = 0;     ///< WAL records the snapshot already covered
  bool torn_tail_dropped = false;  ///< a torn final WAL record was discarded
  std::uint64_t last_seq = 0;      ///< append sequence resumes after this
};

struct RecoveredState {
  /// Replay result, one entry per handle (latest version wins).
  std::vector<MatrixRecord> matrices;
  std::vector<WarmEntry> warm;
  /// Shard placements the snapshot recorded (snapshot.hpp; the engine
  /// re-shards deterministically and cross-checks against these when
  /// the recovered fleet shape matches fleet_devices).
  std::vector<ShardLayoutRecord> shard_layouts;
  std::uint32_t fleet_devices = 0;
  RecoveryInfo info;
  std::size_t wal_valid_bytes = 0;
};

/// Loads snapshot + WAL tail from `dir`.  Raises RecoveryError for any
/// damage other than a torn final WAL record.  A directory with neither
/// file recovers to an empty state (first boot).
RecoveredState recover_dir(const std::string& dir);

class DurableStore {
 public:
  /// Asks the owner for a consistent capture of its durable state; the
  /// callback must fill SnapshotData::last_seq with this store's
  /// last_seq() read under the same lock that orders its appends.
  using SnapshotSource = std::function<SnapshotData()>;

  /// Opens the WAL for appending (continuing `recovered`'s sequence and
  /// cutting its torn tail) and starts the snapshotter when configured.
  DurableStore(DurableConfig cfg, const RecoveredState& recovered,
               SnapshotSource source);
  /// Stops the snapshotter.  Does NOT write a final snapshot — the owner
  /// decides (the engine snapshots on graceful shutdown only).
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Durably appends one registration; returns its sequence number.
  /// Blocks until the bytes are written (+fsync when configured) — the
  /// caller may acknowledge afterwards.  Thread-safe.
  std::uint64_t append_register(std::uint64_t handle, std::uint64_t version,
                                const sparse::CsrD& matrix);

  /// Synchronous snapshot + conditional WAL truncation.  Thread-safe;
  /// serializes with the background snapshotter.
  void snapshot_now();

  std::uint64_t last_seq() const {
    return last_seq_.load(std::memory_order_acquire);
  }

  struct Stats {
    long long wal_appends = 0;
    long long wal_bytes = 0;
    long long snapshots = 0;
    RecoveryInfo recovery;
  };
  Stats stats() const;

 private:
  void snapshotter_loop();
  void do_snapshot();

  DurableConfig cfg_;
  SnapshotSource source_;
  RecoveryInfo recovery_;

  /// Orders appends and the truncate-vs-append race check.
  mutable std::mutex append_mutex_;
  std::unique_ptr<WalWriter> wal_;  // guarded by append_mutex_
  std::atomic<std::uint64_t> last_seq_{0};
  std::atomic<long long> snapshots_{0};

  /// Serializes snapshot_now with the background snapshotter.
  std::mutex snapshot_mutex_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  long long appends_since_snapshot_ = 0;  // guarded by wake_mutex_
  bool stop_ = false;                     // guarded by wake_mutex_
  std::thread snapshotter_;
};

}  // namespace mps::durability
