#pragma once
// Write-ahead log for matrix registrations (docs/robustness.md).
//
// File layout: an 8-byte magic ("MPSWAL1\n") followed by records.  Each
// record is framed
//
//   u32 payload_len | u64 fnv1a(payload) | payload
//
// with payload
//
//   u8 type(1 = register) | u64 seq | u64 handle | u64 version |
//   csr binary (sparse/binary.hpp)
//
// Sequence numbers are strictly increasing across the log's whole life
// (they survive truncation), which is what makes replay idempotent: a
// record whose seq is <= the snapshot's last_seq is stale and skipped.
//
// Torn-tail policy (the crash contract): a record that runs past EOF or
// whose checksum fails *at the very end of the file* is the torn write
// of the crash that killed us — it was never acknowledged, so it is
// dropped and recovery succeeds.  The same damage anywhere *before* the
// final record means the log itself is corrupt, and raises
// RecoveryError rather than silently serving a partial registry.

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace mps::durability {

inline constexpr char kWalMagic[8] = {'M', 'P', 'S', 'W', 'A', 'L', '1', '\n'};
inline constexpr std::size_t kWalMagicBytes = sizeof(kWalMagic);
inline constexpr const char* kWalFileName = "wal.bin";

struct WalRecord {
  std::uint64_t seq = 0;
  std::uint64_t handle = 0;
  std::uint64_t version = 0;
  sparse::CsrD matrix;
};

struct WalReadResult {
  std::vector<WalRecord> records;  ///< in log order (seq ascending)
  bool torn_tail_dropped = false;  ///< a torn final record was discarded
  /// Byte length of the cleanly framed prefix (magic + whole records).
  /// The writer reopens the log truncated to this, so a torn tail can
  /// never end up *behind* fresh appends as mid-log corruption.
  std::size_t valid_bytes = 0;
};

/// Reads and validates the log.  A missing file is an empty log.  Raises
/// RecoveryError for a bad magic or for corruption before the final
/// record; tolerates (drops) a torn final record per the policy above.
WalReadResult read_wal(const std::string& path);

/// Append-side handle.  NOT thread-safe — the DurableStore serializes
/// appends and truncation under its append mutex.
class WalWriter {
 public:
  /// Opens (creating if absent) `path`, truncates to `valid_bytes` when
  /// the file pre-exists (cutting any torn tail recovery tolerated), and
  /// continues sequence numbers from `last_seq`.  Raises IoError.
  WalWriter(std::string path, bool fsync, std::size_t valid_bytes,
            std::uint64_t last_seq);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one register record; returns its sequence number.  The
  /// record is fully written (and fsynced when configured) before this
  /// returns — the caller may acknowledge.  Crash points kWalMid /
  /// kWalPost fire inside.  Raises IoError on write failure.
  std::uint64_t append_register(std::uint64_t handle, std::uint64_t version,
                                const sparse::CsrD& matrix);

  /// Drops every record (keeps the magic).  Called after a snapshot that
  /// covers the log; sequence numbers keep counting.
  void truncate_records();

  std::uint64_t last_seq() const { return last_seq_; }
  long long appends() const { return appends_; }
  long long bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  int fd_ = -1;
  bool fsync_ = false;
  std::uint64_t last_seq_ = 0;
  long long appends_ = 0;
  long long bytes_written_ = 0;
};

}  // namespace mps::durability
