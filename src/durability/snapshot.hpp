#pragma once
// Atomic registry snapshots (docs/robustness.md).
//
// A snapshot serializes the whole registered-matrix set, the per-handle
// version counters, and the *metadata* of warm plan-cache entries (which
// handles held a plan, and whether it was tuned — plans themselves are
// deterministic rebuilds, so only the fact that they were warm is worth
// persisting).  Layout:
//
//   "MPSSNAP1" | u64 last_seq | u32 n_matrices |
//     { u64 handle | u64 version | csr binary } x n_matrices |
//   u32 n_warm | { u64 handle | u8 tuned } x n_warm |
//   u64 fnv1a(everything above)
//
// The file is written to `snapshot.bin.tmp` and atomically renamed over
// `snapshot.bin`: a reader sees either the old complete snapshot or the
// new complete snapshot, never a partial one.  A stray .tmp (crash
// mid-write) is ignored and overwritten by the next snapshot.  The WAL
// is truncated only after the rename, and only if no append raced the
// capture — replay is idempotent (seq <= last_seq is skipped), so a
// crash between rename and truncate is harmless.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace mps::durability {

inline constexpr const char* kSnapshotFileName = "snapshot.bin";
inline constexpr const char* kSnapshotTmpSuffix = ".tmp";

struct MatrixRecord {
  std::uint64_t handle = 0;
  std::uint64_t version = 0;
  std::shared_ptr<const sparse::CsrD> matrix;
};

/// A plan-cache entry that was warm at snapshot time.  MPS_DURABLE_WARM
/// recovery rebuilds these eagerly so the first post-restart request
/// pays no partition (or trial-protocol) cost.
struct WarmEntry {
  std::uint64_t handle = 0;
  bool tuned = false;
};

struct SnapshotData {
  std::vector<MatrixRecord> matrices;
  std::vector<WarmEntry> warm;
  /// WAL sequence number the capture covered: every record with
  /// seq <= last_seq is reflected in `matrices`.
  std::uint64_t last_seq = 0;
};

/// Writes `data` atomically into `dir` (tmp + rename).  Crash points
/// kSnapshotMid / kSnapshotPost fire inside.  Raises IoError.
void write_snapshot(const std::string& dir, const SnapshotData& data);

/// Loads `path`; nullopt when the file does not exist.  Any truncation,
/// checksum mismatch, or structural damage raises RecoveryError — unlike
/// the WAL there is no torn-tail tolerance, because the atomic rename
/// means a visible snapshot was always written completely.
std::optional<SnapshotData> read_snapshot(const std::string& path);

}  // namespace mps::durability
