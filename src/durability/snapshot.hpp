#pragma once
// Atomic registry snapshots (docs/robustness.md).
//
// A snapshot serializes the whole registered-matrix set, the per-handle
// version counters, and the *metadata* of warm plan-cache entries (which
// handles held a plan, and whether it was tuned — plans themselves are
// deterministic rebuilds, so only the fact that they were warm is worth
// persisting).  Layout:
//
//   "MPSSNAP2" | u64 last_seq | u32 n_matrices |
//     { u64 handle | u64 version | csr binary } x n_matrices |
//   u32 n_warm | { u64 handle | u8 tuned } x n_warm |
//   u32 fleet_devices | u32 n_layouts |
//     { u64 handle | u8 replica | u32 n_blocks |
//       { i32 row_begin | i32 row_end | i32 device } x n_blocks
//     } x n_layouts |
//   u64 fnv1a(everything above)
//
// Version-1 snapshots ("MPSSNAP1", no shard section) still load —
// recovery re-shards deterministically, so the layout records are a
// cross-check against placement drift, not required state.
//
// The file is written to `snapshot.bin.tmp` and atomically renamed over
// `snapshot.bin`: a reader sees either the old complete snapshot or the
// new complete snapshot, never a partial one.  A stray .tmp (crash
// mid-write) is ignored and overwritten by the next snapshot.  The WAL
// is truncated only after the rename, and only if no append raced the
// capture — replay is idempotent (seq <= last_seq is skipped), so a
// crash between rename and truncate is harmless.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace mps::durability {

inline constexpr const char* kSnapshotFileName = "snapshot.bin";
inline constexpr const char* kSnapshotTmpSuffix = ".tmp";

struct MatrixRecord {
  std::uint64_t handle = 0;
  std::uint64_t version = 0;
  std::shared_ptr<const sparse::CsrD> matrix;
};

/// A plan-cache entry that was warm at snapshot time.  MPS_DURABLE_WARM
/// recovery rebuilds these eagerly so the first post-restart request
/// pays no partition (or trial-protocol) cost.
struct WarmEntry {
  std::uint64_t handle = 0;
  bool tuned = false;
};

/// One placement's persisted shard layout: which row block of a sharded
/// handle lives on which fleet slot.  Recovery re-shards
/// deterministically from the matrix + fleet shape; when the recovered
/// fleet matches `SnapshotData::fleet_devices`, the rebuilt layout must
/// equal the recorded one (RecoveryError otherwise — placement drift
/// would silently re-route bitwise-pinned work).
struct ShardLayoutRecord {
  std::uint64_t handle = 0;
  bool replica = false;
  struct Block {
    std::int32_t row_begin = 0;
    std::int32_t row_end = 0;
    std::int32_t device = -1;
  };
  std::vector<Block> blocks;
};

struct SnapshotData {
  std::vector<MatrixRecord> matrices;
  std::vector<WarmEntry> warm;
  /// Shard placements at capture time (empty in legacy single-device
  /// mode or for a v1 snapshot).
  std::vector<ShardLayoutRecord> shard_layouts;
  /// Fleet size the layouts were placed on (0 = legacy mode or v1).
  std::uint32_t fleet_devices = 0;
  /// WAL sequence number the capture covered: every record with
  /// seq <= last_seq is reflected in `matrices`.
  std::uint64_t last_seq = 0;
};

/// Writes `data` atomically into `dir` (tmp + rename).  Crash points
/// kSnapshotMid / kSnapshotPost fire inside.  Raises IoError.
void write_snapshot(const std::string& dir, const SnapshotData& data);

/// Loads `path`; nullopt when the file does not exist.  Any truncation,
/// checksum mismatch, or structural damage raises RecoveryError — unlike
/// the WAL there is no torn-tail tolerance, because the atomic rename
/// means a visible snapshot was always written completely.
std::optional<SnapshotData> read_snapshot(const std::string& path);

}  // namespace mps::durability
