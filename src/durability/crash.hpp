#pragma once
// Deterministic crash-point injection for the kill-and-recover harness.
//
// The durability hot paths call `maybe_crash(point)` at the moments a real
// crash would be most damaging: halfway through a WAL append (header +
// partial payload already flushed), after a completed append, halfway
// through writing a snapshot temp file, after the snapshot rename, and
// after a registration has been acknowledged to the caller.  When armed —
// programmatically via `arm_crash` or through MPS_DURABLE_CRASH
// ("<point>:<n>", e.g. "wal-mid:3" → die on the 3rd wal-mid hit) — the
// matching hit terminates the process with `_exit(kCrashExitCode)` so no
// destructor, flush, or atexit handler can tidy up after us; recovery must
// cope with exactly what the kernel left on disk.
//
// Unarmed cost is one relaxed atomic load per call site.

#include <atomic>

namespace mps::durability {

/// Exit code used by injected crashes, distinguishable from real failures.
inline constexpr int kCrashExitCode = 43;

enum class CrashPoint {
  kWalMid,        ///< record header + partial payload written and flushed
  kWalPost,       ///< full record written, before the caller sees the ack
  kSnapshotMid,   ///< snapshot temp file partially written
  kSnapshotPost,  ///< snapshot renamed into place, WAL not yet truncated
  kPostAck,       ///< registration durable and acknowledged
  kCount_
};

/// Arm: process dies at the `n`-th (1-based) hit of `point`.  `n <= 0`
/// disarms every point.
void arm_crash(CrashPoint point, long long n);

/// Arm from MPS_DURABLE_CRASH ("<point>:<n>"); strict parse, unknown point
/// names or malformed counts raise InvalidInputError.  Unset env is a no-op.
void arm_crash_from_env();

namespace detail {
extern std::atomic<bool> crash_armed;
void crash_hit(CrashPoint point);
}  // namespace detail

/// Call at a crash point; dies via _exit iff that point is armed and due.
inline void maybe_crash(CrashPoint point) {
  if (detail::crash_armed.load(std::memory_order_relaxed)) {
    detail::crash_hit(point);
  }
}

}  // namespace mps::durability
