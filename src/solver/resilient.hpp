#pragma once
// Self-healing driver for iterative solvers (docs/robustness.md).
//
// Iterative methods (CG, power iteration, AMG-preconditioned CG, Markov
// evolution) share a shape: a small set of state vectors mutated by a
// per-iteration step whose health is summarized by one residual scalar.
// That shape is exactly what makes them recoverable from silent data
// corruption — state is compact enough to checkpoint, and the residual
// plus integrity guards (resilience/integrity.hpp) give a detection
// signal.  ResilientSolver packages the recovery loop once so every
// workload gets the same guarantees:
//
//   detect  — periodic scrub-with-readback scans (checksum each tracked
//             vector, scrub it through the device — the registration
//             point where armed MPS_FAULT_BITFLIP_* faults land — then
//             re-checksum; any injected flip is caught deterministically
//             before the next checkpoint), plus non-finite/divergent
//             residual monitoring, plus IntegrityError /
//             PlanMismatchError raised by guarded kernels inside step();
//   recover — roll back to the last verified checkpoint, invoke the
//             caller's rebuild hook (invalidate + rebuild plans whose
//             pinned state may have been hit), and resume;
//   bound   — at most `max_restores` rollbacks, and after every restore
//             the scan interval halves (paranoid mode: corruption was
//             observed, verify more often).  When the budget is spent the
//             driver rethrows IntegrityError rather than looping forever.
//
// Because every fault-landing surface in the loop is covered by a
// detector (scrubbed vectors by the readback scan, pinned plan state by
// the plan's build-time checksum under MPS_INTEGRITY_CHECK), a recovered
// solve reaches the same answer as an uncorrupted one.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "vgpu/device.hpp"

namespace mps::solver {

struct ResilientConfig {
  int max_iterations = 1000;
  /// Convergence threshold on the step residual; <= 0 means run all
  /// `max_iterations` (fixed-step workloads like Markov evolution).
  double tolerance = 0.0;
  /// Iterations between scrub-with-readback scans (the detection cadence;
  /// halves after every restore, floor 1).
  int scan_interval = 4;
  /// Iterations between checkpoints.  Checkpoints are only taken right
  /// after a clean scan, so a snapshot never captures undetected damage.
  int checkpoint_interval = 16;
  /// Rollback budget; exceeding it rethrows the detection error.
  int max_restores = 32;
  /// A residual above `divergence_factor * best_residual_so_far` counts
  /// as corruption (a flipped sign/exponent rarely produces NaN but
  /// reliably explodes the residual).
  double divergence_factor = 1e4;
};

/// What one iteration reports back to the driver.
struct StepResult {
  double residual = 0.0;    ///< health scalar (norm, delta, mass error…)
  double modeled_ms = 0.0;  ///< modeled kernel time spent in the step
};

struct ResilientReport {
  int iterations = 0;        ///< committed (post-recovery) iterations
  double residual = 0.0;     ///< final residual
  bool converged = false;
  int restores = 0;          ///< checkpoint rollbacks performed
  int detections = 0;        ///< corruption events detected (any detector)
  int plan_rebuilds = 0;     ///< rebuild hook invocations
  double solver_ms = 0.0;    ///< modeled kernel time reported by steps
  double guard_ms = 0.0;     ///< modeled scrub/verify overhead
};

class ResilientSolver {
 public:
  using StepFn = std::function<StepResult(int iter)>;
  using RebuildFn = std::function<void()>;

  explicit ResilientSolver(vgpu::Device& device, ResilientConfig cfg = {})
      : device_(&device), cfg_(cfg) {}

  /// Register a state vector the step function mutates.  Tracked storage
  /// is scrubbed (exposed to the fault layer), verified, checkpointed and
  /// restored; it must outlive the solver and keep its identity (resizing
  /// is fine, replacing the vector object is not).
  void track(const std::string& name, std::vector<double>& v) {
    tracked_.push_back({name, &v});
  }

  /// Register a state scalar (e.g. CG's r·r): checkpointed, restored, and
  /// verified finite at every scan.
  void track_scalar(const std::string& name, double& s) {
    scalars_.push_back({name, &s});
  }

  /// Drive `step` to convergence with detection + rollback as configured.
  /// `rebuild` (optional) is invoked after every restore to invalidate
  /// and rebuild any plans the step depends on.  Throws IntegrityError
  /// when the restore budget is exhausted; anything unrelated to
  /// corruption (InvalidInputError, real OOM…) propagates immediately.
  ResilientReport run(const StepFn& step, const RebuildFn& rebuild = {});

 private:
  struct Tracked {
    std::string name;
    std::vector<double>* vec;
  };
  struct TrackedScalar {
    std::string name;
    double* value;
  };
  struct Checkpoint {
    int iter = 0;
    double best_residual = 0.0;
    std::vector<std::vector<double>> vecs;
    std::vector<double> scalars;
  };

  /// Scrub-with-readback over every tracked vector + finite checks;
  /// throws IntegrityError on any detection, else accumulates guard ms.
  void scan(ResilientReport& rep);
  void take_checkpoint(int iter, double best_residual);
  void restore_checkpoint();

  vgpu::Device* device_;
  ResilientConfig cfg_;
  std::vector<Tracked> tracked_;
  std::vector<TrackedScalar> scalars_;
  Checkpoint checkpoint_;
};

}  // namespace mps::solver
