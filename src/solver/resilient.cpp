#include "solver/resilient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "resilience/integrity.hpp"
#include "util/error.hpp"

namespace mps::solver {

void ResilientSolver::scan(ResilientReport& rep) {
  for (const Tracked& t : tracked_) {
    std::vector<double>& v = *t.vec;
    const std::size_t bytes = v.size() * sizeof(double);
    const std::uint64_t before = resilience::checksum_bytes(v.data(), bytes);
    // The scrub registers the live storage with the fault layer — this is
    // where an armed bit flip lands — so the readback comparison below
    // deterministically catches whatever the scrub let in.
    rep.guard_ms += resilience::scrub(*device_, std::span<double>(v));
    if (resilience::checksum_bytes(v.data(), bytes) != before) {
      resilience::integrity_failed("solver state '" + t.name +
                                   "' changed under scrub (bit flip)");
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (!std::isfinite(v[i])) {
        resilience::integrity_failed("solver state '" + t.name +
                                     "' non-finite at index " +
                                     std::to_string(i));
      }
    }
  }
  for (const TrackedScalar& s : scalars_) {
    if (!std::isfinite(*s.value)) {
      resilience::integrity_failed("solver scalar '" + s.name +
                                   "' is non-finite");
    }
  }
}

void ResilientSolver::take_checkpoint(int iter, double best_residual) {
  checkpoint_.iter = iter;
  checkpoint_.best_residual = best_residual;
  checkpoint_.vecs.resize(tracked_.size());
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    checkpoint_.vecs[i] = *tracked_[i].vec;
  }
  checkpoint_.scalars.resize(scalars_.size());
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    checkpoint_.scalars[i] = *scalars_[i].value;
  }
  ++resilience::counters().checkpoints;
}

void ResilientSolver::restore_checkpoint() {
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    *tracked_[i].vec = checkpoint_.vecs[i];
  }
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    *scalars_[i].value = checkpoint_.scalars[i];
  }
  ++resilience::counters().checkpoint_restores;
}

ResilientReport ResilientSolver::run(const StepFn& step,
                                     const RebuildFn& rebuild) {
  MPS_CHECK_MSG(static_cast<bool>(step), "resilient solver needs a step");
  ResilientReport rep;
  int scan_every = std::max(1, cfg_.scan_interval);
  const int checkpoint_every = std::max(1, cfg_.checkpoint_interval);
  double best_residual = std::numeric_limits<double>::infinity();

  // Verified initial state: there is nothing to roll back to yet, so an
  // initial-scan failure (corrupt starting state) propagates.
  scan(rep);
  take_checkpoint(0, best_residual);

  auto recover = [&](const char* why) {
    ++rep.detections;
    if (rep.restores >= cfg_.max_restores) {
      ++resilience::counters().integrity_failures;
      throw IntegrityError(std::string("resilient solver: restore budget (") +
                           std::to_string(cfg_.max_restores) +
                           ") exhausted; last detection: " + why);
    }
    ++rep.restores;
    restore_checkpoint();
    if (rebuild) {
      rebuild();
      ++rep.plan_rebuilds;
      ++resilience::counters().plan_rebuilds;
    }
    // Paranoid mode: corruption was observed, verify more often.
    scan_every = std::max(1, scan_every / 2);
    best_residual = checkpoint_.best_residual;
  };

  int iter = 0;
  while (iter < cfg_.max_iterations) {
    bool detected = false;
    const char* why = "";
    try {
      const StepResult s = step(iter);
      rep.solver_ms += s.modeled_ms;
      rep.residual = s.residual;
      if (!std::isfinite(s.residual)) {
        detected = true;
        why = "non-finite residual";
      } else if (iter > checkpoint_.iter && best_residual > 0.0 &&
                 std::isfinite(best_residual) &&
                 s.residual > cfg_.divergence_factor * best_residual) {
        detected = true;
        why = "diverging residual";
      }
    } catch (const IntegrityError&) {
      detected = true;
      why = "integrity error in step";
    } catch (const PlanMismatchError&) {
      detected = true;
      why = "plan mismatch in step";
    }

    bool scanned_clean = false;
    if (!detected) {
      best_residual = std::min(best_residual, rep.residual);
      const bool converging =
          cfg_.tolerance > 0.0 && rep.residual <= cfg_.tolerance;
      if (converging || (iter + 1) % scan_every == 0) {
        try {
          scan(rep);
          scanned_clean = true;
        } catch (const IntegrityError&) {
          detected = true;
          why = "scrub readback mismatch";
        }
      }
    }

    if (detected) {
      recover(why);
      iter = checkpoint_.iter;
      continue;
    }

    ++iter;
    rep.iterations = iter;
    if (cfg_.tolerance > 0.0 && rep.residual <= cfg_.tolerance) {
      // The convergence path always runs a scan first (above), so the
      // final state is verified.
      rep.converged = true;
      break;
    }
    if (scanned_clean && iter - checkpoint_.iter >= checkpoint_every) {
      take_checkpoint(iter, best_residual);
    }
  }
  if (cfg_.tolerance <= 0.0) rep.converged = rep.iterations >= cfg_.max_iterations;
  return rep;
}

}  // namespace mps::solver
