#include "analysis/experiment.hpp"

#include <cstdio>

#include "analysis/bench_json.hpp"
#include "util/env.hpp"

namespace mps::analysis {

BenchConfig bench_config(double default_scale, int default_iters) {
  BenchConfig cfg;
  cfg.scale = util::env_double("MPS_SCALE", default_scale);
  cfg.iters = static_cast<int>(util::env_int("MPS_ITERS", default_iters));
  if (cfg.iters < 1) cfg.iters = 1;
  return cfg;
}

void print_system_config(const vgpu::DeviceProperties& gpu, const BenchConfig& cfg) {
  util::Table t("System configuration (paper Table I analogue)");
  t.set_header({"component", "value"});
  t.add_row({"Virtual GPU", "GTX Titan model: " + util::fmt_int(gpu.num_sms) +
                                " SMs x " + util::fmt_int(gpu.ctas_per_sm) +
                                " resident CTAs @ " + util::fmt(gpu.clock_ghz, 3) +
                                " GHz"});
  t.add_row({"GPU bandwidth",
             util::fmt(gpu.global_bytes_per_cycle_per_sm * gpu.num_sms *
                           gpu.clock_ghz,
                       1) +
                 " GB/s modeled"});
  t.add_row({"GPU memory", util::fmt(static_cast<double>(gpu.global_mem_bytes) /
                                         (1024.0 * 1024.0 * 1024.0),
                                     2) +
                               " GiB"});
  const vgpu::CpuProperties cpu;
  t.add_row({"CPU model", "i7-3820 analogue @ " + util::fmt(cpu.clock_ghz, 1) +
                              " GHz, " + util::fmt(cpu.bytes_per_cycle * cpu.clock_ghz, 1) +
                              " GB/s stream"});
  t.add_row({"Precision", "double (fp64), 32-bit indices"});
  t.add_row({"Workload scale", util::fmt(cfg.scale, 4) + " x Table II native"});
  t.add_row({"Timing", "analytic SIMT cost model (see DESIGN.md)"});
  std::fputs(t.render().c_str(), stdout);
  std::fputs("\n", stdout);
}

CorrelationReport correlate(const CorrelationSeries& s) {
  CorrelationReport r;
  r.scheme = s.scheme;
  const auto fit = util::least_squares(s.work, s.time_ms);
  r.rho = util::pearson(s.work, s.time_ms);
  r.slope_ms_per_unit = fit.slope;
  r.intercept_ms = fit.intercept;
  return r;
}

std::string render_correlation_figure(const std::string& title,
                                      const std::string& work_label,
                                      const std::vector<std::string>& labels,
                                      const std::vector<CorrelationSeries>& series,
                                      const std::string& figure_id) {
  util::Table t(title);
  std::vector<std::string> header{"matrix", work_label};
  for (const auto& s : series) header.push_back(s.scheme + " ms");
  t.set_header(header);
  if (!series.empty()) {
    for (std::size_t i = 0; i < labels.size(); ++i) {
      std::vector<std::string> row{labels[i], util::fmt(series[0].work[i], 0)};
      for (const auto& s : series) {
        row.push_back(i < s.time_ms.size() ? util::fmt(s.time_ms[i], 3) : "-");
      }
      t.add_row(row);
    }
  }
  if (!figure_id.empty() && !util::env_string("MPS_CSV_DIR", "").empty()) {
    const std::string path =
        util::env_string("MPS_CSV_DIR", "") + "/" + figure_id + ".csv";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string csv = t.csv();
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
    }
  }
  std::string out = t.render();
  for (const auto& s : series) {
    const auto rep = correlate(s);
    out += "rho_" + rep.scheme + " = " + util::fmt(rep.rho, 2) +
           "   (least-squares: " + util::fmt(rep.slope_ms_per_unit * 1e6, 3) +
           " ms per 1e6 " + work_label + ", intercept " +
           util::fmt(rep.intercept_ms, 3) + " ms)\n";
  }
  // Structured report alongside the table: per-case (work, time) for every
  // scheme plus the correlation stats the figure is about.
  if (!figure_id.empty()) {
    BenchJson report(figure_id);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      std::vector<std::pair<std::string, double>> metrics;
      if (!series.empty() && i < series[0].work.size()) {
        metrics.emplace_back(work_label, series[0].work[i]);
      }
      for (const auto& s : series) {
        if (i < s.time_ms.size()) {
          metrics.emplace_back(s.scheme + "_ms", s.time_ms[i]);
        }
      }
      report.add_case(labels[i], std::move(metrics));
    }
    for (const auto& s : series) {
      const auto rep = correlate(s);
      report.add_stat("rho_" + rep.scheme, rep.rho);
      report.add_stat("slope_ms_per_" + work_label + "_" + rep.scheme,
                      rep.slope_ms_per_unit);
    }
    report.write();
  }
  return out;
}

double gflops(double flops, double ms) {
  if (ms <= 0.0) return 0.0;
  return flops / (ms * 1e-3) * 1e-9;
}

void emit(const util::Table& table, const std::string& figure_id) {
  std::fputs(table.render().c_str(), stdout);
  const std::string dir = util::env_string("MPS_CSV_DIR", "");
  if (dir.empty()) return;
  const std::string path = dir + "/" + figure_id + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  const std::string csv = table.csv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  std::printf("(csv written to %s)\n", path.c_str());
}

}  // namespace mps::analysis
