#pragma once
// Structured bench reporting (docs/observability.md): every suite/figure
// binary records its per-case results through a BenchJson and writes one
// BENCH_<name>.json next to the human-readable table, so CI can diff
// modeled times against committed baselines (scripts/bench_delta.py)
// instead of scraping stdout.
//
// The modeled timeline is deterministic — same binary, same scale, same
// numbers — so the JSON doubles as an exact regression baseline.
//
// Knobs: MPS_BENCH_DIR picks the output directory (default the working
// directory); MPS_BENCH_JSON=0 disables writing entirely.

#include <string>
#include <utility>
#include <vector>

namespace mps::analysis {

class BenchJson {
 public:
  /// `name` becomes the file stem: BENCH_<name>.json.
  explicit BenchJson(std::string name);

  /// False when MPS_BENCH_JSON=0 (write() becomes a no-op).
  bool enabled() const { return enabled_; }

  /// Record one case (a matrix, a sweep point) with its numeric metrics.
  /// Key order is preserved in the output.
  void add_case(const std::string& case_name,
                std::vector<std::pair<std::string, double>> metrics);

  /// Record a suite-level scalar (a correlation rho, a total).
  void add_stat(const std::string& key, double value);

  /// Write BENCH_<name>.json into MPS_BENCH_DIR (default ".").  Returns
  /// the path written, or "" when disabled or on I/O failure (a warning
  /// is printed; benches never fail because reporting did).
  std::string write() const;

 private:
  std::string name_;
  bool enabled_ = true;
  struct Case {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::vector<Case> cases_;
  std::vector<std::pair<std::string, double>> stats_;
};

}  // namespace mps::analysis
