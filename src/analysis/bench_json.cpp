#include "analysis/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/env.hpp"

namespace mps::analysis {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20 || u >= 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void write_pairs(std::ostream& out,
                 const std::vector<std::pair<std::string, double>>& pairs) {
  out << '{';
  bool first = true;
  for (const auto& [k, v] : pairs) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(k) << "\":" << json_num(v);
  }
  out << '}';
}

}  // namespace

BenchJson::BenchJson(std::string name)
    : name_(std::move(name)),
      enabled_(util::env_int("MPS_BENCH_JSON", 1) != 0) {}

void BenchJson::add_case(const std::string& case_name,
                         std::vector<std::pair<std::string, double>> metrics) {
  cases_.push_back(Case{case_name, std::move(metrics)});
}

void BenchJson::add_stat(const std::string& key, double value) {
  stats_.emplace_back(key, value);
}

std::string BenchJson::write() const {
  if (!enabled_) return "";
  const std::string dir = util::env_string("MPS_BENCH_DIR", ".");
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  out << "{\"bench\":\"" << json_escape(name_) << "\",\"schema\":1,"
      << "\"cases\":[";
  bool first = true;
  for (const auto& c : cases_) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(c.name) << "\",\"metrics\":";
    write_pairs(out, c.metrics);
    out << '}';
  }
  out << "],\"stats\":";
  write_pairs(out, stats_);
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "warning: failed writing %s\n", path.c_str());
    return "";
  }
  std::printf("(bench json written to %s)\n", path.c_str());
  return path;
}

}  // namespace mps::analysis
