#pragma once
// Shared evaluation-harness plumbing used by every bench binary:
// configuration from the environment, the Table I system banner, and the
// correlation reports behind Figures 6, 8 and 10.

#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"
#include "vgpu/cpu_model.hpp"
#include "vgpu/device_properties.hpp"

namespace mps::analysis {

struct BenchConfig {
  double scale = 1.0;  ///< suite scale factor (MPS_SCALE)
  int iters = 1;       ///< timing repetitions (MPS_ITERS)
};

/// Read MPS_SCALE / MPS_ITERS with bench-specific defaults.
BenchConfig bench_config(double default_scale, int default_iters = 1);

/// Print the reproduction analogue of the paper's Table I: the virtual
/// device, its cost-model constants, and the CPU model, plus the scale.
void print_system_config(const vgpu::DeviceProperties& gpu, const BenchConfig& cfg);

/// One scheme's (work, time) samples across the suite.
struct CorrelationSeries {
  std::string scheme;
  std::vector<double> work;     ///< x-axis (nnz or products)
  std::vector<double> time_ms;  ///< modeled milliseconds
};

/// The ρ + least-squares summary the paper overlays on Figs 6/8/10.
struct CorrelationReport {
  std::string scheme;
  double rho = 0.0;
  double slope_ms_per_unit = 0.0;
  double intercept_ms = 0.0;
};

CorrelationReport correlate(const CorrelationSeries& s);

/// Render per-point series plus the ρ summary in a fixed format.  When
/// `figure_id` is non-empty and MPS_CSV_DIR is set, the point table is
/// also written as CSV.
std::string render_correlation_figure(const std::string& title,
                                      const std::string& work_label,
                                      const std::vector<std::string>& labels,
                                      const std::vector<CorrelationSeries>& series,
                                      const std::string& figure_id = "");

/// GFLOPs/s for `flops` useful operations in `ms` milliseconds.
double gflops(double flops, double ms);

/// Print a finished table to stdout and, when MPS_CSV_DIR is set, also
/// write it as `<dir>/<figure_id>.csv` for downstream plotting.
void emit(const util::Table& table, const std::string& figure_id);

}  // namespace mps::analysis
