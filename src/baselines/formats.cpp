#include "baselines/formats.hpp"

#include <vector>

#include "util/timer.hpp"

namespace mps::baselines::formats {

using sparse::DiaMatrix;
using sparse::EllMatrix;
using sparse::HybMatrix;

namespace {

constexpr int kBlock = 128;

/// Shared ELL kernel body; `accumulate` controls += vs = into y.
double run_ell(vgpu::Device& device, const EllMatrix<double>& a,
               std::span<const double> x, std::span<double> y, bool accumulate) {
  if (a.num_rows == 0) return 0.0;
  const int num_ctas = static_cast<int>(ceil_div(
      static_cast<std::size_t>(a.num_rows), static_cast<std::size_t>(kBlock)));
  auto s = device.launch("formats.spmv_ell", num_ctas, kBlock, [&](vgpu::Cta& cta) {
    const index_t row_lo = static_cast<index_t>(cta.cta_id()) * kBlock;
    const index_t row_hi = std::min<index_t>(a.num_rows, row_lo + kBlock);
    std::size_t useful = 0;
    for (index_t r = row_lo; r < row_hi; ++r) {
      double acc = 0.0;
      for (index_t j = 0; j < a.width; ++j) {
        const std::size_t cell = static_cast<std::size_t>(j) *
                                     static_cast<std::size_t>(a.num_rows) +
                                 static_cast<std::size_t>(r);
        const index_t c = a.col[cell];
        if (c >= 0) {
          acc += a.val[cell] * x[static_cast<std::size_t>(c)];
          ++useful;
        }
      }
      if (accumulate) {
        y[static_cast<std::size_t>(r)] += acc;
      } else {
        y[static_cast<std::size_t>(r)] = acc;
      }
    }
    // Thread-per-row over column-major cells: every warp load of 32
    // consecutive rows' cell j is one coalesced transaction, padding
    // included — ELL streams the whole rectangle.
    const std::size_t cells =
        static_cast<std::size_t>(row_hi - row_lo) * static_cast<std::size_t>(a.width);
    cta.charge_global(cells * (sizeof(index_t) + sizeof(double)));
    cta.charge_gather(useful);  // x dereferences only for real entries
    cta.charge_warp_iters(static_cast<std::size_t>(a.width) *
                          ceil_div(static_cast<std::size_t>(row_hi - row_lo),
                                   std::size_t{32}));
    cta.charge_global(static_cast<std::size_t>(row_hi - row_lo) * sizeof(double));
  });
  return s.modeled_ms;
}

}  // namespace

OpStats spmv_ell(vgpu::Device& device, const EllMatrix<double>& a,
                 std::span<const double> x, std::span<double> y) {
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
  util::WallTimer wall;
  const double ms = run_ell(device, a, x, y, /*accumulate=*/false);
  return OpStats{ms, wall.milliseconds()};
}

OpStats spmv_dia(vgpu::Device& device, const DiaMatrix<double>& a,
                 std::span<const double> x, std::span<double> y) {
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
  util::WallTimer wall;
  if (a.num_rows == 0) return OpStats{0.0, wall.milliseconds()};
  const int num_ctas = static_cast<int>(ceil_div(
      static_cast<std::size_t>(a.num_rows), static_cast<std::size_t>(kBlock)));
  auto s = device.launch("formats.spmv_dia", num_ctas, kBlock, [&](vgpu::Cta& cta) {
    const index_t row_lo = static_cast<index_t>(cta.cta_id()) * kBlock;
    const index_t row_hi = std::min<index_t>(a.num_rows, row_lo + kBlock);
    for (index_t r = row_lo; r < row_hi; ++r) {
      double acc = 0.0;
      for (std::size_t d = 0; d < a.offsets.size(); ++d) {
        const index_t c = r + a.offsets[d];
        if (c < 0 || c >= a.num_cols) continue;
        acc += a.val[d * static_cast<std::size_t>(a.num_rows) +
                     static_cast<std::size_t>(r)] *
               x[static_cast<std::size_t>(c)];
      }
      y[static_cast<std::size_t>(r)] = acc;
    }
    // DIA's defining property: no column indices, and x is accessed at a
    // fixed offset per diagonal — consecutive rows read consecutive x
    // entries, so even the x loads coalesce.
    const std::size_t rows = static_cast<std::size_t>(row_hi - row_lo);
    cta.charge_global(rows * a.offsets.size() * sizeof(double));  // matrix
    cta.charge_global(rows * a.offsets.size() * sizeof(double));  // x, coalesced
    cta.charge_warp_iters(a.offsets.size() * ceil_div(rows, std::size_t{32}));
    cta.charge_global(rows * sizeof(double));
  });
  return OpStats{s.modeled_ms, wall.milliseconds()};
}

OpStats spmv_hyb(vgpu::Device& device, const HybMatrix<double>& a,
                 std::span<const double> x, std::span<double> y) {
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.ell.num_rows));
  util::WallTimer wall;
  OpStats op;
  op.modeled_ms += run_ell(device, a.ell, x, y, /*accumulate=*/false);

  // COO tail: flat segmented pass accumulating into y (the ELL pass wrote
  // every row, so += is safe and race-free per row segment).
  const std::size_t nnz = static_cast<std::size_t>(a.coo.nnz());
  if (nnz > 0) {
    constexpr std::size_t kTile = 128 * 7;
    const int num_ctas = static_cast<int>(ceil_div(nnz, kTile));
    std::vector<index_t> carry_row(static_cast<std::size_t>(num_ctas), -1);
    std::vector<double> carry_val(static_cast<std::size_t>(num_ctas), 0.0);
    auto s = device.launch("formats.spmv_hyb_coo", num_ctas, kBlock,
                           [&](vgpu::Cta& cta) {
      const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
      const std::size_t hi = std::min(nnz, lo + kTile);
      double acc = 0.0;
      index_t cur = a.coo.row[lo];
      for (std::size_t i = lo; i < hi; ++i) {
        if (a.coo.row[i] != cur) {
          y[static_cast<std::size_t>(cur)] += acc;
          acc = 0.0;
          cur = a.coo.row[i];
        }
        acc += a.coo.val[i] * x[static_cast<std::size_t>(a.coo.col[i])];
      }
      if (hi < nnz && a.coo.row[hi] == cur) {
        carry_row[static_cast<std::size_t>(cta.cta_id())] = cur;
        carry_val[static_cast<std::size_t>(cta.cta_id())] = acc;
      } else {
        y[static_cast<std::size_t>(cur)] += acc;
      }
      const std::size_t count = hi - lo;
      cta.charge_global(count * (2 * sizeof(index_t) + sizeof(double)));
      cta.charge_gather(count);
      cta.charge_shared_elems(3 * count);
      cta.charge_alu_uniform(2 * count);
      cta.charge_sync();
    });
    op.modeled_ms += s.modeled_ms;
    auto fix = device.launch("formats.spmv_hyb_fixup", 1, kBlock,
                             [&](vgpu::Cta& cta) {
      for (int i = 0; i < num_ctas; ++i) {
        if (carry_row[static_cast<std::size_t>(i)] >= 0) {
          y[static_cast<std::size_t>(carry_row[static_cast<std::size_t>(i)])] +=
              carry_val[static_cast<std::size_t>(i)];
        }
      }
      cta.charge_global(static_cast<std::size_t>(num_ctas) *
                        (sizeof(index_t) + sizeof(double)));
      cta.charge_alu_uniform(static_cast<std::size_t>(num_ctas));
    });
    op.modeled_ms += fix.modeled_ms;
  }
  op.wall_ms = wall.milliseconds();
  return op;
}

OpStats spmv_cmrs(vgpu::Device& device, const sparse::CmrsMatrix<double>& a,
                  std::span<const double> x, std::span<double> y) {
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
  util::WallTimer wall;
  if (a.num_rows == 0) return OpStats{0.0, wall.milliseconds()};
  // Warp-per-strip: four warps per CTA each stream one strip's elements
  // front to back.  Strips never split rows, so each row's products are
  // accumulated in ascending-k order and written once — the canonical
  // order every scheme shares.
  constexpr int kWarpsPerCta = kBlock / 32;
  const index_t num_strips = a.num_strips();
  const int num_ctas = static_cast<int>(
      ceil_div(static_cast<std::size_t>(std::max<index_t>(num_strips, 1)),
               static_cast<std::size_t>(kWarpsPerCta)));
  const bool packed = a.tag_packed();
  auto s = device.launch("formats.spmv_cmrs", num_ctas, kBlock,
                         [&](vgpu::Cta& cta) {
    const index_t s_lo = static_cast<index_t>(cta.cta_id()) * kWarpsPerCta;
    const index_t s_hi = std::min<index_t>(num_strips, s_lo + kWarpsPerCta);
    const index_t row_lo = s_lo * a.strip_height;
    const index_t row_hi =
        std::min<index_t>(a.num_rows, s_hi * a.strip_height);
    for (index_t r = row_lo; r < row_hi; ++r) y[static_cast<std::size_t>(r)] = 0.0;
    std::size_t total = 0, warp_iters = 0, max_strip_bytes = 0;
    const std::size_t elem_bytes =
        sizeof(index_t) + sizeof(double) +
        (packed ? 0 : sizeof(std::uint16_t));
    for (index_t st = s_lo; st < s_hi; ++st) {
      const index_t lo = a.strip_ptr[static_cast<std::size_t>(st)];
      const index_t hi = a.strip_ptr[static_cast<std::size_t>(st) + 1];
      double acc = 0.0;
      index_t cur = -1;
      for (index_t k = lo; k < hi; ++k) {
        const index_t r =
            st * a.strip_height +
            static_cast<index_t>(a.row_in_strip[static_cast<std::size_t>(k)]);
        if (r != cur) {
          if (cur >= 0) y[static_cast<std::size_t>(cur)] = acc;
          acc = 0.0;
          cur = r;
        }
        acc += a.val[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
      }
      if (cur >= 0) y[static_cast<std::size_t>(cur)] = acc;
      const std::size_t count = static_cast<std::size_t>(hi - lo);
      total += count;
      warp_iters += ceil_div(count, std::size_t{32});
      max_strip_bytes = std::max(max_strip_bytes, count * elem_bytes);
    }
    // Element streams coalesce per warp; like the row-wise kernel, a CTA
    // whose strips are lopsided is pinned behind its heaviest warp, which
    // alone sustains ~1/3 of the SM's bandwidth.
    cta.charge_global(std::max(total * elem_bytes, 3 * max_strip_bytes));
    cta.charge_global(static_cast<std::size_t>(s_hi - s_lo + 1) *
                      sizeof(index_t));  // strip_ptr window
    cta.charge_gather(total);            // x dereferences
    cta.charge_warp_iters(warp_iters);
    // Tag decode + row-boundary detection per element, and a warp-level
    // staging slot for each partial before its row write.
    cta.charge_alu_uniform(2 * total);
    cta.charge_shared_elems(total);
    cta.charge_global(static_cast<std::size_t>(row_hi - row_lo) *
                      sizeof(double));  // y writes (zero-fill + row sums)
  });
  return OpStats{s.modeled_ms, wall.milliseconds()};
}

}  // namespace mps::baselines::formats
