#pragma once
// "Cusparse"-family comparator: segmentation-aware, row-granularity
// processing.  The real library is closed source; these kernels implement
// the same algorithmic family the paper contrasts with (Section IV):
//
//   * SpMV   — CSR kernel with an adaptively chosen vector width
//              (threads-per-row picked from the average row length),
//   * SpAdd  — csrgeam-style: one thread per output row runs the
//              two-pointer merge (count pass + fill pass),
//   * SpGEMM — csrgemm-style: one warp per output row accumulates
//              products into a per-row hash table (count + fill).
//
// Fast when rows are uniform, but warp-divergent and CTA-imbalanced under
// skewed row distributions — exactly the behaviour Figures 5-10 probe.

#include <span>

#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::baselines::rowwise {

struct OpStats {
  double modeled_ms = 0.0;
  double wall_ms = 0.0;
};

/// y = A x with 2^k threads per row, k chosen from the mean row length.
OpStats spmv(vgpu::Device& device, const sparse::CsrD& a, std::span<const double> x,
             std::span<double> y);

/// C = A + B, thread-per-row two-pointer merge.
OpStats spadd(vgpu::Device& device, const sparse::CsrD& a, const sparse::CsrD& b,
              sparse::CsrD& c);

/// C = A x B, warp-per-row hash accumulation.
OpStats spgemm(vgpu::Device& device, const sparse::CsrD& a, const sparse::CsrD& b,
               sparse::CsrD& c);

}  // namespace mps::baselines::rowwise
