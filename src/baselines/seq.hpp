#pragma once
// Sequential CPU reference kernels.
//
// These serve two roles: (1) the ground truth every parallel scheme is
// verified against, and (2) the denominator of the paper's speedup figures
// (Figs. 7 and 9 report "speedup versus the sequential CPU implementation
// in CSR format").  Each kernel optionally charges a CpuCost so the
// speedups are computed model-against-model (see DESIGN.md §2).

#include <span>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "vgpu/cpu_model.hpp"

namespace mps::baselines::seq {

/// y = A x.  `y` must have A.num_rows elements.
void spmv(const sparse::CsrD& a, std::span<const double> x, std::span<double> y,
          vgpu::CpuCost* cost = nullptr);

/// C = A + B via per-row two-pointer merge (classic csrgeam).
sparse::CsrD spadd(const sparse::CsrD& a, const sparse::CsrD& b,
                   vgpu::CpuCost* cost = nullptr);

/// C = A x B via Gustavson's algorithm with an O(num_cols) dense
/// accumulator (the paper's Section II description of sequential SpGEMM).
sparse::CsrD spgemm(const sparse::CsrD& a, const sparse::CsrD& b,
                    vgpu::CpuCost* cost = nullptr);

/// The paper's work measure for SpGEMM: the number of products in the
/// expanded intermediate, sum_k |B_row(A.col[k])|.
long long spgemm_num_products(const sparse::CsrD& a, const sparse::CsrD& b);

}  // namespace mps::baselines::seq
