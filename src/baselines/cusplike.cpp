#include "baselines/cusplike.hpp"

#include <numeric>
#include <vector>

#include "primitives/device_radix_sort.hpp"
#include "primitives/reduce_by_key.hpp"
#include "primitives/scan.hpp"
#include "sparse/convert.hpp"
#include "sparse/packed_key.hpp"
#include "util/timer.hpp"

namespace mps::baselines::cusplike {

using sparse::CooD;
using sparse::CsrD;
using sparse::pack_key;

OpStats spmv(vgpu::Device& device, const CsrD& a, std::span<const double> x,
             std::span<double> y) {
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
  util::WallTimer wall;
  constexpr int kBlock = 128;
  constexpr int kWarp = 32;
  constexpr int kRowsPerCta = kBlock / kWarp;  // one warp per row
  const int num_ctas = static_cast<int>(
      ceil_div(static_cast<std::size_t>(std::max<index_t>(a.num_rows, 1)),
               static_cast<std::size_t>(kRowsPerCta)));
  auto stats = device.launch("cusp.spmv_vector", num_ctas, kBlock, [&](vgpu::Cta& cta) {
    const index_t row_lo = static_cast<index_t>(cta.cta_id()) * kRowsPerCta;
    const index_t row_hi = std::min<index_t>(a.num_rows, row_lo + kRowsPerCta);
    std::size_t max_warp_bytes = 0, sum_bytes = 0;
    for (index_t r = row_lo; r < row_hi; ++r) {
      const index_t lo = a.row_offsets[static_cast<std::size_t>(r)];
      const index_t hi = a.row_offsets[static_cast<std::size_t>(r) + 1];
      double acc = 0.0;
      for (index_t k = lo; k < hi; ++k) {
        acc += a.val[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
      }
      y[static_cast<std::size_t>(r)] = acc;
      const std::size_t len = static_cast<std::size_t>(hi - lo);
      // Warp strides the row: ceil(len/32) lockstep iterations, short rows
      // idle 32 - len lanes (the vectorized scheme's weakness), and every
      // iteration moves full 128 B transactions whether or not all lanes
      // contribute — short rows pay the transaction floor.
      cta.charge_warp_iters(ceil_div(len, static_cast<std::size_t>(kWarp)));
      const std::size_t warp_bytes =
          round_up<std::size_t>(len * (sizeof(index_t) + sizeof(double)), 128) +
          len * cta.props().gather_sector_bytes;  // x dereferences
      max_warp_bytes = std::max(max_warp_bytes, warp_bytes);
      sum_bytes += warp_bytes;
      // Warp-level reduction of partial sums (5 shuffle steps).
      cta.charge_warp_iters(5);
      cta.charge_global(sizeof(double) + 2 * sizeof(index_t));
    }
    // One row per warp: the CTA occupies the SM until its LONGEST row
    // drains, and a lone warp sustains about a third of the SM's
    // bandwidth, so the CTA's memory time is max(sum, 3 x max warp).
    cta.charge_global(std::max(sum_bytes, 3 * max_warp_bytes));
  });
  return OpStats{stats.modeled_ms, wall.milliseconds()};
}

OpStats spmv_coo(vgpu::Device& device, const CooD& a, std::span<const double> x,
                 std::span<double> y) {
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
  MPS_CHECK_MSG(a.is_sorted(), "coo spmv requires row-sorted input");
  util::WallTimer wall;
  std::fill(y.begin(), y.begin() + a.num_rows, 0.0);
  const std::size_t nnz = static_cast<std::size_t>(a.nnz());
  if (nnz == 0) return OpStats{0.0, wall.milliseconds()};

  constexpr int kBlock = 128;
  constexpr std::size_t kTile = 128 * 7;
  const int num_ctas = static_cast<int>(ceil_div(nnz, kTile));
  std::vector<index_t> carry_row(static_cast<std::size_t>(num_ctas), -1);
  std::vector<double> carry_val(static_cast<std::size_t>(num_ctas), 0.0);
  auto s1 = device.launch("cusp.spmv_coo", num_ctas, kBlock, [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
    const std::size_t hi = std::min(nnz, lo + kTile);
    double acc = 0.0;
    index_t cur = a.row[lo];
    for (std::size_t i = lo; i < hi; ++i) {
      if (a.row[i] != cur) {
        y[static_cast<std::size_t>(cur)] += acc;
        acc = 0.0;
        cur = a.row[i];
      }
      acc += a.val[i] * x[static_cast<std::size_t>(a.col[i])];
    }
    // Open trailing segment: if the row continues into the next tile it
    // must go through the carry; writing directly would race.
    if (hi < nnz && a.row[hi] == cur) {
      carry_row[static_cast<std::size_t>(cta.cta_id())] = cur;
      carry_val[static_cast<std::size_t>(cta.cta_id())] = acc;
    } else {
      y[static_cast<std::size_t>(cur)] += acc;
    }
    const std::size_t count = hi - lo;
    // The COO format's defining cost: the explicit row index stream.
    cta.charge_global(count * (2 * sizeof(index_t) + sizeof(double)));
    cta.charge_gather(count);  // x dereferences
    cta.charge_shared_elems(3 * count);
    cta.charge_alu_uniform(2 * count);
    cta.charge_sync();
    cta.charge_sync();
  });
  double modeled = s1.modeled_ms;

  auto s2 = device.launch("cusp.spmv_coo_fixup", 1, kBlock, [&](vgpu::Cta& cta) {
    for (int i = 0; i < num_ctas; ++i) {
      if (carry_row[static_cast<std::size_t>(i)] >= 0) {
        y[static_cast<std::size_t>(carry_row[static_cast<std::size_t>(i)])] +=
            carry_val[static_cast<std::size_t>(i)];
      }
    }
    cta.charge_global(static_cast<std::size_t>(num_ctas) *
                      (sizeof(index_t) + sizeof(double)));
    cta.charge_alu_uniform(static_cast<std::size_t>(num_ctas));
  });
  modeled += s2.modeled_ms;
  return OpStats{modeled, wall.milliseconds()};
}

OpStats spadd(vgpu::Device& device, const CooD& a, const CooD& b, CooD& c) {
  MPS_CHECK(a.num_rows == b.num_rows && a.num_cols == b.num_cols);
  util::WallTimer wall;
  OpStats op;
  const std::size_t n =
      static_cast<std::size_t>(a.nnz()) + static_cast<std::size_t>(b.nnz());
  // Built locally and assigned to `c` only on success so an allocation
  // failure below leaves the caller's output untouched.
  CooD out(a.num_rows, a.num_cols);
  if (n == 0) {
    c = std::move(out);
    return op;
  }

  // Concatenate tuples into the intermediate matrix T (device temp).
  // Keys pack as row << col_bits | col so the radix sort touches the
  // minimum number of digits.
  const int col_bits = std::max(1, log2_ceil(static_cast<std::uint64_t>(
                                     std::max<index_t>(a.num_cols, 1))));
  const auto pack_tight = [col_bits](index_t row, index_t col) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << col_bits) |
           static_cast<std::uint32_t>(col);
  };
  vgpu::ScopedDeviceAlloc tmp(device.memory(),
                              n * (sizeof(std::uint64_t) + sizeof(double) +
                                   sizeof(std::uint32_t)));
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> perm(n);
  std::vector<double> vals(n);
  constexpr int kBlock = 256;
  const int cat_ctas = static_cast<int>(ceil_div(n, std::size_t{2048}));
  auto s0 = device.launch("cusp.spadd_concat", cat_ctas, kBlock, [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * 2048;
    const std::size_t hi = std::min(n, lo + 2048);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t an = static_cast<std::size_t>(a.nnz());
      if (i < an) {
        keys[i] = pack_tight(a.row[i], a.col[i]);
        vals[i] = a.val[i];
      } else {
        keys[i] = pack_tight(b.row[i - an], b.col[i - an]);
        vals[i] = b.val[i - an];
      }
      perm[i] = static_cast<std::uint32_t>(i);
    }
    cta.charge_global((hi - lo) * (3 * sizeof(index_t) + 2 * sizeof(double)));
  });
  op.modeled_ms += s0.modeled_ms;

  // Global lexicographic sort of the full intermediate — the O(k (|A|+|B|))
  // work the paper contrasts balanced path against.
  const int key_bits = std::min(
      64, log2_ceil(static_cast<std::uint64_t>(std::max<index_t>(a.num_rows, 1))) +
              col_bits + 1);
  auto sort_stats = primitives::device_radix_sort_pairs(
      device, "cusp.spadd_sort", std::span<std::uint64_t>(keys),
      std::span<std::uint32_t>(perm), key_bits);
  op.modeled_ms += sort_stats.modeled_ms;

  // Gather values into sorted order.
  std::vector<double> sorted_vals(n);
  auto s1 = device.launch("cusp.spadd_gather", cat_ctas, kBlock, [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * 2048;
    const std::size_t hi = std::min(n, lo + 2048);
    for (std::size_t i = lo; i < hi; ++i) sorted_vals[i] = vals[perm[i]];
    cta.charge_gather(hi - lo);
    cta.charge_global((hi - lo) * sizeof(double));
  });
  op.modeled_ms += s1.modeled_ms;

  // Reduce adjacent duplicates.
  auto red = primitives::device_reduce_by_key<std::uint64_t, double>(
      device, "cusp.spadd_reduce", keys, sorted_vals);
  op.modeled_ms += red.modeled_ms;

  out.reserve(red.keys.size());
  const std::uint64_t col_mask = (std::uint64_t{1} << col_bits) - 1;
  for (std::size_t i = 0; i < red.keys.size(); ++i) {
    out.push_back(static_cast<index_t>(red.keys[i] >> col_bits),
                  static_cast<index_t>(red.keys[i] & col_mask), red.vals[i]);
  }
  c = std::move(out);
  op.wall_ms = wall.milliseconds();
  return op;
}

OpStats spgemm(vgpu::Device& device, const CsrD& a, const CsrD& b, CsrD& c) {
  MPS_CHECK(a.num_cols == b.num_rows);
  util::WallTimer wall;
  OpStats op;

  // Per-nonzero product counts and their scan.
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(a.nnz()) + 1, 0);
  const auto a_rows = sparse::expand_row_indices(a);
  for (std::size_t k = 0; k < a.col.size(); ++k) {
    counts[k] = static_cast<std::uint64_t>(b.row_length(a.col[k]));
  }
  vgpu::ScopedDeviceAlloc scan_mem(device.memory(), counts.size() * sizeof(index_t));
  const std::uint64_t num_products = primitives::device_exclusive_scan(
      device, "cusp.esc_scan", std::span<const std::uint64_t>(counts),
      std::span<std::uint64_t>(counts));
  op.modeled_ms += device.log().back().modeled_ms;

  // ESC keeps the *entire* expanded intermediate in global memory:
  // key + value + permutation per product, plus the sort's ping-pong
  // buffer accounted inside device_radix_sort_pairs.
  const std::size_t n = static_cast<std::size_t>(num_products);
  vgpu::ScopedDeviceAlloc expand_mem(
      device.memory(),
      n * (sizeof(std::uint64_t) + sizeof(double) + sizeof(std::uint32_t)));
  std::vector<std::uint64_t> keys(n);
  std::vector<double> vals(n);
  std::vector<std::uint32_t> perm(n);

  const int col_bits = std::max(1, log2_ceil(static_cast<std::uint64_t>(
                                     std::max<index_t>(b.num_cols, 1))));
  const auto pack_tight = [col_bits](index_t row, index_t col) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << col_bits) |
           static_cast<std::uint32_t>(col);
  };
  constexpr int kBlock = 256;
  constexpr std::size_t kTile = 2048;
  const int exp_ctas =
      static_cast<int>(ceil_div(static_cast<std::size_t>(a.nnz()), kTile));
  auto s0 = device.launch("cusp.esc_expand", std::max(exp_ctas, 1), kBlock,
                          [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
    const std::size_t hi = std::min(static_cast<std::size_t>(a.nnz()), lo + kTile);
    std::vector<std::uint32_t> trips;
    trips.reserve(hi - lo);
    for (std::size_t k = lo; k < hi; ++k) {
      const index_t acol = a.col[k];
      const double aval = a.val[k];
      std::size_t out = counts[k];
      for (index_t kb = b.row_offsets[static_cast<std::size_t>(acol)];
           kb < b.row_offsets[static_cast<std::size_t>(acol) + 1]; ++kb, ++out) {
        keys[out] = pack_tight(a_rows[k], b.col[static_cast<std::size_t>(kb)]);
        vals[out] = aval * b.val[static_cast<std::size_t>(kb)];
        perm[out] = static_cast<std::uint32_t>(out);
      }
      trips.push_back(static_cast<std::uint32_t>(b.row_length(acol)));
    }
    // Thread-per-nonzero expansion: divergent over B row lengths.
    cta.charge_warp_divergent(trips);
    cta.charge_global((hi - lo) * (2 * sizeof(index_t) + sizeof(double)));
    std::size_t written = 0;
    for (std::size_t k = lo; k < hi; ++k)
      written += static_cast<std::size_t>(b.row_length(a.col[k]));
    cta.charge_gather(written);  // B row reads land scattered
    cta.charge_global(written * (sizeof(std::uint64_t) + sizeof(double) +
                                 sizeof(std::uint32_t)));
  });
  op.modeled_ms += s0.modeled_ms;

  // Global two-pass sort of all products (row then column bits).
  const int key_bits = std::min(
      64, log2_ceil(static_cast<std::uint64_t>(std::max<index_t>(a.num_rows, 1))) +
              col_bits + 1);
  auto sort_stats = primitives::device_radix_sort_pairs(
      device, "cusp.esc_sort", std::span<std::uint64_t>(keys),
      std::span<std::uint32_t>(perm), key_bits);
  op.modeled_ms += sort_stats.modeled_ms;

  std::vector<double> sorted_vals(n);
  const int g_ctas = static_cast<int>(ceil_div(n, kTile));
  auto s1 = device.launch("cusp.esc_gather", std::max(g_ctas, 1), kBlock,
                          [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
    const std::size_t hi = std::min(n, lo + kTile);
    for (std::size_t i = lo; i < hi; ++i) sorted_vals[i] = vals[perm[i]];
    cta.charge_gather(hi - lo);
    cta.charge_global((hi - lo) * sizeof(double));
  });
  op.modeled_ms += s1.modeled_ms;

  auto red = primitives::device_reduce_by_key<std::uint64_t, double>(
      device, "cusp.esc_reduce", keys, sorted_vals);
  op.modeled_ms += red.modeled_ms;

  CooD coo(a.num_rows, b.num_cols);
  coo.reserve(red.keys.size());
  const std::uint64_t col_mask = (std::uint64_t{1} << col_bits) - 1;
  for (std::size_t i = 0; i < red.keys.size(); ++i) {
    coo.push_back(static_cast<index_t>(red.keys[i] >> col_bits),
                  static_cast<index_t>(red.keys[i] & col_mask), red.vals[i]);
  }
  c = sparse::coo_to_csr(coo);
  op.wall_ms = wall.milliseconds();
  return op;
}

}  // namespace mps::baselines::cusplike
