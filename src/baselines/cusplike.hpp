#pragma once
// "Cusp" comparator: the open-source algorithms the paper benchmarks
// against (see Section IV):
//
//   * SpMV   — vectorized CSR: a fixed 32-lane warp per row,
//   * SpAdd  — global sort: concatenate COO tuples, radix-sort the whole
//              intermediate lexicographically, reduce duplicates,
//   * SpGEMM — ESC: expand every product to global memory, two-pass
//              global radix sort, compress (Bell, Dalton, Olson 2012).
//
// All three run on the virtual GPU with the same cost accounting as the
// merge kernels, so Figures 5/7/9 compare like against like.

#include <span>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::baselines::cusplike {

struct OpStats {
  double modeled_ms = 0.0;
  double wall_ms = 0.0;
};

/// y = A x, warp-per-row vectorized CSR.
OpStats spmv(vgpu::Device& device, const sparse::CsrD& a, std::span<const double> x,
             std::span<double> y);

/// y = A x over COO input (Cusp's flat "coo_flat" kernel): the same
/// nonzero-granularity decomposition as merge SpMV but with the row index
/// of every nonzero stored and streamed explicitly — the "one row entry
/// per nonzero" storage/traffic overhead the paper's Section III-A gives
/// as the reason to prefer CSR plus partition-time searches.  Input must
/// be sorted by row.
OpStats spmv_coo(vgpu::Device& device, const sparse::CooD& a,
                 std::span<const double> x, std::span<double> y);

/// C = A + B over COO inputs via global lexicographic sort + reduction.
/// Inputs must be canonical (sorted, unique).
OpStats spadd(vgpu::Device& device, const sparse::CooD& a, const sparse::CooD& b,
              sparse::CooD& c);

/// C = A x B via global expansion / sort / compression.  Throws
/// vgpu::DeviceOomError when the expanded intermediate exceeds device
/// memory (the paper's Dense case).
OpStats spgemm(vgpu::Device& device, const sparse::CsrD& a, const sparse::CsrD& b,
               sparse::CsrD& c);

}  // namespace mps::baselines::cusplike
