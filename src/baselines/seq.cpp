#include "baselines/seq.hpp"

#include <vector>

#include "util/common.hpp"

namespace mps::baselines::seq {

using sparse::CsrD;

void spmv(const CsrD& a, std::span<const double> x, std::span<double> y,
          vgpu::CpuCost* cost) {
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
  for (index_t r = 0; r < a.num_rows; ++r) {
    double acc = 0.0;
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      acc += a.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  if (cost) {
    const auto nnz = static_cast<std::uint64_t>(a.nnz());
    cost->charge_stream(nnz * (sizeof(index_t) + sizeof(double)));  // col+val
    cost->charge_random(nnz);                                       // x gathers
    cost->charge_stream(static_cast<std::uint64_t>(a.num_rows) *
                        (sizeof(index_t) + sizeof(double)));  // offsets + y
    cost->charge_ops(2 * nnz + static_cast<std::uint64_t>(a.num_rows));
  }
}

CsrD spadd(const CsrD& a, const CsrD& b, vgpu::CpuCost* cost) {
  MPS_CHECK(a.num_rows == b.num_rows && a.num_cols == b.num_cols);
  CsrD c(a.num_rows, a.num_cols);
  c.col.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  c.val.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (index_t r = 0; r < a.num_rows; ++r) {
    index_t i = a.row_offsets[static_cast<std::size_t>(r)];
    index_t j = b.row_offsets[static_cast<std::size_t>(r)];
    const index_t ie = a.row_offsets[static_cast<std::size_t>(r) + 1];
    const index_t je = b.row_offsets[static_cast<std::size_t>(r) + 1];
    while (i < ie && j < je) {
      const index_t ca = a.col[static_cast<std::size_t>(i)];
      const index_t cb = b.col[static_cast<std::size_t>(j)];
      if (ca < cb) {
        c.col.push_back(ca);
        c.val.push_back(a.val[static_cast<std::size_t>(i++)]);
      } else if (cb < ca) {
        c.col.push_back(cb);
        c.val.push_back(b.val[static_cast<std::size_t>(j++)]);
      } else {
        c.col.push_back(ca);
        c.val.push_back(a.val[static_cast<std::size_t>(i++)] +
                        b.val[static_cast<std::size_t>(j++)]);
      }
    }
    for (; i < ie; ++i) {
      c.col.push_back(a.col[static_cast<std::size_t>(i)]);
      c.val.push_back(a.val[static_cast<std::size_t>(i)]);
    }
    for (; j < je; ++j) {
      c.col.push_back(b.col[static_cast<std::size_t>(j)]);
      c.val.push_back(b.val[static_cast<std::size_t>(j)]);
    }
    c.row_offsets[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(c.col.size());
  }
  if (cost) {
    const auto work = static_cast<std::uint64_t>(a.nnz() + b.nnz());
    cost->charge_stream(work * (sizeof(index_t) + sizeof(double)));  // read A,B
    cost->charge_stream(static_cast<std::uint64_t>(c.nnz()) *
                        (sizeof(index_t) + sizeof(double)));  // write C
    cost->charge_stream(3 * static_cast<std::uint64_t>(a.num_rows) * sizeof(index_t));
    cost->charge_ops(3 * work);  // compare + select + advance
  }
  return c;
}

CsrD spgemm(const CsrD& a, const CsrD& b, vgpu::CpuCost* cost) {
  MPS_CHECK(a.num_cols == b.num_rows);
  CsrD c(a.num_rows, b.num_cols);
  // Gustavson: dense accumulator of size num_cols(B) with a touched-list.
  std::vector<double> acc(static_cast<std::size_t>(b.num_cols), 0.0);
  std::vector<index_t> next(static_cast<std::size_t>(b.num_cols), -1);
  std::vector<index_t> touched;
  std::uint64_t products = 0;
  for (index_t r = 0; r < a.num_rows; ++r) {
    touched.clear();
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t acol = a.col[static_cast<std::size_t>(k)];
      const double aval = a.val[static_cast<std::size_t>(k)];
      for (index_t kb = b.row_offsets[static_cast<std::size_t>(acol)];
           kb < b.row_offsets[static_cast<std::size_t>(acol) + 1]; ++kb) {
        const index_t bcol = b.col[static_cast<std::size_t>(kb)];
        if (next[static_cast<std::size_t>(bcol)] == -1) {
          next[static_cast<std::size_t>(bcol)] = 1;
          touched.push_back(bcol);
        }
        acc[static_cast<std::size_t>(bcol)] +=
            aval * b.val[static_cast<std::size_t>(kb)];
        ++products;
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const index_t col : touched) {
      c.col.push_back(col);
      c.val.push_back(acc[static_cast<std::size_t>(col)]);
      acc[static_cast<std::size_t>(col)] = 0.0;
      next[static_cast<std::size_t>(col)] = -1;
    }
    c.row_offsets[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(c.col.size());
  }
  if (cost) {
    // Each product: stream B entry, random accumulator update; each output:
    // sort+write.  Row-wise sort of touched lists: ~ nnzC log(avg degree).
    cost->charge_stream(products * (sizeof(index_t) + sizeof(double)));
    cost->charge_random(products);
    cost->charge_ops(2 * products);
    const auto out = static_cast<std::uint64_t>(c.nnz());
    cost->charge_stream(out * (sizeof(index_t) + sizeof(double)));
    cost->charge_ops(out * 8);  // touched-list sort + compaction
    cost->charge_stream(static_cast<std::uint64_t>(a.nnz()) *
                        (sizeof(index_t) + sizeof(double)));
  }
  return c;
}

long long spgemm_num_products(const CsrD& a, const CsrD& b) {
  MPS_CHECK(a.num_cols == b.num_rows);
  long long total = 0;
  for (std::size_t k = 0; k < a.col.size(); ++k) {
    total += b.row_length(a.col[k]);
  }
  return total;
}

}  // namespace mps::baselines::seq
