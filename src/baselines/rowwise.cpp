#include "baselines/rowwise.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "primitives/scan.hpp"
#include "util/timer.hpp"

namespace mps::baselines::rowwise {

using sparse::CsrD;

namespace {

/// Threads cooperating per row: smallest power of two >= half the mean
/// row length, clamped to [1, 32] — the static heuristic vendor CSR
/// kernels use.
int pick_vector_width(const CsrD& a) {
  const double avg =
      a.num_rows == 0 ? 0.0
                      : static_cast<double>(a.nnz()) / static_cast<double>(a.num_rows);
  int w = 1;
  while (w < 32 && static_cast<double>(w) * 2.0 < avg) w *= 2;
  return w;
}

}  // namespace

OpStats spmv(vgpu::Device& device, const CsrD& a, std::span<const double> x,
             std::span<double> y) {
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
  util::WallTimer wall;
  constexpr int kBlock = 128;
  const int width = pick_vector_width(a);
  const int rows_per_cta = kBlock / width;
  const int num_ctas = static_cast<int>(
      ceil_div(static_cast<std::size_t>(std::max<index_t>(a.num_rows, 1)),
               static_cast<std::size_t>(rows_per_cta)));
  auto stats = device.launch("rowwise.spmv", num_ctas, kBlock, [&](vgpu::Cta& cta) {
    const index_t row_lo = static_cast<index_t>(cta.cta_id()) * rows_per_cta;
    const index_t row_hi = std::min<index_t>(a.num_rows, row_lo + rows_per_cta);
    // Each warp hosts 32/width row-groups executing in lockstep: its trip
    // count is the max of ceil(len/width) over its rows, and its memory
    // traffic is the sum over its rows.
    std::vector<std::uint32_t> lane_trips;
    lane_trips.reserve(static_cast<std::size_t>(row_hi - row_lo));
    std::vector<std::size_t> warp_bytes(
        static_cast<std::size_t>(ceil_div(kBlock, 32)), 0);
    for (index_t r = row_lo; r < row_hi; ++r) {
      const index_t lo = a.row_offsets[static_cast<std::size_t>(r)];
      const index_t hi = a.row_offsets[static_cast<std::size_t>(r) + 1];
      double acc = 0.0;
      for (index_t k = lo; k < hi; ++k) {
        acc += a.val[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
      }
      y[static_cast<std::size_t>(r)] = acc;
      const std::size_t len = static_cast<std::size_t>(hi - lo);
      cta.charge_flops(2 * len);  // one multiply-add per nonzero
      // One entry per *lane group*; expand to lanes for the divergence
      // model (width lanes share the same trip count).
      const auto trips = static_cast<std::uint32_t>(
          ceil_div(len, static_cast<std::size_t>(width)));
      for (int lane = 0; lane < width; ++lane) lane_trips.push_back(trips);
      // A width-lane group moves width x 32 B sectors per iteration, so
      // short rows pay a (smaller) transaction floor than the fixed-warp
      // kernel — the adaptive width is exactly this mitigation.
      const std::size_t row_bytes =
          round_up<std::size_t>(len * (sizeof(index_t) + sizeof(double)),
                                static_cast<std::size_t>(width) * 32) +
          len * cta.props().gather_sector_bytes;
      warp_bytes[static_cast<std::size_t>((r - row_lo) * width / 32) %
                 warp_bytes.size()] += row_bytes;
      cta.charge_global(sizeof(double) + 2 * sizeof(index_t));
    }
    cta.charge_warp_divergent(lane_trips);
    // The CTA holds its SM slot until the heaviest warp drains; a lone
    // warp sustains about a third of the SM's bandwidth.
    const std::size_t mx = *std::max_element(warp_bytes.begin(), warp_bytes.end());
    std::size_t sum_bytes = 0;
    for (std::size_t wb : warp_bytes) sum_bytes += wb;
    cta.charge_global(std::max(sum_bytes, 3 * mx));
    // Intra-group reduction.
    cta.charge_warp_iters(static_cast<std::size_t>(log2_ceil(
                              static_cast<std::uint64_t>(width)) + 1) *
                          static_cast<std::size_t>(row_hi - row_lo) / 4);
  });
  return OpStats{stats.modeled_ms, wall.milliseconds()};
}

OpStats spadd(vgpu::Device& device, const CsrD& a, const CsrD& b, CsrD& c) {
  MPS_CHECK(a.num_rows == b.num_rows && a.num_cols == b.num_cols);
  util::WallTimer wall;
  OpStats op;
  constexpr int kBlock = 128;
  // Built locally and assigned to `c` only on success so a mid-pass
  // failure leaves the caller's output untouched.
  CsrD out(a.num_rows, a.num_cols);
  if (a.num_rows == 0) {
    c = std::move(out);
    return op;
  }

  // Pass 1: per-row output sizes.  One WARP cooperates per row (csrgeam
  // style): the row pair is merged with an intra-warp merge path, the
  // row streams coalesced (short rows pay the 128 B transaction floor).
  // Uniform rows — even huge ones, like Dense — run near bandwidth;
  // heavy-tailed rows leave the CTA pinned behind its slowest warp,
  // which alone sustains only ~1/3 of the SM's bandwidth.  That is the
  // LP collapse the paper's Fig 8 shows.
  constexpr int kWarp = 32;
  constexpr int kRowsPerCta = kBlock / kWarp;
  const int num_ctas2 = static_cast<int>(ceil_div(
      static_cast<std::size_t>(a.num_rows), static_cast<std::size_t>(kRowsPerCta)));
  std::vector<index_t> sizes(static_cast<std::size_t>(a.num_rows) + 1, 0);
  auto charge_rows = [&](vgpu::Cta& cta, index_t row_lo, index_t row_hi,
                         bool write_c) {
    std::vector<std::uint32_t> lane_trips;
    lane_trips.reserve(static_cast<std::size_t>(row_hi - row_lo) * kWarp);
    std::size_t max_warp_bytes = 0, sum_bytes = 0;
    for (index_t r = row_lo; r < row_hi; ++r) {
      const std::size_t la = static_cast<std::size_t>(a.row_length(r));
      const std::size_t lb = static_cast<std::size_t>(b.row_length(r));
      const auto trips = static_cast<std::uint32_t>(
          3 * ceil_div(la + lb, static_cast<std::size_t>(kWarp)) + 2);
      for (int lane = 0; lane < kWarp; ++lane) lane_trips.push_back(trips);
      std::size_t row_bytes = round_up<std::size_t>(
          (la + lb) * (sizeof(index_t) + sizeof(double)), 128);
      if (write_c) {
        row_bytes += round_up<std::size_t>(
            static_cast<std::size_t>(out.row_length(r)) *
                (sizeof(index_t) + sizeof(double)),
            128);
      }
      max_warp_bytes = std::max(max_warp_bytes, row_bytes);
      sum_bytes += row_bytes;
    }
    cta.charge_warp_divergent(lane_trips);
    cta.charge_global(std::max(sum_bytes, 3 * max_warp_bytes));
    cta.charge_global(static_cast<std::size_t>(row_hi - row_lo) * 3 * sizeof(index_t));
  };

  auto s1 = device.launch("rowwise.spadd_count", num_ctas2, kBlock, [&](vgpu::Cta& cta) {
    const index_t row_lo = static_cast<index_t>(cta.cta_id()) * kRowsPerCta;
    const index_t row_hi = std::min<index_t>(a.num_rows, row_lo + kRowsPerCta);
    for (index_t r = row_lo; r < row_hi; ++r) {
      index_t i = a.row_offsets[static_cast<std::size_t>(r)];
      index_t j = b.row_offsets[static_cast<std::size_t>(r)];
      const index_t ie = a.row_offsets[static_cast<std::size_t>(r) + 1];
      const index_t je = b.row_offsets[static_cast<std::size_t>(r) + 1];
      index_t n = 0;
      while (i < ie && j < je) {
        const index_t ca = a.col[static_cast<std::size_t>(i)];
        const index_t cb = b.col[static_cast<std::size_t>(j)];
        i += (ca <= cb);
        j += (cb <= ca);
        ++n;
      }
      n += (ie - i) + (je - j);
      sizes[static_cast<std::size_t>(r)] = n;
    }
    charge_rows(cta, row_lo, row_hi, false);
  });
  op.modeled_ms += s1.modeled_ms;

  const index_t total = static_cast<index_t>(primitives::device_exclusive_scan(
      device, "rowwise.spadd_scan", std::span<const index_t>(sizes),
      std::span<index_t>(sizes)));
  op.modeled_ms += device.log().back().modeled_ms;
  std::copy(sizes.begin(), sizes.end(), out.row_offsets.begin());
  out.col.resize(static_cast<std::size_t>(total));
  out.val.resize(static_cast<std::size_t>(total));

  // Pass 2: fill.
  auto s2 = device.launch("rowwise.spadd_fill", num_ctas2, kBlock, [&](vgpu::Cta& cta) {
    const index_t row_lo = static_cast<index_t>(cta.cta_id()) * kRowsPerCta;
    const index_t row_hi = std::min<index_t>(a.num_rows, row_lo + kRowsPerCta);
    for (index_t r = row_lo; r < row_hi; ++r) {
      index_t i = a.row_offsets[static_cast<std::size_t>(r)];
      index_t j = b.row_offsets[static_cast<std::size_t>(r)];
      const index_t ie = a.row_offsets[static_cast<std::size_t>(r) + 1];
      const index_t je = b.row_offsets[static_cast<std::size_t>(r) + 1];
      std::size_t w = static_cast<std::size_t>(out.row_offsets[static_cast<std::size_t>(r)]);
      while (i < ie && j < je) {
        const index_t ca = a.col[static_cast<std::size_t>(i)];
        const index_t cb = b.col[static_cast<std::size_t>(j)];
        if (ca < cb) {
          out.col[w] = ca;
          out.val[w++] = a.val[static_cast<std::size_t>(i++)];
        } else if (cb < ca) {
          out.col[w] = cb;
          out.val[w++] = b.val[static_cast<std::size_t>(j++)];
        } else {
          out.col[w] = ca;
          out.val[w++] = a.val[static_cast<std::size_t>(i++)] +
                         b.val[static_cast<std::size_t>(j++)];
        }
      }
      for (; i < ie; ++i) {
        out.col[w] = a.col[static_cast<std::size_t>(i)];
        out.val[w++] = a.val[static_cast<std::size_t>(i)];
      }
      for (; j < je; ++j) {
        out.col[w] = b.col[static_cast<std::size_t>(j)];
        out.val[w++] = b.val[static_cast<std::size_t>(j)];
      }
    }
    charge_rows(cta, row_lo, row_hi, true);
  });
  op.modeled_ms += s2.modeled_ms;
  c = std::move(out);
  op.wall_ms = wall.milliseconds();
  return op;
}

OpStats spgemm(vgpu::Device& device, const CsrD& a, const CsrD& b, CsrD& c) {
  MPS_CHECK(a.num_cols == b.num_rows);
  util::WallTimer wall;
  OpStats op;
  constexpr int kBlock = 128;
  constexpr int kWarp = 32;
  constexpr int kRowsPerCta = kBlock / kWarp;
  // Built locally and assigned to `c` only on success so a mid-pass
  // failure leaves the caller's output untouched.
  CsrD out(a.num_rows, b.num_cols);
  if (a.num_rows == 0) {
    c = std::move(out);
    return op;
  }
  const int num_ctas = static_cast<int>(ceil_div(
      static_cast<std::size_t>(a.num_rows), static_cast<std::size_t>(kRowsPerCta)));

  std::vector<index_t> sizes(static_cast<std::size_t>(a.num_rows) + 1, 0);

  // Hash-table accumulation per row; the kernel body is shared between the
  // count pass and the fill pass (vendor csrgemm's two-phase structure).
  auto process = [&](vgpu::Cta& cta, bool fill) {
    const index_t row_lo = static_cast<index_t>(cta.cta_id()) * kRowsPerCta;
    const index_t row_hi = std::min<index_t>(a.num_rows, row_lo + kRowsPerCta);
    std::unordered_map<index_t, double> acc;
    std::vector<std::uint32_t> lane_trips_row;
    std::size_t max_row_bytes = 0, sum_row_bytes = 0;
    for (index_t r = row_lo; r < row_hi; ++r) {
      acc.clear();
      std::size_t flops = 0;
      for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
           k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
        const index_t acol = a.col[static_cast<std::size_t>(k)];
        const double aval = a.val[static_cast<std::size_t>(k)];
        for (index_t kb = b.row_offsets[static_cast<std::size_t>(acol)];
             kb < b.row_offsets[static_cast<std::size_t>(acol) + 1]; ++kb) {
          acc[b.col[static_cast<std::size_t>(kb)]] +=
              aval * b.val[static_cast<std::size_t>(kb)];
          ++flops;
        }
      }
      if (fill) {
        std::vector<std::pair<index_t, double>> row(acc.begin(), acc.end());
        std::sort(row.begin(), row.end());
        std::size_t w = static_cast<std::size_t>(
            out.row_offsets[static_cast<std::size_t>(r)]);
        for (const auto& [col, val] : row) {
          out.col[w] = col;
          out.val[w++] = val;
        }
      } else {
        sizes[static_cast<std::size_t>(r)] = static_cast<index_t>(acc.size());
      }
      // Warp cost (csrgemm-era): the accumulator hash table lives in
      // GLOBAL memory, so every product pays an uncoalesced probe plus an
      // update, and each row pays to initialize/flush its table slots —
      // a cost that scales with the ROW COUNT and the output density, not
      // with the useful work.  This is why the scheme's time decorrelates
      // from the product count (paper Fig 10b).
      const std::size_t uniques =
          fill ? static_cast<std::size_t>(out.row_length(r)) : acc.size();
      std::size_t row_bytes =
          flops * cta.props().gather_sector_bytes +          // B row gathers
          flops * 2 * cta.props().gather_sector_bytes +      // probe + update
          uniques * 2 * cta.props().gather_sector_bytes +    // init + flush
          round_up<std::size_t>(static_cast<std::size_t>(a.row_length(r)) *
                                    (sizeof(index_t) + sizeof(double)),
                                128);
      if (fill) {
        row_bytes += round_up<std::size_t>(
            uniques * (sizeof(index_t) + sizeof(double)), 128);
      }
      lane_trips_row.push_back(static_cast<std::uint32_t>(
          3 * ceil_div(flops, std::size_t{32}) + 24));
      max_row_bytes = std::max(max_row_bytes, row_bytes);
      sum_row_bytes += row_bytes;
      cta.charge_sync();
    }
    std::vector<std::uint32_t> lane_trips;
    lane_trips.reserve(lane_trips_row.size() * kWarp);
    for (const std::uint32_t tr : lane_trips_row) {
      for (int lane = 0; lane < kWarp; ++lane) lane_trips.push_back(tr);
    }
    cta.charge_warp_divergent(lane_trips);
    // The CTA is pinned by its heaviest row's warp (1/3 SM bandwidth).
    cta.charge_global(std::max(sum_row_bytes, 3 * max_row_bytes));
  };

  auto s1 = device.launch("rowwise.spgemm_count", num_ctas, kBlock,
                          [&](vgpu::Cta& cta) { process(cta, false); });
  op.modeled_ms += s1.modeled_ms;

  primitives::device_exclusive_scan(device, "rowwise.spgemm_scan",
                                    std::span<const index_t>(sizes),
                                    std::span<index_t>(sizes));
  op.modeled_ms += device.log().back().modeled_ms;
  std::copy(sizes.begin(), sizes.end(), out.row_offsets.begin());

  out.col.resize(static_cast<std::size_t>(out.row_offsets.back()));
  out.val.resize(out.col.size());
  auto s2 = device.launch("rowwise.spgemm_fill", num_ctas, kBlock,
                          [&](vgpu::Cta& cta) { process(cta, true); });
  op.modeled_ms += s2.modeled_ms;
  c = std::move(out);
  op.wall_ms = wall.milliseconds();
  return op;
}

}  // namespace mps::baselines::rowwise
