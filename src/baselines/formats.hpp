#pragma once
// SpMV kernels for the specialized formats (ELL / DIA / HYB) — the
// format-specialization axis the paper's introduction positions merge
// path against.  Each is excellent inside its applicability envelope and
// pays directly for structure outside it:
//
//   * ELL  — zero divergence and perfect coalescing, but the whole
//            padded rectangle is streamed: bandwidth scales with
//            max-row-width, not nnz;
//   * DIA  — densest possible access for stencils, no column indices at
//            all; inapplicable beyond a bounded diagonal count;
//   * HYB  — ELL head + COO tail, the Bell–Garland compromise;
//   * CMRS — fixed-height row strips streamed whole by one warp (Koza et
//            al.), built for the short-row regime where per-row kernels
//            pay a transaction floor on every row.

#include <span>

#include "sparse/cmrs.hpp"
#include "sparse/ell.hpp"
#include "vgpu/device.hpp"

namespace mps::baselines::formats {

struct OpStats {
  double modeled_ms = 0.0;
  double wall_ms = 0.0;
};

/// y = A x over ELL storage.
OpStats spmv_ell(vgpu::Device& device, const sparse::EllMatrix<double>& a,
                 std::span<const double> x, std::span<double> y);

/// y = A x over DIA storage.
OpStats spmv_dia(vgpu::Device& device, const sparse::DiaMatrix<double>& a,
                 std::span<const double> x, std::span<double> y);

/// y = A x over HYB storage (ELL pass + accumulating COO pass).
OpStats spmv_hyb(vgpu::Device& device, const sparse::HybMatrix<double>& a,
                 std::span<const double> x, std::span<double> y);

/// y = A x over CMRS storage (warp-per-strip; strips never split rows,
/// so accumulation stays in the canonical ascending-k row order).
OpStats spmv_cmrs(vgpu::Device& device, const sparse::CmrsMatrix<double>& a,
                  std::span<const double> x, std::span<double> y);

}  // namespace mps::baselines::formats
