#pragma once
// Umbrella header for the merge-path-sparse library.  Individual modules
// can be included directly to keep compile times down; this exists for
// quick prototyping and the examples.

// Utilities.
#include "util/common.hpp"     // IWYU pragma: export
#include "util/env.hpp"        // IWYU pragma: export
#include "util/error.hpp"      // IWYU pragma: export
#include "util/rng.hpp"        // IWYU pragma: export
#include "util/stats.hpp"      // IWYU pragma: export
#include "util/table.hpp"      // IWYU pragma: export
#include "util/timer.hpp"      // IWYU pragma: export

// Virtual GPU substrate.
#include "vgpu/cpu_model.hpp"       // IWYU pragma: export
#include "vgpu/device.hpp"          // IWYU pragma: export
#include "vgpu/fault_injector.hpp"  // IWYU pragma: export
#include "vgpu/memory_model.hpp"    // IWYU pragma: export
#include "vgpu/trace.hpp"           // IWYU pragma: export

// Sparse formats.
#include "sparse/compare.hpp"     // IWYU pragma: export
#include "sparse/convert.hpp"     // IWYU pragma: export
#include "sparse/coo.hpp"         // IWYU pragma: export
#include "sparse/csr.hpp"         // IWYU pragma: export
#include "sparse/ell.hpp"         // IWYU pragma: export
#include "sparse/io.hpp"          // IWYU pragma: export
#include "sparse/ops.hpp"         // IWYU pragma: export
#include "sparse/packed_key.hpp"  // IWYU pragma: export
#include "sparse/stats.hpp"       // IWYU pragma: export
#include "sparse/validate.hpp"    // IWYU pragma: export

// Resilience: integrity guards and the self-healing solver driver.
#include "resilience/integrity.hpp"  // IWYU pragma: export
#include "solver/resilient.hpp"      // IWYU pragma: export

// Parallel primitives.
#include "primitives/balanced_path.hpp"     // IWYU pragma: export
#include "primitives/cta_radix_sort.hpp"    // IWYU pragma: export
#include "primitives/device_merge.hpp"      // IWYU pragma: export
#include "primitives/device_radix_sort.hpp" // IWYU pragma: export
#include "primitives/merge_path.hpp"        // IWYU pragma: export
#include "primitives/reduce_by_key.hpp"     // IWYU pragma: export
#include "primitives/scan.hpp"              // IWYU pragma: export
#include "primitives/search.hpp"            // IWYU pragma: export
#include "primitives/segmented_reduce.hpp"  // IWYU pragma: export
#include "primitives/set_ops.hpp"           // IWYU pragma: export
#include "primitives/sorted_search.hpp"     // IWYU pragma: export

// The paper's kernels.
#include "core/spadd.hpp"            // IWYU pragma: export
#include "core/spgemm.hpp"           // IWYU pragma: export
#include "core/spgemm_adaptive.hpp"  // IWYU pragma: export
#include "core/spgemm_batched.hpp"   // IWYU pragma: export
#include "core/spgemm_chunked.hpp"   // IWYU pragma: export
#include "core/spmm.hpp"             // IWYU pragma: export
#include "core/spmv.hpp"             // IWYU pragma: export

// Comparators and workloads.
#include "baselines/cusplike.hpp"    // IWYU pragma: export
#include "baselines/formats.hpp"     // IWYU pragma: export
#include "baselines/rowwise.hpp"     // IWYU pragma: export
#include "baselines/seq.hpp"         // IWYU pragma: export
#include "workloads/generators.hpp"  // IWYU pragma: export
#include "workloads/suite.hpp"       // IWYU pragma: export

// Serving: concurrent batched sparse-op engine (docs/serving.md).
#include "serve/engine.hpp"      // IWYU pragma: export
#include "serve/plan_cache.hpp"  // IWYU pragma: export
#include "serve/trace.hpp"       // IWYU pragma: export
