#include "core/spgemm_chunked.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "resilience/integrity.hpp"
#include "sparse/validate.hpp"
#include "util/timer.hpp"

namespace mps::core::merge {

using sparse::CsrD;

namespace {

/// Conservative device footprint of one flat-pipeline invocation over a
/// chunk with `n_prod` intermediate products and `a_nnz` source nonzeros:
/// perm16 + head bits + the product-offset scan, the unique-tuple arrays
/// (bounded by n_prod) and the global sort's ping-pong buffers, plus a
/// fixed floor for the scan/sort scratch of tiny chunks.
std::size_t chunk_footprint(std::uint64_t n_prod, std::uint64_t a_nnz) {
  return static_cast<std::size_t>(40 * n_prod + 16 * a_nnz + 4096);
}

}  // namespace

ChunkedSpgemmStats spgemm_chunked(vgpu::Device& device, const CsrD& a,
                                  const CsrD& b, CsrD& c,
                                  const ChunkedConfig& cfg) {
  MPS_CHECK(a.num_cols == b.num_rows);
  if (sparse::strict_validation()) {
    sparse::validate_csr(a, "spgemm_chunked: A");
    sparse::validate_csr(b, "spgemm_chunked: B");
  }
  util::WallTimer wall;
  ChunkedSpgemmStats stats;

  // Per-row product prefix: P[r] = global product index of row r's first
  // intermediate product.  This is both the chunking measure and each
  // chunk's product_origin.
  const auto num_rows = static_cast<std::size_t>(a.num_rows);
  std::vector<std::uint64_t> P(num_rows + 1, 0);
  for (std::size_t r = 0; r < num_rows; ++r) {
    std::uint64_t row_products = 0;
    for (index_t k = a.row_offsets[r]; k < a.row_offsets[r + 1]; ++k) {
      row_products +=
          static_cast<std::uint64_t>(b.row_length(a.col[static_cast<std::size_t>(k)]));
    }
    P[r + 1] = P[r] + row_products;
  }
  stats.num_products = static_cast<long long>(P[num_rows]);

  const std::size_t free_bytes =
      device.memory().capacity() - device.memory().in_use();
  stats.chunk_budget_bytes =
      cfg.chunk_bytes > 0
          ? cfg.chunk_bytes
          : static_cast<std::size_t>(cfg.memory_fraction *
                                     static_cast<double>(free_bytes));

  // Built locally and assigned to `c` only on success (strong guarantee).
  CsrD out(a.num_rows, b.num_cols);

  std::size_t r0 = 0;
  while (r0 < num_rows) {
    // Greedy: extend the chunk while its estimated footprint fits the
    // budget; a row is the atomic unit, so a chunk always takes at least
    // one row even when that row alone overshoots (the per-chunk pipeline
    // then reports the genuine OOM).
    std::size_t r1 = r0 + 1;
    while (r1 < num_rows &&
           chunk_footprint(P[r1 + 1] - P[r0],
                           static_cast<std::uint64_t>(a.row_offsets[r1 + 1] -
                                                      a.row_offsets[r0])) <=
               stats.chunk_budget_bytes) {
      ++r1;
    }

    // Slice rows [r0, r1) of A: rebased offsets, shared column/value data.
    CsrD sub(static_cast<index_t>(r1 - r0), a.num_cols);
    const index_t k0 = a.row_offsets[r0];
    const index_t k1 = a.row_offsets[r1];
    for (std::size_t r = r0; r <= r1; ++r) {
      sub.row_offsets[r - r0] = a.row_offsets[r] - k0;
    }
    sub.col.assign(a.col.begin() + k0, a.col.begin() + k1);
    sub.val.assign(a.val.begin() + k0, a.val.begin() + k1);

    SpgemmConfig chunk_cfg = cfg.flat;
    chunk_cfg.product_origin = P[r0];
    CsrD c_sub;
    const SpgemmStats sub_stats = spgemm(device, sub, b, c_sub, chunk_cfg);

    stats.phases.setup_ms += sub_stats.phases.setup_ms;
    stats.phases.block_sort_ms += sub_stats.phases.block_sort_ms;
    stats.phases.global_sort_ms += sub_stats.phases.global_sort_ms;
    stats.phases.product_compute_ms += sub_stats.phases.product_compute_ms;
    stats.phases.product_reduce_ms += sub_stats.phases.product_reduce_ms;
    stats.phases.other_ms += sub_stats.phases.other_ms;

    // Stitch: chunk-local rows r - r0 land at global rows r.
    const index_t base = static_cast<index_t>(out.col.size());
    for (std::size_t r = r0; r < r1; ++r) {
      out.row_offsets[r + 1] = base + c_sub.row_offsets[r - r0 + 1];
    }
    out.col.insert(out.col.end(), c_sub.col.begin(), c_sub.col.end());
    out.val.insert(out.val.end(), c_sub.val.begin(), c_sub.val.end());

    ++stats.num_chunks;
    r0 = r1;
  }

  c = std::move(out);
  // Chunk outputs were checked inside spgemm; this covers the stitched
  // result under MPS_INTEGRITY_CHECK.
  if (resilience::integrity_checks_enabled()) {
    stats.phases.other_ms +=
        resilience::check_csr(device, c, "merge.spgemm_chunked: C");
  }
  stats.wall_ms = wall.milliseconds();
  return stats;
}

}  // namespace mps::core::merge
