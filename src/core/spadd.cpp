#include "core/spadd.hpp"

#include <vector>

#include "primitives/set_ops.hpp"
#include "resilience/integrity.hpp"
#include "sparse/convert.hpp"
#include "sparse/packed_key.hpp"
#include "sparse/validate.hpp"
#include "telemetry/span.hpp"
#include "util/timer.hpp"

namespace mps::core::merge {

using sparse::CooD;

namespace {

template <typename V>
SpaddStats spadd_impl(vgpu::Device& device, V alpha,
                      const sparse::CooMatrix<V>& a, V beta,
                      const sparse::CooMatrix<V>& b, sparse::CooMatrix<V>& c);

}  // namespace

SpaddStats spadd(vgpu::Device& device, const CooD& a, const CooD& b, CooD& c) {
  return spadd_impl<double>(device, 1.0, a, 1.0, b, c);
}

SpaddStats spadd(vgpu::Device& device, const sparse::CooMatrix<float>& a,
                 const sparse::CooMatrix<float>& b, sparse::CooMatrix<float>& c) {
  return spadd_impl<float>(device, 1.0f, a, 1.0f, b, c);
}

SpaddStats spadd_scaled(vgpu::Device& device, double alpha, const CooD& a,
                        double beta, const CooD& b, CooD& c) {
  return spadd_impl<double>(device, alpha, a, beta, b, c);
}

SpaddStats spadd_csr(vgpu::Device& device, const sparse::CsrD& a,
                     const sparse::CsrD& b, sparse::CsrD& c) {
  const CooD a_coo = sparse::csr_to_coo(a);
  const CooD b_coo = sparse::csr_to_coo(b);
  CooD c_coo;
  const auto stats = spadd(device, a_coo, b_coo, c_coo);
  c = sparse::coo_to_csr(c_coo);
  return stats;
}

namespace {

template <typename V>
SpaddStats spadd_impl(vgpu::Device& device, V alpha,
                      const sparse::CooMatrix<V>& a, V beta,
                      const sparse::CooMatrix<V>& b, sparse::CooMatrix<V>& c) {
  MPS_CHECK(a.num_rows == b.num_rows && a.num_cols == b.num_cols);
  MPS_CHECK_MSG(a.is_canonical() && b.is_canonical(),
                "merge::spadd requires canonical COO inputs");
  if (sparse::strict_validation()) {
    sparse::validate_coo(a, "spadd: A");
    sparse::validate_coo(b, "spadd: B");
  }
  util::WallTimer wall;
  SpaddStats stats;

  // Pack tuples into 64-bit keys whose integer order is Algorithm 1's
  // lexicographic tuple order.
  telemetry::ScopedSpan pack_span("spadd.pack");
  const std::size_t an = static_cast<std::size_t>(a.nnz());
  const std::size_t bn = static_cast<std::size_t>(b.nnz());
  vgpu::ScopedDeviceAlloc key_mem(device.memory(),
                                  (an + bn) * sizeof(std::uint64_t));
  std::vector<std::uint64_t> ka(an), kb(bn);
  const int pack_ctas =
      static_cast<int>(ceil_div(an + bn, std::size_t{2048})) + 1;
  auto s0 = device.launch("merge.spadd_pack", pack_ctas, 128, [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * 2048;
    const std::size_t hi = std::min(an + bn, lo + 2048);
    for (std::size_t i = lo; i < hi; ++i) {
      if (i < an) {
        ka[i] = sparse::pack_key(a.row[i], a.col[i]);
      } else {
        kb[i - an] = sparse::pack_key(b.row[i - an], b.col[i - an]);
      }
    }
    if (lo < hi) {
      cta.charge_global((hi - lo) * (2 * sizeof(index_t) + sizeof(std::uint64_t)));
      cta.charge_alu_uniform(hi - lo);
    }
  });
  stats.modeled_ms += s0.modeled_ms;
  pack_span.end();

  // Scaling folds into the value loads (free on real hardware too).
  std::vector<V> va_scaled, vb_scaled;
  std::span<const V> va = a.val;
  std::span<const V> vb = b.val;
  if (alpha != V{1}) {
    va_scaled.assign(a.val.begin(), a.val.end());
    for (auto& v : va_scaled) v *= alpha;
    va = va_scaled;
  }
  if (beta != V{1}) {
    vb_scaled.assign(b.val.begin(), b.val.end());
    for (auto& v : vb_scaled) v *= beta;
    vb = vb_scaled;
  }

  // Balanced-path union; matched tuples combine by addition.  For
  // well-formed inputs there are at most two duplicates per output tuple,
  // but the underlying set op handles arbitrary duplication (paper III-B).
  telemetry::ScopedSpan union_span("spadd.union");
  auto res = primitives::device_set_op<std::uint64_t, V>(
      device, ka, va, kb, vb, primitives::SetOp::kUnion,
      [](V x, V y) { return x + y; });
  stats.modeled_ms += res.modeled_ms;
  union_span.end();

  c = sparse::CooMatrix<V>(a.num_rows, a.num_cols);
  c.reserve(res.keys.size());
  for (std::size_t i = 0; i < res.keys.size(); ++i) {
    c.push_back(sparse::key_row(res.keys[i]), sparse::key_col(res.keys[i]),
                res.vals[i]);
  }
  // Output postcondition under MPS_INTEGRITY_CHECK: indices in range,
  // values finite.
  if (resilience::integrity_checks_enabled()) {
    stats.modeled_ms += resilience::check_coo(device, c, "merge.spadd: C");
  }
  stats.wall_ms = wall.milliseconds();
  return stats;
}

}  // namespace

}  // namespace mps::core::merge
