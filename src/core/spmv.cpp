#include "core/spmv.hpp"

#include "core/spmv_impl.hpp"

namespace mps::core::merge {

SpmvStats spmv(vgpu::Device& device, const sparse::CsrD& a,
               std::span<const double> x, std::span<double> y,
               const SpmvConfig& cfg) {
  return detail::spmv_impl<double>(device, a, x, y, cfg);
}

SpmvStats spmv(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
               std::span<const float> x, std::span<float> y,
               const SpmvConfig& cfg) {
  return detail::spmv_impl<float>(device, a, x, y, cfg);
}

}  // namespace mps::core::merge
