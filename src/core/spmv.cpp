#include "core/spmv.hpp"

#include "core/spmv_impl.hpp"

namespace mps::core::merge {

SpmvStats spmv(vgpu::Device& device, const sparse::CsrD& a,
               std::span<const double> x, std::span<double> y,
               const SpmvConfig& cfg) {
  return detail::spmv_impl<double>(device, a, x, y, cfg);
}

SpmvStats spmv(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
               std::span<const float> x, std::span<float> y,
               const SpmvConfig& cfg) {
  return detail::spmv_impl<float>(device, a, x, y, cfg);
}

SpmvPlan spmv_plan(vgpu::Device& device, const sparse::CsrD& a,
                   const SpmvConfig& cfg) {
  return detail::SpmvPlanAccess::build<double>(device, a, cfg);
}

SpmvPlan spmv_plan(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
                   const SpmvConfig& cfg) {
  return detail::SpmvPlanAccess::build<float>(device, a, cfg);
}

SpmvStats spmv_execute(vgpu::Device& device, const sparse::CsrD& a,
                       std::span<const double> x, std::span<double> y,
                       const SpmvPlan& plan) {
  return detail::SpmvPlanAccess::execute<double>(device, a, x, y, plan);
}

SpmvStats spmv_execute(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
                       std::span<const float> x, std::span<float> y,
                       const SpmvPlan& plan) {
  return detail::SpmvPlanAccess::execute<float>(device, a, x, y, plan);
}

}  // namespace mps::core::merge
