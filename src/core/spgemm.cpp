#include "core/spgemm.hpp"

#include <vector>

#include "primitives/cta_radix_sort.hpp"
#include "primitives/device_radix_sort.hpp"
#include "primitives/scan.hpp"
#include "primitives/search.hpp"
#include "resilience/integrity.hpp"
#include "sparse/convert.hpp"
#include "sparse/validate.hpp"
#include "telemetry/span.hpp"
#include "util/timer.hpp"

namespace mps::core::merge {

using sparse::CsrD;

namespace {

/// Tuple key packed as row << col_bits | col (tight packing keeps the
/// global radix sort at the minimum number of digit passes).
std::uint64_t pack_tuple(index_t row, index_t col, int col_bits) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << col_bits) |
         static_cast<std::uint32_t>(col);
}

/// CTA tiling aligned to the *global* product stream: boundaries sit at
/// multiples of tile in global coordinates, so the first CTA of a chunk
/// whose stream starts mid-tile (phase > 0) is short by `phase` products.
/// For phase == 0 this is the plain [cta * tile, (cta+1) * tile) tiling.
struct ProductTiling {
  std::size_t tile;
  std::size_t phase;   ///< product_origin % tile
  std::size_t n_prod;  ///< local product count
  int num_ctas() const {
    return static_cast<int>(ceil_div(n_prod + phase, tile));
  }
  std::size_t lo(int cta) const {
    const std::size_t bound = static_cast<std::size_t>(cta) * tile;
    return bound < phase ? 0 : std::min(n_prod, bound - phase);
  }
  std::size_t hi(int cta) const {
    return std::min(n_prod, (static_cast<std::size_t>(cta) + 1) * tile - phase);
  }
};

/// Walks the product range [p_lo, p_hi) of the expansion described by the
/// scan S, invoking fn(p, k, bk) with k the source nonzero of A and bk
/// the index into B's arrays.  Returns the number of distinct sources.
template <typename Fn>
std::size_t expand_products(const CsrD& a, const CsrD& b,
                            std::span<const std::uint64_t> S, std::size_t p_lo,
                            std::size_t p_hi, Fn&& fn) {
  const std::size_t a_nnz = static_cast<std::size_t>(a.nnz());
  std::size_t k = primitives::segment_of(S.first(a_nnz),
                                         static_cast<std::uint64_t>(p_lo));
  std::size_t sources = p_lo < p_hi ? 1 : 0;
  for (std::size_t p = p_lo; p < p_hi; ++p) {
    while (k + 1 < a_nnz && S[k + 1] <= p) {
      ++k;
      ++sources;
    }
    const index_t j = static_cast<index_t>(p - S[k]);
    const index_t acol = a.col[k];
    const index_t bk = b.row_offsets[static_cast<std::size_t>(acol)] + j;
    fn(p, k, static_cast<std::size_t>(bk));
  }
  return sources;
}

void charge_expansion(vgpu::Cta& cta, std::size_t a_nnz, std::size_t count,
                      std::size_t sources, bool with_values) {
  cta.charge_binary_search(a_nnz);
  // A segment (cols + offsets window) streams coalesced; each distinct
  // source dereferences one B row start (a sector), after which that
  // row's columns/values stream contiguously.
  cta.charge_global(sources * 2 * sizeof(index_t));
  cta.charge_gather(sources);
  cta.charge_global(count * sizeof(index_t));  // B columns, run-contiguous
  if (with_values) {
    cta.charge_global(sources * sizeof(double));  // A values
    cta.charge_global(count * sizeof(double));    // B values
  }
  cta.charge_alu_uniform(2 * count);
}

}  // namespace

SpgemmStats spgemm_symbolic(vgpu::Device& device, const CsrD& a, const CsrD& b,
                            SpgemmPlan& out_plan, const SpgemmConfig& cfg) {
  MPS_CHECK(a.num_cols == b.num_rows);
  if (sparse::strict_validation()) {
    sparse::validate_csr(a, "spgemm: A");
    sparse::validate_csr(b, "spgemm: B");
  }
  telemetry::ScopedSpan sym_span("spgemm.symbolic");
  util::WallTimer wall;
  SpgemmStats stats;
  // Built locally and moved into `out_plan` only on success: a throw at
  // any allocation site leaves the caller's plan untouched and releases
  // all device accounting via RAII (strong exception-safety guarantee).
  SpgemmPlan plan;
  plan.cfg_ = cfg;
  plan.pattern_ = CsrD(a.num_rows, b.num_cols);

  const std::size_t a_nnz = static_cast<std::size_t>(a.nnz());
  const std::size_t tile = static_cast<std::size_t>(cfg.tile());
  const int col_bits = std::max(1, log2_ceil(static_cast<std::uint64_t>(
                                    std::max<index_t>(b.num_cols, 1))));
  const int row_bits = std::max(1, log2_ceil(static_cast<std::uint64_t>(
                                    std::max<index_t>(a.num_rows, 1))));
  const int rank_bits = log2_ceil(tile);
  plan.col_bits_ = col_bits;
  plan.phase_ = static_cast<std::size_t>(cfg.product_origin % tile);

  // ======================= Setup =======================================
  // Row ids of A's nonzeros and the segmented product-offset scan S.
  telemetry::ScopedSpan setup_span("spgemm.setup");
  plan.a_rows_ = sparse::expand_row_indices(a);
  auto& S = plan.prod_offsets_;
  S.assign(a_nnz + 1, 0);
  for (std::size_t k = 0; k < a_nnz; ++k) {
    S[k] = static_cast<std::uint64_t>(b.row_length(a.col[k]));
  }
  {
    const int setup_ctas =
        static_cast<int>(ceil_div(a_nnz, std::size_t{2048})) + 1;
    auto s = device.launch("merge.spgemm_setup", setup_ctas, cfg.block_threads,
                           [&](vgpu::Cta& cta) {
      const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * 2048;
      const std::size_t hi = std::min(a_nnz, lo + 2048);
      if (lo >= hi) return;
      cta.charge_global((hi - lo) * 2 * sizeof(index_t));
      cta.charge_gather(hi - lo);  // B row-length dereferences
      cta.charge_global((hi - lo) * sizeof(index_t));
    });
    stats.phases.setup_ms += s.modeled_ms;
  }
  const std::uint64_t num_products = primitives::device_exclusive_scan(
      device, "merge.spgemm_setup_scan", std::span<const std::uint64_t>(S),
      std::span<std::uint64_t>(S));
  stats.phases.setup_ms += device.log().back().modeled_ms;
  plan.num_products_ = static_cast<long long>(num_products);
  stats.num_products = plan.num_products_;
  setup_span.end();
  if (num_products == 0) {
    plan.seg_offsets_.assign(1, 0);
    stats.wall_ms = wall.milliseconds();
    out_plan = std::move(plan);
    return stats;
  }

  const std::size_t n_prod = static_cast<std::size_t>(num_products);
  const ProductTiling tiling{tile, plan.phase_, n_prod};
  const int num_ctas = tiling.num_ctas();
  plan.num_ctas_ = num_ctas;

  // Intermediate state carried between the two expansion passes — this is
  // the scheme's device footprint (what overflows on Dense): a 16-bit
  // local permutation and a head-flag bit per product, plus the plan's
  // smaller symbolic arrays.
  plan.device_mem_.emplace(device.memory(),
                           n_prod * sizeof(std::uint16_t) + n_prod / 8 + 1 +
                               (a_nnz + 1) * sizeof(std::uint64_t));
  plan.perm16_.resize(n_prod);
  plan.head_.resize(n_prod);

  // The key-rank embedding fits when col_bits + rank_bits <= 32; otherwise
  // fall back to a key-value pair sort (paper: "when possible").  Sorting
  // full-width keys (the bit-limiting ablation) would scramble embedded
  // ranks, so it forces the pair sort as well.
  stats.used_pair_sort =
      cfg.force_pair_sort || cfg.force_full_bits || (col_bits + rank_bits > 32);
  const int sort_bits = cfg.force_full_bits ? 32 : col_bits;

  // Per-CTA locally-unique tuples, then their compaction offsets.
  std::vector<std::vector<std::uint64_t>> cta_uniques(
      static_cast<std::size_t>(num_ctas));
  plan.unique_offset_.assign(static_cast<std::size_t>(num_ctas) + 1, 0);

  // ======================= Block Sort ===================================
  telemetry::ScopedSpan block_sort_span("spgemm.block_sort");
  {
    primitives::CtaSortConfig sort_cfg;
    sort_cfg.block_threads = cfg.block_threads;
    sort_cfg.items_per_thread = cfg.items_per_thread;
    const bool pair_sort = stats.used_pair_sort;
    auto s = device.launch("merge.spgemm_blocksort", num_ctas, cfg.block_threads,
                           [&](vgpu::Cta& cta) {
      const std::size_t p_lo = tiling.lo(cta.cta_id());
      const std::size_t p_hi = tiling.hi(cta.cta_id());
      const std::size_t count = p_hi - p_lo;
      std::vector<index_t> rows(count), cols(count);
      const std::size_t sources = expand_products(
          a, b, S, p_lo, p_hi, [&](std::size_t p, std::size_t k, std::size_t bk) {
            rows[p - p_lo] = plan.a_rows_[k];
            cols[p - p_lo] = b.col[bk];
          });
      charge_expansion(cta, a_nnz, count, sources, /*with_values=*/false);

      // One bit-limited radix sort on column indices.  Expansion order is
      // (row-major, column-sorted within each source nonzero), so a single
      // STABLE pass on columns leaves equal (row, col) tuples adjacent.
      std::vector<std::uint32_t> order(count);
      if (!pair_sort) {
        // Keys-only: origin rank embedded above the column bits.
        std::vector<std::uint32_t> keys(count);
        for (std::size_t i = 0; i < count; ++i) {
          keys[i] = static_cast<std::uint32_t>(primitives::embed_rank<std::uint32_t>(
              static_cast<std::uint32_t>(cols[i]), i, col_bits));
        }
        primitives::cta_radix_sort_keys<std::uint32_t>(
            cta, keys, 0, std::min(sort_bits, 32), sort_cfg);
        for (std::size_t i = 0; i < count; ++i) {
          order[i] = static_cast<std::uint32_t>(
              primitives::extract_rank(keys[i], col_bits));
        }
      } else {
        std::vector<std::uint32_t> keys(count), vals(count);
        for (std::size_t i = 0; i < count; ++i) {
          keys[i] = static_cast<std::uint32_t>(cols[i]);
          vals[i] = static_cast<std::uint32_t>(i);
        }
        primitives::cta_radix_sort<std::uint32_t>(cta, keys, vals, 0,
                                                  std::min(sort_bits, 32), sort_cfg);
        order = std::move(vals);
      }

      // Flag locally-unique tuples, store the permutation (16-bit) and the
      // reduced tuple set.
      auto& uniques = cta_uniques[static_cast<std::size_t>(cta.cta_id())];
      for (std::size_t s_i = 0; s_i < count; ++s_i) {
        const std::size_t o = order[s_i];
        plan.perm16_[p_lo + s_i] = static_cast<std::uint16_t>(o);
        const bool is_head = s_i == 0 || rows[o] != rows[order[s_i - 1]] ||
                             cols[o] != cols[order[s_i - 1]];
        plan.head_[p_lo + s_i] = is_head ? 1 : 0;
        if (is_head) uniques.push_back(pack_tuple(rows[o], cols[o], col_bits));
      }
      plan.unique_offset_[static_cast<std::size_t>(cta.cta_id())] =
          static_cast<std::uint64_t>(uniques.size());
      // Permutation + flags + reduced tuples stream out.
      cta.charge_global(count * sizeof(std::uint16_t) + count / 8 + 1);
      cta.charge_global(uniques.size() * sizeof(std::uint64_t));
      cta.charge_shared_elems(count);
      cta.charge_sync();
    });
    stats.phases.block_sort_ms += s.modeled_ms;
  }
  const std::uint64_t num_unique = primitives::device_exclusive_scan(
      device, "merge.spgemm_unique_scan",
      std::span<const std::uint64_t>(plan.unique_offset_),
      std::span<std::uint64_t>(plan.unique_offset_));
  stats.phases.block_sort_ms += device.log().back().modeled_ms;
  stats.block_unique = static_cast<long long>(num_unique);
  block_sort_span.end();

  // ======================= Global Sort ==================================
  telemetry::ScopedSpan global_sort_span("spgemm.global_sort");
  vgpu::ScopedDeviceAlloc unique_mem(
      device.memory(),
      static_cast<std::size_t>(num_unique) *
          (sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t)));
  std::vector<std::uint64_t> keys(static_cast<std::size_t>(num_unique));
  std::vector<std::uint32_t> payload(static_cast<std::size_t>(num_unique));
  for (int i = 0; i < num_ctas; ++i) {
    std::copy(cta_uniques[static_cast<std::size_t>(i)].begin(),
              cta_uniques[static_cast<std::size_t>(i)].end(),
              keys.begin() +
                  static_cast<long>(plan.unique_offset_[static_cast<std::size_t>(i)]));
  }
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint32_t>(i);

  // The permutation-only sort of the reduced tuples (values still unformed).
  auto gsort = primitives::device_radix_sort_pairs(
      device, "merge.spgemm_globalsort", std::span<std::uint64_t>(keys),
      std::span<std::uint32_t>(payload), std::min(64, row_bits + col_bits));
  stats.phases.global_sort_ms += gsort.modeled_ms;

  // Inverse permutation: rank of each pre-sort unique tuple.
  plan.rank_.resize(payload.size());
  {
    const int rank_ctas =
        static_cast<int>(ceil_div(payload.size(), std::size_t{2048})) + 1;
    auto s = device.launch("merge.spgemm_rank", rank_ctas, cfg.block_threads,
                           [&](vgpu::Cta& cta) {
      const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * 2048;
      const std::size_t hi = std::min(payload.size(), lo + 2048);
      for (std::size_t i = lo; i < hi; ++i) {
        plan.rank_[payload[i]] = static_cast<std::uint32_t>(i);
      }
      if (lo < hi) {
        cta.charge_global((hi - lo) * sizeof(std::uint32_t));
        cta.charge_gather(hi - lo);
      }
    });
    stats.phases.global_sort_ms += s.modeled_ms;
  }
  global_sort_span.end();

  // ================== Other: pattern + segment assembly =================
  // The sorted key stream still holds cross-CTA duplicates; unique runs
  // become C's entries, and seg_offsets_ records each entry's run so the
  // numeric phase reduces with a plain segmented sum.
  {
    telemetry::ScopedSpan pattern_span("spgemm.pattern");
    CsrD& c = plan.pattern_;
    auto& seg = plan.seg_offsets_;
    const std::size_t m = keys.size();
    std::vector<std::uint64_t> out_keys;
    seg.clear();
    for (std::size_t i = 0; i < m; ++i) {
      if (i == 0 || keys[i] != keys[i - 1]) {
        out_keys.push_back(keys[i]);
        seg.push_back(static_cast<index_t>(i));
      }
    }
    seg.push_back(static_cast<index_t>(m));
    const std::size_t out_n = out_keys.size();
    c.col.resize(out_n);
    c.val.assign(out_n, 0.0);
    const std::uint64_t col_mask = (std::uint64_t{1} << col_bits) - 1;
    std::vector<index_t> row_counts(static_cast<std::size_t>(c.num_rows) + 1, 0);
    for (std::size_t i = 0; i < out_n; ++i) {
      const auto row = static_cast<index_t>(out_keys[i] >> col_bits);
      c.col[i] = static_cast<index_t>(out_keys[i] & col_mask);
      ++row_counts[static_cast<std::size_t>(row) + 1];
    }
    for (std::size_t r = 1; r < row_counts.size(); ++r) {
      row_counts[r] += row_counts[r - 1];
    }
    c.row_offsets = std::move(row_counts);

    const int csr_ctas = static_cast<int>(ceil_div(m, std::size_t{2048})) + 1;
    auto s = device.launch("merge.spgemm_pattern", csr_ctas, cfg.block_threads,
                           [&](vgpu::Cta& cta) {
      const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * 2048;
      const std::size_t hi = std::min(m, lo + 2048);
      if (lo >= hi) return;
      cta.charge_global((hi - lo) * sizeof(std::uint64_t));   // scan keys
      cta.charge_global((hi - lo) * 2 * sizeof(index_t));     // emit cols/segs
      cta.charge_alu_uniform(hi - lo);
    });
    stats.phases.other_ms += s.modeled_ms;
  }

  stats.wall_ms = wall.milliseconds();
  out_plan = std::move(plan);
  return stats;
}

double spgemm_numeric(vgpu::Device& device, const CsrD& a, const CsrD& b,
                      const SpgemmPlan& plan, CsrD& c) {
  if (!plan.valid()) {
    throw PlanMismatchError("spgemm_numeric requires a built plan");
  }
  MPS_CHECK(a.num_cols == b.num_rows);
  if (a.nnz() + 1 != static_cast<index_t>(plan.prod_offsets_.size())) {
    throw PlanMismatchError("matrix pattern does not match the plan: " +
                            std::to_string(a.nnz()) + " nonzeros vs " +
                            std::to_string(plan.prod_offsets_.size() - 1) +
                            " planned");
  }
  // The plan encodes the patterns: every source nonzero must still expand
  // to the same number of products (an O(nnz) check, negligible next to
  // the O(products) numeric work, and it catches same-size pattern drift).
  for (std::size_t k = 0; k < static_cast<std::size_t>(a.nnz()); ++k) {
    if (static_cast<std::uint64_t>(b.row_length(a.col[k])) !=
        plan.prod_offsets_[k + 1] - plan.prod_offsets_[k]) {
      throw PlanMismatchError(
          "matrix pattern does not match the plan: nonzero " +
          std::to_string(k) + " expands to a different product count");
    }
  }
  telemetry::ScopedSpan num_span("spgemm.numeric");
  double modeled_ms = 0.0;
  // Built locally and assigned to `c` only on success so a mid-pipeline
  // throw (an injected allocation failure, say) leaves the caller's
  // output untouched.
  CsrD out = plan.pattern_;
  if (plan.num_products_ == 0) {
    c = std::move(out);
    return modeled_ms;
  }

  const auto& cfg = plan.cfg_;
  const std::size_t tile = static_cast<std::size_t>(cfg.tile());
  const std::size_t n_prod = static_cast<std::size_t>(plan.num_products_);
  const std::size_t a_nnz = static_cast<std::size_t>(a.nnz());
  const std::size_t num_unique = plan.rank_.size();
  const ProductTiling tiling{tile, plan.phase_, n_prod};

  // ======================= Product Compute ==============================
  // Replay the expansion forming values, reduce within the CTA using the
  // stored permutation + flags, scatter partial sums into sorted order.
  telemetry::ScopedSpan products_span("spgemm.products");
  std::vector<double> sorted_vals(num_unique, 0.0);
  vgpu::ScopedDeviceAlloc vals_mem(device.memory(), num_unique * sizeof(double));
  auto s = device.launch("merge.spgemm_products", plan.num_ctas_,
                         cfg.block_threads, [&](vgpu::Cta& cta) {
    const std::size_t p_lo = tiling.lo(cta.cta_id());
    const std::size_t p_hi = tiling.hi(cta.cta_id());
    const std::size_t count = p_hi - p_lo;
    std::vector<double> vals(count);
    const std::size_t sources = expand_products(
        a, b, plan.prod_offsets_, p_lo, p_hi,
        [&](std::size_t p, std::size_t k, std::size_t bk) {
          vals[p - p_lo] = a.val[k] * b.val[bk];
        });
    charge_expansion(cta, a_nnz, count, sources, /*with_values=*/true);

    // Permuted segmented reduction (stored perm + head flags).
    std::size_t u = plan.unique_offset_[static_cast<std::size_t>(cta.cta_id())];
    double acc = 0.0;
    bool open = false;
    for (std::size_t s_i = 0; s_i < count; ++s_i) {
      if (plan.head_[p_lo + s_i]) {
        if (open) sorted_vals[plan.rank_[u++]] = acc;
        acc = 0.0;
        open = true;
      }
      acc += vals[plan.perm16_[p_lo + s_i]];
    }
    if (open) sorted_vals[plan.rank_[u++]] = acc;
    // Load perm/flags, shared-memory permute + segmented scan, scattered
    // stores of the reduced set.
    cta.charge_global(count * sizeof(std::uint16_t) + count / 8 + 1);
    cta.charge_shared_elems(3 * count);
    cta.charge_alu_uniform(2 * count);
    const std::size_t wrote =
        u - plan.unique_offset_[static_cast<std::size_t>(cta.cta_id())];
    cta.charge_gather(wrote);
    cta.charge_sync();
    cta.charge_sync();
  });
  modeled_ms += s.modeled_ms;
  products_span.end();

  // ======================= Product Reduce ===============================
  telemetry::ScopedSpan reduce_span("spgemm.reduce");
  // Cross-CTA duplicates are adjacent in sorted order; the plan's segment
  // offsets turn the reduction into a plain segmented sum into C.
  constexpr std::size_t kRedTile = 2048;
  const std::size_t out_n = out.col.size();
  const int red_ctas = static_cast<int>(ceil_div(out_n, kRedTile)) + 1;
  auto red = device.launch("merge.spgemm_reduce", red_ctas, cfg.block_threads,
                           [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kRedTile;
    const std::size_t hi = std::min(out_n, lo + kRedTile);
    if (lo >= hi) return;
    std::vector<std::uint32_t> lens;
    lens.reserve(hi - lo);
    std::size_t read = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      double acc = 0.0;
      for (index_t k = plan.seg_offsets_[i]; k < plan.seg_offsets_[i + 1]; ++k) {
        acc += sorted_vals[static_cast<std::size_t>(k)];
      }
      out.val[i] = acc;
      const auto len = static_cast<std::uint32_t>(plan.seg_offsets_[i + 1] -
                                                  plan.seg_offsets_[i]);
      lens.push_back(len);
      read += len;
    }
    cta.charge_warp_divergent(lens);
    cta.charge_global(read * sizeof(double) +
                      (hi - lo) * (sizeof(double) + 2 * sizeof(index_t)));
  });
  modeled_ms += red.modeled_ms;
  reduce_span.end();
  c = std::move(out);
  // Output postcondition under MPS_INTEGRITY_CHECK: offsets monotone,
  // columns in range, values finite.
  if (resilience::integrity_checks_enabled()) {
    modeled_ms += resilience::check_csr(device, c, "merge.spgemm: C");
  }
  return modeled_ms;
}

SpgemmStats spgemm(vgpu::Device& device, const CsrD& a, const CsrD& b, CsrD& c,
                   const SpgemmConfig& cfg) {
  util::WallTimer wall;
  SpgemmPlan plan;
  SpgemmStats stats = spgemm_symbolic(device, a, b, plan, cfg);
  if (stats.num_products == 0) {
    c = CsrD(a.num_rows, b.num_cols);
    stats.wall_ms = wall.milliseconds();
    return stats;
  }
  // Split the numeric time across the two Fig 11 phases using the kernel
  // log (the last two launches are products + reduce).
  const std::size_t log_before = device.log().size();
  spgemm_numeric(device, a, b, plan, c);
  for (std::size_t i = log_before; i < device.log().size(); ++i) {
    const auto& k = device.log()[i];
    if (k.name == "merge.spgemm_reduce") {
      stats.phases.product_reduce_ms += k.modeled_ms;
    } else {
      stats.phases.product_compute_ms += k.modeled_ms;
    }
  }
  stats.wall_ms = wall.milliseconds();
  return stats;
}

}  // namespace mps::core::merge
