#pragma once
// Merge-path SpMV (paper Section III-A).
//
// Parallelism is exposed at the granularity of individual nonzeros: every
// CTA is assigned exactly `tile` products regardless of row geometry.
// Three phases:
//
//   partition — one binary search per CTA locates the last row whose
//               offset precedes the CTA's first nonzero, stored in S;
//   reduction — each CTA loads its row-offset window into shared memory,
//               expands row indices, forms products, and runs a CTA-wide
//               segmented scan; complete rows are stored to y, the open
//               trailing row's partial sum goes to the carry buffer r;
//   update    — a segmented scan over r folds each CTA's carry into the
//               first row of the following CTA.
//
// Empty rows: the fast path requires none (carry row ids would collide);
// when A has empty rows the kernel compacts the row offsets first (the
// "slightly slower method" the paper describes) and runs the same kernel
// on the compacted view.

#include <span>

#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::core::merge {

struct SpmvConfig {
  int block_threads = 128;
  int items_per_thread = 7;  ///< statically tuned, paper Section III-A
  /// Force the empty-row compaction path even when not needed (testing).
  bool force_compaction = false;
  int tile() const { return block_threads * items_per_thread; }
};

struct SpmvStats {
  double partition_ms = 0.0;
  double reduce_ms = 0.0;
  double update_ms = 0.0;
  double compact_ms = 0.0;
  bool used_compaction = false;
  int num_ctas = 0;
  double modeled_ms() const {
    return partition_ms + reduce_ms + update_ms + compact_ms;
  }
  double wall_ms = 0.0;
};

/// y = A x.  `y` must hold A.num_rows elements (fully overwritten).
SpmvStats spmv(vgpu::Device& device, const sparse::CsrD& a,
               std::span<const double> x, std::span<double> y,
               const SpmvConfig& cfg = {});

/// Single-precision variant (the bandwidth-bound kernel runs ~2x faster
/// in fp32; the evaluation figures use fp64 as in the paper).
SpmvStats spmv(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
               std::span<const float> x, std::span<float> y,
               const SpmvConfig& cfg = {});

}  // namespace mps::core::merge
