#pragma once
// Merge-path SpMV (paper Section III-A).
//
// Parallelism is exposed at the granularity of individual nonzeros: every
// CTA is assigned exactly `tile` products regardless of row geometry.
// Three phases:
//
//   partition — one binary search per CTA locates the last row whose
//               offset precedes the CTA's first nonzero, stored in S;
//   reduction — each CTA loads its row-offset window into shared memory,
//               expands row indices, forms products, and runs a CTA-wide
//               segmented scan; complete rows are stored to y, the open
//               trailing row's partial sum goes to the carry buffer r;
//   update    — a segmented scan over r folds each CTA's carry into the
//               first row of the following CTA.
//
// Empty rows: the fast path requires none (carry row ids would collide);
// when A has empty rows the kernel compacts the row offsets first (the
// "slightly slower method" the paper describes) and runs the same kernel
// on the compacted view.
//
// Iterative workloads (CG, PageRank, AMG smoothing, Markov evolution)
// apply the same sparsity pattern thousands of times, so the partition
// and compaction phases — which depend only on the row offsets and the
// CTA geometry — can be computed once and reused: build an `SpmvPlan`
// with `spmv_plan`, then call `spmv_execute` per iteration.  Execution
// through a plan runs only the reduction + update phases and is
// bit-identical to one-shot `spmv` (the one-shot entry point itself runs
// through a transient plan).  A cheap pattern fingerprint
// (dims/nnz + row-offset checksum) rejects a mismatched matrix.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::core::merge {

struct SpmvConfig {
  int block_threads = 128;
  int items_per_thread = 7;  ///< statically tuned, paper Section III-A
  /// Force the empty-row compaction path even when not needed (testing).
  bool force_compaction = false;
  int tile() const { return block_threads * items_per_thread; }
};

struct SpmvStats {
  double partition_ms = 0.0;
  double reduce_ms = 0.0;
  double update_ms = 0.0;
  double compact_ms = 0.0;
  /// One-time setup cost (partition + compaction).  For one-shot spmv it
  /// equals partition_ms + compact_ms; for spmv_execute it reports the
  /// plan's build cost, which modeled_ms() deliberately excludes — the
  /// steady-state per-iteration cost is reduce_ms + update_ms.
  double plan_ms = 0.0;
  /// Modeled cost of integrity guards (resilience/integrity.hpp): plan
  /// state verification and output postcondition scans.  Exactly 0.0
  /// unless MPS_INTEGRITY_CHECK is set — the guarded path must cost
  /// nothing when guards are off (bench/plan_reuse_spmv.cpp asserts it).
  double integrity_ms = 0.0;
  bool used_compaction = false;
  /// True when the run reused an SpmvPlan: partition and compaction were
  /// not re-executed (their per-call stats above are zero).
  bool setup_amortized = false;
  int num_ctas = 0;
  double modeled_ms() const {
    return partition_ms + reduce_ms + update_ms + compact_ms + integrity_ms;
  }
  double wall_ms = 0.0;
};

/// y = A x.  `y` must hold A.num_rows elements (fully overwritten).
SpmvStats spmv(vgpu::Device& device, const sparse::CsrD& a,
               std::span<const double> x, std::span<double> y,
               const SpmvConfig& cfg = {});

/// Single-precision variant (the bandwidth-bound kernel runs ~2x faster
/// in fp32; the evaluation figures use fp64 as in the paper).
SpmvStats spmv(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
               std::span<const float> x, std::span<float> y,
               const SpmvConfig& cfg = {});

namespace detail {
struct SpmvPlanAccess;
}

/// Reusable execution metadata for merge SpMV: everything that depends
/// only on A's sparsity pattern and the CTA geometry — the per-CTA
/// partition fences, the empty-row compacted view (when needed), and the
/// carry-buffer sizing.  Amortizes the setup phases across repeated
/// applications of the same pattern; the arrays stay pinned in
/// (accounted) device memory for the plan's lifetime.
class SpmvPlan {
 public:
  SpmvPlan() = default;
  SpmvPlan(SpmvPlan&&) = default;
  SpmvPlan& operator=(SpmvPlan&&) = default;
  SpmvPlan(const SpmvPlan&) = delete;
  SpmvPlan& operator=(const SpmvPlan&) = delete;

  bool valid() const { return num_ctas_ >= 0; }
  int num_ctas() const { return num_ctas_; }
  bool used_compaction() const { return used_compaction_; }
  /// Modeled cost of the phases the plan ran at build time.
  double partition_ms() const { return partition_ms_; }
  double compact_ms() const { return compact_ms_; }
  /// Total one-time build cost (partition + compaction) — the work every
  /// spmv_execute call amortizes away.
  double plan_ms() const { return partition_ms_ + compact_ms_; }
  /// sizeof the value type the plan was built for (4 or 8).
  std::size_t value_bytes() const { return value_bytes_; }
  /// Exact heap footprint of the plan's arrays: the per-CTA partition
  /// fences plus the empty-row compacted view.  This is what a cached
  /// plan actually holds resident between executes — the serving engine's
  /// plan cache (src/serve/plan_cache.hpp) charges entries by it.
  std::size_t bytes() const {
    return (s_bounds_.capacity() + compact_offsets_.capacity() +
            compact_row_ids_.capacity()) *
           sizeof(index_t);
  }
  /// Accounted device footprint held until the plan is destroyed.
  std::size_t device_bytes() const {
    return device_mem_ ? device_mem_->bytes() : 0;
  }

 private:
  friend struct detail::SpmvPlanAccess;

  SpmvConfig cfg_;
  int num_ctas_ = -1;
  bool used_compaction_ = false;
  std::size_t value_bytes_ = 0;
  // Pattern fingerprint checked by spmv_execute.
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  index_t nnz_ = 0;
  std::uint64_t offsets_fingerprint_ = 0;
  /// Checksum over the plan's own arrays (s_bounds_ + compacted view),
  /// taken at build time *before* the pin registration exposes them to
  /// the fault layer.  spmv_execute re-verifies it under
  /// MPS_INTEGRITY_CHECK and raises IntegrityError on drift, so a bit
  /// flip landing in pinned plan state is detected instead of silently
  /// misrouting rows.
  std::uint64_t state_checksum_ = 0;
  double partition_ms_ = 0.0;
  double compact_ms_ = 0.0;
  std::vector<index_t> s_bounds_;         ///< per-CTA row fences, num_ctas + 1
  std::vector<index_t> compact_offsets_;  ///< nonempty-row view (compaction only)
  std::vector<index_t> compact_row_ids_;  ///< original row per compacted row
  std::optional<vgpu::ScopedDeviceAlloc> device_mem_;
};

/// Run the partition search (and empty-row compaction when needed) once
/// for A's pattern and pin the results.  The plan is tied to A's sparsity
/// pattern, the config's CTA geometry, and the value type of `a`.
SpmvPlan spmv_plan(vgpu::Device& device, const sparse::CsrD& a,
                   const SpmvConfig& cfg = {});
SpmvPlan spmv_plan(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
                   const SpmvConfig& cfg = {});

/// y = A x through a prebuilt plan: only the reduction + update phases
/// run.  A must match the plan's pattern fingerprint (dims, nnz,
/// row-offset checksum) — values may differ freely; a mismatch throws
/// std::logic_error instead of computing garbage.  Output is bit-identical
/// to one-shot spmv with the plan's config.
SpmvStats spmv_execute(vgpu::Device& device, const sparse::CsrD& a,
                       std::span<const double> x, std::span<double> y,
                       const SpmvPlan& plan);
SpmvStats spmv_execute(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
                       std::span<const float> x, std::span<float> y,
                       const SpmvPlan& plan);

}  // namespace mps::core::merge
