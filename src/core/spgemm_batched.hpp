#pragma once
// Batched merge SpGEMM — lifting the memory ceiling the paper reports.
//
// Section IV-C notes the flat scheme's weakness: "both the Cusp and Merge
// approaches required more physical memory than the resource constrained
// GPU could support" (the Dense case).  The fix production ESC pipelines
// adopted is batching: split the product-granularity intermediate into
// ranges that fit, run the flat pipeline per range, and combine the
// partial outputs — which is itself a balanced-path SpAdd, so the whole
// construction stays segmentation-oblivious.
//
// Batching by PRODUCT RANGE (not row range) keeps the decomposition flat:
// a batch boundary may fall inside a row, which the combining union
// handles like any other matched tuple.

#include "core/spgemm.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::core::merge {

struct BatchedSpgemmStats {
  int num_batches = 0;
  long long num_products = 0;
  double spgemm_ms = 0.0;   ///< flat pipeline time across batches
  double combine_ms = 0.0;  ///< balanced-path unions of partial outputs
  double wall_ms = 0.0;
  double modeled_ms() const { return spgemm_ms + combine_ms; }
};

/// C = A x B processing at most `max_products_per_batch` intermediate
/// products at a time (0 = choose from free device memory).  Functionally
/// identical to merge::spgemm; succeeds on instances whose monolithic
/// intermediate would overflow device memory, at the cost of the extra
/// combine passes.
BatchedSpgemmStats spgemm_batched(vgpu::Device& device, const sparse::CsrD& a,
                                  const sparse::CsrD& b, sparse::CsrD& c,
                                  long long max_products_per_batch = 0,
                                  const SpgemmConfig& cfg = {});

}  // namespace mps::core::merge
