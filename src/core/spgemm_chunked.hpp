#pragma once
// Chunked merge-path SpGEMM: the OOM-graceful fallback for the paper's
// Dense case, where the flat pipeline's intermediate product stream does
// not fit in device memory.
//
// A is split into contiguous whole-row chunks sized so each chunk's
// device footprint stays under a configurable budget; the flat merge
// pipeline runs per chunk and the per-chunk outputs are stitched into C.
//
// The stitched result is BITWISE identical to the flat path's:
//
//   * chunks are whole-row ranges, so every output tuple's intermediate
//     products live entirely inside one chunk — no partial sum ever
//     crosses a chunk boundary;
//   * each chunk passes its global product prefix as
//     SpgemmConfig::product_origin, aligning CTA tile boundaries to the
//     *global* product stream; the per-tuple partial-sum grouping (which
//     products each CTA reduces together) therefore matches flat
//     exactly, and floating-point sums follow the identical association
//     order.
//
// Throws vgpu::DeviceOomError only when a single row's expansion alone
// exceeds the budgetable memory (rows are the atomic unit).

#include <cstddef>

#include "core/spgemm.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::core::merge {

struct ChunkedConfig {
  SpgemmConfig flat;  ///< geometry forwarded to each chunk's pipeline
  /// Absolute per-chunk device budget in bytes; 0 derives the budget
  /// from free device memory via memory_fraction.
  std::size_t chunk_bytes = 0;
  /// Fraction of free device memory each chunk may claim (used when
  /// chunk_bytes == 0).  Below 1.0 leaves headroom for the sort's
  /// transient allocations being estimates, not exact charges.
  double memory_fraction = 0.5;
};

struct ChunkedSpgemmStats {
  int num_chunks = 0;
  long long num_products = 0;          ///< total across all chunks
  SpgemmPhases phases;                 ///< summed across chunks
  std::size_t chunk_budget_bytes = 0;  ///< the budget chunks were sized to
  double wall_ms = 0.0;
  double modeled_ms() const { return phases.total_ms(); }
};

/// C = A x B with bounded device footprint; bitwise identical to
/// spgemm().  Strong guarantee: on throw, device accounting is restored
/// and `c` is untouched.
ChunkedSpgemmStats spgemm_chunked(vgpu::Device& device, const sparse::CsrD& a,
                                  const sparse::CsrD& b, sparse::CsrD& c,
                                  const ChunkedConfig& cfg = {});

}  // namespace mps::core::merge
