#pragma once
// Adaptive SpGEMM — the paper's Section V future work, implemented.
//
// Sort-based SpGEMM pays for its obliviousness when the intermediate is
// huge relative to the output (Dense: near-zero duplicates per CTA, so
// the global pass sorts almost everything) or simply does not fit in
// device memory.  The adaptive driver estimates, from the setup scan
// alone (no extra passes):
//
//   * the intermediate's device footprint, and
//   * the expansion ratio num_products / |A| together with the mean
//     products-per-output-row density,
//
// and switches to the segmented row-wise scheme when the flat path would
// overflow memory or the density heuristic marks the instance dense-like.
// When the estimate is wrong in the optimistic direction — the flat path
// runs and still hits DeviceOomError — the driver retries with the
// bounded-footprint chunked pipeline (reason "oom-retry"), which is
// bitwise identical to flat.

#include "core/spgemm.hpp"
#include "core/spgemm_chunked.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::core::merge {

struct AdaptiveConfig {
  SpgemmConfig flat;
  /// Use the segmented path when estimated products-per-row exceeds this
  /// fraction of the output row width (dense-like detection).
  double density_threshold = 0.5;
  /// Use the segmented path when the flat path's temporaries would exceed
  /// this fraction of free device memory.
  double memory_fraction = 0.9;
  /// Chunk sizing for the oom-retry tier (its `flat` member is ignored;
  /// the adaptive `flat` config is forwarded).
  ChunkedConfig chunked;
};

struct AdaptiveStats {
  bool used_segmented = false;
  bool used_chunked = false;
  /// "flat" | "dense-like" | "memory" | "oom-retry"
  const char* reason = "flat";
  long long num_products = 0;
  double modeled_ms = 0.0;
  double wall_ms = 0.0;
  SpgemmStats flat_stats;            ///< populated when the flat path ran
  ChunkedSpgemmStats chunked_stats;  ///< populated on the oom-retry tier
};

/// C = A x B, choosing between the merge (flat), segmented row-wise, and
/// chunked merge schemes per instance.  Never throws DeviceOomError for
/// lack of temporary space — that is the point.
AdaptiveStats spgemm_adaptive(vgpu::Device& device, const sparse::CsrD& a,
                              const sparse::CsrD& b, sparse::CsrD& c,
                              const AdaptiveConfig& cfg = {});

}  // namespace mps::core::merge
