#include "core/spgemm_adaptive.hpp"

#include "baselines/rowwise.hpp"
#include "baselines/seq.hpp"
#include "util/timer.hpp"
#include "vgpu/memory_model.hpp"

namespace mps::core::merge {

using sparse::CsrD;

AdaptiveStats spgemm_adaptive(vgpu::Device& device, const CsrD& a, const CsrD& b,
                              CsrD& c, const AdaptiveConfig& cfg) {
  util::WallTimer wall;
  AdaptiveStats stats;
  stats.num_products = baselines::seq::spgemm_num_products(a, b);
  const auto n_prod = static_cast<std::size_t>(stats.num_products);

  // Footprint of the flat path's temporaries (see spgemm.cpp): perm16 +
  // head bits + S + the unique-tuple arrays (bounded by n_prod) + the
  // global sort's ping-pong buffer.
  const std::size_t flat_bytes =
      n_prod * (sizeof(std::uint16_t) + 2) +
      static_cast<std::size_t>(a.nnz() + 1) * sizeof(std::uint64_t) +
      n_prod / 4 * (sizeof(std::uint64_t) + sizeof(double));
  const std::size_t free_bytes =
      device.memory().capacity() - device.memory().in_use();

  const double rows = std::max<double>(1.0, static_cast<double>(a.num_rows));
  const double products_per_row = static_cast<double>(n_prod) / rows;
  const double density =
      products_per_row / std::max<double>(1.0, static_cast<double>(b.num_cols));

  if (flat_bytes >
      static_cast<std::size_t>(cfg.memory_fraction * static_cast<double>(free_bytes))) {
    stats.used_segmented = true;
    stats.reason = "memory";
  } else if (density > cfg.density_threshold) {
    stats.used_segmented = true;
    stats.reason = "dense-like";
  }

  if (stats.used_segmented) {
    const auto op = baselines::rowwise::spgemm(device, a, b, c);
    stats.modeled_ms = op.modeled_ms;
  } else {
    try {
      stats.flat_stats = spgemm(device, a, b, c, cfg.flat);
      stats.modeled_ms = stats.flat_stats.modeled_ms();
    } catch (const vgpu::DeviceOomError&) {
      // The prediction was optimistic; flat unwound cleanly (accounting
      // restored, c untouched), so retry with the bounded-footprint
      // chunked pipeline — bitwise identical to what flat would have
      // produced.
      ChunkedConfig chunk_cfg = cfg.chunked;
      chunk_cfg.flat = cfg.flat;
      stats.used_chunked = true;
      stats.reason = "oom-retry";
      stats.chunked_stats = spgemm_chunked(device, a, b, c, chunk_cfg);
      stats.modeled_ms = stats.chunked_stats.modeled_ms();
    }
  }
  stats.wall_ms = wall.milliseconds();
  return stats;
}

}  // namespace mps::core::merge
