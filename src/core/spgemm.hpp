#pragma once
// Merge-path SpGEMM (paper Section III-C, Figures 3 and 11).
//
// The intermediate product stream (one entry per FLOP of the expansion)
// is partitioned at product granularity: every CTA receives exactly
// `tile` products irrespective of the rows they came from.  Processing is
// split into the paper's phases:
//
//   Setup           — scan of |B_row(A.col[k])| over A's nonzeros -> S,
//                     the product-offset array (work = num_products);
//   Block Sort      — each CTA expands its products' (row, col) indices
//                     (values stay unformed, Fig 3's "x"), runs ONE
//                     bit-limited CTA radix sort on the column indices
//                     (origin rank embedded in the unused upper key bits
//                     when it fits, else a key-value sort), flags and
//                     stores the locally-unique tuples plus the 16-bit
//                     local permutation;
//   Global Sort     — device radix sort of the locally reduced tuples,
//                     computing only a permutation (still no values);
//   Product Compute — the expansion replays, forming products this time;
//                     the stored local permutation and head flags reduce
//                     them within the CTA and the global ranks scatter the
//                     partial sums into globally sorted order;
//   Product Reduce  — reduce-by-key over the sorted stream forms C;
//   Other           — row-pointer construction and misc memory ops.

#include <cstdint>
#include <optional>
#include <vector>

#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::core::merge {

struct SpgemmConfig {
  int block_threads = 128;
  int items_per_thread = 11;  ///< the Fig 4 CTA geometry (tile = 1408)
  /// Disable the keys-only permutation-embedding optimization (ablation).
  bool force_pair_sort = false;
  /// Disable bit-limiting: always sort full 32-bit columns (ablation).
  bool force_full_bits = false;
  /// Global product index of this instance's first product.  The CTA
  /// tiling is aligned so boundaries fall at multiples of tile() in the
  /// *global* product stream; spgemm_chunked passes each chunk's product
  /// prefix here so per-tuple partial-sum grouping — and therefore every
  /// floating-point sum — matches the flat path bit for bit.  Leave 0
  /// for standalone use.
  std::uint64_t product_origin = 0;
  int tile() const { return block_threads * items_per_thread; }
};

/// Per-phase modeled time; the components of the paper's Figure 11.
struct SpgemmPhases {
  double setup_ms = 0.0;
  double block_sort_ms = 0.0;
  double global_sort_ms = 0.0;
  double product_compute_ms = 0.0;
  double product_reduce_ms = 0.0;
  double other_ms = 0.0;
  double total_ms() const {
    return setup_ms + block_sort_ms + global_sort_ms + product_compute_ms +
           product_reduce_ms + other_ms;
  }
};

struct SpgemmStats {
  SpgemmPhases phases;
  long long num_products = 0;   ///< paper's work measure (Fig 10 x-axis)
  long long block_unique = 0;   ///< tuples surviving the CTA-level reduction
  bool used_pair_sort = false;  ///< permutation embedding did not fit
  double wall_ms = 0.0;
  double modeled_ms() const { return phases.total_ms(); }
};

/// C = A x B.  Throws vgpu::DeviceOomError when the intermediate exceeds
/// device memory (the paper's Dense case in Fig 9); on any throw, device
/// accounting is restored and `c` is untouched (strong guarantee) — see
/// spgemm_chunked.hpp for the bounded-footprint fallback.
SpgemmStats spgemm(vgpu::Device& device, const sparse::CsrD& a,
                   const sparse::CsrD& b, sparse::CsrD& c,
                   const SpgemmConfig& cfg = {});

/// Reusable symbolic state: everything that depends only on the sparsity
/// patterns of A and B.  Amortizes the setup/block-sort/global-sort work
/// across repeated multiplications with identical structure (the AMG and
/// graph-update pattern real SpGEMM libraries serve with their
/// symbolic/numeric split).  The plan pins its intermediate arrays in
/// (accounted) device memory for its lifetime.
class SpgemmPlan {
 public:
  SpgemmPlan() = default;
  SpgemmPlan(SpgemmPlan&&) = default;
  SpgemmPlan& operator=(SpgemmPlan&&) = default;
  SpgemmPlan(const SpgemmPlan&) = delete;
  SpgemmPlan& operator=(const SpgemmPlan&) = delete;

  bool valid() const { return num_products_ >= 0; }
  long long num_products() const { return num_products_; }
  index_t output_nnz() const { return pattern_.nnz(); }

 private:
  friend SpgemmStats spgemm_symbolic(vgpu::Device&, const sparse::CsrD&,
                                     const sparse::CsrD&, SpgemmPlan&,
                                     const SpgemmConfig&);
  friend double spgemm_numeric(vgpu::Device&, const sparse::CsrD&,
                               const sparse::CsrD&, const SpgemmPlan&,
                               sparse::CsrD&);

  SpgemmConfig cfg_;
  long long num_products_ = -1;
  int col_bits_ = 0;
  int num_ctas_ = 0;
  std::size_t phase_ = 0;  ///< product_origin % tile: first CTA's shortfall
  std::vector<std::uint64_t> prod_offsets_;   ///< S: per-A-nonzero scan
  std::vector<index_t> a_rows_;               ///< row id per A nonzero
  std::vector<std::uint16_t> perm16_;         ///< per-product local permutation
  std::vector<std::uint8_t> head_;            ///< per-product local head flag
  std::vector<std::uint64_t> unique_offset_;  ///< per-CTA base into uniques
  std::vector<std::uint32_t> rank_;           ///< global rank of each unique
  std::vector<index_t> seg_offsets_;          ///< C-entry -> sorted-stream range
  sparse::CsrD pattern_;                      ///< C's structure (values zeroed)
  std::optional<vgpu::ScopedDeviceAlloc> device_mem_;
};

/// Build the symbolic plan and C's sparsity pattern (c gets structure with
/// zero-initialized values via spgemm_numeric).  The returned stats cover
/// only the symbolic phases.
SpgemmStats spgemm_symbolic(vgpu::Device& device, const sparse::CsrD& a,
                            const sparse::CsrD& b, SpgemmPlan& plan,
                            const SpgemmConfig& cfg = {});

/// Numeric phase: recompute C's values for (possibly new) values of A and
/// B whose sparsity patterns match the plan's.  Returns modeled ms (the
/// product-compute + product-reduce cost only).  Throws PlanMismatchError
/// when the matrices' patterns drifted from the plan's.
double spgemm_numeric(vgpu::Device& device, const sparse::CsrD& a,
                      const sparse::CsrD& b, const SpgemmPlan& plan,
                      sparse::CsrD& c);

}  // namespace mps::core::merge
