#pragma once
// Templated implementation of merge-path SpMV (see spmv.hpp for the
// algorithm description).  Instantiated for double and float in spmv.cpp.
//
// The implementation is split along the plan/execute seam: plan building
// runs the pattern-only phases (empty-row compaction, CTA partition) and
// execution runs the value phases (reduction, carry update).  One-shot
// spmv builds a transient plan and executes it, so the plan path is
// bit-identical to one-shot by construction.

#include <vector>

#include "core/spmv.hpp"
#include "primitives/search.hpp"
#include "resilience/integrity.hpp"
#include "sparse/validate.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace mps::core::merge {

namespace detail {

inline namespace spmv_detail {

/// Row offsets restricted to nonempty rows plus the original row id of
/// each compacted row.
struct CompactView {
  std::vector<index_t> offsets;  ///< strictly increasing, size rows+1
  std::vector<index_t> row_ids;  ///< original row per compacted row
};

template <typename V>
CompactView compact_offsets(const sparse::CsrMatrix<V>& a) {
  CompactView v;
  v.offsets.reserve(static_cast<std::size_t>(a.num_rows) + 1);
  v.row_ids.reserve(static_cast<std::size_t>(a.num_rows));
  v.offsets.push_back(0);
  for (index_t r = 0; r < a.num_rows; ++r) {
    if (a.row_length(r) > 0) {
      v.offsets.push_back(a.row_offsets[static_cast<std::size_t>(r) + 1]);
      v.row_ids.push_back(r);
    }
  }
  return v;
}

/// FNV-1a over the raw row offsets: the cheap O(num_rows) pattern
/// checksum spmv_execute re-evaluates to reject a drifted matrix.
inline std::uint64_t offsets_fingerprint(std::span<const index_t> offsets) {
  std::uint64_t h = 1469598103934665603ull;
  for (const index_t v : offsets) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

/// Friend gateway into SpmvPlan's private state for the templated
/// build/execute implementations.
struct SpmvPlanAccess {
  /// Checksum over every array the plan owns; chained so a flip in any of
  /// them changes the result.
  static std::uint64_t state_checksum(const SpmvPlan& plan) {
    std::uint64_t h = resilience::checksum_span(
        std::span<const index_t>(plan.s_bounds_));
    h = resilience::checksum_span(
        std::span<const index_t>(plan.compact_offsets_), h);
    return resilience::checksum_span(
        std::span<const index_t>(plan.compact_row_ids_), h);
  }

  template <typename V>
  static SpmvPlan build(vgpu::Device& device, const sparse::CsrMatrix<V>& a,
                        const SpmvConfig& cfg) {
    telemetry::ScopedSpan span("spmv.plan_build");
    if (sparse::strict_validation()) sparse::validate_csr(a, "spmv: A");
    SpmvPlan plan;
    plan.cfg_ = cfg;
    plan.value_bytes_ = sizeof(V);
    plan.num_rows_ = a.num_rows;
    plan.num_cols_ = a.num_cols;
    plan.nnz_ = a.nnz();
    plan.offsets_fingerprint_ = offsets_fingerprint(a.row_offsets);
    const std::size_t nnz = static_cast<std::size_t>(a.nnz());
    if (nnz == 0) {
      plan.num_ctas_ = 0;  // valid; execute only clears y
      plan.state_checksum_ = state_checksum(plan);
      return plan;
    }

    // --- Empty-row detection / compaction (paper's adaptive switch) -----
    plan.used_compaction_ = cfg.force_compaction || a.has_empty_rows();
    if (plan.used_compaction_) {
      auto compact = compact_offsets(a);
      plan.compact_offsets_ = std::move(compact.offsets);
      plan.compact_row_ids_ = std::move(compact.row_ids);
      // A streaming pass over the offsets array builds the compacted view.
      const auto s = device.launch(
          "merge.spmv_compact", std::max(1, a.num_rows / 2048 + 1),
          cfg.block_threads, [&](vgpu::Cta& cta) {
            const std::size_t rows_per_cta = 2048;
            const std::size_t lo =
                static_cast<std::size_t>(cta.cta_id()) * rows_per_cta;
            const std::size_t hi =
                std::min(static_cast<std::size_t>(a.num_rows), lo + rows_per_cta);
            if (lo >= hi) return;
            cta.charge_global((hi - lo) * 3 * sizeof(index_t));
            cta.charge_alu_uniform(hi - lo);
          });
      plan.compact_ms_ = s.modeled_ms;
    }
    const std::span<const index_t> offsets =
        plan.used_compaction_ ? std::span<const index_t>(plan.compact_offsets_)
                              : std::span<const index_t>(a.row_offsets);
    const index_t num_seg_rows = static_cast<index_t>(offsets.size()) - 1;

    const std::size_t tile = static_cast<std::size_t>(cfg.tile());
    const int num_ctas = static_cast<int>(ceil_div(nnz, tile));
    plan.num_ctas_ = num_ctas;

    // --- Partition ------------------------------------------------------
    // S[i] = last row whose offset <= i * tile.
    plan.s_bounds_.assign(static_cast<std::size_t>(num_ctas) + 1, 0);
    auto& s_bounds = plan.s_bounds_;
    {
      const int fences = num_ctas + 1;
      const int part_ctas = static_cast<int>(
          ceil_div(static_cast<std::size_t>(fences),
                   static_cast<std::size_t>(cfg.block_threads)));
      const auto s = device.launch(
          "merge.spmv_partition", part_ctas, cfg.block_threads,
          [&](vgpu::Cta& cta) {
            const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) *
                                   static_cast<std::size_t>(cfg.block_threads);
            const std::size_t hi =
                std::min(static_cast<std::size_t>(fences),
                         lo + static_cast<std::size_t>(cfg.block_threads));
            for (std::size_t f = lo; f < hi; ++f) {
              const index_t target = static_cast<index_t>(std::min(f * tile, nnz));
              s_bounds[f] = static_cast<index_t>(primitives::segment_of(
                  offsets.subspan(0, static_cast<std::size_t>(num_seg_rows)),
                  target));
              cta.charge_binary_search(static_cast<std::size_t>(num_seg_rows));
            }
            cta.charge_global((hi - lo) * sizeof(index_t));
          });
      plan.partition_ms_ = s.modeled_ms;
    }

    // Checksum the plan's state *before* the pin below registers it with
    // the fault layer: a bit flip landing at pin time is then caught by
    // the execute-side verification instead of being baked in.
    plan.state_checksum_ = state_checksum(plan);

    // Pin the plan's arrays for its lifetime: partition fences, the
    // compacted view, and the carry buffer every execute reuses.  The
    // partition-fence storage is passed as the live window so armed
    // bit-flip faults land in real plan state (and only there — the rest
    // of the pinned byte total has no single contiguous backing array).
    const std::size_t pinned_bytes =
        (plan.s_bounds_.size() + plan.compact_offsets_.size() +
         plan.compact_row_ids_.size()) *
            sizeof(index_t) +
        static_cast<std::size_t>(num_ctas) * (sizeof(index_t) + sizeof(V));
    plan.device_mem_.emplace(device.memory(), pinned_bytes,
                             plan.s_bounds_.data(),
                             plan.s_bounds_.size() * sizeof(index_t));
    return plan;
  }

  template <typename V>
  static SpmvStats execute(vgpu::Device& device, const sparse::CsrMatrix<V>& a,
                           std::span<const V> x, std::span<V> y,
                           const SpmvPlan& plan) {
    if (!plan.valid()) {
      throw PlanMismatchError("spmv_execute requires a built plan");
    }
    if (plan.value_bytes_ != sizeof(V)) {
      throw PlanMismatchError("plan was built for a different value precision");
    }
    MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
    MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
    // Pattern-fingerprint guard: values may change between executes, the
    // structure may not.
    if (plan.num_rows_ != a.num_rows || plan.num_cols_ != a.num_cols ||
        plan.nnz_ != a.nnz() ||
        plan.offsets_fingerprint_ != offsets_fingerprint(a.row_offsets)) {
      throw PlanMismatchError("matrix pattern does not match the plan");
    }
    telemetry::ScopedSpan span("spmv.execute");
    util::WallTimer wall;
    SpmvStats stats;
    stats.setup_amortized = true;
    stats.plan_ms = plan.plan_ms();
    stats.used_compaction = plan.used_compaction_;
    stats.num_ctas = plan.num_ctas_;
    // Integrity guard (resilience/integrity.hpp): re-verify the plan's own
    // arrays against the build-time checksum before touching y, so a bit
    // flip in pinned plan state raises IntegrityError with the output
    // untouched.  Guards off ⇒ one getenv and a branch; no launches.
    const bool guards = resilience::integrity_checks_enabled();
    if (guards) {
      stats.integrity_ms += resilience::charge_guard_scan(
          device, (plan.s_bounds_.size() + plan.compact_offsets_.size() +
                   plan.compact_row_ids_.size()) *
                      sizeof(index_t));
      if (state_checksum(plan) != plan.state_checksum_) {
        resilience::integrity_failed(
            "spmv plan state drifted from its build-time checksum "
            "(rebuild the plan)");
      }
    }
    std::fill(y.begin(), y.begin() + a.num_rows, V{});
    const std::size_t nnz = static_cast<std::size_t>(a.nnz());
    if (nnz == 0) {
      stats.wall_ms = wall.milliseconds();
      return stats;
    }

    const SpmvConfig& cfg = plan.cfg_;
    const std::span<const index_t> offsets =
        plan.used_compaction_ ? std::span<const index_t>(plan.compact_offsets_)
                              : std::span<const index_t>(a.row_offsets);
    const std::span<const index_t> row_ids =
        plan.compact_row_ids_;  // empty => identity
    const index_t num_seg_rows = static_cast<index_t>(offsets.size()) - 1;
    const std::size_t tile = static_cast<std::size_t>(cfg.tile());
    const int num_ctas = plan.num_ctas_;
    const std::vector<index_t>& s_bounds = plan.s_bounds_;

    // --- Reduction ------------------------------------------------------
    // Carries: the open trailing row of each CTA (original row id,
    // partial sum).  The device-side buffer is pinned by the plan.
    std::vector<index_t> carry_row(static_cast<std::size_t>(num_ctas), -1);
    std::vector<V> carry_val(static_cast<std::size_t>(num_ctas), V{});
    {
      const auto s = device.launch(
          "merge.spmv_reduce", num_ctas, cfg.block_threads, [&](vgpu::Cta& cta) {
            const std::size_t p_lo = static_cast<std::size_t>(cta.cta_id()) * tile;
            const std::size_t p_hi = std::min(nnz, p_lo + tile);
            const index_t row_lo = s_bounds[static_cast<std::size_t>(cta.cta_id())];
            const index_t row_hi =
                s_bounds[static_cast<std::size_t>(cta.cta_id()) + 1];

            // Row-offset window staged through shared memory.
            auto shm_offsets = cta.shm().alloc<index_t>(
                static_cast<std::size_t>(row_hi - row_lo) + 2);
            (void)shm_offsets;
            cta.charge_global((static_cast<std::size_t>(row_hi - row_lo) + 2) *
                              sizeof(index_t));

            // Strided loads of column indices and values, x gathers,
            // blocked transpose, and the CTA-wide segmented scan.
            cta.charge_global((p_hi - p_lo) * (sizeof(index_t) + sizeof(V)));
            cta.charge_gather(p_hi - p_lo);
            cta.charge_shared_elems(3 * (p_hi - p_lo));
            cta.charge_alu_uniform(2 * (p_hi - p_lo));
            cta.charge_flops(2 * (p_hi - p_lo));  // one multiply-add per nnz
            cta.charge_sync();
            cta.charge_sync();

            // Functional reduction: walk rows covering [p_lo, p_hi).
            for (index_t r = row_lo; r <= row_hi && r < num_seg_rows; ++r) {
              const std::size_t seg_lo = std::max(
                  p_lo,
                  static_cast<std::size_t>(offsets[static_cast<std::size_t>(r)]));
              const std::size_t seg_hi = std::min(
                  p_hi, static_cast<std::size_t>(
                            offsets[static_cast<std::size_t>(r) + 1]));
              if (seg_lo >= seg_hi) continue;
              V acc{};
              for (std::size_t k = seg_lo; k < seg_hi; ++k) {
                acc += a.val[k] * x[static_cast<std::size_t>(a.col[k])];
              }
              const bool row_ends_here =
                  static_cast<std::size_t>(
                      offsets[static_cast<std::size_t>(r) + 1]) <= p_hi;
              const index_t out_row =
                  row_ids.empty() ? r : row_ids[static_cast<std::size_t>(r)];
              if (row_ends_here) {
                y[static_cast<std::size_t>(out_row)] += acc;
                cta.charge_global(sizeof(V));
              } else {
                carry_row[static_cast<std::size_t>(cta.cta_id())] = out_row;
                carry_val[static_cast<std::size_t>(cta.cta_id())] = acc;
                cta.charge_global(sizeof(V) + sizeof(index_t));
              }
            }
          });
      stats.reduce_ms = s.modeled_ms;
    }

    // --- Update (inter-CTA carry propagation) ---------------------------
    {
      const auto s = device.launch(
          "merge.spmv_update", 1, cfg.block_threads, [&](vgpu::Cta& cta) {
            // Canonical accumulation order: a CTA-spanning row received
            // its final segment in the reduce phase and its earlier
            // segments as carries, an addition order that depends on the
            // tile geometry.  The fixup instead rebuilds each spanning
            // row (exactly the rows with carry records) with one
            // ascending-k accumulation, so merge output is bitwise
            // identical to the sequential reference for every tile
            // config — the contract the autotuner's differential oracle
            // relies on.  The modeled cost is unchanged: it charges the
            // carry fold the GPU kernel performs.
            index_t prev = -1;
            for (int i = 0; i < num_ctas; ++i) {
              const index_t r = carry_row[static_cast<std::size_t>(i)];
              if (r < 0 || r == prev) continue;
              prev = r;
              V acc{};
              for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
                   k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
                acc += a.val[static_cast<std::size_t>(k)] *
                       x[static_cast<std::size_t>(
                           a.col[static_cast<std::size_t>(k)])];
              }
              cta.charge_flops(2 * static_cast<std::size_t>(
                                       a.row_length(r)));
              y[static_cast<std::size_t>(r)] = acc;
            }
            cta.charge_global(static_cast<std::size_t>(num_ctas) *
                              (sizeof(index_t) + sizeof(V)));
            cta.charge_shared_elems(static_cast<std::size_t>(num_ctas));
            cta.charge_alu_uniform(static_cast<std::size_t>(num_ctas));
          });
      stats.update_ms = s.modeled_ms;
    }
    // Output postcondition: y finite.  By this point y is written, so a
    // failure reports corrupted output rather than preserving it — that
    // is the guard's job (never return silently wrong data).
    if (guards) {
      stats.integrity_ms += resilience::check_finite(
          device,
          std::span<const V>(y.data(), static_cast<std::size_t>(a.num_rows)),
          "merge.spmv: y");
    }
    stats.wall_ms = wall.milliseconds();
    return stats;
  }
};

/// One-shot SpMV: a transient plan built and executed in place, with the
/// setup phases folded back into the per-call stats.
template <typename V>
SpmvStats spmv_impl(vgpu::Device& device, const sparse::CsrMatrix<V>& a,
                    std::span<const V> x, std::span<V> y, const SpmvConfig& cfg) {
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
  util::WallTimer wall;
  const SpmvPlan plan = SpmvPlanAccess::build(device, a, cfg);
  SpmvStats stats = SpmvPlanAccess::execute(device, a, x, y, plan);
  stats.partition_ms = plan.partition_ms();
  stats.compact_ms = plan.compact_ms();
  stats.plan_ms = plan.plan_ms();
  stats.setup_amortized = false;
  stats.wall_ms = wall.milliseconds();
  return stats;
}

}  // namespace detail

}  // namespace mps::core::merge
