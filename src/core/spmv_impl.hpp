#pragma once
// Templated implementation of merge-path SpMV (see spmv.hpp for the
// algorithm description).  Instantiated for double and float in spmv.cpp.

#include <vector>

#include "core/spmv.hpp"
#include "primitives/search.hpp"
#include "util/timer.hpp"

namespace mps::core::merge {

namespace detail {



inline namespace spmv_detail {

/// Row offsets restricted to nonempty rows plus the original row id of
/// each compacted row.
struct CompactView {
  std::vector<index_t> offsets;  ///< strictly increasing, size rows+1
  std::vector<index_t> row_ids;  ///< original row per compacted row
};

template <typename V>
CompactView compact_offsets(const sparse::CsrMatrix<V>& a) {
  CompactView v;
  v.offsets.reserve(static_cast<std::size_t>(a.num_rows) + 1);
  v.row_ids.reserve(static_cast<std::size_t>(a.num_rows));
  v.offsets.push_back(0);
  for (index_t r = 0; r < a.num_rows; ++r) {
    if (a.row_length(r) > 0) {
      v.offsets.push_back(a.row_offsets[static_cast<std::size_t>(r) + 1]);
      v.row_ids.push_back(r);
    }
  }
  return v;
}

}  // namespace

template <typename V>
SpmvStats spmv_impl(vgpu::Device& device, const sparse::CsrMatrix<V>& a,
                    std::span<const V> x, std::span<V> y, const SpmvConfig& cfg) {
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows));
  util::WallTimer wall;
  SpmvStats stats;
  std::fill(y.begin(), y.begin() + a.num_rows, 0.0);
  const std::size_t nnz = static_cast<std::size_t>(a.nnz());
  if (nnz == 0) {
    stats.wall_ms = wall.milliseconds();
    return stats;
  }

  // --- Empty-row detection / compaction (paper's adaptive switch) -------
  stats.used_compaction = cfg.force_compaction || a.has_empty_rows();
  CompactView compact;
  std::span<const index_t> offsets;
  std::span<const index_t> row_ids;  // empty => identity
  if (stats.used_compaction) {
    compact = compact_offsets(a);
    offsets = compact.offsets;
    row_ids = compact.row_ids;
    // A streaming pass over the offsets array builds the compacted view.
    const auto s = device.launch(
        "merge.spmv_compact", std::max(1, a.num_rows / 2048 + 1),
        cfg.block_threads, [&](vgpu::Cta& cta) {
          const std::size_t rows_per_cta = 2048;
          const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * rows_per_cta;
          const std::size_t hi =
              std::min(static_cast<std::size_t>(a.num_rows), lo + rows_per_cta);
          if (lo >= hi) return;
          cta.charge_global((hi - lo) * 3 * sizeof(index_t));
          cta.charge_alu_uniform(hi - lo);
        });
    stats.compact_ms = s.modeled_ms;
  } else {
    offsets = a.row_offsets;
  }
  const index_t num_seg_rows = static_cast<index_t>(offsets.size()) - 1;

  const std::size_t tile = static_cast<std::size_t>(cfg.tile());
  const int num_ctas = static_cast<int>(ceil_div(nnz, tile));
  stats.num_ctas = num_ctas;

  // --- Phase 1: partition ----------------------------------------------
  // S[i] = last row whose offset <= i * tile.
  vgpu::ScopedDeviceAlloc s_mem(device.memory(),
                                (static_cast<std::size_t>(num_ctas) + 1) *
                                    sizeof(index_t));
  std::vector<index_t> s_bounds(static_cast<std::size_t>(num_ctas) + 1);
  {
    const int fences = num_ctas + 1;
    const int part_ctas = static_cast<int>(
        ceil_div(static_cast<std::size_t>(fences),
                 static_cast<std::size_t>(cfg.block_threads)));
    const auto s = device.launch(
        "merge.spmv_partition", part_ctas, cfg.block_threads, [&](vgpu::Cta& cta) {
          const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) *
                                 static_cast<std::size_t>(cfg.block_threads);
          const std::size_t hi = std::min(static_cast<std::size_t>(fences),
                                          lo + static_cast<std::size_t>(cfg.block_threads));
          for (std::size_t f = lo; f < hi; ++f) {
            const index_t target = static_cast<index_t>(std::min(f * tile, nnz));
            s_bounds[f] = static_cast<index_t>(primitives::segment_of(
                offsets.subspan(0, static_cast<std::size_t>(num_seg_rows)),
                target));
            cta.charge_binary_search(static_cast<std::size_t>(num_seg_rows));
          }
          cta.charge_global((hi - lo) * sizeof(index_t));
        });
    stats.partition_ms = s.modeled_ms;
  }

  // --- Phase 2: reduction ------------------------------------------------
  // Carries: the open trailing row of each CTA (compacted row id, partial).
  vgpu::ScopedDeviceAlloc carry_mem(device.memory(),
                                    static_cast<std::size_t>(num_ctas) *
                                        (sizeof(index_t) + sizeof(V)));
  std::vector<index_t> carry_row(static_cast<std::size_t>(num_ctas), -1);
  std::vector<V> carry_val(static_cast<std::size_t>(num_ctas), 0.0);
  {
    const auto s = device.launch(
        "merge.spmv_reduce", num_ctas, cfg.block_threads, [&](vgpu::Cta& cta) {
          const std::size_t p_lo = static_cast<std::size_t>(cta.cta_id()) * tile;
          const std::size_t p_hi = std::min(nnz, p_lo + tile);
          const index_t row_lo = s_bounds[static_cast<std::size_t>(cta.cta_id())];
          const index_t row_hi = s_bounds[static_cast<std::size_t>(cta.cta_id()) + 1];

          // Row-offset window staged through shared memory.
          auto shm_offsets =
              cta.shm().alloc<index_t>(static_cast<std::size_t>(row_hi - row_lo) + 2);
          (void)shm_offsets;
          cta.charge_global((static_cast<std::size_t>(row_hi - row_lo) + 2) *
                            sizeof(index_t));

          // Strided loads of column indices and values, x gathers,
          // blocked transpose, and the CTA-wide segmented scan.
          cta.charge_global((p_hi - p_lo) * (sizeof(index_t) + sizeof(V)));
          cta.charge_gather(p_hi - p_lo);
          cta.charge_shared_elems(3 * (p_hi - p_lo));
          cta.charge_alu_uniform(2 * (p_hi - p_lo));
          cta.charge_sync();
          cta.charge_sync();

          // Functional reduction: walk rows covering [p_lo, p_hi).
          for (index_t r = row_lo; r <= row_hi && r < num_seg_rows; ++r) {
            const std::size_t seg_lo =
                std::max(p_lo, static_cast<std::size_t>(offsets[static_cast<std::size_t>(r)]));
            const std::size_t seg_hi =
                std::min(p_hi, static_cast<std::size_t>(offsets[static_cast<std::size_t>(r) + 1]));
            if (seg_lo >= seg_hi) continue;
            V acc{};
            for (std::size_t k = seg_lo; k < seg_hi; ++k) {
              acc += a.val[k] * x[static_cast<std::size_t>(a.col[k])];
            }
            const bool row_ends_here =
                static_cast<std::size_t>(offsets[static_cast<std::size_t>(r) + 1]) <= p_hi;
            const index_t out_row = row_ids.empty() ? r : row_ids[static_cast<std::size_t>(r)];
            if (row_ends_here) {
              y[static_cast<std::size_t>(out_row)] += acc;
              cta.charge_global(sizeof(V));
            } else {
              carry_row[static_cast<std::size_t>(cta.cta_id())] = out_row;
              carry_val[static_cast<std::size_t>(cta.cta_id())] = acc;
              cta.charge_global(sizeof(V) + sizeof(index_t));
            }
          }
        });
    stats.reduce_ms = s.modeled_ms;
  }

  // --- Phase 3: update (inter-CTA carry propagation) ---------------------
  {
    const auto s = device.launch("merge.spmv_update", 1, cfg.block_threads,
                                 [&](vgpu::Cta& cta) {
      for (int i = 0; i < num_ctas; ++i) {
        if (carry_row[static_cast<std::size_t>(i)] >= 0) {
          y[static_cast<std::size_t>(carry_row[static_cast<std::size_t>(i)])] +=
              carry_val[static_cast<std::size_t>(i)];
        }
      }
      cta.charge_global(static_cast<std::size_t>(num_ctas) *
                        (sizeof(index_t) + sizeof(V)));
      cta.charge_shared_elems(static_cast<std::size_t>(num_ctas));
      cta.charge_alu_uniform(static_cast<std::size_t>(num_ctas));
    });
    stats.update_ms = s.modeled_ms;
  }
  stats.wall_ms = wall.milliseconds();
  return stats;
}


}  // namespace detail

}  // namespace mps::core::merge
