#include "core/spgemm_batched.hpp"

#include <vector>

#include "core/spadd.hpp"
#include "resilience/integrity.hpp"
#include "sparse/convert.hpp"
#include "util/timer.hpp"

namespace mps::core::merge {

using sparse::CooD;
using sparse::CsrD;

namespace {

/// A restricted to the nonzero range [k_lo, k_hi): same shape, rows
/// clipped to the slice (a row straddling the cut appears partially in
/// two slices — the combining union re-assembles it).
CsrD slice_nonzeros(const CsrD& a, index_t k_lo, index_t k_hi) {
  CsrD s(a.num_rows, a.num_cols);
  s.col.assign(a.col.begin() + k_lo, a.col.begin() + k_hi);
  s.val.assign(a.val.begin() + k_lo, a.val.begin() + k_hi);
  for (index_t r = 0; r < a.num_rows; ++r) {
    const index_t hi = a.row_offsets[static_cast<std::size_t>(r) + 1];
    s.row_offsets[static_cast<std::size_t>(r) + 1] =
        std::clamp(hi, k_lo, k_hi) - k_lo;
  }
  return s;
}

}  // namespace

BatchedSpgemmStats spgemm_batched(vgpu::Device& device, const CsrD& a,
                                  const CsrD& b, CsrD& c,
                                  long long max_products_per_batch,
                                  const SpgemmConfig& cfg) {
  MPS_CHECK(a.num_cols == b.num_rows);
  util::WallTimer wall;
  BatchedSpgemmStats stats;

  // Per-nonzero product counts (the Setup scan, host-side for slicing).
  std::vector<long long> prods(static_cast<std::size_t>(a.nnz()));
  long long max_single = 0;
  for (std::size_t k = 0; k < prods.size(); ++k) {
    prods[k] = b.row_length(a.col[k]);
    stats.num_products += prods[k];
    max_single = std::max(max_single, prods[k]);
  }

  long long cap = max_products_per_batch;
  if (cap <= 0) {
    // Size batches to ~1/4 of free device memory at the flat pipeline's
    // ~4.5 bytes per product (perm16 + flags + reduced-tuple share).
    const auto free_bytes = static_cast<double>(device.memory().capacity() -
                                                device.memory().in_use());
    cap = static_cast<long long>(free_bytes * 0.25 / 4.5);
  }
  cap = std::max(cap, max_single);  // a single nonzero must always fit

  CooD acc;   // running union of batch outputs
  bool first = true;
  index_t k = 0;
  while (k < a.nnz() || first) {
    // Greedy: extend the slice while the product budget lasts.
    index_t k_end = k;
    long long batch_products = 0;
    while (k_end < a.nnz() &&
           batch_products + prods[static_cast<std::size_t>(k_end)] <= cap) {
      batch_products += prods[static_cast<std::size_t>(k_end)];
      ++k_end;
    }
    if (k_end == k && k < a.nnz()) ++k_end;  // defensive: always progress

    const CsrD a_slice = (k == 0 && k_end == a.nnz())
                             ? a
                             : slice_nonzeros(a, k, k_end);
    CsrD c_batch;
    const auto s = spgemm(device, a_slice, b, c_batch, cfg);
    stats.spgemm_ms += s.modeled_ms();
    ++stats.num_batches;

    if (first) {
      acc = sparse::csr_to_coo(c_batch);
      first = false;
    } else if (c_batch.nnz() > 0) {
      const CooD part = sparse::csr_to_coo(c_batch);
      CooD merged;
      stats.combine_ms += spadd(device, acc, part, merged).modeled_ms;
      acc = std::move(merged);
    }
    k = k_end;
    if (k >= a.nnz()) break;
  }

  c = sparse::coo_to_csr(acc);
  if (c.num_rows != a.num_rows || c.num_cols != b.num_cols) {
    c.num_rows = a.num_rows;
    c.num_cols = b.num_cols;
  }
  // Per-batch outputs were checked inside spgemm/spadd; this covers the
  // final combine + conversion under MPS_INTEGRITY_CHECK.  A single batch
  // delegates straight to spgemm, whose own postcondition already covered
  // the identical output — so the batched path keeps its cost-equality
  // contract with the monolithic kernel (combine_ms stays 0).
  if (stats.num_batches > 1 && resilience::integrity_checks_enabled()) {
    stats.combine_ms += resilience::check_csr(device, c, "merge.spgemm_batched: C");
  }
  stats.wall_ms = wall.milliseconds();
  return stats;
}

}  // namespace mps::core::merge
