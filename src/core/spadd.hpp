#pragma once
// Balanced-path SpAdd (paper Section III-B).
//
// Sparse matrix addition is formulated as a *set union* over (row, col)
// tuple keys (Algorithm 1's ordering packs into a 64-bit integer key).
// The two-phase scheme — count unique tuples / allocate / emit — is built
// on the balanced-path device set operation, so every CTA processes the
// same number of tuples no matter how the rows are segmented.

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::core::merge {

struct SpaddStats {
  double modeled_ms = 0.0;
  double wall_ms = 0.0;
};

/// C = A + B.  Inputs must be canonical COO (sorted by (row, col), no
/// duplicate tuples); the result is canonical.
SpaddStats spadd(vgpu::Device& device, const sparse::CooD& a, const sparse::CooD& b,
                 sparse::CooD& c);

/// Single-precision variant.
SpaddStats spadd(vgpu::Device& device, const sparse::CooMatrix<float>& a,
                 const sparse::CooMatrix<float>& b, sparse::CooMatrix<float>& c);

/// General linear combination C = alpha A + beta B (csrgeam semantics:
/// the pattern is the union of the inputs' patterns even when entries
/// cancel numerically).  Same balanced-path engine; the scaling rides in
/// the per-side value loads at no extra modeled cost.
SpaddStats spadd_scaled(vgpu::Device& device, double alpha, const sparse::CooD& a,
                        double beta, const sparse::CooD& b, sparse::CooD& c);

/// CSR convenience wrapper around spadd (converts at the boundary; the
/// conversion is not part of the modeled kernel time, matching the
/// paper's benchmarks which pre-stage COO inputs for Merge and Cusp).
SpaddStats spadd_csr(vgpu::Device& device, const sparse::CsrD& a,
                     const sparse::CsrD& b, sparse::CsrD& c);

}  // namespace mps::core::merge
