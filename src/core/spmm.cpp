#include "core/spmm.hpp"

#include <vector>

#include "primitives/search.hpp"
#include "resilience/integrity.hpp"
#include "util/timer.hpp"

namespace mps::core::merge {

using sparse::CsrD;

namespace {

template <typename V>
SpmmStats spmm_impl(vgpu::Device& device, const sparse::CsrMatrix<V>& a,
                    std::span<const V> x, index_t num_vectors, std::span<V> y) {
  MPS_CHECK(num_vectors > 0);
  MPS_CHECK(x.size() >= static_cast<std::size_t>(a.num_cols) *
                            static_cast<std::size_t>(num_vectors));
  MPS_CHECK(y.size() >= static_cast<std::size_t>(a.num_rows) *
                            static_cast<std::size_t>(num_vectors));
  util::WallTimer wall;
  SpmmStats stats;
  const std::size_t nv = static_cast<std::size_t>(num_vectors);
  const std::size_t nnz = static_cast<std::size_t>(a.nnz());
  if (nnz == 0) {
    std::fill(
        y.begin(),
        y.begin() + static_cast<long>(static_cast<std::size_t>(a.num_rows) * nv),
        V{});
    stats.wall_ms = wall.milliseconds();
    return stats;
  }

  constexpr int kBlock = 128;
  constexpr std::size_t kTile = 128 * 7;
  const int num_ctas = static_cast<int>(ceil_div(nnz, kTile));
  stats.num_ctas = num_ctas;

  // Carries hold one partial row of width num_vectors per CTA.  Allocated
  // (and accounted) before y is touched so an allocation failure leaves
  // the caller's output unmodified.
  std::vector<index_t> carry_row(static_cast<std::size_t>(num_ctas), -1);
  std::vector<V> carry_val(static_cast<std::size_t>(num_ctas) * nv, 0.0);
  vgpu::ScopedDeviceAlloc carry_mem(
      device.memory(),
      static_cast<std::size_t>(num_ctas) * (sizeof(index_t) + nv * sizeof(V)));
  std::fill(y.begin(),
            y.begin() + static_cast<long>(static_cast<std::size_t>(a.num_rows) * nv),
            V{});

  const std::span<const index_t> offsets = a.row_offsets;
  const std::size_t num_rows = static_cast<std::size_t>(a.num_rows);
  auto s = device.launch("merge.spmm", num_ctas, kBlock, [&](vgpu::Cta& cta) {
    const std::size_t p_lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
    const std::size_t p_hi = std::min(nnz, p_lo + kTile);
    const std::size_t row_lo =
        primitives::segment_of(offsets.subspan(0, num_rows),
                               static_cast<index_t>(p_lo));
    cta.charge_binary_search(num_rows);
    std::vector<V> acc(nv);
    for (std::size_t r = row_lo; r < num_rows; ++r) {
      const std::size_t seg_lo =
          std::max(p_lo, static_cast<std::size_t>(offsets[r]));
      const std::size_t seg_hi =
          std::min(p_hi, static_cast<std::size_t>(offsets[r + 1]));
      if (seg_lo >= seg_hi) {
        if (static_cast<std::size_t>(offsets[r]) >= p_hi) break;
        continue;
      }
      std::fill(acc.begin(), acc.end(), V{});
      for (std::size_t k = seg_lo; k < seg_hi; ++k) {
        const std::size_t col = static_cast<std::size_t>(a.col[k]);
        const V v = a.val[k];
        for (std::size_t j = 0; j < nv; ++j) acc[j] += v * x[col * nv + j];
      }
      const bool ends_here = static_cast<std::size_t>(offsets[r + 1]) <= p_hi;
      if (ends_here) {
        for (std::size_t j = 0; j < nv; ++j) y[r * nv + j] += acc[j];
      } else {
        carry_row[static_cast<std::size_t>(cta.cta_id())] = static_cast<index_t>(r);
        std::copy(acc.begin(), acc.end(),
                  carry_val.begin() +
                      static_cast<long>(static_cast<std::size_t>(cta.cta_id()) * nv));
      }
    }
    const std::size_t count = p_hi - p_lo;
    cta.charge_global(count * (sizeof(index_t) + sizeof(V)));
    // One X-row burst per nonzero: the first element is a gather, the
    // rest stream (this is SpMM's bandwidth advantage over nv SpMVs).
    cta.charge_gather(count);
    cta.charge_global(count * (nv - 1) * sizeof(V));
    cta.charge_shared_elems(3 * count * nv);
    cta.charge_alu_uniform(2 * count * nv);
    cta.charge_flops(2 * count * nv);  // one multiply-add per nnz per vector
    cta.charge_sync();
    cta.charge_sync();
  });
  stats.modeled_ms += s.modeled_ms;

  auto fix = device.launch("merge.spmm_update", 1, kBlock, [&](vgpu::Cta& cta) {
    // Canonical accumulation order (see merge.spmv_update): spanning rows
    // are rebuilt ascending-k so column j of Y stays bitwise identical to
    // spmv of right-hand side j under every batching decision.  Charges
    // model the carry fold the GPU kernel performs.
    index_t prev = -1;
    std::vector<V> acc(nv);
    for (int i = 0; i < num_ctas; ++i) {
      const index_t r = carry_row[static_cast<std::size_t>(i)];
      if (r < 0 || r == prev) continue;
      prev = r;
      std::fill(acc.begin(), acc.end(), V{});
      for (std::size_t k = static_cast<std::size_t>(
               offsets[static_cast<std::size_t>(r)]);
           k < static_cast<std::size_t>(offsets[static_cast<std::size_t>(r) + 1]);
           ++k) {
        const std::size_t col = static_cast<std::size_t>(a.col[k]);
        const V v = a.val[k];
        for (std::size_t j = 0; j < nv; ++j) acc[j] += v * x[col * nv + j];
      }
      for (std::size_t j = 0; j < nv; ++j) {
        y[static_cast<std::size_t>(r) * nv + j] = acc[j];
      }
      cta.charge_flops(
          2 *
          static_cast<std::size_t>(offsets[static_cast<std::size_t>(r) + 1] -
                                   offsets[static_cast<std::size_t>(r)]) *
          nv);
    }
    cta.charge_global(static_cast<std::size_t>(num_ctas) *
                      (sizeof(index_t) + nv * sizeof(V)));
    cta.charge_alu_uniform(static_cast<std::size_t>(num_ctas) * nv);
  });
  stats.modeled_ms += fix.modeled_ms;
  // Output postcondition under MPS_INTEGRITY_CHECK: all of Y finite.
  if (resilience::integrity_checks_enabled()) {
    stats.modeled_ms += resilience::check_finite(
        device, std::span<const V>(y.data(), num_rows * nv), "merge.spmm: y");
  }
  stats.wall_ms = wall.milliseconds();
  return stats;
}

}  // namespace

SpmmStats spmm(vgpu::Device& device, const CsrD& a, std::span<const double> x,
               index_t num_vectors, std::span<double> y) {
  return spmm_impl<double>(device, a, x, num_vectors, y);
}

SpmmStats spmm(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
               std::span<const float> x, index_t num_vectors,
               std::span<float> y) {
  return spmm_impl<float>(device, a, x, num_vectors, y);
}

}  // namespace mps::core::merge
