#pragma once
// Merge-path SpMM: Y = A X for a dense block of `num_vectors` right-hand
// sides (row-major X and Y).  Same flat nonzero decomposition as SpMV;
// each product row of the tile touches `num_vectors` consecutive values
// of X, so the gathers amortize into short coalesced bursts — the reason
// blocked SpMV is a standard library feature.

#include <span>

#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::core::merge {

struct SpmmStats {
  double modeled_ms = 0.0;
  double wall_ms = 0.0;
  int num_ctas = 0;
};

/// Y = A X.  X is row-major (A.num_cols x num_vectors); Y is row-major
/// (A.num_rows x num_vectors) and fully overwritten.
SpmmStats spmm(vgpu::Device& device, const sparse::CsrD& a,
               std::span<const double> x, index_t num_vectors,
               std::span<double> y);

/// Single-precision variant.
SpmmStats spmm(vgpu::Device& device, const sparse::CsrMatrix<float>& a,
               std::span<const float> x, index_t num_vectors,
               std::span<float> y);

}  // namespace mps::core::merge
