#pragma once
// Format conversions and structural transforms.

#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace mps::sparse {

/// COO -> CSR.  Input need not be sorted; output rows are column-sorted
/// and duplicates are preserved (use CooMatrix::canonicalize first if you
/// need uniqueness).
template <typename V>
CsrMatrix<V> coo_to_csr(const CooMatrix<V>& a) {
  MPS_CHECK(a.indices_in_bounds());
  CooMatrix<V> sorted = a;
  if (!sorted.is_sorted()) sorted.sort();
  CsrMatrix<V> out(a.num_rows, a.num_cols);
  out.col = sorted.col;
  out.val = sorted.val;
  for (index_t i = 0; i < sorted.nnz(); ++i) {
    ++out.row_offsets[static_cast<std::size_t>(sorted.row[static_cast<std::size_t>(i)]) + 1];
  }
  for (std::size_t r = 0; r < out.row_offsets.size() - 1; ++r) {
    out.row_offsets[r + 1] += out.row_offsets[r];
  }
  return out;
}

/// CSR -> COO (expanded row indices).
template <typename V>
CooMatrix<V> csr_to_coo(const CsrMatrix<V>& a) {
  CooMatrix<V> out(a.num_rows, a.num_cols);
  out.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      out.push_back(r, a.col[static_cast<std::size_t>(k)], a.val[static_cast<std::size_t>(k)]);
    }
  }
  return out;
}

/// Transpose in CSR (equivalently CSR<->CSC reinterpretation).
template <typename V>
CsrMatrix<V> transpose(const CsrMatrix<V>& a) {
  CsrMatrix<V> out(a.num_cols, a.num_rows);
  const std::size_t nnz = static_cast<std::size_t>(a.nnz());
  out.col.resize(nnz);
  out.val.resize(nnz);
  // Counting sort by column.
  for (std::size_t k = 0; k < nnz; ++k) {
    ++out.row_offsets[static_cast<std::size_t>(a.col[k]) + 1];
  }
  for (std::size_t c = 0; c < out.row_offsets.size() - 1; ++c) {
    out.row_offsets[c + 1] += out.row_offsets[c];
  }
  std::vector<index_t> cursor(out.row_offsets.begin(), out.row_offsets.end() - 1);
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t c = a.col[static_cast<std::size_t>(k)];
      const index_t dst = cursor[static_cast<std::size_t>(c)]++;
      out.col[static_cast<std::size_t>(dst)] = r;
      out.val[static_cast<std::size_t>(dst)] = a.val[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

/// Expanded row-index array for a CSR matrix (one row id per nonzero).
template <typename V>
std::vector<index_t> expand_row_indices(const CsrMatrix<V>& a) {
  std::vector<index_t> rows(static_cast<std::size_t>(a.nnz()));
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      rows[static_cast<std::size_t>(k)] = r;
    }
  }
  return rows;
}

}  // namespace mps::sparse
