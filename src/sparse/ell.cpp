#include "sparse/ell.hpp"

#include <algorithm>
#include <map>

#include "sparse/convert.hpp"

namespace mps::sparse {

EllMatrix<double> csr_to_ell(const CsrMatrix<double>& a, index_t width) {
  EllMatrix<double> e;
  e.num_rows = a.num_rows;
  e.num_cols = a.num_cols;
  index_t max_len = 0;
  for (index_t r = 0; r < a.num_rows; ++r) max_len = std::max(max_len, a.row_length(r));
  e.width = width < 0 ? max_len : width;
  MPS_CHECK_MSG(max_len <= e.width, "ELL width smaller than the longest row");
  const std::size_t cells =
      static_cast<std::size_t>(e.num_rows) * static_cast<std::size_t>(e.width);
  e.col.assign(cells, -1);
  e.val.assign(cells, 0.0);
  for (index_t r = 0; r < a.num_rows; ++r) {
    index_t j = 0;
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k, ++j) {
      const std::size_t cell = static_cast<std::size_t>(j) *
                                   static_cast<std::size_t>(e.num_rows) +
                               static_cast<std::size_t>(r);
      e.col[cell] = a.col[static_cast<std::size_t>(k)];
      e.val[cell] = a.val[static_cast<std::size_t>(k)];
    }
  }
  return e;
}

DiaMatrix<double> csr_to_dia(const CsrMatrix<double>& a, index_t max_diagonals) {
  DiaMatrix<double> d;
  d.num_rows = a.num_rows;
  d.num_cols = a.num_cols;
  std::map<index_t, index_t> diag_index;  // offset -> slot
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      diag_index.emplace(a.col[static_cast<std::size_t>(k)] - r, 0);
    }
  }
  MPS_CHECK_MSG(static_cast<index_t>(diag_index.size()) <= max_diagonals,
                "matrix needs too many diagonals for DIA");
  d.offsets.reserve(diag_index.size());
  index_t slot = 0;
  for (auto& [off, idx] : diag_index) {
    idx = slot++;
    d.offsets.push_back(off);
  }
  d.val.assign(diag_index.size() * static_cast<std::size_t>(a.num_rows), 0.0);
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t off = a.col[static_cast<std::size_t>(k)] - r;
      const std::size_t cell =
          static_cast<std::size_t>(diag_index[off]) *
              static_cast<std::size_t>(a.num_rows) +
          static_cast<std::size_t>(r);
      d.val[cell] = a.val[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

HybMatrix<double> csr_to_hyb(const CsrMatrix<double>& a,
                             double occupancy_threshold) {
  MPS_CHECK(occupancy_threshold > 0.0 && occupancy_threshold <= 1.0);
  HybMatrix<double> h;
  // Width heuristic: histogram of row lengths; K = largest width where the
  // fraction of rows still occupying column K meets the threshold.
  index_t max_len = 0;
  for (index_t r = 0; r < a.num_rows; ++r) max_len = std::max(max_len, a.row_length(r));
  std::vector<index_t> rows_with_at_least(static_cast<std::size_t>(max_len) + 2, 0);
  for (index_t r = 0; r < a.num_rows; ++r) {
    ++rows_with_at_least[static_cast<std::size_t>(a.row_length(r))];
  }
  for (index_t len = max_len; len > 0; --len) {
    rows_with_at_least[static_cast<std::size_t>(len) - 1] +=
        rows_with_at_least[static_cast<std::size_t>(len)];
  }
  index_t width = 0;
  for (index_t k = 1; k <= max_len; ++k) {
    if (static_cast<double>(rows_with_at_least[static_cast<std::size_t>(k)]) >=
        occupancy_threshold * static_cast<double>(std::max<index_t>(a.num_rows, 1))) {
      width = k;
    }
  }

  // Split: first `width` entries of each row to ELL, the rest to COO.
  CsrMatrix<double> head(a.num_rows, a.num_cols);
  h.coo = CooMatrix<double>(a.num_rows, a.num_cols);
  for (index_t r = 0; r < a.num_rows; ++r) {
    index_t j = 0;
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k, ++j) {
      if (j < width) {
        head.col.push_back(a.col[static_cast<std::size_t>(k)]);
        head.val.push_back(a.val[static_cast<std::size_t>(k)]);
      } else {
        h.coo.push_back(r, a.col[static_cast<std::size_t>(k)],
                        a.val[static_cast<std::size_t>(k)]);
      }
    }
    head.row_offsets[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(head.col.size());
  }
  h.ell = csr_to_ell(head, width);
  return h;
}

CsrMatrix<double> ell_to_csr(const EllMatrix<double>& a) {
  CooMatrix<double> coo(a.num_rows, a.num_cols);
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t j = 0; j < a.width; ++j) {
      const std::size_t cell = static_cast<std::size_t>(j) *
                                   static_cast<std::size_t>(a.num_rows) +
                               static_cast<std::size_t>(r);
      if (a.col[cell] >= 0) coo.push_back(r, a.col[cell], a.val[cell]);
    }
  }
  return coo_to_csr(coo);
}

CsrMatrix<double> dia_to_csr(const DiaMatrix<double>& a) {
  CooMatrix<double> coo(a.num_rows, a.num_cols);
  for (std::size_t d = 0; d < a.offsets.size(); ++d) {
    for (index_t r = 0; r < a.num_rows; ++r) {
      const index_t c = r + a.offsets[d];
      if (c < 0 || c >= a.num_cols) continue;
      const double v = a.val[d * static_cast<std::size_t>(a.num_rows) +
                             static_cast<std::size_t>(r)];
      if (v != 0.0) coo.push_back(r, c, v);
    }
  }
  return coo_to_csr(coo);
}

CsrMatrix<double> hyb_to_csr(const HybMatrix<double>& a) {
  auto csr = ell_to_csr(a.ell);
  auto coo = csr_to_coo(csr);
  for (index_t i = 0; i < a.coo.nnz(); ++i) {
    coo.push_back(a.coo.row[static_cast<std::size_t>(i)],
                  a.coo.col[static_cast<std::size_t>(i)],
                  a.coo.val[static_cast<std::size_t>(i)]);
  }
  coo.canonicalize();
  return coo_to_csr(coo);
}

}  // namespace mps::sparse
