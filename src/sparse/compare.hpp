#pragma once
// Structural and numerical comparison of sparse matrices (test support,
// but also part of the public API for validating user pipelines).

#include <cmath>
#include <string>

#include "sparse/convert.hpp"
#include "sparse/csr.hpp"

namespace mps::sparse {

struct CompareResult {
  bool equal = true;
  std::string detail;  ///< first difference, human-readable
};

/// Compare two CSR matrices entry-by-entry.  Structure must match exactly;
/// values must agree within `rtol * max(|a|,|b|) + atol` (SpGEMM schemes
/// reduce products in different orders, so exact equality is not expected).
template <typename V>
CompareResult compare_csr(const CsrMatrix<V>& a, const CsrMatrix<V>& b,
                          double rtol = 1e-10, double atol = 1e-12) {
  CompareResult res;
  auto fail = [&](std::string d) {
    res.equal = false;
    res.detail = std::move(d);
    return res;
  };
  if (a.num_rows != b.num_rows || a.num_cols != b.num_cols)
    return fail("shape mismatch");
  if (a.nnz() != b.nnz())
    return fail("nnz mismatch: " + std::to_string(a.nnz()) + " vs " +
                std::to_string(b.nnz()));
  for (index_t r = 0; r < a.num_rows; ++r) {
    if (a.row_offsets[static_cast<std::size_t>(r) + 1] !=
        b.row_offsets[static_cast<std::size_t>(r) + 1])
      return fail("row_offsets mismatch at row " + std::to_string(r));
  }
  for (std::size_t k = 0; k < a.col.size(); ++k) {
    if (a.col[k] != b.col[k])
      return fail("column mismatch at nnz " + std::to_string(k) + ": " +
                  std::to_string(a.col[k]) + " vs " + std::to_string(b.col[k]));
    const double av = static_cast<double>(a.val[k]);
    const double bv = static_cast<double>(b.val[k]);
    const double tol = rtol * std::max(std::abs(av), std::abs(bv)) + atol;
    if (std::abs(av - bv) > tol)
      return fail("value mismatch at nnz " + std::to_string(k) + ": " +
                  std::to_string(av) + " vs " + std::to_string(bv));
  }
  return res;
}

}  // namespace mps::sparse
