#pragma once
// Matrix Market (.mtx) I/O — the interchange format of the UFL collection
// the paper draws its test matrices from.  Supports `matrix coordinate
// real|integer|pattern general|symmetric`.
//
// Malformed input (truncated files, non-numeric tokens, dimension/nnz
// overflow past 32-bit indices, out-of-range 1-based indices, trailing
// garbage) raises mps::ParseError carrying the offending 1-based line;
// unopenable paths raise mps::IoError.

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace mps::sparse {

CooMatrix<double> read_matrix_market(std::istream& in);
CooMatrix<double> read_matrix_market_file(const std::string& path);

/// Symmetry annotation for the writer.  `kSymmetric` stores only the lower
/// triangle (row >= col) and requires the matrix to actually be symmetric —
/// every (r, c, v) with r != c must have a bitwise-identical (c, r, v)
/// mirror — raising InvalidInputError otherwise.  Values round-trip exactly:
/// doubles are written with enough digits that read-after-write is bitwise.
enum class MmSymmetry { kGeneral, kSymmetric };

void write_matrix_market(std::ostream& out, const CooMatrix<double>& a,
                         MmSymmetry symmetry = MmSymmetry::kGeneral);
void write_matrix_market_file(const std::string& path, const CooMatrix<double>& a,
                              MmSymmetry symmetry = MmSymmetry::kGeneral);

}  // namespace mps::sparse
