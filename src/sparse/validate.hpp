#pragma once
// Structural validation for sparse inputs (opt-in strict mode).
//
// CsrMatrix::is_valid() and friends answer yes/no; these helpers throw
// InvalidInputError naming the first violated invariant and where, so a
// serving layer can log something actionable instead of "false".
//
// Kernels call validate-at-entry only under strict mode
// (MPS_STRICT_VALIDATE=1): validation is O(nnz), which is the same order
// as SpMV itself, so it must stay opt-in for production hot paths.
//
// MPS_STRICT_VALIDATE=2 additionally rejects non-finite values (NaN/Inf)
// at kernel entry, reporting the first offending (row, col) — the cheap
// way to pin down *where* a poisoned matrix came from before it spreads
// through an iterative solve.

#include <cmath>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/error.hpp"

namespace mps::sparse {

/// True when MPS_STRICT_VALIDATE is set to a nonzero value.  Read per
/// call (kernel launches dwarf a getenv), so tests can toggle it.
bool strict_validation();

/// The numeric value of MPS_STRICT_VALIDATE (clamped to >= 0):
/// 0 = off, 1 = structural validation, 2 = structural + reject
/// non-finite values at kernel entry.
int strict_validation_level();

namespace detail {

[[noreturn]] inline void validation_failed(const char* what,
                                           const std::string& detail) {
  throw InvalidInputError(std::string(what) + ": " + detail);
}

}  // namespace detail

/// Throws InvalidInputError unless `a` is a structurally valid CSR
/// matrix: offsets of size rows+1 starting at 0, monotone, matching
/// col/val sizes, and in-bounds strictly ascending columns per row.
/// `what` names the argument in the error ("spgemm: A").  With
/// `require_finite` (default: strict level >= 2), non-finite values are
/// rejected too, naming the first offending (row, col).
template <typename V>
void validate_csr(const CsrMatrix<V>& a, const char* what,
                  bool require_finite = strict_validation_level() >= 2) {
  using detail::validation_failed;
  if (a.num_rows < 0 || a.num_cols < 0) {
    validation_failed(what, "negative dimensions " + std::to_string(a.num_rows) +
                                " x " + std::to_string(a.num_cols));
  }
  if (a.row_offsets.size() != static_cast<std::size_t>(a.num_rows) + 1) {
    validation_failed(what, "row_offsets has " +
                                std::to_string(a.row_offsets.size()) +
                                " entries for " + std::to_string(a.num_rows) +
                                " rows (want rows + 1)");
  }
  if (a.row_offsets.front() != 0) {
    validation_failed(what, "row_offsets[0] = " +
                                std::to_string(a.row_offsets.front()) +
                                " (want 0)");
  }
  for (std::size_t i = 1; i < a.row_offsets.size(); ++i) {
    if (a.row_offsets[i] < a.row_offsets[i - 1]) {
      validation_failed(what, "row_offsets[" + std::to_string(i) + "] = " +
                                  std::to_string(a.row_offsets[i]) +
                                  " decreases from " +
                                  std::to_string(a.row_offsets[i - 1]));
    }
  }
  if (a.col.size() != static_cast<std::size_t>(a.nnz())) {
    validation_failed(what, "col has " + std::to_string(a.col.size()) +
                                " entries for nnz " + std::to_string(a.nnz()));
  }
  if (a.val.size() != a.col.size()) {
    validation_failed(what, "val has " + std::to_string(a.val.size()) +
                                " entries for nnz " + std::to_string(a.nnz()));
  }
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t c = a.col[static_cast<std::size_t>(k)];
      if (c < 0 || c >= a.num_cols) {
        validation_failed(what, "col[" + std::to_string(k) + "] = " +
                                    std::to_string(c) + " out of range [0, " +
                                    std::to_string(a.num_cols) + ") in row " +
                                    std::to_string(r));
      }
      if (k > a.row_offsets[static_cast<std::size_t>(r)] &&
          a.col[static_cast<std::size_t>(k - 1)] >= c) {
        validation_failed(what, "columns not strictly ascending in row " +
                                    std::to_string(r) + " at nonzero " +
                                    std::to_string(k));
      }
      if (require_finite && !std::isfinite(a.val[static_cast<std::size_t>(k)])) {
        validation_failed(what, "non-finite value at (" + std::to_string(r) +
                                    ", " + std::to_string(c) + ")");
      }
    }
  }
}

/// Throws InvalidInputError unless `a` is a valid COO matrix: matching
/// array sizes and in-bounds indices; with `require_canonical`, tuples
/// must also be sorted by (row, col) with no duplicates.  With
/// `require_finite` (default: strict level >= 2), non-finite values are
/// rejected too, naming the first offending (row, col).
template <typename V>
void validate_coo(const CooMatrix<V>& a, const char* what,
                  bool require_canonical = true,
                  bool require_finite = strict_validation_level() >= 2) {
  using detail::validation_failed;
  if (a.num_rows < 0 || a.num_cols < 0) {
    validation_failed(what, "negative dimensions " + std::to_string(a.num_rows) +
                                " x " + std::to_string(a.num_cols));
  }
  if (a.col.size() != a.row.size() || a.val.size() != a.row.size()) {
    validation_failed(what, "tuple arrays disagree: " +
                                std::to_string(a.row.size()) + " rows, " +
                                std::to_string(a.col.size()) + " cols, " +
                                std::to_string(a.val.size()) + " vals");
  }
  for (index_t i = 0; i < a.nnz(); ++i) {
    const index_t r = a.row[static_cast<std::size_t>(i)];
    const index_t c = a.col[static_cast<std::size_t>(i)];
    if (r < 0 || r >= a.num_rows || c < 0 || c >= a.num_cols) {
      validation_failed(what, "tuple " + std::to_string(i) + " = (" +
                                  std::to_string(r) + ", " + std::to_string(c) +
                                  ") out of range for " +
                                  std::to_string(a.num_rows) + " x " +
                                  std::to_string(a.num_cols));
    }
    if (require_canonical && i > 0) {
      const index_t pr = a.row[static_cast<std::size_t>(i) - 1];
      const index_t pc = a.col[static_cast<std::size_t>(i) - 1];
      if (pr > r || (pr == r && pc >= c)) {
        validation_failed(what, std::string(pr == r && pc == c
                                                ? "duplicate tuple"
                                                : "tuples out of order") +
                                    " at index " + std::to_string(i) + ": (" +
                                    std::to_string(pr) + ", " +
                                    std::to_string(pc) + ") then (" +
                                    std::to_string(r) + ", " +
                                    std::to_string(c) + ")");
      }
    }
    if (require_finite && !std::isfinite(a.val[static_cast<std::size_t>(i)])) {
      validation_failed(what, "non-finite value at (" + std::to_string(r) +
                                  ", " + std::to_string(c) + ")");
    }
  }
}

}  // namespace mps::sparse
