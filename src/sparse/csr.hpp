#pragma once
// Compressed sparse row (CSR) matrix.

#include <vector>

#include "util/common.hpp"

namespace mps::sparse {

template <typename V>
struct CsrMatrix {
  using value_type = V;

  index_t num_rows = 0;
  index_t num_cols = 0;
  /// num_rows + 1 offsets; row i spans [row_offsets[i], row_offsets[i+1]).
  std::vector<index_t> row_offsets;
  std::vector<index_t> col;
  std::vector<V> val;

  CsrMatrix() = default;
  CsrMatrix(index_t rows, index_t cols)
      : num_rows(rows), num_cols(cols), row_offsets(static_cast<std::size_t>(rows) + 1, 0) {}

  index_t nnz() const {
    return row_offsets.empty() ? 0 : row_offsets.back();
  }

  index_t row_length(index_t r) const {
    return row_offsets[static_cast<std::size_t>(r) + 1] -
           row_offsets[static_cast<std::size_t>(r)];
  }

  /// Structural validity: monotone offsets, matching array sizes,
  /// column indices in range and ascending within each row.
  bool is_valid() const {
    if (row_offsets.size() != static_cast<std::size_t>(num_rows) + 1) return false;
    if (row_offsets.front() != 0) return false;
    for (std::size_t i = 1; i < row_offsets.size(); ++i) {
      if (row_offsets[i] < row_offsets[i - 1]) return false;
    }
    if (col.size() != static_cast<std::size_t>(nnz())) return false;
    if (val.size() != col.size()) return false;
    for (index_t r = 0; r < num_rows; ++r) {
      for (index_t k = row_offsets[r]; k < row_offsets[r + 1]; ++k) {
        if (col[static_cast<std::size_t>(k)] < 0 ||
            col[static_cast<std::size_t>(k)] >= num_cols)
          return false;
        if (k > row_offsets[r] &&
            col[static_cast<std::size_t>(k - 1)] >= col[static_cast<std::size_t>(k)])
          return false;
      }
    }
    return true;
  }

  bool has_empty_rows() const {
    for (index_t r = 0; r < num_rows; ++r) {
      if (row_length(r) == 0) return true;
    }
    return false;
  }

  /// Accounted device footprint in bytes.
  std::size_t device_bytes() const {
    return row_offsets.size() * sizeof(index_t) +
           col.size() * (sizeof(index_t) + sizeof(V));
  }
};

using CsrD = CsrMatrix<double>;

/// The row slice [row_begin, row_end) of `a` as a standalone CSR with
/// rebased offsets and ORIGINAL column ids (num_cols is preserved).
/// The building block of chunked/sharded matrix ops (core/spgemm_chunked,
/// src/shard): per-slice kernel output stitches back into the full
/// result because columns keep their global meaning.
template <typename V>
CsrMatrix<V> row_slice(const CsrMatrix<V>& a, index_t row_begin,
                       index_t row_end) {
  CsrMatrix<V> sub;
  sub.num_rows = row_end - row_begin;
  sub.num_cols = a.num_cols;
  const index_t k0 = a.row_offsets[static_cast<std::size_t>(row_begin)];
  const index_t k1 = a.row_offsets[static_cast<std::size_t>(row_end)];
  sub.row_offsets.resize(static_cast<std::size_t>(sub.num_rows) + 1);
  for (index_t r = row_begin; r <= row_end; ++r) {
    sub.row_offsets[static_cast<std::size_t>(r - row_begin)] =
        a.row_offsets[static_cast<std::size_t>(r)] - k0;
  }
  sub.col.assign(a.col.begin() + k0, a.col.begin() + k1);
  sub.val.assign(a.val.begin() + k0, a.val.begin() + k1);
  return sub;
}

}  // namespace mps::sparse
