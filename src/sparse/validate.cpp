#include "sparse/validate.hpp"

#include "util/env.hpp"

namespace mps::sparse {

bool strict_validation() {
  return util::env_int("MPS_STRICT_VALIDATE", 0) != 0;
}

}  // namespace mps::sparse
