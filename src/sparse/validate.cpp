#include "sparse/validate.hpp"

#include "util/env.hpp"

namespace mps::sparse {

bool strict_validation() {
  return util::env_int("MPS_STRICT_VALIDATE", 0) != 0;
}

int strict_validation_level() {
  const long long v = util::env_int("MPS_STRICT_VALIDATE", 0);
  return v < 0 ? 0 : static_cast<int>(v);
}

}  // namespace mps::sparse
