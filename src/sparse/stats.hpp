#pragma once
// Structural statistics of a sparse matrix (the columns of Table II,
// plus the feature inputs of the SpMV autotuner — docs/autotuning.md).

#include <array>
#include <string>

#include "sparse/csr.hpp"

namespace mps::sparse {

/// Log2 row-length histogram buckets: bucket 0 counts empty rows, bucket
/// b >= 1 counts rows with length in [2^(b-1), 2^b).  The last bucket is
/// open-ended.
inline constexpr std::size_t kRowHistBuckets = 10;

struct MatrixStats {
  index_t rows = 0;
  index_t cols = 0;
  long long nnz = 0;
  double avg_row = 0.0;  ///< mean nonzeros per row
  double std_row = 0.0;  ///< population std of nonzeros per row
  index_t max_row = 0;
  index_t empty_rows = 0;
  /// Cached nnz/row histogram, filled in the same single pass over
  /// `row_offsets` as the moments above.  Consumers (autotune feature
  /// extraction) read it from here instead of rescanning the matrix.
  std::array<long long, kRowHistBuckets> row_hist{};
  /// Mean |col - row| over all nonzeros, normalized by num_cols (0 for an
  /// empty matrix).  The one structural feature that needs the column
  /// array; computed in a single pass over `col`.
  double bandwidth_frac = 0.0;

  /// Coefficient of variation of the row lengths (0 when avg_row == 0).
  double cv_row() const { return avg_row > 0.0 ? std_row / avg_row : 0.0; }
  /// Fraction of rows with no nonzeros.
  double empty_frac() const {
    return rows > 0 ? static_cast<double>(empty_rows) / static_cast<double>(rows)
                    : 0.0;
  }
};

MatrixStats compute_stats(const CsrMatrix<double>& a);

/// Process-wide count of row-offset scans performed by compute_stats.
/// Exists so tests can assert that feature extraction reuses the cached
/// histogram instead of rescanning (exactly one bump per compute_stats).
long long stats_scan_count();

}  // namespace mps::sparse
