#pragma once
// Structural statistics of a sparse matrix (the columns of Table II).

#include <string>

#include "sparse/csr.hpp"

namespace mps::sparse {

struct MatrixStats {
  index_t rows = 0;
  index_t cols = 0;
  long long nnz = 0;
  double avg_row = 0.0;  ///< mean nonzeros per row
  double std_row = 0.0;  ///< population std of nonzeros per row
  index_t max_row = 0;
  index_t empty_rows = 0;
};

MatrixStats compute_stats(const CsrMatrix<double>& a);

}  // namespace mps::sparse
