#pragma once
// Binary CSR serialization — the on-disk encoding used by the durability
// subsystem (WAL records and snapshot bodies, src/durability).
//
// Layout (little-endian, no padding):
//   u32 num_rows | u32 num_cols | u64 nnz |
//   (num_rows + 1) x i32 row_offsets | nnz x i32 col | nnz x f64 val
//
// Values are raw IEEE-754 bits, so read-after-write round-trips bitwise.
// `read_csr_binary` fully validates what it decodes: a buffer that ends
// early raises ParseError with `truncated` in the message (the durability
// layer maps that onto torn-tail tolerance); structurally invalid contents
// (non-monotone offsets, out-of-range columns) raise ParseError too.

#include <cstddef>
#include <string>

#include "sparse/csr.hpp"

namespace mps::sparse {

/// Appends the binary encoding of `a` to `out`.  Requires a.is_valid().
void append_csr_binary(std::string& out, const CsrD& a);

/// Size in bytes `append_csr_binary` will produce for `a`.
std::size_t csr_binary_bytes(const CsrD& a);

/// Decodes one matrix from `data[0..size)`.  On success sets `*consumed`
/// to the number of bytes read and returns a fully validated matrix.
/// Raises ParseError on truncation (message contains "truncated") or on
/// structural corruption.
CsrD read_csr_binary(const char* data, std::size_t size, std::size_t* consumed);

}  // namespace mps::sparse
