#include "sparse/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mps::sparse {

namespace {

[[noreturn]] void parse_error(const std::string& what) {
  throw std::runtime_error("matrix market parse error: " + what);
}

}  // namespace

CooMatrix<double> read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) parse_error("empty stream");
  std::istringstream banner(line);
  std::string mm, object, format, field, symmetry;
  banner >> mm >> object >> format >> field >> symmetry;
  if (mm != "%%MatrixMarket") parse_error("missing %%MatrixMarket banner");
  if (object != "matrix" || format != "coordinate")
    parse_error("only 'matrix coordinate' is supported");
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer")
    parse_error("unsupported field type: " + field);
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general")
    parse_error("unsupported symmetry: " + symmetry);

  // Skip comments.
  do {
    if (!std::getline(in, line)) parse_error("missing size line");
  } while (!line.empty() && line[0] == '%');

  std::istringstream size_line(line);
  long long rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  if (rows < 0 || cols < 0 || entries < 0) parse_error("bad size line");

  CooMatrix<double> a(static_cast<index_t>(rows), static_cast<index_t>(cols));
  a.reserve(static_cast<std::size_t>(symmetric ? 2 * entries : entries));
  for (long long i = 0; i < entries; ++i) {
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) parse_error("truncated entry list");
    if (!pattern && !(in >> v)) parse_error("truncated entry list");
    if (r < 1 || r > rows || c < 1 || c > cols) parse_error("index out of range");
    a.push_back(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if (symmetric && r != c) {
      a.push_back(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
    }
  }
  a.sort();
  return a;
}

CooMatrix<double> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CooMatrix<double>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.num_rows << ' ' << a.num_cols << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t i = 0; i < a.nnz(); ++i) {
    out << (a.row[static_cast<std::size_t>(i)] + 1) << ' '
        << (a.col[static_cast<std::size_t>(i)] + 1) << ' '
        << a.val[static_cast<std::size_t>(i)] << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const CooMatrix<double>& a) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_matrix_market(out, a);
}

}  // namespace mps::sparse
