#include "sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace mps::sparse {

namespace {

[[noreturn]] void parse_error(const std::string& what, long long line = -1) {
  throw ParseError("matrix market parse error: " + what, line);
}

bool blank_or_comment(const std::string& line) {
  for (const char ch : line) {
    if (ch == '%') return true;
    if (!std::isspace(static_cast<unsigned char>(ch))) return false;
  }
  return true;  // all whitespace
}

/// Reads one token stream line; rejects trailing garbage after `fields`
/// successfully extracted values.
void check_line_consumed(std::istringstream& iss, long long line_no) {
  std::string rest;
  if (iss >> rest) parse_error("trailing characters '" + rest + "'", line_no);
}

}  // namespace

CooMatrix<double> read_matrix_market(std::istream& in) {
  constexpr long long kMaxIndex = std::numeric_limits<index_t>::max();
  long long line_no = 0;
  std::string line;

  // Banner.
  if (!std::getline(in, line)) parse_error("empty stream");
  ++line_no;
  std::istringstream banner(line);
  std::string mm, object, format, field, symmetry;
  banner >> mm >> object >> format >> field >> symmetry;
  if (mm != "%%MatrixMarket") parse_error("missing %%MatrixMarket banner", line_no);
  if (object != "matrix" || format != "coordinate")
    parse_error("only 'matrix coordinate' is supported", line_no);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer")
    parse_error("unsupported field type: " + field, line_no);
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general")
    parse_error("unsupported symmetry: " + symmetry, line_no);

  // Comments, then the size line.
  do {
    if (!std::getline(in, line)) parse_error("missing size line", line_no);
    ++line_no;
  } while (blank_or_comment(line));

  std::istringstream size_line(line);
  long long rows = 0, cols = 0, entries = 0;
  if (!(size_line >> rows >> cols >> entries))
    parse_error("malformed size line '" + line + "'", line_no);
  check_line_consumed(size_line, line_no);
  if (rows < 0 || cols < 0 || entries < 0) parse_error("bad size line", line_no);
  if (rows > kMaxIndex || cols > kMaxIndex)
    parse_error("dimension overflow: " + std::to_string(rows) + " x " +
                    std::to_string(cols) + " exceeds 32-bit indices",
                line_no);
  // Symmetric entries may expand 2x; the total must stay indexable.
  const long long max_nnz = symmetric ? 2 * entries : entries;
  if (entries > kMaxIndex || max_nnz > kMaxIndex)
    parse_error("nnz overflow: " + std::to_string(entries) +
                    " entries exceed 32-bit indices",
                line_no);

  CooMatrix<double> a(static_cast<index_t>(rows), static_cast<index_t>(cols));
  a.reserve(static_cast<std::size_t>(max_nnz));
  for (long long i = 0; i < entries; ++i) {
    do {
      if (!std::getline(in, line))
        parse_error("truncated entry list: got " + std::to_string(i) + " of " +
                        std::to_string(entries) + " entries",
                    line_no);
      ++line_no;
    } while (blank_or_comment(line));

    std::istringstream entry(line);
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(entry >> r >> c))
      parse_error("malformed entry '" + line + "'", line_no);
    if (!pattern && !(entry >> v))
      parse_error("malformed value in entry '" + line + "'", line_no);
    check_line_consumed(entry, line_no);
    if (r < 1 || r > rows || c < 1 || c > cols)
      parse_error("index (" + std::to_string(r) + ", " + std::to_string(c) +
                      ") out of range for " + std::to_string(rows) + " x " +
                      std::to_string(cols),
                  line_no);
    a.push_back(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if (symmetric && r != c) {
      a.push_back(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
    }
  }
  a.sort();
  return a;
}

CooMatrix<double> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return read_matrix_market(in);
}

namespace {

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Checks that every off-diagonal entry has a bitwise-identical transposed
/// mirror, so the lower triangle alone reconstructs the matrix exactly.
void require_symmetric(const CooMatrix<double>& a) {
  if (a.num_rows != a.num_cols) {
    throw InvalidInputError(
        "matrix market: symmetric write requires a square matrix, got " +
        std::to_string(a.num_rows) + " x " + std::to_string(a.num_cols));
  }
  const auto n = static_cast<std::size_t>(a.nnz());
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (a.row[x] != a.row[y]) return a.row[x] < a.row[y];
    return a.col[x] < a.col[y];
  });
  const auto find = [&](index_t r, index_t c) -> const double* {
    auto it = std::lower_bound(order.begin(), order.end(),
                               std::make_pair(r, c),
                               [&](std::size_t i, std::pair<index_t, index_t> key) {
                                 if (a.row[i] != key.first) return a.row[i] < key.first;
                                 return a.col[i] < key.second;
                               });
    if (it == order.end() || a.row[*it] != r || a.col[*it] != c) return nullptr;
    return &a.val[*it];
  };
  for (std::size_t i = 0; i < n; ++i) {
    const index_t r = a.row[i], c = a.col[i];
    if (r == c) continue;
    const double* mirror = find(c, r);
    if (mirror == nullptr || !bitwise_equal(*mirror, a.val[i])) {
      throw InvalidInputError(
          "matrix market: symmetric write but entry (" + std::to_string(r) +
          ", " + std::to_string(c) + ") has no matching transpose entry");
    }
  }
}

}  // namespace

void write_matrix_market(std::ostream& out, const CooMatrix<double>& a,
                         MmSymmetry symmetry) {
  const bool sym = symmetry == MmSymmetry::kSymmetric;
  if (sym) require_symmetric(a);
  index_t stored = a.nnz();
  if (sym) {
    stored = 0;
    for (index_t i = 0; i < a.nnz(); ++i) {
      if (a.row[static_cast<std::size_t>(i)] >= a.col[static_cast<std::size_t>(i)])
        ++stored;
    }
  }
  out << "%%MatrixMarket matrix coordinate real "
      << (sym ? "symmetric" : "general") << '\n';
  out << a.num_rows << ' ' << a.num_cols << ' ' << stored << '\n';
  out.precision(17);
  for (index_t i = 0; i < a.nnz(); ++i) {
    const auto k = static_cast<std::size_t>(i);
    if (sym && a.row[k] < a.col[k]) continue;  // upper triangle implied
    out << (a.row[k] + 1) << ' ' << (a.col[k] + 1) << ' ' << a.val[k] << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const CooMatrix<double>& a,
                              MmSymmetry symmetry) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path);
  write_matrix_market(out, a, symmetry);
  out.flush();
  if (!out) throw IoError("failed writing " + path);
}

}  // namespace mps::sparse
