#include "sparse/cmrs.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace mps::sparse {

index_t cmrs_default_strip_height(double avg_row) {
  // Aim for ~128 elements per strip so one warp streams a few coalesced
  // bursts per strip; very short rows get tall strips, long rows shallow
  // ones (a strip of one row degenerates to row-wise CSR).
  const double target = 128.0;
  const double h = target / std::max(1.0, avg_row);
  return static_cast<index_t>(std::clamp(h, 1.0, 256.0));
}

CmrsMatrix<double> csr_to_cmrs(const CsrMatrix<double>& a, index_t strip_height) {
  CmrsMatrix<double> c;
  c.num_rows = a.num_rows;
  c.num_cols = a.num_cols;
  if (strip_height <= 0) {
    const double avg = a.num_rows > 0 ? static_cast<double>(a.nnz()) /
                                            static_cast<double>(a.num_rows)
                                      : 0.0;
    strip_height = cmrs_default_strip_height(avg);
  }
  MPS_CHECK_MSG(strip_height <= 65535,
                "CMRS strip height exceeds the row-in-strip tag range");
  c.strip_height = strip_height;
  // Elements are copied in CSR order; the strip pointer marks each
  // strip_height-row boundary and the per-element tag records the row
  // within its strip.
  c.col = a.col;
  c.val = a.val;
  c.row_in_strip.resize(static_cast<std::size_t>(a.nnz()));
  const index_t num_strips =
      a.num_rows == 0
          ? 0
          : static_cast<index_t>(ceil_div<std::size_t>(
                static_cast<std::size_t>(a.num_rows),
                static_cast<std::size_t>(strip_height)));
  c.strip_ptr.reserve(static_cast<std::size_t>(num_strips) + 1);
  c.strip_ptr.push_back(0);
  for (index_t s = 0; s < num_strips; ++s) {
    const index_t row_lo = s * strip_height;
    const index_t row_hi = std::min<index_t>(a.num_rows, row_lo + strip_height);
    for (index_t r = row_lo; r < row_hi; ++r) {
      for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
           k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
        c.row_in_strip[static_cast<std::size_t>(k)] =
            static_cast<std::uint16_t>(r - row_lo);
      }
    }
    c.strip_ptr.push_back(a.row_offsets[static_cast<std::size_t>(row_hi)]);
  }
  return c;
}

CsrMatrix<double> cmrs_to_csr(const CmrsMatrix<double>& a) {
  CsrMatrix<double> out(a.num_rows, a.num_cols);
  // Row lengths are recovered by counting tags per strip; elements keep
  // their stored order, so col/val round-trip bitwise.
  std::vector<index_t> lengths(static_cast<std::size_t>(a.num_rows), 0);
  for (index_t s = 0; s < a.num_strips(); ++s) {
    const index_t row_lo = s * a.strip_height;
    for (index_t k = a.strip_ptr[static_cast<std::size_t>(s)];
         k < a.strip_ptr[static_cast<std::size_t>(s) + 1]; ++k) {
      const index_t r =
          row_lo + static_cast<index_t>(a.row_in_strip[static_cast<std::size_t>(k)]);
      MPS_CHECK_MSG(r < a.num_rows, "CMRS row tag out of range");
      ++lengths[static_cast<std::size_t>(r)];
    }
  }
  out.row_offsets.resize(static_cast<std::size_t>(a.num_rows) + 1);
  out.row_offsets[0] = 0;
  for (index_t r = 0; r < a.num_rows; ++r) {
    out.row_offsets[static_cast<std::size_t>(r) + 1] =
        out.row_offsets[static_cast<std::size_t>(r)] +
        lengths[static_cast<std::size_t>(r)];
  }
  out.col = a.col;
  out.val = a.val;
  return out;
}

}  // namespace mps::sparse
