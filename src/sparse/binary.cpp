#include "sparse/binary.hpp"

#include <cstdint>
#include <cstring>
#include <limits>

#include "util/error.hpp"

namespace mps::sparse {

namespace {

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T get(const char* data, std::size_t size, std::size_t* pos) {
  if (size - *pos < sizeof(T)) {
    throw ParseError("csr binary: truncated buffer (need " +
                     std::to_string(sizeof(T)) + " bytes at offset " +
                     std::to_string(*pos) + ", have " +
                     std::to_string(size - *pos) + ")");
  }
  T v;
  std::memcpy(&v, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}

template <typename T>
void get_array(const char* data, std::size_t size, std::size_t* pos,
               std::vector<T>& out, std::size_t count) {
  const std::size_t bytes = count * sizeof(T);
  if (size - *pos < bytes) {
    throw ParseError("csr binary: truncated buffer (need " +
                     std::to_string(bytes) + " array bytes at offset " +
                     std::to_string(*pos) + ", have " +
                     std::to_string(size - *pos) + ")");
  }
  out.resize(count);
  if (count > 0) std::memcpy(out.data(), data + *pos, bytes);
  *pos += bytes;
}

}  // namespace

std::size_t csr_binary_bytes(const CsrD& a) {
  return sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) +
         a.row_offsets.size() * sizeof(index_t) +
         a.col.size() * sizeof(index_t) + a.val.size() * sizeof(double);
}

void append_csr_binary(std::string& out, const CsrD& a) {
  if (!a.is_valid()) {
    throw InvalidInputError("csr binary: refusing to serialize invalid matrix");
  }
  out.reserve(out.size() + csr_binary_bytes(a));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(a.num_rows));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(a.num_cols));
  put<std::uint64_t>(out, static_cast<std::uint64_t>(a.nnz()));
  for (index_t v : a.row_offsets) put<std::int32_t>(out, v);
  for (index_t v : a.col) put<std::int32_t>(out, v);
  for (double v : a.val) put<double>(out, v);
}

CsrD read_csr_binary(const char* data, std::size_t size, std::size_t* consumed) {
  std::size_t pos = 0;
  const auto rows = get<std::uint32_t>(data, size, &pos);
  const auto cols = get<std::uint32_t>(data, size, &pos);
  const auto nnz = get<std::uint64_t>(data, size, &pos);
  const auto max_index = static_cast<std::uint64_t>(std::numeric_limits<index_t>::max());
  if (rows > max_index || cols > max_index || nnz > max_index) {
    throw ParseError("csr binary: header dims/nnz exceed 32-bit index range");
  }
  CsrD a;
  a.num_rows = static_cast<index_t>(rows);
  a.num_cols = static_cast<index_t>(cols);
  get_array<index_t>(data, size, &pos, a.row_offsets,
                     static_cast<std::size_t>(rows) + 1);
  get_array<index_t>(data, size, &pos, a.col, static_cast<std::size_t>(nnz));
  a.val.clear();
  {
    std::vector<double> vals;
    get_array<double>(data, size, &pos, vals, static_cast<std::size_t>(nnz));
    a.val = std::move(vals);
  }
  if (a.row_offsets.back() != static_cast<index_t>(nnz) || !a.is_valid()) {
    throw ParseError("csr binary: decoded matrix is structurally invalid");
  }
  if (consumed) *consumed = pos;
  return a;
}

}  // namespace mps::sparse
