#pragma once
// CMRS — Compressed Multirow Storage (Koza et al., PAPERS.md).  Rows are
// grouped into fixed-height strips; one warp streams a whole strip, so
// short-row matrices avoid the per-row transaction floor that row-wise
// CSR kernels pay.  Elements stay in CSR (row-major, ascending-column)
// order — the strip pointer array replaces the per-row offsets and a
// small per-element row-in-strip tag recovers the row — which makes the
// CSR round-trip bitwise trivial and keeps SpMV accumulation in the
// canonical ascending-k order every scheme in this repo shares.

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace mps::sparse {

template <typename V>
struct CmrsMatrix {
  index_t num_rows = 0;
  index_t num_cols = 0;
  index_t strip_height = 1;  ///< rows per strip (last strip may be short)
  /// strip_ptr[s] .. strip_ptr[s+1]: element range of strip s (into
  /// col/val/row_in_strip).  Size num_strips() + 1.
  std::vector<index_t> strip_ptr;
  /// Per element: its row's offset within the strip (< strip_height).
  std::vector<std::uint16_t> row_in_strip;
  std::vector<index_t> col;  ///< CSR element order preserved
  std::vector<V> val;

  index_t num_strips() const {
    return strip_ptr.empty() ? 0 : static_cast<index_t>(strip_ptr.size()) - 1;
  }
  /// True when the row-in-strip tag fits in the column index's unused
  /// upper bits (Koza's packing): tags need ceil(log2(strip_height))
  /// bits, and every column index must fit in the remaining 31.  When
  /// packed, an element costs the same bytes as plain CSR — the tag
  /// rides along for free.
  bool tag_packed() const {
    unsigned tag_bits = 0;
    while ((index_t{1} << tag_bits) < strip_height) ++tag_bits;
    return tag_bits < 31 &&
           static_cast<std::uint64_t>(num_cols) <= (std::uint64_t{1} << (31 - tag_bits));
  }
  std::size_t device_bytes() const {
    return strip_ptr.size() * sizeof(index_t) +
           (tag_packed() ? 0 : row_in_strip.size() * sizeof(std::uint16_t)) +
           col.size() * (sizeof(index_t) + sizeof(V));
  }
};

using CmrsD = CmrsMatrix<double>;

/// CSR -> CMRS.  `strip_height` <= 0 picks the stats-driven default
/// (cmrs_default_strip_height).  Throws InvalidInputError when the
/// height exceeds the row-in-strip tag range (65535).
CmrsMatrix<double> csr_to_cmrs(const CsrMatrix<double>& a,
                               index_t strip_height = -1);

/// CMRS -> CSR round-trip; col/val are bitwise identical to the source.
CsrMatrix<double> cmrs_to_csr(const CmrsMatrix<double>& a);

/// The deterministic default strip height for a matrix with the given
/// mean row length: enough rows per strip that a warp's strip holds
/// roughly a tile of work, clamped to [1, 256].
index_t cmrs_default_strip_height(double avg_row);

}  // namespace mps::sparse
