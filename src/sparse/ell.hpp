#pragma once
// Specialized SpMV storage formats — ELL, DIA and the Bell–Garland HYB
// hybrid (the paper's reference [8]).  These are the "specialized, and in
// some cases exotic, storage schemes tuned for a particular class of
// matrices" the paper's introduction contrasts merge-path's
// format-generality against: fast when the structure fits, invalid or
// wasteful when it does not.

#include <cstdint>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace mps::sparse {

/// ELLPACK: every row padded to a fixed width; column-major storage so a
/// warp reading entry j of consecutive rows is perfectly coalesced.
/// Padding entries have col == -1.
template <typename V>
struct EllMatrix {
  index_t num_rows = 0;
  index_t num_cols = 0;
  index_t width = 0;  ///< entries per row
  /// col[j * num_rows + r] / val[...]: entry j of row r (column-major).
  std::vector<index_t> col;
  std::vector<V> val;

  std::size_t device_bytes() const {
    return col.size() * (sizeof(index_t) + sizeof(V));
  }
  long long padded_cells() const {
    return static_cast<long long>(num_rows) * width;
  }
};

/// DIA: dense storage of a fixed set of diagonals; ideal for stencils
/// (QCD, Epidemiology), unusable for unstructured matrices.
template <typename V>
struct DiaMatrix {
  index_t num_rows = 0;
  index_t num_cols = 0;
  std::vector<index_t> offsets;  ///< diagonal offsets (col - row), ascending
  /// val[d * num_rows + r]: entry of diagonal d in row r (0 if absent).
  std::vector<V> val;

  std::size_t device_bytes() const { return val.size() * sizeof(V); }
};

/// HYB: ELL part for the typical row prefix + COO part for the tail
/// (Bell & Garland SC'09).
template <typename V>
struct HybMatrix {
  EllMatrix<V> ell;
  CooMatrix<V> coo;

  std::size_t device_bytes() const {
    return ell.device_bytes() + coo.device_bytes();
  }
};

/// CSR -> ELL with the given width (default: the maximum row length).
/// Throws if any row exceeds `width`.
EllMatrix<double> csr_to_ell(const CsrMatrix<double>& a, index_t width = -1);

/// CSR -> DIA.  Throws when the matrix needs more than `max_diagonals`
/// distinct diagonals (the format's applicability limit).
DiaMatrix<double> csr_to_dia(const CsrMatrix<double>& a,
                             index_t max_diagonals = 64);

/// CSR -> HYB with the Bell–Garland width heuristic: the largest K such
/// that at least `occupancy_threshold` of rows have >= K entries (i.e.
/// ELL cells stay mostly full); the remainder spills to COO.
HybMatrix<double> csr_to_hyb(const CsrMatrix<double>& a,
                             double occupancy_threshold = 1.0 / 3.0);

/// Round-trips (for validation).
CsrMatrix<double> ell_to_csr(const EllMatrix<double>& a);
CsrMatrix<double> dia_to_csr(const DiaMatrix<double>& a);
CsrMatrix<double> hyb_to_csr(const HybMatrix<double>& a);

}  // namespace mps::sparse
