#include "sparse/stats.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>

namespace mps::sparse {

namespace {
std::atomic<long long> g_scan_count{0};

/// Bucket index for a row length: 0 for empty, else 1 + floor(log2(len)),
/// clamped to the last bucket.
std::size_t hist_bucket(index_t len) {
  if (len <= 0) return 0;
  std::size_t b = 1;
  index_t v = len;
  while (v > 1 && b + 1 < kRowHistBuckets) {
    v >>= 1;
    ++b;
  }
  return b;
}
}  // namespace

long long stats_scan_count() { return g_scan_count.load(); }

MatrixStats compute_stats(const CsrMatrix<double>& a) {
  MatrixStats s;
  s.rows = a.num_rows;
  s.cols = a.num_cols;
  s.nnz = a.nnz();
  if (a.num_rows == 0) return s;
  // One fused pass over the row offsets computes the moments, the
  // extremes, the diagonal-distance sum AND the histogram the
  // autotuner's feature extraction reads — the histogram is cached on
  // the struct, never recomputed per caller.
  g_scan_count.fetch_add(1, std::memory_order_relaxed);
  double sum = 0.0, sum2 = 0.0, band = 0.0;
  for (index_t r = 0; r < a.num_rows; ++r) {
    const index_t lo = a.row_offsets[static_cast<std::size_t>(r)];
    const index_t hi = a.row_offsets[static_cast<std::size_t>(r) + 1];
    const index_t ilen = hi - lo;
    const double len = static_cast<double>(ilen);
    sum += len;
    sum2 += len * len;
    if (ilen > s.max_row) s.max_row = ilen;
    if (ilen == 0) ++s.empty_rows;
    ++s.row_hist[hist_bucket(ilen)];
    for (index_t k = lo; k < hi; ++k) {
      band +=
          std::abs(static_cast<double>(a.col[static_cast<std::size_t>(k)] - r));
    }
  }
  const double n = static_cast<double>(a.num_rows);
  s.avg_row = sum / n;
  const double var = sum2 / n - s.avg_row * s.avg_row;
  s.std_row = var > 0.0 ? std::sqrt(var) : 0.0;
  if (s.nnz > 0 && a.num_cols > 0) {
    s.bandwidth_frac =
        band / static_cast<double>(s.nnz) / static_cast<double>(a.num_cols);
  }
  return s;
}

}  // namespace mps::sparse
