#include "sparse/stats.hpp"

#include <cmath>

namespace mps::sparse {

MatrixStats compute_stats(const CsrMatrix<double>& a) {
  MatrixStats s;
  s.rows = a.num_rows;
  s.cols = a.num_cols;
  s.nnz = a.nnz();
  if (a.num_rows == 0) return s;
  double sum = 0.0, sum2 = 0.0;
  for (index_t r = 0; r < a.num_rows; ++r) {
    const double len = static_cast<double>(a.row_length(r));
    sum += len;
    sum2 += len * len;
    if (a.row_length(r) > s.max_row) s.max_row = a.row_length(r);
    if (a.row_length(r) == 0) ++s.empty_rows;
  }
  const double n = static_cast<double>(a.num_rows);
  s.avg_row = sum / n;
  const double var = sum2 / n - s.avg_row * s.avg_row;
  s.std_row = var > 0.0 ? std::sqrt(var) : 0.0;
  return s;
}

}  // namespace mps::sparse
