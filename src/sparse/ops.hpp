#pragma once
// Small structural/numerical utilities on sparse matrices used by the
// examples and tests (host-side; not performance-modeled).

#include <cmath>
#include <vector>

#include "sparse/csr.hpp"

namespace mps::sparse {

/// Main diagonal as a dense vector (zeros where absent).
template <typename V>
std::vector<V> extract_diagonal(const CsrMatrix<V>& a) {
  std::vector<V> d(static_cast<std::size_t>(std::min(a.num_rows, a.num_cols)), V{});
  for (index_t r = 0; r < static_cast<index_t>(d.size()); ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      if (a.col[static_cast<std::size_t>(k)] == r) {
        d[static_cast<std::size_t>(r)] = a.val[static_cast<std::size_t>(k)];
      }
    }
  }
  return d;
}

/// In-place scalar multiply.
template <typename V>
void scale(CsrMatrix<V>& a, V alpha) {
  for (auto& v : a.val) v *= alpha;
}

/// Frobenius norm.
template <typename V>
double frobenius_norm(const CsrMatrix<V>& a) {
  double acc = 0.0;
  for (const V v : a.val) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc);
}

/// Drop entries with |value| <= threshold (structural zeros kept if
/// threshold < 0).  Returns the number of dropped entries.
template <typename V>
index_t drop_small(CsrMatrix<V>& a, double threshold) {
  index_t out = 0;
  std::vector<index_t> new_offsets(a.row_offsets.size(), 0);
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      if (std::abs(static_cast<double>(a.val[static_cast<std::size_t>(k)])) >
          threshold) {
        a.col[static_cast<std::size_t>(out)] = a.col[static_cast<std::size_t>(k)];
        a.val[static_cast<std::size_t>(out)] = a.val[static_cast<std::size_t>(k)];
        ++out;
      }
    }
    new_offsets[static_cast<std::size_t>(r) + 1] = out;
  }
  const index_t dropped = a.nnz() - out;
  a.row_offsets = std::move(new_offsets);
  a.col.resize(static_cast<std::size_t>(out));
  a.val.resize(static_cast<std::size_t>(out));
  return dropped;
}

/// Structural + numerical symmetry test (exact match of A and A^T up to
/// `tol`).  Quadratic in row length; intended for tests/examples.
template <typename V>
bool is_symmetric(const CsrMatrix<V>& a, double tol = 0.0) {
  if (a.num_rows != a.num_cols) return false;
  for (index_t r = 0; r < a.num_rows; ++r) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t c = a.col[static_cast<std::size_t>(k)];
      const V v = a.val[static_cast<std::size_t>(k)];
      // Find (c, r).
      bool found = false;
      for (index_t k2 = a.row_offsets[static_cast<std::size_t>(c)];
           k2 < a.row_offsets[static_cast<std::size_t>(c) + 1]; ++k2) {
        if (a.col[static_cast<std::size_t>(k2)] == r) {
          if (std::abs(static_cast<double>(a.val[static_cast<std::size_t>(k2)] - v)) >
              tol)
            return false;
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace mps::sparse
