#pragma once
// Coordinate (COO) sparse matrix: one (row, col, value) tuple per nonzero.

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/common.hpp"

namespace mps::sparse {

template <typename V>
struct CooMatrix {
  using value_type = V;

  index_t num_rows = 0;
  index_t num_cols = 0;
  std::vector<index_t> row;
  std::vector<index_t> col;
  std::vector<V> val;

  CooMatrix() = default;
  CooMatrix(index_t rows, index_t cols) : num_rows(rows), num_cols(cols) {}

  index_t nnz() const { return static_cast<index_t>(row.size()); }

  void reserve(std::size_t n) {
    row.reserve(n);
    col.reserve(n);
    val.reserve(n);
  }

  void push_back(index_t r, index_t c, V v) {
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }

  /// True if tuples are sorted lexicographically by (row, col).
  bool is_sorted() const {
    for (index_t i = 1; i < nnz(); ++i) {
      if (row[i - 1] > row[i] || (row[i - 1] == row[i] && col[i - 1] > col[i]))
        return false;
    }
    return true;
  }

  /// True if sorted and no (row, col) appears twice.
  bool is_canonical() const {
    for (index_t i = 1; i < nnz(); ++i) {
      if (row[i - 1] > row[i] ||
          (row[i - 1] == row[i] && col[i - 1] >= col[i]))
        return false;
    }
    return true;
  }

  /// All indices within bounds?
  bool indices_in_bounds() const {
    for (index_t i = 0; i < nnz(); ++i) {
      if (row[i] < 0 || row[i] >= num_rows || col[i] < 0 || col[i] >= num_cols)
        return false;
    }
    return true;
  }

  /// Sort tuples lexicographically by (row, col); stable on equal keys.
  void sort() {
    std::vector<index_t> perm(row.size());
    std::iota(perm.begin(), perm.end(), index_t{0});
    std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
      if (row[a] != row[b]) return row[a] < row[b];
      return col[a] < col[b];
    });
    apply_permutation(perm);
  }

  /// Sort and sum duplicate (row, col) entries.
  void canonicalize() {
    sort();
    index_t out = 0;
    for (index_t i = 0; i < nnz(); ++i) {
      if (out > 0 && row[out - 1] == row[i] && col[out - 1] == col[i]) {
        val[out - 1] += val[i];
      } else {
        row[out] = row[i];
        col[out] = col[i];
        val[out] = val[i];
        ++out;
      }
    }
    row.resize(out);
    col.resize(out);
    val.resize(out);
  }

  /// Accounted device footprint in bytes (indices + values).
  std::size_t device_bytes() const {
    return row.size() * (2 * sizeof(index_t) + sizeof(V));
  }

 private:
  void apply_permutation(const std::vector<index_t>& perm) {
    std::vector<index_t> r(perm.size()), c(perm.size());
    std::vector<V> v(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      r[i] = row[static_cast<std::size_t>(perm[i])];
      c[i] = col[static_cast<std::size_t>(perm[i])];
      v[i] = val[static_cast<std::size_t>(perm[i])];
    }
    row = std::move(r);
    col = std::move(c);
    val = std::move(v);
  }
};

using CooD = CooMatrix<double>;

}  // namespace mps::sparse
