#pragma once
// (row, col) tuples packed into a single 64-bit key whose natural integer
// order equals the lexicographic tuple order of Algorithm 1 in the paper.

#include <cstdint>

#include "util/common.hpp"

namespace mps::sparse {

constexpr std::uint64_t pack_key(index_t row, index_t col) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32) |
         static_cast<std::uint32_t>(col);
}

constexpr index_t key_row(std::uint64_t key) {
  return static_cast<index_t>(key >> 32);
}

constexpr index_t key_col(std::uint64_t key) {
  return static_cast<index_t>(key & 0xFFFFFFFFull);
}

}  // namespace mps::sparse
