#pragma once
// Adaptive SpMV format/kernel autotuner (docs/autotuning.md).
//
// The merge-path kernel is the repo's statically-tuned default: its
// nonzero-granularity decomposition is never pathological, which is the
// paper's whole argument.  But "never pathological" is not "always
// fastest" — on perfectly uniform matrices a format kernel (ELL, CMRS)
// streams the same bytes without merge's segmented-scan traffic, and an
// unusual aspect ratio can prefer a different tile.  The autotuner
// closes that gap the way Su/Keutzer's clSpMV and Li's SMAT do
// (PAPERS.md): extract cheap structural features, enumerate a small
// candidate space of (format, kernel, tile) triples, run each candidate
// once on the virtual GPU, and keep the winner.
//
// Everything is deterministic: features come from one compute_stats
// pass, candidates are enumerated in a fixed order, trials measure
// *modeled* time (bit-stable), and ties break toward the earlier
// candidate.  Candidate 0 is always the static merge-path default, so
// the tuned choice is never slower than the default in modeled time —
// by construction, not by luck.
//
// Every candidate produces bitwise-identical y: all kernels in the
// space accumulate each row's products in ascending-k order and write
// the row once (the canonical order tests/oracle.hpp pins down), so
// tuning can never change a result, only its cost.
//
// Env knobs: MPS_AUTOTUNE=1 enables tuned dispatch in the serving
// engine and the iterative drivers (default off); MPS_AUTOTUNE_TRIALS
// caps how many candidates are trialed (default: all).

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/spmv.hpp"
#include "sparse/cmrs.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/stats.hpp"
#include "vgpu/device.hpp"

namespace mps::autotune {

enum class Format { kCsr, kEll, kCmrs };
enum class Kernel { kMergePath, kRowWise, kCuspLike, kFormatNative };

const char* format_name(Format f);
const char* kernel_name(Kernel k);

/// True when MPS_AUTOTUNE is set to a nonzero value (default off).
bool enabled();
/// MPS_AUTOTUNE_TRIALS: cap on candidates trialed per matrix (>= 1;
/// candidate 0, the merge default, is always trialed).
int max_trials();

/// The structural feature vector — a cheap projection of
/// sparse::MatrixStats (one fused pass over the matrix; the nnz/row
/// histogram is read from the cached field, never recomputed).
struct Features {
  index_t rows = 0;
  index_t cols = 0;
  long long nnz = 0;
  double avg_row = 0.0;
  double cv_row = 0.0;          ///< row-length coefficient of variation
  double empty_frac = 0.0;      ///< fraction of empty rows
  double bandwidth_frac = 0.0;  ///< mean |col-row| / num_cols
  index_t max_row = 0;
  std::array<long long, sparse::kRowHistBuckets> row_hist{};

  static Features from_stats(const sparse::MatrixStats& s);
  /// One compute_stats call (exactly one row-offset scan).
  static Features extract(const sparse::CsrD& a);
};

/// One point of the candidate space.
struct Candidate {
  Format format = Format::kCsr;
  Kernel kernel = Kernel::kMergePath;
  core::merge::SpmvConfig cfg{};  ///< tile geometry (merge kernels)
  const char* name = "";          ///< stable display name
};

/// The feature-gated candidate list, in trial order.  Entry 0 is always
/// the static merge-path default; format candidates appear only inside
/// their applicability envelope (ELL: bounded padding; CMRS: short-row
/// regime).  `trials` caps the list length (clamped to >= 1).
std::vector<Candidate> candidate_space(const Features& f, int trials);

/// Outcome of one candidate trial (kept for reporting).
struct Trial {
  const char* name = "";
  double modeled_ms = 0.0;
};

/// A tuned execution plan: the winning candidate plus whatever storage
/// it needs resident (a merge SpmvPlan, or the converted ELL/CMRS
/// matrix).  Like SpmvPlan it is pattern-fingerprinted; unlike SpmvPlan
/// the format-converted storage also binds to the source matrix's value
/// buffer (ELL reorders values; CMRS aliases them), so execute()
/// additionally rejects a matrix whose value storage moved —
/// re-tune (or let the serving engine invalidate) after updating
/// values.  Executes are const and safe to run concurrently.
class TunedPlan {
 public:
  TunedPlan(vgpu::Device& device, const sparse::CsrD& a);

  const Candidate& choice() const { return choice_; }
  const Features& features() const { return features_; }
  /// Every trial that ran, in candidate order.
  const std::vector<Trial>& trials() const { return trials_; }
  /// One-time tuning cost: every trial's modeled kernel time plus the
  /// winner's plan-build cost.  Never included in execute()'s stats —
  /// the oracle suite asserts it cannot leak into steady state.
  double tune_ms() const { return tune_ms_; }
  /// The winner's modeled per-apply cost, measured at tune time.
  double steady_ms() const { return steady_ms_; }
  /// Resident footprint: winner's plan arrays or converted storage.
  /// The serving engine's PlanCache charges tuned entries by this.
  std::size_t bytes() const;

  /// y = A x through the tuned choice.  Throws PlanMismatchError when
  /// `a` does not match the tuned pattern fingerprint (or, for
  /// format-converted winners, when its value buffer moved).  Output is
  /// bitwise-identical to every other kernel in the candidate space.
  core::merge::SpmvStats execute(vgpu::Device& device, const sparse::CsrD& a,
                                 std::span<const double> x,
                                 std::span<double> y) const;

 private:
  void check_match(const sparse::CsrD& a) const;

  Candidate choice_;
  Features features_;
  std::vector<Trial> trials_;
  double tune_ms_ = 0.0;
  double steady_ms_ = 0.0;

  // Pattern fingerprint (same guard contract as SpmvPlan).
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  index_t nnz_ = 0;
  std::uint64_t offsets_fingerprint_ = 0;
  // Value-buffer binding, used only by format-converted winners.
  const double* val_data_ = nullptr;
  std::size_t val_size_ = 0;

  std::optional<core::merge::SpmvPlan> plan_;      ///< merge winners
  std::optional<sparse::EllMatrix<double>> ell_;   ///< ELL winner
  std::optional<sparse::CmrsD> cmrs_;              ///< CMRS winner
};

/// Run the trial protocol for `a` and return the winning plan.
/// Deterministic: the same matrix always tunes to the same choice.
TunedPlan tune(vgpu::Device& device, const sparse::CsrD& a);

/// Convenience dispatch for iterative drivers: tuned execute when the
/// caller opted in (plan built by tune()), falling back to the static
/// merge path otherwise.  See examples/pagerank.cpp.
core::merge::SpmvStats spmv(vgpu::Device& device, const TunedPlan& plan,
                            const sparse::CsrD& a, std::span<const double> x,
                            std::span<double> y);

}  // namespace mps::autotune
