#include "autotune/autotune.hpp"

#include <algorithm>
#include <cstring>

#include "baselines/cusplike.hpp"
#include "baselines/formats.hpp"
#include "baselines/rowwise.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace mps::autotune {

namespace {

std::uint64_t fnv64(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t pattern_fingerprint(const sparse::CsrD& a) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv64(h, &a.num_rows, sizeof(a.num_rows));
  h = fnv64(h, &a.num_cols, sizeof(a.num_cols));
  if (!a.row_offsets.empty()) {
    h = fnv64(h, a.row_offsets.data(),
              a.row_offsets.size() * sizeof(index_t));
  }
  return h;
}

/// Registry handles cached once; bumps after that are lock-free.
struct TunerMetrics {
  telemetry::Counter& tunes = telemetry::metrics().counter("autotune.tunes");
  telemetry::Counter& trials = telemetry::metrics().counter("autotune.trials");
  telemetry::Counter& nondefault_wins =
      telemetry::metrics().counter("autotune.nondefault_wins");
};

TunerMetrics& tuner_metrics() {
  static TunerMetrics m;
  return m;
}

/// Deterministic probe vector: exact binary fractions so every trial
/// (and every re-tune of the same matrix) computes identical products.
std::vector<double> probe_vector(index_t cols) {
  std::vector<double> x(static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.5 + static_cast<double>(i % 16) * 0.0625;
  }
  return x;
}

core::merge::SpmvStats wrap_format_stats(double modeled_ms, double wall_ms) {
  core::merge::SpmvStats s;
  s.reduce_ms = modeled_ms;
  s.wall_ms = wall_ms;
  s.setup_amortized = true;
  return s;
}

}  // namespace

const char* format_name(Format f) {
  switch (f) {
    case Format::kCsr: return "csr";
    case Format::kEll: return "ell";
    case Format::kCmrs: return "cmrs";
  }
  return "?";
}

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kMergePath: return "merge";
    case Kernel::kRowWise: return "rowwise";
    case Kernel::kCuspLike: return "cusplike";
    case Kernel::kFormatNative: return "native";
  }
  return "?";
}

bool enabled() { return util::env_int("MPS_AUTOTUNE", 0) != 0; }

int max_trials() {
  return static_cast<int>(
      std::max(1ll, util::env_int("MPS_AUTOTUNE_TRIALS", 64)));
}

Features Features::from_stats(const sparse::MatrixStats& s) {
  Features f;
  f.rows = s.rows;
  f.cols = s.cols;
  f.nnz = s.nnz;
  f.avg_row = s.avg_row;
  f.cv_row = s.cv_row();
  f.empty_frac = s.empty_frac();
  f.bandwidth_frac = s.bandwidth_frac;
  f.max_row = s.max_row;
  f.row_hist = s.row_hist;
  return f;
}

Features Features::extract(const sparse::CsrD& a) {
  return from_stats(sparse::compute_stats(a));
}

std::vector<Candidate> candidate_space(const Features& f, int trials) {
  std::vector<Candidate> c;
  // Candidate 0 is the paper's statically tuned merge default — always
  // trialed, so the tuned pick can never be slower than it.
  c.push_back({Format::kCsr, Kernel::kMergePath, {128, 7}, "merge(128x7)"});
  if (f.rows > 0 && f.nnz > 0) {
    c.push_back({Format::kCsr, Kernel::kMergePath, {128, 3}, "merge(128x3)"});
    c.push_back({Format::kCsr, Kernel::kMergePath, {128, 16}, "merge(128x16)"});
    c.push_back({Format::kCsr, Kernel::kCuspLike, {}, "cusplike"});
    c.push_back({Format::kCsr, Kernel::kRowWise, {}, "rowwise"});
    // ELL streams the whole padded rectangle: admissible only when the
    // padding overhead is bounded.
    const double padded = static_cast<double>(f.max_row) *
                          static_cast<double>(f.rows);
    if (f.max_row > 0 && padded <= 1.5 * static_cast<double>(f.nnz)) {
      c.push_back({Format::kEll, Kernel::kFormatNative, {}, "ell"});
    }
    // CMRS targets the short-row regime where per-row kernels pay the
    // transaction floor and merge pays its offsets window per row.
    if (f.avg_row <= 32.0) {
      c.push_back({Format::kCmrs, Kernel::kFormatNative, {}, "cmrs"});
    }
  }
  const std::size_t cap = static_cast<std::size_t>(std::max(1, trials));
  if (c.size() > cap) c.resize(cap);
  return c;
}

TunedPlan::TunedPlan(vgpu::Device& device, const sparse::CsrD& a) {
  telemetry::ScopedSpan tune_span("autotune.tune");
  tuner_metrics().tunes.add();
  features_ = Features::extract(a);
  num_rows_ = a.num_rows;
  num_cols_ = a.num_cols;
  nnz_ = static_cast<index_t>(a.nnz());
  offsets_fingerprint_ = pattern_fingerprint(a);
  val_data_ = a.val.data();
  val_size_ = a.val.size();

  const auto candidates = candidate_space(features_, max_trials());
  const auto x = probe_vector(a.num_cols);
  std::vector<double> y_ref;  ///< candidate 0's probe output
  std::vector<double> y(static_cast<std::size_t>(a.num_rows));

  std::size_t best = 0;
  double best_ms = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& cand = candidates[i];
    telemetry::ScopedSpan trial_span("autotune.trial");
    tuner_metrics().trials.add();
    double trial_ms = 0.0;
    std::optional<core::merge::SpmvPlan> plan;
    std::optional<sparse::EllMatrix<double>> ell;
    std::optional<sparse::CmrsD> cmrs;
    switch (cand.kernel) {
      case Kernel::kMergePath: {
        plan.emplace(core::merge::spmv_plan(device, a, cand.cfg));
        tune_ms_ += plan->plan_ms();  // build cost is tuning cost
        trial_ms = core::merge::spmv_execute(device, a, x, y, *plan)
                       .modeled_ms();
        break;
      }
      case Kernel::kRowWise:
        trial_ms = baselines::rowwise::spmv(device, a, x, y).modeled_ms;
        break;
      case Kernel::kCuspLike:
        trial_ms = baselines::cusplike::spmv(device, a, x, y).modeled_ms;
        break;
      case Kernel::kFormatNative:
        if (cand.format == Format::kEll) {
          ell.emplace(sparse::csr_to_ell(a));
          trial_ms =
              baselines::formats::spmv_ell(device, *ell, x, y).modeled_ms;
        } else {
          cmrs.emplace(sparse::csr_to_cmrs(a));
          trial_ms =
              baselines::formats::spmv_cmrs(device, *cmrs, x, y).modeled_ms;
        }
        break;
    }
    tune_ms_ += trial_ms;
    trials_.push_back({cand.name, trial_ms});
    if (i == 0) {
      y_ref = y;
    } else {
      // The whole candidate space shares the canonical accumulation
      // order — a probe divergence means a kernel broke the contract.
      MPS_CHECK_MSG(y.size() == y_ref.size() &&
                        std::memcmp(y.data(), y_ref.data(),
                                    y.size() * sizeof(double)) == 0,
                    "autotune: candidate diverged from canonical output");
    }
    if (i == 0 || trial_ms < best_ms) {
      best = i;
      best_ms = trial_ms;
      choice_ = cand;
      plan_ = std::move(plan);
      ell_ = std::move(ell);
      cmrs_ = std::move(cmrs);
    }
  }
  steady_ms_ = best_ms;
  if (best != 0) tuner_metrics().nondefault_wins.add();
  tune_span.end(choice_.name);
}

std::size_t TunedPlan::bytes() const {
  std::size_t b = sizeof(TunedPlan) + trials_.capacity() * sizeof(Trial);
  if (plan_) b += plan_->bytes();
  if (ell_) b += ell_->device_bytes();
  if (cmrs_) b += cmrs_->device_bytes();
  return b;
}

void TunedPlan::check_match(const sparse::CsrD& a) const {
  if (a.num_rows != num_rows_ || a.num_cols != num_cols_ ||
      static_cast<index_t>(a.nnz()) != nnz_ ||
      pattern_fingerprint(a) != offsets_fingerprint_) {
    throw PlanMismatchError(
        "tuned plan executed against a matrix with a different sparsity "
        "pattern");
  }
  if ((ell_ || cmrs_) &&
      (a.val.data() != val_data_ || a.val.size() != val_size_)) {
    // Format-converted storage snapshots the values; a moved value
    // buffer means they may be stale.  Re-tune (the serving engine
    // invalidates tuned entries on re-registration).
    throw PlanMismatchError(
        "tuned plan's converted storage is bound to a value buffer that "
        "moved; re-tune after updating matrix values");
  }
}

core::merge::SpmvStats TunedPlan::execute(vgpu::Device& device,
                                          const sparse::CsrD& a,
                                          std::span<const double> x,
                                          std::span<double> y) const {
  check_match(a);
  switch (choice_.kernel) {
    case Kernel::kMergePath:
      return core::merge::spmv_execute(device, a, x, y, *plan_);
    case Kernel::kRowWise: {
      const auto s = baselines::rowwise::spmv(device, a, x, y);
      return wrap_format_stats(s.modeled_ms, s.wall_ms);
    }
    case Kernel::kCuspLike: {
      const auto s = baselines::cusplike::spmv(device, a, x, y);
      return wrap_format_stats(s.modeled_ms, s.wall_ms);
    }
    case Kernel::kFormatNative: {
      const auto s = ell_ ? baselines::formats::spmv_ell(device, *ell_, x, y)
                          : baselines::formats::spmv_cmrs(device, *cmrs_, x, y);
      return wrap_format_stats(s.modeled_ms, s.wall_ms);
    }
  }
  throw Error("autotune: unreachable kernel kind");
}

TunedPlan tune(vgpu::Device& device, const sparse::CsrD& a) {
  return TunedPlan(device, a);
}

core::merge::SpmvStats spmv(vgpu::Device& device, const TunedPlan& plan,
                            const sparse::CsrD& a, std::span<const double> x,
                            std::span<double> y) {
  return plan.execute(device, a, x, y);
}

}  // namespace mps::autotune
