#pragma once
// Device-wide merge and merge sort built on merge-path partitioning — the
// "highly regular merge-based sorting routines" of the paper's Section II
// (Green/McColl/Bader ICS'12; Davidson et al. InPar'12).
//
// merge: each CTA binary-searches its diagonal, then serially merges its
// equal-size chunk — zero inter-CTA communication.
// merge_sort: bottom-up; CTA-local sort of tiles, then log2(num_tiles)
// device-wide merge rounds ping-ponging between buffers.

#include <algorithm>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "primitives/merge_path.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {

struct DeviceMergeStats {
  double modeled_ms = 0.0;
  int rounds = 0;  ///< merge rounds (merge_sort only)
};

namespace detail {

/// One device-wide merge of sorted [a] and [b] into out (charged).
template <typename K, typename V, typename Less>
vgpu::KernelStats merge_pass(vgpu::Device& device, const std::string& name,
                             std::span<const K> a, std::span<const V> va,
                             std::span<const K> b, std::span<const V> vb,
                             std::span<K> out, std::span<V> vout, bool pairs,
                             Less less) {
  constexpr int kBlock = 128;
  constexpr std::size_t kTile = 128 * 11;
  const std::size_t total = a.size() + b.size();
  const int num_ctas = static_cast<int>(std::max<std::size_t>(ceil_div(total, kTile), 1));
  return device.launch(name, num_ctas, kBlock, [&, less](vgpu::Cta& cta) {
    const std::size_t d_lo = std::min<std::size_t>(
        static_cast<std::size_t>(cta.cta_id()) * kTile, total);
    const std::size_t d_hi = std::min(total, d_lo + kTile);
    const std::size_t a_lo = merge_path(a, b, d_lo, less);
    const std::size_t a_hi = merge_path(a, b, d_hi, less);
    cta.charge_binary_search(total);
    std::size_t i = a_lo, j = d_lo - a_lo;
    const std::size_t j_hi = d_hi - a_hi;
    std::size_t o = d_lo;
    while (i < a_hi && j < j_hi) {
      const bool take_b = less(b[j], a[i]);
      out[o] = take_b ? b[j] : a[i];
      if (pairs) vout[o] = take_b ? vb[j] : va[i];
      ++o;
      take_b ? ++j : ++i;
    }
    for (; i < a_hi; ++i, ++o) {
      out[o] = a[i];
      if (pairs) vout[o] = va[i];
    }
    for (; j < j_hi; ++j, ++o) {
      out[o] = b[j];
      if (pairs) vout[o] = vb[j];
    }
    const std::size_t count = d_hi - d_lo;
    const std::size_t elem = sizeof(K) + (pairs ? sizeof(V) : 0);
    cta.charge_global(2 * count * elem);  // read both inputs, write out
    cta.charge_shared_elems(2 * count);
    cta.charge_alu_uniform(count);
    cta.charge_sync();
  });
}

}  // namespace detail

/// out = merge(a, b); `out` must have a.size() + b.size() elements.
template <typename K, typename Less = std::less<K>>
DeviceMergeStats device_merge(vgpu::Device& device, std::span<const K> a,
                              std::span<const K> b, std::span<K> out,
                              Less less = {}) {
  MPS_CHECK(out.size() >= a.size() + b.size());
  std::span<const K> no_vals;
  std::span<K> no_out;
  DeviceMergeStats stats;
  stats.modeled_ms =
      detail::merge_pass<K, K, Less>(device, "merge.keys", a, no_vals, b, no_vals,
                                     out, no_out, /*pairs=*/false, less)
          .modeled_ms;
  return stats;
}

/// Key-value merge.
template <typename K, typename V, typename Less = std::less<K>>
DeviceMergeStats device_merge_pairs(vgpu::Device& device, std::span<const K> ka,
                                    std::span<const V> va, std::span<const K> kb,
                                    std::span<const V> vb, std::span<K> kout,
                                    std::span<V> vout, Less less = {}) {
  MPS_CHECK(va.size() == ka.size() && vb.size() == kb.size());
  MPS_CHECK(kout.size() >= ka.size() + kb.size() && vout.size() >= kout.size());
  DeviceMergeStats stats;
  stats.modeled_ms =
      detail::merge_pass<K, V, Less>(device, "merge.pairs", ka, va, kb, vb, kout,
                                     vout, /*pairs=*/true, less)
          .modeled_ms;
  return stats;
}

/// Stable device-wide merge sort of `keys` in place (ping-pong buffer is
/// accounted against device memory).
template <typename K, typename Less = std::less<K>>
DeviceMergeStats device_merge_sort(vgpu::Device& device, std::span<K> keys,
                                   Less less = {}) {
  DeviceMergeStats stats;
  const std::size_t n = keys.size();
  if (n <= 1) return stats;
  constexpr int kBlock = 128;
  constexpr std::size_t kTile = 128 * 11;
  vgpu::ScopedDeviceAlloc pingpong(device.memory(), n * sizeof(K));

  // Round 0: CTA-local sorts of each tile.
  const int num_tiles = static_cast<int>(ceil_div(n, kTile));
  auto s0 = device.launch("mergesort.block", num_tiles, kBlock, [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
    const std::size_t hi = std::min(n, lo + kTile);
    std::stable_sort(keys.begin() + static_cast<long>(lo),
                     keys.begin() + static_cast<long>(hi), less);
    const std::size_t count = hi - lo;
    cta.charge_global(2 * count * sizeof(K));
    // log2(tile) odd-even merge rounds through shared memory.
    cta.charge_shared_elems(count * static_cast<std::size_t>(log2_ceil(kTile)));
    cta.charge_alu_uniform(count * static_cast<std::size_t>(log2_ceil(kTile)));
    cta.charge_sync();
  });
  stats.modeled_ms += s0.modeled_ms;

  // log2 rounds of device-wide merges of runs of width w.
  std::vector<K> buf(n);
  std::span<K> src = keys;
  std::span<K> dst(buf);
  for (std::size_t w = kTile; w < n; w *= 2) {
    ++stats.rounds;
    for (std::size_t lo = 0; lo < n; lo += 2 * w) {
      const std::size_t mid = std::min(n, lo + w);
      const std::size_t hi = std::min(n, lo + 2 * w);
      std::span<const K> a(src.data() + lo, mid - lo);
      std::span<const K> b(src.data() + mid, hi - mid);
      std::span<const K> no_vals;
      std::span<K> no_out;
      stats.modeled_ms +=
          detail::merge_pass<K, K, Less>(device, "mergesort.merge", a, no_vals, b,
                                         no_vals, dst.subspan(lo, hi - lo), no_out,
                                         /*pairs=*/false, less)
              .modeled_ms;
    }
    std::swap(src, dst);
  }
  if (src.data() != keys.data()) {
    std::copy(src.begin(), src.end(), keys.begin());
  }
  return stats;
}

}  // namespace mps::primitives
