#pragma once
// CTA-level radix sort (the "Block Sort" engine of merge SpGEMM).
//
// Models CUB's BlockRadixSort: an LSD counting sort over `digit_bits`-wide
// digits held in shared memory, 128 threads x 11 items per CTA (the
// configuration benchmarked in the paper's Fig 4).  The paper's two key
// optimizations are expressed directly in the interface:
//
//   * bit-limiting  — sort only ceil(log2(num_cols)) bits, cutting digit
//     passes (Fig 4: 28 -> 12 bits roughly halves the cycles again);
//   * keys-only with embedded permutation — when the key's upper bits are
//     unused, the origin index rides inside the key, halving shared
//     traffic versus a key-value sort.

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.hpp"
#include "vgpu/cta.hpp"

namespace mps::primitives {

struct CtaSortConfig {
  int block_threads = 128;
  int items_per_thread = 11;
  int digit_bits = 4;  ///< radix digit width per pass (CUB default class)
  int tile() const { return block_threads * items_per_thread; }
};

/// Stable LSD radix sort of `keys[0..n)` (n <= cfg.tile()) restricted to
/// key bits [bit_begin, bit_end).  If `values` is non-empty it is permuted
/// alongside (a key-value "pairs" sort, costing extra shared traffic).
/// Charges `cta` for the modeled shared-memory work.
template <typename K>
void cta_radix_sort(vgpu::Cta& cta, std::span<K> keys, std::span<K> values,
                    int bit_begin, int bit_end, const CtaSortConfig& cfg = {}) {
  MPS_CHECK(keys.size() <= static_cast<std::size_t>(cfg.tile()));
  MPS_CHECK(values.empty() || values.size() == keys.size());
  MPS_CHECK(bit_begin >= 0 && bit_end <= static_cast<int>(sizeof(K) * 8) &&
            bit_begin <= bit_end);
  const std::size_t n = keys.size();
  const bool pairs = !values.empty();
  const int num_passes = ceil_div(bit_end - bit_begin, cfg.digit_bits);
  const std::size_t radix = std::size_t{1} << cfg.digit_bits;

  std::vector<K> key_buf(n);
  std::vector<K> val_buf(pairs ? n : 0);
  std::vector<std::size_t> hist(radix);

  for (int pass = 0; pass < num_passes; ++pass) {
    const int shift = bit_begin + pass * cfg.digit_bits;
    // The final pass may cover fewer than digit_bits bits; the mask must
    // not spill into bits above bit_end (they can hold live payload, e.g.
    // the embedded permutation rank).
    const int pass_bits = std::min(cfg.digit_bits, bit_end - shift);
    const K mask = static_cast<K>((std::size_t{1} << pass_bits) - 1);
    std::fill(hist.begin(), hist.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++hist[static_cast<std::size_t>((keys[i] >> shift) & mask)];
    }
    std::size_t acc = 0;
    for (std::size_t d = 0; d < radix; ++d) {
      const std::size_t c = hist[d];
      hist[d] = acc;
      acc += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t dst = hist[static_cast<std::size_t>((keys[i] >> shift) & mask)]++;
      key_buf[dst] = keys[i];
      if (pairs) val_buf[dst] = values[i];
    }
    std::copy(key_buf.begin(), key_buf.end(), keys.begin());
    if (pairs) std::copy(val_buf.begin(), val_buf.end(), values.begin());

    // Cost per pass: read keys + compute ranks (warp scans over digit
    // histograms) + scatter through shared memory; pairs also permute the
    // value array through shared memory.
    cta.charge_shared_elems(3 * n);
    if (pairs) cta.charge_shared_elems(2 * n);
    cta.charge_alu_uniform(2 * n);
    cta.charge_sync();
    cta.charge_sync();
  }
}

/// Keys-only helper.
template <typename K>
void cta_radix_sort_keys(vgpu::Cta& cta, std::span<K> keys, int bit_begin,
                         int bit_end, const CtaSortConfig& cfg = {}) {
  cta_radix_sort(cta, keys, std::span<K>{}, bit_begin, bit_end, cfg);
}

/// Pack a local permutation index into the unused upper bits of a key
/// whose payload occupies the low `key_bits` bits.  Requires
/// key_bits + log2_ceil(n) <= bits(K) — the caller checks applicability
/// (the paper falls back to a pairs sort when it does not fit).
template <typename K>
K embed_rank(K key, std::size_t rank, int key_bits) {
  return static_cast<K>(key | (static_cast<K>(rank) << key_bits));
}

template <typename K>
K extract_key(K packed, int key_bits) {
  return static_cast<K>(packed & ((K{1} << key_bits) - 1));
}

template <typename K>
std::size_t extract_rank(K packed, int key_bits) {
  return static_cast<std::size_t>(packed >> key_bits);
}

}  // namespace mps::primitives
