#pragma once
// Device-wide segmented reduction over CSR-style offsets — the engine
// inside merge SpMV, exposed as a reusable primitive.  Work is
// partitioned at VALUE granularity (fixed values per CTA); segment
// boundaries are located with one binary search per CTA and inter-CTA
// carries are fixed up afterwards, exactly the paper's
// partition/reduce/update structure.

#include <functional>
#include <span>
#include <vector>

#include "primitives/search.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {

struct SegmentedReduceStats {
  double modeled_ms = 0.0;
  int num_ctas = 0;
};

/// out[s] = sum of values[offsets[s] .. offsets[s+1]) for every segment s.
/// `offsets` has num_segments + 1 non-decreasing entries with
/// offsets[0] == 0 and offsets.back() == values.size(); empty segments
/// yield 0.  `out` must hold num_segments elements (fully overwritten).
template <typename V>
SegmentedReduceStats device_segmented_reduce(vgpu::Device& device,
                                             std::span<const index_t> offsets,
                                             std::span<const V> values,
                                             std::span<V> out) {
  MPS_CHECK(!offsets.empty());
  MPS_CHECK(offsets.front() == 0);
  MPS_CHECK(static_cast<std::size_t>(offsets.back()) == values.size());
  const std::size_t num_segments = offsets.size() - 1;
  MPS_CHECK(out.size() >= num_segments);
  SegmentedReduceStats stats;
  std::fill(out.begin(), out.begin() + static_cast<long>(num_segments), V{});
  if (values.empty()) return stats;

  constexpr int kBlock = 128;
  constexpr std::size_t kTile = 128 * 7;
  const std::size_t n = values.size();
  const int num_ctas = static_cast<int>(ceil_div(n, kTile));
  stats.num_ctas = num_ctas;

  std::vector<index_t> carry_seg(static_cast<std::size_t>(num_ctas), -1);
  std::vector<V> carry_val(static_cast<std::size_t>(num_ctas), V{});
  auto s = device.launch("segreduce", num_ctas, kBlock, [&](vgpu::Cta& cta) {
    const std::size_t v_lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
    const std::size_t v_hi = std::min(n, v_lo + kTile);
    const std::size_t seg_lo = segment_of(
        offsets.subspan(0, num_segments), static_cast<index_t>(v_lo));
    cta.charge_binary_search(num_segments);
    for (std::size_t seg = seg_lo; seg < num_segments; ++seg) {
      const std::size_t lo = std::max(v_lo, static_cast<std::size_t>(offsets[seg]));
      const std::size_t hi = std::min(v_hi, static_cast<std::size_t>(offsets[seg + 1]));
      if (lo >= hi) {
        if (static_cast<std::size_t>(offsets[seg]) >= v_hi) break;
        continue;
      }
      V acc{};
      for (std::size_t i = lo; i < hi; ++i) acc += values[i];
      if (static_cast<std::size_t>(offsets[seg + 1]) <= v_hi) {
        out[seg] += acc;
      } else {
        carry_seg[static_cast<std::size_t>(cta.cta_id())] = static_cast<index_t>(seg);
        carry_val[static_cast<std::size_t>(cta.cta_id())] = acc;
      }
    }
    const std::size_t count = v_hi - v_lo;
    cta.charge_global(count * sizeof(V));
    cta.charge_shared_elems(2 * count);
    cta.charge_alu_uniform(count);
    cta.charge_sync();
  });
  stats.modeled_ms += s.modeled_ms;

  auto fix = device.launch("segreduce.fixup", 1, kBlock, [&](vgpu::Cta& cta) {
    for (int i = 0; i < num_ctas; ++i) {
      if (carry_seg[static_cast<std::size_t>(i)] >= 0) {
        out[static_cast<std::size_t>(carry_seg[static_cast<std::size_t>(i)])] +=
            carry_val[static_cast<std::size_t>(i)];
      }
    }
    cta.charge_global(static_cast<std::size_t>(num_ctas) *
                      (sizeof(index_t) + sizeof(V)));
    cta.charge_alu_uniform(static_cast<std::size_t>(num_ctas));
  });
  stats.modeled_ms += fix.modeled_ms;
  return stats;
}

}  // namespace mps::primitives
