#pragma once
// Device-wide, balanced-path set operations (paper Section III-B, Fig 2).
//
// Both phases of the classic two-phase output scheme are balanced-path
// partitioned, so every CTA handles the same number of *path elements*
// (± the star adjustment) regardless of how duplicates are distributed:
//
//   1. partition — one balanced-path search per CTA fence,
//   2. count     — each CTA runs the serial multiset kernel, counting,
//   3. scan      — exclusive scan of CTA output counts,
//   4. emit      — re-run, writing keys (and combined values) at offset.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "primitives/balanced_path.hpp"
#include "primitives/scan.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {

/// Tile geometry used by all balanced-path CTA kernels (ModernGPU-style
/// 128 threads x 11 values).
struct SetOpConfig {
  int block_threads = 128;
  int items_per_thread = 11;
  int tile() const { return block_threads * items_per_thread; }
};

template <typename K, typename V>
struct SetOpResult {
  std::vector<K> keys;
  std::vector<V> vals;
  double modeled_ms = 0.0;  ///< summed over the op's kernels
  double wall_ms = 0.0;
};

namespace detail {

template <typename K, typename Less>
void charge_fence_search(vgpu::Cta& cta, std::size_t total) {
  (void)sizeof(K);
  // merge-path diagonal search + two run searches (biased) per fence.
  cta.charge_binary_search(total);
  cta.charge_binary_search(total);
  cta.charge_binary_search(total);
  (void)sizeof(Less);
}

}  // namespace detail

/// Generic key-value multiset operation.  `vals_a` / `vals_b` may be empty
/// (keys-only: the result's vals stays empty).  `combine(x, y)` merges the
/// values of a matched pair (union/intersection); unmatched emissions copy
/// their source value.
template <typename K, typename V, typename Combine, typename Less = std::less<K>>
SetOpResult<K, V> device_set_op(vgpu::Device& device, std::span<const K> keys_a,
                                std::span<const V> vals_a, std::span<const K> keys_b,
                                std::span<const V> vals_b, SetOp op, Combine combine,
                                Less less = {}, SetOpConfig cfg = {}) {
  MPS_CHECK(vals_a.empty() || vals_a.size() == keys_a.size());
  MPS_CHECK(vals_b.empty() || vals_b.size() == keys_b.size());
  // Values are in play iff every non-empty key side brought a value array
  // (an empty side trivially "has" values, so A + empty works).
  const bool with_vals = vals_a.size() == keys_a.size() &&
                         vals_b.size() == keys_b.size() &&
                         !(keys_a.empty() && keys_b.empty());
  const std::size_t total = keys_a.size() + keys_b.size();
  const std::size_t tile = static_cast<std::size_t>(cfg.tile());
  const int num_parts = static_cast<int>(total == 0 ? 1 : ceil_div(total, tile));

  util::WallTimer wall;
  SetOpResult<K, V> res;

  // Inputs are device-resident; account temporaries only (fences + counts).
  vgpu::ScopedDeviceAlloc fences_mem(device.memory(),
                                     (static_cast<std::size_t>(num_parts) + 1) *
                                         (2 * sizeof(std::uint64_t) + 1));
  std::vector<BalancedCut> fences(static_cast<std::size_t>(num_parts) + 1);

  // Phase 1: partition.  One logical thread per fence.
  const int fence_ctas =
      static_cast<int>(ceil_div(static_cast<std::size_t>(num_parts) + 1,
                                static_cast<std::size_t>(cfg.block_threads)));
  auto s1 = device.launch("setop.partition", fence_ctas, cfg.block_threads,
                          [&](vgpu::Cta& cta) {
                            const std::size_t lo =
                                static_cast<std::size_t>(cta.cta_id()) *
                                static_cast<std::size_t>(cfg.block_threads);
                            const std::size_t hi =
                                std::min(fences.size(),
                                         lo + static_cast<std::size_t>(cfg.block_threads));
                            for (std::size_t f = lo; f < hi; ++f) {
                              const std::size_t diag = std::min(f * tile, total);
                              fences[f] = balanced_path(keys_a, keys_b, diag, less);
                              detail::charge_fence_search<K, Less>(cta, total);
                            }
                            cta.charge_global((hi - lo) * 2 * sizeof(std::uint64_t));
                          });

  // Phase 2: count outputs per partition.
  vgpu::ScopedDeviceAlloc counts_mem(device.memory(),
                                     static_cast<std::size_t>(num_parts) * sizeof(index_t));
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_parts) + 1, 0);
  auto charge_tile = [&](vgpu::Cta& cta, const BalancedCut& lo, const BalancedCut& hi) {
    const std::size_t na = hi.a_index - lo.a_index;
    const std::size_t nb = hi.b_index - lo.b_index;
    cta.charge_global(na * sizeof(K) + nb * sizeof(K));
    if (with_vals) cta.charge_global(na * sizeof(V) + nb * sizeof(V));
    // Thread-level balanced-path split in shared memory + serial merge.
    cta.charge_shared_elems(static_cast<std::size_t>(cfg.block_threads) *
                      static_cast<std::size_t>(log2_ceil(tile) + 1));
    cta.charge_shared_elems(na + nb);
    cta.charge_alu_uniform(na + nb);
    cta.charge_sync();
  };
  auto s2 = device.launch("setop.count", num_parts, cfg.block_threads,
                          [&](vgpu::Cta& cta) {
                            const auto& lo = fences[static_cast<std::size_t>(cta.cta_id())];
                            const auto& hi = fences[static_cast<std::size_t>(cta.cta_id()) + 1];
                            charge_tile(cta, lo, hi);
                            counts[static_cast<std::size_t>(cta.cta_id())] = set_op_serial(
                                keys_a, keys_b, lo.a_index, hi.a_index, lo.b_index,
                                hi.b_index, op, [](std::size_t) {}, [](std::size_t) {},
                                [](std::size_t, std::size_t) {}, less);
                            cta.charge_global(sizeof(index_t));
                          });

  // Phase 3: scan counts, size the output.
  const std::size_t out_n = exclusive_scan_inplace(std::span<std::size_t>(counts));
  auto s3 = device.launch("setop.scan", 1, cfg.block_threads, [&](vgpu::Cta& cta) {
    cta.charge_global(2 * static_cast<std::size_t>(num_parts) * sizeof(index_t));
    cta.charge_shared_elems(static_cast<std::size_t>(num_parts));
  });

  vgpu::ScopedDeviceAlloc out_mem(
      device.memory(), out_n * (sizeof(K) + (with_vals ? sizeof(V) : 0)));
  res.keys.resize(out_n);
  if (with_vals) res.vals.resize(out_n);

  // Phase 4: emit.
  auto s4 = device.launch(
      "setop.emit", num_parts, cfg.block_threads, [&](vgpu::Cta& cta) {
        const auto& lo = fences[static_cast<std::size_t>(cta.cta_id())];
        const auto& hi = fences[static_cast<std::size_t>(cta.cta_id()) + 1];
        charge_tile(cta, lo, hi);
        std::size_t pos = counts[static_cast<std::size_t>(cta.cta_id())];
        const std::size_t wrote = set_op_serial(
            keys_a, keys_b, lo.a_index, hi.a_index, lo.b_index, hi.b_index, op,
            [&](std::size_t i) {
              res.keys[pos] = keys_a[i];
              if (with_vals) res.vals[pos] = vals_a[i];
              ++pos;
            },
            [&](std::size_t j) {
              res.keys[pos] = keys_b[j];
              if (with_vals) res.vals[pos] = vals_b[j];
              ++pos;
            },
            [&](std::size_t i, std::size_t j) {
              res.keys[pos] = keys_a[i];
              if (with_vals) res.vals[pos] = combine(vals_a[i], vals_b[j]);
              ++pos;
            },
            less);
        cta.charge_global(wrote * (sizeof(K) + (with_vals ? sizeof(V) : 0)));
      });

  res.modeled_ms = s1.modeled_ms + s2.modeled_ms + s3.modeled_ms + s4.modeled_ms;
  res.wall_ms = wall.milliseconds();
  return res;
}

/// Keys-only convenience wrapper.
template <typename K, typename Less = std::less<K>>
SetOpResult<K, K> device_set_op_keys(vgpu::Device& device, std::span<const K> a,
                                     std::span<const K> b, SetOp op, Less less = {},
                                     SetOpConfig cfg = {}) {
  return device_set_op<K, K>(device, a, std::span<const K>{}, b,
                             std::span<const K>{}, op,
                             [](const K& x, const K&) { return x; }, less, cfg);
}

}  // namespace mps::primitives
