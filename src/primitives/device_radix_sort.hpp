#pragma once
// Device-wide LSD radix sort (the "Global Sort" engine).
//
// Classic three-kernel-per-pass structure (Merrill & Grimshaw):
// per-tile digit histograms, a scan of the histogram matrix, and a
// ranked scatter.  The implementation actually performs those passes
// (functional counting sorts over 8-bit digits), charging each kernel's
// global traffic, so the modeled cost scales with passes x bytes exactly
// the way the paper's global sorting phase does.
//
// `sort_pairs` sorts a u32/u64 key array together with a u32 payload
// (SpGEMM sorts *permutations*, not products — the values are formed
// later, see paper Section III-C).  `bit_end` defaults to the full key
// width; pass log2_ceil(num_cols) etc. to exploit bit-limiting.

#include <cstdint>
#include <span>
#include <string>

#include "vgpu/device.hpp"

namespace mps::primitives {

struct DeviceSortStats {
  int passes = 0;
  double modeled_ms = 0.0;
  double wall_ms = 0.0;
};

/// Stable LSD sort of `keys` (and `payload` alongside) on bits
/// [0, bit_end).  Both spans are permuted in place.
DeviceSortStats device_radix_sort_pairs(vgpu::Device& device, const std::string& name,
                                        std::span<std::uint32_t> keys,
                                        std::span<std::uint32_t> payload, int bit_end = 32);

DeviceSortStats device_radix_sort_pairs(vgpu::Device& device, const std::string& name,
                                        std::span<std::uint64_t> keys,
                                        std::span<std::uint32_t> payload, int bit_end = 64);

/// Keys-only variants.
DeviceSortStats device_radix_sort_keys(vgpu::Device& device, const std::string& name,
                                       std::span<std::uint32_t> keys, int bit_end = 32);
DeviceSortStats device_radix_sort_keys(vgpu::Device& device, const std::string& name,
                                       std::span<std::uint64_t> keys, int bit_end = 64);

}  // namespace mps::primitives
