#include "primitives/device_radix_sort.hpp"

#include <vector>

#include "util/common.hpp"

namespace mps::primitives {

namespace {

constexpr int kDigitBits = 8;
constexpr std::size_t kRadix = std::size_t{1} << kDigitBits;
constexpr int kBlock = 256;
constexpr int kItems = 8;
constexpr std::size_t kTile = static_cast<std::size_t>(kBlock) * kItems;

template <typename K>
DeviceSortStats sort_impl(vgpu::Device& device, const std::string& name,
                          std::span<K> keys, std::span<std::uint32_t> payload,
                          int bit_end) {
  MPS_CHECK(payload.empty() || payload.size() == keys.size());
  MPS_CHECK(bit_end >= 0 && bit_end <= static_cast<int>(sizeof(K) * 8));
  DeviceSortStats stats;
  const std::size_t n = keys.size();
  if (n == 0) return stats;
  const bool pairs = !payload.empty();
  const int num_passes = ceil_div(bit_end, kDigitBits);
  stats.passes = num_passes;
  const int num_tiles = static_cast<int>(ceil_div(n, kTile));

  util::WallTimer wall;
  const std::size_t elem_bytes = sizeof(K) + (pairs ? sizeof(std::uint32_t) : 0);
  vgpu::ScopedDeviceAlloc pingpong(device.memory(), n * elem_bytes);
  vgpu::ScopedDeviceAlloc hist_mem(
      device.memory(), static_cast<std::size_t>(num_tiles) * kRadix * sizeof(index_t));

  std::vector<K> key_buf(n);
  std::vector<std::uint32_t> val_buf(pairs ? n : 0);
  // hist[tile][digit] -> after scan: starting rank of (digit, tile).
  std::vector<std::size_t> hist(static_cast<std::size_t>(num_tiles) * kRadix);

  for (int pass = 0; pass < num_passes; ++pass) {
    const int shift = pass * kDigitBits;
    // Mask only bits below bit_end on the final pass (bits above may be
    // unsorted payload by contract).
    const int pass_bits = std::min(kDigitBits, bit_end - shift);
    const K mask = static_cast<K>((std::uint64_t{1} << pass_bits) - 1);

    // Kernel 1: per-tile digit histogram.
    auto s1 = device.launch(name + ".hist", num_tiles, kBlock, [&](vgpu::Cta& cta) {
      const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
      const std::size_t hi = std::min(n, lo + kTile);
      std::size_t* h = &hist[static_cast<std::size_t>(cta.cta_id()) * kRadix];
      std::fill(h, h + kRadix, 0);
      for (std::size_t i = lo; i < hi; ++i) {
        ++h[static_cast<std::size_t>((keys[i] >> shift) & mask)];
      }
      cta.charge_global((hi - lo) * sizeof(K) + kRadix * sizeof(index_t));
      cta.charge_shared_elems(hi - lo);
      cta.charge_alu_uniform(hi - lo);
      cta.charge_sync();
    });
    stats.modeled_ms += s1.modeled_ms;

    // Kernel 2: scan the histogram matrix digit-major so that equal digits
    // order by tile (stability across tiles).
    std::size_t acc = 0;
    for (std::size_t d = 0; d < kRadix; ++d) {
      for (int t = 0; t < num_tiles; ++t) {
        std::size_t& cell = hist[static_cast<std::size_t>(t) * kRadix + d];
        const std::size_t c = cell;
        cell = acc;
        acc += c;
      }
    }
    auto s2 = device.launch(name + ".scan", 1, kBlock, [&](vgpu::Cta& cta) {
      const std::size_t cells = static_cast<std::size_t>(num_tiles) * kRadix;
      cta.charge_global(2 * cells * sizeof(index_t));
      cta.charge_shared_elems(cells);
      cta.charge_alu_uniform(cells);
      cta.charge_sync();
    });
    stats.modeled_ms += s2.modeled_ms;

    // Kernel 3: ranked scatter (stable within a tile by construction).
    auto s3 = device.launch(name + ".scatter", num_tiles, kBlock, [&](vgpu::Cta& cta) {
      const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
      const std::size_t hi = std::min(n, lo + kTile);
      std::size_t* h = &hist[static_cast<std::size_t>(cta.cta_id()) * kRadix];
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t dst = h[static_cast<std::size_t>((keys[i] >> shift) & mask)]++;
        key_buf[dst] = keys[i];
        if (pairs) val_buf[dst] = payload[i];
      }
      cta.charge_global((hi - lo) * elem_bytes);  // coalesced read
      cta.charge_gather(hi - lo);                 // scattered write
      cta.charge_shared_elems(2 * (hi - lo));           // local rank + stage
      cta.charge_alu_uniform(hi - lo);
      cta.charge_sync();
    });
    stats.modeled_ms += s3.modeled_ms;

    std::copy(key_buf.begin(), key_buf.end(), keys.begin());
    if (pairs) std::copy(val_buf.begin(), val_buf.end(), payload.begin());
  }
  stats.wall_ms = wall.milliseconds();
  return stats;
}

}  // namespace

DeviceSortStats device_radix_sort_pairs(vgpu::Device& device, const std::string& name,
                                        std::span<std::uint32_t> keys,
                                        std::span<std::uint32_t> payload, int bit_end) {
  return sort_impl<std::uint32_t>(device, name, keys, payload, bit_end);
}

DeviceSortStats device_radix_sort_pairs(vgpu::Device& device, const std::string& name,
                                        std::span<std::uint64_t> keys,
                                        std::span<std::uint32_t> payload, int bit_end) {
  return sort_impl<std::uint64_t>(device, name, keys, payload, bit_end);
}

DeviceSortStats device_radix_sort_keys(vgpu::Device& device, const std::string& name,
                                       std::span<std::uint32_t> keys, int bit_end) {
  return sort_impl<std::uint32_t>(device, name, keys, std::span<std::uint32_t>{},
                                  bit_end);
}

DeviceSortStats device_radix_sort_keys(vgpu::Device& device, const std::string& name,
                                       std::span<std::uint64_t> keys, int bit_end) {
  return sort_impl<std::uint64_t>(device, name, keys, std::span<std::uint32_t>{},
                                  bit_end);
}

}  // namespace mps::primitives
