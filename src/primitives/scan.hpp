#pragma once
// Prefix sums: host helpers plus device-charged launches.

#include <span>
#include <vector>

#include "vgpu/device.hpp"

namespace mps::primitives {

/// In-place exclusive scan; returns the total.
template <typename T>
T exclusive_scan_inplace(std::span<T> xs) {
  T acc{};
  for (auto& x : xs) {
    const T v = x;
    x = acc;
    acc += v;
  }
  return acc;
}

/// Device-charged exclusive scan: out[i] = sum of in[0..i).  `out` may
/// alias `in`.  Returns the total; kernel stats are appended to the
/// device log.  The cost model charges the classic three-kernel
/// (reduce / scan-partials / downsweep) pipeline.
template <typename T>
T device_exclusive_scan(vgpu::Device& device, const std::string& name,
                        std::span<const T> in, std::span<T> out) {
  MPS_CHECK(out.size() >= in.size());
  constexpr int kBlock = 256;
  constexpr int kItems = 8;
  const int nv = kBlock * kItems;
  const int num_ctas =
      static_cast<int>(ceil_div(in.size(), static_cast<std::size_t>(nv)));
  // Functional result first (serial, exact).
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    const T v = in[i];
    out[i] = acc;
    acc += v;
  }
  // Cost: each CTA streams its tile twice (upsweep + downsweep) and does
  // O(tile) shared work.
  device.launch(name, std::max(num_ctas, 1), kBlock, [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * nv;
    const std::size_t hi = std::min(in.size(), lo + nv);
    const std::size_t tile = hi - lo;
    cta.charge_global(2 * tile * sizeof(T));   // read in, write out
    cta.charge_shared_elems(2 * tile);               // up + down sweep
    cta.charge_alu_uniform(2 * tile);
    cta.charge_sync();
  });
  return acc;
}

}  // namespace mps::primitives
