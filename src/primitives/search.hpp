#pragma once
// Binary-search building blocks.  These mirror the device-side searches the
// paper's kernels perform (row-offset partitioning, diagonal searches).

#include <cstddef>
#include <functional>
#include <span>

namespace mps::primitives {

/// First index i in [0, n) with !(a[i] < key), i.e. std::lower_bound.
template <typename T, typename Less = std::less<T>>
std::size_t lower_bound_index(std::span<const T> a, const T& key, Less less = {}) {
  std::size_t lo = 0, hi = a.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (less(a[mid], key))
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// First index i in [0, n) with key < a[i], i.e. std::upper_bound.
template <typename T, typename Less = std::less<T>>
std::size_t upper_bound_index(std::span<const T> a, const T& key, Less less = {}) {
  std::size_t lo = 0, hi = a.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (!less(key, a[mid]))
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// Index of the segment containing `value` given segment start offsets:
/// largest i with offsets[i] <= value.  `offsets` must be non-decreasing
/// and offsets[0] <= value.  This is the "binary search on the row offsets
/// array" every partitioning phase in the paper performs.
template <typename T>
std::size_t segment_of(std::span<const T> offsets, T value) {
  std::size_t lo = 0, hi = offsets.size();
  // invariant: offsets[lo-1] <= value < offsets[hi] (virtual sentinels)
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (offsets[mid] <= value)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo == 0 ? 0 : lo - 1;
}

}  // namespace mps::primitives
