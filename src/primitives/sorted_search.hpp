#pragma once
// Vectorized sorted search (ModernGPU's "SortedSearch"): compute
// lower_bound(b, a[i]) for EVERY element of sorted A in a single merge
// pass, instead of |A| independent binary searches.
//
// This is the load-balancing dual of merge path: the answer array is
// exactly the B-positions at which the merge consumes each A element, so
// the same diagonal partitioning yields perfectly balanced work.  The
// paper's SpGEMM setup phase is a specialization of this pattern.

#include <functional>
#include <span>
#include <vector>

#include "primitives/merge_path.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {

struct SortedSearchStats {
  double modeled_ms = 0.0;
};

/// indices[i] = lower_bound index of a[i] within b.  A and B sorted.
template <typename K, typename Less = std::less<K>>
SortedSearchStats device_sorted_search(vgpu::Device& device, std::span<const K> a,
                                       std::span<const K> b,
                                       std::span<index_t> indices, Less less = {}) {
  MPS_CHECK(indices.size() >= a.size());
  SortedSearchStats stats;
  if (a.empty()) return stats;
  constexpr int kBlock = 128;
  constexpr std::size_t kTile = 128 * 11;
  const std::size_t total = a.size() + b.size();
  const int num_ctas = static_cast<int>(ceil_div(total, kTile));
  auto s = device.launch("sorted_search", num_ctas, kBlock, [&, less](vgpu::Cta& cta) {
    const std::size_t d_lo = std::min<std::size_t>(
        static_cast<std::size_t>(cta.cta_id()) * kTile, total);
    const std::size_t d_hi = std::min(total, d_lo + kTile);
    std::size_t i = merge_path(a, b, d_lo, less);
    std::size_t j = d_lo - i;
    const std::size_t i_hi = merge_path(a, b, d_hi, less);
    const std::size_t j_hi = d_hi - i_hi;
    cta.charge_binary_search(total);
    // Walk the merge: when an A element is consumed, the current B cursor
    // is its lower bound (A-first tie-breaking consumes a[i] while
    // b[j] >= a[i], i.e. j is the first B index not less than a[i]).
    while (i < i_hi || j < j_hi) {
      const bool take_a =
          i < i_hi && (j >= b.size() || !less(b[j], a[i]));
      if (take_a) {
        indices[i] = static_cast<index_t>(j);
        ++i;
      } else {
        ++j;
      }
    }
    const std::size_t count = d_hi - d_lo;
    cta.charge_global(count * sizeof(K));        // stream both inputs
    cta.charge_global(count * sizeof(index_t));  // write found indices
    cta.charge_shared_elems(count);
    cta.charge_alu_uniform(count);
  });
  stats.modeled_ms = s.modeled_ms;
  return stats;
}

}  // namespace mps::primitives
