// cta_radix_sort is a header template; this TU anchors the library and
// provides the common instantiations so dependents link fast.
#include "primitives/cta_radix_sort.hpp"

namespace mps::primitives {

template void cta_radix_sort<std::uint32_t>(vgpu::Cta&, std::span<std::uint32_t>,
                                            std::span<std::uint32_t>, int, int,
                                            const CtaSortConfig&);
template void cta_radix_sort<std::uint64_t>(vgpu::Cta&, std::span<std::uint64_t>,
                                            std::span<std::uint64_t>, int, int,
                                            const CtaSortConfig&);

}  // namespace mps::primitives
