#pragma once
// Merge Path partitioning (Green, McColl, Bader — ICS'12; ModernGPU).
//
// Merging sorted sequences A (|A| = aN) and B (|B| = bN) traces a
// monotone staircase through the aN x bN grid.  Cutting the staircase
// where it crosses the diagonal {(i, d - i)} yields, for any d, a split
// (ai, bi = d - ai) such that merging A[0..ai) with B[0..bi) produces
// exactly the first d outputs of the full merge.  Partitioning at evenly
// spaced diagonals therefore hands every worker exactly the same number
// of elements to merge, independent of how the data is segmented — the
// load-balancing primitive the whole paper builds on.
//
// Tie-breaking convention: equal keys are consumed from A first (stable
// merge).  All consumers in this repository assume this convention.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace mps::primitives {

/// Number of elements taken from A by the first `diag` steps of the merge
/// of A and B (A-first on ties).  0 <= diag <= aN + bN.
template <typename T, typename Less = std::less<T>>
std::size_t merge_path(std::span<const T> a, std::span<const T> b, std::size_t diag,
                       Less less = {}) {
  // Search the diagonal: find smallest ai such that the staircase passes
  // at or left of (ai, diag - ai).  A-first ties: consume a[ai] while
  // a[ai] <= b[bi-1], i.e. step down when b[bi-1] < a[ai] is false.
  std::size_t lo = diag > b.size() ? diag - b.size() : 0;
  std::size_t hi = diag < a.size() ? diag : a.size();
  while (lo < hi) {
    const std::size_t ai = lo + (hi - lo) / 2;
    const std::size_t bi = diag - ai - 1;
    // If b[bi] < a[ai] is false we can still take more from A.
    if (!less(b[bi], a[ai]))
      lo = ai + 1;
    else
      hi = ai;
  }
  return lo;
}

/// A contiguous chunk of the merge assigned to one worker.
struct MergeRange {
  std::size_t a_begin = 0, a_end = 0;
  std::size_t b_begin = 0, b_end = 0;
  std::size_t size() const { return (a_end - a_begin) + (b_end - b_begin); }
};

/// Split the merge of A and B into `num_parts` ranges of size
/// ceil((aN+bN)/num_parts) (the last possibly smaller).
template <typename T, typename Less = std::less<T>>
std::vector<MergeRange> merge_path_partitions(std::span<const T> a,
                                              std::span<const T> b,
                                              std::size_t num_parts, Less less = {}) {
  MPS_CHECK(num_parts > 0);
  const std::size_t total = a.size() + b.size();
  const std::size_t chunk = ceil_div(total, num_parts);
  std::vector<MergeRange> parts;
  parts.reserve(num_parts);
  std::size_t prev_a = 0, prev_b = 0;
  for (std::size_t p = 1; p <= num_parts; ++p) {
    const std::size_t diag = std::min(p * chunk, total);
    const std::size_t ai = merge_path(a, b, diag, less);
    const std::size_t bi = diag - ai;
    parts.push_back(MergeRange{prev_a, ai, prev_b, bi});
    prev_a = ai;
    prev_b = bi;
  }
  return parts;
}

/// Serial merge of one MergeRange (A-first on ties) appended to `out`.
template <typename T, typename OutIt, typename Less = std::less<T>>
OutIt merge_range(std::span<const T> a, std::span<const T> b, const MergeRange& r,
                  OutIt out, Less less = {}) {
  std::size_t i = r.a_begin, j = r.b_begin;
  while (i < r.a_end && j < r.b_end) {
    if (less(b[j], a[i]))
      *out++ = b[j++];
    else
      *out++ = a[i++];
  }
  while (i < r.a_end) *out++ = a[i++];
  while (j < r.b_end) *out++ = b[j++];
  return out;
}

}  // namespace mps::primitives
