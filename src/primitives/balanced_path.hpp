#pragma once
// Balanced Path partitioning — the paper's extension of Merge Path to
// duplicate-aware set operations (Section III-B, Figure 1b).
//
// Plain merge path may cut between two equal keys, so the worker that sees
// the copy of key x from A may not see its matching copy from B — fatal
// for set union/intersection and for SpAdd, where matched (row, col)
// tuples must be combined by exactly one worker.
//
// Balanced path fixes this by ranking duplicates.  For each key x, let its
// run contain aT copies in A and bT copies in B.  The *canonical
// interleave* consumes the run as
//
//     A(x,0)  B(x,0)  A(x,1)  B(x,1)  ...            (matched pairs)
//     then the |aT - bT| unmatched leftovers from the longer side.
//
// Partition cuts are made along this interleaved order.  When a diagonal
// would land between A(x,r) and its match B(x,r), the cut is *starred*:
// extended by one element so the pair stays on the left side.  Partitions
// therefore contain `chunk` or `chunk + 1` path elements, and a serial
// two-pointer set operation inside each partition pairs ranks exactly as
// the global operation would.
//
// With this pairing the serial kernels below implement the standard
// multiset semantics (identical to std::set_union et al.):
//   union:                max(aT, bT) copies,
//   intersection:         min(aT, bT) copies,
//   difference:           max(aT - bT, 0) copies,
//   symmetric difference: |aT - bT| copies.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "primitives/merge_path.hpp"
#include "primitives/search.hpp"
#include "util/common.hpp"

namespace mps::primitives {

/// A cut of the balanced path.  The prefix before the cut consumes
/// a_index elements of A and b_index elements of B; `starred` records
/// that the cut was extended by one B element to keep a matched pair
/// together (so a_index + b_index == diag + starred).
struct BalancedCut {
  std::size_t a_index = 0;
  std::size_t b_index = 0;
  bool starred = false;
};

/// Locate the balanced-path cut for diagonal `diag` (0 <= diag <= |A|+|B|).
template <typename T, typename Less = std::less<T>>
BalancedCut balanced_path(std::span<const T> a, std::span<const T> b,
                          std::size_t diag, Less less = {}) {
  std::size_t ai = merge_path(a, b, diag, less);
  std::size_t bi = diag - ai;
  BalancedCut cut{ai, bi, false};
  if (bi >= b.size()) return cut;  // B exhausted: no pair can be split

  // The only hazardous run is the one keyed by the next unconsumed B
  // element (see merge_path's A-first tie convention; a mid-run cut in A
  // with a different next B key implies B holds no copies of that key).
  const T& x = b[bi];
  const std::size_t a_start = lower_bound_index(a.first(ai), x, less);
  const std::size_t b_start = lower_bound_index(b.first(bi), x, less);
  const std::size_t consumed = (ai - a_start) + (bi - b_start);
  if (consumed == 0) return cut;  // cut sits at the start of x's run

  // Total run lengths on each side.
  const std::size_t a_total =
      upper_bound_index(a.subspan(a_start), x, less);
  const std::size_t b_total =
      upper_bound_index(b.subspan(b_start), x, less);
  const std::size_t pairs = a_total < b_total ? a_total : b_total;

  // Redistribute the `consumed` run elements along the canonical
  // interleave: alternate A/B through the paired region, then leftovers
  // from the longer side only.
  std::size_t a_adv, b_adv;
  bool star = false;
  if (consumed >= 2 * pairs) {
    const std::size_t extra = consumed - 2 * pairs;
    a_adv = pairs + (a_total > b_total ? extra : 0);
    b_adv = consumed - a_adv;
  } else {
    a_adv = (consumed + 1) / 2;
    b_adv = consumed - a_adv;
    if (consumed % 2 == 1) {
      // The cut would separate A(x, (consumed-1)/2) from its match; steal
      // the matching B element (paper: the "starred" diagonal).
      b_adv += 1;
      star = true;
    }
  }
  cut.a_index = a_start + a_adv;
  cut.b_index = b_start + b_adv;
  cut.starred = star;
  return cut;
}

/// Evenly spaced balanced cuts: fence i sits at diagonal min(i*chunk, total)
/// (adjusted by stars).  Returns num_parts + 1 fences; partition p spans
/// fences [p, p+1).
template <typename T, typename Less = std::less<T>>
std::vector<BalancedCut> balanced_path_partitions(std::span<const T> a,
                                                  std::span<const T> b,
                                                  std::size_t chunk,
                                                  Less less = {}) {
  MPS_CHECK(chunk > 0);
  const std::size_t total = a.size() + b.size();
  const std::size_t num_parts = total == 0 ? 1 : ceil_div(total, chunk);
  std::vector<BalancedCut> cuts(num_parts + 1);
  cuts[0] = BalancedCut{0, 0, false};
  for (std::size_t p = 1; p < num_parts; ++p) {
    cuts[p] = balanced_path(a, b, p * chunk, less);
  }
  cuts[num_parts] = BalancedCut{a.size(), b.size(), false};
  return cuts;
}

/// The set operations expressible over balanced-path partitions.
enum class SetOp { kUnion, kIntersection, kDifference, kSymmetricDifference };

/// Serial multiset operation over one partition.  `emit_a(i)` / `emit_b(j)`
/// receive source indices for unmatched emissions; `emit_match(i, j)` for a
/// matched pair.  Returns the number of emissions.
template <typename T, typename EmitA, typename EmitB, typename EmitMatch,
          typename Less = std::less<T>>
std::size_t set_op_serial(std::span<const T> a, std::span<const T> b,
                          std::size_t a_begin, std::size_t a_end,
                          std::size_t b_begin, std::size_t b_end, SetOp op,
                          EmitA&& emit_a, EmitB&& emit_b, EmitMatch&& emit_match,
                          Less less = {}) {
  std::size_t i = a_begin, j = b_begin, count = 0;
  const bool take_a = op == SetOp::kUnion || op == SetOp::kDifference ||
                      op == SetOp::kSymmetricDifference;
  const bool take_b = op == SetOp::kUnion || op == SetOp::kSymmetricDifference;
  const bool take_match = op == SetOp::kUnion || op == SetOp::kIntersection;
  while (i < a_end && j < b_end) {
    if (less(a[i], b[j])) {
      if (take_a) {
        emit_a(i);
        ++count;
      }
      ++i;
    } else if (less(b[j], a[i])) {
      if (take_b) {
        emit_b(j);
        ++count;
      }
      ++j;
    } else {
      if (take_match) {
        emit_match(i, j);
        ++count;
      }
      ++i;
      ++j;
    }
  }
  for (; i < a_end; ++i) {
    if (take_a) {
      emit_a(i);
      ++count;
    }
  }
  for (; j < b_end; ++j) {
    if (take_b) {
      emit_b(j);
      ++count;
    }
  }
  return count;
}

}  // namespace mps::primitives
