#pragma once
// Device-wide reduce-by-key over a *sorted* key sequence (the final
// contraction step of SpGEMM and of the global-sort SpAdd baseline).
//
// Three charged kernels: head-flagging + position scan, head scatter,
// and per-segment accumulation (divergent: a warp's cost is its longest
// segment, which is exactly the irregularity sort-based schemes pay).

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "primitives/scan.hpp"
#include "vgpu/device.hpp"

namespace mps::primitives {

template <typename K, typename V>
struct ReduceByKeyResult {
  std::vector<K> keys;
  std::vector<V> vals;
  double modeled_ms = 0.0;
};

template <typename K, typename V>
ReduceByKeyResult<K, V> device_reduce_by_key(vgpu::Device& device,
                                             const std::string& name,
                                             std::span<const K> keys,
                                             std::span<const V> vals) {
  MPS_CHECK(keys.size() == vals.size());
  ReduceByKeyResult<K, V> res;
  const std::size_t n = keys.size();
  if (n == 0) return res;

  constexpr int kBlock = 256;
  constexpr int kItems = 8;
  constexpr std::size_t kTile = static_cast<std::size_t>(kBlock) * kItems;
  const int num_tiles = static_cast<int>(ceil_div(n, kTile));

  // Kernel 1: flag segment heads, count them per tile.
  vgpu::ScopedDeviceAlloc flags_mem(device.memory(), n * sizeof(index_t));
  std::vector<std::size_t> head_count(static_cast<std::size_t>(num_tiles) + 1, 0);
  auto s1 = device.launch(name + ".flags", num_tiles, kBlock, [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
    const std::size_t hi = std::min(n, lo + kTile);
    std::size_t c = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      c += (i == 0 || keys[i] != keys[i - 1]) ? 1 : 0;
    }
    head_count[static_cast<std::size_t>(cta.cta_id())] = c;
    cta.charge_global((hi - lo) * sizeof(K));
    cta.charge_alu_uniform(hi - lo);
  });
  res.modeled_ms += s1.modeled_ms;

  const std::size_t num_out =
      device_exclusive_scan(device, name + ".scan",
                            std::span<const std::size_t>(head_count),
                            std::span<std::size_t>(head_count));
  res.modeled_ms += device.log().back().modeled_ms;

  res.keys.resize(num_out);
  res.vals.resize(num_out);
  vgpu::ScopedDeviceAlloc out_mem(device.memory(),
                                  num_out * (sizeof(K) + sizeof(V)));
  std::vector<std::size_t> seg_start(num_out + 1, n);

  // Kernel 2: scatter unique keys and segment start offsets.
  auto s2 = device.launch(name + ".heads", num_tiles, kBlock, [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
    const std::size_t hi = std::min(n, lo + kTile);
    std::size_t pos = head_count[static_cast<std::size_t>(cta.cta_id())];
    for (std::size_t i = lo; i < hi; ++i) {
      if (i == 0 || keys[i] != keys[i - 1]) {
        res.keys[pos] = keys[i];
        seg_start[pos] = i;
        ++pos;
      }
    }
    cta.charge_global((hi - lo) * sizeof(K));
    cta.charge_gather(pos - head_count[static_cast<std::size_t>(cta.cta_id())]);
    cta.charge_alu_uniform(hi - lo);
  });
  res.modeled_ms += s2.modeled_ms;
  seg_start[num_out] = n;

  // Kernel 3: per-segment accumulation (one logical thread per segment).
  const int acc_tiles = static_cast<int>(ceil_div(num_out, kTile));
  auto s3 = device.launch(name + ".acc", std::max(acc_tiles, 1), kBlock,
                          [&](vgpu::Cta& cta) {
    const std::size_t lo = static_cast<std::size_t>(cta.cta_id()) * kTile;
    const std::size_t hi = std::min(num_out, lo + kTile);
    std::vector<std::uint32_t> lens;
    lens.reserve(hi - lo);
    for (std::size_t s = lo; s < hi; ++s) {
      V acc{};
      for (std::size_t i = seg_start[s]; i < seg_start[s + 1]; ++i) acc += vals[i];
      res.vals[s] = acc;
      lens.push_back(static_cast<std::uint32_t>(seg_start[s + 1] - seg_start[s]));
      cta.charge_gather(seg_start[s + 1] - seg_start[s]);
    }
    cta.charge_warp_divergent(lens);
    cta.charge_global((hi - lo) * (sizeof(V) + 2 * sizeof(index_t)));
  });
  res.modeled_ms += s3.modeled_ms;
  return res;
}

}  // namespace mps::primitives
