// cpu_model is header-only; this TU exists so the library always has at
// least one object and to keep a home for future out-of-line additions.
#include "vgpu/cpu_model.hpp"
