#include "vgpu/fault_injector.hpp"

#include "util/env.hpp"

namespace mps::vgpu {

FaultInjectorConfig FaultInjector::config_from_env() {
  // Strict parsing throughout: a typo'd fault knob must fail loudly, not
  // silently run the suite fault-free (InvalidInputError names the var).
  FaultInjectorConfig cfg;
  const long long n = util::env_int_checked("MPS_FAULT_ALLOC_N", 0);
  if (n > 0) cfg.fail_alloc_n = n;
  const long long bytes = util::env_int_checked("MPS_FAULT_BYTE_LIMIT", 0);
  if (bytes > 0) cfg.byte_limit = static_cast<std::size_t>(bytes);
  // The bitflip satellites are validated even when no flip is armed: a
  // typo'd MPS_FAULT_BITFLIP_MASK should fail loudly now, not the day
  // someone finally sets MPS_FAULT_BITFLIP_ALLOC next to it.
  const long long flip = util::env_int_checked("MPS_FAULT_BITFLIP_ALLOC", 0);
  const long long offset = util::env_int_checked("MPS_FAULT_BITFLIP_OFFSET", 0);
  // The mask is a byte pattern — accept hex ("0x80") as well as decimal.
  const long long mask =
      util::env_int_auto_checked("MPS_FAULT_BITFLIP_MASK", 0x01, 0, 0xFF);
  const long long every = util::env_int_checked("MPS_FAULT_BITFLIP_EVERY", 0);
  if (flip > 0) {
    cfg.bitflip_alloc = flip;
    cfg.bitflip_offset = static_cast<std::size_t>(offset);
    cfg.bitflip_mask = static_cast<std::uint8_t>(mask);
    cfg.bitflip_every = every;
  }
  return cfg;
}

void FaultInjector::arm_chaos(const ChaosSchedule& schedule,
                              int device_ordinal) {
  for (const ChaosEvent& ev : schedule.events) {
    if (ev.device >= 0 && ev.device != device_ordinal) continue;
    switch (ev.kind) {
      case ChaosEvent::Kind::kDeviceLoss:
        losses_.push_back(ev);
        break;
      case ChaosEvent::Kind::kStraggler:
        stragglers_.push_back(ev);
        break;
      case ChaosEvent::Kind::kAllocFail:
        fail_at_allocation(allocations_ + ev.at_alloc);
        break;
      case ChaosEvent::Kind::kBitFlip:
        flip_bit_at_allocation(allocations_ + ev.at_alloc, ev.offset, ev.mask,
                               ev.every);
        break;
    }
  }
}

FaultInjector::LaunchFault FaultInjector::on_launch(double modeled_ms_total) {
  LaunchFault out;
  if (lost_) {
    out.lost = true;
    return out;
  }
  ++launches_;
  for (const ChaosEvent& ev : losses_) {
    const bool hit_launch = ev.at_launch > 0 && launches_ >= ev.at_launch;
    const bool hit_time =
        ev.at_modeled_ms >= 0.0 && modeled_ms_total >= ev.at_modeled_ms;
    if (hit_launch || hit_time) {
      lost_ = true;
      ++losses_injected_;
      out.lost = true;
      return out;
    }
  }
  for (const ChaosEvent& ev : stragglers_) {
    bool due = false;
    if (launches_ == ev.at_launch) {
      due = true;
    } else if (ev.every > 0 && launches_ > ev.at_launch) {
      due = (launches_ - ev.at_launch) % ev.every == 0;
    }
    if (due) {
      out.factor *= ev.factor;
      ++straggles_injected_;
    }
  }
  return out;
}

}  // namespace mps::vgpu
