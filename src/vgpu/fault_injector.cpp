#include "vgpu/fault_injector.hpp"

#include "util/env.hpp"

namespace mps::vgpu {

FaultInjectorConfig FaultInjector::config_from_env() {
  FaultInjectorConfig cfg;
  const long long n = util::env_int("MPS_FAULT_ALLOC_N", 0);
  if (n > 0) cfg.fail_alloc_n = n;
  const long long bytes = util::env_int("MPS_FAULT_BYTE_LIMIT", 0);
  if (bytes > 0) cfg.byte_limit = static_cast<std::size_t>(bytes);
  return cfg;
}

}  // namespace mps::vgpu
