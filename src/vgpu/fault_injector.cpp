#include "vgpu/fault_injector.hpp"

#include "util/env.hpp"

namespace mps::vgpu {

FaultInjectorConfig FaultInjector::config_from_env() {
  FaultInjectorConfig cfg;
  const long long n = util::env_int("MPS_FAULT_ALLOC_N", 0);
  if (n > 0) cfg.fail_alloc_n = n;
  const long long bytes = util::env_int("MPS_FAULT_BYTE_LIMIT", 0);
  if (bytes > 0) cfg.byte_limit = static_cast<std::size_t>(bytes);
  const long long flip = util::env_int("MPS_FAULT_BITFLIP_ALLOC", 0);
  if (flip > 0) {
    cfg.bitflip_alloc = flip;
    const long long offset = util::env_int("MPS_FAULT_BITFLIP_OFFSET", 0);
    if (offset > 0) cfg.bitflip_offset = static_cast<std::size_t>(offset);
    // The mask is a byte pattern — accept hex ("0x80") as well as decimal.
    const long long mask = util::env_int_auto("MPS_FAULT_BITFLIP_MASK", 0x01);
    cfg.bitflip_mask = static_cast<std::uint8_t>(mask & 0xFF);
    const long long every = util::env_int("MPS_FAULT_BITFLIP_EVERY", 0);
    if (every > 0) cfg.bitflip_every = every;
  }
  return cfg;
}

}  // namespace mps::vgpu
