#include "vgpu/device.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace mps::vgpu {

namespace {

DeviceProperties apply_env_caps(DeviceProperties props) {
  const long long cap = util::env_int_checked("MPS_FAULT_CAPACITY", 0);
  if (cap > 0) {
    props.global_mem_bytes =
        std::min(props.global_mem_bytes, static_cast<std::size_t>(cap));
  }
  return props;
}

}  // namespace

Device::Device(DeviceProperties props)
    : props_(apply_env_caps(props)),
      memory_(props_.global_mem_bytes),
      fault_(std::make_unique<FaultInjector>(FaultInjector::config_from_env())) {
  memory_.attach_fault_injector(fault_.get());
}

}  // namespace mps::vgpu
