#include "vgpu/device.hpp"

namespace mps::vgpu {

Device::Device(DeviceProperties props)
    : props_(props), memory_(props.global_mem_bytes) {}

}  // namespace mps::vgpu
