#pragma once
// Virtual GPU device description and analytic cost constants.
//
// The paper evaluates on a GTX Titan (GK110: 14 SMX, 0.876 GHz, 288 GB/s,
// 6 GiB).  We have no GPU here, so kernels execute *functionally* on host
// threads while an analytic SIMT timing model accounts for the costs that
// drive the paper's results:
//
//   * warp lockstep   — a divergent warp is charged max-over-lanes,
//   * coalescing      — contiguous warp accesses cost ceil(bytes/128B)
//                       transactions, gathers cost one 32 B sector each,
//   * CTA scheduling  — CTAs are assigned round-robin to SMs and an SM runs
//                       `ctas_per_sm` of its CTAs concurrently; kernel time
//                       is the max over SMs of their serialized residency.
//
// The constants below are derived from GK110 datasheet ratios (see
// DESIGN.md §2).  Absolute milliseconds are therefore *modeled*, but every
// scheme in the repository is charged through the same model, so ratios,
// crossovers and work-correlations — the paper's actual claims — are
// meaningful.

#include <cstddef>
#include <cstdint>

namespace mps::vgpu {

struct DeviceProperties {
  // Hardware shape (GTX Titan defaults).
  int num_sms = 14;
  double clock_ghz = 0.876;
  int warp_size = 32;
  int max_cta_threads = 1024;
  std::size_t shared_mem_per_cta = 48 * 1024;  ///< bytes
  std::size_t global_mem_bytes = 6ull << 30;   ///< 6 GiB
  /// CTAs resident per SM (occupancy).  Residency hides latency but does
  /// NOT multiply an SM's bandwidth or issue rate, so the timing model
  /// serializes each SM's CTAs at full SM throughput: the schedule has
  /// num_sms * ctas_per_sm slots only when cost constants are divided
  /// accordingly.  Default 1 = "one CTA owns the SM's throughput".
  int ctas_per_sm = 1;

  // --- Cost constants (SM cycles) -------------------------------------
  /// Device bandwidth is 288 GB/s at 0.876 GHz = ~327 B/cycle for the
  /// whole device, i.e. ~23 B/cycle per SM.
  double global_bytes_per_cycle_per_sm = 23.0;
  /// Random (uncoalesced) accesses fetch a sector per element; 16 B
  /// reflects the L2/texture cache absorbing about half of each 32 B
  /// sector for the reuse patterns sparse kernels exhibit.
  std::size_t gather_sector_bytes = 16;
  /// One warp-wide shared-memory access (bank-conflict free).
  double shared_op_cycles = 1.0;
  /// One warp-wide ALU iteration (a handful of instructions).
  double alu_warp_iter_cycles = 0.7;
  /// __syncthreads() per CTA.
  double sync_cycles = 30.0;
  /// Fixed per-kernel launch overhead (≈5 µs at 0.876 GHz).
  double kernel_launch_cycles = 4400.0;

  double cycles_to_ms(double cycles) const { return cycles / (clock_ghz * 1e6); }

  /// Whole-device global-memory bandwidth in bytes per modeled
  /// nanosecond (num_sms x per-SM bytes/cycle x clock).  The memory-bound
  /// SpMV throughput proxy the shard placement policy weights device
  /// shares by (src/shard/partition.hpp, docs/sharding.md).
  double global_bytes_per_ns() const {
    return static_cast<double>(num_sms) * global_bytes_per_cycle_per_sm *
           clock_ghz;
  }
};

/// The paper's Table I device (defaults above).
inline DeviceProperties gtx_titan() { return DeviceProperties{}; }

// Heterogeneous-fleet profiles for DeviceSet specs (vgpu/device_set.hpp).
// Per-SM cost constants stay the Titan's, so per-byte kernel costs scale
// purely with SM count x clock — the same-model-everywhere property that
// makes cross-device ratios meaningful.

/// A wider, higher-clocked part: ~2.35x the Titan's modeled bandwidth.
inline DeviceProperties fast_profile() {
  DeviceProperties p;
  p.num_sms = 24;
  p.clock_ghz = 1.2;
  p.global_mem_bytes = 12ull << 30;
  return p;
}

/// A laptop-class part: ~0.39x the Titan's modeled bandwidth.
inline DeviceProperties slow_profile() {
  DeviceProperties p;
  p.num_sms = 8;
  p.clock_ghz = 0.6;
  p.global_mem_bytes = 4ull << 30;
  return p;
}

}  // namespace mps::vgpu
