#pragma once
// Deterministic fault injection for the device memory model.
//
// A FaultInjector attached to a MemoryModel observes every device
// allocation (reserve) and can inject two classes of fault:
//
// Allocation failures (throw DeviceOomError):
//   * fail-the-Nth-allocation — the Nth reserve() on the model throws,
//     all others succeed.  Sweeping N = 1..total exercises every
//     allocation site of a kernel (the exception-safety sweep in
//     tests/fault_injection_test.cpp);
//   * fail-at-byte-threshold — the first reserve() that pushes the
//     cumulative reserved-byte counter past the threshold throws.
//
// Silent data corruption (bit flips):
//   * flip-at-allocation — when the Nth reserve() registers a live host
//     window for the buffer (ScopedDeviceAlloc's data pointer), one byte
//     of that window is XORed with a mask.  The flip is silent: the
//     allocation succeeds and no error is raised — detection is the job
//     of the integrity layer (src/resilience/integrity.hpp).  A
//     repeat-every-N mode re-fires the flip on every further Nth
//     allocation, modeling transient faults that keep recurring.
//     Reservations that carry no window (pure accounting) are counted as
//     missed flips, never corrupted.
//
// Alloc-failure triggers fire exactly once and then disarm, so a caller
// that catches the error and retries (spgemm_adaptive's oom-retry tier)
// runs clean afterwards.  Counters are per-injector and deterministic:
// the functional layer performs the same allocations in the same order
// regardless of host thread count.
//
// Environment configuration (read by Device's constructor, util/env):
//   MPS_FAULT_ALLOC_N        — fail the Nth device allocation (1-based)
//   MPS_FAULT_BYTE_LIMIT     — fail the allocation that crosses this many
//                              cumulative reserved bytes
//   MPS_FAULT_CAPACITY       — cap device capacity at this many bytes
//                              (applied to DeviceProperties, not here)
//   MPS_FAULT_BITFLIP_ALLOC  — flip a bit in the Nth allocation's window
//   MPS_FAULT_BITFLIP_OFFSET — byte offset of the flip (mod window size)
//   MPS_FAULT_BITFLIP_MASK   — XOR mask for the byte (decimal or 0x hex;
//                              default 0x01)
//   MPS_FAULT_BITFLIP_EVERY  — re-fire every N further allocations
//                              (transient-fault mode; 0 = flip once)

#include <cstddef>
#include <cstdint>

namespace mps::vgpu {

struct FaultInjectorConfig {
  long long fail_alloc_n = 0;   ///< 1-based allocation ordinal; 0 = disabled
  std::size_t byte_limit = 0;   ///< cumulative-bytes threshold; 0 = disabled
  long long bitflip_alloc = 0;  ///< 1-based allocation ordinal; 0 = disabled
  std::size_t bitflip_offset = 0;  ///< byte offset into the window (mod size)
  std::uint8_t bitflip_mask = 0x01;  ///< XOR mask applied to the byte
  long long bitflip_every = 0;  ///< re-fire period after the first flip; 0 = once
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultInjectorConfig& cfg) : cfg_(cfg) {}

  /// MPS_FAULT_ALLOC_N / MPS_FAULT_BYTE_LIMIT / MPS_FAULT_BITFLIP_*,
  /// zero (disabled) if unset.
  static FaultInjectorConfig config_from_env();

  /// Arm: the `n`th observed reserve() (1-based) fails.
  void fail_at_allocation(long long n) {
    cfg_.fail_alloc_n = n;
    fired_ = false;
  }

  /// Arm: the reserve() that pushes cumulative bytes past `bytes` fails.
  void fail_at_byte_threshold(std::size_t bytes) {
    cfg_.byte_limit = bytes;
    fired_ = false;
  }

  /// Arm: XOR `mask` into byte `offset` (mod window size) of the live
  /// window registered by the `n`th reserve().  `every` > 0 re-fires the
  /// flip on each further `every`th allocation (transient faults).
  void flip_bit_at_allocation(long long n, std::size_t offset,
                              std::uint8_t mask = 0x01, long long every = 0) {
    cfg_.bitflip_alloc = n;
    cfg_.bitflip_offset = offset;
    cfg_.bitflip_mask = mask;
    cfg_.bitflip_every = every;
    bitflip_fired_ = false;
  }

  /// Disable triggers; observation counters keep running.
  void disarm() { cfg_ = FaultInjectorConfig{}; }

  /// Zero the observation counters (a fresh sweep iteration).
  void reset_counters() {
    allocations_ = 0;
    bytes_reserved_ = 0;
    faults_injected_ = 0;
    bitflips_injected_ = 0;
    bitflips_missed_ = 0;
    fired_ = false;
    bitflip_fired_ = false;
  }

  bool armed() const {
    const bool alloc_armed =
        !fired_ && (cfg_.fail_alloc_n > 0 || cfg_.byte_limit > 0);
    const bool flip_armed =
        cfg_.bitflip_alloc > 0 && (!bitflip_fired_ || cfg_.bitflip_every > 0);
    return alloc_armed || flip_armed;
  }
  long long allocations_observed() const { return allocations_; }
  std::size_t bytes_observed() const { return bytes_reserved_; }
  long long faults_injected() const { return faults_injected_; }
  long long bitflips_injected() const { return bitflips_injected_; }
  /// Flips that matched their ordinal but found no registered window.
  long long bitflips_missed() const { return bitflips_missed_; }

  /// Called by MemoryModel::reserve for every allocation; returns true
  /// when this allocation must fail.  Alloc failures fire at most once
  /// per arming.  `window`/`window_bytes` describe the live host storage
  /// backing the allocation (nullptr for pure accounting reservations);
  /// a matching armed bit flip corrupts one byte of it in place.
  bool on_reserve(std::size_t bytes, void* window = nullptr,
                  std::size_t window_bytes = 0) {
    ++allocations_;
    bytes_reserved_ += bytes;
    maybe_flip(window, window_bytes);
    if (fired_) return false;
    const bool hit_n = cfg_.fail_alloc_n > 0 && allocations_ == cfg_.fail_alloc_n;
    const bool hit_bytes = cfg_.byte_limit > 0 && bytes_reserved_ > cfg_.byte_limit;
    if (hit_n || hit_bytes) {
      fired_ = true;
      ++faults_injected_;
      return true;
    }
    return false;
  }

 private:
  void maybe_flip(void* window, std::size_t window_bytes) {
    if (cfg_.bitflip_alloc <= 0) return;
    bool due = false;
    if (allocations_ == cfg_.bitflip_alloc) {
      due = !bitflip_fired_;
    } else if (cfg_.bitflip_every > 0 && allocations_ > cfg_.bitflip_alloc) {
      due = (allocations_ - cfg_.bitflip_alloc) % cfg_.bitflip_every == 0;
    }
    if (!due) return;
    bitflip_fired_ = true;
    if (window == nullptr || window_bytes == 0 || cfg_.bitflip_mask == 0) {
      ++bitflips_missed_;
      return;
    }
    auto* bytes = static_cast<std::uint8_t*>(window);
    bytes[cfg_.bitflip_offset % window_bytes] ^= cfg_.bitflip_mask;
    ++bitflips_injected_;
  }

  FaultInjectorConfig cfg_;
  long long allocations_ = 0;
  std::size_t bytes_reserved_ = 0;  ///< cumulative; never decremented
  long long faults_injected_ = 0;
  long long bitflips_injected_ = 0;
  long long bitflips_missed_ = 0;
  bool fired_ = false;
  bool bitflip_fired_ = false;
};

}  // namespace mps::vgpu
