#pragma once
// Deterministic fault injection for the device memory model.
//
// A FaultInjector attached to a MemoryModel observes every device
// allocation (reserve) and can force one to fail with DeviceOomError:
//
//   * fail-the-Nth-allocation — the Nth reserve() on the model throws,
//     all others succeed.  Sweeping N = 1..total exercises every
//     allocation site of a kernel (the exception-safety sweep in
//     tests/fault_injection_test.cpp);
//   * fail-at-byte-threshold — the first reserve() that pushes the
//     cumulative reserved-byte counter past the threshold throws.
//
// Each trigger fires exactly once and then disarms, so a caller that
// catches the error and retries (spgemm_adaptive's oom-retry tier) runs
// clean afterwards.  Counters are per-injector and deterministic: the
// functional layer performs the same allocations in the same order
// regardless of host thread count.
//
// Environment configuration (read by Device's constructor, util/env):
//   MPS_FAULT_ALLOC_N     — fail the Nth device allocation (1-based)
//   MPS_FAULT_BYTE_LIMIT  — fail the allocation that crosses this many
//                           cumulative reserved bytes
//   MPS_FAULT_CAPACITY    — cap device capacity at this many bytes
//                           (applied to DeviceProperties, not here)

#include <cstddef>

namespace mps::vgpu {

struct FaultInjectorConfig {
  long long fail_alloc_n = 0;   ///< 1-based allocation ordinal; 0 = disabled
  std::size_t byte_limit = 0;   ///< cumulative-bytes threshold; 0 = disabled
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultInjectorConfig& cfg) : cfg_(cfg) {}

  /// MPS_FAULT_ALLOC_N / MPS_FAULT_BYTE_LIMIT, zero (disabled) if unset.
  static FaultInjectorConfig config_from_env();

  /// Arm: the `n`th observed reserve() (1-based) fails.
  void fail_at_allocation(long long n) {
    cfg_.fail_alloc_n = n;
    fired_ = false;
  }

  /// Arm: the reserve() that pushes cumulative bytes past `bytes` fails.
  void fail_at_byte_threshold(std::size_t bytes) {
    cfg_.byte_limit = bytes;
    fired_ = false;
  }

  /// Disable triggers; observation counters keep running.
  void disarm() { cfg_ = FaultInjectorConfig{}; }

  /// Zero the observation counters (a fresh sweep iteration).
  void reset_counters() {
    allocations_ = 0;
    bytes_reserved_ = 0;
    faults_injected_ = 0;
    fired_ = false;
  }

  bool armed() const {
    return !fired_ && (cfg_.fail_alloc_n > 0 || cfg_.byte_limit > 0);
  }
  long long allocations_observed() const { return allocations_; }
  std::size_t bytes_observed() const { return bytes_reserved_; }
  long long faults_injected() const { return faults_injected_; }

  /// Called by MemoryModel::reserve for every allocation; returns true
  /// when this allocation must fail.  Fires at most once per arming.
  bool on_reserve(std::size_t bytes) {
    ++allocations_;
    bytes_reserved_ += bytes;
    if (fired_) return false;
    const bool hit_n = cfg_.fail_alloc_n > 0 && allocations_ == cfg_.fail_alloc_n;
    const bool hit_bytes = cfg_.byte_limit > 0 && bytes_reserved_ > cfg_.byte_limit;
    if (hit_n || hit_bytes) {
      fired_ = true;
      ++faults_injected_;
      return true;
    }
    return false;
  }

 private:
  FaultInjectorConfig cfg_;
  long long allocations_ = 0;
  std::size_t bytes_reserved_ = 0;  ///< cumulative; never decremented
  long long faults_injected_ = 0;
  bool fired_ = false;
};

}  // namespace mps::vgpu
