#pragma once
// Deterministic fault injection for the device memory model.
//
// A FaultInjector attached to a MemoryModel observes every device
// allocation (reserve) and can inject two classes of fault:
//
// Allocation failures (throw DeviceOomError):
//   * fail-the-Nth-allocation — the Nth reserve() on the model throws,
//     all others succeed.  Sweeping N = 1..total exercises every
//     allocation site of a kernel (the exception-safety sweep in
//     tests/fault_injection_test.cpp);
//   * fail-at-byte-threshold — the first reserve() that pushes the
//     cumulative reserved-byte counter past the threshold throws.
//
// Silent data corruption (bit flips):
//   * flip-at-allocation — when the Nth reserve() registers a live host
//     window for the buffer (ScopedDeviceAlloc's data pointer), one byte
//     of that window is XORed with a mask.  The flip is silent: the
//     allocation succeeds and no error is raised — detection is the job
//     of the integrity layer (src/resilience/integrity.hpp).  A
//     repeat-every-N mode re-fires the flip on every further Nth
//     allocation, modeling transient faults that keep recurring.
//     Reservations that carry no window (pure accounting) are counted as
//     missed flips, never corrupted.
//
// Alloc-failure triggers fire exactly once and then disarm, so a caller
// that catches the error and retries (spgemm_adaptive's oom-retry tier)
// runs clean afterwards.  Counters are per-injector and deterministic:
// the functional layer performs the same allocations in the same order
// regardless of host thread count.
//
// Environment configuration (read by Device's constructor, util/env):
//   MPS_FAULT_ALLOC_N        — fail the Nth device allocation (1-based)
//   MPS_FAULT_BYTE_LIMIT     — fail the allocation that crosses this many
//                              cumulative reserved bytes
//   MPS_FAULT_CAPACITY       — cap device capacity at this many bytes
//                              (applied to DeviceProperties, not here)
//   MPS_FAULT_BITFLIP_ALLOC  — flip a bit in the Nth allocation's window
//   MPS_FAULT_BITFLIP_OFFSET — byte offset of the flip (mod window size)
//   MPS_FAULT_BITFLIP_MASK   — XOR mask for the byte (decimal or 0x hex;
//                              default 0x01)
//   MPS_FAULT_BITFLIP_EVERY  — re-fire every N further allocations
//                              (transient-fault mode; 0 = flip once)
//
// All MPS_FAULT_* values parse strictly (util::env_*_checked): a
// malformed or out-of-range value throws InvalidInputError naming the
// variable rather than silently running fault-free.
//
// Chaos schedules (chaos.hpp) extend the injector with two launch-side
// fault classes, armed per device via arm_chaos():
//   * device loss — once the trigger fires (launch ordinal via
//     on_launch(), or cumulative modeled time), lost() turns true
//     PERMANENTLY; Device::launch and MemoryModel::reserve turn that
//     into DeviceLostError on every subsequent call;
//   * stragglers — on_launch() reports a modeled-latency multiplier for
//     scheduled launch ordinals (optionally repeating every K launches).
// Alloc-failure / bit-flip chaos events reuse the reserve-side machinery
// above.  chaos_armed() is a plain bool so the disarmed launch path adds
// exactly one predictable branch (zero-overhead-when-off contract).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vgpu/chaos.hpp"

namespace mps::vgpu {

struct FaultInjectorConfig {
  long long fail_alloc_n = 0;   ///< 1-based allocation ordinal; 0 = disabled
  std::size_t byte_limit = 0;   ///< cumulative-bytes threshold; 0 = disabled
  long long bitflip_alloc = 0;  ///< 1-based allocation ordinal; 0 = disabled
  std::size_t bitflip_offset = 0;  ///< byte offset into the window (mod size)
  std::uint8_t bitflip_mask = 0x01;  ///< XOR mask applied to the byte
  long long bitflip_every = 0;  ///< re-fire period after the first flip; 0 = once
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultInjectorConfig& cfg) : cfg_(cfg) {}

  /// MPS_FAULT_ALLOC_N / MPS_FAULT_BYTE_LIMIT / MPS_FAULT_BITFLIP_*,
  /// zero (disabled) if unset.
  static FaultInjectorConfig config_from_env();

  /// Arm: the `n`th observed reserve() (1-based) fails.
  void fail_at_allocation(long long n) {
    cfg_.fail_alloc_n = n;
    fired_ = false;
  }

  /// Arm: the reserve() that pushes cumulative bytes past `bytes` fails.
  void fail_at_byte_threshold(std::size_t bytes) {
    cfg_.byte_limit = bytes;
    fired_ = false;
  }

  /// Arm: XOR `mask` into byte `offset` (mod window size) of the live
  /// window registered by the `n`th reserve().  `every` > 0 re-fires the
  /// flip on each further `every`th allocation (transient faults).
  void flip_bit_at_allocation(long long n, std::size_t offset,
                              std::uint8_t mask = 0x01, long long every = 0) {
    cfg_.bitflip_alloc = n;
    cfg_.bitflip_offset = offset;
    cfg_.bitflip_mask = mask;
    cfg_.bitflip_every = every;
    bitflip_fired_ = false;
  }

  /// Arm every event in `schedule` that targets device `device_ordinal`
  /// (events with device == -1 match all devices).  Loss and straggler
  /// events feed the launch-side hooks below; alloc-failure and bit-flip
  /// events are translated onto the reserve-side triggers above.  At
  /// most one alloc-failure and one bit-flip event can be pending at a
  /// time (last one wins — same contract as calling the arm methods
  /// directly); losses and stragglers stack freely.
  void arm_chaos(const ChaosSchedule& schedule, int device_ordinal);

  /// Drop all chaos state (loss flag included) and launch counters.
  void disarm_chaos() {
    losses_.clear();
    stragglers_.clear();
    lost_ = false;
    launches_ = 0;
    straggles_injected_ = 0;
    losses_injected_ = 0;
  }

  /// True once a device-loss trigger has fired; permanent until
  /// disarm_chaos().  Checked by MemoryModel::reserve.
  bool lost() const { return lost_; }

  /// Force the loss state directly (tests, manual failover drills).
  void lose_now() { lost_ = true; }

  /// Cheap gate for Device::launch — one branch when no chaos schedule
  /// is armed and the device is healthy.
  bool chaos_armed() const {
    return lost_ || !losses_.empty() || !stragglers_.empty();
  }

  /// Launch-side fault decision, called by Device::launch once per
  /// kernel while chaos_armed().  `modeled_ms_total` is the device's
  /// cumulative modeled milliseconds BEFORE this launch (time-triggered
  /// losses compare against it).  Counts the launch, then reports
  /// whether the device is (now) lost and the straggler latency factor
  /// to apply to this launch (1.0 = none; factors from multiple matching
  /// straggler events multiply).
  struct LaunchFault {
    bool lost = false;
    double factor = 1.0;
  };
  LaunchFault on_launch(double modeled_ms_total);

  /// Disable reserve-side triggers; observation counters keep running.
  /// Chaos launch-side state is separate — see disarm_chaos().
  void disarm() { cfg_ = FaultInjectorConfig{}; }

  /// Zero the observation counters (a fresh sweep iteration).
  void reset_counters() {
    allocations_ = 0;
    bytes_reserved_ = 0;
    faults_injected_ = 0;
    bitflips_injected_ = 0;
    bitflips_missed_ = 0;
    fired_ = false;
    bitflip_fired_ = false;
  }

  bool armed() const {
    const bool alloc_armed =
        !fired_ && (cfg_.fail_alloc_n > 0 || cfg_.byte_limit > 0);
    const bool flip_armed =
        cfg_.bitflip_alloc > 0 && (!bitflip_fired_ || cfg_.bitflip_every > 0);
    return alloc_armed || flip_armed;
  }
  long long allocations_observed() const { return allocations_; }
  std::size_t bytes_observed() const { return bytes_reserved_; }
  long long faults_injected() const { return faults_injected_; }
  long long bitflips_injected() const { return bitflips_injected_; }
  /// Flips that matched their ordinal but found no registered window.
  long long bitflips_missed() const { return bitflips_missed_; }
  long long launches_observed() const { return launches_; }
  long long stragglers_injected() const { return straggles_injected_; }
  long long losses_injected() const { return losses_injected_; }

  /// Called by MemoryModel::reserve for every allocation; returns true
  /// when this allocation must fail.  Alloc failures fire at most once
  /// per arming.  `window`/`window_bytes` describe the live host storage
  /// backing the allocation (nullptr for pure accounting reservations);
  /// a matching armed bit flip corrupts one byte of it in place.
  bool on_reserve(std::size_t bytes, void* window = nullptr,
                  std::size_t window_bytes = 0) {
    ++allocations_;
    bytes_reserved_ += bytes;
    maybe_flip(window, window_bytes);
    if (fired_) return false;
    const bool hit_n = cfg_.fail_alloc_n > 0 && allocations_ == cfg_.fail_alloc_n;
    const bool hit_bytes = cfg_.byte_limit > 0 && bytes_reserved_ > cfg_.byte_limit;
    if (hit_n || hit_bytes) {
      fired_ = true;
      ++faults_injected_;
      return true;
    }
    return false;
  }

 private:
  void maybe_flip(void* window, std::size_t window_bytes) {
    if (cfg_.bitflip_alloc <= 0) return;
    bool due = false;
    if (allocations_ == cfg_.bitflip_alloc) {
      due = !bitflip_fired_;
    } else if (cfg_.bitflip_every > 0 && allocations_ > cfg_.bitflip_alloc) {
      due = (allocations_ - cfg_.bitflip_alloc) % cfg_.bitflip_every == 0;
    }
    if (!due) return;
    bitflip_fired_ = true;
    if (window == nullptr || window_bytes == 0 || cfg_.bitflip_mask == 0) {
      ++bitflips_missed_;
      return;
    }
    auto* bytes = static_cast<std::uint8_t*>(window);
    bytes[cfg_.bitflip_offset % window_bytes] ^= cfg_.bitflip_mask;
    ++bitflips_injected_;
  }

  FaultInjectorConfig cfg_;
  long long allocations_ = 0;
  std::size_t bytes_reserved_ = 0;  ///< cumulative; never decremented
  long long faults_injected_ = 0;
  long long bitflips_injected_ = 0;
  long long bitflips_missed_ = 0;
  bool fired_ = false;
  bool bitflip_fired_ = false;

  // Chaos launch-side state (chaos.hpp events armed for this device).
  std::vector<ChaosEvent> losses_;      ///< pending kDeviceLoss triggers
  std::vector<ChaosEvent> stragglers_;  ///< kStraggler events
  bool lost_ = false;
  long long launches_ = 0;  ///< launches observed while chaos is armed
  long long straggles_injected_ = 0;
  long long losses_injected_ = 0;
};

}  // namespace mps::vgpu
