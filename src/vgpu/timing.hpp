#pragma once
// Conversion from per-CTA cycle costs to modeled kernel time.

#include <span>

#include "vgpu/device_properties.hpp"

namespace mps::vgpu {

/// Modeled device time for a kernel whose CTA i costs `cta_cycles[i]`.
///
/// CTAs are assigned to SMs in issue order with `ctas_per_sm` concurrent
/// slots per SM (a greedy list-schedule onto num_sms * ctas_per_sm slots,
/// which is how hardware work distributors behave to first order).  The
/// kernel completes when the last slot drains; launch overhead is added.
double schedule_cycles(const DeviceProperties& props, std::span<const double> cta_cycles);

}  // namespace mps::vgpu
