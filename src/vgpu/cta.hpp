#pragma once
// CTA execution context: identity, shared-memory arena and cost charging.
//
// Kernels are written as ordinary C++ that iterates over logical threads
// ("lanes") serially; the Cta records how much *modeled* time the work
// would take on SIMT hardware.  The charging helpers encode the three
// effects the paper's evaluation hinges on: warp lockstep (divergence),
// coalescing, and barrier cost.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/common.hpp"
#include "vgpu/counters.hpp"
#include "vgpu/device_properties.hpp"

namespace mps::vgpu {

/// Bump allocator standing in for on-chip shared memory.  Capacity checks
/// catch kernels whose tile configuration would not fit on the real chip.
class SharedMemory {
 public:
  explicit SharedMemory(std::size_t capacity) : capacity_(capacity) {
    storage_.resize(capacity);
  }

  template <typename T>
  std::span<T> alloc(std::size_t count) {
    const std::size_t bytes = round_up(count * sizeof(T), alignof(std::max_align_t));
    MPS_CHECK_MSG(used_ + bytes <= capacity_,
                  "CTA shared memory capacity exceeded");
    T* p = reinterpret_cast<T*>(storage_.data() + used_);
    used_ += bytes;
    return std::span<T>(p, count);
  }

  void reset() { used_ = 0; }
  std::size_t used() const { return used_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::vector<std::byte> storage_;
};

class Cta {
 public:
  Cta(int cta_id, int num_ctas, int block_threads, const DeviceProperties& props,
      SharedMemory& shm, CtaCounters& counters)
      : cta_id_(cta_id),
        num_ctas_(num_ctas),
        block_threads_(block_threads),
        props_(props),
        shm_(shm),
        counters_(counters) {}

  int cta_id() const { return cta_id_; }
  int num_ctas() const { return num_ctas_; }
  int block_threads() const { return block_threads_; }
  int warps() const { return ceil_div(block_threads_, props_.warp_size); }
  const DeviceProperties& props() const { return props_; }
  SharedMemory& shm() { return shm_; }

  // --- Cost charging ----------------------------------------------------

  /// Coalesced global traffic (reads or writes) of `bytes` bytes.
  void charge_global(std::size_t bytes) { counters_.global_bytes += bytes; }

  /// Random-access loads: `count` elements, each costing one memory sector
  /// regardless of element size (uncoalesced SIMT gather).
  void charge_gather(std::size_t count) {
    counters_.gather_bytes += count * props_.gather_sector_bytes;
  }

  /// Warp-wide shared memory accesses.
  void charge_shared(std::size_t ops) { counters_.shared_ops += ops; }

  /// `elems` element-granularity shared accesses spread over the CTA's
  /// lanes: one warp-wide access moves warp_size elements.
  void charge_shared_elems(std::size_t elems) {
    counters_.shared_ops +=
        ceil_div(elems, static_cast<std::size_t>(props_.warp_size));
  }

  /// `lane_iters` loop iterations spread evenly over the CTA's lanes
  /// (no divergence): charged as ceil(lane_iters / warp_size) warp-steps.
  void charge_alu_uniform(std::size_t lane_iters) {
    counters_.warp_iters += ceil_div(lane_iters, static_cast<std::size_t>(props_.warp_size));
  }

  /// A full warp executing `iters` lockstep iterations.
  void charge_warp_iters(std::size_t iters) { counters_.warp_iters += iters; }

  /// Divergent warp: each lane runs its own trip count; lockstep execution
  /// costs the max over each warp's lanes.  `per_lane` holds one trip count
  /// per lane of the whole CTA (padded with zeros by the caller if short).
  void charge_warp_divergent(std::span<const std::uint32_t> per_lane) {
    const std::size_t w = static_cast<std::size_t>(props_.warp_size);
    for (std::size_t base = 0; base < per_lane.size(); base += w) {
      std::uint32_t mx = 0;
      const std::size_t end = std::min(base + w, per_lane.size());
      for (std::size_t i = base; i < end; ++i) mx = std::max(mx, per_lane[i]);
      counters_.warp_iters += mx;
    }
  }

  /// CTA-wide barrier.
  void charge_sync() { counters_.syncs += 1; }

  /// Useful floating-point work (a multiply-add is 2).  Observational
  /// only: feeds roofline attribution, never the cycle model — the ALU
  /// cost of these operations is already charged through the warp-iter
  /// helpers above.
  void charge_flops(std::size_t n) { counters_.flops += n; }

  /// One binary search of `n` elements in global memory: log2 sector
  /// gathers plus the compare ALU work, executed by a single lane.
  void charge_binary_search(std::size_t n) {
    const std::size_t steps = static_cast<std::size_t>(log2_ceil(n ? n : 1)) + 1;
    charge_gather(steps);
    charge_warp_iters(steps);
  }

  const CtaCounters& counters() const { return counters_; }

 private:
  int cta_id_;
  int num_ctas_;
  int block_threads_;
  const DeviceProperties& props_;
  SharedMemory& shm_;
  CtaCounters& counters_;
};

}  // namespace mps::vgpu
